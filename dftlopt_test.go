package checkin_test

import (
	"fmt"
	"testing"
	"time"

	checkin "github.com/checkin-kv/checkin"
)

// dftlKnobCombos is the remap-aware CMT knob matrix: the full optimization
// stack, the legacy configuration (every knob off — the byte-identity
// anchor), and the two mixed settings that arm each mechanism in isolation.
var dftlKnobCombos = []struct {
	name       string
	fill       string
	cleanWin   int
	remapBatch string
}{
	{"opt", "on", 0, "on"},
	{"legacy", "off", 1, "off"},
	{"fill-only", "on", 1, "off"},
	{"batch-cflru", "off", 8, "on"},
}

// TestDFTLOptDeterminism proves the remap-aware CMT paths are deterministic
// and snapshot-safe: for every knob combination and three seeds, a direct
// load+run and a run forked from a post-load snapshot must produce
// byte-identical full dumps (metrics, journal, recovery, SPOR, health) with
// the differential mapping oracle armed the whole way — any coherence
// divergence panics at the faulting access instead of skewing the diff.
func TestDFTLOptDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("dftl knob determinism matrix in -short mode")
	}
	for _, combo := range dftlKnobCombos {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", combo.name, seed), func(t *testing.T) {
				cfg := checkin.DefaultConfig()
				cfg.Strategy = checkin.StrategyCheckIn
				cfg.Keys = 5_000
				cfg.CheckpointInterval = 100 * time.Millisecond
				cfg.Seed = seed
				cfg.FTLMap = "dftl"
				cfg.CMTFill = combo.fill
				cfg.CMTCleanWindow = combo.cleanWin
				cfg.RemapBatch = combo.remapBatch
				spec := checkin.RunSpec{Threads: 8, TotalQueries: 8_000,
					Mix: checkin.WorkloadA, Zipfian: true}

				direct := func() string {
					db, err := checkin.Open(cfg)
					if err != nil {
						t.Fatal(err)
					}
					db.Engine().Device().FTL().EnableMapOracle()
					db.Load()
					return renderRunOn(t, db, spec)
				}
				forked := func() string {
					db, err := checkin.Open(cfg)
					if err != nil {
						t.Fatal(err)
					}
					db.Engine().Device().FTL().EnableMapOracle()
					db.Load()
					snap, err := db.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					fdb, err := snap.Fork(cfg)
					if err != nil {
						t.Fatal(err)
					}
					fdb.Engine().Device().FTL().EnableMapOracle()
					return renderRunOn(t, fdb, spec)
				}

				want := direct()
				if got := forked(); got != want {
					t.Fatalf("snapshot/fork run diverges from direct run:\n%s",
						firstDiff(want, got))
				}
			})
		}
	}
}
