package checkin_test

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/checkin-kv/checkin/internal/harness"
)

// One benchmark per paper table/figure. Each iteration regenerates the
// artifact at a reduced scale (the full-size runs live in
// cmd/checkin-bench); run with -benchtime=1x for a single regeneration:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// The harness prints the same rows the paper reports; benchmarks only
// verify the generators run and time them.

// benchOpts keeps benchmark iterations affordable: small query counts and a
// short thread sweep.
func benchOpts() harness.Opts {
	return harness.Opts{Scale: 0.1, Threads: []int{4, 16}, Seed: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := harness.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := exp.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkTable1Config(b *testing.B)             { runExperiment(b, "table1") }
func BenchmarkFig3aAmplification(b *testing.B)       { runExperiment(b, "fig3a") }
func BenchmarkFig3bCheckpointTime(b *testing.B)      { runExperiment(b, "fig3b") }
func BenchmarkFig3cLatencySpike(b *testing.B)        { runExperiment(b, "fig3c") }
func BenchmarkFig8aRedundantWrites(b *testing.B)     { runExperiment(b, "fig8a") }
func BenchmarkFig8bGC(b *testing.B)                  { runExperiment(b, "fig8b") }
func BenchmarkLifetime(b *testing.B)                 { runExperiment(b, "lifetime") }
func BenchmarkFig9TailLatency(b *testing.B)          { runExperiment(b, "fig9") }
func BenchmarkFig10CheckpointTime(b *testing.B)      { runExperiment(b, "fig10") }
func BenchmarkFig11aThroughput(b *testing.B)         { runExperiment(b, "fig11a") }
func BenchmarkFig11bLatency(b *testing.B)            { runExperiment(b, "fig11b") }
func BenchmarkFig12IntervalSensitivity(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13aMappingUnit(b *testing.B)        { runExperiment(b, "fig13a") }
func BenchmarkFig13bSpaceOverhead(b *testing.B)      { runExperiment(b, "fig13b") }
func BenchmarkAblations(b *testing.B)                { runExperiment(b, "ablation") }
func BenchmarkCompareReplay(b *testing.B)            { runExperiment(b, "compare") }
func BenchmarkRecovery(b *testing.B)                 { runExperiment(b, "recovery") }

// BenchmarkParallelSuite measures the worker-pool speedup end to end: the
// same multi-run experiments executed strictly sequentially and at NumCPU
// workers. fig9 (10 runs) and compare (5 runs sharing one trace) are the
// suite; both render byte-identically at either setting (see
// internal/harness TestParallelDeterminism). The recorded speedup snapshot
// lives in BENCH_runner.json.
func BenchmarkParallelSuite(b *testing.B) {
	suite := []string{"fig9", "compare"}
	for _, bc := range []struct {
		name string
		par  int
	}{
		{"sequential", 1},
		{fmt.Sprintf("parallel-%d", runtime.NumCPU()), 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, id := range suite {
					exp, err := harness.Lookup(id)
					if err != nil {
						b.Fatal(err)
					}
					o := benchOpts()
					o.Parallelism = bc.par
					table, err := exp.Run(o)
					if err != nil {
						b.Fatal(err)
					}
					if len(table.Rows) == 0 {
						b.Fatalf("%s produced no rows", id)
					}
				}
			}
		})
	}
}
