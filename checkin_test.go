package checkin_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/trace"
)

func smallConfig(s checkin.Strategy) checkin.Config {
	cfg := checkin.DefaultConfig()
	cfg.Strategy = s
	cfg.Keys = 5_000
	cfg.CheckpointInterval = 100 * time.Millisecond
	return cfg
}

func TestOpenAllStrategies(t *testing.T) {
	for _, s := range checkin.Strategies {
		db, err := checkin.Open(smallConfig(s))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if db.Config().Strategy != s {
			t.Errorf("%v: config strategy mismatch", s)
		}
		// Defaults fill zero fields.
		if db.Config().QueueDepth == 0 || db.Config().PCIeMBps == 0 {
			t.Errorf("%v: zero fields not defaulted", s)
		}
	}
}

func TestOpenRejectsOversizedLayout(t *testing.T) {
	cfg := smallConfig(checkin.StrategyCheckIn)
	cfg.Keys = 10_000_000
	if _, err := checkin.Open(cfg); err == nil {
		t.Fatal("oversized layout accepted")
	}
}

func TestMappingUnitDefaultsPerStrategy(t *testing.T) {
	for _, s := range checkin.Strategies {
		db, err := checkin.Open(smallConfig(s))
		if err != nil {
			t.Fatal(err)
		}
		got := db.Config().MappingUnit
		want := s.DefaultMappingUnit()
		if got != want {
			t.Errorf("%v: mapping unit %d, want %d", s, got, want)
		}
	}
}

func TestEndToEndAllStrategies(t *testing.T) {
	for _, s := range checkin.Strategies {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			db, err := checkin.Open(smallConfig(s))
			if err != nil {
				t.Fatal(err)
			}
			db.Load()
			m, err := db.Run(checkin.RunSpec{
				Threads: 8, TotalQueries: 12_000,
				Mix: checkin.WorkloadA, Zipfian: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if m.Queries != 12_000 {
				t.Errorf("Queries = %d", m.Queries)
			}
			if m.Checkpoints() == 0 {
				t.Error("no checkpoints completed")
			}
			if m.ThroughputQPS() <= 0 {
				t.Error("no throughput")
			}
			// Recovery must reproduce the durable state for every strategy.
			rep := db.SimulateRecovery()
			for k, v := range db.DurableVersions() {
				if rep.Recovered[k] != v {
					t.Fatalf("key %d: recovered v%d, durable v%d", k, rep.Recovered[k], v)
				}
			}
		})
	}
}

func TestRedundantWriteOrdering(t *testing.T) {
	// The paper's headline: redundant writes Baseline ≫ ISC-C > Check-In.
	results := map[checkin.Strategy]uint64{}
	for _, s := range []checkin.Strategy{checkin.StrategyBaseline, checkin.StrategyISCC, checkin.StrategyCheckIn} {
		db, err := checkin.Open(smallConfig(s))
		if err != nil {
			t.Fatal(err)
		}
		db.Load()
		m, err := db.Run(checkin.RunSpec{
			Threads: 8, TotalQueries: 20_000,
			Mix: checkin.WorkloadWO, Zipfian: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		results[s] = m.RedundantWrites()
	}
	base, iscc, ci := results[checkin.StrategyBaseline], results[checkin.StrategyISCC], results[checkin.StrategyCheckIn]
	if !(ci < iscc && iscc < base) {
		t.Errorf("redundant writes ordering violated: baseline=%d iscc=%d checkin=%d", base, iscc, ci)
	}
	if ci > base/5 {
		t.Errorf("Check-In redundant writes %d not ≪ baseline %d", ci, base)
	}
}

func TestCheckpointTimeOrdering(t *testing.T) {
	// Locked checkpoint time: remap strategies far below the copy family.
	results := map[checkin.Strategy]time.Duration{}
	for _, s := range []checkin.Strategy{checkin.StrategyBaseline, checkin.StrategyCheckIn} {
		cfg := smallConfig(s)
		cfg.LockDuringCheckpoint = true
		db, err := checkin.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		db.Load()
		m, err := db.Run(checkin.RunSpec{
			Threads: 8, TotalQueries: 15_000,
			Mix: checkin.WorkloadWO, Zipfian: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.Checkpoints() == 0 {
			t.Fatalf("%v: no checkpoints", s)
		}
		results[s] = time.Duration(m.MeanCheckpointTime())
	}
	if results[checkin.StrategyCheckIn]*3 > results[checkin.StrategyBaseline] {
		t.Errorf("Check-In checkpoint %v not ≪ baseline %v",
			results[checkin.StrategyCheckIn], results[checkin.StrategyBaseline])
	}
}

func TestDeterministicPublicRuns(t *testing.T) {
	out := make([]string, 2)
	for i := range out {
		db, err := checkin.Open(smallConfig(checkin.StrategyCheckIn))
		if err != nil {
			t.Fatal(err)
		}
		db.Load()
		m, err := db.Run(checkin.RunSpec{
			Threads: 4, TotalQueries: 5_000,
			Mix: checkin.WorkloadF, Zipfian: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = fmt.Sprintf("%v %d %d %d", m.Elapsed, m.FlashPrograms(), m.Checkpoints(), m.ReadQueries)
	}
	if out[0] != out[1] {
		t.Errorf("runs diverged: %s vs %s", out[0], out[1])
	}
}

func TestSeedChangesRun(t *testing.T) {
	elapsed := make([]time.Duration, 2)
	for i, seed := range []int64{1, 2} {
		cfg := smallConfig(checkin.StrategyCheckIn)
		cfg.Seed = seed
		db, err := checkin.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		db.Load()
		m, err := db.Run(checkin.RunSpec{Threads: 4, TotalQueries: 5_000, Mix: checkin.WorkloadA, Zipfian: true})
		if err != nil {
			t.Fatal(err)
		}
		elapsed[i] = time.Duration(m.Elapsed)
	}
	if elapsed[0] == elapsed[1] {
		t.Error("different seeds produced identical elapsed times (suspicious)")
	}
}

func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range checkin.Strategies {
		got, err := checkin.ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := checkin.ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestRecordSizers(t *testing.T) {
	f := checkin.FixedRecords(777)
	if f.SizeOf(0) != 777 {
		t.Error("FixedRecords wrong")
	}
	m := checkin.MixedRecords("mix", []int{100, 200}, []int{1, 1})
	if sz := m.SizeOf(42); sz != 100 && sz != 200 {
		t.Errorf("MixedRecords produced %d", sz)
	}
	for _, p := range []checkin.Sizer{checkin.PatternP1, checkin.PatternP2, checkin.PatternP3, checkin.PatternP4} {
		if !strings.HasPrefix(p.Name(), "P") {
			t.Errorf("pattern name %q", p.Name())
		}
	}
}

func TestJournalStatsExposed(t *testing.T) {
	db, err := checkin.Open(smallConfig(checkin.StrategyCheckIn))
	if err != nil {
		t.Fatal(err)
	}
	db.Load()
	if _, err := db.Run(checkin.RunSpec{Threads: 4, TotalQueries: 4_000, Mix: checkin.WorkloadWO, Zipfian: false}); err != nil {
		t.Fatal(err)
	}
	js := db.JournalStats()
	if js.Logs == 0 || js.StoredBytes == 0 {
		t.Errorf("journal stats empty: %+v", js)
	}
	if js.SpaceOverhead() < 1 {
		t.Errorf("aligned journaling overhead %v < 1", js.SpaceOverhead())
	}
	if db.Lifetime() <= 0 {
		t.Error("lifetime projection not positive")
	}
}

func TestDeferGCOverride(t *testing.T) {
	no := false
	cfg := smallConfig(checkin.StrategyCheckIn)
	cfg.DeferGC = &no
	if _, err := checkin.Open(cfg); err != nil {
		t.Fatalf("DeferGC override rejected: %v", err)
	}
}

func TestMixReexports(t *testing.T) {
	if checkin.WorkloadA.ReadPct != 50 || checkin.WorkloadA.UpdatePct != 50 {
		t.Error("WorkloadA wrong")
	}
	if checkin.WorkloadF.RMWPct != 50 {
		t.Error("WorkloadF wrong")
	}
	if checkin.WorkloadWO.UpdatePct != 100 {
		t.Error("WorkloadWO wrong")
	}
}

func TestSimulateSPOR(t *testing.T) {
	db, err := checkin.Open(smallConfig(checkin.StrategyCheckIn))
	if err != nil {
		t.Fatal(err)
	}
	db.Load()
	if _, err := db.Run(checkin.RunSpec{Threads: 8, TotalQueries: 10_000, Mix: checkin.WorkloadA, Zipfian: true}); err != nil {
		t.Fatal(err)
	}
	rep := db.SimulateSPOR()
	if rep.Mismatches != 0 {
		t.Fatalf("device SPOR diverged: %s", rep)
	}
	if rep.ScannedPages == 0 || rep.BoundUnits == 0 {
		t.Errorf("SPOR did nothing: %s", rep)
	}
	if rep.Duration == 0 {
		t.Error("SPOR scan cost not modeled")
	}
}

func TestTracing(t *testing.T) {
	cfg := smallConfig(checkin.StrategyCheckIn)
	cfg.TraceCapacity = 4096
	db, err := checkin.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.Load()
	if _, err := db.Run(checkin.RunSpec{Threads: 8, TotalQueries: 10_000, Mix: checkin.WorkloadWO, Zipfian: true}); err != nil {
		t.Fatal(err)
	}
	tr := db.Trace()
	if tr == nil {
		t.Fatal("tracer nil despite TraceCapacity")
	}
	if tr.Count(trace.KindCheckpointBegin) == 0 || tr.Count(trace.KindCheckpointEnd) == 0 {
		t.Error("no checkpoint events traced")
	}
	if tr.Count(trace.KindJournalCommit) == 0 {
		t.Error("no journal commits traced")
	}
	if tr.Count(trace.KindJournalSwitch) == 0 {
		t.Error("no journal switches traced")
	}
	// Begin/end must pair up.
	if tr.Count(trace.KindCheckpointBegin) != tr.Count(trace.KindCheckpointEnd) {
		t.Errorf("unbalanced checkpoint events: %d begins, %d ends",
			tr.Count(trace.KindCheckpointBegin), tr.Count(trace.KindCheckpointEnd))
	}
	// Disabled by default.
	db2, _ := checkin.Open(smallConfig(checkin.StrategyCheckIn))
	if db2.Trace() != nil {
		t.Error("tracer on by default")
	}
}

func TestRecordWorkloadAndEnergy(t *testing.T) {
	tr, err := checkin.RecordWorkload(1000, checkin.FixedRecords(512), checkin.WorkloadA, true, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != 500 {
		t.Fatalf("trace length %d", len(tr.Ops))
	}
	if _, err := checkin.RecordWorkload(1000, checkin.FixedRecords(512), checkin.Mix{ReadPct: 5}, false, 10, 1); err == nil {
		t.Error("bad mix accepted")
	}
	// uniform path
	tr2, err := checkin.RecordWorkload(1000, checkin.FixedRecords(512), checkin.WorkloadWO, false, 100, 7)
	if err != nil || len(tr2.Ops) != 100 {
		t.Fatalf("uniform record failed: %v", err)
	}

	db, err := checkin.Open(smallConfig(checkin.StrategyCheckIn))
	if err != nil {
		t.Fatal(err)
	}
	db.Load()
	if db.FlashEnergyMJ() <= 0 {
		t.Error("load consumed no flash energy")
	}
}

func TestOpenFillsTimingDefaults(t *testing.T) {
	cfg := checkin.Config{Strategy: checkin.StrategyBaseline, Keys: 1000}
	db, err := checkin.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := db.Config()
	if got.ReadLatency == 0 || got.ProgramLatency == 0 || got.EraseLatency == 0 ||
		got.OverProvision == 0 || got.CheckpointInterval == 0 || got.JournalSoftFrac == 0 ||
		got.Seed == 0 || got.Records == nil || got.CompressRatio == 0 {
		t.Errorf("defaults not filled: %+v", got)
	}
}

func TestWorkloadEEndToEnd(t *testing.T) {
	db, err := checkin.Open(smallConfig(checkin.StrategyCheckIn))
	if err != nil {
		t.Fatal(err)
	}
	db.Load()
	m, err := db.Run(checkin.RunSpec{Threads: 4, TotalQueries: 1000, Mix: checkin.WorkloadE, Zipfian: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Queries != 1000 {
		t.Errorf("Queries = %d", m.Queries)
	}
}

func TestGCPolicyConfig(t *testing.T) {
	for _, pol := range []string{"", "greedy", "cost-benefit", "fifo"} {
		cfg := smallConfig(checkin.StrategyCheckIn)
		cfg.GCPolicy = pol
		if _, err := checkin.Open(cfg); err != nil {
			t.Errorf("policy %q rejected: %v", pol, err)
		}
	}
	cfg := smallConfig(checkin.StrategyCheckIn)
	cfg.GCPolicy = "bogus"
	if _, err := checkin.Open(cfg); err == nil {
		t.Error("bogus GC policy accepted")
	}
}
