module github.com/checkin-kv/checkin

go 1.24
