package checkin_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/checkin-kv/checkin"
)

// snapTestConfig is a reduced device that still exercises GC and metadata
// flushes, small enough that a load phase takes well under a second.
func snapTestConfig(s checkin.Strategy) checkin.Config {
	cfg := checkin.DefaultConfig()
	cfg.Strategy = s
	cfg.Channels = 2
	cfg.DiesPerChannel = 2
	cfg.PlanesPerDie = 1
	cfg.BlocksPerPlane = 24
	cfg.PagesPerBlock = 32
	cfg.Keys = 4000
	cfg.Records = checkin.FixedRecords(512)
	cfg.JournalHalfMB = 2
	cfg.DataCacheMB = 1
	cfg.CheckpointInterval = 50 * time.Millisecond
	return cfg
}

func snapTestSpec() checkin.RunSpec {
	return checkin.RunSpec{Threads: 4, TotalQueries: 6000, Mix: checkin.WorkloadA, Zipfian: true}
}

// runSignature reduces a finished run to a string covering the metrics
// digest, durable versions, journal stats and device state — byte-equal
// signatures mean the simulations were indistinguishable.
func runSignature(db *checkin.DB, m *checkin.Metrics) string {
	return fmt.Sprintf("%s\n%v\n%+v\nlifetime=%v energy=%v",
		m.Summary(), db.DurableVersions(), db.JournalStats(), db.Lifetime(), db.FlashEnergyMJ())
}

func directRun(t *testing.T, cfg checkin.Config, spec checkin.RunSpec) string {
	t.Helper()
	db, err := checkin.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.Load()
	m, err := db.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return runSignature(db, m)
}

func forkedRun(t *testing.T, snap *checkin.Snapshot, cfg checkin.Config, spec checkin.RunSpec) string {
	t.Helper()
	db, err := snap.Fork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := db.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return runSignature(db, m)
}

func captureSnapshot(t *testing.T, cfg checkin.Config) *checkin.Snapshot {
	t.Helper()
	db, err := checkin.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.Load()
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestSnapshotForkEquivalence verifies the tentpole invariant: a forked DB
// is indistinguishable from one that ran Load itself, including when the
// fork's run-phase configuration (seed, checkpoint interval) differs from
// the template's.
func TestSnapshotForkEquivalence(t *testing.T) {
	for _, s := range []checkin.Strategy{checkin.StrategyBaseline, checkin.StrategyCheckIn} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			cfg := snapTestConfig(s)
			spec := snapTestSpec()
			snap := captureSnapshot(t, cfg)

			if got, want := forkedRun(t, snap, cfg, spec), directRun(t, cfg, spec); got != want {
				t.Errorf("forked run diverged from direct run:\n--- fork ---\n%s\n--- direct ---\n%s", got, want)
			}

			// Same load phase, different run phase: the template must be
			// reusable across seeds and checkpoint intervals.
			varied := cfg
			varied.Seed = 99
			varied.CheckpointInterval = 30 * time.Millisecond
			if got, want := forkedRun(t, snap, varied, spec), directRun(t, varied, spec); got != want {
				t.Errorf("forked run (varied run-phase config) diverged from direct run:\n--- fork ---\n%s\n--- direct ---\n%s", got, want)
			}
		})
	}
}

// TestSnapshotForkIsolation forks one snapshot from many goroutines at once
// (run under -race) and checks every fork produces the identical result —
// any shared mutable state between siblings would surface as a race or a
// divergent signature.
func TestSnapshotForkIsolation(t *testing.T) {
	cfg := snapTestConfig(checkin.StrategyCheckIn)
	spec := snapTestSpec()
	snap := captureSnapshot(t, cfg)
	want := directRun(t, cfg, spec)

	const forks = 6
	sigs := make([]string, forks)
	var wg sync.WaitGroup
	for i := 0; i < forks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			db, err := snap.Fork(cfg)
			if err != nil {
				sigs[i] = "fork error: " + err.Error()
				return
			}
			m, err := db.Run(spec)
			if err != nil {
				sigs[i] = "run error: " + err.Error()
				return
			}
			sigs[i] = runSignature(db, m)
		}(i)
	}
	wg.Wait()
	for i, sig := range sigs {
		if sig != want {
			t.Errorf("fork %d diverged from direct run", i)
		}
	}

	// The snapshot must stay pristine: a fork taken after all of the above
	// still matches.
	if got := forkedRun(t, snap, cfg, spec); got != want {
		t.Error("fork after concurrent use diverged — snapshot state was mutated")
	}
}

// TestSnapshotForkCrashConsistency runs the crash-oriented validators
// against forked state: host recovery, device SPOR rebuild and FTL
// invariants must hold exactly as they do for a directly loaded DB.
func TestSnapshotForkCrashConsistency(t *testing.T) {
	for _, s := range []checkin.Strategy{checkin.StrategyBaseline, checkin.StrategyCheckIn} {
		cfg := snapTestConfig(s)
		snap := captureSnapshot(t, cfg)
		db, err := snap.Fork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Run(snapTestSpec()); err != nil {
			t.Fatal(err)
		}
		rep := db.SimulateRecovery()
		if rep == nil {
			t.Fatalf("%v: nil recovery report", s)
		}
		if spor := db.SimulateSPOR(); spor.Mismatches != 0 {
			t.Errorf("%v: SPOR rebuild of forked state lost durable state: %v", s, spor)
		}
		if err := db.Engine().Device().FTL().CheckInvariants(); err != nil {
			t.Errorf("%v: FTL invariants violated on forked state: %v", s, err)
		}
	}
}

// TestSnapshotGates checks the refusal paths: unsnapshottable configs,
// snapshots taken at the wrong time, and fingerprint-mismatched forks.
func TestSnapshotGates(t *testing.T) {
	cfg := snapTestConfig(checkin.StrategyCheckIn)

	db, err := checkin.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Snapshot(); err == nil {
		t.Error("snapshot before Load succeeded")
	}
	db.Load()
	if _, err := db.Run(snapTestSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Snapshot(); err == nil {
		t.Error("snapshot after Run succeeded")
	}

	traced := cfg
	traced.TraceCapacity = 64
	tdb, err := checkin.Open(traced)
	if err != nil {
		t.Fatal(err)
	}
	tdb.Load()
	if _, err := tdb.Snapshot(); err == nil {
		t.Error("snapshot with tracing enabled succeeded")
	}
	if _, ok := checkin.LoadFingerprint(traced); ok {
		t.Error("LoadFingerprint claimed a traced config is snapshottable")
	}

	snap := captureSnapshot(t, cfg)
	other := cfg
	other.Keys = cfg.Keys * 2
	if _, err := snap.Fork(other); err == nil {
		t.Error("fork with a different load fingerprint succeeded")
	}

	// Run-phase fields must not perturb the load fingerprint; load-phase
	// fields must.
	base, _ := checkin.LoadFingerprint(cfg)
	seeded := cfg
	seeded.Seed = 1234
	if fp, _ := checkin.LoadFingerprint(seeded); fp != base {
		t.Error("Seed changed the load fingerprint")
	}
	resized := cfg
	resized.BlocksPerPlane = 32
	if fp, _ := checkin.LoadFingerprint(resized); fp == base {
		t.Error("BlocksPerPlane did not change the load fingerprint")
	}
	full1, _ := checkin.Fingerprint(cfg)
	full2, _ := checkin.Fingerprint(seeded)
	if full1 == full2 {
		t.Error("Seed did not change the full fingerprint")
	}
}

// TestSnapshotForkDegradedDevice round-trips a device already degraded by
// the NAND fault model: the heavy error profile makes the load phase itself
// suffer program failures and block retirements, so the captured rest point
// carries retired blocks, a drained (or partially drained) spare pool and a
// mid-stream fault-RNG state. The fork must (1) satisfy the FTL invariants
// immediately after restore, (2) replay the run phase byte-identically to a
// direct load — which only holds if the fault stream resumes from the exact
// captured state — and (3) satisfy the invariants again after the run.
func TestSnapshotForkDegradedDevice(t *testing.T) {
	profile, err := checkin.ParseErrorProfile("heavy")
	if err != nil {
		t.Fatal(err)
	}
	cfg := profile.Apply(snapTestConfig(checkin.StrategyCheckIn))
	// The reduced load phase programs only a few hundred pages; inflate the
	// program-failure rate so retirements deterministically land inside it.
	cfg.ProgramFailRate = 0.02
	spec := snapTestSpec()

	db, err := checkin.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.Load()
	if h := db.Health(); h.RetiredBlocks == 0 {
		t.Fatalf("load under the heavy profile retired no blocks (health %+v) — test lost its degraded premise", h)
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	fork, err := snap.Fork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fork.Engine().Device().FTL().CheckInvariants(); err != nil {
		t.Fatalf("restored degraded device violates FTL invariants: %v", err)
	}
	if got, want := fork.Health(), db.Health(); got != want {
		t.Fatalf("restored health %+v, want %+v", got, want)
	}
	m, err := fork.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := runSignature(fork, m)
	if want := directRun(t, cfg, spec); got != want {
		t.Errorf("forked degraded run diverged from direct run:\n--- fork ---\n%s\n--- direct ---\n%s", got, want)
	}
	if err := fork.Engine().Device().FTL().CheckInvariants(); err != nil {
		t.Errorf("degraded device violates FTL invariants after forked run: %v", err)
	}
}

// lsmSnapConfig is snapTestConfig on the LSM backend: a slightly larger
// device (the run area needs 3x the base-run payload beyond the WAL halves
// and manifest slots) with a memtable small enough that the run phase
// crosses several flush epochs and compactions.
func lsmSnapConfig(policy string) checkin.Config {
	cfg := snapTestConfig(checkin.StrategyCheckIn)
	cfg.Engine = "lsm"
	cfg.Compaction = policy
	cfg.MemtableEntries = 256
	cfg.BlocksPerPlane = 40
	return cfg
}

// TestLSMSnapshotForkEquivalence is the fork-vs-direct byte-equivalence
// check on the LSM backend: a DB forked from a post-Load snapshot must run
// the workload indistinguishably from one that loaded itself — WAL state,
// run layout, allocator free list and memtable all restore exactly — for
// both compaction policies, including when the fork varies run-phase knobs.
func TestLSMSnapshotForkEquivalence(t *testing.T) {
	for _, policy := range []string{"leveled", "tiered"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			cfg := lsmSnapConfig(policy)
			spec := snapTestSpec()
			snap := captureSnapshot(t, cfg)

			if got, want := forkedRun(t, snap, cfg, spec), directRun(t, cfg, spec); got != want {
				t.Errorf("forked LSM run diverged from direct run:\n--- fork ---\n%s\n--- direct ---\n%s", got, want)
			}

			// One LSM template serves both policies and any memtable bound:
			// those are run-phase knobs, outside the load fingerprint.
			varied := cfg
			varied.Seed = 99
			varied.Compaction = map[string]string{"leveled": "tiered", "tiered": "leveled"}[policy]
			varied.MemtableEntries = 192
			if got, want := forkedRun(t, snap, varied, spec), directRun(t, varied, spec); got != want {
				t.Errorf("forked LSM run (varied run-phase config) diverged from direct run:\n--- fork ---\n%s\n--- direct ---\n%s", got, want)
			}
		})
	}
}

// TestLSMSnapshotForkIsolation forks one LSM snapshot from many goroutines
// at once (run under -race): sibling forks share immutable snapshot state
// only, so every fork must produce the identical signature with no data
// races across WAL buffers, run payloads or the allocator.
func TestLSMSnapshotForkIsolation(t *testing.T) {
	cfg := lsmSnapConfig("leveled")
	spec := snapTestSpec()
	snap := captureSnapshot(t, cfg)
	want := directRun(t, cfg, spec)

	const forks = 6
	sigs := make([]string, forks)
	var wg sync.WaitGroup
	for i := 0; i < forks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			db, err := snap.Fork(cfg)
			if err != nil {
				sigs[i] = "fork error: " + err.Error()
				return
			}
			m, err := db.Run(spec)
			if err != nil {
				sigs[i] = "run error: " + err.Error()
				return
			}
			sigs[i] = runSignature(db, m)
		}(i)
	}
	wg.Wait()
	for i, sig := range sigs {
		if sig != want {
			t.Errorf("LSM fork %d diverged from direct run:\n--- fork ---\n%s\n--- direct ---\n%s", i, sig, want)
		}
	}
	if got := forkedRun(t, snap, cfg, spec); got != want {
		t.Error("LSM fork after concurrent use diverged — snapshot state was mutated")
	}
}

// TestSnapshotEngineGate pins the cross-backend refusal: the engine is a
// load-phase axis, so a journal snapshot must never fork into an LSM config
// or vice versa — the load fingerprints differ by construction.
func TestSnapshotEngineGate(t *testing.T) {
	lsmCfg := lsmSnapConfig("leveled")
	journalCfg := lsmCfg
	journalCfg.Engine = "journal"

	jfp, ok := checkin.LoadFingerprint(journalCfg)
	if !ok {
		t.Fatal("journal config not snapshottable")
	}
	lfp, ok := checkin.LoadFingerprint(lsmCfg)
	if !ok {
		t.Fatal("lsm config not snapshottable")
	}
	if jfp == lfp {
		t.Fatal("journal and lsm configs share a load fingerprint — the template cache would serve a journal snapshot to an LSM run")
	}

	jsnap := captureSnapshot(t, journalCfg)
	if _, err := jsnap.Fork(lsmCfg); err == nil {
		t.Error("journal snapshot forked into an LSM config")
	}
	lsnap := captureSnapshot(t, lsmCfg)
	if _, err := lsnap.Fork(journalCfg); err == nil {
		t.Error("LSM snapshot forked into a journal config")
	}
}
