package checkin_test

import (
	"fmt"
	"log"
	"time"

	checkin "github.com/checkin-kv/checkin"
)

// ExampleOpen shows the minimal open → load → run → report flow.
func ExampleOpen() {
	cfg := checkin.DefaultConfig()
	cfg.Strategy = checkin.StrategyCheckIn
	cfg.Keys = 1_000
	cfg.CheckpointInterval = 100 * time.Millisecond

	db, err := checkin.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db.Load()

	m, err := db.Run(checkin.RunSpec{
		Threads:      4,
		TotalQueries: 2_000,
		Mix:          checkin.WorkloadA,
		Zipfian:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed %d queries with %d checkpoints\n", m.Queries, m.Checkpoints())
	// Output: completed 2000 queries with 2 checkpoints
}

// ExampleDB_SimulateRecovery validates crash consistency: every committed
// update must be reconstructible from the checkpoint plus the journal.
func ExampleDB_SimulateRecovery() {
	cfg := checkin.DefaultConfig()
	cfg.Keys = 1_000
	db, err := checkin.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db.Load()
	if _, err := db.Run(checkin.RunSpec{
		Threads: 2, TotalQueries: 1_000, Mix: checkin.WorkloadWO, Zipfian: false,
	}); err != nil {
		log.Fatal(err)
	}

	rep := db.SimulateRecovery()
	lost := 0
	for k, v := range db.DurableVersions() {
		if rep.Recovered[k] != v {
			lost++
		}
	}
	fmt.Printf("lost updates: %d\n", lost)
	// Output: lost updates: 0
}

// ExampleParseStrategy resolves configuration names from flags or files.
func ExampleParseStrategy() {
	s, err := checkin.ParseStrategy("ISC-C")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.Offloaded(), s.UsesRemap(), s.SectorAligned())
	// Output: true true false
}

// ExampleConfig_sweep shows how experiments override single knobs.
func ExampleConfig_sweep() {
	for _, unit := range []int{512, 4096} {
		cfg := checkin.DefaultConfig()
		cfg.Strategy = checkin.StrategyCheckIn
		cfg.MappingUnit = unit
		cfg.Keys = 500
		db, err := checkin.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("unit %d: logical capacity %d MB\n",
			unit, db.Engine().Device().LogicalBytes()>>20)
	}
	// Output:
	// unit 512: logical capacity 457 MB
	// unit 4096: logical capacity 457 MB
}
