package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestYCSBSmoke runs the 3-workload × 2-strategy comparison at reduced
// scale and checks every row printed.
func TestYCSBSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 4, 3_000, 2_000); err != nil {
		t.Fatalf("ycsb example failed: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"A (50r/50u)", "F (50r/50rmw)", "WO (100u)"} {
		if strings.Count(out.String(), want) != 2 { // Baseline + Check-In
			t.Fatalf("workload %q missing rows:\n%s", want, out.String())
		}
	}
}
