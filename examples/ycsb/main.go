// YCSB comparison: runs workloads A, F and WO against the Baseline and
// Check-In configurations and prints throughput, mean latency and the
// checkpoint-sensitive tail percentiles side by side — the experiment a
// storage engineer would run first to decide whether in-storage
// checkpointing pays off for their workload.
//
//	go run ./examples/ycsb [-threads 32] [-queries 60000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	checkin "github.com/checkin-kv/checkin"
)

func main() {
	threads := flag.Int("threads", 32, "client threads")
	queries := flag.Int64("queries", 60_000, "queries per run")
	flag.Parse()

	workloads := []struct {
		name string
		mix  checkin.Mix
	}{
		{"A (50r/50u)", checkin.WorkloadA},
		{"F (50r/50rmw)", checkin.WorkloadF},
		{"WO (100u)", checkin.WorkloadWO},
	}
	strategies := []checkin.Strategy{checkin.StrategyBaseline, checkin.StrategyCheckIn}

	fmt.Printf("%-14s %-9s %10s %12s %12s %12s\n",
		"workload", "strategy", "kqps", "mean µs", "p99.9 µs", "ckpt ms")
	for _, wl := range workloads {
		for _, s := range strategies {
			cfg := checkin.DefaultConfig()
			cfg.Strategy = s
			cfg.CheckpointInterval = 500 * time.Millisecond
			db, err := checkin.Open(cfg)
			if err != nil {
				log.Fatal(err)
			}
			db.Load()
			m, err := db.Run(checkin.RunSpec{
				Threads:      *threads,
				TotalQueries: *queries,
				Mix:          wl.mix,
				Zipfian:      true,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %-9v %10.1f %12.1f %12.1f %12.1f\n",
				wl.name, s,
				m.ThroughputQPS()/1e3,
				float64(m.MeanLatency())/1e3,
				float64(m.AllLat.Percentile(99.9))/1e3,
				float64(m.MeanCheckpointTime())/1e6)
		}
	}
	fmt.Println("\nCheck-In's advantage concentrates in the tail: the remap checkpoint")
	fmt.Println("does (almost) no flash writes, so queries never queue behind a burst.")
}
