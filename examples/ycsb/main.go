// YCSB comparison: runs workloads A, F and WO against the Baseline and
// Check-In configurations and prints throughput, mean latency and the
// checkpoint-sensitive tail percentiles side by side — the experiment a
// storage engineer would run first to decide whether in-storage
// checkpointing pays off for their workload.
//
//	go run ./examples/ycsb [-threads 32] [-queries 60000]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	checkin "github.com/checkin-kv/checkin"
)

func main() {
	threads := flag.Int("threads", 32, "client threads")
	queries := flag.Int64("queries", 60_000, "queries per run")
	flag.Parse()

	if err := run(os.Stdout, *threads, *queries, 0); err != nil {
		log.Fatal(err)
	}
}

// run executes the comparison matrix; keys == 0 keeps the default record
// population.
func run(w io.Writer, threads int, queries, keys int64) error {
	workloads := []struct {
		name string
		mix  checkin.Mix
	}{
		{"A (50r/50u)", checkin.WorkloadA},
		{"F (50r/50rmw)", checkin.WorkloadF},
		{"WO (100u)", checkin.WorkloadWO},
	}
	strategies := []checkin.Strategy{checkin.StrategyBaseline, checkin.StrategyCheckIn}

	fmt.Fprintf(w, "%-14s %-9s %10s %12s %12s %12s\n",
		"workload", "strategy", "kqps", "mean µs", "p99.9 µs", "ckpt ms")
	for _, wl := range workloads {
		for _, s := range strategies {
			cfg := checkin.DefaultConfig()
			cfg.Strategy = s
			cfg.CheckpointInterval = 500 * time.Millisecond
			if keys > 0 {
				cfg.Keys = keys
			}
			db, err := checkin.Open(cfg)
			if err != nil {
				return err
			}
			db.Load()
			m, err := db.Run(checkin.RunSpec{
				Threads:      threads,
				TotalQueries: queries,
				Mix:          wl.mix,
				Zipfian:      true,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-14s %-9v %10.1f %12.1f %12.1f %12.1f\n",
				wl.name, s,
				m.ThroughputQPS()/1e3,
				float64(m.MeanLatency())/1e3,
				float64(m.AllLat.Percentile(99.9))/1e3,
				float64(m.MeanCheckpointTime())/1e6)
		}
	}
	fmt.Fprintln(w, "\nCheck-In's advantage concentrates in the tail: the remap checkpoint")
	fmt.Fprintln(w, "does (almost) no flash writes, so queries never queue behind a burst.")
	return nil
}
