// Crash-recovery demonstration: runs update traffic, crashes the system at
// three interesting instants — mid-traffic, mid-checkpoint, and right after
// a checkpoint — and shows what a restarted instance reconstructs from the
// last checkpoint plus the committed journal (Section III-G of the paper).
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	checkin "github.com/checkin-kv/checkin"
)

func main() {
	if err := run(os.Stdout, 10_000, 1); err != nil {
		log.Fatal(err)
	}
}

// run executes the three crash scenarios; scaleDiv divides each scenario's
// query count so tests can run the same path in milliseconds.
func run(w io.Writer, keys, scaleDiv int64) error {
	scenarios := []struct {
		name     string
		interval time.Duration
		queries  int64
	}{
		{"crash shortly after load (journal only)", time.Hour, 5_000},
		{"crash with checkpoints flowing", 100 * time.Millisecond, 40_000},
		{"crash after heavy churn", 250 * time.Millisecond, 80_000},
	}

	for _, sc := range scenarios {
		cfg := checkin.DefaultConfig()
		cfg.Strategy = checkin.StrategyCheckIn
		cfg.Keys = keys
		cfg.CheckpointInterval = sc.interval

		db, err := checkin.Open(cfg)
		if err != nil {
			return err
		}
		db.Load()
		if _, err := db.Run(checkin.RunSpec{
			Threads:      16,
			TotalQueries: sc.queries / scaleDiv,
			Mix:          checkin.WorkloadWO,
			Zipfian:      true,
		}); err != nil {
			return err
		}

		// Pull the plug.
		rep := db.SimulateRecovery()
		durable := db.DurableVersions()

		mismatch := 0
		for k, v := range durable {
			if rep.Recovered[k] != v {
				mismatch++
			}
		}
		fmt.Fprintf(w, "%s:\n", sc.name)
		fmt.Fprintf(w, "  keys restored from checkpoint : %d\n", rep.FromCheckpoint)
		fmt.Fprintf(w, "  journal logs replayed         : %d (%d KB read)\n",
			rep.ReplayedLogs, rep.JournalBytesRead/1024)
		fmt.Fprintf(w, "  simulated recovery time       : %v\n", rep.RecoveryTime)
		if mismatch == 0 {
			fmt.Fprintf(w, "  result: every committed update recovered, none lost\n\n")
		} else {
			fmt.Fprintf(w, "  result: %d keys DIVERGED (bug!)\n\n", mismatch)
			return fmt.Errorf("recovery mismatch in scenario %q: %d keys diverged", sc.name, mismatch)
		}
	}

	fmt.Fprintln(w, "The device guarantees the checkpointed state via the flash mapping")
	fmt.Fprintln(w, "table (plus OOB records for its own recovery); the engine replays")
	fmt.Fprintln(w, "only the journal tail written after the last checkpoint.")
	return nil
}
