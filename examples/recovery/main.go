// Crash-recovery demonstration: runs update traffic, crashes the system at
// three interesting instants — mid-traffic, mid-checkpoint, and right after
// a checkpoint — and shows what a restarted instance reconstructs from the
// last checkpoint plus the committed journal (Section III-G of the paper).
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"log"
	"time"

	checkin "github.com/checkin-kv/checkin"
)

func main() {
	scenarios := []struct {
		name     string
		interval time.Duration
		queries  int64
	}{
		{"crash shortly after load (journal only)", time.Hour, 5_000},
		{"crash with checkpoints flowing", 100 * time.Millisecond, 40_000},
		{"crash after heavy churn", 250 * time.Millisecond, 80_000},
	}

	for _, sc := range scenarios {
		cfg := checkin.DefaultConfig()
		cfg.Strategy = checkin.StrategyCheckIn
		cfg.Keys = 10_000
		cfg.CheckpointInterval = sc.interval

		db, err := checkin.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
		db.Load()
		if _, err := db.Run(checkin.RunSpec{
			Threads:      16,
			TotalQueries: sc.queries,
			Mix:          checkin.WorkloadWO,
			Zipfian:      true,
		}); err != nil {
			log.Fatal(err)
		}

		// Pull the plug.
		rep := db.SimulateRecovery()
		durable := db.DurableVersions()

		mismatch := 0
		for k, v := range durable {
			if rep.Recovered[k] != v {
				mismatch++
			}
		}
		fmt.Printf("%s:\n", sc.name)
		fmt.Printf("  keys restored from checkpoint : %d\n", rep.FromCheckpoint)
		fmt.Printf("  journal logs replayed         : %d (%d KB read)\n",
			rep.ReplayedLogs, rep.JournalBytesRead/1024)
		fmt.Printf("  simulated recovery time       : %v\n", rep.RecoveryTime)
		if mismatch == 0 {
			fmt.Printf("  result: every committed update recovered, none lost\n\n")
		} else {
			fmt.Printf("  result: %d keys DIVERGED (bug!)\n\n", mismatch)
			log.Fatal("recovery mismatch")
		}
	}

	fmt.Println("The device guarantees the checkpointed state via the flash mapping")
	fmt.Println("table (plus OOB records for its own recovery); the engine replays")
	fmt.Println("only the journal tail written after the last checkpoint.")
}
