package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRecoverySmoke runs all three crash scenarios at 1/16 scale; the
// per-scenario recovery comparison is a hard assertion inside run.
func TestRecoverySmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 2_000, 16); err != nil {
		t.Fatalf("recovery example failed: %v\noutput:\n%s", err, out.String())
	}
	if n := strings.Count(out.String(), "every committed update recovered"); n != 3 {
		t.Fatalf("expected 3 recovered scenarios, saw %d:\n%s", n, out.String())
	}
}
