// Quickstart: open a simulated Check-In key-value store system, load it,
// run a short YCSB-A burst, checkpoint, and verify crash recovery.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	checkin "github.com/checkin-kv/checkin"
)

func main() {
	if err := run(os.Stdout, 20_000, 16, 30_000); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, keys int64, threads int, queries int64) error {
	// The default configuration is a 512 MB simulated flash device running
	// the full Check-In stack: sector-aligned journaling plus in-storage
	// checkpointing by FTL remap.
	cfg := checkin.DefaultConfig()
	cfg.Strategy = checkin.StrategyCheckIn
	cfg.Keys = keys
	cfg.CheckpointInterval = 200 * time.Millisecond

	db, err := checkin.Open(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "loading records...")
	db.Load()

	fmt.Fprintf(w, "running %d YCSB-A queries on %d client threads...\n", queries, threads)
	m, err := db.Run(checkin.RunSpec{
		Threads:      threads,
		TotalQueries: queries,
		Mix:          checkin.WorkloadA,
		Zipfian:      true,
	})
	if err != nil {
		return err
	}

	fmt.Fprintln(w)
	fmt.Fprint(w, m.Summary())

	// Simulate pulling the plug right now: everything volatile is lost;
	// a restarted instance rebuilds from the last checkpoint plus the
	// committed journal logs.
	rep := db.SimulateRecovery()
	durable := db.DurableVersions()
	mismatches := 0
	for k, v := range durable {
		if rep.Recovered[k] != v {
			mismatches++
		}
	}
	fmt.Fprintf(w, "\ncrash recovery: %d logs replayed in %v, %d/%d keys match the durable state\n",
		rep.ReplayedLogs, rep.RecoveryTime, len(durable)-mismatches, len(durable))
	if mismatches > 0 {
		return fmt.Errorf("recovery diverged on %d keys", mismatches)
	}
	fmt.Fprintln(w, "recovery OK — no committed update was lost")
	return nil
}
