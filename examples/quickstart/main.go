// Quickstart: open a simulated Check-In key-value store system, load it,
// run a short YCSB-A burst, checkpoint, and verify crash recovery.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	checkin "github.com/checkin-kv/checkin"
)

func main() {
	// The default configuration is a 512 MB simulated flash device running
	// the full Check-In stack: sector-aligned journaling plus in-storage
	// checkpointing by FTL remap.
	cfg := checkin.DefaultConfig()
	cfg.Strategy = checkin.StrategyCheckIn
	cfg.Keys = 20_000
	cfg.CheckpointInterval = 200 * time.Millisecond

	db, err := checkin.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("loading records...")
	db.Load()

	fmt.Println("running 30k YCSB-A queries on 16 client threads...")
	m, err := db.Run(checkin.RunSpec{
		Threads:      16,
		TotalQueries: 30_000,
		Mix:          checkin.WorkloadA,
		Zipfian:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(m.Summary())

	// Simulate pulling the plug right now: everything volatile is lost;
	// a restarted instance rebuilds from the last checkpoint plus the
	// committed journal logs.
	rep := db.SimulateRecovery()
	durable := db.DurableVersions()
	mismatches := 0
	for k, v := range durable {
		if rep.Recovered[k] != v {
			mismatches++
		}
	}
	fmt.Printf("\ncrash recovery: %d logs replayed in %v, %d/%d keys match the durable state\n",
		rep.ReplayedLogs, rep.RecoveryTime, len(durable)-mismatches, len(durable))
	if mismatches > 0 {
		log.Fatalf("recovery diverged on %d keys", mismatches)
	}
	fmt.Println("recovery OK — no committed update was lost")
}
