package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickstartSmoke runs the example end to end at reduced scale: the
// recovery check at the end is a real assertion, so a pass means the full
// open → load → run → crash-recover path works.
func TestQuickstartSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 2_000, 4, 2_500); err != nil {
		t.Fatalf("quickstart failed: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "recovery OK") {
		t.Fatalf("missing recovery verdict in output:\n%s", out.String())
	}
}
