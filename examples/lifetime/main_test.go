package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestLifetimeSmoke runs all five strategies through the small-device
// write-only workload at reduced scale and checks every strategy reported
// a row.
func TestLifetimeSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 8_000, 2_000); err != nil {
		t.Fatalf("lifetime example failed: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"Baseline", "ISC-A", "ISC-B", "ISC-C", "Check-In"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("strategy %s missing from report:\n%s", want, out.String())
		}
	}
}
