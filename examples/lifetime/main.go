// Flash-lifetime study: drives an identical write-heavy workload through
// all five checkpointing configurations on a deliberately small device (so
// the free-block pool wraps several times) and reports the flash-level
// damage each design causes: programs, redundant writes, GC activity, and
// the projected block lifetime per the paper's Equation (1).
//
//	go run ./examples/lifetime [-queries 100000]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	checkin "github.com/checkin-kv/checkin"
)

func main() {
	queries := flag.Int64("queries", 100_000, "write queries per run")
	flag.Parse()

	if err := run(os.Stdout, *queries, 10_000); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, queries, keys int64) error {
	fmt.Fprintf(w, "%-9s %10s %10s %10s %10s %12s %9s\n",
		"strategy", "programs", "redundant", "gc", "reclaims", "rel.lifetime", "kqps")

	var basePrograms float64
	for _, s := range checkin.Strategies {
		cfg := checkin.DefaultConfig()
		cfg.Strategy = s
		cfg.BlocksPerPlane = 16 // 64 MB raw device: GC becomes visible fast
		cfg.Keys = keys
		cfg.JournalHalfMB = 4
		cfg.CheckpointInterval = 300 * time.Millisecond

		db, err := checkin.Open(cfg)
		if err != nil {
			return err
		}
		db.Load()
		m, err := db.Run(checkin.RunSpec{
			Threads:      32,
			TotalQueries: queries,
			Mix:          checkin.WorkloadWO,
			Zipfian:      true,
		})
		if err != nil {
			return err
		}

		programs := float64(m.FlashPrograms())
		if s == checkin.StrategyBaseline {
			basePrograms = programs
		}
		// Equal work, so lifetime ∝ 1/(blocks erased) ∝ 1/programs.
		rel := 0.0
		if programs > 0 {
			rel = basePrograms / programs
		}
		fmt.Fprintf(w, "%-9v %10d %10d %10d %10d %11.2fx %9.1f\n",
			s, m.FlashPrograms(), m.RedundantWrites(), m.GCCount(), m.Reclaims(),
			rel, m.ThroughputQPS()/1e3)
	}

	fmt.Fprintln(w, "\nEvery flash program eventually costs a P/E cycle. Check-In's remap")
	fmt.Fprintln(w, "checkpoint removes the duplicate writes, so the same query stream")
	fmt.Fprintln(w, "consumes a fraction of the erase budget (paper: ~3.9x the lifetime).")
	return nil
}
