// File-system generality demo: the paper argues Check-In's mechanism is not
// key-value specific — "our approach can be applied to other storage
// systems that use journaling and checkpointing (e.g., a file system)".
// This example runs a minimal data-journaling file layer (ext4
// data=journal style) over the same simulated SSD, checkpointing the
// journal either through the host (conventional jbd-style writeback) or by
// the device's remap command, and compares the flash-level cost.
//
//	go run ./examples/fsjournal
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"github.com/checkin-kv/checkin/internal/fsim"
	"github.com/checkin-kv/checkin/internal/ftl"
	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
)

func buildDevice(e *sim.Engine) (*ssd.Device, error) {
	geo := nand.Geometry{
		Channels: 4, PackagesPerChannel: 1, DiesPerPackage: 2, PlanesPerDie: 2,
		BlocksPerPlane: 64, PagesPerBlock: 64, PageSize: 4096,
	}
	tim := nand.Timing{
		ReadPage: 50 * sim.Microsecond, ProgramPage: 500 * sim.Microsecond,
		EraseBlock: 3 * sim.Millisecond, CmdOverhead: sim.Microsecond, ChannelMBps: 400,
	}.WithDefaultEnergy()
	arr, err := nand.New(e, geo, tim)
	if err != nil {
		return nil, err
	}
	fcfg := ftl.DefaultConfig()
	fcfg.UnitSize = 4096 // file blocks are naturally mapping-unit sized
	f, err := ftl.New(e, arr, fcfg)
	if err != nil {
		return nil, err
	}
	return ssd.New(e, f, ssd.DefaultConfig())
}

func main() {
	if err := run(os.Stdout, 8_000); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, rewrites int) error {
	fmt.Fprintf(w, "%-13s %10s %10s %12s %12s %12s\n",
		"mode", "writes", "ckpts", "ckpt time", "ckpt progs", "energy mJ")
	for _, mode := range []fsim.Mode{fsim.ModeConventional, fsim.ModeInStorage} {
		e := sim.NewEngine()
		dev, err := buildDevice(e)
		if err != nil {
			return err
		}
		cfg := fsim.DefaultConfig()
		fs, err := fsim.New(e, dev, cfg, mode)
		if err != nil {
			return err
		}
		done := false
		e.Go("workload", func(p *sim.Proc) {
			fs.Format(p)
			// rewrite a working set of blocks, like a database file or
			// VM image seeing steady in-place updates
			for i := 0; i < rewrites; i++ {
				fs.WriteBlock(p, int64((i*37)%int(fs.Blocks())))
			}
			fs.Checkpoint(p)
			done = true
		})
		for !done {
			e.RunUntil(e.Now() + 100*sim.Millisecond)
		}
		if err := fs.Validate(); err != nil {
			return err
		}
		st := fs.Stats()
		fmt.Fprintf(w, "%-13s %10d %10d %12v %12d %12.1f\n",
			mode, st.BlockWrites, st.Checkpoints, fs.CheckpointTime(),
			dev.FTL().Stats().ProgramsByTag[ftl.TagCheckpoint],
			float64(dev.FTL().Array().EnergyNJ())/1e6)
	}
	fmt.Fprintln(w, "\nWith 4 KB file blocks on a 4 KB mapping unit, the in-storage")
	fmt.Fprintln(w, "checkpoint is pure remapping: zero duplicate programs, and the")
	fmt.Fprintln(w, "checkpoint cost collapses — the paper's generality claim holds.")
	return nil
}
