package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFSJournalSmoke runs both journaling modes at reduced scale;
// fs.Validate inside run is the correctness assertion.
func TestFSJournalSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 800); err != nil {
		t.Fatalf("fsjournal example failed: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"conventional", "in-storage"} {
		if !strings.Contains(strings.ToLower(out.String()), want) {
			t.Fatalf("mode %q missing from report:\n%s", want, out.String())
		}
	}
}
