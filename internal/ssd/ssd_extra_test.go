package ssd

import (
	"testing"

	"github.com/checkin-kv/checkin/internal/ftl"
	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
)

type nandGeometry = nand.Geometry

func mustArray(t *testing.T, e *sim.Engine, geo nand.Geometry) *nand.Array {
	t.Helper()
	arr, err := nand.New(e, geo, nand.Timing{
		ReadPage: 50 * sim.Microsecond, ProgramPage: 500 * sim.Microsecond,
		EraseBlock: 3 * sim.Millisecond, CmdOverhead: sim.Microsecond, ChannelMBps: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestPressureBackgroundGC(t *testing.T) {
	// A small device under sustained overwrites must reclaim via the
	// deallocator's pressure path even with no idle windows.
	e, d := testDevice(t, func(c *Config) {
		c.DeallocatorPeriod = 2 * sim.Millisecond
		c.BackgroundGCBatch = 2
	})
	// Keep the array busy with continuous overwrites of a hot range.
	stop := false
	e.Go("writer", func(p *sim.Proc) {
		for i := 0; !stop && i < 100000; i++ {
			p.Wait(d.Write(int64(i%64)*4096, 4096, AreaData))
			if i%64 == 63 {
				p.Wait(d.Flush(AreaData))
			}
		}
	})
	for i := 0; i < 300 && d.FTL().Stats().GCInvocations+d.FTL().Stats().DeadReclaims == 0; i++ {
		e.RunUntil(e.Now() + 10*sim.Millisecond)
	}
	stop = true
	e.RunUntil(e.Now() + 50*sim.Millisecond)
	if d.FTL().Stats().GCInvocations+d.FTL().Stats().DeadReclaims == 0 {
		t.Error("no reclamation under sustained pressure")
	}
}

func TestMultiCoWUsesCache(t *testing.T) {
	e, d := testDevice(t, nil)
	d.Write(0, 8192, AreaJournal) // journal resident in DRAM cache
	e.Run()
	preReads := d.FTL().Array().Stats().Reads
	mf := d.MultiCoW([]CoWPair{
		{Src: 0, Dst: 131072, Len: 4096},
		{Src: 4096, Dst: 131072 + 4096, Len: 4096},
	})
	e.Run()
	if !mf.Done() {
		t.Fatal("MultiCoW never completed")
	}
	if got := d.FTL().Array().Stats().Reads - preReads; got != 0 {
		t.Errorf("cached MultiCoW did %d flash reads, want 0", got)
	}
}

func TestCheckpointRequestUsesCacheForRMW(t *testing.T) {
	e, d := testDevice(t, nil)
	d.Write(0, 4096, AreaJournal)
	e.Run()
	preReads := d.FTL().Array().Stats().Reads
	// Unaligned source forces RMW, but the source sits in the DRAM cache.
	_, cf := d.CheckpointRequest([]RemapEntry{{Src: 100, Dst: 131072, Len: 1024}})
	e.Run()
	if !cf.Done() {
		t.Fatal("checkpoint request never completed")
	}
	if got := d.FTL().Array().Stats().Reads - preReads; got != 0 {
		t.Errorf("cached RMW did %d flash reads, want 0", got)
	}
}

func TestDeviceSPORPassthrough(t *testing.T) {
	e, d := testDevice(t, nil)
	d.Write(0, 8192, AreaData)
	e.Run()
	d.Flush(AreaData)
	e.Run()
	rep := d.SimulateSPOR()
	if rep.Mismatches != 0 {
		t.Fatalf("device SPOR diverged: %s", rep)
	}
	if rep.BoundUnits == 0 {
		t.Error("device SPOR rebuilt nothing")
	}
}

func TestWearLevelingFromDeallocator(t *testing.T) {
	e := sim.NewEngine()
	// Direct FTL access to configure the threshold.
	geo := testGeoSmall()
	arr := mustArray(t, e, geo)
	fcfg := ftl.DefaultConfig()
	fcfg.OverProvision = 0.3
	fcfg.Parallelism = 2
	fcfg.WearDeltaThreshold = 2
	f, err := ftl.New(e, arr, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := DefaultConfig()
	dcfg.DeallocatorPeriod = 2 * sim.Millisecond
	d, err := New(e, f, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cold range once, then hot overwrites with idle gaps so the
	// deallocator's wear-level branch runs.
	d.Write(262144, 32768, AreaData)
	e.RunUntil(e.Now() + 50*sim.Millisecond)
	for i := 0; i < 150; i++ {
		d.Write(0, 8192, AreaData)
		d.Flush(AreaData)
		e.RunUntil(e.Now() + 20*sim.Millisecond) // idle window each round
	}
	if f.WearStats().Moves == 0 {
		t.Error("deallocator never wear-leveled despite idle windows and spread")
	}
}

// test helpers shared by the extra tests

func testGeoSmall() nandGeometry {
	return nandGeometry{
		Channels: 2, PackagesPerChannel: 1, DiesPerPackage: 1, PlanesPerDie: 1,
		BlocksPerPlane: 32, PagesPerBlock: 16, PageSize: 4096,
	}
}
