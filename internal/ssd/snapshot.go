package ssd

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/sim"
)

// DeviceState is a deep copy of the controller's mutable state at a
// quiescent instant (no in-flight commands, deallocator paused or idle).
// Captured by Snapshot and installed into a freshly constructed Device by
// Restore — the fork side of the load-phase snapshot-and-fork optimization.
// FIFOResources are pure arithmetic (busy-until horizon + busy total), so
// capturing them by value is exact.
type DeviceState struct {
	stats Stats
	bus   sim.FIFOResource
	cpu   sim.FIFOResource
	// cacheUnits lists resident cache units oldest-first, so replaying
	// them as front-insertions rebuilds the exact LRU order.
	cacheUnits []int64
}

// Snapshot captures the device's mutable state. It must be called at a
// quiescent instant: every submitted command completed (all queue slots
// free) and no acquirer waiting. Anything else indicates in-flight work
// whose continuations cannot be captured, and Snapshot returns an error.
func (d *Device) Snapshot() (*DeviceState, error) {
	if d.queue.Available() != d.cfg.QueueDepth || d.queue.Waiting() != 0 {
		return nil, fmt.Errorf("ssd: snapshot with %d/%d queue slots free and %d waiters (device not quiescent)",
			d.queue.Available(), d.cfg.QueueDepth, d.queue.Waiting())
	}
	s := &DeviceState{stats: d.stats, bus: d.bus, cpu: d.cpu}
	if d.cache != nil {
		s.cacheUnits = make([]int64, 0, len(d.cache.index))
		for sl := d.cache.tail; sl >= 0; sl = d.cache.prev[sl] {
			s.cacheUnits = append(s.cacheUnits, d.cache.units[sl])
		}
	}
	return s, nil
}

// Restore installs a previously captured state into d, which must be freshly
// constructed from the same Config (same queue depth, cache capacity and
// deallocator period). The deallocator is re-armed one period after the
// restored clock, exactly as ResumeDeallocator would after a paused drain —
// the caller must have restored the sim engine first.
func (d *Device) Restore(s *DeviceState) {
	d.stats = s.stats
	d.bus = s.bus
	d.cpu = s.cpu
	if d.cache != nil {
		d.cache.reset()
		for _, u := range s.cacheUnits {
			sl := d.cache.alloc(u)
			d.cache.pushFront(sl)
			d.cache.index[u] = sl
		}
	}
	// The constructor's tick event was discarded with the engine restore;
	// forget it and arm a fresh one on the restored timeline.
	d.deallocArmed = false
	d.deallocPaused = false
	if d.cfg.DeallocatorPeriod > 0 {
		d.armDeallocator()
	}
}
