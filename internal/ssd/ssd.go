// Package ssd models the Check-In SSD controller: an NVMe-like host
// interface with bounded queue depth and PCIe transfer costs, an embedded-
// CPU cost model, a DRAM data cache, and the in-storage checkpointing
// engine (ISCE) consisting of the log manager (journal write path), the
// checkpoint manager (CoW and remap command service, Algorithm 1) and the
// deallocator (journal trim and idle-time garbage collection).
//
// The storage engine talks to the device exclusively through this package's
// command methods — the simulated equivalent of the block I/O interface
// plus the paper's vendor-specific commands.
package ssd

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/ftl"
	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/sim"
)

// Area tells the device which logical region a host write targets, standing
// in for the stream hints a real engine passes via write-hint/flexible data
// placement. It selects the FTL stream and accounting tag.
type Area uint8

// Host write areas. AreaCheckpoint marks host-issued writes that rewrite
// journaled data during an engine-side (baseline) checkpoint, so the FTL
// accounts them as duplicate writes.
const (
	AreaJournal Area = iota
	AreaData
	AreaCheckpoint
)

func (a Area) stream() ftl.Stream {
	if a == AreaJournal {
		return ftl.StreamJournal
	}
	return ftl.StreamData
}

func (a Area) tag() ftl.Tag {
	switch a {
	case AreaJournal:
		return ftl.TagHostJournal
	case AreaCheckpoint:
		return ftl.TagCheckpoint
	default:
		return ftl.TagHostData
	}
}

// Config parameterizes the controller.
type Config struct {
	// QueueDepth bounds in-flight commands (NVMe submission queue depth).
	QueueDepth int

	// PCIeMBps is the host link bandwidth in MB/s.
	PCIeMBps int

	// CmdBytes is the per-command overhead moved over the link
	// (submission entry + completion entry + doorbells).
	CmdBytes int

	// CPUPerCommand is embedded-CPU time to parse and dispatch a command.
	CPUPerCommand sim.VTime

	// CPUPerCoWEntry is embedded-CPU time per copy pair in a CoW command.
	CPUPerCoWEntry sim.VTime

	// CPUPerRemapEntry is embedded-CPU time per mapping-table update in a
	// checkpoint-request command (pure pointer work, cheaper than a copy).
	CPUPerRemapEntry sim.VTime

	// CacheBytes is DRAM available for the data cache (unit granularity,
	// LRU). Zero disables the cache.
	CacheBytes int64

	// DeallocatorPeriod is how often the deallocator checks for idle
	// windows to run background GC in. Zero disables the deallocator
	// process (GC then happens only in the foreground path).
	DeallocatorPeriod sim.VTime

	// BackgroundGCBatch is the number of victims collected per idle check.
	BackgroundGCBatch int

	// Injector, when set, receives crash-injection hits at the device-level
	// ISCE sites (checkpoint copy/remap service, deallocate). Nil in
	// production.
	Injector *inject.Injector

	// CommandTimeout, when nonzero, is the service-time budget per command:
	// a command whose back-end work exceeds it (error-recovery ladders under
	// the NAND fault model) completes only after an extra TimeoutBackoff —
	// the host-visible cost of the timeout/abort/retry exchange. Zero
	// disables detection entirely.
	CommandTimeout sim.VTime
	TimeoutBackoff sim.VTime
}

// DefaultConfig mirrors a mid-range NVMe datacenter SSD.
func DefaultConfig() Config {
	return Config{
		QueueDepth:        64,
		PCIeMBps:          3200,
		CmdBytes:          80,
		CPUPerCommand:     2 * sim.Microsecond,
		CPUPerCoWEntry:    1 * sim.Microsecond,
		CPUPerRemapEntry:  500 * sim.Nanosecond,
		CacheBytes:        64 << 20,
		DeallocatorPeriod: 10 * sim.Millisecond,
		BackgroundGCBatch: 2,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.QueueDepth < 1 {
		return fmt.Errorf("ssd: QueueDepth %d must be >= 1", c.QueueDepth)
	}
	if c.PCIeMBps <= 0 {
		return fmt.Errorf("ssd: PCIeMBps %d must be positive", c.PCIeMBps)
	}
	if c.CacheBytes < 0 {
		return fmt.Errorf("ssd: CacheBytes %d must be >= 0", c.CacheBytes)
	}
	return nil
}

// Stats aggregates controller-level counters.
type Stats struct {
	Commands       uint64
	HostReadBytes  uint64
	HostWriteBytes uint64
	CacheHits      uint64
	CacheMisses    uint64
	CoWPairs       uint64
	RemapEntries   uint64
	Deallocates    uint64
	BackgroundGCs  uint64
	// Timeouts counts commands that blew the CommandTimeout budget and paid
	// the backoff penalty (always zero unless a timeout is configured).
	Timeouts uint64
	// QueueWait records time commands spent waiting for a queue slot.
	QueueWait stats1
}

// stats1 is a minimal mean accumulator (full histograms live at the engine
// level where per-query latency is measured).
type stats1 struct {
	N   uint64
	Sum sim.VTime
}

// Mean returns the average waiting time.
func (s stats1) Mean() sim.VTime {
	if s.N == 0 {
		return 0
	}
	return s.Sum / sim.VTime(s.N)
}

func (s *stats1) add(v sim.VTime) { s.N++; s.Sum += v }

// CoWPair is one source→destination range of a CoW command.
type CoWPair struct {
	Src, Dst, Len int64
}

// RemapEntry is one JMT record shipped in a checkpoint-request command:
// remap the journal range onto the target range. Old indicates the log was
// superseded by a newer version (Algorithm 1 skips it).
type RemapEntry struct {
	Src, Dst, Len int64
	Old           bool
}

// Device is the simulated Check-In SSD.
type Device struct {
	eng *sim.Engine
	f   *ftl.FTL
	cfg Config

	queue *sim.Semaphore
	bus   sim.FIFOResource
	cpu   sim.FIFOResource

	cache *unitCache

	// deallocator scheduling state: armed tracks whether a tick event is
	// queued; paused makes the queued tick fire as a disarming no-op (events
	// cannot be removed from the kernel queue, so pausing lets the tick
	// cancel itself without doing GC work or re-arming).
	deallocArmed  bool
	deallocPaused bool

	stats Stats
}

// New wraps an FTL in a controller.
func New(eng *sim.Engine, f *ftl.FTL, cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		eng:   eng,
		f:     f,
		cfg:   cfg,
		queue: sim.NewSemaphore(eng, cfg.QueueDepth),
	}
	if cfg.CacheBytes > 0 {
		d.cache = newUnitCache(cfg.CacheBytes / int64(f.UnitSize()))
	}
	if cfg.DeallocatorPeriod > 0 {
		d.startDeallocator()
	}
	return d, nil
}

// FTL exposes the translation layer for reporting.
func (d *Device) FTL() *ftl.FTL { return d.f }

// Stats returns a snapshot of controller counters.
func (d *Device) Stats() Stats { return d.stats }

// LogicalBytes returns the device's exported capacity.
func (d *Device) LogicalBytes() int64 { return d.f.LogicalBytes() }

// SimulateSPOR models a sudden power-off followed by the device's own
// OOB-scan recovery (Section III-G); see ftl.FTL.SimulateSPOR.
func (d *Device) SimulateSPOR() *ftl.SPORReport { return d.f.SimulateSPOR() }

// ReadOnly reports whether the device degraded to read-only mode: block
// retirements exhausted the spare pool, so new host writes are refused
// while reads (and internal housekeeping) keep working.
func (d *Device) ReadOnly() bool { return d.f.ReadOnly() }

// Health surfaces the FTL's reliability summary (retired blocks, spares
// left, read-only latch) over the device interface.
func (d *Device) Health() ftl.Health { return d.f.Health() }

// linkTime returns PCIe transfer time for n bytes.
func (d *Device) linkTime(n int) sim.VTime {
	if n <= 0 {
		return 0
	}
	return sim.VTime(uint64(n) * 1000 / uint64(d.cfg.PCIeMBps))
}

// submit acquires a queue slot, pays the front-end costs (link transfer of
// the command plus dataBytes, and controller CPU of cpuTime), then invokes
// op at the moment the device starts executing the command. op returns the
// future for the back-end work; the returned future completes when the
// back-end is done and the queue slot has been released.
func (d *Device) submit(dataBytes int, cpuTime sim.VTime, op func() *sim.Future) *sim.Future {
	out := sim.NewFuture(d.eng)
	arrival := d.eng.Now()
	d.stats.Commands++
	d.queue.AcquireAsync(func() {
		d.stats.QueueWait.add(d.eng.Now() - arrival)
		_, busEnd := d.bus.Reserve(d.eng.Now(), d.linkTime(d.cfg.CmdBytes+dataBytes))
		_, cpuEnd := d.cpu.Reserve(d.eng.Now(), d.cfg.CPUPerCommand+cpuTime)
		ready := busEnd
		if cpuEnd > ready {
			ready = cpuEnd
		}
		d.eng.At(ready, func() {
			start := d.eng.Now()
			inner := op()
			inner.OnComplete(func() {
				if d.cfg.CommandTimeout > 0 && d.eng.Now()-start > d.cfg.CommandTimeout {
					// the command blew its service budget: the host timed it
					// out and re-drove it, costing an extra backoff before
					// completion is observed
					d.stats.Timeouts++
					d.eng.Schedule(d.cfg.TimeoutBackoff, func() {
						d.queue.Release()
						out.Complete()
					})
					return
				}
				d.queue.Release()
				out.Complete()
			})
		})
	})
	return out
}

// Read services a host read of n bytes at off. Units resident in the DRAM
// cache are served without flash reads; the rest go to the FTL.
func (d *Device) Read(off, n int64) *sim.Future {
	d.stats.HostReadBytes += uint64(n)
	return d.submit(int(n), 0, func() *sim.Future {
		miss := d.cacheLookup(off, n)
		if miss == 0 {
			// full cache hit: DRAM access only; completion after the
			// data crosses the link (accounted in submit's dataBytes)
			return sim.CompletedFuture(d.eng)
		}
		return d.f.Read(off, n)
	})
}

// Write services a host write of n bytes at off into the given area. The
// future completes when the data is durable on flash (journal semantics
// require an explicit Flush for buffered tails; see Flush).
func (d *Device) Write(off, n int64, area Area) *sim.Future {
	d.stats.HostWriteBytes += uint64(n)
	return d.submit(int(n), 0, func() *sim.Future {
		d.cacheInsert(off, n)
		return d.f.Write(off, n, area.tag(), area.stream())
	})
}

// Flush forces buffered partial pages of the area's stream to flash — the
// device-side half of a journal commit (FLUSH/FUA semantics).
func (d *Device) Flush(area Area) *sim.Future {
	return d.submit(0, 0, func() *sim.Future {
		return d.f.Sync(area.stream(), area.tag())
	})
}

// Deallocate trims a logical range (journal deletion after checkpointing).
func (d *Device) Deallocate(off, n int64) *sim.Future {
	d.stats.Deallocates++
	return d.submit(0, 0, func() *sim.Future {
		d.cacheInvalidate(off, n)
		d.f.Trim(off, n)
		d.cfg.Injector.Hit(inject.SiteDeallocate)
		return sim.CompletedFuture(d.eng)
	})
}

// CoW executes a single-pair copy-on-write command (ISC-A): the device
// copies the range internally; no data crosses the host link.
func (d *Device) CoW(src, dst, n int64) *sim.Future {
	d.stats.CoWPairs++
	return d.submit(0, d.cfg.CPUPerCoWEntry, func() *sim.Future {
		cached := d.cacheLookup(src, n) == 0
		d.cacheInvalidate(dst, n)
		cf := d.f.CopyCached(src, dst, n, ftl.TagCheckpoint, cached)
		sf := d.f.Sync(ftl.StreamData, ftl.TagCheckpoint)
		d.cfg.Injector.Hit(inject.SiteCheckpointCopy)
		return sim.AfterAll(d.eng, []*sim.Future{cf, sf})
	})
}

// MultiCoW executes a batched copy command (ISC-B): one submission carries
// many pairs, drastically reducing command-queue pressure; the device
// orders the work as consecutive reads then consecutive writes.
func (d *Device) MultiCoW(pairs []CoWPair) *sim.Future {
	d.stats.CoWPairs += uint64(len(pairs))
	meta := len(pairs) * 24
	cpu := sim.VTime(len(pairs)) * d.cfg.CPUPerCoWEntry
	return d.submit(meta, cpu, func() *sim.Future {
		futs := make([]*sim.Future, 0, len(pairs)+1)
		for _, p := range pairs {
			cached := d.cacheLookup(p.Src, p.Len) == 0
			d.cacheInvalidate(p.Dst, p.Len)
			futs = append(futs, d.f.CopyCached(p.Src, p.Dst, p.Len, ftl.TagCheckpoint, cached))
		}
		// one durability barrier per command: copies batch into full pages
		futs = append(futs, d.f.Sync(ftl.StreamData, ftl.TagCheckpoint))
		d.cfg.Injector.Hit(inject.SiteCheckpointCopy)
		return sim.AfterAll(d.eng, futs)
	})
}

// RemapStats aggregates what a checkpoint-request command did.
type RemapStats struct {
	Remapped int
	RMWs     int
	Skipped  int
}

// CheckpointRequest executes the paper's checkpoint command: the JMT
// metadata rides in the command payload; the checkpoint manager walks it
// (Algorithm 1), skipping OLD entries and remapping the rest. Aligned
// entries are pure mapping updates; unaligned ones degrade to in-device
// read-merge-writes. The returned future completes when the checkpoint is
// durable.
func (d *Device) CheckpointRequest(entries []RemapEntry) (*RemapStats, *sim.Future) {
	res := &RemapStats{}
	live := 0
	for _, e := range entries {
		if !e.Old {
			live++
		}
	}
	d.stats.RemapEntries += uint64(live)
	meta := len(entries) * 25
	cpu := sim.VTime(live) * d.cfg.CPUPerRemapEntry
	fut := d.submit(meta, cpu, func() *sim.Future {
		var futs []*sim.Future
		for _, e := range entries {
			if e.Old {
				continue
			}
			cached := d.cacheLookup(e.Src, e.Len) == 0
			d.cacheInvalidate(e.Dst, e.Len)
			r, f := d.f.RemapCached(e.Src, e.Dst, e.Len, cached)
			res.Remapped += r.Remapped
			res.RMWs += r.RMWs
			res.Skipped += r.Skipped
			if !f.Done() {
				futs = append(futs, f)
			}
		}
		d.cfg.Injector.Hit(inject.SiteCheckpointRemap)
		return sim.AfterAll(d.eng, futs)
	})
	return res, fut
}

// BeginCheckpointCut / EndCheckpointCut bracket one checkpoint's remap burst
// for the FTL's translation-metadata layer: between them, mapping-writeback
// work deferred by the dftl remap batch accumulates and settles once at the
// cut end (see ftl.BeginCheckpointCut). Zero-cost control-plane markers — no
// command is queued and nothing crosses the host link; no-ops in dram mode.
func (d *Device) BeginCheckpointCut() { d.f.BeginCheckpointCut() }

// EndCheckpointCut settles the remap-batch window opened by
// BeginCheckpointCut. Callers issue it after the last checkpoint-request
// command completed and before the checkpoint's durability barrier.
func (d *Device) EndCheckpointCut() { d.f.EndCheckpointCut() }

// ---------------------------------------------------------------------------
// deallocator: idle-window background GC

func (d *Device) startDeallocator() {
	d.armDeallocator()
}

// armDeallocator schedules the next deallocator tick.
func (d *Device) armDeallocator() {
	d.deallocArmed = true
	d.eng.Schedule(d.cfg.DeallocatorPeriod, d.deallocTick)
}

// deallocTick is one deallocator wake-up: run background reclamation work if
// warranted, then re-arm. While paused the tick disarms itself instead — it
// must not advance any device state, so that a paused drain reaches a state
// the snapshot layer can capture and reproduce exactly.
func (d *Device) deallocTick() {
	if d.deallocPaused {
		d.deallocArmed = false
		return
	}
	now := d.eng.Now()
	// the tick is a safe depth for deferred fault handling (bad-block
	// retirements, read-reclaim scrubs) queued since the last host op
	d.f.DrainFaults()
	switch {
	case d.f.LowSpace():
		// space pressure: reclaim a small batch even while busy so
		// the foreground path never has to stall on a giant burst
		n := d.f.BackgroundGCForce(d.cfg.BackgroundGCBatch)
		d.stats.BackgroundGCs += uint64(n)
	case d.f.Array().AllDiesIdleAt(now) && d.f.HasCheapVictim():
		n := d.f.BackgroundGC(d.cfg.BackgroundGCBatch)
		d.stats.BackgroundGCs += uint64(n)
	case d.f.Array().AllDiesIdleAt(now):
		d.f.MaybeWearLevel()
	}
	d.armDeallocator()
}

// PauseDeallocator stops the periodic deallocator: the already-queued tick
// fires as a no-op and does not re-arm. With the deallocator paused the
// engine's event queue can drain completely (the tick is otherwise the one
// perpetual event), which is how callers reach a quiescent state.
func (d *Device) PauseDeallocator() { d.deallocPaused = true }

// ResumeDeallocator restarts the periodic deallocator, arming a tick one
// period from now unless one is still queued.
func (d *Device) ResumeDeallocator() {
	d.deallocPaused = false
	if !d.deallocArmed && d.cfg.DeallocatorPeriod > 0 {
		d.armDeallocator()
	}
}

// StopConditionless deallocator note: the periodic event keeps the engine's
// queue non-empty forever; simulations therefore run with RunUntil (or pause
// the deallocator first and Run to a full drain).

// ---------------------------------------------------------------------------
// DRAM data cache (unit-granular LRU)

// unitCache is an intrusive LRU over parallel slot arrays: next/prev hold
// slot indices (-1 = none), head is the most recent entry and tail the
// eviction candidate. Slots are recycled through a free list threaded over
// next, so once the cache has been full the steady state allocates nothing —
// unlike container/list, which pays one heap Element per insert (and boxed
// the unit number on top). Churn-heavy workloads insert millions of times.
type unitCache struct {
	capacity int64
	units    []int64 // slot -> cached unit number
	next     []int32 // slot -> next-older slot, or free-list link
	prev     []int32 // slot -> next-newer slot
	head     int32   // most recently used, -1 when empty
	tail     int32   // least recently used, -1 when empty
	freeHead int32   // free-list head, -1 when none
	index    map[int64]int32
}

func newUnitCache(capUnits int64) *unitCache {
	if capUnits < 1 {
		return nil
	}
	return &unitCache{capacity: capUnits, head: -1, tail: -1, freeHead: -1, index: make(map[int64]int32)}
}

// reset empties the cache, keeping slot-array capacity and map buckets for
// reuse (Restore repopulates immediately after).
func (c *unitCache) reset() {
	c.units = c.units[:0]
	c.next = c.next[:0]
	c.prev = c.prev[:0]
	c.head, c.tail, c.freeHead = -1, -1, -1
	clear(c.index)
}

// alloc returns a slot for unit u, recycling from the free list when
// possible. Slot-array growth stops once the cache reaches capacity.
func (c *unitCache) alloc(u int64) int32 {
	if s := c.freeHead; s >= 0 {
		c.freeHead = c.next[s]
		c.units[s] = u
		return s
	}
	c.units = append(c.units, u)
	c.next = append(c.next, -1)
	c.prev = append(c.prev, -1)
	return int32(len(c.units) - 1)
}

func (c *unitCache) pushFront(s int32) {
	c.prev[s] = -1
	c.next[s] = c.head
	if c.head >= 0 {
		c.prev[c.head] = s
	}
	c.head = s
	if c.tail < 0 {
		c.tail = s
	}
}

func (c *unitCache) unlink(s int32) {
	if p := c.prev[s]; p >= 0 {
		c.next[p] = c.next[s]
	} else {
		c.head = c.next[s]
	}
	if n := c.next[s]; n >= 0 {
		c.prev[n] = c.prev[s]
	} else {
		c.tail = c.prev[s]
	}
}

func (c *unitCache) moveToFront(s int32) {
	if c.head == s {
		return
	}
	c.unlink(s)
	c.pushFront(s)
}

func (c *unitCache) release(s int32) {
	c.next[s] = c.freeHead
	c.freeHead = s
}

func (d *Device) unitsOf(off, n int64) (first, last int64) {
	u := int64(d.f.UnitSize())
	if n <= 0 {
		return 0, -1
	}
	return off / u, (off + n - 1) / u
}

// cacheLookup touches all units of the range and returns how many missed.
func (d *Device) cacheLookup(off, n int64) int {
	if d.cache == nil {
		return int(n/int64(d.f.UnitSize())) + 1
	}
	first, last := d.unitsOf(off, n)
	miss := 0
	for u := first; u <= last; u++ {
		if s, ok := d.cache.index[u]; ok {
			d.cache.moveToFront(s)
			d.stats.CacheHits++
		} else {
			miss++
			d.stats.CacheMisses++
		}
	}
	return miss
}

func (d *Device) cacheInsert(off, n int64) {
	if d.cache == nil {
		return
	}
	first, last := d.unitsOf(off, n)
	for u := first; u <= last; u++ {
		if s, ok := d.cache.index[u]; ok {
			d.cache.moveToFront(s)
			continue
		}
		s := d.cache.alloc(u)
		d.cache.pushFront(s)
		d.cache.index[u] = s
		if int64(len(d.cache.index)) > d.cache.capacity {
			old := d.cache.tail
			d.cache.unlink(old)
			delete(d.cache.index, d.cache.units[old])
			d.cache.release(old)
		}
	}
}

func (d *Device) cacheInvalidate(off, n int64) {
	if d.cache == nil {
		return
	}
	first, last := d.unitsOf(off, n)
	for u := first; u <= last; u++ {
		if s, ok := d.cache.index[u]; ok {
			d.cache.unlink(s)
			d.cache.release(s)
			delete(d.cache.index, u)
		}
	}
}
