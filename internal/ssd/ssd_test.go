package ssd

import (
	"testing"

	"github.com/checkin-kv/checkin/internal/ftl"
	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
)

func testDevice(t *testing.T, mut func(*Config)) (*sim.Engine, *Device) {
	t.Helper()
	e := sim.NewEngine()
	geo := nand.Geometry{
		Channels: 2, PackagesPerChannel: 1, DiesPerPackage: 1, PlanesPerDie: 1,
		BlocksPerPlane: 32, PagesPerBlock: 16, PageSize: 2048,
	}
	tim := nand.Timing{
		ReadPage: 50 * sim.Microsecond, ProgramPage: 500 * sim.Microsecond,
		EraseBlock: 3 * sim.Millisecond, CmdOverhead: sim.Microsecond, ChannelMBps: 400,
	}
	arr, err := nand.New(e, geo, tim)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := ftl.DefaultConfig()
	fcfg.OverProvision = 0.3
	fcfg.Parallelism = 2
	fcfg.MapCacheBytes = 1 << 30
	f, err := ftl.New(e, arr, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := DefaultConfig()
	dcfg.DeallocatorPeriod = 0 // keep the event queue finite unless opted in
	if mut != nil {
		mut(&dcfg)
	}
	d, err := New(e, f, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.QueueDepth = 0
	if err := bad.Validate(); err == nil {
		t.Error("QueueDepth 0 accepted")
	}
	bad = DefaultConfig()
	bad.PCIeMBps = 0
	if err := bad.Validate(); err == nil {
		t.Error("PCIeMBps 0 accepted")
	}
	bad = DefaultConfig()
	bad.CacheBytes = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative CacheBytes accepted")
	}
	e := sim.NewEngine()
	if _, err := New(e, nil, bad); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestWriteThenReadHitsCache(t *testing.T) {
	e, d := testDevice(t, nil)
	wf := d.Write(0, 2048, AreaData)
	e.Run()
	if !wf.Done() {
		t.Fatal("write never completed")
	}
	preReads := d.FTL().Array().Stats().Reads
	rf := d.Read(0, 2048)
	e.Run()
	if !rf.Done() {
		t.Fatal("read never completed")
	}
	if d.FTL().Array().Stats().Reads != preReads {
		t.Error("cached read went to flash")
	}
	if d.Stats().CacheHits == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestReadMissGoesToFlash(t *testing.T) {
	e, d := testDevice(t, func(c *Config) { c.CacheBytes = 0 })
	d.Write(0, 2048, AreaData)
	e.Run()
	pre := d.FTL().Array().Stats().Reads
	d.Read(0, 2048)
	e.Run()
	if d.FTL().Array().Stats().Reads == pre {
		t.Error("uncached read did not reach flash")
	}
}

func TestCacheEviction(t *testing.T) {
	// Cache of 4 units (2 KB): writing 8 units evicts the first 4.
	e, d := testDevice(t, func(c *Config) { c.CacheBytes = 4 * 512 })
	d.Write(0, 4096, AreaData)
	e.Run()
	pre := d.FTL().Array().Stats().Reads
	d.Read(0, 512) // unit 0 was evicted
	e.Run()
	if d.FTL().Array().Stats().Reads == pre {
		t.Error("evicted unit served from cache")
	}
	d.Read(2048+1024, 512) // unit 6 is still resident
	preHits := d.Stats().CacheHits
	e.Run()
	if d.Stats().CacheHits == preHits {
		t.Error("resident unit missed the cache")
	}
}

func TestQueueDepthLimitsConcurrency(t *testing.T) {
	e, d := testDevice(t, func(c *Config) { c.QueueDepth = 1 })
	f1 := d.Write(0, 2048, AreaData)
	f2 := d.Write(4096, 2048, AreaData)
	var t1, t2 sim.VTime
	f1.OnComplete(func() { t1 = e.Now() })
	f2.OnComplete(func() { t2 = e.Now() })
	e.Run()
	if t2 <= t1 {
		t.Errorf("second command did not queue behind first: %v vs %v", t1, t2)
	}
	if d.Stats().QueueWait.Mean() == 0 {
		t.Error("queue wait not recorded")
	}
}

func TestFlushCommitsJournalTail(t *testing.T) {
	e, d := testDevice(t, nil)
	wf := d.Write(0, 512, AreaJournal) // partial page: staged only
	e.Run()
	if !wf.Done() {
		t.Fatal("staged journal write never completed")
	}
	if d.FTL().Array().Stats().Programs != 0 {
		t.Fatal("partial journal page programmed before flush")
	}
	ff := d.Flush(AreaJournal)
	e.Run()
	if !ff.Done() {
		t.Fatal("flush never completed")
	}
	if d.FTL().Array().Stats().Programs != 1 {
		t.Fatalf("Programs = %d after flush, want 1", d.FTL().Array().Stats().Programs)
	}
}

func TestDeallocateTrims(t *testing.T) {
	e, d := testDevice(t, nil)
	d.Write(0, 2048, AreaJournal)
	e.Run()
	df := d.Deallocate(0, 2048)
	e.Run()
	if !df.Done() {
		t.Fatal("deallocate never completed")
	}
	if d.FTL().Stats().TrimmedUnits != 4 {
		t.Errorf("TrimmedUnits = %d, want 4", d.FTL().Stats().TrimmedUnits)
	}
	// Cache entries for the range must be gone.
	pre := d.FTL().Array().Stats().Reads
	d.Read(0, 2048)
	e.Run()
	if d.FTL().Array().Stats().Reads != pre {
		// unmapped read costs no flash but must not be a cache hit
		if d.Stats().CacheHits > 0 {
			t.Error("deallocated range still cached")
		}
	}
}

func TestCoWCopiesInDevice(t *testing.T) {
	e, d := testDevice(t, nil)
	d.Write(0, 2048, AreaJournal)
	e.Run()
	preHostBytes := d.Stats().HostWriteBytes
	cf := d.CoW(0, 65536, 2048)
	e.Run()
	if !cf.Done() {
		t.Fatal("CoW never completed")
	}
	if d.Stats().HostWriteBytes != preHostBytes {
		t.Error("CoW moved data across the host link")
	}
	if d.FTL().Stats().ProgramsByTag[ftl.TagCheckpoint] == 0 {
		t.Error("CoW did not program checkpoint-tagged pages")
	}
	if d.Stats().CoWPairs != 1 {
		t.Errorf("CoWPairs = %d, want 1", d.Stats().CoWPairs)
	}
}

func TestMultiCoWBatches(t *testing.T) {
	e, d := testDevice(t, nil)
	d.Write(0, 8192, AreaJournal)
	e.Run()
	pairs := []CoWPair{
		{Src: 0, Dst: 65536, Len: 2048},
		{Src: 2048, Dst: 65536 + 2048, Len: 2048},
		{Src: 4096, Dst: 65536 + 4096, Len: 2048},
	}
	pre := d.Stats().Commands
	mf := d.MultiCoW(pairs)
	e.Run()
	if !mf.Done() {
		t.Fatal("MultiCoW never completed")
	}
	if d.Stats().Commands-pre != 1 {
		t.Errorf("MultiCoW used %d commands, want 1", d.Stats().Commands-pre)
	}
	if d.Stats().CoWPairs != 3 {
		t.Errorf("CoWPairs = %d, want 3", d.Stats().CoWPairs)
	}
}

func TestCheckpointRequestRemapsAligned(t *testing.T) {
	e, d := testDevice(t, nil)
	d.Write(0, 4096, AreaJournal)
	e.Run()
	prePrograms := d.FTL().Array().Stats().Programs
	res, cf := d.CheckpointRequest([]RemapEntry{
		{Src: 0, Dst: 65536, Len: 2048},
		{Src: 2048, Dst: 65536 + 2048, Len: 2048},
		{Src: 0, Dst: 131072, Len: 2048, Old: true}, // superseded: skipped
	})
	e.Run()
	if !cf.Done() {
		t.Fatal("checkpoint request never completed")
	}
	if res.Remapped != 8 || res.RMWs != 0 {
		t.Errorf("RemapStats = %+v, want 8 remapped units", *res)
	}
	if got := d.FTL().Array().Stats().Programs - prePrograms; got != 0 {
		t.Errorf("aligned checkpoint programmed %d pages, want 0", got)
	}
	if d.Stats().RemapEntries != 2 {
		t.Errorf("RemapEntries = %d, want 2 (OLD skipped)", d.Stats().RemapEntries)
	}
}

func TestCheckpointRequestUnalignedRMWs(t *testing.T) {
	e, d := testDevice(t, nil)
	d.Write(0, 4096, AreaJournal)
	e.Run()
	res, cf := d.CheckpointRequest([]RemapEntry{
		{Src: 100, Dst: 65536, Len: 1024}, // unaligned source
	})
	e.Run()
	if !cf.Done() {
		t.Fatal("checkpoint request never completed")
	}
	if res.RMWs == 0 {
		t.Error("unaligned entry did not RMW")
	}
	// RMW residue stages until the post-checkpoint flush barrier.
	d.Flush(AreaData)
	e.Run()
	if d.FTL().Stats().ProgramsByTag[ftl.TagCheckpoint] == 0 {
		t.Error("RMW did not program checkpoint pages after flush")
	}
}

func TestDeallocatorBackgroundGC(t *testing.T) {
	e, d := testDevice(t, func(c *Config) {
		c.DeallocatorPeriod = 5 * sim.Millisecond
		c.BackgroundGCBatch = 4
	})
	// Create fully dead journal blocks, then let the device idle.
	for i := 0; i < 4; i++ {
		d.Write(int64(i)*32768, 32768, AreaJournal)
		e.RunUntil(e.Now() + 200*sim.Millisecond)
	}
	d.Deallocate(0, 4*32768)
	e.RunUntil(e.Now() + 100*sim.Millisecond)
	if d.Stats().BackgroundGCs == 0 {
		t.Error("deallocator never ran background GC in idle window")
	}
}

func TestReadCompletesAfterLinkTransfer(t *testing.T) {
	e, d := testDevice(t, func(c *Config) { c.CacheBytes = 0 })
	d.Write(0, 2048, AreaData)
	e.Run()
	start := e.Now()
	rf := d.Read(0, 2048)
	var done sim.VTime
	rf.OnComplete(func() { done = e.Now() })
	e.Run()
	// Must cost at least the flash read (cmd 1µs + tR 50µs + channel xfer).
	if done-start < 51*sim.Microsecond {
		t.Errorf("read latency %v implausibly small", done-start)
	}
}

func TestAreaMapping(t *testing.T) {
	if AreaJournal.stream() != ftl.StreamJournal || AreaJournal.tag() != ftl.TagHostJournal {
		t.Error("journal area mapping wrong")
	}
	if AreaData.stream() != ftl.StreamData || AreaData.tag() != ftl.TagHostData {
		t.Error("data area mapping wrong")
	}
}

func TestHostByteAccounting(t *testing.T) {
	e, d := testDevice(t, nil)
	d.Write(0, 4096, AreaData)
	d.Read(0, 1024)
	e.Run()
	if d.Stats().HostWriteBytes != 4096 {
		t.Errorf("HostWriteBytes = %d", d.Stats().HostWriteBytes)
	}
	if d.Stats().HostReadBytes != 1024 {
		t.Errorf("HostReadBytes = %d", d.Stats().HostReadBytes)
	}
}
