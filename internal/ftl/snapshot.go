package ftl

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/sim"
)

// FTLState is a deep copy of the translation layer's mutable state at a
// quiescent instant: the full L2P/P2L mapping with reference counts, block
// lifecycle and free pool, per-stream write frontiers (including buffered
// partial-page slots — genuine state: a stream tail can legitimately sit in
// the controller buffer across a quiescent point), the map-metadata cost
// model, the persistent recovery log and the counters.
type FTLState struct {
	l2p         []int64
	refcnt      []uint8
	rev         []int64
	revOverflow map[int64][]int64

	state      []blockState
	validCount []int32
	written    []int32
	closedSeq  []int64
	closeClock int64

	freeByDie [][]int
	freeCount int

	spareByDie     [][]int
	spareCount     int
	badCount       int
	readOnly       bool
	pendingRetire  []int
	pendingReclaim []int

	fronts [numStreams][]frontier
	rr     [numStreams]int

	dirtyMapEntries int
	mapMissAccum    float64
	mapEngine       sim.FIFOResource

	rlogSeq     uint64
	rlogOOB     []oobRecord
	rlogAliases map[int64][]oobRecord
	rlogTrims   []trimExtent
	rlogTP      []int64

	// DFTL layer (nil/zero in dram mode).
	fmCached      []uint64
	fmDirty       []uint64
	fmCachedCount int
	fmDirtyCount  int
	fmLruNext     []int32
	fmLruPrev     []int32
	fmLruHead     int32
	fmLruTail     int32
	fmStored      []int64
	fmGtd         []int64
	fmTpOwner     []int64
	fmDirtyByTP   []int32

	stats Stats
}

// Snapshot captures the FTL's mutable state. Every program future must have
// completed (the kernel queue is drained at the capture point), so the
// outstanding sets are not part of the state; buffered partial pages are.
// GC must not be mid-flight.
func (f *FTL) Snapshot() (*FTLState, error) {
	if f.gcDepth != 0 {
		return nil, fmt.Errorf("ftl: snapshot during garbage collection (depth %d)", f.gcDepth)
	}
	for s := Stream(0); s < numStreams; s++ {
		for _, pf := range f.outstanding[s] {
			if !pf.Done() {
				return nil, fmt.Errorf("ftl: snapshot with incomplete program on stream %d (FTL not quiescent)", s)
			}
		}
	}
	st := &FTLState{
		l2p:         append([]int64(nil), f.l2p...),
		refcnt:      append([]uint8(nil), f.refcnt...),
		rev:         append([]int64(nil), f.rev...),
		revOverflow: make(map[int64][]int64, len(f.revOverflow)),

		state:      append([]blockState(nil), f.state...),
		validCount: append([]int32(nil), f.validCount...),
		written:    append([]int32(nil), f.written...),
		closedSeq:  append([]int64(nil), f.closedSeq...),
		closeClock: f.closeClock,

		freeByDie: make([][]int, len(f.freeByDie)),
		freeCount: f.freeCount,

		spareByDie:     make([][]int, len(f.spareByDie)),
		spareCount:     f.spareCount,
		badCount:       f.badCount,
		readOnly:       f.readOnly,
		pendingRetire:  append([]int(nil), f.pendingRetire...),
		pendingReclaim: append([]int(nil), f.pendingReclaim...),

		rr: f.rr,

		dirtyMapEntries: f.dirtyMapEntries,
		mapMissAccum:    f.mapMissAccum,
		mapEngine:       f.mapEngine,

		rlogSeq:     f.rlog.seq,
		rlogOOB:     append([]oobRecord(nil), f.rlog.oob...),
		rlogAliases: make(map[int64][]oobRecord, len(f.rlog.aliases)),
		rlogTrims:   append([]trimExtent(nil), f.rlog.trims...),

		stats: f.stats,
	}
	for sid, luns := range f.revOverflow {
		st.revOverflow[sid] = append([]int64(nil), luns...)
	}
	for i, blocks := range f.freeByDie {
		st.freeByDie[i] = append([]int(nil), blocks...)
	}
	for i, blocks := range f.spareByDie {
		st.spareByDie[i] = append([]int(nil), blocks...)
	}
	for s := Stream(0); s < numStreams; s++ {
		st.fronts[s] = make([]frontier, len(f.fronts[s]))
		for i, fr := range f.fronts[s] {
			st.fronts[s][i] = frontier{
				block:    fr.block,
				fillLSNs: append([]int64(nil), fr.fillLSNs...),
				fillTag:  fr.fillTag,
			}
		}
	}
	for sid, recs := range f.rlog.aliases {
		st.rlogAliases[sid] = append([]oobRecord(nil), recs...)
	}
	if f.fm.enabled {
		if f.fm.flushing {
			return nil, fmt.Errorf("ftl: snapshot during translation-page writeback")
		}
		if f.fm.batch {
			return nil, fmt.Errorf("ftl: snapshot inside a checkpoint-cut remap batch")
		}
		st.rlogTP = append([]int64(nil), f.rlog.tp...)
		st.fmCached = append([]uint64(nil), f.fm.cached...)
		st.fmDirty = append([]uint64(nil), f.fm.dirty...)
		st.fmCachedCount = f.fm.cachedCount
		st.fmDirtyCount = f.fm.dirtyCount
		st.fmLruNext = append([]int32(nil), f.fm.lruNext...)
		st.fmLruPrev = append([]int32(nil), f.fm.lruPrev...)
		st.fmLruHead = f.fm.lruHead
		st.fmLruTail = f.fm.lruTail
		st.fmStored = append([]int64(nil), f.fm.stored...)
		st.fmGtd = append([]int64(nil), f.fm.gtd...)
		st.fmTpOwner = append([]int64(nil), f.fm.tpOwner...)
		st.fmDirtyByTP = append([]int32(nil), f.fm.dirtyByTP...)
	}
	return st, nil
}

// Restore installs a previously captured state into f, which must be freshly
// constructed over the same geometry and Config. Every slice is copied again
// so the state stays pristine for further restores, and per-fork mutation
// never reaches a sibling.
func (f *FTL) Restore(st *FTLState) error {
	if len(st.l2p) != len(f.l2p) || len(st.refcnt) != len(f.refcnt) || len(st.state) != len(f.state) {
		return fmt.Errorf("ftl: restore shape mismatch (%d units / %d slots / %d blocks vs %d / %d / %d)",
			len(st.l2p), len(st.refcnt), len(st.state), len(f.l2p), len(f.refcnt), len(f.state))
	}
	copy(f.l2p, st.l2p)
	copy(f.refcnt, st.refcnt)
	copy(f.rev, st.rev)
	f.revOverflow = make(map[int64][]int64, len(st.revOverflow))
	for sid, luns := range st.revOverflow {
		f.revOverflow[sid] = append([]int64(nil), luns...)
	}

	copy(f.state, st.state)
	copy(f.validCount, st.validCount)
	copy(f.written, st.written)
	copy(f.closedSeq, st.closedSeq)
	f.closeClock = st.closeClock

	for i, blocks := range st.freeByDie {
		f.freeByDie[i] = append(f.freeByDie[i][:0], blocks...)
	}
	f.freeCount = st.freeCount

	for i, blocks := range st.spareByDie {
		f.spareByDie[i] = append(f.spareByDie[i][:0], blocks...)
	}
	f.spareCount = st.spareCount
	f.badCount = st.badCount
	f.readOnly = st.readOnly
	f.pendingRetire = append(f.pendingRetire[:0], st.pendingRetire...)
	f.pendingReclaim = append(f.pendingReclaim[:0], st.pendingReclaim...)
	for i := range f.pendingMark {
		f.pendingMark[i] = 0
	}
	for _, b := range f.pendingRetire {
		f.pendingMark[b] |= pendRetire
	}
	for _, b := range f.pendingReclaim {
		f.pendingMark[b] |= pendReclaim
	}

	for s := Stream(0); s < numStreams; s++ {
		for i, fr := range st.fronts[s] {
			f.fronts[s][i] = frontier{
				block:    fr.block,
				fillLSNs: append([]int64(nil), fr.fillLSNs...),
				fillTag:  fr.fillTag,
			}
		}
		f.outstanding[s] = f.outstanding[s][:0]
	}
	f.rr = st.rr

	f.dirtyMapEntries = st.dirtyMapEntries
	f.mapMissAccum = st.mapMissAccum
	f.mapEngine = st.mapEngine

	f.rlog.seq = st.rlogSeq
	copy(f.rlog.oob, st.rlogOOB)
	f.rlog.aliases = make(map[int64][]oobRecord, len(st.rlogAliases))
	for sid, recs := range st.rlogAliases {
		f.rlog.aliases[sid] = append([]oobRecord(nil), recs...)
	}
	f.rlog.trims = append(f.rlog.trims[:0], st.rlogTrims...)

	if f.fm.enabled {
		if st.fmCached == nil {
			return fmt.Errorf("ftl: restore of a dram-mode snapshot into a dftl-mode FTL")
		}
		copy(f.rlog.tp, st.rlogTP)
		copy(f.fm.cached, st.fmCached)
		copy(f.fm.dirty, st.fmDirty)
		f.fm.cachedCount = st.fmCachedCount
		f.fm.dirtyCount = st.fmDirtyCount
		copy(f.fm.lruNext, st.fmLruNext)
		copy(f.fm.lruPrev, st.fmLruPrev)
		f.fm.lruHead = st.fmLruHead
		f.fm.lruTail = st.fmLruTail
		copy(f.fm.stored, st.fmStored)
		copy(f.fm.gtd, st.fmGtd)
		copy(f.fm.tpOwner, st.fmTpOwner)
		copy(f.fm.dirtyByTP, st.fmDirtyByTP)
		f.fm.flushing = false
		f.fm.batch = false
		// The page-fill seen-set is per-command scratch: no command is in
		// flight at a rest point, and the first command after restore opens a
		// fresh epoch (1) that no zeroed stamp can collide with — exactly as
		// the direct path's next epoch exceeds every stamp it ever wrote.
		f.fm.cmdEpoch = 0
		f.fm.cmdDepth = 0
		for i := range f.fm.tpEpoch {
			f.fm.tpEpoch[i] = 0
		}
		// Like the victim index below, the hottest-TP index is a pure
		// function of the restored dirty counters.
		f.fm.tpx.rebuild(f.fm.dirtyByTP)
	}

	f.gcDepth = 0
	f.stats = st.stats

	// Derived structures: the victim index is a pure function of
	// (state, validCount) — rebuilding it yields the same victim sequence
	// as the incrementally maintained one (see victim.go), so FTLState
	// carries no index fields. Likewise the partial-page markers follow
	// from the restored frontiers.
	f.gcVictim = -1
	f.rebuildVictimIndex()
	for s := Stream(0); s < numStreams; s++ {
		f.partial[s] = -1
		for i := range f.fronts[s] {
			if len(f.fronts[s][i].fillLSNs) > 0 {
				f.partial[s] = i
				break
			}
		}
	}
	return nil
}
