package ftl

import (
	"testing"

	"github.com/checkin-kv/checkin/internal/inject"
)

// TestLunsOfScratchAliasing is the regression net for the documented
// lunsOf scratch-buffer hazard (DESIGN.md §6): the returned slice aliases
// a buffer reused by the next lunsOf call, so callers must consume it
// before any nested FTL call that might re-enter lunsOf. The GC migration
// loop (collectBlock) is the load-bearing caller: it holds the slice
// across appendSlot/bindSlot/shareSlot/noteMapDirty. This test locks in
// that (a) that exact nested sequence does not touch the scratch, and
// (b) a real migration of shared slots preserves every reference.
func TestLunsOfScratchAliasing(t *testing.T) {
	cfg := smallCfg()
	e, f := newSmall(t, cfg)

	// Two journal units plus a data record, then remap to share slots
	// (refcnt 2: journal lun + data lun reference the same slot).
	unit := int64(f.unit)
	f.Write(0, 2*unit, TagHostJournal, StreamJournal)
	f.Sync(StreamJournal, TagHostJournal)
	e.Run()
	dst := int64(4096 * 8)
	f.Remap(0, dst, 2*unit)
	e.Run()

	sidShared := f.l2p[0]
	if sidShared < 0 || f.refcnt[sidShared] < 2 {
		t.Fatalf("setup failed: slot %d refcnt %d, want shared", sidShared, f.refcnt[sidShared])
	}

	// (a) The migration loop's invariant: the nested calls it performs
	// while holding the lunsOf result must leave the scratch untouched.
	luns := f.lunsOf(sidShared)
	snapshot := append([]int64(nil), luns...)
	f.noteMapDirty(1)
	newSid := f.appendSlot(StreamGC, snapshot[0], TagGC)
	f.bindSlot(snapshot[0], newSid)
	for i, l := range luns {
		if l != snapshot[i] {
			t.Fatalf("nested FTL call corrupted caller's lunsOf slice: %v != %v (scratch aliasing)", luns, snapshot)
		}
	}
	// Undo the probe rebinding: shareSlot unmaps the lun from newSid
	// (killing the probe slot) and re-attaches it to the still-live shared
	// slot, restoring refcnt 2.
	f.shareSlot(snapshot[0], sidShared)

	// (b) End-to-end: migrate the shared slot's block and verify every
	// reference survived with sharing intact.
	wantLuns := map[int64]bool{}
	for _, l := range f.lunsOf(sidShared) {
		wantLuns[l] = true
	}
	b := f.slotBlock(sidShared)
	f.gcDepth++
	f.collectBlock(b)
	f.gcDepth--
	e.Run()
	var moved int64 = -1
	for l := range wantLuns {
		sid := f.l2p[l]
		if sid < 0 {
			t.Fatalf("GC migration lost lun %d", l)
		}
		if moved < 0 {
			moved = sid
		} else if sid != moved {
			t.Fatalf("GC migration broke sharing: lun %d at slot %d, expected %d", l, sid, moved)
		}
	}
	if int(f.refcnt[moved]) != len(wantLuns) {
		t.Fatalf("migrated slot refcnt %d, want %d", f.refcnt[moved], len(wantLuns))
	}
	checkInvariants(t, f)
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWearLevelCrashConsistency covers the wear-level injection site at
// the FTL layer (the full-stack crash matrix rarely reaches an idle
// window): crash immediately after a static wear-leveling migration and
// verify the mapping table, refcounts and the OOB-rebuilt (SPOR) state
// all survive.
func TestWearLevelCrashConsistency(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := smallCfg()
		cfg.WearDeltaThreshold = 2
		inj := inject.New()
		cfg.Injector = inj
		e, f := newSmall(t, cfg)

		crashed := false
		inj.Arm(inject.SiteWearLevel, 0, nil, func(site inject.Site, hit int) {
			crashed = true
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("seed=%d site=%s hit=%d: %v", seed, site, hit, err)
			}
			if rep := f.VerifySPOR(); rep.Mismatches != 0 {
				t.Fatalf("seed=%d site=%s hit=%d: SPOR lost durable state: %s", seed, site, hit, rep)
			}
		})

		// Pin cold data, hammer a hot range (seed varies the hot offset),
		// and give the leveler chances to move the cold block.
		f.Write(65536, 32768, TagHostData, StreamData)
		f.Sync(StreamData, TagHostData)
		e.Run()
		hot := (seed - 1) * 4096
		for i := 0; i < 400 && !crashed; i++ {
			f.Write(hot, 8192, TagHostData, StreamData)
			e.Run()
			if i%10 == 0 {
				f.MaybeWearLevel()
				e.Run()
			}
		}
		if !crashed {
			t.Fatalf("seed=%d: wear-level site never fired", seed)
		}
		if _, _, ok := inj.Fired(); !ok {
			t.Fatal("injector did not record the crash")
		}
	}
}
