package ftl

import (
	"testing"

	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
)

// fullGeo is the default experiment geometry (512 MB raw): 4 channels ×
// 2 dies × 2 planes × 128 blocks × 64 pages × 4 KB = 2048 blocks, so a
// linear victim scan walks 2048 entries per pick.
func fullGeo() nand.Geometry {
	return nand.Geometry{
		Channels: 4, PackagesPerChannel: 1, DiesPerPackage: 2, PlanesPerDie: 2,
		BlocksPerPlane: 128, PagesPerBlock: 64, PageSize: 4096,
	}
}

// benchRNG is a tiny deterministic xorshift generator: benchmark inputs must
// not depend on math/rand's global state or version-dependent algorithms.
type benchRNG uint64

func (r *benchRNG) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = benchRNG(x)
	return x
}

// gcHeavyState is one preconditioned FTL ready for steady-state overwrites.
type gcHeavyState struct {
	eng  *sim.Engine
	f    *FTL
	rng  benchRNG
	luns int64
}

func newGCHeavyState(tb testing.TB, policy GCPolicy) *gcHeavyState {
	tb.Helper()
	eng := sim.NewEngine()
	arr, err := nand.New(eng, fullGeo(), nand.Timing{
		ReadPage:    50 * sim.Microsecond,
		ProgramPage: 500 * sim.Microsecond,
		EraseBlock:  3 * sim.Millisecond,
		CmdOverhead: 1 * sim.Microsecond,
		ChannelMBps: 400,
	})
	if err != nil {
		tb.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.GCPolicy = policy
	cfg.MapCacheBytes = 1 << 30 // isolate GC + mapping work from the miss model
	// At ~full utilization the GC stream needs more headroom than the
	// defaults: foreground GC opens its own frontier blocks before each
	// victim's erase returns a block to the pool.
	cfg.GCLowWater = 8
	cfg.GCHighWater = 16
	f, err := New(eng, arr, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	luns := f.LogicalBytes() / int64(f.UnitSize())
	luns -= luns / 50 // 98% fill: high utilization with a sliver of slack
	s := &gcHeavyState{eng: eng, f: f, rng: 0x9e3779b97f4a7c15, luns: luns}
	// Precondition to high utilization: one sequential pass mapping nearly
	// every logical unit, so every later write invalidates a slot somewhere
	// and the device runs at its steady-state valid fraction (~1/(1+OP)).
	unit := int64(f.UnitSize())
	for lun := int64(0); lun < s.luns; lun++ {
		f.Write(lun*unit, unit, TagHostData, StreamData)
		if lun%4096 == 0 {
			eng.Run()
		}
	}
	f.Sync(StreamData, TagHostData)
	eng.Run()
	return s
}

// run performs writes skewed 90/10 onto the hottest 10% of the logical
// space — the write-only GC-heavy pattern: hot blocks invalidate fast, so
// victims are cheap and selection cost (not migration) dominates each
// reclaim. Every 512 writes it runs the deallocator's probe-then-collect
// sequence against the FTL, exactly as ssd.Device's idle tick does.
func (s *gcHeavyState) run(writes int) {
	unit := int64(s.f.UnitSize())
	hot := s.luns / 10
	if hot < 1 {
		hot = 1
	}
	for i := 0; i < writes; i++ {
		r := s.rng.next()
		var lun int64
		if r%10 != 0 {
			lun = int64(r>>8) % hot
		} else {
			lun = int64(r>>8) % s.luns
		}
		s.f.Write(lun*unit, unit, TagHostData, StreamData)
		if i%512 == 511 {
			s.f.Sync(StreamData, TagHostData)
			s.eng.Run()
			if s.f.HasReclaimable() {
				s.f.BackgroundGC(2)
			}
		}
	}
	s.f.Sync(StreamData, TagHostData)
	s.eng.Run()
}

// BenchmarkGCHeavyWriteOnly measures the per-run cost of a write-only
// workload at full utilization on the full-scale 2048-block device, the
// regime where the paper's GC results (fig8b, lifetime, fig9 tails) are
// decided. One op = 100k unit writes plus the periodic background-GC
// probe. The recorded before/after snapshot lives in BENCH_ftl.json.
//
// Every iteration forks from the same pristine preconditioned snapshot
// (engine clock, NAND array, FTL, RNG): without the reset, iteration i+1
// continued from iteration i's aged device and advanced RNG, so per-op cost
// drifted with b.N and -count runs were not comparing the same work.
func BenchmarkGCHeavyWriteOnly(b *testing.B) {
	for _, pol := range []GCPolicy{GCGreedy, GCCostBenefit, GCFIFO} {
		b.Run(pol.String(), func(b *testing.B) {
			s := newGCHeavyState(b, pol)
			engState := s.eng.State()
			arrState := s.f.Array().Snapshot()
			ftlState, err := s.f.Snapshot()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s.eng.Restore(engState)
				if err := s.f.Array().Restore(arrState); err != nil {
					b.Fatal(err)
				}
				if err := s.f.Restore(ftlState); err != nil {
					b.Fatal(err)
				}
				s.rng = 0x9e3779b97f4a7c15
				b.StartTimer()
				s.run(100_000)
			}
		})
	}
}
