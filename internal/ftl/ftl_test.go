package ftl

import (
	"testing"
	"testing/quick"

	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
)

// smallGeo is a tiny device: 1 die, 16 blocks × 8 pages × 2 KB pages,
// 512 B units → 4 slots/page, 32 slots/block, 512 slots total.
func smallGeo() nand.Geometry {
	return nand.Geometry{
		Channels: 1, PackagesPerChannel: 1, DiesPerPackage: 1, PlanesPerDie: 1,
		BlocksPerPlane: 16, PagesPerBlock: 8, PageSize: 2048,
	}
}

func fastTim() nand.Timing {
	return nand.Timing{
		ReadPage:    50 * sim.Microsecond,
		ProgramPage: 500 * sim.Microsecond,
		EraseBlock:  3 * sim.Millisecond,
		CmdOverhead: 1 * sim.Microsecond,
		ChannelMBps: 400,
	}
}

func smallCfg() Config {
	c := DefaultConfig()
	c.OverProvision = 0.3
	c.GCLowWater = 2
	c.GCHighWater = 4
	c.Parallelism = 1
	c.MapCacheBytes = 1 << 30 // disable miss model unless a test opts in
	return c
}

func newSmall(t *testing.T, cfg Config) (*sim.Engine, *FTL) {
	t.Helper()
	e := sim.NewEngine()
	arr, err := nand.New(e, smallGeo(), fastTim())
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(e, arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, f
}

// checkInvariants verifies the core mapping invariants:
//  1. every mapped lun points at a slot that references it back,
//  2. refcnt equals 1 (primary) + overflow count,
//  3. per-block valid counts equal the number of live slots.
func checkInvariants(t *testing.T, f *FTL) {
	t.Helper()
	refs := make(map[int64]int)
	for lun, sid := range f.l2p {
		if sid < 0 {
			continue
		}
		refs[sid]++
		if f.refcnt[sid] == 0 {
			t.Fatalf("lun %d maps to dead slot %d", lun, sid)
		}
		found := false
		for _, l := range f.lunsOf(sid) {
			if l == int64(lun) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("slot %d reverse map misses lun %d", sid, lun)
		}
	}
	valid := make([]int32, f.totalBlocks)
	for sid := range f.refcnt {
		rc := int(f.refcnt[sid])
		if rc == 0 {
			continue
		}
		if refs[int64(sid)] != rc {
			t.Fatalf("slot %d refcnt %d but %d luns reference it", sid, rc, refs[int64(sid)])
		}
		want := 1 + len(f.revOverflow[int64(sid)])
		if rc != want {
			t.Fatalf("slot %d refcnt %d but primary+overflow = %d", sid, rc, want)
		}
		valid[f.slotBlock(int64(sid))]++
	}
	for b := range valid {
		if valid[b] != f.validCount[b] {
			t.Fatalf("block %d validCount %d, actual %d", b, f.validCount[b], valid[b])
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(4096); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.UnitSize = 0 },
		func(c *Config) { c.UnitSize = 513 },
		func(c *Config) { c.OverProvision = 1.5 },
		func(c *Config) { c.GCLowWater = 0 },
		func(c *Config) { c.GCHighWater = c.GCLowWater },
		func(c *Config) { c.Parallelism = 0 },
	}
	for i, mut := range cases {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(4096); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestLogicalCapacity(t *testing.T) {
	_, f := newSmall(t, smallCfg())
	phys := smallGeo().TotalBytes()
	if f.LogicalBytes() >= phys {
		t.Error("logical capacity not reduced by over-provisioning")
	}
	if f.LogicalBytes()%int64(f.UnitSize()) != 0 {
		t.Error("logical capacity not unit-aligned")
	}
	if f.MappingTableBytes() != f.LogicalBytes()/512*8 {
		t.Errorf("MappingTableBytes = %d", f.MappingTableBytes())
	}
}

func TestWriteFullPageProgramsOnce(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	// 4 slots per page: a 2048-byte write fills exactly one page.
	fut := f.Write(0, 2048, TagHostData, StreamData)
	done := false
	fut.OnComplete(func() { done = true })
	e.Run()
	if !done {
		t.Fatal("write future never completed")
	}
	if got := f.Array().Stats().Programs; got != 1 {
		t.Errorf("Programs = %d, want 1", got)
	}
	if f.Stats().ProgramsByTag[TagHostData] != 1 {
		t.Errorf("tagged programs = %v", f.Stats().ProgramsByTag)
	}
	checkInvariants(t, f)
}

func TestWritePartialPageNeedsSync(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	fut := f.Write(0, 512, TagHostJournal, StreamJournal)
	e.Run()
	// Staged-write semantics: the host write completes once buffered...
	if !fut.Done() {
		t.Fatal("staged write never completed")
	}
	// ...but nothing is programmed until the page fills or a Sync lands.
	if f.Array().Stats().Programs != 0 {
		t.Fatal("partial page programmed without sync")
	}
	sf := f.Sync(StreamJournal, TagHostJournal)
	e.Run()
	if !sf.Done() {
		t.Fatal("sync never completed")
	}
	if f.Array().Stats().Programs != 1 {
		t.Fatalf("Programs = %d after sync, want 1", f.Array().Stats().Programs)
	}
	// 3 of 4 slots in the page were wasted.
	if f.Stats().DeadPaddingSlots != 3 {
		t.Errorf("DeadPaddingSlots = %d, want 3", f.Stats().DeadPaddingSlots)
	}
	checkInvariants(t, f)
}

func TestSyncIdempotentWhenEmpty(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	sf := f.Sync(StreamJournal, TagHostJournal)
	if !sf.Done() {
		t.Error("sync of empty stream should complete immediately")
	}
	e.Run()
	if f.Array().Stats().Programs != 0 {
		t.Error("empty sync programmed a page")
	}
}

func TestOverwriteInvalidatesOldSlot(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	f.Write(0, 2048, TagHostData, StreamData)
	e.Run()
	f.Write(0, 2048, TagHostData, StreamData)
	e.Run()
	checkInvariants(t, f)
	// First page's 4 slots are now invalid.
	totalValid := int32(0)
	for _, v := range f.validCount {
		totalValid += v
	}
	if totalValid != 4 {
		t.Errorf("valid slots = %d, want 4", totalValid)
	}
}

func TestRMWOnPartialOverwrite(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	f.Write(0, 2048, TagHostData, StreamData) // map units 0..3
	e.Run()
	pre := f.Array().Stats().Reads
	// 100 bytes at offset 0 partially covers unit 0 → RMW read.
	f.Write(0, 100, TagHostData, StreamData)
	f.Sync(StreamData, TagHostData)
	e.Run()
	if f.Stats().HostRMWReads != 1 {
		t.Errorf("HostRMWReads = %d, want 1", f.Stats().HostRMWReads)
	}
	if got := f.Array().Stats().Reads - pre; got != 1 {
		t.Errorf("flash reads = %d, want 1", got)
	}
	checkInvariants(t, f)
}

func TestNoRMWOnUnmappedPartialWrite(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	f.Write(0, 100, TagHostData, StreamData) // unit 0 never mapped
	f.Sync(StreamData, TagHostData)
	e.Run()
	if f.Stats().HostRMWReads != 0 {
		t.Errorf("HostRMWReads = %d, want 0", f.Stats().HostRMWReads)
	}
}

func TestReadCoalescesPerPage(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	f.Write(0, 2048, TagHostData, StreamData) // 4 units on one page
	e.Run()
	pre := f.Array().Stats().Reads
	fut := f.Read(0, 2048)
	e.Run()
	if !fut.Done() {
		t.Fatal("read never completed")
	}
	if got := f.Array().Stats().Reads - pre; got != 1 {
		t.Errorf("flash reads = %d, want 1 (coalesced)", got)
	}
}

func TestReadUnmappedCompletesInstantly(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	fut := f.Read(4096, 1024)
	if !fut.Done() {
		t.Error("read of unmapped space should complete synchronously")
	}
	e.Run()
	if f.Array().Stats().Reads != 0 {
		t.Error("unmapped read touched flash")
	}
}

func TestTrim(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	f.Write(0, 2048, TagHostData, StreamData)
	e.Run()
	f.Trim(0, 2048)
	if f.Stats().TrimmedUnits != 4 {
		t.Errorf("TrimmedUnits = %d, want 4", f.Stats().TrimmedUnits)
	}
	fut := f.Read(0, 2048)
	if !fut.Done() {
		t.Error("read after trim should find nothing mapped")
	}
	checkInvariants(t, f)
}

func TestTrimUnalignedPanics(t *testing.T) {
	_, f := newSmall(t, smallCfg())
	defer func() {
		if recover() == nil {
			t.Error("unaligned trim did not panic")
		}
	}()
	f.Trim(100, 512)
}

func TestRemapAligned(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	// journal at offset 0, data area at 64 KB
	const dataOff = 65536
	f.Write(0, 2048, TagHostJournal, StreamJournal)
	e.Run()
	prePrograms := f.Array().Stats().Programs
	res, fut := f.Remap(0, dataOff, 2048)
	e.Run()
	if !fut.Done() {
		t.Fatal("remap future never completed")
	}
	if res.Remapped != 4 || res.RMWs != 0 || res.Skipped != 0 {
		t.Errorf("RemapResult = %+v, want 4 pure remaps", res)
	}
	if got := f.Array().Stats().Programs - prePrograms; got != 0 {
		t.Errorf("aligned remap programmed %d pages, want 0", got)
	}
	checkInvariants(t, f)

	// Source and destination share physical slots until the journal trim.
	sid := f.l2p[0]
	if sid < 0 || f.l2p[dataOff/512] != sid {
		t.Fatal("src and dst do not share a slot")
	}
	if f.refcnt[sid] != 2 {
		t.Errorf("shared slot refcnt = %d, want 2", f.refcnt[sid])
	}
	f.Trim(0, 2048)
	if f.refcnt[sid] != 1 {
		t.Errorf("after trim refcnt = %d, want 1", f.refcnt[sid])
	}
	if f.l2p[dataOff/512] != sid {
		t.Error("trim of source broke destination mapping")
	}
	checkInvariants(t, f)
}

func TestRemapUnalignedDoesRMW(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	const dataOff = 65536
	f.Write(0, 2048, TagHostJournal, StreamJournal)
	f.Write(dataOff, 2048, TagHostData, StreamData) // old data to merge with
	e.Run()
	pre := f.Array().Stats()
	// Source offset 100 is not unit-aligned: every unit must RMW.
	res, fut := f.Remap(100, dataOff, 1024)
	e.Run()
	if !fut.Done() {
		t.Fatal("remap future never completed")
	}
	if res.Remapped != 0 || res.RMWs != 2 {
		t.Errorf("RemapResult = %+v, want 2 RMWs", res)
	}
	post := f.Array().Stats()
	if post.Reads == pre.Reads {
		t.Error("unaligned remap did no flash reads")
	}
	// The merged slots stage until the checkpoint's durability barrier.
	f.Sync(StreamData, TagCheckpoint)
	e.Run()
	if f.Array().Stats().Programs == pre.Programs {
		t.Error("unaligned remap did no programs after sync")
	}
	if f.Stats().ProgramsByTag[TagCheckpoint] == 0 {
		t.Error("RMW programs not tagged checkpoint")
	}
	checkInvariants(t, f)
}

func TestRemapSkipsUnmappedSource(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	res, fut := f.Remap(0, 65536, 1024)
	e.Run()
	if !fut.Done() || res.Skipped != 2 || res.Remapped != 0 {
		t.Errorf("RemapResult = %+v, want 2 skipped", res)
	}
}

func TestRemapShortTailRMW(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	f.Write(0, 1024, TagHostJournal, StreamJournal)
	f.Sync(StreamJournal, TagHostJournal)
	e.Run()
	// Aligned start, but length 600: one pure remap + one short-tail RMW.
	res, _ := f.Remap(0, 65536, 600)
	e.Run()
	if res.Remapped != 1 || res.RMWs != 1 {
		t.Errorf("RemapResult = %+v, want 1 remap + 1 RMW", res)
	}
	checkInvariants(t, f)
}

func TestCopyReadsAndWrites(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	f.Write(0, 2048, TagHostJournal, StreamJournal)
	e.Run()
	pre := f.Array().Stats()
	fut := f.Copy(0, 65536, 2048, TagCheckpoint)
	e.Run()
	if !fut.Done() {
		t.Fatal("copy never completed")
	}
	post := f.Array().Stats()
	if post.Reads-pre.Reads != 1 {
		t.Errorf("copy reads = %d, want 1 (one source page)", post.Reads-pre.Reads)
	}
	if post.Programs-pre.Programs != 1 {
		t.Errorf("copy programs = %d, want 1", post.Programs-pre.Programs)
	}
	if f.Stats().RedundantWrites() == 0 {
		t.Error("copy not counted as redundant write")
	}
	checkInvariants(t, f)
}

func TestGCReclaimsInvalidBlocks(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	// Keep overwriting the same 8 KB region; old slots become invalid and
	// the device must GC to keep free blocks available.
	for i := 0; i < 100; i++ {
		f.Write(0, 8192, TagHostData, StreamData)
		e.Run()
	}
	st := f.Stats()
	if st.GCInvocations+st.DeadReclaims == 0 {
		t.Fatal("GC never ran despite heavy overwrite traffic")
	}
	if f.FreeBlocks() < 2 {
		t.Errorf("free blocks = %d, device nearly full after GC", f.FreeBlocks())
	}
	checkInvariants(t, f)
	// The live region must still be fully mapped.
	for lun := int64(0); lun < 16; lun++ {
		if f.l2p[lun] < 0 {
			t.Fatalf("lun %d lost its mapping across GC", lun)
		}
	}
}

func TestGCPreservesSharedMappings(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	const dataOff = 65536
	f.Write(0, 2048, TagHostJournal, StreamJournal)
	e.Run()
	f.Remap(0, dataOff, 2048)
	e.Run()
	// Fill the device to force GC over the shared block.
	for i := 0; i < 120; i++ {
		f.Write(8192, 8192, TagHostData, StreamData)
		e.Run()
	}
	checkInvariants(t, f)
	// Shared pair must still point at a common slot.
	if f.l2p[0] < 0 || f.l2p[0] != f.l2p[dataOff/512] {
		t.Error("GC broke the shared journal/data mapping")
	}
}

func TestBackgroundGC(t *testing.T) {
	cfg := smallCfg()
	cfg.DeferGC = true
	e, f := newSmall(t, cfg)
	// Write a journal region then trim it: blocks become fully invalid.
	for i := 0; i < 4; i++ {
		f.Write(int64(i)*16384, 16384, TagHostJournal, StreamJournal)
		e.Run()
	}
	f.Trim(0, 4*16384)
	if !f.HasReclaimable() {
		t.Fatal("no reclaimable block after trimming the journal")
	}
	free := f.FreeBlocks()
	n := f.BackgroundGC(2)
	e.Run()
	if n == 0 {
		t.Fatal("background GC collected nothing")
	}
	if f.FreeBlocks() <= free {
		t.Error("background GC did not free blocks")
	}
	// Fully invalid victims migrate no data.
	if f.Stats().GCMigratedSlot != 0 {
		t.Errorf("background GC migrated %d slots from dead blocks", f.Stats().GCMigratedSlot)
	}
	checkInvariants(t, f)
}

func TestMetaFlushes(t *testing.T) {
	cfg := smallCfg()
	cfg.MetaFlushEntries = 16
	e, f := newSmall(t, cfg)
	for i := 0; i < 10; i++ {
		f.Write(int64(i)*2048, 2048, TagHostData, StreamData)
		e.Run()
	}
	if f.Stats().MetaFlushes == 0 {
		t.Error("no metadata flushes despite many mapping updates")
	}
	if f.Stats().ProgramsByTag[TagMeta] != f.Stats().MetaFlushes {
		t.Errorf("meta programs %d != flushes %d",
			f.Stats().ProgramsByTag[TagMeta], f.Stats().MetaFlushes)
	}
}

func TestMapMissModel(t *testing.T) {
	cfg := smallCfg()
	cfg.MapCacheBytes = 1 // nothing fits → ~every lookup misses
	e, f := newSmall(t, cfg)
	f.Write(0, 2048, TagHostData, StreamData)
	e.Run()
	if f.Stats().MapMisses == 0 {
		t.Error("tiny map cache produced no misses")
	}
	// A miss must delay the operation's completion beyond the no-miss
	// case (staged writes complete instantly without misses).
	e2, f2 := newSmall(t, smallCfg())
	var base, slow sim.VTime
	f2.Write(0, 2048, TagHostData, StreamData).OnComplete(func() { base = e2.Now() })
	e2.Run()
	e3, f3 := newSmall(t, cfg)
	f3.Write(0, 2048, TagHostData, StreamData).OnComplete(func() { slow = e3.Now() })
	e3.Run()
	if slow <= base {
		t.Errorf("map misses added no latency: %v vs %v", slow, base)
	}
}

func TestOutOfRangeAccessPanics(t *testing.T) {
	_, f := newSmall(t, smallCfg())
	for _, fn := range []func(){
		func() { f.Write(f.LogicalBytes(), 512, TagHostData, StreamData) },
		func() { f.Read(-1, 10) },
		func() { f.Trim(f.LogicalBytes()-512, 1024) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestWriteZeroBytes(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	if !f.Write(0, 0, TagHostData, StreamData).Done() {
		t.Error("zero-byte write should complete immediately")
	}
	if !f.Copy(0, 1024, 0, TagCheckpoint).Done() {
		t.Error("zero-byte copy should complete immediately")
	}
	e.Run()
}

func TestRandomTrafficInvariants(t *testing.T) {
	// Property: after arbitrary interleaved writes/trims/remaps the
	// mapping invariants hold and GC never loses a mapping.
	err := quick.Check(func(ops []uint16) bool {
		e, f := newSmall(t, smallCfg())
		units := f.LogicalBytes() / 512
		for _, op := range ops {
			lun := int64(op) % (units - 8)
			switch op % 4 {
			case 0, 1:
				f.Write(lun*512, 512*int64(1+op%4), TagHostData, StreamData)
			case 2:
				f.Trim(lun*512, 512)
			case 3:
				dst := (lun + 4) % (units - 4)
				f.Remap(lun*512, dst*512, 512)
			}
			e.Run()
		}
		f.Sync(StreamData, TagHostData)
		e.Run()
		checkInvariants(t, f)
		return !t.Failed()
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestTagString(t *testing.T) {
	want := map[Tag]string{
		TagHostJournal: "host-journal", TagHostData: "host-data",
		TagCheckpoint: "checkpoint", TagGC: "gc", TagMeta: "meta",
	}
	for tag, s := range want {
		if tag.String() != s {
			t.Errorf("Tag(%d).String() = %q, want %q", tag, tag.String(), s)
		}
	}
	if Tag(99).String() == "" {
		t.Error("unknown tag should still render")
	}
}

func TestRedundantWritesMetric(t *testing.T) {
	var s Stats
	s.ProgramsByTag[TagCheckpoint] = 10
	s.ProgramsByTag[TagGC] = 5
	s.ProgramsByTag[TagHostData] = 100
	if s.RedundantWrites() != 15 {
		t.Errorf("RedundantWrites = %d, want 15", s.RedundantWrites())
	}
}
