package ftl

import (
	"testing"
)

// Alloc-regression guards for the FTL steady state. The budget per path:
//
//   - a buffered host write (slot append + bind, no page boundary) is
//     allocation-free;
//   - a write completing a page pays exactly one allocation — the nand
//     program future, which is caller-owned and cannot be pooled;
//   - reads of unmapped or still-buffered data are allocation-free;
//   - a read hitting flash pays exactly one allocation (the nand read
//     future), however many units it spans.
//
// Anything above these bounds is a regression in the pooled scratch
// machinery (epoch tables, reusable futs slices, victim index).
func TestFTLSteadyStateAllocs(t *testing.T) {
	cfg := smallCfg()
	cfg.MetaFlushEntries = 1 << 30 // metadata flush paths measured separately
	e, f := newSmall(t, cfg)
	unit := int64(f.unit)

	// Warm up: map a few pages' worth of luns, program them, and run a GC
	// cycle so every pooled buffer and the event heap reach steady-state
	// capacity.
	for lun := int64(0); lun < 64; lun++ {
		f.Write(lun*unit, unit, TagHostData, StreamData)
	}
	f.Sync(StreamData, TagHostData)
	e.Run()
	f.BackgroundGCForce(2)
	e.Run()

	// Buffered overwrite: stay strictly inside one page (slotsPerPage
	// appends would program it), overwriting already-mapped luns.
	spp := int64(f.slotsPerPage)
	if n := testing.AllocsPerRun(100, func() {
		f.Write(0, unit, TagHostData, StreamData)
		if len(f.fronts[StreamData][f.partial[StreamData]].fillLSNs) == int(spp)-1 {
			// drain the page boundary outside the measured region by
			// padding with one more overwrite, then letting it program
			f.Write(unit, unit, TagHostData, StreamData)
			e.Run()
		}
	}); n > 1 {
		t.Fatalf("buffered write path allocates %.2f/op, want <= 1 (page-program future only)", n)
	}

	// A full page of writes: exactly one allocation, the program future.
	if n := testing.AllocsPerRun(50, func() {
		for i := int64(0); i < spp; i++ {
			f.Write(i*unit, unit, TagHostData, StreamData)
		}
		e.Run()
	}); n != 1 {
		t.Fatalf("page-filling write burst allocates %.2f, want exactly 1 (program future)", n)
	}

	// Unmapped read: zero-fill completes on the engine's shared future.
	holeOff := f.logicalBytes - 8*unit
	if n := testing.AllocsPerRun(100, func() {
		f.Read(holeOff, 4*unit)
	}); n != 0 {
		t.Fatalf("unmapped read allocates %.2f/op, want 0", n)
	}

	// Buffered read: data still in the controller page buffer.
	f.Write(0, unit, TagHostData, StreamData)
	if n := testing.AllocsPerRun(100, func() {
		f.Read(0, unit)
	}); n != 0 {
		t.Fatalf("buffered read allocates %.2f/op, want 0", n)
	}
	f.Sync(StreamData, TagHostData)
	e.Run()

	// Flash read spanning a whole page of units: one nand future.
	if n := testing.AllocsPerRun(100, func() {
		f.Read(8*unit, spp*unit)
		e.Run()
	}); n != 1 {
		t.Fatalf("flash read allocates %.2f/op, want exactly 1 (read future)", n)
	}

	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSyncAllocs locks in that a no-op durability barrier (everything
// already programmed and completed) is allocation-free: Sync returns the
// engine's shared completed future and reuses the pooled pending slice.
func TestSyncAllocs(t *testing.T) {
	cfg := smallCfg()
	e, f := newSmall(t, cfg)
	unit := int64(f.unit)
	for lun := int64(0); lun < 16; lun++ {
		f.Write(lun*unit, unit, TagHostData, StreamData)
	}
	f.Sync(StreamData, TagHostData)
	e.Run()
	if n := testing.AllocsPerRun(100, func() {
		f.Sync(StreamData, TagHostData)
		e.Run()
	}); n != 0 {
		t.Fatalf("idle Sync allocates %.2f/op, want 0", n)
	}
}
