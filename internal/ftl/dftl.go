package ftl

// DFTL-style flash-resident mapping table (Config.FlashMap, -ftlmap=dftl).
//
// The dram mode keeps the whole L2P table in controller DRAM and charges a
// probabilistic map-cache model (mapLookupCost / noteMapDirty). That hides a
// real cost of checkpoint-by-remap: every remap dirties mapping entries that
// must themselves be flushed to flash and garbage-collected. This layer
// charges that cost explicitly, after Gupta et al.'s DFTL and Dayan &
// Bonnet's translation-page GC analysis:
//
//   - The full table lives on flash as translation pages, each packing
//     PageSize/8 mapping entries (8 bytes per entry). tvpn(lun) =
//     lun / entriesPerTP addresses the translation page covering a lun.
//   - The global translation directory (GTD) maps tvpn → the physical page
//     (pid) holding the current version; it is small enough to pin in DRAM
//     (and, on the real device, in power-loss-capacitor-backed SRAM).
//   - A bounded cached mapping table (CMT) holds recently used entries in
//     DRAM. A miss on the host path charges a real flash read of the backing
//     translation page through the NAND timing path. Updates mark entries
//     dirty; dirty entries write back in batches — flushing one translation
//     page persists every dirty entry it covers (read-modify-write of the
//     old page, program of a fresh one on the translation stream).
//   - Translation blocks live in the same victim index as data blocks: a
//     live translation page contributes slotsPerPage to its block's valid
//     count, so cost-benefit/greedy/FIFO reclamation weighs translation and
//     data pages uniformly, and GC migration relocates live translation
//     pages exactly like live data slots (migrateLive → fmMigrateTrans).
//
// Within the simulator the l2p array stays authoritative in both modes;
// flashMap tracks which entries are cached/dirty and what the flash-resident
// copy holds (stored). The coherence invariant — a non-dirty entry's flash
// copy equals the live map — is what the differential mapping oracle and
// CheckInvariants verify at every sampled crash point.
//
// Re-entrancy: writeback programs can trigger GC, and GC rebinding dirties
// CMT entries. Threshold flushes and capacity enforcement therefore run only
// at top level (fm.flushing unset and gcDepth == 0); mapping updates made by
// device-internal work accumulate and settle at the next host-path update.
// The CMT may transiently exceed its bound inside such windows — it is
// re-enforced at every host-path boundary.
//
// On top of the basic layer sit four optimizations a real controller ships
// (DESIGN.md §16), each with an ablation knob (Config.CMTNoFill,
// Config.CMTCleanWindow, Config.CMTNoBatch — knobs off reproduce the basic
// layer's behavior bit for bit):
//
//   - Page-fill on miss: a miss already charges a whole-page NAND read;
//     fillTP inserts every entry the fetched page covers (clean, bulk LRU
//     insert) instead of just the demanded lun, so one fetch yields up to
//     entriesPerTP future hits.
//   - Clean-first eviction (CFLRU): fmEnforceCap searches a bounded clean
//     window from the LRU tail before flushing a dirty victim's whole
//     translation page, so capacity evictions stop amplifying into flushes.
//   - Batched remap writeback: BeginCheckpointCut/EndCheckpointCut bracket
//     the checkpoint's remap burst; threshold flushes and cap enforcement
//     are deferred across the cut and settle once at its end, coalescing the
//     remap churn into full-density page flushes instead of interleaving
//     partial ones with the cut.
//   - Incremental hottest-TP index: tpIndex (tpindex.go) replaces
//     fmHottestTP's O(numTPs) scan with an O(1)-maintenance bucketed
//     dirty-count index, rebuilt on Restore.

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/sim"
)

// flashMap is the per-FTL DFTL state. The zero value is the disabled layer
// (dram mode); initFlashMap arms it.
type flashMap struct {
	enabled bool

	cap          int // CMT bound in entries
	entriesPerTP int // mapping entries per translation page (PageSize/8)
	numTPs       int // translation virtual pages covering the logical space

	// CMT membership and dirtiness, one bit per lun.
	cached      []uint64
	dirty       []uint64
	cachedCount int
	dirtyCount  int

	// Intrusive LRU over cached luns (head = most recent, -1 = nil).
	lruNext []int32
	lruPrev []int32
	lruHead int32
	lruTail int32

	// stored[lun] is the entry's value as held by the flash-resident
	// translation page (-1 before the first flush covering it).
	stored []int64
	// gtd[tvpn] is the physical page id of the live translation page, -1 if
	// the tvpn has never been flushed. tpOwner is its exact inverse.
	gtd     []int64
	tpOwner []int64
	// dirtyByTP[tvpn] counts dirty cached entries per translation page —
	// the batched-writeback selector picks the page with the most.
	dirtyByTP []int32
	// tpx indexes dirtyByTP incrementally so the flush selector never scans
	// all translation pages (rebuilt from dirtyByTP on Restore).
	tpx *tpIndex

	// fill arms page-fill on miss (!Config.CMTNoFill).
	fill bool
	// cleanWindow is the resolved CFLRU clean-first search depth in entries:
	// how many LRU-tail entries fmEnforceCap examines for a clean victim
	// before flushing a dirty one. 1 = strict LRU (the basic layer).
	cleanWindow int
	// legacy is set when every remap-aware knob is at its basic-layer
	// setting (fill off, window 1, batch off): those runs must reproduce
	// the basic layer bit-for-bit, including its defer-to-next-update cap
	// semantics, so the post-GC re-enforcement (fmAfterGC) stays off.
	legacy bool

	// tpEpoch/cmdEpoch/cmdDepth implement the per-command translation-fetch
	// seen-set for the page-fill path: a tvpn stamped with the current command
	// epoch has already been charged this host command (the fetched page sits
	// in the controller's transfer buffer for the command's duration), even
	// when cap enforcement between an operation's two ranges — Remap resolves
	// source then destination — evicts the filled entries in between.
	// fmEnterCmd/fmExitCmd bracket host operations; a bare fmAccessRange call
	// (tests) opens an epoch of its own.
	tpEpoch  []uint64
	cmdEpoch uint64
	cmdDepth int

	// batch marks the checkpoint-cut remap window (BeginCheckpointCut):
	// threshold flushes and cap enforcement are deferred until the cut ends.
	batch bool

	// flushing guards the writeback path against re-entering itself when a
	// translation program triggers GC whose rebinding dirties more entries.
	flushing bool
	// oracle arms the differential mapping oracle (tests): panic on the
	// first coherence divergence instead of reporting it.
	oracle bool
}

func (fm *flashMap) isCached(lun int64) bool { return fm.cached[lun>>6]&(1<<(uint64(lun)&63)) != 0 }
func (fm *flashMap) isDirty(lun int64) bool  { return fm.dirty[lun>>6]&(1<<(uint64(lun)&63)) != 0 }

func (fm *flashMap) lruUnlink(l int32) {
	next, prev := fm.lruNext[l], fm.lruPrev[l]
	if prev >= 0 {
		fm.lruNext[prev] = next
	} else {
		fm.lruHead = next
	}
	if next >= 0 {
		fm.lruPrev[next] = prev
	} else {
		fm.lruTail = prev
	}
	fm.lruNext[l], fm.lruPrev[l] = -1, -1
}

func (fm *flashMap) lruPushFront(l int32) {
	fm.lruPrev[l] = -1
	fm.lruNext[l] = fm.lruHead
	if fm.lruHead >= 0 {
		fm.lruPrev[fm.lruHead] = l
	} else {
		fm.lruTail = l
	}
	fm.lruHead = l
}

func (fm *flashMap) touch(lun int64) {
	l := int32(lun)
	if fm.lruHead == l {
		return
	}
	fm.lruUnlink(l)
	fm.lruPushFront(l)
}

// insert adds an uncached lun to the CMT (clean; callers dirty it
// separately). Capacity is enforced by fmEnforceCap, not here.
func (fm *flashMap) insert(lun int64) {
	fm.cached[lun>>6] |= 1 << (uint64(lun) & 63)
	fm.cachedCount++
	fm.lruPushFront(int32(lun))
}

// remove evicts a clean cached lun.
func (fm *flashMap) remove(lun int64) {
	fm.cached[lun>>6] &^= 1 << (uint64(lun) & 63)
	fm.cachedCount--
	fm.lruUnlink(int32(lun))
}

func (fm *flashMap) tvpnOf(lun int64) int { return int(lun / int64(fm.entriesPerTP)) }

func (f *FTL) pidBlock(pid int64) int { return int(pid / int64(f.pagesPerBlk)) }
func (f *FTL) pidPage(pid int64) int  { return int(pid % int64(f.pagesPerBlk)) }

// initFlashMap arms the DFTL layer (Config.FlashMap).
func (f *FTL) initFlashMap() error {
	if f.totalUnits > int64(^uint32(0)>>1) {
		return fmt.Errorf("ftl: flash map: %d logical units exceed the int32 LRU index space", f.totalUnits)
	}
	geo := f.array.Geometry()
	fm := &f.fm
	fm.enabled = true
	fm.entriesPerTP = geo.PageSize / 8
	fm.numTPs = int((f.totalUnits + int64(fm.entriesPerTP) - 1) / int64(fm.entriesPerTP))
	capEntries := f.cfg.CMTEntries
	if capEntries <= 0 {
		capEntries = int(f.cfg.MapCacheBytes / 8)
	}
	// Below two translation pages' worth of entries the CMT would thrash on
	// a single flush batch; clamp to keep tiny test configs functional.
	if min := 2 * fm.entriesPerTP; capEntries < min {
		capEntries = min
	}
	fm.cap = capEntries
	words := (f.totalUnits + 63) / 64
	fm.cached = make([]uint64, words)
	fm.dirty = make([]uint64, words)
	fm.lruNext = make([]int32, f.totalUnits)
	fm.lruPrev = make([]int32, f.totalUnits)
	for i := range fm.lruNext {
		fm.lruNext[i], fm.lruPrev[i] = -1, -1
	}
	fm.lruHead, fm.lruTail = -1, -1
	fm.stored = make([]int64, f.totalUnits)
	for i := range fm.stored {
		fm.stored[i] = -1
	}
	fm.gtd = make([]int64, fm.numTPs)
	for i := range fm.gtd {
		fm.gtd[i] = -1
	}
	totalPages := int64(geo.TotalPages())
	fm.tpOwner = make([]int64, totalPages)
	for i := range fm.tpOwner {
		fm.tpOwner[i] = -1
	}
	fm.dirtyByTP = make([]int32, fm.numTPs)
	fm.tpx = newTPIndex(fm.numTPs, fm.entriesPerTP)
	fm.tpEpoch = make([]uint64, fm.numTPs)
	fm.fill = !f.cfg.CMTNoFill
	fm.cleanWindow = f.cfg.CMTCleanWindow
	switch {
	case fm.cleanWindow == 0:
		fm.cleanWindow = defaultCleanWindow
	case fm.cleanWindow < 1:
		fm.cleanWindow = 1 // strict LRU: examine the tail only
	}
	fm.legacy = f.cfg.CMTNoFill && fm.cleanWindow == 1 && f.cfg.CMTNoBatch
	f.rlog.tp = make([]int64, totalPages)
	for i := range f.rlog.tp {
		f.rlog.tp[i] = -1
	}
	return nil
}

// defaultCleanWindow is the CFLRU clean-first search depth when
// Config.CMTCleanWindow is zero: deep enough that a dirty LRU tail almost
// always yields a nearby clean victim, shallow enough that hot (recent)
// entries are never evicted out from under the workload.
const defaultCleanWindow = 32

// FlashMapEnabled reports whether the DFTL layer is active.
func (f *FTL) FlashMapEnabled() bool { return f.fm.enabled }

// EnableMapOracle arms the differential mapping oracle (tests only): every
// CMT miss asserts the flash-resident copy of the entry equals the live
// all-DRAM map, panicking on the first divergence. CheckInvariants performs
// the full-sweep form of the same check in dftl mode regardless.
func (f *FTL) EnableMapOracle() { f.fm.oracle = true }

// CMTLen returns the number of CMT-resident entries (tests/introspection).
func (f *FTL) CMTLen() int { return f.fm.cachedCount }

// fmWrite records that lun's mapping changed: the entry becomes CMT-resident
// and dirty (a write miss needs no fetch — the flush's read-modify-write
// merges unchanged entries from the old translation page). At top level it
// then runs the batched dirty writeback and re-enforces the CMT bound; both
// are deferred across a checkpoint-cut remap batch and settle at its end.
//
// Only device-internal updates (GC rebinding, writeback-triggered dirtying)
// count toward the CMTHitsGC/CMTMissesGC origin split: the host update path
// always resolved its range through fmAccessRange first, where the lookup
// was already attributed to CMTHits/CMTMisses.
func (f *FTL) fmWrite(lun int64) {
	fm := &f.fm
	internal := fm.flushing || f.gcDepth > 0
	if fm.isCached(lun) {
		fm.touch(lun)
		if internal {
			f.stats.CMTHitsGC++
		}
	} else {
		fm.insert(lun)
		if internal {
			f.stats.CMTMissesGC++
		}
	}
	if !fm.isDirty(lun) {
		fm.dirty[lun>>6] |= 1 << (uint64(lun) & 63)
		fm.dirtyCount++
		tvpn := fm.tvpnOf(lun)
		fm.dirtyByTP[tvpn]++
		fm.tpx.markDirty(int32(tvpn))
	}
	if internal || fm.batch {
		return // settled at the next top-level mapping update / the cut end
	}
	if fm.dirtyCount >= f.metaFlushAt {
		f.fmSettleDirty(f.metaFlushAt, inject.SiteTransFlush)
	}
	if fm.cachedCount > fm.cap {
		f.fmEnforceCap()
	}
}

// fmSettleDirty runs the batched dirty writeback until the backlog drops
// below floor entries, densest translation page first. Caller must be at top
// level (not flushing, gcDepth == 0).
func (f *FTL) fmSettleDirty(floor int, site inject.Site) {
	fm := &f.fm
	fm.flushing = true
	for fm.dirtyCount >= floor {
		tvpn := f.fmHottestTP()
		if tvpn < 0 {
			break
		}
		f.flushTP(tvpn, site)
	}
	fm.flushing = false
}

// fmEnterCmd/fmExitCmd bracket one host command for the page-fill seen-set:
// translation-fetch charges dedup against the command epoch, and nested
// operations (CopyCached's fallback host write) share the outer command's
// epoch — a real controller holds fetched pages in its transfer buffer for
// the whole command.
func (f *FTL) fmEnterCmd() {
	fm := &f.fm
	if !fm.enabled {
		return
	}
	fm.cmdDepth++
	if fm.cmdDepth == 1 {
		fm.cmdEpoch++
	}
}

func (f *FTL) fmExitCmd() {
	if f.fm.enabled {
		f.fm.cmdDepth--
	}
}

// BeginCheckpointCut enters the remap-batch window: until EndCheckpointCut,
// mapping updates accumulate dirty entries without triggering threshold
// flushes or cap enforcement, so the checkpoint cut's remap churn coalesces
// into full-density page flushes at the cut end instead of interleaving
// partial ones. No-op outside dftl mode or with Config.CMTNoBatch.
func (f *FTL) BeginCheckpointCut() {
	fm := &f.fm
	if !fm.enabled || f.cfg.CMTNoBatch {
		return
	}
	if fm.batch {
		panic("ftl: nested checkpoint-cut remap batch")
	}
	fm.batch = true
}

// EndCheckpointCut settles the remap-batch window: every dirty mapping entry
// writes back, densest page first, then the CMT bound is re-enforced. The
// settle is complete (not just down to the threshold) because the cut's
// mapping updates are checkpoint payload — callers order the settle before
// the checkpoint's durability barrier, making the remapped translation state
// durable with the checkpoint itself. Remap dirties long contiguous runs, so
// the deferred flushes run at full page density instead of the partial ones
// interleaved threshold writeback would have issued. Always safe to call
// (no-op when no batch is open).
func (f *FTL) EndCheckpointCut() {
	fm := &f.fm
	if !fm.enabled || !fm.batch {
		return
	}
	fm.batch = false
	if fm.flushing || f.gcDepth > 0 {
		return // settled at the next top-level mapping update
	}
	if fm.dirtyCount > 0 {
		f.fmSettleDirty(1, inject.SiteTransFlush)
	}
	if fm.cachedCount > fm.cap {
		f.fmEnforceCap()
	}
}

// fmAccessRange resolves the mapping entries for luns [first, last] through
// the CMT on the host lookup path. Each miss inserts the entry and, when the
// backing translation page lives on flash, charges a real page read —
// deduplicated per tvpn within the host command (consecutive luns share
// pages; a real controller holds the fetched page in its transfer buffer
// across the command). With page-fill on, the charged fetch also populates
// every uncached entry the page covers. With wait set the reads' futures
// append to futs so the host operation completes only after its translation
// fetches.
func (f *FTL) fmAccessRange(first, last int64, wait bool, futs []*sim.Future) []*sim.Future {
	fm := &f.fm
	if fm.fill && fm.cmdDepth == 0 {
		fm.cmdEpoch++ // a bare range (tests) is a command of its own
	}
	lastCharged := -1
	for lun := first; lun <= last; lun++ {
		if fm.isCached(lun) {
			fm.touch(lun)
			f.stats.CMTHits++
			continue
		}
		f.stats.CMTMisses++
		tvpn := fm.tvpnOf(lun)
		pid := fm.gtd[tvpn]
		if pid >= 0 {
			// Charge dedup: the basic layer tracks only the previous tvpn of
			// this call — enough when misses walk pages monotonically. The
			// fill path breaks that assumption (an operation's second range
			// can revisit a page cap enforcement just evicted), so it stamps
			// each fetched tvpn with the command epoch instead.
			charged := false
			if fm.fill {
				charged = fm.tpEpoch[tvpn] == fm.cmdEpoch
				fm.tpEpoch[tvpn] = fm.cmdEpoch
			} else {
				charged = tvpn == lastCharged
				lastCharged = tvpn
			}
			if !charged {
				f.stats.TransReads++
				f.stats.TransReadsHost++
				f.stats.ReadsByTag[TagMeta]++
				if fut := f.readFlash(f.pidBlock(pid), f.pidPage(pid), f.array.Geometry().PageSize, wait); fut != nil {
					futs = append(futs, fut)
				}
			}
		}
		if fm.oracle && fm.stored[lun] != f.l2p[lun] {
			panic(fmt.Sprintf("ftl: flash map diverged at lun %d: flash-resident entry %d, live map %d (uncached entries must match their flash copy)",
				lun, fm.stored[lun], f.l2p[lun]))
		}
		if fm.fill && pid >= 0 {
			f.fillTP(tvpn, lun)
		}
		fm.insert(lun)
	}
	if fm.cachedCount > fm.cap && f.gcDepth == 0 && !fm.flushing && !fm.batch {
		f.fmEnforceCap()
	}
	return futs
}

// fillTP bulk-inserts every uncached entry of translation page tvpn except
// the demanded lun (the caller inserts it last, leaving it most-recent). The
// page was just fetched whole — a real controller decodes all of it for
// free — so the fills are clean CMT inserts: their flash copy IS the live
// map by the coherence invariant (an uncached entry is never dirty).
func (f *FTL) fillTP(tvpn int, demanded int64) {
	fm := &f.fm
	first := int64(tvpn) * int64(fm.entriesPerTP)
	last := first + int64(fm.entriesPerTP) - 1
	if last >= f.totalUnits {
		last = f.totalUnits - 1
	}
	for lun := first; lun <= last; lun++ {
		if lun != demanded && !fm.isCached(lun) {
			fm.insert(lun)
		}
	}
}

// fmEnforceCap evicts entries until the CMT is back within its bound,
// preferring clean victims (CFLRU): when the strict LRU tail is dirty, a
// bounded window of tail-most entries is searched for a clean one first —
// evicting clean costs nothing, while a dirty victim forces a whole
// translation-page writeback. Only when the entire window is dirty does the
// tail's page flush (batched eviction: one flush persists every dirty entry
// the page covers and usually cleans much of the window with it). With
// cleanWindow == 1 this is exactly the basic layer's strict-LRU eviction.
// Runs only at top level.
func (f *FTL) fmEnforceCap() {
	fm := &f.fm
	for fm.cachedCount > fm.cap {
		victim := fm.lruTail
		if fm.isDirty(int64(victim)) {
			victim = -1
			for l, scanned := fm.lruPrev[fm.lruTail], 1; l >= 0 && scanned < fm.cleanWindow; l, scanned = fm.lruPrev[l], scanned+1 {
				if !fm.isDirty(int64(l)) {
					victim = l
					break
				}
			}
		}
		if victim < 0 {
			fm.flushing = true
			f.flushTP(fm.tvpnOf(int64(fm.lruTail)), inject.SiteTransEvict)
			fm.flushing = false
			// The flush (or GC it triggered) may have reordered the LRU;
			// re-evaluate from the tail rather than assuming the victim.
			continue
		}
		fm.remove(int64(victim))
		f.stats.CMTEvictions++
	}
}

// fmAfterGC trims the CMT back toward its bound after a collection pass
// returns to top level. Migrations insert mapping entries with enforcement
// deferred, and when the GC was triggered by a path with no later top-level
// mapping update (Sync programming buffered pages, Trim, background
// collection) the overshoot would otherwise persist until the next host
// operation — with page-fill keeping the table pinned at capacity, that is
// the steady state, not a corner. Only clean entries are evicted here: the
// post-GC instant is exactly when free space may sit at its emergency
// floor, so this path must never program a translation page (a dirty
// overshoot waits for the next top-level update, which settles through the
// normal flush machinery). Legacy-knob runs keep the basic layer's
// defer-to-next-update semantics bit-for-bit and skip this.
func (f *FTL) fmAfterGC() {
	fm := &f.fm
	if !fm.enabled || fm.legacy || fm.flushing || fm.batch || f.gcDepth > 0 {
		return
	}
	for l := fm.lruTail; fm.cachedCount > fm.cap && l >= 0; {
		prev := fm.lruPrev[l]
		if !fm.isDirty(int64(l)) {
			fm.remove(int64(l))
			f.stats.CMTEvictions++
		}
		l = prev
	}
}

// fmHottestTP returns the translation page with the most dirty entries
// (lowest tvpn wins ties), or -1 when nothing is dirty. Backed by the
// incremental tpIndex — no O(numTPs) scan.
func (f *FTL) fmHottestTP() int {
	return f.fm.tpx.hottest(f.fm.dirtyByTP)
}

// flushTP writes back every dirty CMT entry covered by translation page
// tvpn: read-modify-write of the old flash-resident page (when one exists),
// a whole-page program on the translation stream, directory update, and the
// batch marked clean. The entries stay CMT-resident — eviction is the
// caller's decision.
func (f *FTL) flushTP(tvpn int, site inject.Site) {
	fm := &f.fm
	if tvpn < 0 || fm.dirtyByTP[tvpn] == 0 {
		return
	}
	if pid := fm.gtd[tvpn]; pid >= 0 {
		// RMW read: the new page carries the old page's unchanged entries.
		f.stats.TransReads++
		f.stats.TransReadsRMW++
		f.stats.ReadsByTag[TagMeta]++
		f.readFlash(f.pidBlock(pid), f.pidPage(pid), f.array.Geometry().PageSize, false)
	}
	f.fmInvalidateTP(tvpn)
	f.appendTransPage(tvpn, TagMeta)
	// The program may have triggered GC whose rebinding dirtied more entries
	// of this page; they were serialized into the flush with the rest (the
	// page's content is drawn from the live map at this instant).
	first := int64(tvpn) * int64(fm.entriesPerTP)
	last := first + int64(fm.entriesPerTP) - 1
	if last >= f.totalUnits {
		last = f.totalUnits - 1
	}
	for lun := first; lun <= last && fm.dirtyByTP[tvpn] > 0; lun++ {
		if fm.isDirty(lun) {
			fm.dirty[lun>>6] &^= 1 << (uint64(lun) & 63)
			fm.dirtyCount--
			fm.dirtyByTP[tvpn]--
			fm.stored[lun] = f.l2p[lun]
		}
	}
	fm.tpx.markDirty(int32(tvpn))
	f.stats.TransFlushes++
	f.cfg.Injector.Hit(site)
}

// fmInvalidateTP retires tvpn's current flash-resident page: directory
// detached, the page's slots invalid for GC accounting, recovery record
// cleared. A fresh page must be appended in the same event step.
func (f *FTL) fmInvalidateTP(tvpn int) {
	fm := &f.fm
	pid := fm.gtd[tvpn]
	if pid < 0 {
		return
	}
	blk := f.pidBlock(pid)
	fm.tpOwner[pid] = -1
	fm.gtd[tvpn] = -1
	f.validCount[blk] -= int32(f.slotsPerPage)
	if f.vix.linked[blk] {
		f.vixMarkDirty(blk)
	}
	f.rlog.clearTransPage(pid)
}

// appendTransPage programs one whole translation page for tvpn on the
// translation stream and publishes it in the directory before the frontier
// advances — GC triggered by the advance must already see the page as live.
// Returns the new physical page id.
func (f *FTL) appendTransPage(tvpn int, tag Tag) int64 {
	idx := f.rr[StreamTrans] % len(f.fronts[StreamTrans])
	f.rr[StreamTrans]++
	fr, block := f.openFrontier(StreamTrans, idx)
	pageSize := f.array.Geometry().PageSize
	for f.array.SampleProgramFail(block) {
		// The page content survives in controller DRAM (CMT + old page), so
		// nothing restages: charge the ruined page, condemn the block, and
		// retry on a fresh one.
		f.array.ProgramFailedAttempt(block, pageSize)
		f.written[block] += int32(f.slotsPerPage)
		f.noteProgramFail(block, StreamTrans, 0)
		fr.block = -1
		fr, block = f.openFrontier(StreamTrans, idx)
	}
	page := f.array.ProgramPageNoWait(block, pageSize)
	pid := int64(block)*int64(f.pagesPerBlk) + int64(page)
	f.written[block] += int32(f.slotsPerPage)
	f.validCount[block] += int32(f.slotsPerPage)
	f.stats.ProgramsByTag[tag]++
	f.fm.tpOwner[pid] = int64(tvpn)
	f.fm.gtd[tvpn] = pid
	f.rlog.noteTransWrite(pid, tvpn)
	f.advanceFrontier(fr, block)
	return pid
}

// fmMigrateTrans relocates every live translation page of block b onto a
// fresh translation-stream page — the translation half of migrateLive. Data
// and translation blocks share the victim index, so a GC victim, a
// wear-level source or a retiring bad block may hold live translation pages
// alongside (or instead of) live data slots.
func (f *FTL) fmMigrateTrans(b int) {
	fm := &f.fm
	if !fm.enabled {
		return
	}
	basePid := int64(b) * int64(f.pagesPerBlk)
	pageSize := f.array.Geometry().PageSize
	for p := 0; p < f.pagesPerBlk; p++ {
		pid := basePid + int64(p)
		tvpn := fm.tpOwner[pid]
		if tvpn < 0 {
			continue
		}
		f.stats.ReadsByTag[TagGC]++
		f.stats.TransReads++
		f.stats.TransReadsGC++
		f.readFlash(b, p, pageSize, false)
		f.fmInvalidateTP(int(tvpn))
		f.appendTransPage(int(tvpn), TagGC)
		f.stats.TransMigrated++
		f.cfg.Injector.Hit(inject.SiteTransGC)
	}
}

// fmCheckInvariants verifies the DFTL layer (called from CheckInvariants in
// dftl mode): CMT bitmap/LRU agreement, per-page dirty counters, the
// GTD ↔ tpOwner ↔ recovery-record bijection, live translation pages sitting
// on programmed pages of in-service blocks, and the coherence sweep — every
// non-dirty entry's flash-resident copy equals the live map.
func (f *FTL) fmCheckInvariants(report func(format string, args ...any)) {
	fm := &f.fm
	cachedSeen, dirtySeen := 0, 0
	for lun := int64(0); lun < f.totalUnits; lun++ {
		c, d := fm.isCached(lun), fm.isDirty(lun)
		if c {
			cachedSeen++
		}
		if d {
			dirtySeen++
			if !c {
				report("lun %d dirty but not CMT-resident", lun)
			}
		}
		if !d && fm.stored[lun] != f.l2p[lun] {
			report("flash map incoherent at lun %d: stored %d live %d (entry not dirty)",
				lun, fm.stored[lun], f.l2p[lun])
		}
		if !c && (fm.lruNext[lun] != -1 || fm.lruPrev[lun] != -1) {
			report("uncached lun %d keeps LRU links (%d, %d)", lun, fm.lruNext[lun], fm.lruPrev[lun])
		}
	}
	if cachedSeen != fm.cachedCount {
		report("CMT count %d but %d cached bits", fm.cachedCount, cachedSeen)
	}
	if dirtySeen != fm.dirtyCount {
		report("CMT dirty count %d but %d dirty bits", fm.dirtyCount, dirtySeen)
	}

	// LRU walk: exactly the cached set, consistent back-links, no cycle.
	walked := 0
	prev := int32(-1)
	for l := fm.lruHead; l >= 0; l = fm.lruNext[l] {
		if fm.lruPrev[l] != prev {
			report("LRU back-link of lun %d is %d, want %d", l, fm.lruPrev[l], prev)
			break
		}
		if !fm.isCached(int64(l)) {
			report("LRU holds uncached lun %d", l)
		}
		walked++
		if walked > fm.cachedCount {
			report("LRU cycle or length > %d cached entries", fm.cachedCount)
			break
		}
		prev = l
	}
	if walked != fm.cachedCount {
		report("LRU walk covers %d entries, CMT holds %d", walked, fm.cachedCount)
	} else if fm.lruTail != prev {
		report("LRU tail %d, walk ended at %d", fm.lruTail, prev)
	}

	// Per-translation-page dirty counters.
	dirtyByTP := make([]int32, fm.numTPs)
	for lun := int64(0); lun < f.totalUnits; lun++ {
		if fm.isDirty(lun) {
			dirtyByTP[fm.tvpnOf(lun)]++
		}
	}
	for t := range dirtyByTP {
		if dirtyByTP[t] != fm.dirtyByTP[t] {
			report("tvpn %d dirty counter %d but %d dirty entries", t, fm.dirtyByTP[t], dirtyByTP[t])
		}
	}
	fm.tpx.check(fm.dirtyByTP, report)

	// Directory bijection + recovery-record mirror + block placement.
	for tvpn, pid := range fm.gtd {
		if pid < 0 {
			continue
		}
		if fm.tpOwner[pid] != int64(tvpn) {
			report("gtd[%d] = pid %d but tpOwner says %d", tvpn, pid, fm.tpOwner[pid])
		}
		blk := f.pidBlock(pid)
		if f.pidPage(pid) >= f.array.ProgrammedPages(blk) {
			report("gtd[%d] = pid %d on unprogrammed page", tvpn, pid)
		}
		switch f.state[blk] {
		case blockFree, blockSpare:
			report("live translation page %d sits on block %d in state %d", pid, blk, f.state[blk])
		}
	}
	owners := 0
	for pid, tvpn := range fm.tpOwner {
		if tvpn < 0 {
			if f.rlog.tp[pid] != -1 {
				report("pid %d has stale translation recovery record %d", pid, f.rlog.tp[pid])
			}
			continue
		}
		owners++
		if fm.gtd[tvpn] != int64(pid) {
			report("tpOwner[%d] = tvpn %d but gtd points at %d", pid, tvpn, fm.gtd[tvpn])
		}
		if f.rlog.tp[pid] != tvpn {
			report("pid %d translation recovery record %d, want tvpn %d", pid, f.rlog.tp[pid], tvpn)
		}
	}
	live := 0
	for _, pid := range fm.gtd {
		if pid >= 0 {
			live++
		}
	}
	if owners != live {
		report("%d pages own a tvpn but %d directory entries are live", owners, live)
	}
}
