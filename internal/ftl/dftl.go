package ftl

// DFTL-style flash-resident mapping table (Config.FlashMap, -ftlmap=dftl).
//
// The dram mode keeps the whole L2P table in controller DRAM and charges a
// probabilistic map-cache model (mapLookupCost / noteMapDirty). That hides a
// real cost of checkpoint-by-remap: every remap dirties mapping entries that
// must themselves be flushed to flash and garbage-collected. This layer
// charges that cost explicitly, after Gupta et al.'s DFTL and Dayan &
// Bonnet's translation-page GC analysis:
//
//   - The full table lives on flash as translation pages, each packing
//     PageSize/8 mapping entries (8 bytes per entry). tvpn(lun) =
//     lun / entriesPerTP addresses the translation page covering a lun.
//   - The global translation directory (GTD) maps tvpn → the physical page
//     (pid) holding the current version; it is small enough to pin in DRAM
//     (and, on the real device, in power-loss-capacitor-backed SRAM).
//   - A bounded cached mapping table (CMT) holds recently used entries in
//     DRAM. A miss on the host path charges a real flash read of the backing
//     translation page through the NAND timing path. Updates mark entries
//     dirty; dirty entries write back in batches — flushing one translation
//     page persists every dirty entry it covers (read-modify-write of the
//     old page, program of a fresh one on the translation stream).
//   - Translation blocks live in the same victim index as data blocks: a
//     live translation page contributes slotsPerPage to its block's valid
//     count, so cost-benefit/greedy/FIFO reclamation weighs translation and
//     data pages uniformly, and GC migration relocates live translation
//     pages exactly like live data slots (migrateLive → fmMigrateTrans).
//
// Within the simulator the l2p array stays authoritative in both modes;
// flashMap tracks which entries are cached/dirty and what the flash-resident
// copy holds (stored). The coherence invariant — a non-dirty entry's flash
// copy equals the live map — is what the differential mapping oracle and
// CheckInvariants verify at every sampled crash point.
//
// Re-entrancy: writeback programs can trigger GC, and GC rebinding dirties
// CMT entries. Threshold flushes and capacity enforcement therefore run only
// at top level (fm.flushing unset and gcDepth == 0); mapping updates made by
// device-internal work accumulate and settle at the next host-path update.
// The CMT may transiently exceed its bound inside such windows — it is
// re-enforced at every host-path boundary.

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/sim"
)

// flashMap is the per-FTL DFTL state. The zero value is the disabled layer
// (dram mode); initFlashMap arms it.
type flashMap struct {
	enabled bool

	cap          int // CMT bound in entries
	entriesPerTP int // mapping entries per translation page (PageSize/8)
	numTPs       int // translation virtual pages covering the logical space

	// CMT membership and dirtiness, one bit per lun.
	cached      []uint64
	dirty       []uint64
	cachedCount int
	dirtyCount  int

	// Intrusive LRU over cached luns (head = most recent, -1 = nil).
	lruNext []int32
	lruPrev []int32
	lruHead int32
	lruTail int32

	// stored[lun] is the entry's value as held by the flash-resident
	// translation page (-1 before the first flush covering it).
	stored []int64
	// gtd[tvpn] is the physical page id of the live translation page, -1 if
	// the tvpn has never been flushed. tpOwner is its exact inverse.
	gtd     []int64
	tpOwner []int64
	// dirtyByTP[tvpn] counts dirty cached entries per translation page —
	// the batched-writeback selector picks the page with the most.
	dirtyByTP []int32

	// flushing guards the writeback path against re-entering itself when a
	// translation program triggers GC whose rebinding dirties more entries.
	flushing bool
	// oracle arms the differential mapping oracle (tests): panic on the
	// first coherence divergence instead of reporting it.
	oracle bool
}

func (fm *flashMap) isCached(lun int64) bool { return fm.cached[lun>>6]&(1<<(uint64(lun)&63)) != 0 }
func (fm *flashMap) isDirty(lun int64) bool  { return fm.dirty[lun>>6]&(1<<(uint64(lun)&63)) != 0 }

func (fm *flashMap) lruUnlink(l int32) {
	next, prev := fm.lruNext[l], fm.lruPrev[l]
	if prev >= 0 {
		fm.lruNext[prev] = next
	} else {
		fm.lruHead = next
	}
	if next >= 0 {
		fm.lruPrev[next] = prev
	} else {
		fm.lruTail = prev
	}
	fm.lruNext[l], fm.lruPrev[l] = -1, -1
}

func (fm *flashMap) lruPushFront(l int32) {
	fm.lruPrev[l] = -1
	fm.lruNext[l] = fm.lruHead
	if fm.lruHead >= 0 {
		fm.lruPrev[fm.lruHead] = l
	} else {
		fm.lruTail = l
	}
	fm.lruHead = l
}

func (fm *flashMap) touch(lun int64) {
	l := int32(lun)
	if fm.lruHead == l {
		return
	}
	fm.lruUnlink(l)
	fm.lruPushFront(l)
}

// insert adds an uncached lun to the CMT (clean; callers dirty it
// separately). Capacity is enforced by fmEnforceCap, not here.
func (fm *flashMap) insert(lun int64) {
	fm.cached[lun>>6] |= 1 << (uint64(lun) & 63)
	fm.cachedCount++
	fm.lruPushFront(int32(lun))
}

// remove evicts a clean cached lun.
func (fm *flashMap) remove(lun int64) {
	fm.cached[lun>>6] &^= 1 << (uint64(lun) & 63)
	fm.cachedCount--
	fm.lruUnlink(int32(lun))
}

func (fm *flashMap) tvpnOf(lun int64) int { return int(lun / int64(fm.entriesPerTP)) }

func (f *FTL) pidBlock(pid int64) int { return int(pid / int64(f.pagesPerBlk)) }
func (f *FTL) pidPage(pid int64) int  { return int(pid % int64(f.pagesPerBlk)) }

// initFlashMap arms the DFTL layer (Config.FlashMap).
func (f *FTL) initFlashMap() error {
	if f.totalUnits > int64(^uint32(0)>>1) {
		return fmt.Errorf("ftl: flash map: %d logical units exceed the int32 LRU index space", f.totalUnits)
	}
	geo := f.array.Geometry()
	fm := &f.fm
	fm.enabled = true
	fm.entriesPerTP = geo.PageSize / 8
	fm.numTPs = int((f.totalUnits + int64(fm.entriesPerTP) - 1) / int64(fm.entriesPerTP))
	capEntries := f.cfg.CMTEntries
	if capEntries <= 0 {
		capEntries = int(f.cfg.MapCacheBytes / 8)
	}
	// Below two translation pages' worth of entries the CMT would thrash on
	// a single flush batch; clamp to keep tiny test configs functional.
	if min := 2 * fm.entriesPerTP; capEntries < min {
		capEntries = min
	}
	fm.cap = capEntries
	words := (f.totalUnits + 63) / 64
	fm.cached = make([]uint64, words)
	fm.dirty = make([]uint64, words)
	fm.lruNext = make([]int32, f.totalUnits)
	fm.lruPrev = make([]int32, f.totalUnits)
	for i := range fm.lruNext {
		fm.lruNext[i], fm.lruPrev[i] = -1, -1
	}
	fm.lruHead, fm.lruTail = -1, -1
	fm.stored = make([]int64, f.totalUnits)
	for i := range fm.stored {
		fm.stored[i] = -1
	}
	fm.gtd = make([]int64, fm.numTPs)
	for i := range fm.gtd {
		fm.gtd[i] = -1
	}
	totalPages := int64(geo.TotalPages())
	fm.tpOwner = make([]int64, totalPages)
	for i := range fm.tpOwner {
		fm.tpOwner[i] = -1
	}
	fm.dirtyByTP = make([]int32, fm.numTPs)
	f.rlog.tp = make([]int64, totalPages)
	for i := range f.rlog.tp {
		f.rlog.tp[i] = -1
	}
	return nil
}

// FlashMapEnabled reports whether the DFTL layer is active.
func (f *FTL) FlashMapEnabled() bool { return f.fm.enabled }

// EnableMapOracle arms the differential mapping oracle (tests only): every
// CMT miss asserts the flash-resident copy of the entry equals the live
// all-DRAM map, panicking on the first divergence. CheckInvariants performs
// the full-sweep form of the same check in dftl mode regardless.
func (f *FTL) EnableMapOracle() { f.fm.oracle = true }

// CMTLen returns the number of CMT-resident entries (tests/introspection).
func (f *FTL) CMTLen() int { return f.fm.cachedCount }

// fmWrite records that lun's mapping changed: the entry becomes CMT-resident
// and dirty (a write miss needs no fetch — the flush's read-modify-write
// merges unchanged entries from the old translation page). At top level it
// then runs the batched dirty writeback and re-enforces the CMT bound.
func (f *FTL) fmWrite(lun int64) {
	fm := &f.fm
	if fm.isCached(lun) {
		fm.touch(lun)
	} else {
		fm.insert(lun)
	}
	if !fm.isDirty(lun) {
		fm.dirty[lun>>6] |= 1 << (uint64(lun) & 63)
		fm.dirtyCount++
		fm.dirtyByTP[fm.tvpnOf(lun)]++
	}
	if fm.flushing || f.gcDepth > 0 {
		return // settled at the next top-level mapping update
	}
	if fm.dirtyCount >= f.metaFlushAt {
		fm.flushing = true
		for fm.dirtyCount >= f.metaFlushAt {
			f.flushTP(f.fmHottestTP(), inject.SiteTransFlush)
		}
		fm.flushing = false
	}
	if fm.cachedCount > fm.cap {
		f.fmEnforceCap()
	}
}

// fmAccessRange resolves the mapping entries for luns [first, last] through
// the CMT on the host lookup path. Each miss inserts the entry and, when the
// backing translation page lives on flash, charges a real page read —
// deduplicated per tvpn within the range (consecutive luns share pages; a
// real controller holds the fetched page in its transfer buffer across the
// command). With wait set the reads' futures append to futs so the host
// operation completes only after its translation fetches.
func (f *FTL) fmAccessRange(first, last int64, wait bool, futs []*sim.Future) []*sim.Future {
	fm := &f.fm
	lastCharged := -1
	for lun := first; lun <= last; lun++ {
		if fm.isCached(lun) {
			fm.touch(lun)
			f.stats.CMTHits++
			continue
		}
		f.stats.CMTMisses++
		tvpn := fm.tvpnOf(lun)
		if pid := fm.gtd[tvpn]; pid >= 0 && tvpn != lastCharged {
			lastCharged = tvpn
			f.stats.TransReads++
			f.stats.ReadsByTag[TagMeta]++
			if fut := f.readFlash(f.pidBlock(pid), f.pidPage(pid), f.array.Geometry().PageSize, wait); fut != nil {
				futs = append(futs, fut)
			}
		}
		if fm.oracle && fm.stored[lun] != f.l2p[lun] {
			panic(fmt.Sprintf("ftl: flash map diverged at lun %d: flash-resident entry %d, live map %d (uncached entries must match their flash copy)",
				lun, fm.stored[lun], f.l2p[lun]))
		}
		fm.insert(lun)
	}
	if fm.cachedCount > fm.cap && f.gcDepth == 0 && !fm.flushing {
		f.fmEnforceCap()
	}
	return futs
}

// fmEnforceCap evicts LRU entries until the CMT is back within its bound. A
// dirty victim first writes its whole translation page back (batched
// eviction: one flush persists every dirty entry the page covers), then
// leaves clean. Runs only at top level.
func (f *FTL) fmEnforceCap() {
	fm := &f.fm
	for fm.cachedCount > fm.cap {
		lun := int64(fm.lruTail)
		if fm.isDirty(lun) {
			fm.flushing = true
			f.flushTP(fm.tvpnOf(lun), inject.SiteTransEvict)
			fm.flushing = false
			// The flush (or GC it triggered) may have reordered the LRU;
			// re-evaluate from the tail rather than assuming the victim.
			continue
		}
		fm.remove(lun)
		f.stats.CMTEvictions++
	}
}

// fmHottestTP returns the translation page with the most dirty entries
// (lowest tvpn wins ties), or -1 when nothing is dirty.
func (f *FTL) fmHottestTP() int {
	fm := &f.fm
	best, bestN := -1, int32(0)
	for t, n := range fm.dirtyByTP {
		if n > bestN {
			best, bestN = t, n
		}
	}
	return best
}

// flushTP writes back every dirty CMT entry covered by translation page
// tvpn: read-modify-write of the old flash-resident page (when one exists),
// a whole-page program on the translation stream, directory update, and the
// batch marked clean. The entries stay CMT-resident — eviction is the
// caller's decision.
func (f *FTL) flushTP(tvpn int, site inject.Site) {
	fm := &f.fm
	if tvpn < 0 || fm.dirtyByTP[tvpn] == 0 {
		return
	}
	if pid := fm.gtd[tvpn]; pid >= 0 {
		// RMW read: the new page carries the old page's unchanged entries.
		f.stats.TransReads++
		f.stats.ReadsByTag[TagMeta]++
		f.readFlash(f.pidBlock(pid), f.pidPage(pid), f.array.Geometry().PageSize, false)
	}
	f.fmInvalidateTP(tvpn)
	f.appendTransPage(tvpn, TagMeta)
	// The program may have triggered GC whose rebinding dirtied more entries
	// of this page; they were serialized into the flush with the rest (the
	// page's content is drawn from the live map at this instant).
	first := int64(tvpn) * int64(fm.entriesPerTP)
	last := first + int64(fm.entriesPerTP) - 1
	if last >= f.totalUnits {
		last = f.totalUnits - 1
	}
	for lun := first; lun <= last && fm.dirtyByTP[tvpn] > 0; lun++ {
		if fm.isDirty(lun) {
			fm.dirty[lun>>6] &^= 1 << (uint64(lun) & 63)
			fm.dirtyCount--
			fm.dirtyByTP[tvpn]--
			fm.stored[lun] = f.l2p[lun]
		}
	}
	f.stats.TransFlushes++
	f.cfg.Injector.Hit(site)
}

// fmInvalidateTP retires tvpn's current flash-resident page: directory
// detached, the page's slots invalid for GC accounting, recovery record
// cleared. A fresh page must be appended in the same event step.
func (f *FTL) fmInvalidateTP(tvpn int) {
	fm := &f.fm
	pid := fm.gtd[tvpn]
	if pid < 0 {
		return
	}
	blk := f.pidBlock(pid)
	fm.tpOwner[pid] = -1
	fm.gtd[tvpn] = -1
	f.validCount[blk] -= int32(f.slotsPerPage)
	if f.vix.linked[blk] {
		f.vixMarkDirty(blk)
	}
	f.rlog.clearTransPage(pid)
}

// appendTransPage programs one whole translation page for tvpn on the
// translation stream and publishes it in the directory before the frontier
// advances — GC triggered by the advance must already see the page as live.
// Returns the new physical page id.
func (f *FTL) appendTransPage(tvpn int, tag Tag) int64 {
	idx := f.rr[StreamTrans] % len(f.fronts[StreamTrans])
	f.rr[StreamTrans]++
	fr, block := f.openFrontier(StreamTrans, idx)
	pageSize := f.array.Geometry().PageSize
	for f.array.SampleProgramFail(block) {
		// The page content survives in controller DRAM (CMT + old page), so
		// nothing restages: charge the ruined page, condemn the block, and
		// retry on a fresh one.
		f.array.ProgramFailedAttempt(block, pageSize)
		f.written[block] += int32(f.slotsPerPage)
		f.noteProgramFail(block, StreamTrans, 0)
		fr.block = -1
		fr, block = f.openFrontier(StreamTrans, idx)
	}
	page := f.array.ProgramPageNoWait(block, pageSize)
	pid := int64(block)*int64(f.pagesPerBlk) + int64(page)
	f.written[block] += int32(f.slotsPerPage)
	f.validCount[block] += int32(f.slotsPerPage)
	f.stats.ProgramsByTag[tag]++
	f.fm.tpOwner[pid] = int64(tvpn)
	f.fm.gtd[tvpn] = pid
	f.rlog.noteTransWrite(pid, tvpn)
	f.advanceFrontier(fr, block)
	return pid
}

// fmMigrateTrans relocates every live translation page of block b onto a
// fresh translation-stream page — the translation half of migrateLive. Data
// and translation blocks share the victim index, so a GC victim, a
// wear-level source or a retiring bad block may hold live translation pages
// alongside (or instead of) live data slots.
func (f *FTL) fmMigrateTrans(b int) {
	fm := &f.fm
	if !fm.enabled {
		return
	}
	basePid := int64(b) * int64(f.pagesPerBlk)
	pageSize := f.array.Geometry().PageSize
	for p := 0; p < f.pagesPerBlk; p++ {
		pid := basePid + int64(p)
		tvpn := fm.tpOwner[pid]
		if tvpn < 0 {
			continue
		}
		f.stats.ReadsByTag[TagGC]++
		f.stats.TransReads++
		f.readFlash(b, p, pageSize, false)
		f.fmInvalidateTP(int(tvpn))
		f.appendTransPage(int(tvpn), TagGC)
		f.stats.TransMigrated++
		f.cfg.Injector.Hit(inject.SiteTransGC)
	}
}

// fmCheckInvariants verifies the DFTL layer (called from CheckInvariants in
// dftl mode): CMT bitmap/LRU agreement, per-page dirty counters, the
// GTD ↔ tpOwner ↔ recovery-record bijection, live translation pages sitting
// on programmed pages of in-service blocks, and the coherence sweep — every
// non-dirty entry's flash-resident copy equals the live map.
func (f *FTL) fmCheckInvariants(report func(format string, args ...any)) {
	fm := &f.fm
	cachedSeen, dirtySeen := 0, 0
	for lun := int64(0); lun < f.totalUnits; lun++ {
		c, d := fm.isCached(lun), fm.isDirty(lun)
		if c {
			cachedSeen++
		}
		if d {
			dirtySeen++
			if !c {
				report("lun %d dirty but not CMT-resident", lun)
			}
		}
		if !d && fm.stored[lun] != f.l2p[lun] {
			report("flash map incoherent at lun %d: stored %d live %d (entry not dirty)",
				lun, fm.stored[lun], f.l2p[lun])
		}
		if !c && (fm.lruNext[lun] != -1 || fm.lruPrev[lun] != -1) {
			report("uncached lun %d keeps LRU links (%d, %d)", lun, fm.lruNext[lun], fm.lruPrev[lun])
		}
	}
	if cachedSeen != fm.cachedCount {
		report("CMT count %d but %d cached bits", fm.cachedCount, cachedSeen)
	}
	if dirtySeen != fm.dirtyCount {
		report("CMT dirty count %d but %d dirty bits", fm.dirtyCount, dirtySeen)
	}

	// LRU walk: exactly the cached set, consistent back-links, no cycle.
	walked := 0
	prev := int32(-1)
	for l := fm.lruHead; l >= 0; l = fm.lruNext[l] {
		if fm.lruPrev[l] != prev {
			report("LRU back-link of lun %d is %d, want %d", l, fm.lruPrev[l], prev)
			break
		}
		if !fm.isCached(int64(l)) {
			report("LRU holds uncached lun %d", l)
		}
		walked++
		if walked > fm.cachedCount {
			report("LRU cycle or length > %d cached entries", fm.cachedCount)
			break
		}
		prev = l
	}
	if walked != fm.cachedCount {
		report("LRU walk covers %d entries, CMT holds %d", walked, fm.cachedCount)
	} else if fm.lruTail != prev {
		report("LRU tail %d, walk ended at %d", fm.lruTail, prev)
	}

	// Per-translation-page dirty counters.
	dirtyByTP := make([]int32, fm.numTPs)
	for lun := int64(0); lun < f.totalUnits; lun++ {
		if fm.isDirty(lun) {
			dirtyByTP[fm.tvpnOf(lun)]++
		}
	}
	for t := range dirtyByTP {
		if dirtyByTP[t] != fm.dirtyByTP[t] {
			report("tvpn %d dirty counter %d but %d dirty entries", t, fm.dirtyByTP[t], dirtyByTP[t])
		}
	}

	// Directory bijection + recovery-record mirror + block placement.
	for tvpn, pid := range fm.gtd {
		if pid < 0 {
			continue
		}
		if fm.tpOwner[pid] != int64(tvpn) {
			report("gtd[%d] = pid %d but tpOwner says %d", tvpn, pid, fm.tpOwner[pid])
		}
		blk := f.pidBlock(pid)
		if f.pidPage(pid) >= f.array.ProgrammedPages(blk) {
			report("gtd[%d] = pid %d on unprogrammed page", tvpn, pid)
		}
		switch f.state[blk] {
		case blockFree, blockSpare:
			report("live translation page %d sits on block %d in state %d", pid, blk, f.state[blk])
		}
	}
	owners := 0
	for pid, tvpn := range fm.tpOwner {
		if tvpn < 0 {
			if f.rlog.tp[pid] != -1 {
				report("pid %d has stale translation recovery record %d", pid, f.rlog.tp[pid])
			}
			continue
		}
		owners++
		if fm.gtd[tvpn] != int64(pid) {
			report("tpOwner[%d] = tvpn %d but gtd points at %d", pid, tvpn, fm.gtd[tvpn])
		}
		if f.rlog.tp[pid] != tvpn {
			report("pid %d translation recovery record %d, want tvpn %d", pid, f.rlog.tp[pid], tvpn)
		}
	}
	live := 0
	for _, pid := range fm.gtd {
		if pid >= 0 {
			live++
		}
	}
	if owners != live {
		report("%d pages own a tvpn but %d directory entries are live", owners, live)
	}
}
