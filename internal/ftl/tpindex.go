package ftl

import "math/bits"

// tpIndex is the incrementally maintained hottest-translation-page structure:
// every translation page with at least one dirty CMT entry is linked into an
// intrusive doubly-linked bucket keyed by its current dirty-entry count.
// Maintenance is O(1) per dirty transition, replacing the O(numTPs) scan
// fmHottestTP used to run per flush — untenable inside the flush loop once
// the logical space (and with it numTPs) grows to TB-scale maps.
//
// The design mirrors victimIndex (victim.go), with the selection order
// inverted: the flush selector wants the *highest* non-empty bucket (densest
// page first maximizes entries persisted per program), and within a bucket
// the lowest tvpn — exactly the old scan's "strictly more dirty entries win,
// first-encountered page keeps ties". That order depends only on the bucket
// contents, never on FTL state or operation history, so each bucket carries a
// lazily rebalanced min-tvpn best cache (exact or absent, as in victimIndex)
// and Restore can rebuild the index from dirtyByTP alone while reproducing
// byte-identical flush sequences.
//
// Relinks are batched: a dirty-count change only marks the page pending
// (remap churn concentrates many transitions on few pages between two
// selections), and flush re-buckets each pending page once before any read.
type tpIndex struct {
	next   []int32 // intrusive links per tvpn; -1 terminates
	prev   []int32
	linked []bool
	bucket []int32 // dirty count at link time; -1 when unlinked

	heads  []int32  // bucket head per dirty count (1..entriesPerTP; 0 unused)
	counts []int32  // members per bucket
	best   []int32  // cached best member: tvpn, or tpxEmpty / tpxDirty
	words  []uint64 // bit v set ⇔ bucket v non-empty

	pending  []int32
	pendingM []bool
}

const (
	tpxEmpty = int32(-1) // bucket has no members
	tpxDirty = int32(-2) // bucket non-empty but cached best was removed
)

func newTPIndex(numTPs, entriesPerTP int) *tpIndex {
	tx := &tpIndex{
		next:   make([]int32, numTPs),
		prev:   make([]int32, numTPs),
		linked: make([]bool, numTPs),
		bucket: make([]int32, numTPs),

		heads:  make([]int32, entriesPerTP+1),
		counts: make([]int32, entriesPerTP+1),
		best:   make([]int32, entriesPerTP+1),
		words:  make([]uint64, (entriesPerTP+1+63)/64),

		pendingM: make([]bool, numTPs),
		pending:  make([]int32, 0, numTPs),
	}
	for i := range tx.heads {
		tx.heads[i] = -1
		tx.best[i] = tpxEmpty
	}
	for i := range tx.bucket {
		tx.bucket[i] = -1
	}
	return tx
}

// reset empties the index in place (rebuild repopulates it afterwards).
func (tx *tpIndex) reset() {
	for i := range tx.heads {
		tx.heads[i] = -1
		tx.counts[i] = 0
		tx.best[i] = tpxEmpty
	}
	for i := range tx.words {
		tx.words[i] = 0
	}
	for i := range tx.bucket {
		tx.bucket[i] = -1
		tx.linked[i] = false
		tx.pendingM[i] = false
	}
	tx.pending = tx.pending[:0]
}

// insert links tvpn t into bucket v (its dirty count, ≥ 1).
func (tx *tpIndex) insert(t int32, v int32) {
	head := tx.heads[v]
	tx.next[t] = head
	tx.prev[t] = -1
	if head >= 0 {
		tx.prev[head] = t
	}
	tx.heads[v] = t
	tx.linked[t] = true
	tx.bucket[t] = v
	tx.counts[v]++
	tx.words[v/64] |= 1 << (v % 64)
	switch best := tx.best[v]; {
	case best == tpxEmpty:
		tx.best[v] = t
	case best == tpxDirty:
		// stays dirty: the true best is unknown either way
	case t < best:
		tx.best[v] = t
	}
}

// remove unlinks tvpn t (its count changed, or dropped to zero).
func (tx *tpIndex) remove(t int32) {
	v := tx.bucket[t]
	n, p := tx.next[t], tx.prev[t]
	if p >= 0 {
		tx.next[p] = n
	} else {
		tx.heads[v] = n
	}
	if n >= 0 {
		tx.prev[n] = p
	}
	tx.linked[t] = false
	tx.bucket[t] = -1
	tx.counts[v]--
	if tx.counts[v] == 0 {
		tx.words[v/64] &^= 1 << (v % 64)
		tx.best[v] = tpxEmpty
	} else if tx.best[v] == t {
		tx.best[v] = tpxDirty
	}
}

// markDirty records that tvpn t's dirty count changed; the re-bucketing
// itself is deferred to flush.
func (tx *tpIndex) markDirty(t int32) {
	if !tx.pendingM[t] {
		tx.pendingM[t] = true
		tx.pending = append(tx.pending, t)
	}
}

// flush re-buckets every pending page against the authoritative dirtyByTP
// counters, restoring the bucket == dirtyByTP invariant the selection path
// relies on. A page whose count dropped to zero simply unlinks.
func (tx *tpIndex) flush(dirtyByTP []int32) {
	for _, t := range tx.pending {
		tx.pendingM[t] = false
		n := dirtyByTP[t]
		switch {
		case tx.linked[t] && tx.bucket[t] == n:
			// unchanged net of the batched transitions
		case tx.linked[t]:
			tx.remove(t)
			if n > 0 {
				tx.insert(t, n)
			}
		case n > 0:
			tx.insert(t, n)
		}
	}
	tx.pending = tx.pending[:0]
}

// bestOf returns bucket v's best (lowest-tvpn) member, rebuilding the lazy
// cache with one bucket walk if the previous best was removed. Bucket v must
// be non-empty.
func (tx *tpIndex) bestOf(v int32) int32 {
	best := tx.best[v]
	if best >= 0 {
		return best
	}
	for t := tx.heads[v]; t >= 0; t = tx.next[t] {
		if best < 0 || t < best {
			best = t
		}
	}
	tx.best[v] = best
	return best
}

// highestBucket returns the largest non-empty bucket, or -1 when no page has
// dirty entries. Scans the bucket bitmap from the top.
func (tx *tpIndex) highestBucket() int32 {
	for w := len(tx.words) - 1; w >= 0; w-- {
		word := tx.words[w]
		if word == 0 {
			continue
		}
		return int32(w*64 + 63 - bits.LeadingZeros64(word))
	}
	return -1
}

// hottest returns the translation page the retired linear scan would have
// returned: the one with the most dirty entries, lowest tvpn on ties, or -1
// when nothing is dirty.
func (tx *tpIndex) hottest(dirtyByTP []int32) int {
	tx.flush(dirtyByTP)
	v := tx.highestBucket()
	if v < 0 {
		return -1
	}
	return int(tx.bestOf(v))
}

// rebuild reconstructs the index from the dirty counters — used by
// initFlashMap and Restore. The index is a pure function of dirtyByTP, so a
// rebuilt index yields the same flush sequence as an incrementally
// maintained one.
func (tx *tpIndex) rebuild(dirtyByTP []int32) {
	tx.reset()
	for t, n := range dirtyByTP {
		if n > 0 {
			tx.insert(int32(t), n)
		}
	}
}

// check cross-checks the index against the dirty counters; fmCheckInvariants
// calls it. Pending relinks are flushed first — re-bucketing only moves the
// cache to its canonical form, and the structural checks assume
// bucket == dirtyByTP.
func (tx *tpIndex) check(dirtyByTP []int32, report func(format string, args ...any)) {
	tx.flush(dirtyByTP)
	seen := 0
	for v := range tx.heads {
		members := int32(0)
		prev := int32(-1)
		for t := tx.heads[v]; t >= 0; t = tx.next[t] {
			if tx.prev[t] != prev {
				report("tp index: tvpn %d in bucket %d has prev %d, want %d", t, v, tx.prev[t], prev)
			}
			if !tx.linked[t] || int(tx.bucket[t]) != v {
				report("tp index: tvpn %d linked in bucket %d but tagged (linked=%v bucket=%d)",
					t, v, tx.linked[t], tx.bucket[t])
			}
			if int(dirtyByTP[t]) != v {
				report("tp index: tvpn %d in bucket %d but dirtyByTP %d", t, v, dirtyByTP[t])
			}
			members++
			seen++
			prev = t
		}
		if members != tx.counts[v] {
			report("tp index: bucket %d count %d but %d linked members", v, tx.counts[v], members)
		}
		hasBit := tx.words[v/64]&(1<<(v%64)) != 0
		if hasBit != (members > 0) {
			report("tp index: bucket %d bitmap bit %v with %d members", v, hasBit, members)
		}
		if best := tx.best[v]; best >= 0 {
			if !tx.linked[best] || int(tx.bucket[best]) != v {
				report("tp index: bucket %d cached best %d is not a member", v, best)
			} else {
				want := tpxDirty
				for t := tx.heads[v]; t >= 0; t = tx.next[t] {
					if want < 0 || t < want {
						want = t
					}
				}
				if best != want {
					report("tp index: bucket %d cached best %d, true best %d", v, best, want)
				}
			}
		} else if best == tpxEmpty && members > 0 {
			report("tp index: bucket %d marked empty with %d members", v, members)
		}
	}
	dirtyPages := 0
	for t, n := range dirtyByTP {
		if n > 0 {
			dirtyPages++
			if !tx.linked[t] {
				report("tp index: tvpn %d has %d dirty entries but is not linked", t, n)
			}
		} else if tx.linked[t] {
			report("tp index: tvpn %d linked with zero dirty entries", t)
		}
	}
	if seen != dirtyPages {
		report("tp index: %d linked pages but %d pages with dirty entries", seen, dirtyPages)
	}
}
