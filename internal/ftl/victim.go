package ftl

import (
	"fmt"
	"math/bits"
)

// victimIndex is the incrementally maintained GC victim structure: every
// closed block is linked into an intrusive doubly-linked bucket keyed by its
// current valid-slot count. Membership maintenance is O(1) per transition
// (close, per-slot invalidation, collection), replacing the O(totalBlocks)
// scan pickVictim used to run per victim — and per idle-tick existence probe.
//
// Within a bucket, selection needs the bucket's "best" member under a
// policy-dependent total order (see better). Rather than keeping buckets
// sorted — which would make the per-invalidation relink O(bucket) — each
// bucket carries a lazily rebalanced best cache: inserts update it with one
// comparison, removing the cached best merely marks the cache dirty, and the
// next selection touching that bucket rebuilds it with a single walk. The
// cache is therefore always either exact or absent, so selection results are
// a pure function of the index *contents*, never of the operation history —
// the property that lets Restore rebuild the index from restored block state
// and still reproduce byte-identical victim sequences.
//
// A bitmap over buckets (one bit per valid count) locates the lowest
// non-empty bucket and iterates non-empty buckets without touching empty
// ones, and cheapCount counts members below the background-GC threshold so
// the deallocator's HasCheapVictim probe is O(1).
//
// Equivalence with the retained linear scan (pickVictimScan) is argued
// per-policy in pick and enforced by TestVictimIndexOracle.
type victimIndex struct {
	policy GCPolicy

	next   []int32 // intrusive links per block; -1 terminates
	prev   []int32
	linked []bool
	bucket []int32 // valid count at link time; -1 when unlinked

	heads  []int32  // bucket head per valid count (0..slotsPerBlock)
	counts []int32  // members per bucket
	best   []int32  // cached best member: block id, or vixEmpty / vixDirty
	words  []uint64 // bit v set ⇔ bucket v non-empty

	cheapMax   int32 // background-GC valid-count threshold (slots/block / 4)
	cheapCount int   // members with validCount < cheapMax

	// Relinks are batched: a slot invalidation only marks its block pending
	// (hot data concentrates many invalidations on few blocks between two
	// selections), and vixFlush re-buckets each pending block once before
	// any read of the index. Between flushes bucket/cheapCount may lag
	// validCount; every selection path flushes first, so selection results
	// are identical to eager relinking.
	pending  []int32
	pendingM []bool
}

const (
	vixEmpty = int32(-1) // bucket has no members
	vixDirty = int32(-2) // bucket non-empty but cached best was removed
)

func newVictimIndex(policy GCPolicy, totalBlocks, slotsPerBlock int) *victimIndex {
	vx := &victimIndex{
		policy: policy,
		next:   make([]int32, totalBlocks),
		prev:   make([]int32, totalBlocks),
		linked: make([]bool, totalBlocks),
		bucket: make([]int32, totalBlocks),

		heads:  make([]int32, slotsPerBlock+1),
		counts: make([]int32, slotsPerBlock+1),
		best:   make([]int32, slotsPerBlock+1),
		words:  make([]uint64, (slotsPerBlock+1+63)/64),

		cheapMax: int32(slotsPerBlock / 4),
		pendingM: make([]bool, totalBlocks),
	}
	for i := range vx.heads {
		vx.heads[i] = -1
		vx.best[i] = vixEmpty
	}
	for i := range vx.bucket {
		vx.bucket[i] = -1
	}
	return vx
}

// reset empties the index in place (Restore rebuilds it afterwards).
func (vx *victimIndex) reset() {
	for i := range vx.heads {
		vx.heads[i] = -1
		vx.counts[i] = 0
		vx.best[i] = vixEmpty
	}
	for i := range vx.words {
		vx.words[i] = 0
	}
	for i := range vx.bucket {
		vx.bucket[i] = -1
		vx.linked[i] = false
		vx.pendingM[i] = false
	}
	vx.pending = vx.pending[:0]
	vx.cheapCount = 0
}

// better reports whether block a beats block b for selection inside bucket
// v, under the configured policy. Each order is total (erase counts break
// ties on block index; close sequence numbers and block indices are unique),
// so the bucket best is unique and independent of link order.
func (f *FTL) better(a, b int32, v int) bool {
	switch f.vix.policy {
	case GCCostBenefit, GCFIFO:
		if v == 0 {
			// both policies early-return the first fully-invalid block the
			// ascending-index scan meets: lowest block index wins
			return a < b
		}
		// cost-benefit: within a bucket the reclaim factor is fixed, so the
		// oldest block (max age ⇔ min close seq) scores highest; FIFO picks
		// the oldest closed block outright
		return f.closedSeq[a] < f.closedSeq[b]
	default: // GCGreedy
		wa, wb := f.array.EraseCount(int(a)), f.array.EraseCount(int(b))
		if wa != wb {
			return wa < wb
		}
		return a < b
	}
}

// vixInsert links a freshly closed (or restored) block into bucket v.
func (f *FTL) vixInsert(b, v int) {
	vx := f.vix
	if vx.linked[b] {
		panic(fmt.Sprintf("ftl: victim index double-insert of block %d", b))
	}
	b32 := int32(b)
	head := vx.heads[v]
	vx.next[b] = head
	vx.prev[b] = -1
	if head >= 0 {
		vx.prev[head] = b32
	}
	vx.heads[v] = b32
	vx.linked[b] = true
	vx.bucket[b] = int32(v)
	vx.counts[v]++
	vx.words[v/64] |= 1 << (v % 64)
	if int32(v) < vx.cheapMax {
		vx.cheapCount++
	}
	switch best := vx.best[v]; {
	case best == vixEmpty:
		vx.best[v] = b32
	case best == vixDirty:
		// stays dirty: the true best is unknown either way
	case f.better(b32, best, v):
		vx.best[v] = b32
	}
}

// vixRemove unlinks a block (it is being collected, or re-bucketed).
func (f *FTL) vixRemove(b int) {
	vx := f.vix
	if !vx.linked[b] {
		panic(fmt.Sprintf("ftl: victim index removing unlinked block %d", b))
	}
	v := int(vx.bucket[b])
	n, p := vx.next[b], vx.prev[b]
	if p >= 0 {
		vx.next[p] = n
	} else {
		vx.heads[v] = n
	}
	if n >= 0 {
		vx.prev[n] = p
	}
	vx.linked[b] = false
	vx.bucket[b] = -1
	vx.counts[v]--
	if int32(v) < vx.cheapMax {
		vx.cheapCount--
	}
	if vx.counts[v] == 0 {
		vx.words[v/64] &^= 1 << (v % 64)
		vx.best[v] = vixEmpty
	} else if vx.best[v] == int32(b) {
		vx.best[v] = vixDirty
	}
}

// vixMarkDirty records that b's valid count changed — down after a slot
// invalidation, up in the rare case a slot was appended to a block that
// filled (and closed) before its bind landed. The re-bucketing itself is
// deferred to vixFlush.
func (f *FTL) vixMarkDirty(b int) {
	vx := f.vix
	if !vx.pendingM[b] {
		vx.pendingM[b] = true
		vx.pending = append(vx.pending, int32(b))
	}
}

// vixFlush re-buckets every pending block, restoring the bucket ==
// validCount invariant the selection paths rely on. A pending block that
// was collected (unlinked) in the meantime just has its mark dropped.
func (f *FTL) vixFlush() {
	vx := f.vix
	for _, b := range vx.pending {
		vx.pendingM[b] = false
		if vx.linked[b] && vx.bucket[b] != f.validCount[b] {
			f.vixRemove(int(b))
			f.vixInsert(int(b), int(f.validCount[b]))
		}
	}
	vx.pending = vx.pending[:0]
}

// bestOf returns bucket v's best member, rebuilding the lazy cache with one
// bucket walk if the previous best was removed. Bucket v must be non-empty.
func (f *FTL) bestOf(v int) int32 {
	vx := f.vix
	best := vx.best[v]
	if best >= 0 {
		return best
	}
	for b := vx.heads[v]; b >= 0; b = vx.next[b] {
		if best < 0 || f.better(b, best, v) {
			best = b
		}
	}
	vx.best[v] = best
	return best
}

// lowestBucket returns the smallest non-empty bucket < limit, or -1.
func (vx *victimIndex) lowestBucket(limit int) int {
	if limit > len(vx.heads) {
		limit = len(vx.heads)
	}
	for w := 0; w*64 < limit; w++ {
		word := vx.words[w]
		if word == 0 {
			continue
		}
		v := w*64 + bits.TrailingZeros64(word)
		if v >= limit {
			return -1
		}
		return v
	}
	return -1
}

// pick returns the victim the linear scan would return, using the index.
// maxValid bounds the victim's valid count (exclusive), as in pickVictimScan.
func (f *FTL) pick(maxValid int) int {
	f.vixFlush()
	vx := f.vix
	low := vx.lowestBucket(maxValid)
	if low < 0 {
		return -1
	}
	switch vx.policy {
	case GCCostBenefit:
		if low == 0 {
			// the scan early-returns the first fully-invalid block
			return int(f.bestOf(0))
		}
		// Only per-bucket bests can win: within a bucket the score is
		// strictly decreasing in close seq, so every non-best member scores
		// strictly below its bucket's best and can neither win nor tie the
		// global maximum. Ties *between* buckets fall to the lower block
		// index, exactly as the ascending-index scan's strict > keeps the
		// first-encountered block.
		slotsPerBlock := int32(f.pagesPerBlk * f.slotsPerPage)
		best := -1
		var bestScore float64
		f.eachBucket(low, maxValid, func(v int) {
			b := f.bestOf(v)
			age := float64(f.closeClock - f.closedSeq[b] + 1)
			score := float64(slotsPerBlock-int32(v)) / float64(2*int32(v)) * age
			if best < 0 || score > bestScore || (score == bestScore && int(b) < best) {
				best, bestScore = int(b), score
			}
		})
		return best
	case GCFIFO:
		if low == 0 {
			return int(f.bestOf(0))
		}
		// oldest close seq among qualifying buckets; seqs are unique
		best := int32(-1)
		f.eachBucket(low, maxValid, func(v int) {
			b := f.bestOf(v)
			if best < 0 || f.closedSeq[b] < f.closedSeq[best] {
				best = b
			}
		})
		return int(best)
	default: // GCGreedy
		// the scan minimizes (valid, wear, index) lexicographically: the
		// lowest non-empty bucket pins valid, its best pins (wear, index)
		return int(f.bestOf(low))
	}
}

// eachBucket invokes fn for every non-empty bucket in [from, limit).
func (f *FTL) eachBucket(from, limit int, fn func(v int)) {
	vx := f.vix
	if limit > len(vx.heads) {
		limit = len(vx.heads)
	}
	for w := from / 64; w*64 < limit; w++ {
		word := vx.words[w]
		if w == from/64 {
			word &^= (1 << (from % 64)) - 1
		}
		for word != 0 {
			v := w*64 + bits.TrailingZeros64(word)
			if v >= limit {
				return
			}
			fn(v)
			word &= word - 1
		}
	}
}

// rebuildVictimIndex reconstructs the index from block state — used by New
// and Restore. The index is a pure function of (state, validCount), so a
// rebuilt index yields the same victim sequence as an incrementally
// maintained one.
func (f *FTL) rebuildVictimIndex() {
	f.vix.reset()
	for b := 0; b < f.totalBlocks; b++ {
		if f.state[b] == blockClosed {
			f.vixInsert(b, int(f.validCount[b]))
		}
	}
}

// checkVictimIndex cross-checks the index against block state and valid
// counts; CheckInvariants calls it. gcVictim is the block currently being
// collected (detached from the index mid-collection), or -1.
func (f *FTL) checkVictimIndex(report func(format string, args ...any)) {
	// Flush pending relinks first: re-bucketing only moves the cache to its
	// canonical form (no observable FTL state changes), and the structural
	// checks below assume bucket == validCount.
	f.vixFlush()
	vx := f.vix
	seen := 0
	cheap := 0
	for v := range vx.heads {
		members := int32(0)
		prev := int32(-1)
		for b := vx.heads[v]; b >= 0; b = vx.next[b] {
			if vx.prev[b] != prev {
				report("victim index: block %d in bucket %d has prev %d, want %d", b, v, vx.prev[b], prev)
			}
			if !vx.linked[b] || int(vx.bucket[b]) != v {
				report("victim index: block %d linked in bucket %d but tagged (linked=%v bucket=%d)",
					b, v, vx.linked[b], vx.bucket[b])
			}
			if f.state[b] != blockClosed {
				report("victim index: block %d in bucket %d is not closed (state %d)", b, v, f.state[b])
			}
			if int(f.validCount[b]) != v {
				report("victim index: block %d in bucket %d but validCount %d", b, v, f.validCount[b])
			}
			members++
			seen++
			if int32(v) < vx.cheapMax {
				cheap++
			}
			prev = b
		}
		if members != vx.counts[v] {
			report("victim index: bucket %d count %d but %d linked members", v, vx.counts[v], members)
		}
		hasBit := vx.words[v/64]&(1<<(v%64)) != 0
		if hasBit != (members > 0) {
			report("victim index: bucket %d bitmap bit %v with %d members", v, hasBit, members)
		}
		if best := vx.best[v]; best >= 0 {
			if !vx.linked[best] || int(vx.bucket[best]) != v {
				report("victim index: bucket %d cached best %d is not a member", v, best)
			} else {
				want := vixDirty
				for b := vx.heads[v]; b >= 0; b = vx.next[b] {
					if want < 0 || f.better(b, want, v) {
						want = b
					}
				}
				if best != want {
					report("victim index: bucket %d cached best %d, true best %d", v, best, want)
				}
			}
		} else if best == vixEmpty && members > 0 {
			report("victim index: bucket %d marked empty with %d members", v, members)
		}
	}
	closed := 0
	for b := 0; b < f.totalBlocks; b++ {
		if f.state[b] != blockClosed {
			if vx.linked[b] {
				report("victim index: non-closed block %d is linked", b)
			}
			continue
		}
		closed++
		if !vx.linked[b] && b != f.gcVictim {
			report("victim index: closed block %d not linked (gcVictim %d)", b, f.gcVictim)
		}
	}
	if f.gcVictim >= 0 && f.state[f.gcVictim] == blockClosed {
		closed-- // mid-collection victim is legitimately detached
	}
	if seen != closed {
		report("victim index: %d linked blocks but %d indexable closed blocks", seen, closed)
	}
	if cheap != vx.cheapCount {
		report("victim index: cheapCount %d but %d members below threshold %d", vx.cheapCount, cheap, vx.cheapMax)
	}
}
