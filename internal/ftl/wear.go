package ftl

import (
	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/trace"
)

// Static wear leveling: the greedy GC victim policy naturally recycles
// blocks holding hot data, so blocks pinned under cold valid data fall
// behind in erase count and the wear spread grows unboundedly. The
// wear-leveler closes that gap by occasionally migrating the coldest
// (least-erased, still mostly valid) block so its cells rejoin the
// allocation pool.

// WearStats summarizes the erase-count distribution across blocks.
type WearStats struct {
	MinErase  uint32
	MaxErase  uint32
	MeanErase float64
	// Spread is Max - Min, the quantity static wear leveling bounds.
	Spread uint32
	// Moves is the number of wear-leveling migrations performed.
	Moves uint64
}

// WearStats computes the current wear distribution.
func (f *FTL) WearStats() WearStats {
	ws := WearStats{Moves: f.stats.WearLevelMoves}
	var sum uint64
	counted := 0
	first := true
	for b := 0; b < f.totalBlocks; b++ {
		// Retired blocks stop being erased (their count is frozen) and
		// spares have not started; including either would pin the spread
		// and make the leveler chase blocks it can never move.
		if f.state[b] == blockBad || f.state[b] == blockSpare {
			continue
		}
		ec := f.array.EraseCount(b)
		sum += uint64(ec)
		counted++
		if first {
			ws.MinErase, ws.MaxErase = ec, ec
			first = false
			continue
		}
		if ec < ws.MinErase {
			ws.MinErase = ec
		}
		if ec > ws.MaxErase {
			ws.MaxErase = ec
		}
	}
	if counted > 0 {
		ws.MeanErase = float64(sum) / float64(counted)
	}
	ws.Spread = ws.MaxErase - ws.MinErase
	return ws
}

// MaybeWearLevel performs at most one static wear-leveling move if the
// erase-count spread exceeds the configured threshold: the coldest closed
// block is collected (its valid data migrates to the current frontiers),
// returning its under-erased cells to the free pool. Returns whether a
// move happened. The deallocator calls this from its periodic tick.
func (f *FTL) MaybeWearLevel() bool {
	if f.cfg.WearDeltaThreshold == 0 {
		return false
	}
	ws := f.WearStats()
	if ws.Spread < f.cfg.WearDeltaThreshold {
		return false
	}
	// coldest closed block (ties: most valid data, i.e. the most "stuck")
	best := -1
	var bestErase uint32
	var bestValid int32
	for b := 0; b < f.totalBlocks; b++ {
		if f.state[b] != blockClosed {
			continue
		}
		ec := f.array.EraseCount(b)
		if best < 0 || ec < bestErase || (ec == bestErase && f.validCount[b] > bestValid) {
			best, bestErase, bestValid = b, ec, f.validCount[b]
		}
	}
	if best < 0 || bestErase > uint32(ws.MeanErase) {
		return false // nothing genuinely cold to move
	}
	f.gcDepth++
	f.collectBlock(best)
	f.gcDepth--
	f.stats.WearLevelMoves++
	f.cfg.Tracer.Emit(f.eng.Now(), trace.KindWearLevel, int64(best), "")
	f.cfg.Injector.Hit(inject.SiteWearLevel)
	return true
}
