package ftl

// FTL-side recovery machinery above the NAND fault model (nand/reliability):
//
//   - read-retry: a correctable read error re-reads the page under shifted
//     voltages (bounded ladder, per-step latency); an uncorrectable read
//     walks the full ladder, pays a soft-decision decode, and queues the
//     block for a read-reclaim scrub. Read faults are latency/wear-only —
//     data always recovers — so the mapping is untouched.
//   - program failure: the failed page's buffered slots are restaged on a
//     fresh block of the same frontier (programPage's retry loop), every
//     logical reference rebound, and the block condemned.
//   - erase failure: the GC victim is retired in place of being freed.
//   - retirement: a condemned block's remaining live slots migrate through
//     the GC stream, the block becomes blockBad, and a spare block joins
//     the free pool in its place; with the spare pool exhausted the FTL
//     latches read-only (graceful degradation — reads keep working).
//
// Retirement after a program failure cannot run inline: the failure
// surfaces inside appendSlot, and migrating the condemned block's live data
// appends to the GC stream — re-entering the very frontier machinery that
// is mid-update. The handlers therefore queue the block and DrainFaults
// processes the queue at the host entry points and the deallocator tick,
// when the stack is at a safe depth (the same rule GC itself follows).

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/trace"
)

// pendingMark bits: which deferred-fault queues a block currently sits in.
const (
	pendRetire  uint8 = 1 << 0
	pendReclaim uint8 = 1 << 1
)

// readFlash wraps every FTL page read with the reliability model: clean
// reads go straight to the array (and are byte-identical to the pre-model
// path when the model is off), faulty reads run the recovery ladder. When
// wait is false no future is created (fire-and-forget, as ReadPageNoWait).
func (f *FTL) readFlash(block, page, nbytes int, wait bool) *sim.Future {
	steps, uncorr := f.array.SampleRead(block)
	if steps == 0 && !uncorr {
		if wait {
			return f.array.ReadPage(block, page, nbytes)
		}
		f.array.ReadPageNoWait(block, page, nbytes)
		return nil
	}
	return f.readFlashRecover(block, page, nbytes, steps, uncorr, wait)
}

// readFlashRecover charges the bounded voltage-shift retry ladder — the
// initial read plus one re-read and one shift-setup delay per step — and,
// for an uncorrectable page, the soft-decision decode on top, after which
// the block is queued for a read-reclaim scrub. The returned future (wait
// mode) completes when the last recovery step finishes.
func (f *FTL) readFlashRecover(block, page, nbytes, steps int, uncorr, wait bool) *sim.Future {
	attempts := steps
	if uncorr || attempts > f.maxRetries {
		attempts = f.maxRetries
	}
	for i := 0; i <= attempts; i++ {
		f.array.ReadPageNoWait(block, page, nbytes)
	}
	extra := sim.VTime(attempts) * f.retryLat
	if uncorr {
		extra += f.softLat
		f.queueReclaim(block)
	}
	end := f.array.ReserveDie(block, extra)
	if f.cfg.Tracer != nil {
		f.cfg.Tracer.Emit(f.eng.Now(), trace.KindReadRetry, int64(block),
			fmt.Sprintf("page=%d attempts=%d uncorrectable=%v", page, attempts, uncorr))
	}
	f.cfg.Injector.Hit(inject.SiteReadRetry)
	if !wait {
		return nil
	}
	out := sim.NewFuture(f.eng)
	f.eng.AtComplete(end, out)
	return out
}

// handleProgramFail recovers frontier idx of stream s from a program
// failure: the ruined page is consumed on the failing block, the buffered
// slots are restaged at page 0 of a freshly allocated block with every
// logical reference rebound, and the failing block is condemned (queued for
// migration + retirement). When inflight is set, the last buffered slot
// belongs to the appendSlot call still on the stack; it is not bound yet,
// so only its recovery-log record moves and frontier.relocBase tells the
// caller where its slot ended up.
func (f *FTL) handleProgramFail(s Stream, idx int, inflight bool) {
	fr := &f.fronts[s][idx]
	old := fr.block
	oldPage := f.array.ProgrammedPages(old)
	fill := len(fr.fillLSNs)

	f.array.ProgramFailedAttempt(old, fill*f.unit)
	// The buffered slots were counted against old when staged; the rest of
	// the ruined physical page is dead on it too.
	f.written[old] += int32(f.slotsPerPage - fill)

	nb := f.allocBlock(f.array.Geometry().DieOfBlock(old))
	fr.block = nb
	fr.relocBase = f.slotID(nb, 0, 0)
	for i := 0; i < fill; i++ {
		oldSid := f.slotID(old, oldPage, i)
		newSid := fr.relocBase + int64(i)
		f.written[nb]++
		rc := f.refcnt[oldSid]
		switch {
		case rc > 0:
			// Bound slot: move every logical reference. luns is built by
			// hand — not via lunsOf — because a caller (the GC migrate pass)
			// may hold the shared scratch buffer across this call.
			luns := append([]int64{f.rev[oldSid]}, f.revOverflow[oldSid]...)
			for _, lun := range luns {
				f.l2p[lun] = -1
			}
			if rc > 1 {
				if ov, ok := f.revOverflow[oldSid]; ok {
					f.recycleOv(ov)
					delete(f.revOverflow, oldSid)
				}
			}
			f.refcnt[oldSid] = 0
			f.rev[oldSid] = -1
			f.validCount[old]--
			f.noteMapDirty(len(luns))
			f.rlog.clearSlot(oldSid)
			f.rlog.noteWrite(newSid, luns[0])
			f.bindSlot(luns[0], newSid)
			for _, lun := range luns[1:] {
				f.shareSlot(lun, newSid)
			}
		case inflight && i == fill-1:
			// The append in progress: not bound yet; the caller re-derives
			// its slot id from relocBase after programPage returns.
			f.rlog.clearSlot(oldSid)
			f.rlog.noteWrite(newSid, fr.fillLSNs[i])
		default:
			// Dead staged slot (overwritten while buffered): nothing to
			// rebind, but its stale OOB record must not survive.
			f.rlog.clearSlot(oldSid)
		}
	}
	f.noteProgramFail(old, s, fill)
}

// noteProgramFail condemns a block after a program failure: stats, trace,
// the deferred retirement queue, and the injection site (which fires with
// the mapping already consistent).
func (f *FTL) noteProgramFail(block int, s Stream, restaged int) {
	f.stats.ProgramFailMoves++
	f.queueRetire(block)
	if f.cfg.Tracer != nil {
		f.cfg.Tracer.Emit(f.eng.Now(), trace.KindProgramFail, int64(block),
			fmt.Sprintf("stream=%d restaged=%d", s, restaged))
	}
	f.cfg.Injector.Hit(inject.SiteProgramFail)
}

// queueRetire schedules a condemned block for migration + retirement.
func (f *FTL) queueRetire(b int) {
	if f.pendingMark[b]&pendRetire != 0 {
		return
	}
	f.pendingMark[b] |= pendRetire
	f.pendingRetire = append(f.pendingRetire, b)
}

// queueReclaim schedules a read-disturbed block for a scrub (migrate +
// erase). Only closed blocks are queued: frontiers and free blocks churn on
// their own, and a block already condemned will be retired instead.
func (f *FTL) queueReclaim(b int) {
	if f.state[b] != blockClosed || f.gcVictim == b {
		return
	}
	if f.pendingMark[b]&(pendReclaim|pendRetire) != 0 {
		return
	}
	f.pendingMark[b] |= pendReclaim
	f.pendingReclaim = append(f.pendingReclaim, b)
}

// DrainFaults processes the deferred fault queues — bad-block retirement
// after program failures, read-reclaim scrubs after uncorrectable reads —
// once the stack is at a safe depth (not inside GC or another handler).
// Host entry points and the deallocator tick call it; a no-op when nothing
// is queued.
func (f *FTL) DrainFaults() {
	if f.gcDepth > 0 || (len(f.pendingRetire) == 0 && len(f.pendingReclaim) == 0) {
		return
	}
	f.gcDepth++
	for len(f.pendingRetire) > 0 || len(f.pendingReclaim) > 0 {
		// Retirements first: the handling itself (migration programs, scrub
		// reads) can fault and grow either queue, so loop until both drain.
		if n := len(f.pendingRetire) - 1; n >= 0 {
			b := f.pendingRetire[n]
			f.pendingRetire = f.pendingRetire[:n]
			f.pendingMark[b] &^= pendRetire
			prev := f.gcVictim
			if f.vix.linked[b] {
				f.vixRemove(b)
			}
			f.gcVictim = b
			f.migrateLive(b)
			f.gcVictim = prev
			f.retireBlock(b)
			f.cfg.Injector.Hit(inject.SiteBadBlockRetire)
			continue
		}
		n := len(f.pendingReclaim) - 1
		b := f.pendingReclaim[n]
		f.pendingReclaim = f.pendingReclaim[:n]
		f.pendingMark[b] &^= pendReclaim
		if f.state[b] != blockClosed || f.gcVictim == b {
			continue // reclaimed or reopened since it was queued
		}
		f.stats.ReadReclaims++
		f.collectBlock(b)
	}
	f.gcDepth--
}

// retireBlock permanently removes b from service (a grown bad block). The
// caller has already migrated its live data and cleared its recovery-log
// records. A spare block, when available, joins the free pool in its place;
// once the pool is exhausted the FTL latches read-only.
func (f *FTL) retireBlock(b int) {
	f.state[b] = blockBad
	f.badCount++
	f.stats.RetiredBlocks++
	if f.cfg.Tracer != nil {
		f.cfg.Tracer.Emit(f.eng.Now(), trace.KindBlockRetire, int64(b),
			fmt.Sprintf("spares=%d", f.spareCount))
	}
	geo := f.array.Geometry()
	if sp := f.takeSpare(geo.DieOfBlock(b)); sp >= 0 {
		f.state[sp] = blockFree
		f.freeByDie[geo.DieOfBlock(sp)] = append(f.freeByDie[geo.DieOfBlock(sp)], sp)
		f.freeCount++
	} else if !f.readOnly {
		f.readOnly = true
		if f.cfg.Tracer != nil {
			f.cfg.Tracer.Emit(f.eng.Now(), trace.KindReadOnly, int64(b), "spare pool exhausted")
		}
	}
}

// takeSpare pops a spare block, preferring the failed block's die so the
// per-die free pools stay balanced; -1 when the pool is empty.
func (f *FTL) takeSpare(preferDie int) int {
	if f.spareCount == 0 {
		return -1
	}
	dies := len(f.spareByDie)
	for i := 0; i < dies; i++ {
		d := (preferDie + i) % dies
		if n := len(f.spareByDie[d]); n > 0 {
			b := f.spareByDie[d][n-1]
			f.spareByDie[d] = f.spareByDie[d][:n-1]
			f.spareCount--
			return b
		}
	}
	return -1
}

// ReadOnly reports whether the FTL degraded to read-only (a retirement
// found the spare pool exhausted). Reads, GC and checkpointing keep
// working; the engine rejects new host writes.
func (f *FTL) ReadOnly() bool { return f.readOnly }

// Health summarizes the reliability state for device-level reporting.
type Health struct {
	RetiredBlocks int
	SparesLeft    int
	ReadOnly      bool
}

// Health returns the current reliability summary.
func (f *FTL) Health() Health {
	return Health{RetiredBlocks: f.badCount, SparesLeft: f.spareCount, ReadOnly: f.readOnly}
}
