package ftl

import (
	"fmt"
	"testing"

	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
)

// dftlGeo doubles smallGeo's block count so the logical space (716 units)
// exceeds the CMT floor (two translation pages = 512 entries): capacity
// evictions are reachable, not just threshold flushes. 2 KB pages keep
// entriesPerTP at 256, giving three translation virtual pages.
func dftlGeo() nand.Geometry {
	return nand.Geometry{
		Channels: 1, PackagesPerChannel: 1, DiesPerPackage: 1, PlanesPerDie: 1,
		BlocksPerPlane: 32, PagesPerBlock: 8, PageSize: 2048,
	}
}

// dftlCfg arms the flash-resident mapping table at the smallest legal CMT
// (CMTEntries below the floor clamps up to 512) with a writeback batch small
// enough that the tiny workloads here cross it many times.
func dftlCfg() Config {
	c := smallCfg()
	c.FlashMap = true
	c.CMTEntries = 1
	c.MetaFlushEntries = 96
	return c
}

func newDFTL(t *testing.T, cfg Config) (*sim.Engine, *nand.Array, *FTL) {
	t.Helper()
	e := sim.NewEngine()
	arr, err := nand.New(e, dftlGeo(), fastTim())
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(e, arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, arr, f
}

// settleCMT issues one top-level host write so deferred cap enforcement
// (updates made inside GC or a writeback settle at the next host-path
// mapping update) has run before the test asserts the bound.
func settleCMT(e *sim.Engine, f *FTL) {
	f.Write(0, int64(f.unit), TagHostData, StreamData)
	f.Sync(StreamData, TagHostData)
	e.Run()
}

// TestMappingOracle is the differential test for the dftl tentpole: under
// all three GC policies and three seeds, the flash-resident mapping table
// runs with the mapping oracle armed — every CMT miss asserts the
// translation-page copy of the entry equals the live map, panicking at the
// faulting access on the first divergence — while the victim-oracle
// workload drives skewed overwrites, trims, remaps, syncs and background
// GC. The FTL must keep every dftl invariant (CMT/LRU/directory coherence,
// full-sweep stored-vs-live agreement), survive a lossless SPOR rebuild of
// the translation directory, and keep doing all of the above after a
// Snapshot/Restore round trip carries the whole dftl state into a fresh
// instance.
func TestMappingOracle(t *testing.T) {
	for _, pol := range []GCPolicy{GCGreedy, GCCostBenefit, GCFIFO} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", pol, seed), func(t *testing.T) {
				cfg := dftlCfg()
				cfg.GCPolicy = pol
				e, arr, f := newDFTL(t, cfg)
				f.EnableMapOracle()

				rng := benchRNG(0xa0761d6478bd642f ^ uint64(seed)*0xe7037ed1a0b428db)
				oracleWorkload(t, e, f, &rng, 2048)
				if f.stats.TransFlushes == 0 || f.stats.CMTMisses == 0 {
					t.Fatalf("workload exercised no translation traffic (flushes=%d misses=%d)",
						f.stats.TransFlushes, f.stats.CMTMisses)
				}
				settleCMT(e, f)
				if f.fm.cachedCount > f.fm.cap {
					t.Fatalf("CMT over bound at top level: %d > %d", f.fm.cachedCount, f.fm.cap)
				}
				if err := f.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if rep := f.VerifySPOR(); rep.Mismatches != 0 {
					t.Fatalf("SPOR lost durable state: %s", rep)
				}

				// Round trip: the restored instance must hold the identical
				// CMT, directory and flash-resident copies, and keep the
				// oracle quiet for the rest of the workload.
				st, err := f.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				f2, err := New(e, arr, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := f2.Restore(st); err != nil {
					t.Fatal(err)
				}
				f2.EnableMapOracle()
				if err := f2.CheckInvariants(); err != nil {
					t.Fatalf("restored FTL: %v", err)
				}
				oracleWorkload(t, e, f2, &rng, 1024)
				settleCMT(e, f2)
				if f2.fm.cachedCount > f2.fm.cap {
					t.Fatalf("restored CMT over bound: %d > %d", f2.fm.cachedCount, f2.fm.cap)
				}
				if err := f2.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if rep := f2.VerifySPOR(); rep.Mismatches != 0 {
					t.Fatalf("restored SPOR lost durable state: %s", rep)
				}
			})
		}
	}
}

// TestTransGCCrashConsistency covers the trans-gc injection site at the FTL
// layer. The full-stack crash matrix cannot reach it: by the time the
// collector wants a translation block, uniform tvpn rotation has already
// killed every page on it, so it reclaims dead (the same reason the
// wear-level site lives in TestWearLevelCrashConsistency). Here we collect
// a block that still holds live translation pages directly and crash at the
// instant each page has been migrated: the directory, recovery records and
// coherence sweep must all hold, and the SPOR rebuild must reproduce the
// directory without loss.
func TestTransGCCrashConsistency(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := dftlCfg()
		inj := inject.New()
		cfg.Injector = inj
		e, _, f := newDFTL(t, cfg)

		// Spread writes across the whole space so flushes populate all
		// three translation virtual pages.
		unit := int64(f.unit)
		luns := f.logicalBytes / unit
		for i := 0; i < 1200; i++ {
			lun := (int64(seed)*31 + int64(i)*7) % luns
			f.Write(lun*unit, unit, TagHostData, StreamData)
			if i%64 == 63 {
				f.Sync(StreamData, TagHostData)
				e.Run()
			}
		}
		f.Sync(StreamData, TagHostData)
		e.Run()

		// Pick a victim holding a live translation page, skipping any open
		// frontier block (the collector never chooses one either).
		open := map[int]bool{}
		for s := 0; s < int(numStreams); s++ {
			for _, fr := range f.fronts[s] {
				if fr.block >= 0 {
					open[fr.block] = true
				}
			}
		}
		victim := -1
		for pid, tvpn := range f.fm.tpOwner {
			if tvpn >= 0 && !open[f.pidBlock(int64(pid))] {
				victim = f.pidBlock(int64(pid))
				break
			}
		}
		if victim < 0 {
			t.Fatalf("seed=%d: no closed block holds a live translation page", seed)
		}

		crashed := 0
		inj.Arm(inject.SiteTransGC, 0, nil, func(site inject.Site, hit int) {
			crashed++
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("seed=%d site=%s hit=%d: %v", seed, site, hit, err)
			}
			if rep := f.VerifySPOR(); rep.Mismatches != 0 {
				t.Fatalf("seed=%d site=%s hit=%d: SPOR lost durable state: %s", seed, site, hit, rep)
			}
		})
		before := f.stats.TransMigrated
		f.gcDepth++
		f.collectBlock(victim)
		f.gcDepth--
		e.Run()

		if crashed == 0 {
			t.Fatalf("seed=%d: trans-gc site never fired", seed)
		}
		if f.stats.TransMigrated == before {
			t.Fatalf("seed=%d: collector migrated no translation pages", seed)
		}
		for p := 0; p < f.pagesPerBlk; p++ {
			if tv := f.fm.tpOwner[int64(victim)*int64(f.pagesPerBlk)+int64(p)]; tv >= 0 {
				t.Fatalf("seed=%d: collected block %d still owns tvpn %d", seed, victim, tv)
			}
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if rep := f.VerifySPOR(); rep.Mismatches != 0 {
			t.Fatalf("seed=%d: post-GC SPOR lost durable state: %s", seed, rep)
		}
	}
}

// FuzzCMTEviction lets the fuzzer pick the CMT bound, the writeback batch
// size and the workload shape, then replays the oracle workload with the
// mapping oracle armed: any divergence between the flash-resident table and
// the live map panics at the faulting access, any structural break fails
// CheckInvariants, and the SPOR rebuild must stay lossless. Sub-floor CMT
// bounds exercise the clamp; batch size 1 forces a writeback per dirtied
// translation page.
func FuzzCMTEviction(f *testing.F) {
	f.Add(uint64(1), uint16(1), uint16(96), uint16(1024))
	f.Add(uint64(2), uint16(700), uint16(8), uint16(512))
	f.Add(uint64(3), uint16(520), uint16(200), uint16(1500))
	f.Add(uint64(0x9e3779b9), uint16(513), uint16(1), uint16(768))
	f.Fuzz(func(t *testing.T, seed uint64, capEntries, flushAt, rounds uint16) {
		cfg := dftlCfg()
		cfg.CMTEntries = int(capEntries) // clamps up to the 512-entry floor
		cfg.MetaFlushEntries = int(flushAt)%512 + 1
		e, _, ftl := newDFTL(t, cfg)
		ftl.EnableMapOracle()

		rng := benchRNG(seed | 1)
		oracleWorkload(t, e, ftl, &rng, int(rounds)%1536+64)
		settleCMT(e, ftl)
		if ftl.fm.cachedCount > ftl.fm.cap {
			t.Fatalf("CMT over bound: %d > %d", ftl.fm.cachedCount, ftl.fm.cap)
		}
		if err := ftl.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if rep := ftl.VerifySPOR(); rep.Mismatches != 0 {
			t.Fatalf("SPOR lost durable state: %s", rep)
		}
	})
}
