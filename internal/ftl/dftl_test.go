package ftl

import (
	"fmt"
	"testing"

	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
)

// dftlGeo doubles smallGeo's block count so the logical space (716 units)
// exceeds the CMT floor (two translation pages = 512 entries): capacity
// evictions are reachable, not just threshold flushes. 2 KB pages keep
// entriesPerTP at 256, giving three translation virtual pages.
func dftlGeo() nand.Geometry {
	return nand.Geometry{
		Channels: 1, PackagesPerChannel: 1, DiesPerPackage: 1, PlanesPerDie: 1,
		BlocksPerPlane: 32, PagesPerBlock: 8, PageSize: 2048,
	}
}

// dftlCfg arms the flash-resident mapping table at the smallest legal CMT
// (CMTEntries below the floor clamps up to 512) with a writeback batch small
// enough that the tiny workloads here cross it many times.
func dftlCfg() Config {
	c := smallCfg()
	c.FlashMap = true
	c.CMTEntries = 1
	c.MetaFlushEntries = 96
	return c
}

func newDFTL(t testing.TB, cfg Config) (*sim.Engine, *nand.Array, *FTL) {
	t.Helper()
	e := sim.NewEngine()
	arr, err := nand.New(e, dftlGeo(), fastTim())
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(e, arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, arr, f
}

// settleCMT issues one top-level host write so deferred cap enforcement
// (updates made inside GC or a writeback settle at the next host-path
// mapping update) has run before the test asserts the bound.
func settleCMT(e *sim.Engine, f *FTL) {
	f.Write(0, int64(f.unit), TagHostData, StreamData)
	f.Sync(StreamData, TagHostData)
	e.Run()
}

// TestMappingOracle is the differential test for the dftl tentpole: under
// all three GC policies and three seeds, the flash-resident mapping table
// runs with the mapping oracle armed — every CMT miss asserts the
// translation-page copy of the entry equals the live map, panicking at the
// faulting access on the first divergence — while the victim-oracle
// workload drives skewed overwrites, trims, remaps, syncs and background
// GC. The FTL must keep every dftl invariant (CMT/LRU/directory coherence,
// full-sweep stored-vs-live agreement), survive a lossless SPOR rebuild of
// the translation directory, and keep doing all of the above after a
// Snapshot/Restore round trip carries the whole dftl state into a fresh
// instance.
func TestMappingOracle(t *testing.T) {
	for _, pol := range []GCPolicy{GCGreedy, GCCostBenefit, GCFIFO} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", pol, seed), func(t *testing.T) {
				cfg := dftlCfg()
				cfg.GCPolicy = pol
				e, arr, f := newDFTL(t, cfg)
				f.EnableMapOracle()

				rng := benchRNG(0xa0761d6478bd642f ^ uint64(seed)*0xe7037ed1a0b428db)
				oracleWorkload(t, e, f, &rng, 2048)
				if f.stats.TransFlushes == 0 || f.stats.CMTMisses == 0 {
					t.Fatalf("workload exercised no translation traffic (flushes=%d misses=%d)",
						f.stats.TransFlushes, f.stats.CMTMisses)
				}
				settleCMT(e, f)
				if f.fm.cachedCount > f.fm.cap {
					t.Fatalf("CMT over bound at top level: %d > %d", f.fm.cachedCount, f.fm.cap)
				}
				if err := f.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if rep := f.VerifySPOR(); rep.Mismatches != 0 {
					t.Fatalf("SPOR lost durable state: %s", rep)
				}

				// Round trip: the restored instance must hold the identical
				// CMT, directory and flash-resident copies, and keep the
				// oracle quiet for the rest of the workload.
				st, err := f.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				f2, err := New(e, arr, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := f2.Restore(st); err != nil {
					t.Fatal(err)
				}
				f2.EnableMapOracle()
				if err := f2.CheckInvariants(); err != nil {
					t.Fatalf("restored FTL: %v", err)
				}
				oracleWorkload(t, e, f2, &rng, 1024)
				settleCMT(e, f2)
				if f2.fm.cachedCount > f2.fm.cap {
					t.Fatalf("restored CMT over bound: %d > %d", f2.fm.cachedCount, f2.fm.cap)
				}
				if err := f2.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if rep := f2.VerifySPOR(); rep.Mismatches != 0 {
					t.Fatalf("restored SPOR lost durable state: %s", rep)
				}
			})
		}
	}
}

// TestTransGCCrashConsistency covers the trans-gc injection site at the FTL
// layer. The full-stack crash matrix cannot reach it: by the time the
// collector wants a translation block, uniform tvpn rotation has already
// killed every page on it, so it reclaims dead (the same reason the
// wear-level site lives in TestWearLevelCrashConsistency). Here we collect
// a block that still holds live translation pages directly and crash at the
// instant each page has been migrated: the directory, recovery records and
// coherence sweep must all hold, and the SPOR rebuild must reproduce the
// directory without loss.
func TestTransGCCrashConsistency(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := dftlCfg()
		inj := inject.New()
		cfg.Injector = inj
		e, _, f := newDFTL(t, cfg)

		// Spread writes across the whole space so flushes populate all
		// three translation virtual pages.
		unit := int64(f.unit)
		luns := f.logicalBytes / unit
		for i := 0; i < 1200; i++ {
			lun := (int64(seed)*31 + int64(i)*7) % luns
			f.Write(lun*unit, unit, TagHostData, StreamData)
			if i%64 == 63 {
				f.Sync(StreamData, TagHostData)
				e.Run()
			}
		}
		f.Sync(StreamData, TagHostData)
		e.Run()

		// Page-fill and clean-first eviction make organic eviction flushes
		// rare at this scale, so the live translation pages tend to sit on
		// the open translation frontier. Close a block over a live page
		// deliberately: rotating forced flushes append translation pages
		// (each supersedes only its own tvpn's previous copy) until some
		// closed block still owns a live page.
		closedLive := func() int {
			for pid, tvpn := range f.fm.tpOwner {
				if tvpn >= 0 && f.state[f.pidBlock(int64(pid))] == blockClosed {
					return f.pidBlock(int64(pid))
				}
			}
			return -1
		}
		epp := int64(f.fm.entriesPerTP)
		for i := 0; closedLive() < 0 && i < 200; i++ {
			tvpn := i % f.fm.numTPs
			f.Write(int64(tvpn)*epp*unit, unit, TagHostData, StreamData)
			f.fm.flushing = true
			f.flushTP(tvpn, inject.SiteTransFlush)
			f.fm.flushing = false
			f.Sync(StreamData, TagHostData)
			e.Run()
		}
		victim := closedLive()
		if victim < 0 {
			t.Fatalf("seed=%d: no closed block holds a live translation page", seed)
		}

		crashed := 0
		inj.Arm(inject.SiteTransGC, 0, nil, func(site inject.Site, hit int) {
			crashed++
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("seed=%d site=%s hit=%d: %v", seed, site, hit, err)
			}
			if rep := f.VerifySPOR(); rep.Mismatches != 0 {
				t.Fatalf("seed=%d site=%s hit=%d: SPOR lost durable state: %s", seed, site, hit, rep)
			}
		})
		before := f.stats.TransMigrated
		f.gcDepth++
		f.collectBlock(victim)
		f.gcDepth--
		e.Run()

		if crashed == 0 {
			t.Fatalf("seed=%d: trans-gc site never fired", seed)
		}
		if f.stats.TransMigrated == before {
			t.Fatalf("seed=%d: collector migrated no translation pages", seed)
		}
		for p := 0; p < f.pagesPerBlk; p++ {
			if tv := f.fm.tpOwner[int64(victim)*int64(f.pagesPerBlk)+int64(p)]; tv >= 0 {
				t.Fatalf("seed=%d: collected block %d still owns tvpn %d", seed, victim, tv)
			}
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if rep := f.VerifySPOR(); rep.Mismatches != 0 {
			t.Fatalf("seed=%d: post-GC SPOR lost durable state: %s", seed, rep)
		}
	}
}

// FuzzCMTEviction lets the fuzzer pick the CMT bound, the writeback batch
// size, the remap-aware knobs (page-fill, clean-window depth, checkpoint-cut
// batching) and the workload shape, then replays the oracle workload with
// the mapping oracle armed: any divergence between the flash-resident table
// and the live map panics at the faulting access, any structural break fails
// CheckInvariants, and the SPOR rebuild must stay lossless. Sub-floor CMT
// bounds exercise the clamp; batch size 1 forces a writeback per dirtied
// translation page; the knob axes cover the legacy configuration (fill off,
// window 1, batch off) through deep clean-window search.
func FuzzCMTEviction(f *testing.F) {
	f.Add(uint64(1), uint16(1), uint16(96), uint16(1024), false, uint8(0), false)
	f.Add(uint64(2), uint16(700), uint16(8), uint16(512), true, uint8(1), true)
	f.Add(uint64(3), uint16(520), uint16(200), uint16(1500), false, uint8(4), true)
	f.Add(uint64(0x9e3779b9), uint16(513), uint16(1), uint16(768), true, uint8(64), false)
	// Fuzzer-found: fill-mode CMT overshoot surviving a Sync-triggered GC
	// with no later top-level mapping update (fixed by fmAfterGC).
	f.Add(uint64(262), uint16(196), uint16(429), uint16(1400), false, uint8(41), false)
	// Fuzzer-found: SPOR replay picked a stale GC copy over a racing host
	// write — the migration minted a fresh OOB sequence for data appended
	// but not yet bound (fixed by recoveryLog.preserveCopy).
	f.Add(uint64(299), uint16(123), uint16(355), uint16(1410), true, uint8(34), false)
	f.Fuzz(func(t *testing.T, seed uint64, capEntries, flushAt, rounds uint16, noFill bool, window uint8, noBatch bool) {
		cfg := dftlCfg()
		cfg.CMTEntries = int(capEntries) // clamps up to the 512-entry floor
		cfg.MetaFlushEntries = int(flushAt)%512 + 1
		cfg.CMTNoFill = noFill
		cfg.CMTCleanWindow = int(window) // 0 = default, 1 = strict LRU
		cfg.CMTNoBatch = noBatch
		e, _, ftl := newDFTL(t, cfg)
		ftl.EnableMapOracle()

		rng := benchRNG(seed | 1)
		oracleWorkload(t, e, ftl, &rng, int(rounds)%1536+64)
		settleCMT(e, ftl)
		if ftl.fm.cachedCount > ftl.fm.cap {
			t.Fatalf("CMT over bound: %d > %d", ftl.fm.cachedCount, ftl.fm.cap)
		}
		if err := ftl.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if rep := ftl.VerifySPOR(); rep.Mismatches != 0 {
			t.Fatalf("SPOR lost durable state: %s", rep)
		}
	})
}
