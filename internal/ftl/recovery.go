package ftl

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/sim"
)

// Device-level recovery (the paper's Section III-G): every programmed slot
// carries an out-of-band (OOB) record — the logical address it belongs to
// and a monotonic sequence number. Checkpoint remaps append alias records
// (the data-area address now also referencing the slot), and journal
// deletions append trim extents; both persist through the metadata-flush
// path backed by the device's power-loss capacitors. After a sudden power
// off, the FTL reconstructs the whole mapping table by scanning OOB areas
// in physical order and replaying alias/trim records in sequence order.

// oobRecord is what a slot's OOB area holds for recovery.
type oobRecord struct {
	lun int64
	seq uint64
}

// trimExtent is a persisted journal-deletion record.
type trimExtent struct {
	first, last int64 // logical unit range, inclusive
	seq         uint64
}

// recoveryLog is the FTL's persistent recovery state: primary OOB per slot,
// alias records from remaps, and trim extents. In dftl mode each translation
// page's OOB additionally records the tvpn it holds (tp, indexed by physical
// page id; allocated only when the flash map is on), which is what rebuilds
// the global translation directory after a sudden power-off.
type recoveryLog struct {
	seq     uint64
	oob     []oobRecord           // indexed by slot id; seq 0 = never written
	aliases map[int64][]oobRecord // slot id → alias bindings from remaps
	trims   []trimExtent
	tp      []int64 // pid → tvpn of the live translation page it holds (-1)
}

func newRecoveryLog(totalSlots int64) *recoveryLog {
	return &recoveryLog{
		oob:     make([]oobRecord, totalSlots),
		aliases: make(map[int64][]oobRecord),
	}
}

func (r *recoveryLog) next() uint64 {
	r.seq++
	return r.seq
}

func (r *recoveryLog) noteWrite(sid, lun int64) {
	r.oob[sid] = oobRecord{lun: lun, seq: r.next()}
	delete(r.aliases, sid)
}

func (r *recoveryLog) noteAlias(sid, lun int64) {
	r.aliases[sid] = append(r.aliases[sid], oobRecord{lun: lun, seq: r.next()})
}

func (r *recoveryLog) noteTrim(first, last int64) {
	r.trims = append(r.trims, trimExtent{first: first, last: last, seq: r.next()})
}

func (r *recoveryLog) noteErase(base, slots int64) {
	for s := base; s < base+slots; s++ {
		r.oob[s] = oobRecord{}
		delete(r.aliases, s)
	}
}

// preserveCopy rewrites newSid's records to carry the sequence numbers of
// the oldSid records it was copied from, then drops oldSid's records (its
// block erases at the end of the collection pass). GC moves data without
// changing its logical write time — the copied page's OOB carries the
// source's timestamp, not the migration's. Minting fresh sequence numbers
// instead loses a host write that races the collection: Write appends the
// new slot (recording its OOB) and only then binds it, and a page program
// inside that append can trigger GC that migrates the lun's old slot — a
// fresh-seq copy of stale data would outrank the already-recorded new
// write on SPOR replay.
func (r *recoveryLog) preserveCopy(oldSid, newSid int64) {
	seqOf := func(lun int64) uint64 {
		var best uint64
		if rec := r.oob[oldSid]; rec.seq != 0 && rec.lun == lun {
			best = rec.seq
		}
		for _, a := range r.aliases[oldSid] {
			if a.lun == lun && a.seq > best {
				best = a.seq
			}
		}
		return best
	}
	if rec := r.oob[newSid]; rec.seq != 0 {
		if s := seqOf(rec.lun); s != 0 {
			r.oob[newSid] = oobRecord{lun: rec.lun, seq: s}
		}
	}
	for i, a := range r.aliases[newSid] {
		if s := seqOf(a.lun); s != 0 {
			r.aliases[newSid][i].seq = s
		}
	}
	r.clearSlot(oldSid)
}

// clearSlot drops one slot's records without assigning a new sequence
// number — used when a program failure relocates a buffered page and the
// ruined page's OOB must not be scanned as live (a retired block is listed
// in the bad-block table, which SPOR excludes).
func (r *recoveryLog) clearSlot(sid int64) {
	r.oob[sid] = oobRecord{}
	delete(r.aliases, sid)
}

// noteTransWrite records that physical page pid now holds the live
// translation page for tvpn (dftl mode only; tp is nil in dram mode).
func (r *recoveryLog) noteTransWrite(pid int64, tvpn int) {
	r.tp[pid] = int64(tvpn)
}

// clearTransPage drops a translation page's OOB record when it is
// invalidated (superseded by a rewrite, migrated by GC, or erased).
func (r *recoveryLog) clearTransPage(pid int64) {
	r.tp[pid] = -1
}

// SPORReport describes a simulated sudden-power-off recovery.
type SPORReport struct {
	ScannedPages  int
	BoundUnits    int64
	AliasBindings int64
	TrimsReplayed int
	Mismatches    int64
	// VolatileLost counts live mappings that pointed at slots still staged
	// in the volatile write buffer (not yet programmed) at the crash
	// instant. Those are legitimately lost on power failure — the host-side
	// journal replay re-creates them — so they are reported separately from
	// Mismatches, which flags only durable state the OOB scheme failed to
	// reconstruct.
	VolatileLost int64
	// TransPages counts live translation pages whose OOB records rebuilt the
	// global translation directory (dftl mode only; zero in dram mode).
	TransPages int64
	Duration   sim.VTime
}

// SimulateSPOR models a sudden power-off at the current instant followed by
// the device's own recovery: the mapping table is rebuilt purely from OOB
// scans and the persisted alias/trim records, then compared against the
// live table. A non-zero Mismatches count means the recovery protocol lost
// information — the invariant the paper's OOB scheme guarantees. The live
// FTL state is not modified.
//
// The scan cost is modeled as one fast OOB read per programmed page
// (oobReadTime each), serialized per die through the usual channels.
func (f *FTL) SimulateSPOR() *SPORReport {
	rep := f.VerifySPOR()

	// Cost model: OOB reads serialized on each die's channel path.
	const oobReadTime = 25 * sim.Microsecond
	start := f.eng.Now()
	var latest sim.VTime
	for b := 0; b < f.totalBlocks; b++ {
		programmed := f.array.ProgrammedPages(b)
		if programmed == 0 {
			continue
		}
		if end := f.array.ReserveDie(b, sim.VTime(programmed)*oobReadTime); end > latest {
			latest = end
		}
	}
	if latest > start {
		rep.Duration = latest - start
	}
	return rep
}

// VerifySPOR is the pure core of SimulateSPOR: it rebuilds the mapping
// table from OOB records and compares it against the live table, without
// charging any simulated time. Unlike SimulateSPOR it is safe to call from
// inside an engine event (the crash-injection harness does), because it
// never touches die reservations or other shared simulation state.
func (f *FTL) VerifySPOR() *SPORReport {
	rep := &SPORReport{}

	// 1. Rebuild candidate bindings: latest OOB record per logical unit.
	type binding struct {
		sid int64
		seq uint64
	}
	rebuilt := make(map[int64]binding)
	bind := func(lun, sid int64, seq uint64) {
		if b, ok := rebuilt[lun]; !ok || seq > b.seq {
			rebuilt[lun] = binding{sid: sid, seq: seq}
		}
	}
	slotsPerBlock := int64(f.pagesPerBlk) * int64(f.slotsPerPage)
	for b := 0; b < f.totalBlocks; b++ {
		programmed := f.array.ProgrammedPages(b)
		if programmed == 0 {
			continue
		}
		rep.ScannedPages += programmed
		base := f.slotID(b, 0, 0)
		for s := int64(0); s < slotsPerBlock; s++ {
			sid := base + s
			if f.slotPage(sid) >= programmed {
				break
			}
			if rec := f.rlog.oob[sid]; rec.seq != 0 {
				bind(rec.lun, sid, rec.seq)
			}
			for _, rec := range f.rlog.aliases[sid] {
				bind(rec.lun, sid, rec.seq)
				rep.AliasBindings++
			}
		}
	}

	// 2. Replay trim extents: a trim invalidates any binding older than it.
	for _, tr := range f.rlog.trims {
		rep.TrimsReplayed++
		for lun := tr.first; lun <= tr.last; lun++ {
			if b, ok := rebuilt[lun]; ok && b.seq < tr.seq {
				delete(rebuilt, lun)
			}
		}
	}

	// 3. Compare against the live table. A live mapping whose slot is still
	// staged in the volatile write buffer is expected to vanish on power
	// loss; count it as VolatileLost rather than a protocol failure.
	for lun, sid := range f.l2p {
		want := sid
		got := int64(-1)
		if b, ok := rebuilt[int64(lun)]; ok {
			got = b.sid
		}
		if want != got {
			if want >= 0 && f.isBuffered(want) {
				rep.VolatileLost++
			} else {
				rep.Mismatches++
			}
		}
	}
	for lun := range rebuilt {
		if f.l2p[lun] < 0 {
			rep.Mismatches++
		}
	}
	rep.BoundUnits = int64(len(rebuilt))

	// 4. dftl mode: rebuild the global translation directory from the
	// translation-page OOB records and compare it against the live GTD. Each
	// live translation page's OOB names the tvpn it holds; a crash must never
	// leave the scan unable to reproduce the directory exactly (translation
	// pages are written through the capacitor-backed metadata path, and the
	// invalidate-then-append discipline means at most one page claims a tvpn).
	if f.fm.enabled {
		gtd := make([]int64, f.fm.numTPs)
		for i := range gtd {
			gtd[i] = -1
		}
		for pid, tv := range f.rlog.tp {
			if tv < 0 {
				continue
			}
			rep.TransPages++
			if f.pidPage(int64(pid)) >= f.array.ProgrammedPages(f.pidBlock(int64(pid))) {
				rep.Mismatches++ // OOB claims a page that was never programmed
				continue
			}
			if gtd[tv] >= 0 {
				rep.Mismatches++ // two live pages claim the same tvpn
				continue
			}
			gtd[tv] = int64(pid)
		}
		for tv, pid := range gtd {
			if pid != f.fm.gtd[tv] {
				rep.Mismatches++
			}
		}
	}
	return rep
}

// String renders the report. The translation-page clause appears only in
// dftl mode so dram-mode output stays byte-identical.
func (r *SPORReport) String() string {
	s := fmt.Sprintf("SPOR: scanned %d pages, rebuilt %d units (%d aliases, %d trims) in %v, %d mismatches, %d volatile-lost",
		r.ScannedPages, r.BoundUnits, r.AliasBindings, r.TrimsReplayed, r.Duration, r.Mismatches, r.VolatileLost)
	if r.TransPages > 0 {
		s += fmt.Sprintf(", %d trans-pages", r.TransPages)
	}
	return s
}