package ftl

import (
	"testing"
	"testing/quick"

	"github.com/checkin-kv/checkin/internal/sim"
)

func TestSPOREmptyDevice(t *testing.T) {
	_, f := newSmall(t, smallCfg())
	rep := f.SimulateSPOR()
	if rep.Mismatches != 0 || rep.BoundUnits != 0 || rep.ScannedPages != 0 {
		t.Errorf("empty-device SPOR = %+v", rep)
	}
}

func TestSPORAfterWrites(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	f.Write(0, 8192, TagHostData, StreamData)
	f.Sync(StreamData, TagHostData)
	e.Run()
	rep := f.SimulateSPOR()
	if rep.Mismatches != 0 {
		t.Fatalf("SPOR mismatches after plain writes: %s", rep)
	}
	if rep.BoundUnits != 16 {
		t.Errorf("BoundUnits = %d, want 16", rep.BoundUnits)
	}
	if rep.ScannedPages == 0 || rep.Duration == 0 {
		t.Error("SPOR scan cost not modeled")
	}
}

func TestSPORAfterOverwrites(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	for i := 0; i < 5; i++ {
		f.Write(0, 4096, TagHostData, StreamData)
		f.Sync(StreamData, TagHostData)
		e.Run()
	}
	rep := f.SimulateSPOR()
	if rep.Mismatches != 0 {
		t.Fatalf("SPOR diverged after overwrites: %s", rep)
	}
}

func TestSPORAfterRemapAndTrim(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	const dataOff = 65536
	f.Write(0, 4096, TagHostJournal, StreamJournal)
	f.Sync(StreamJournal, TagHostJournal)
	e.Run()
	f.Remap(0, dataOff, 4096)
	e.Run()
	// Mid-checkpoint crash: shared mappings must rebuild.
	rep := f.SimulateSPOR()
	if rep.Mismatches != 0 {
		t.Fatalf("SPOR diverged mid-checkpoint: %s", rep)
	}
	if rep.AliasBindings == 0 {
		t.Error("remap produced no alias bindings in the recovery log")
	}
	// After the journal trim the aliases must survive and the journal
	// bindings must not resurrect.
	f.Trim(0, 4096)
	rep = f.SimulateSPOR()
	if rep.Mismatches != 0 {
		t.Fatalf("SPOR diverged after trim: %s", rep)
	}
	if rep.TrimsReplayed == 0 {
		t.Error("trim extent not replayed")
	}
}

func TestSPORAfterGC(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	for i := 0; i < 100; i++ {
		f.Write(0, 8192, TagHostData, StreamData)
		e.Run()
	}
	f.Sync(StreamData, TagHostData)
	e.Run()
	if f.Stats().GCInvocations+f.Stats().DeadReclaims == 0 {
		t.Fatal("test needs GC activity")
	}
	rep := f.SimulateSPOR()
	if rep.Mismatches != 0 {
		t.Fatalf("SPOR diverged across GC migrations: %s", rep)
	}
}

func TestSPORRandomTraffic(t *testing.T) {
	// Property: after arbitrary write/trim/remap interleavings the OOB
	// rebuild reproduces the mapping table exactly.
	err := quick.Check(func(ops []uint16) bool {
		e, f := newSmall(t, smallCfg())
		units := f.LogicalBytes() / 512
		for _, op := range ops {
			lun := int64(op) % (units - 8)
			switch op % 4 {
			case 0, 1:
				f.Write(lun*512, 512*int64(1+op%3), TagHostData, StreamData)
			case 2:
				f.Trim(lun*512, 512)
			case 3:
				dst := (lun + 4) % (units - 4)
				f.Remap(lun*512, dst*512, 512)
			}
			e.Run()
		}
		f.Sync(StreamData, TagHostData)
		e.Run()
		return f.SimulateSPOR().Mismatches == 0
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestSPORReportString(t *testing.T) {
	rep := &SPORReport{ScannedPages: 3, BoundUnits: 5, Duration: sim.Millisecond}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}
