package ftl

import (
	"testing"

	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
)

// persistTPs force-flushes every translation page so the whole mapping has a
// flash-resident copy (gtd populated) and every CMT entry is clean.
func persistTPs(t testing.TB, e interface{ Run() }, f *FTL) {
	t.Helper()
	f.fm.flushing = true
	for tvpn := 0; tvpn < f.fm.numTPs; tvpn++ {
		f.flushTP(tvpn, inject.SiteTransFlush)
	}
	f.fm.flushing = false
	f.Sync(StreamData, TagHostData)
	e.Run()
}

// uncacheClean drops every clean entry from the CMT, forcing the next access
// to re-miss through the translation-page fetch path.
func uncacheClean(f *FTL) {
	for lun := int64(0); lun < f.totalUnits; lun++ {
		if f.fm.isCached(lun) && !f.fm.isDirty(lun) {
			f.fm.remove(lun)
		}
	}
}

// TestTransFetchChargeDedup is the double-charge regression test for the
// translation-fetch dedup in fmAccessRange.
//
// The legacy dedup tracks only the previous tvpn of one range walk, so a
// two-range command (Remap resolves its source range, then its destination
// range) charges the same translation page twice when both ranges land on
// it. With page-fill on, the per-command epoch seen-set charges it once — a
// real controller holds the fetched page in its transfer buffer for the
// whole command — even when cap enforcement evicts the filled entries
// between the ranges. With page-fill off the legacy single-walk dedup is
// kept bit-for-bit (byte-identity with the pre-optimization build).
func TestTransFetchChargeDedup(t *testing.T) {
	build := func(t *testing.T, noFill bool) (*FTL, func()) {
		cfg := dftlCfg()
		cfg.CMTNoFill = noFill
		cfg.MetaFlushEntries = 1 << 30 // no threshold flushes during the probe
		e, _, f := newDFTL(t, cfg)
		unit := int64(f.unit)
		// Map a handful of luns on translation page 0 and persist it.
		for lun := int64(0); lun < 8; lun++ {
			f.Write(lun*unit, unit, TagHostData, StreamData)
		}
		f.Sync(StreamData, TagHostData)
		e.Run()
		persistTPs(t, e, f)
		uncacheClean(f)
		return f, func() { e.Run() }
	}

	t.Run("remap-same-tp-fill-on", func(t *testing.T) {
		f, run := build(t, false)
		unit := int64(f.unit)
		before := f.stats.TransReadsHost
		f.Remap(0, 4*unit, unit) // src lun 0, dst lun 4: both on tvpn 0
		run()
		if got := f.stats.TransReadsHost - before; got != 1 {
			t.Fatalf("fill-on same-page remap charged %d translation fetches, want 1", got)
		}
	})

	t.Run("remap-same-tp-legacy", func(t *testing.T) {
		f, run := build(t, true)
		unit := int64(f.unit)
		before := f.stats.TransReadsHost
		f.Remap(0, 4*unit, unit)
		run()
		// Documented legacy behavior, preserved for byte-identity: each
		// range walk resets the dedup, so the shared page charges twice.
		if got := f.stats.TransReadsHost - before; got != 2 {
			t.Fatalf("fill-off same-page remap charged %d translation fetches, want 2 (legacy parity)", got)
		}
	})

	t.Run("mid-command-evict-fill-on", func(t *testing.T) {
		f, run := build(t, false)
		before := f.stats.TransReadsHost
		// One command whose second range revisits a page evicted after the
		// first range fetched it — the epoch stamp must suppress the
		// second charge.
		f.fmEnterCmd()
		f.fmAccessRange(0, 0, false, nil)
		uncacheClean(f) // simulate cap enforcement between the ranges
		f.fmAccessRange(1, 1, false, nil)
		f.fmExitCmd()
		run()
		if got := f.stats.TransReadsHost - before; got != 1 {
			t.Fatalf("mid-command re-fetch charged %d, want 1 (epoch seen-set)", got)
		}
		// A fresh command starts a fresh epoch: the page charges again.
		uncacheClean(f)
		f.fmEnterCmd()
		f.fmAccessRange(2, 2, false, nil)
		f.fmExitCmd()
		run()
		if got := f.stats.TransReadsHost - before; got != 2 {
			t.Fatalf("next command charged %d total, want 2 (new epoch)", got)
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCleanFirstEvictionReducesFlushes pins the CFLRU claim: with a clean
// search window, capacity evictions stop amplifying into translation-page
// writebacks. The same mixed read/write workload runs with a strict-LRU
// window (1) and the default window; the windowed run must evict clean
// entries (no flush) strictly more often and flush strictly less.
func TestCleanFirstEvictionReducesFlushes(t *testing.T) {
	run := func(window int) (flushes, evictions uint64) {
		cfg := dftlCfg()
		cfg.CMTCleanWindow = window
		cfg.MetaFlushEntries = 1 << 30 // isolate eviction-driven flushes
		e, _, f := newDFTL(t, cfg)
		unit := int64(f.unit)
		luns := f.logicalBytes / unit
		rng := benchRNG(7)
		for i := 0; i < 4096; i++ {
			r := rng.next()
			lun := int64(r>>8) % luns
			if r%4 == 0 {
				f.Write(lun*unit, unit, TagHostData, StreamData)
			} else {
				f.Read(lun*unit, unit)
			}
			if i%64 == 63 {
				f.Sync(StreamData, TagHostData)
				e.Run()
			}
		}
		f.Sync(StreamData, TagHostData)
		e.Run()
		if err := f.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return f.stats.TransFlushes, f.stats.CMTEvictions
	}
	strictFlushes, strictEvict := run(1)
	cflruFlushes, cflruEvict := run(0) // default window
	if cflruFlushes >= strictFlushes {
		t.Fatalf("clean-first eviction did not reduce flushes: window=default %d, strict LRU %d",
			cflruFlushes, strictFlushes)
	}
	if cflruEvict <= strictEvict {
		t.Fatalf("clean-first eviction did not shift work to clean victims: evictions window=default %d, strict LRU %d",
			cflruEvict, strictEvict)
	}
}

// TestRemapBatchCoalesces pins the checkpoint-cut batching claim: a remap
// burst inside a Begin/EndCheckpointCut window must write back strictly
// fewer translation pages than the same burst with interleaved threshold
// writebacks, and the cut-end settle must leave no dirty entries.
func TestRemapBatchCoalesces(t *testing.T) {
	run := func(noBatch bool) (flushes uint64, dirtyAfter int) {
		cfg := dftlCfg() // MetaFlushEntries 96: the burst crosses it many times
		cfg.CMTNoBatch = noBatch
		e, _, f := newDFTL(t, cfg)
		unit := int64(f.unit)
		luns := f.logicalBytes / unit
		for lun := int64(0); lun < luns; lun++ {
			f.Write(lun*unit, unit, TagHostData, StreamData)
			if lun%64 == 63 {
				f.Sync(StreamData, TagHostData)
				e.Run()
			}
		}
		f.Sync(StreamData, TagHostData)
		e.Run()
		before := f.stats.TransFlushes
		f.BeginCheckpointCut()
		for lun := int64(0); lun < luns/2; lun++ {
			f.Remap(lun*unit, (luns/2+lun)*unit, unit)
		}
		f.EndCheckpointCut()
		f.Sync(StreamData, TagHostData)
		e.Run()
		if err := f.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return f.stats.TransFlushes - before, f.fm.dirtyCount
	}
	batched, dirtyAfter := run(false)
	interleaved, _ := run(true)
	if batched >= interleaved {
		t.Fatalf("remap batch did not coalesce writebacks: batched %d, interleaved %d", batched, interleaved)
	}
	if dirtyAfter != 0 {
		t.Fatalf("EndCheckpointCut left %d dirty entries; the cut settle must be complete", dirtyAfter)
	}
}

// TestDFTLSteadyStateAllocs pins the new mapping-machinery paths to zero
// steady-state allocations: a page-fill miss burst (translation fetch charge
// + bulk clean insert of every covered entry) followed by clean-first
// capacity eviction of a whole page's worth of entries allocates nothing —
// the epoch tables, the LRU arrays and the bucketed dirty index all run on
// preallocated storage. (Dirty flush paths pay the program future and are
// measured separately, as in TestFTLSteadyStateAllocs.)
func TestDFTLSteadyStateAllocs(t *testing.T) {
	cfg := dftlCfg()
	cfg.MetaFlushEntries = 1 << 30
	e, _, f := newDFTL(t, cfg)
	unit := int64(f.unit)
	luns := f.logicalBytes / unit
	for lun := int64(0); lun < luns; lun++ {
		f.Write(lun*unit, unit, TagHostData, StreamData)
		if lun%64 == 63 {
			f.Sync(StreamData, TagHostData)
			e.Run()
		}
	}
	f.Sync(StreamData, TagHostData)
	e.Run()
	persistTPs(t, e, f)
	uncacheClean(f)

	epp := int64(f.fm.entriesPerTP)
	missFillEvict := func() {
		// Three demand misses, one per translation page: each fetch fills
		// the page's span; the third pushes the CMT over its bound and
		// clean-first eviction trims it back with pure removals.
		f.fmEnterCmd()
		f.fmAccessRange(0, 0, false, nil)
		f.fmAccessRange(epp, epp, false, nil)
		f.fmAccessRange(2*epp, 2*epp, false, nil)
		f.fmExitCmd()
		e.Run()
		uncacheClean(f)
	}
	missFillEvict() // warm the event heap and scratch capacities
	if n := testing.AllocsPerRun(100, missFillEvict); n != 0 {
		t.Fatalf("page-fill + clean-first eviction path allocates %.2f/op, want 0", n)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkDFTLHostPath drives the dftl host lookup path with a skewed
// hit/miss/evict/flush mix: hot hits stay CMT-resident, cold reads miss and
// page-fill, writes dirty entries toward the writeback threshold, and the
// bounded CMT forces steady capacity eviction. ns/op and allocs/op here are
// the evidence that the incremental dirty index removed the per-flush
// O(numTPs) scan from the hot path.
func BenchmarkDFTLHostPath(b *testing.B) {
	b.Run("opt", func(b *testing.B) { benchDFTLHostPath(b, dftlCfg()) })
	b.Run("legacy", func(b *testing.B) {
		cfg := dftlCfg()
		cfg.CMTNoFill = true
		cfg.CMTCleanWindow = 1
		cfg.CMTNoBatch = true
		benchDFTLHostPath(b, cfg)
	})
}

func benchDFTLHostPath(b *testing.B, cfg Config) {
	e, _, f := newDFTL(b, cfg)
	unit := int64(f.unit)
	luns := f.logicalBytes / unit
	hot := luns/8 + 1
	// Map the whole space and persist every translation page so cold
	// misses charge real fetches, then trim the upper three quarters: the
	// flash pool keeps enough slack that steady-state GC stays cheap at
	// any knob setting (this is a host-path cost bench, not a GC stress),
	// while the trimmed luns still carry flash-resident (unmapped) entries
	// the cold read path misses through.
	for lun := int64(0); lun < luns; lun++ {
		f.Write(lun*unit, unit, TagHostData, StreamData)
		if lun%64 == 63 {
			f.Sync(StreamData, TagHostData)
			e.Run()
		}
	}
	f.Sync(StreamData, TagHostData)
	e.Run()
	f.Trim(luns/4*unit, (luns-luns/4)*unit)
	f.Sync(StreamData, TagHostData)
	e.Run()
	persistTPs(b, e, f)

	rng := benchRNG(0x9e3779b97f4a7c15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rng.next()
		var lun int64
		if r%4 != 0 {
			lun = int64(r>>8) % hot // hot set: mostly CMT hits
		} else {
			lun = int64(r>>8) % luns // cold tail: misses, fills, evictions
		}
		if r%8 < 2 {
			f.Write(lun%(luns/4)*unit, unit, TagHostData, StreamData)
		} else {
			f.Read(lun*unit, unit)
		}
		if i%64 == 63 {
			f.Sync(StreamData, TagHostData)
			e.Run()
			if f.HasCheapVictim() {
				f.BackgroundGC(1)
			}
		}
		if i%256 == 255 {
			f.BackgroundGCForce(1)
		}
	}
	b.StopTimer()
	f.Sync(StreamData, TagHostData)
	e.Run()
	if err := f.CheckInvariants(); err != nil {
		b.Fatal(err)
	}
}

// dftlWideGeo spans ~700 translation pages (128 MB raw, 512 B units, 256
// entries per 2 KB page): wide enough that a per-flush O(numTPs) victim
// scan is measurably super-constant.
func dftlWideGeo() nand.Geometry {
	return nand.Geometry{
		Channels: 1, PackagesPerChannel: 1, DiesPerPackage: 1, PlanesPerDie: 1,
		BlocksPerPlane: 4096, PagesPerBlock: 16, PageSize: 2048,
	}
}

// BenchmarkDFTLTransFlush isolates the translation writeback pick: every
// iteration dirties one mapping entry in a rotating translation page and
// immediately writes back the hottest page. The CMT holds the whole map (no
// miss/eviction noise), so ns/op is the flush machinery itself — before the
// incremental dirty index, the victim pick alone walked all ~700 translation
// pages per flush.
func BenchmarkDFTLTransFlush(b *testing.B) {
	cfg := dftlCfg()
	cfg.CMTEntries = 1 << 20
	cfg.MetaFlushEntries = 1 << 30 // writebacks issued manually below
	e := sim.NewEngine()
	arr, err := nand.New(e, dftlWideGeo(), fastTim())
	if err != nil {
		b.Fatal(err)
	}
	f, err := New(e, arr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	unit := int64(f.unit)
	luns := f.logicalBytes / unit
	epp := int64(f.fm.entriesPerTP)
	numTPs := int64(f.fm.numTPs)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lun := (int64(i)%numTPs)*epp + (int64(i)/numTPs)%epp
		if lun >= luns {
			lun = int64(i) % luns
		}
		f.Write(lun*unit, unit, TagHostData, StreamData)
		f.fm.flushing = true
		f.flushTP(f.fmHottestTP(), inject.SiteTransFlush)
		f.fm.flushing = false
		if i%64 == 63 {
			f.Sync(StreamData, TagHostData)
			e.Run()
			if f.HasCheapVictim() {
				f.BackgroundGC(1)
			}
		}
		if i%1024 == 1023 {
			f.BackgroundGCForce(1)
		}
	}
	b.StopTimer()
	f.Sync(StreamData, TagHostData)
	e.Run()
	if err := f.CheckInvariants(); err != nil {
		b.Fatal(err)
	}
}
