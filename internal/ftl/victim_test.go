package ftl

import (
	"fmt"
	"testing"

	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
)

// crossCheckVictims compares the index-based selection against the retained
// linear-scan reference across the full spread of thresholds callers use
// (foreground 1<<30, background slots/4, plus edge values), and the O(1)
// cheap probe against its scan definition.
func crossCheckVictims(t *testing.T, f *FTL) {
	t.Helper()
	s := f.pagesPerBlk * f.slotsPerPage
	for _, mv := range []int{1, 2, s / 4, s / 2, s, 1 << 30} {
		if got, want := f.pick(mv), f.pickVictimScan(mv); got != want {
			t.Fatalf("maxValid=%d: index picked %d, scan picked %d", mv, got, want)
		}
	}
	if got, want := f.HasCheapVictim(), f.pickVictimScan(s/4) >= 0; got != want {
		t.Fatalf("HasCheapVictim=%v but scan says %v", got, want)
	}
}

// oracleWorkload drives a deterministic mix of skewed overwrites, trims and
// remaps with periodic syncs and background GC. The FTL runs with
// victimOracle set, so *every* victim selection along the way — foreground,
// background, forced — is verified against the scan reference in pickVictim.
func oracleWorkload(t *testing.T, e *sim.Engine, f *FTL, rng *benchRNG, rounds int) {
	t.Helper()
	unit := int64(f.unit)
	luns := f.logicalBytes / unit
	hot := luns/8 + 1
	for i := 0; i < rounds; i++ {
		r := rng.next()
		switch r % 8 {
		case 0: // trim a small extent (cheap victims for background GC)
			lun := int64(r>>8) % luns
			n := int64(r>>40)%4 + 1
			if lun+n > luns {
				n = luns - lun
			}
			f.Trim(lun*unit, n*unit)
		case 1: // remap across halves (shared slots, overflow churn)
			src := (int64(r>>8) % (luns / 2)) * unit
			dst := (luns/2 + int64(r>>40)%(luns/2)) * unit
			if (r>>16)&3 == 0 {
				// Every fourth remap runs inside a checkpoint-cut batch
				// window (a no-op in dram mode) so the deferred-settle
				// path sees the same churn the interleaved path does.
				f.BeginCheckpointCut()
				f.Remap(src, dst, unit)
				f.EndCheckpointCut()
			} else {
				f.Remap(src, dst, unit)
			}
		default: // 90/10-ish skewed overwrite
			var lun int64
			if r%3 != 0 {
				lun = int64(r>>8) % hot
			} else {
				lun = int64(r>>8) % luns
			}
			f.Write(lun*unit, unit, TagHostData, StreamData)
		}
		if i%64 == 63 {
			f.Sync(StreamData, TagHostData)
			f.Sync(StreamJournal, TagHostJournal)
			e.Run()
			if f.HasCheapVictim() {
				f.BackgroundGC(1)
			}
		}
		if i%256 == 255 {
			f.BackgroundGCForce(1)
			crossCheckVictims(t, f)
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	}
	f.Sync(StreamData, TagHostData)
	e.Run()
}

// TestVictimIndexOracle is the differential test for the tentpole: under
// all three GC policies and three workload seeds, the incrementally
// maintained victim index must return exactly the victim sequence the
// linear scan would have (enforced per-pick by victimOracle), keep every
// structural invariant, and — after a Snapshot/Restore round trip that
// rebuilds the index from block state — keep matching the scan while the
// workload continues on the restored instance.
func TestVictimIndexOracle(t *testing.T) {
	for _, pol := range []GCPolicy{GCGreedy, GCCostBenefit, GCFIFO} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", pol, seed), func(t *testing.T) {
				cfg := smallCfg()
				cfg.GCPolicy = pol
				e := sim.NewEngine()
				arr, err := nand.New(e, smallGeo(), fastTim())
				if err != nil {
					t.Fatal(err)
				}
				f, err := New(e, arr, cfg)
				if err != nil {
					t.Fatal(err)
				}
				f.victimOracle = true

				rng := benchRNG(0x9e3779b97f4a7c15 ^ uint64(seed)*0xbf58476d1ce4e5b9)
				oracleWorkload(t, e, f, &rng, 2048)
				if f.stats.GCInvocations+f.stats.DeadReclaims == 0 {
					t.Fatal("workload never collected a victim; oracle exercised nothing")
				}
				crossCheckVictims(t, f)

				// Round trip through Snapshot/Restore: the index is not part
				// of FTLState — Restore rebuilds it — so the restored FTL
				// (over the same array) must agree with the scan immediately
				// and for the rest of the workload.
				st, err := f.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				f2, err := New(e, arr, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := f2.Restore(st); err != nil {
					t.Fatal(err)
				}
				f2.victimOracle = true
				if err := f2.CheckInvariants(); err != nil {
					t.Fatalf("restored FTL: %v", err)
				}
				crossCheckVictims(t, f2)
				oracleWorkload(t, e, f2, &rng, 1024)
				crossCheckVictims(t, f2)
			})
		}
	}
}

// TestVictimIndexWearLevel covers the remaining collectBlock caller: static
// wear leveling detaches its (scan-chosen) victim from the index too.
func TestVictimIndexWearLevel(t *testing.T) {
	cfg := smallCfg()
	cfg.WearDeltaThreshold = 2
	e, f := newSmall(t, cfg)
	f.victimOracle = true
	f.Write(65536, 32768, TagHostData, StreamData)
	f.Sync(StreamData, TagHostData)
	e.Run()
	moves := uint64(0)
	for i := 0; i < 400; i++ {
		f.Write(0, 8192, TagHostData, StreamData)
		e.Run()
		if i%10 == 0 && f.MaybeWearLevel() {
			moves++
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			crossCheckVictims(t, f)
		}
	}
	if moves == 0 {
		t.Fatal("wear leveler never moved a block")
	}
}
