package ftl

import (
	"fmt"
	"strings"
)

// CheckInvariants verifies the FTL's internal consistency: the
// logical-to-physical map, the per-slot reference counts with their reverse
// mappings, per-block valid-slot accounting, and the free-block pool must
// all agree. The crash-consistency harness (internal/check) calls it at
// every injected crash point; it is pure (no simulated time, no mutation)
// and returns an error describing the first few violations, or nil.
//
// Invariants checked:
//
//  1. Every mapped logical unit references a live slot, and appears exactly
//     once in that slot's reverse mappings (LSN→slot is a function; the
//     reference sets are its exact inverse).
//  2. Every live slot's reference count equals 1 (primary reverse mapping)
//     plus its overflow entries, with no duplicate or dangling references.
//  3. A block's valid-slot count equals the number of live slots it holds,
//     and never exceeds what was written to the block.
//  4. The free-block pool is consistent: freeCount matches the per-die free
//     lists and the block state array, and free blocks hold no live slots.
//  5. The GC victim index mirrors block state exactly: every closed block
//     (bar one mid-collection victim) is linked in the bucket matching its
//     valid count, bucket counts/bitmap/cached-best/cheapCount all agree,
//     and each stream's partial-page marker matches its frontiers.
//  6. In dftl mode (Config.FlashMap) the cached mapping table, its LRU, the
//     global translation directory and the flash-resident entry copies are
//     mutually consistent — see fmCheckInvariants in dftl.go.
func (f *FTL) CheckInvariants() error {
	const maxViolations = 8
	var violations []string
	report := func(format string, args ...any) {
		if len(violations) < maxViolations {
			violations = append(violations, fmt.Sprintf(format, args...))
		}
	}

	// 1 & 2: walk the map and the reference sets in both directions.
	refs := make(map[int64]int64) // slot id → live references seen via l2p
	for lun, sid := range f.l2p {
		if sid < 0 {
			continue
		}
		if f.refcnt[sid] == 0 {
			report("lun %d maps to dead slot %d (refcnt 0)", lun, sid)
			continue
		}
		found := f.rev[sid] == int64(lun)
		for _, l := range f.revOverflow[sid] {
			if l == int64(lun) {
				if found {
					report("lun %d appears twice in slot %d's reverse mappings", lun, sid)
				}
				found = true
			}
		}
		if !found {
			report("lun %d maps to slot %d but is missing from its reverse mappings", lun, sid)
		}
		refs[sid]++
	}
	for sid, ov := range f.revOverflow {
		if f.refcnt[sid] < 2 {
			report("slot %d has %d overflow reverse mappings but refcnt %d", sid, len(ov), f.refcnt[sid])
		}
	}

	// 2 (slot side) & 3: per-block accounting.
	slotsPerBlock := f.pagesPerBlk * f.slotsPerPage
	for b := 0; b < f.totalBlocks; b++ {
		base := f.slotID(b, 0, 0)
		live := int32(0)
		for s := 0; s < slotsPerBlock; s++ {
			sid := base + int64(s)
			rc := int(f.refcnt[sid])
			if rc == 0 {
				if f.rev[sid] != -1 {
					report("dead slot %d keeps reverse mapping %d", sid, f.rev[sid])
				}
				continue
			}
			live++
			if want := 1 + len(f.revOverflow[sid]); rc != want {
				report("slot %d refcnt %d but %d reverse mappings", sid, rc, want)
			}
			if n := refs[sid]; int(n) != rc {
				report("slot %d refcnt %d but %d logical units map to it", sid, rc, n)
			}
			if primary := f.rev[sid]; primary < 0 || f.l2p[primary] != sid {
				report("slot %d primary reverse mapping %d does not map back", sid, f.rev[sid])
			}
		}
		// dftl mode: a live translation page contributes a whole page's worth
		// of valid slots to its block (that is how translation blocks compete
		// in the shared victim index).
		tpSlots := int32(0)
		if f.fm.enabled {
			basePid := int64(b) * int64(f.pagesPerBlk)
			for p := 0; p < f.pagesPerBlk; p++ {
				if f.fm.tpOwner[basePid+int64(p)] >= 0 {
					tpSlots += int32(f.slotsPerPage)
				}
			}
		}
		if f.validCount[b] != live+tpSlots {
			report("block %d validCount %d but %d live slots + %d translation slots", b, f.validCount[b], live, tpSlots)
		}
		if f.written[b] < live+tpSlots {
			report("block %d written %d < %d live slots + %d translation slots", b, f.written[b], live, tpSlots)
		}
		if f.state[b] == blockFree && (live > 0 || tpSlots > 0) {
			report("free block %d holds %d live slots, %d translation slots", b, live, tpSlots)
		}
	}

	// 4: free pool, spare pool and retired blocks.
	freeStates, spareStates, badStates := 0, 0, 0
	for b := 0; b < f.totalBlocks; b++ {
		switch f.state[b] {
		case blockFree:
			freeStates++
		case blockSpare:
			spareStates++
			if f.validCount[b] != 0 || f.written[b] != 0 {
				report("spare block %d has validCount %d written %d", b, f.validCount[b], f.written[b])
			}
		case blockBad:
			badStates++
			if f.validCount[b] != 0 {
				report("retired block %d still holds %d valid slots", b, f.validCount[b])
			}
		}
	}
	inLists := 0
	for _, l := range f.freeByDie {
		for _, b := range l {
			if f.state[b] != blockFree {
				report("free list holds block %d in state %d", b, f.state[b])
			}
		}
		inLists += len(l)
	}
	if f.freeCount != freeStates || f.freeCount != inLists {
		report("free accounting: freeCount %d, %d free states, %d listed", f.freeCount, freeStates, inLists)
	}
	inSpares := 0
	for _, l := range f.spareByDie {
		for _, b := range l {
			if f.state[b] != blockSpare {
				report("spare list holds block %d in state %d", b, f.state[b])
			}
		}
		inSpares += len(l)
	}
	if f.spareCount != spareStates || f.spareCount != inSpares {
		report("spare accounting: spareCount %d, %d spare states, %d listed", f.spareCount, spareStates, inSpares)
	}
	if f.badCount != badStates {
		report("retired accounting: badCount %d but %d blocks in state bad", f.badCount, badStates)
	}
	for _, b := range f.pendingRetire {
		if f.pendingMark[b]&pendRetire == 0 || f.state[b] == blockFree || f.state[b] == blockBad {
			report("pending retirement of block %d inconsistent (mark %d, state %d)", b, f.pendingMark[b], f.state[b])
		}
	}
	for _, b := range f.pendingReclaim {
		if f.pendingMark[b]&pendReclaim == 0 {
			report("pending reclaim of block %d lost its queue mark", b)
		}
	}

	// 5: victim index and partial-page markers.
	f.checkVictimIndex(report)
	// 6: dftl mode — CMT/LRU/directory consistency and the coherence sweep.
	if f.fm.enabled {
		f.fmCheckInvariants(report)
	}
	for s := Stream(0); s < numStreams; s++ {
		want := -1
		for i := range f.fronts[s] {
			if len(f.fronts[s][i].fillLSNs) > 0 {
				if want >= 0 {
					report("stream %d has partial pages on frontiers %d and %d", s, want, i)
				}
				want = i
			}
		}
		if f.partial[s] != want {
			report("stream %d partial marker %d, want %d", s, f.partial[s], want)
		}
	}

	if len(violations) == 0 {
		return nil
	}
	return fmt.Errorf("ftl: invariants violated: %s", strings.Join(violations, "; "))
}
