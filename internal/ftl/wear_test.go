package ftl

import (
	"testing"
)

func TestWearStatsBasics(t *testing.T) {
	e, f := newSmall(t, smallCfg())
	ws := f.WearStats()
	if ws.MinErase != 0 || ws.MaxErase != 0 || ws.Spread != 0 || ws.MeanErase != 0 {
		t.Errorf("fresh device wear stats = %+v", ws)
	}
	// Force erases on a subset via overwrite + GC traffic.
	for i := 0; i < 120; i++ {
		f.Write(0, 8192, TagHostData, StreamData)
		e.Run()
	}
	ws = f.WearStats()
	if ws.MaxErase == 0 {
		t.Fatal("no wear accumulated despite GC traffic")
	}
	if ws.Spread != ws.MaxErase-ws.MinErase {
		t.Error("Spread arithmetic wrong")
	}
	if ws.MeanErase <= 0 {
		t.Error("MeanErase not positive")
	}
}

func TestWearLevelDisabledByDefault(t *testing.T) {
	_, f := newSmall(t, smallCfg())
	if f.MaybeWearLevel() {
		t.Error("wear leveling moved a block with threshold 0")
	}
}

func TestWearLevelBoundsSpread(t *testing.T) {
	run := func(threshold uint32) WearStats {
		cfg := smallCfg()
		cfg.WearDeltaThreshold = threshold
		e, f := newSmall(t, cfg)
		// Pin cold data: write a range once, never touch it again; then
		// hammer a hot range so GC recycles only hot blocks.
		f.Write(65536, 32768, TagHostData, StreamData) // cold: 64 slots
		f.Sync(StreamData, TagHostData)
		e.Run()
		for i := 0; i < 400; i++ {
			f.Write(0, 8192, TagHostData, StreamData)
			e.Run()
			if threshold > 0 && i%10 == 0 {
				f.MaybeWearLevel()
				e.Run()
			}
		}
		checkInvariants(t, f)
		// Cold data must still be mapped correctly after any moves.
		for lun := int64(65536 / 512); lun < (65536+32768)/512; lun++ {
			if f.l2p[lun] < 0 {
				t.Fatal("wear leveling lost a cold mapping")
			}
		}
		return f.WearStats()
	}
	without := run(0)
	with := run(4)
	if with.Moves == 0 {
		t.Fatal("wear leveling never moved a block")
	}
	if with.Spread > without.Spread {
		t.Errorf("wear leveling increased spread: %d (on) vs %d (off)", with.Spread, without.Spread)
	}
}

func TestWearLevelRespectsMeanGuard(t *testing.T) {
	// With uniform wear (every closed block equally erased) a spread of 0
	// must never trigger a move even at threshold 1.
	cfg := smallCfg()
	cfg.WearDeltaThreshold = 1
	e, f := newSmall(t, cfg)
	f.Write(0, 2048, TagHostData, StreamData)
	e.Run()
	if f.MaybeWearLevel() {
		t.Error("moved a block with zero spread")
	}
}

func TestGCPolicyString(t *testing.T) {
	if GCGreedy.String() != "greedy" || GCCostBenefit.String() != "cost-benefit" || GCFIFO.String() != "fifo" {
		t.Error("policy names wrong")
	}
	if GCPolicy(99).String() == "" {
		t.Error("unknown policy renders empty")
	}
}

func TestGCPoliciesReclaim(t *testing.T) {
	// All three policies must keep a hot-overwrite workload alive and
	// preserve every live mapping.
	for _, pol := range []GCPolicy{GCGreedy, GCCostBenefit, GCFIFO} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := smallCfg()
			cfg.GCPolicy = pol
			e, f := newSmall(t, cfg)
			for i := 0; i < 150; i++ {
				f.Write(0, 8192, TagHostData, StreamData)
				e.Run()
			}
			f.Sync(StreamData, TagHostData)
			e.Run()
			if f.Stats().GCInvocations+f.Stats().DeadReclaims == 0 {
				t.Fatal("no reclamation happened")
			}
			checkInvariants(t, f)
			for lun := int64(0); lun < 16; lun++ {
				if f.l2p[lun] < 0 {
					t.Fatalf("lun %d lost under %v", lun, pol)
				}
			}
		})
	}
}

func TestGreedyMigratesLessThanFIFO(t *testing.T) {
	// Greedy picks min-valid victims, so it should migrate no more slots
	// than FIFO for the same traffic.
	migrated := map[GCPolicy]uint64{}
	for _, pol := range []GCPolicy{GCGreedy, GCFIFO} {
		cfg := smallCfg()
		cfg.GCPolicy = pol
		e, f := newSmall(t, cfg)
		// mixed hot/cold: cold range written once, hot range hammered
		f.Write(65536, 32768, TagHostData, StreamData)
		f.Sync(StreamData, TagHostData)
		e.Run()
		for i := 0; i < 250; i++ {
			f.Write(0, 8192, TagHostData, StreamData)
			e.Run()
		}
		migrated[pol] = f.Stats().GCMigratedSlot
	}
	if migrated[GCGreedy] > migrated[GCFIFO] {
		t.Errorf("greedy migrated %d slots > fifo %d", migrated[GCGreedy], migrated[GCFIFO])
	}
}
