// Package ftl implements the flash translation layer of the Check-In SSD:
// sub-page (sector) mapping from logical addresses to physical flash slots,
// log-structured write allocation with per-stream frontiers, read-modify-
// write handling for writes that partially cover a mapping unit, shared
// mappings with reference counts (the basis of checkpoint-by-remap),
// greedy wear-aware garbage collection, and a mapping-metadata cost model
// (map-cache misses and batched metadata flushes).
//
// Addresses on the FTL's logical interface are plain byte offsets; the
// mapping granularity is Config.UnitSize bytes (512 B by default, matching
// the paper's host sector size). One physical flash page holds
// PageSize/UnitSize slots.
package ftl

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/trace"
)

// Tag classifies the origin of a flash write for the paper's accounting
// (redundant writes, GC traffic, metadata traffic).
type Tag uint8

// Write-origin tags.
const (
	TagHostJournal Tag = iota // journal-area writes from the storage engine
	TagHostData               // data-area writes from the storage engine
	TagCheckpoint             // checkpoint-induced copies / merges inside the device
	TagGC                     // garbage-collection migration
	TagMeta                   // mapping-table metadata flushes
	numTags
)

// String names the tag.
func (t Tag) String() string {
	switch t {
	case TagHostJournal:
		return "host-journal"
	case TagHostData:
		return "host-data"
	case TagCheckpoint:
		return "checkpoint"
	case TagGC:
		return "gc"
	case TagMeta:
		return "meta"
	default:
		return fmt.Sprintf("tag(%d)", uint8(t))
	}
}

// Stream selects a write frontier. Separating streams keeps journal pages
// (short-lived, trimmed at every checkpoint) away from data pages, which is
// what makes journal blocks cheap to reclaim.
type Stream uint8

// Write streams.
const (
	StreamJournal Stream = iota
	StreamData
	StreamGC
	StreamMeta
	// StreamTrans carries flash-resident translation pages (dftl mode only;
	// never allocated under the default DRAM-resident mapping).
	StreamTrans
	numStreams
)

// GCPolicy selects the garbage-collection victim policy.
type GCPolicy uint8

// Victim-selection policies.
const (
	// GCGreedy picks the closed block with the fewest valid slots —
	// minimal migration per reclaimed block (the default, and what the
	// paper's SimpleSSD substrate uses).
	GCGreedy GCPolicy = iota
	// GCCostBenefit weighs reclaimable space against migration cost and
	// block age: (invalid/valid') * age, preferring older blocks whose
	// remaining valid data is likely cold (Rosenblum's cleaning policy).
	GCCostBenefit
	// GCFIFO collects the oldest closed block regardless of validity —
	// the simplest policy, included as a lower bound.
	GCFIFO
)

// String names the policy.
func (p GCPolicy) String() string {
	switch p {
	case GCGreedy:
		return "greedy"
	case GCCostBenefit:
		return "cost-benefit"
	case GCFIFO:
		return "fifo"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Config parameterizes the FTL.
type Config struct {
	// UnitSize is the mapping unit in bytes (512, 1024, 2048 or 4096 in
	// the paper's sensitivity study). Must divide the flash page size.
	UnitSize int

	// OverProvision is the fraction of raw capacity reserved for GC
	// headroom (0.12 ≈ a commodity 7% + parity-ish reserve).
	OverProvision float64

	// GCLowWater triggers foreground GC when free blocks drop below it;
	// GC collects victims until GCHighWater free blocks are available.
	GCLowWater  int
	GCHighWater int

	// Parallelism is the number of open blocks per stream; pages of a
	// stream stripe across them (and hence across dies/channels).
	Parallelism int

	// MapCacheBytes is the device DRAM available for the mapping table.
	// Lookups beyond the cached fraction cost a simulated map-page fetch.
	MapCacheBytes int64

	// MapMissPenalty is the latency of fetching a mapping page on a map
	// cache miss.
	MapMissPenalty sim.VTime

	// MetaFlushEntries is the number of dirty mapping entries accumulated
	// before a metadata page is flushed to flash. 0 derives it from the
	// page size (one entry = 8 bytes).
	MetaFlushEntries int

	// DeferGC makes journal-area reclamation wait for background GC
	// (Check-In's deallocator behaviour) instead of counting on the
	// foreground path.
	DeferGC bool

	// WearDeltaThreshold enables static wear leveling: when the spread
	// between the most- and least-erased blocks reaches this many P/E
	// cycles, the coldest block is migrated so its cells rejoin the
	// allocation pool. 0 disables static wear leveling.
	WearDeltaThreshold uint32

	// Tracer, when non-nil, receives GC and wear-leveling events.
	Tracer *trace.Tracer

	// Injector, when non-nil, receives crash-injection hits at the FTL's
	// instrumented sites (metadata flush, GC collection, wear leveling).
	Injector *inject.Injector

	// GCPolicy selects the victim policy (default GCGreedy).
	GCPolicy GCPolicy

	// MaxReadRetries bounds the voltage-shift read-retry ladder when the
	// array's reliability model reports a read error (0 = default 6). An
	// uncorrectable read walks the whole ladder and then pays the
	// soft-decision decode latency.
	MaxReadRetries int

	// RetryStepLatency is the per-step voltage-shift setup cost added on
	// top of each retry read (0 = default 80µs).
	RetryStepLatency sim.VTime

	// SoftDecodeLatency is the soft-decision (LDPC soft-read) decode cost
	// of an uncorrectable page (0 = default 400µs).
	SoftDecodeLatency sim.VTime

	// SpareBlocksPerDie reserves erased blocks per die that replace blocks
	// retired after program/erase failures. When the pool is exhausted the
	// FTL degrades to read-only. 0 reserves nothing (reliability off).
	SpareBlocksPerDie int

	// FlashMap enables the DFTL-style flash-resident mapping table (see
	// dftl.go): a bounded CMT in controller DRAM backed by translation
	// pages on flash, replacing the probabilistic map-cache model with real
	// NAND traffic for mapping misses, writebacks and translation-page GC.
	FlashMap bool

	// CMTEntries bounds the cached mapping table under FlashMap, in
	// entries. 0 derives the bound from MapCacheBytes (8 bytes per entry).
	CMTEntries int

	// CMTNoFill disables page-fill on CMT miss (ablation): a miss inserts
	// only the demanded entry instead of every entry the fetched
	// translation page covers. Only meaningful under FlashMap.
	CMTNoFill bool

	// CMTCleanWindow bounds the clean-first (CFLRU-style) eviction search:
	// how many LRU-tail entries are examined for a clean victim before a
	// dirty one forces a translation-page writeback. 0 picks the default
	// (32); 1 or negative restores strict LRU eviction (ablation). Only
	// meaningful under FlashMap.
	CMTCleanWindow int

	// CMTNoBatch disables the checkpoint-cut remap writeback batch
	// (ablation): BeginCheckpointCut/EndCheckpointCut become no-ops and
	// threshold flushes interleave with the cut's remap stream. Only
	// meaningful under FlashMap.
	CMTNoBatch bool
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments unless a sweep overrides a field.
func DefaultConfig() Config {
	return Config{
		UnitSize:       512,
		OverProvision:  0.12,
		GCLowWater:     4,
		GCHighWater:    8,
		Parallelism:    4,
		MapCacheBytes:  32 << 20,
		MapMissPenalty: 60 * sim.Microsecond,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate(pageSize int) error {
	if c.UnitSize <= 0 || pageSize%c.UnitSize != 0 {
		return fmt.Errorf("ftl: UnitSize %d must be positive and divide page size %d", c.UnitSize, pageSize)
	}
	if c.OverProvision < 0 || c.OverProvision >= 1 {
		return fmt.Errorf("ftl: OverProvision %v out of [0,1)", c.OverProvision)
	}
	if c.GCLowWater < 1 || c.GCHighWater <= c.GCLowWater {
		return fmt.Errorf("ftl: GC watermarks low=%d high=%d invalid", c.GCLowWater, c.GCHighWater)
	}
	if c.Parallelism < 1 {
		return fmt.Errorf("ftl: Parallelism %d must be >= 1", c.Parallelism)
	}
	return nil
}

// Stats aggregates FTL-level counters. Flash op totals live in nand.Stats;
// these split them by cause.
type Stats struct {
	ProgramsByTag [numTags]uint64
	ReadsByTag    [numTags]uint64

	// Remaps counts mapping units checkpointed by pure map update;
	// RemapRMWs counts units that needed read-merge-write because the
	// source bytes were not aligned to the mapping unit.
	Remaps    uint64
	RemapRMWs uint64

	// HostRMWReads counts extra reads caused by writes partially covering
	// a mapped unit.
	HostRMWReads uint64

	// GCInvocations counts garbage collections that migrated live data;
	// DeadReclaims counts trivially reclaimed fully-invalid blocks (e.g.
	// journal blocks after a checkpoint trim), which cost one erase and
	// no data movement.
	GCInvocations  uint64
	DeadReclaims   uint64
	GCMigratedSlot uint64

	// DeadPaddingSlots counts slots thrown away when a partially filled
	// page had to be programmed at a sync point.
	DeadPaddingSlots uint64

	MapMisses   uint64
	MetaFlushes uint64

	TrimmedUnits uint64

	// WearLevelMoves counts static wear-leveling migrations.
	WearLevelMoves uint64

	// Reliability-path counters (all zero when the NAND fault model is off).
	// ProgramFailMoves counts page buffers restaged on a fresh block after a
	// program failure; RetiredBlocks counts blocks permanently retired;
	// ReadReclaims counts blocks scrubbed after an uncorrectable read.
	ProgramFailMoves uint64
	RetiredBlocks    uint64
	ReadReclaims     uint64

	// DFTL-mode counters (all zero under the DRAM-resident mapping):
	// cached-mapping-table traffic, translation-page writeback programs,
	// translation-page reads (demand fetches plus flush RMW plus GC reads),
	// and live translation pages relocated by GC.
	CMTHits       uint64
	CMTMisses     uint64
	CMTEvictions  uint64
	TransFlushes  uint64
	TransReads    uint64
	TransMigrated uint64

	// Origin split of the DFTL traffic. CMTHits/CMTMisses above count the
	// host lookup path (fmAccessRange); CMTHitsGC/CMTMissesGC count
	// device-internal mapping updates — GC rebinding and dirtying triggered
	// inside a writeback. TransReads above is the total;
	// TransReadsHost + TransReadsRMW + TransReadsGC == TransReads, splitting
	// it into host demand fetches, flush read-modify-writes, and GC
	// relocation reads.
	CMTHitsGC      uint64
	CMTMissesGC    uint64
	TransReadsHost uint64
	TransReadsRMW  uint64
	TransReadsGC   uint64
}

// RedundantWrites returns the paper's "duplicate writes" metric: programs
// whose payload already existed on flash (checkpoint copies/merges plus GC
// migration rewrites).
func (s Stats) RedundantWrites() uint64 {
	return s.ProgramsByTag[TagCheckpoint] + s.ProgramsByTag[TagGC]
}

type blockState uint8

const (
	blockFree blockState = iota
	blockOpen
	blockClosed
	// blockSpare blocks sit in the reserved replacement pool: erased, never
	// allocated, promoted to blockFree when a retirement consumes them.
	blockSpare
	// blockBad blocks are permanently retired (grown bad blocks): their live
	// data has migrated and they never rejoin any pool.
	blockBad
)

type frontier struct {
	block    int // -1 when no block is open
	fillLSNs []int64
	fillTag  Tag // origin of the currently buffered slots

	// relocBase is the slot id of buffered slot 0 after a program failure
	// relocated this frontier's page buffer — transient signal from
	// handleProgramFail back to the appendSlot call still on the stack,
	// which re-derives the slot id it is about to return. Not state.
	relocBase int64
}

// FTL is the flash translation layer instance.
type FTL struct {
	cfg   Config
	eng   *sim.Engine
	array *nand.Array

	unit         int
	slotsPerPage int
	pagesPerBlk  int
	totalBlocks  int

	logicalBytes int64
	totalUnits   int64

	// map: logical unit number → physical slot id (-1 unmapped)
	l2p []int64
	// per-slot reference count (shared mappings after remap)
	refcnt []uint8
	// primary reverse mapping slot → logical unit (-1 free/dead)
	rev []int64
	// extra reverse mappings for slots with refcnt > 1 (transient between
	// checkpoint remap and journal trim)
	revOverflow map[int64][]int64

	state      []blockState
	validCount []int32
	written    []int32 // slots consumed in each block (valid + invalid + dead)
	closedSeq  []int64 // logical close time (monotonic counter; age input)
	closeClock int64

	freeByDie [][]int
	freeCount int

	// Reliability state: the spare-block replacement pool, retired-block
	// count, the read-only degradation latch, and the deferred fault-handling
	// queues (see reliability.go). pendingMark dedups queue membership.
	spareByDie     [][]int
	spareCount     int
	badCount       int
	readOnly       bool
	pendingRetire  []int
	pendingReclaim []int
	pendingMark    []uint8

	// Resolved read-recovery parameters (Config defaults applied).
	maxRetries int
	retryLat   sim.VTime
	softLat    sim.VTime

	fronts [numStreams][]frontier
	rr     [numStreams]int
	// outstanding program futures per stream: Sync waits for all of them
	// (staged-write semantics: host writes complete at the DRAM buffer;
	// Flush provides durability)
	outstanding [numStreams][]*sim.Future

	// map-metadata cost model
	dirtyMapEntries int
	metaFlushAt     int
	mapMissAccum    float64
	mapEngine       sim.FIFOResource

	gcDepth int // re-entrancy guard: GC's own writes must not trigger GC

	// vix is the incrementally maintained victim index (see victim.go):
	// every closed block linked into a bucket keyed by its valid count, so
	// victim selection and the deallocator's existence probe no longer scan
	// all blocks. gcVictim is the block currently being collected — it is
	// detached from the index for the duration — or -1.
	vix      *victimIndex
	gcVictim int

	// victimOracle, when set (tests only), makes every pickVictim verify
	// the index against the retained linear scan and panic on divergence.
	victimOracle bool

	// partial[s] is the frontier index of stream s holding a partially
	// filled page, or -1 — appendSlot's "finish the open page first" rule
	// guarantees at most one per stream, so tracking it replaces a
	// per-append scan over the stream's frontiers.
	partial [numStreams]int

	// lunsBuf is the scratch buffer behind lunsOf: the GC migrate loop
	// calls it once per valid slot, and a fresh slice per call was a
	// measurable allocation source on GC-heavy runs.
	lunsBuf []int64

	// Epoch-stamped page-grouping scratch shared by Read and CopyCached:
	// pageEpoch[pid] == epoch marks page pid as seen by the current call,
	// so grouping slot reads by physical page needs no per-call map. The
	// epoch only ever increments, which keeps stale stamps harmless.
	epoch     uint64
	pageEpoch []uint64
	pageCount []int32
	pageOrder []int64

	// Reusable future slices for the host-path fan-ins. One buffer per
	// method: CopyCached nests Write, and Sync nests inside GC inside
	// either, so the buffers must not be shared across methods.
	readFuts  []*sim.Future
	writeFuts []*sim.Future
	remapFuts []*sim.Future
	copyFuts  []*sim.Future
	syncFuts  []*sim.Future

	// ovFree interns the small revOverflow slices: checkpoint remaps create
	// and retire one per shared slot, and recycling them keeps remap-heavy
	// runs from churning the allocator.
	ovFree [][]int64

	// fm is the DFTL-style flash-resident mapping layer (dftl.go); its zero
	// value is the disabled layer (DRAM-resident mapping, the default).
	fm flashMap

	// rlog is the persistent recovery state (OOB records, remap aliases,
	// trim extents, translation-page records) backing SimulateSPOR.
	rlog *recoveryLog

	stats Stats
}

// New builds an FTL over the given array.
func New(eng *sim.Engine, array *nand.Array, cfg Config) (*FTL, error) {
	geo := array.Geometry()
	if err := cfg.Validate(geo.PageSize); err != nil {
		return nil, err
	}
	f := &FTL{
		cfg:          cfg,
		eng:          eng,
		array:        array,
		unit:         cfg.UnitSize,
		slotsPerPage: geo.PageSize / cfg.UnitSize,
		pagesPerBlk:  geo.PagesPerBlock,
		totalBlocks:  geo.TotalBlocks(),
		revOverflow:  make(map[int64][]int64),
	}
	physBytes := geo.TotalBytes()
	f.logicalBytes = int64(float64(physBytes) / (1 + cfg.OverProvision))
	f.logicalBytes -= f.logicalBytes % int64(f.unit)
	f.totalUnits = f.logicalBytes / int64(f.unit)

	totalSlots := int64(geo.TotalPages()) * int64(f.slotsPerPage)
	f.l2p = make([]int64, f.totalUnits)
	for i := range f.l2p {
		f.l2p[i] = -1
	}
	f.refcnt = make([]uint8, totalSlots)
	f.rev = make([]int64, totalSlots)
	for i := range f.rev {
		f.rev[i] = -1
	}
	f.state = make([]blockState, f.totalBlocks)
	f.validCount = make([]int32, f.totalBlocks)
	f.written = make([]int32, f.totalBlocks)
	f.closedSeq = make([]int64, f.totalBlocks)
	f.vix = newVictimIndex(cfg.GCPolicy, f.totalBlocks, f.pagesPerBlk*f.slotsPerPage)
	f.gcVictim = -1

	totalPages := int64(geo.TotalPages())
	f.pageEpoch = make([]uint64, totalPages)
	f.pageCount = make([]int32, totalPages)

	dies := geo.TotalDies()
	f.freeByDie = make([][]int, dies)
	for b := f.totalBlocks - 1; b >= 0; b-- {
		d := geo.DieOfBlock(b)
		f.freeByDie[d] = append(f.freeByDie[d], b)
	}
	f.freeCount = f.totalBlocks

	f.spareByDie = make([][]int, dies)
	f.pendingMark = make([]uint8, f.totalBlocks)
	for d := range f.freeByDie {
		for i := 0; i < cfg.SpareBlocksPerDie && len(f.freeByDie[d]) > 0; i++ {
			last := len(f.freeByDie[d]) - 1
			b := f.freeByDie[d][last]
			f.freeByDie[d] = f.freeByDie[d][:last]
			f.freeCount--
			f.state[b] = blockSpare
			f.spareByDie[d] = append(f.spareByDie[d], b)
			f.spareCount++
		}
	}
	f.maxRetries = cfg.MaxReadRetries
	if f.maxRetries == 0 {
		f.maxRetries = 6
	}
	f.retryLat = cfg.RetryStepLatency
	if f.retryLat == 0 {
		f.retryLat = 80 * sim.Microsecond
	}
	f.softLat = cfg.SoftDecodeLatency
	if f.softLat == 0 {
		f.softLat = 400 * sim.Microsecond
	}

	par := cfg.Parallelism
	if par > dies {
		par = dies
	}
	for s := Stream(0); s < numStreams; s++ {
		f.fronts[s] = make([]frontier, par)
		for i := range f.fronts[s] {
			f.fronts[s][i].block = -1
		}
		f.partial[s] = -1
	}

	f.metaFlushAt = cfg.MetaFlushEntries
	if f.metaFlushAt == 0 {
		f.metaFlushAt = geo.PageSize / 8
	}
	f.rlog = newRecoveryLog(totalSlots)
	if cfg.FlashMap {
		if err := f.initFlashMap(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// LogicalBytes returns the exported logical capacity.
func (f *FTL) LogicalBytes() int64 { return f.logicalBytes }

// UnitSize returns the mapping unit in bytes.
func (f *FTL) UnitSize() int { return f.unit }

// Stats returns a snapshot of the FTL counters.
func (f *FTL) Stats() Stats { return f.stats }

// Array returns the underlying flash array (for device-level reporting).
func (f *FTL) Array() *nand.Array { return f.array }

// FreeBlocks returns the number of erased blocks available for allocation.
func (f *FTL) FreeBlocks() int { return f.freeCount }

// MappingTableBytes returns the in-device size of the full mapping table
// (8 bytes per logical unit), the quantity the map cache model divides by.
func (f *FTL) MappingTableBytes() int64 { return f.totalUnits * 8 }

// ---------------------------------------------------------------------------
// slot arithmetic

func (f *FTL) slotID(block, page, slot int) int64 {
	return (int64(block)*int64(f.pagesPerBlk)+int64(page))*int64(f.slotsPerPage) + int64(slot)
}

func (f *FTL) slotBlock(sid int64) int {
	return int(sid / int64(f.slotsPerPage) / int64(f.pagesPerBlk))
}

func (f *FTL) slotPage(sid int64) int {
	return int(sid / int64(f.slotsPerPage) % int64(f.pagesPerBlk))
}

// isBuffered reports whether the slot's page has not been programmed yet —
// its payload still sits in the controller's page buffer (DRAM), so reading
// it costs no flash operation.
func (f *FTL) isBuffered(sid int64) bool {
	return f.slotPage(sid) >= f.array.ProgrammedPages(f.slotBlock(sid))
}

func (f *FTL) checkRange(off, n int64) {
	if off < 0 || n < 0 || off+n > f.logicalBytes {
		panic(fmt.Sprintf("ftl: access [%d,%d) outside logical space %d", off, off+n, f.logicalBytes))
	}
}

// ---------------------------------------------------------------------------
// mapping maintenance

// bindSlot points lun at sid (first reference).
func (f *FTL) bindSlot(lun, sid int64) {
	f.unmap(lun)
	f.l2p[lun] = sid
	f.refcnt[sid] = 1
	f.rev[sid] = lun
	blk := f.slotBlock(sid)
	f.validCount[blk]++
	if f.vix.linked[blk] {
		// the append that produced sid filled the page and closed the
		// block before this bind landed — its bucket must move up
		f.vixMarkDirty(blk)
	}
	f.noteMapDirty(1)
	if f.fm.enabled {
		f.fmWrite(lun)
	}
}

// shareSlot adds lun as an additional reference to sid (checkpoint remap).
func (f *FTL) shareSlot(lun, sid int64) {
	f.unmap(lun)
	f.l2p[lun] = sid
	if f.refcnt[sid] == 0 {
		panic("ftl: sharing a dead slot")
	}
	if f.refcnt[sid] == ^uint8(0) {
		// cannot happen in the checkpoint protocol (a slot is shared by
		// at most journal+data references), but a silent wrap would
		// corrupt validity accounting — fail loudly instead
		panic("ftl: slot reference count overflow")
	}
	f.refcnt[sid]++
	ov, ok := f.revOverflow[sid]
	if !ok {
		ov = f.takeOv()
	}
	f.revOverflow[sid] = append(ov, lun)
	f.rlog.noteAlias(sid, lun)
	f.noteMapDirty(1)
	if f.fm.enabled {
		f.fmWrite(lun)
	}
}

// takeOv returns an interned overflow slice (or a fresh one). Checkpoint
// remaps create and retire one small slice per shared slot; recycling them
// keeps remap-heavy runs from churning the allocator.
func (f *FTL) takeOv() []int64 {
	if n := len(f.ovFree); n > 0 {
		ov := f.ovFree[n-1]
		f.ovFree[n-1] = nil
		f.ovFree = f.ovFree[:n-1]
		return ov
	}
	return make([]int64, 0, 2)
}

// recycleOv returns an emptied overflow slice to the intern pool.
func (f *FTL) recycleOv(ov []int64) {
	if cap(ov) > 0 && len(f.ovFree) < 64 {
		f.ovFree = append(f.ovFree, ov[:0])
	}
}

// unmap drops lun's reference, invalidating its slot when the last
// reference disappears.
func (f *FTL) unmap(lun int64) {
	sid := f.l2p[lun]
	if sid < 0 {
		return
	}
	f.l2p[lun] = -1
	f.dropRef(sid, lun)
	f.noteMapDirty(1)
}

func (f *FTL) dropRef(sid, lun int64) {
	rc := f.refcnt[sid]
	if rc == 0 {
		panic("ftl: dropping reference on dead slot")
	}
	if rc == 1 {
		// no overflow lookup needed: refcnt == 1 + len(overflow) for live
		// slots (checked by CheckInvariants), so a last-reference slot has
		// no overflow entry to delete
		f.refcnt[sid] = 0
		f.rev[sid] = -1
		blk := f.slotBlock(sid)
		f.validCount[blk]--
		if f.vix.linked[blk] {
			f.vixMarkDirty(blk)
		}
		return
	}
	f.refcnt[sid] = rc - 1
	if f.rev[sid] == lun {
		// promote an overflow entry to primary
		ov := f.revOverflow[sid]
		f.rev[sid] = ov[len(ov)-1]
		ov = ov[:len(ov)-1]
		if len(ov) == 0 {
			f.recycleOv(ov)
			delete(f.revOverflow, sid)
		} else {
			f.revOverflow[sid] = ov
		}
		return
	}
	ov := f.revOverflow[sid]
	for i, l := range ov {
		if l == lun {
			ov[i] = ov[len(ov)-1]
			ov = ov[:len(ov)-1]
			break
		}
	}
	if len(ov) == 0 {
		f.recycleOv(ov)
		delete(f.revOverflow, sid)
	} else {
		f.revOverflow[sid] = ov
	}
}

// lunsOf returns every logical unit referencing sid. The result aliases a
// scratch buffer reused across calls (valid until the next lunsOf call);
// callers needing a stable copy must clone it.
func (f *FTL) lunsOf(sid int64) []int64 {
	if f.refcnt[sid] == 0 {
		return nil
	}
	out := append(f.lunsBuf[:0], f.rev[sid])
	out = append(out, f.revOverflow[sid]...)
	f.lunsBuf = out
	return out
}

// ---------------------------------------------------------------------------
// map metadata model

func (f *FTL) noteMapDirty(n int) {
	if f.fm.enabled {
		// dftl mode: mapping persistence is per-entry through the CMT
		// (fmWrite), not the batched probabilistic model.
		return
	}
	f.dirtyMapEntries += n
	for f.dirtyMapEntries >= f.metaFlushAt {
		f.dirtyMapEntries -= f.metaFlushAt
		f.stats.MetaFlushes++
		f.programMetaPage()
	}
}

// programMetaPage writes one page of mapping metadata. Metadata pages are
// superseded immediately (the in-DRAM table stays authoritative), so the
// slots are dead on arrival and the block is trivially reclaimable. Pages
// rotate across the stream's frontiers so metadata bursts spread over dies.
func (f *FTL) programMetaPage() {
	idx := f.rr[StreamMeta] % len(f.fronts[StreamMeta])
	f.rr[StreamMeta]++
	fr, block := f.openFrontier(StreamMeta, idx)
	for f.array.SampleProgramFail(block) {
		// Metadata pages are superseded by the in-DRAM table the moment
		// they are written, so nothing is restaged: charge the ruined page,
		// condemn the block, and move the frontier.
		f.array.ProgramFailedAttempt(block, f.array.Geometry().PageSize)
		f.written[block] += int32(f.slotsPerPage)
		f.noteProgramFail(block, StreamMeta, 0)
		fr.block = -1
		fr, block = f.openFrontier(StreamMeta, idx)
	}
	f.written[block] += int32(f.slotsPerPage)
	f.stats.DeadPaddingSlots += 0 // metadata pages are whole-page writes
	f.array.ProgramPageNoWait(block, f.array.Geometry().PageSize)
	f.stats.ProgramsByTag[TagMeta]++
	f.advanceFrontier(fr, block)
	f.cfg.Injector.Hit(inject.SiteMetaFlush)
}

// mapLookupCost models the map-cache: the fraction of the table that does
// not fit in DRAM misses at lookup time; misses serialize on the map engine
// and delay the operation by MapMissPenalty.
func (f *FTL) mapLookupCost(lookups int) sim.VTime {
	if f.fm.enabled {
		// dftl mode: lookup cost is charged per miss as a real translation-
		// page read (fmAccessRange), not by the probabilistic model.
		return 0
	}
	tableBytes := f.MappingTableBytes()
	if tableBytes <= f.cfg.MapCacheBytes || f.cfg.MapMissPenalty == 0 {
		return 0
	}
	missProb := 1 - float64(f.cfg.MapCacheBytes)/float64(tableBytes)
	f.mapMissAccum += missProb * float64(lookups)
	var delay sim.VTime
	for f.mapMissAccum >= 1 {
		f.mapMissAccum--
		f.stats.MapMisses++
		_, end := f.mapEngine.Reserve(f.eng.Now(), f.cfg.MapMissPenalty)
		if end > f.eng.Now()+delay {
			delay = end - f.eng.Now()
		}
	}
	return delay
}

// ---------------------------------------------------------------------------
// block allocation and frontiers

func (f *FTL) allocBlock(preferDie int) int {
	geo := f.array.Geometry()
	dies := geo.TotalDies()
	for i := 0; i < dies; i++ {
		d := (preferDie + i) % dies
		if n := len(f.freeByDie[d]); n > 0 {
			b := f.freeByDie[d][n-1]
			f.freeByDie[d] = f.freeByDie[d][:n-1]
			f.freeCount--
			f.state[b] = blockOpen
			return b
		}
	}
	panic("ftl: out of free blocks (GC watermarks misconfigured)")
}

func (f *FTL) releaseBlock(b int) {
	f.state[b] = blockFree
	f.validCount[b] = 0
	f.written[b] = 0
	d := f.array.Geometry().DieOfBlock(b)
	f.freeByDie[d] = append(f.freeByDie[d], b)
	f.freeCount++
}

// openFrontier returns frontier idx of stream s with an open block,
// allocating one if necessary.
func (f *FTL) openFrontier(s Stream, idx int) (*frontier, int) {
	fr := &f.fronts[s][idx]
	if fr.block < 0 {
		dies := f.array.Geometry().TotalDies()
		prefer := (int(s)*3 + idx*dies/len(f.fronts[s])) % dies
		fr.block = f.allocBlock(prefer)
	}
	return fr, fr.block
}

// advanceFrontier closes the block if full and triggers GC as needed.
func (f *FTL) advanceFrontier(fr *frontier, block int) {
	if int(f.written[block]) >= f.pagesPerBlk*f.slotsPerPage {
		f.state[block] = blockClosed
		f.closeClock++
		f.closedSeq[block] = f.closeClock
		f.vixInsert(block, int(f.validCount[block]))
		fr.block = -1
	}
	f.maybeForegroundGC()
}

// appendSlot places one mapping unit of payload into stream s and returns
// the slot id. The payload is staged in the controller buffer; the page
// programs when full (or at Sync), with the program future tracked in the
// stream's outstanding set.
func (f *FTL) appendSlot(s Stream, lun int64, tag Tag) int64 {
	// Page-granular striping: finish the partially filled page if one
	// exists; otherwise start a fresh page on the next frontier in
	// round-robin order so consecutive pages land on different dies.
	// At most one page per stream is ever partially filled, so the
	// partial index replaces a scan over the stream's frontiers.
	idx := f.partial[s]
	if idx < 0 {
		idx = f.rr[s] % len(f.fronts[s])
		f.rr[s]++
	}
	fr, block := f.openFrontier(s, idx)
	page := f.array.ProgrammedPages(block)
	slot := len(fr.fillLSNs)
	sid := f.slotID(block, page, slot)
	fr.fillLSNs = append(fr.fillLSNs, lun)
	fr.fillTag = tag
	f.written[block]++
	f.rlog.noteWrite(sid, lun)

	if len(fr.fillLSNs) == f.slotsPerPage {
		fr.relocBase = -1
		f.programPage(s, idx, tag, true)
		if fr.relocBase >= 0 {
			// a program failure relocated the buffer mid-call: the slot just
			// appended lives on the replacement block now
			sid = fr.relocBase + int64(slot)
		}
	} else {
		f.partial[s] = idx
	}
	return sid
}

// programOpenPage programs the (possibly partial) open page of frontier
// idx, attributing it to the tag of the buffered slots (a flush should not
// re-tag pages another path staged).
func (f *FTL) programOpenPage(s Stream, idx int, tag Tag) {
	f.programPage(s, idx, tag, false)
}

// programPage is programOpenPage with the append-in-flight marker: when
// inflight is set, the last buffered slot belongs to an appendSlot call
// still on the stack, which re-derives its slot id (frontier.relocBase) if
// a program failure relocates the buffer.
func (f *FTL) programPage(s Stream, idx int, tag Tag, inflight bool) {
	fr := &f.fronts[s][idx]
	if fr.block < 0 || len(fr.fillLSNs) == 0 {
		return
	}
	tag = fr.fillTag
	for f.array.SampleProgramFail(fr.block) {
		f.handleProgramFail(s, idx, inflight)
	}
	block := fr.block
	fill := len(fr.fillLSNs)
	dead := f.slotsPerPage - fill
	if dead > 0 {
		// unwritten slots of a partially programmed page are wasted
		f.written[block] += int32(dead)
		f.stats.DeadPaddingSlots += uint64(dead)
	}
	_, progF := f.array.ProgramPage(block, fill*f.unit)
	f.stats.ProgramsByTag[tag]++
	f.trackOutstanding(s, progF)
	fr.fillLSNs = fr.fillLSNs[:0]
	if f.partial[s] == idx {
		f.partial[s] = -1
	}
	f.advanceFrontier(fr, block)
}

// trackOutstanding records an issued program so Sync can wait for it.
// Completed entries are dropped only when the backing array is full, which
// amortizes the scan to O(1) per program — scanning on every call made this
// the hottest FTL function on write-heavy runs (the set grows with every
// page programmed between two Syncs).
func (f *FTL) trackOutstanding(s Stream, progF *sim.Future) {
	out := f.outstanding[s]
	if len(out) == cap(out) && len(out) > 0 {
		kept := out[:0]
		for _, pf := range out {
			if !pf.Done() {
				kept = append(kept, pf)
			}
		}
		for i := len(kept); i < len(out); i++ {
			out[i] = nil // release completed futures for GC
		}
		out = kept
	}
	f.outstanding[s] = append(out, progF)
}

// Sync forces every partially filled open page of stream s to program and
// returns a future completing when every program issued on the stream so
// far — full pages included — has finished: the durability barrier behind
// the host FLUSH command.
func (f *FTL) Sync(s Stream, tag Tag) *sim.Future {
	for idx := range f.fronts[s] {
		if len(f.fronts[s][idx].fillLSNs) > 0 {
			f.programOpenPage(s, idx, tag)
		}
	}
	// syncFuts is safe to reuse here despite GC-induced nesting: an inner
	// Sync (collectBlock flushing the GC stream during a programOpenPage
	// above) runs to completion before this frame touches the buffer.
	pending := f.syncFuts[:0]
	for _, pf := range f.outstanding[s] {
		if !pf.Done() {
			pending = append(pending, pf)
		}
	}
	f.outstanding[s] = f.outstanding[s][:0]
	var out *sim.Future
	if len(pending) == 0 {
		out = sim.CompletedFuture(f.eng)
	} else {
		out = sim.AfterAll(f.eng, pending)
	}
	f.syncFuts = pending[:0]
	f.DrainFaults()
	return out
}

// ---------------------------------------------------------------------------
// host operations

// Write stores n bytes at logical offset off via stream s. Writes that
// partially cover a previously mapped unit incur a read-modify-write. The
// returned future completes when the data is staged (RMW reads done, slots
// buffered); durability requires a subsequent Sync, as with a real device's
// volatile write cache backed by power-loss capacitors.
func (f *FTL) Write(off, n int64, tag Tag, s Stream) *sim.Future {
	f.checkRange(off, n)
	if n == 0 {
		return sim.CompletedFuture(f.eng)
	}
	first := off / int64(f.unit)
	last := (off + n - 1) / int64(f.unit)
	lookups := int(last - first + 1)
	delay := f.mapLookupCost(lookups)

	futs := f.writeFuts[:0]
	f.fmEnterCmd()
	if f.fm.enabled {
		// The old mappings must be resolved before they are invalidated:
		// misses fetch translation pages the write then waits on.
		futs = f.fmAccessRange(first, last, true, futs)
	}
	for lun := first; lun <= last; lun++ {
		unitStart := lun * int64(f.unit)
		unitEnd := unitStart + int64(f.unit)
		covStart, covEnd := off, off+n
		full := covStart <= unitStart && covEnd >= unitEnd
		if old := f.l2p[lun]; !full && old >= 0 && !f.isBuffered(old) {
			// partial overwrite of live data: read-modify-write
			f.stats.HostRMWReads++
			f.stats.ReadsByTag[tag]++
			futs = append(futs, f.readFlash(f.slotBlock(old), f.slotPage(old), f.unit, true))
		}
		sid := f.appendSlot(s, lun, tag)
		f.bindSlot(lun, sid)
	}
	all := sim.AfterAll(f.eng, futs)
	f.writeFuts = futs[:0]
	f.fmExitCmd()
	f.DrainFaults()
	return delayedFuture(f.eng, all, delay)
}

// Read fetches n bytes at logical offset off. Reads of unmapped space
// complete immediately (zero-fill). Slot reads sharing a physical page are
// coalesced into one flash read.
func (f *FTL) Read(off, n int64) *sim.Future {
	f.checkRange(off, n)
	if n == 0 {
		return sim.CompletedFuture(f.eng)
	}
	first := off / int64(f.unit)
	last := (off + n - 1) / int64(f.unit)
	lookups := int(last - first + 1)
	delay := f.mapLookupCost(lookups)

	// Group mapped units by physical page via the epoch-stamped scratch
	// table: a page id stamped with the current epoch has been seen by this
	// call, so no per-call map is needed. Each lun touches at most one page,
	// which bounds both scratch slices by the unit span.
	if cap(f.readFuts) < lookups {
		f.readFuts = make([]*sim.Future, 0, lookups)
		f.pageOrder = make([]int64, 0, lookups)
	}
	futs := f.readFuts[:0]
	f.fmEnterCmd()
	if f.fm.enabled {
		// Resolve translations first: a miss-triggered writeback can run GC,
		// which moves slots — physical pages are captured only afterwards.
		futs = f.fmAccessRange(first, last, true, futs)
	}
	f.epoch++
	order := f.pageOrder[:0]
	for lun := first; lun <= last; lun++ {
		sid := f.l2p[lun]
		if sid < 0 || f.isBuffered(sid) {
			continue // unmapped (zero-fill) or still in the page buffer
		}
		pid := sid / int64(f.slotsPerPage)
		if f.pageEpoch[pid] != f.epoch {
			f.pageEpoch[pid] = f.epoch
			f.pageCount[pid] = 0
			order = append(order, pid)
		}
		f.pageCount[pid]++
	}
	for _, pid := range order {
		f.stats.ReadsByTag[TagHostData]++
		block := int(pid / int64(f.pagesPerBlk))
		page := int(pid % int64(f.pagesPerBlk))
		futs = append(futs, f.readFlash(block, page, int(f.pageCount[pid])*f.unit, true))
	}
	f.pageOrder = order[:0]
	all := sim.AfterAll(f.eng, futs)
	f.readFuts = futs[:0]
	f.fmExitCmd()
	f.DrainFaults()
	return delayedFuture(f.eng, all, delay)
}

// Trim unmaps [off, off+n), releasing references (journal deletion after a
// checkpoint). Alignment is required: the storage engine trims whole areas.
func (f *FTL) Trim(off, n int64) {
	f.checkRange(off, n)
	if off%int64(f.unit) != 0 {
		panic("ftl: unaligned trim")
	}
	first := off / int64(f.unit)
	last := (off + n - 1) / int64(f.unit)
	for lun := first; lun <= last; lun++ {
		if f.l2p[lun] >= 0 {
			f.trimUnmap(lun)
			f.stats.TrimmedUnits++
		}
	}
	// A trim persists as one extent record, not one map entry per unit.
	f.rlog.noteTrim(first, last)
	f.noteMapDirty(1)
	f.maybeForegroundGC()
	f.DrainFaults()
}

// trimUnmap is unmap without per-unit metadata accounting (Trim records a
// single extent instead).
func (f *FTL) trimUnmap(lun int64) {
	sid := f.l2p[lun]
	if sid < 0 {
		return
	}
	f.l2p[lun] = -1
	f.dropRef(sid, lun)
	if f.fm.enabled {
		// Each cleared entry must persist individually through the CMT (the
		// extent record covers host-visible recovery, not the on-flash table).
		f.fmWrite(lun)
	}
}

// RemapResult reports what a Remap did.
type RemapResult struct {
	Remapped int // units checkpointed by pure mapping update
	RMWs     int // units that needed read-merge-write
	Skipped  int // units whose source was unmapped
}

// Remap makes [dst, dst+n) reference the same physical slots as
// [src, src+n): the FTL's copy-on-write checkpoint primitive (Algorithm 1).
// dst must be unit-aligned (it addresses records in the data area). When the
// source range for a destination unit is not unit-aligned — unaligned
// journal logs under ISC-C — the unit is materialized by read-merge-write
// instead, which is exactly the inefficiency sector-aligned journaling
// removes. The returned future completes when any RMW flash work finishes.
func (f *FTL) Remap(src, dst, n int64) (RemapResult, *sim.Future) {
	return f.RemapCached(src, dst, n, false)
}

// RemapCached is Remap with an optional fast path for the read-merge-write
// case: when srcInBuffer is true the source bytes are resident in
// controller DRAM (the paper buffers small merged data in in-storage
// memory), so merging needs no source flash reads.
func (f *FTL) RemapCached(src, dst, n int64, srcInBuffer bool) (RemapResult, *sim.Future) {
	f.checkRange(src, n)
	f.checkRange(dst, n)
	if dst%int64(f.unit) != 0 {
		panic("ftl: Remap destination must be unit-aligned")
	}
	var res RemapResult
	futs := f.remapFuts[:0]
	delay := f.mapLookupCost(int(2 * (n/int64(f.unit) + 1)))
	f.fmEnterCmd()
	if f.fm.enabled && n > 0 {
		// Source and destination entries both resolve up front — the remap
		// reads the source mapping and invalidates the old destination one.
		futs = f.fmAccessRange(src/int64(f.unit), (src+n-1)/int64(f.unit), true, futs)
		futs = f.fmAccessRange(dst/int64(f.unit), (dst+n-1)/int64(f.unit), true, futs)
	}

	for rel := int64(0); rel < n; rel += int64(f.unit) {
		dstLun := (dst + rel) / int64(f.unit)
		srcOff := src + rel
		span := n - rel
		if span > int64(f.unit) {
			span = int64(f.unit)
		}
		aligned := srcOff%int64(f.unit) == 0 && span == int64(f.unit)
		if aligned {
			srcLun := srcOff / int64(f.unit)
			sid := f.l2p[srcLun]
			if sid < 0 {
				res.Skipped++
				continue
			}
			f.shareSlot(dstLun, sid)
			f.stats.Remaps++
			res.Remapped++
			continue
		}
		// Unaligned source (or short tail): read the covering source
		// slots and the old destination slot, merge, and program.
		res.RMWs++
		f.stats.RemapRMWs++
		sFirst := srcOff / int64(f.unit)
		sLast := (srcOff + span - 1) / int64(f.unit)
		for l := sFirst; l <= sLast && !srcInBuffer; l++ {
			if sid := f.l2p[l]; sid >= 0 && !f.isBuffered(sid) {
				f.stats.ReadsByTag[TagCheckpoint]++
				futs = append(futs, f.readFlash(f.slotBlock(sid), f.slotPage(sid), f.unit, true))
			}
		}
		if span < int64(f.unit) {
			if old := f.l2p[dstLun]; old >= 0 && !f.isBuffered(old) {
				f.stats.ReadsByTag[TagCheckpoint]++
				futs = append(futs, f.readFlash(f.slotBlock(old), f.slotPage(old), f.unit, true))
			}
		}
		sid := f.appendSlot(StreamData, dstLun, TagCheckpoint)
		f.bindSlot(dstLun, sid)
	}
	// RMW slots batch into pages across Remap calls; the caller syncs the
	// data stream once per checkpoint command for durability.
	all := sim.AfterAll(f.eng, futs)
	f.remapFuts = futs[:0]
	f.fmExitCmd()
	return res, delayedFuture(f.eng, all, delay)
}

// Copy physically copies [src, src+n) to [dst, dst+n) inside the device
// (the ISC-A / ISC-B CoW command service): reads the source slots, then
// programs the destination through the data stream. The future completes
// when the destination is durable.
func (f *FTL) Copy(src, dst, n int64, tag Tag) *sim.Future {
	return f.CopyCached(src, dst, n, tag, false)
}

// CopyCached is Copy with an optional fast path: when srcInBuffer is true
// the source bytes are already resident in controller DRAM (data cache or
// write buffer), so the flash read pass is skipped — the ISCE reads through
// the same DRAM cache the host path uses.
func (f *FTL) CopyCached(src, dst, n int64, tag Tag, srcInBuffer bool) *sim.Future {
	f.checkRange(src, n)
	f.checkRange(dst, n)
	if n == 0 {
		return sim.CompletedFuture(f.eng)
	}
	delay := f.mapLookupCost(int(2 * (n/int64(f.unit) + 1)))

	// consecutive reads, deduplicated per physical page through the
	// epoch-stamped scratch table (as in Read; the nested Write below does
	// not touch the epoch, so the stamp stays valid across this call) ...
	sFirst := src / int64(f.unit)
	sLast := (src + n - 1) / int64(f.unit)
	if spanCap := int(sLast-sFirst) + 2; cap(f.copyFuts) < spanCap {
		f.copyFuts = make([]*sim.Future, 0, spanCap)
	}
	futs := f.copyFuts[:0]
	f.fmEnterCmd()
	if f.fm.enabled && !srcInBuffer {
		// Flash-sourced copies resolve the source mapping first (a buffered
		// source reads through the DRAM cache and needs no translation);
		// the destination resolves inside the nested Write.
		futs = f.fmAccessRange(sFirst, sLast, true, futs)
	}
	f.epoch++
	for l := sFirst; l <= sLast && !srcInBuffer; l++ {
		if sid := f.l2p[l]; sid >= 0 && !f.isBuffered(sid) {
			pid := sid / int64(f.slotsPerPage)
			if f.pageEpoch[pid] != f.epoch {
				f.pageEpoch[pid] = f.epoch
				f.stats.ReadsByTag[tag]++
				block := int(pid / int64(f.pagesPerBlk))
				page := int(pid % int64(f.pagesPerBlk))
				futs = append(futs, f.readFlash(block, page, f.unit*f.slotsPerPage, true))
			}
		}
	}
	// ... then consecutive writes (with RMW for a partial destination
	// tail). As with Remap, the caller syncs the data stream once per
	// command so copies batch into full pages.
	futs = append(futs, f.Write(dst, n, tag, StreamData))
	all := sim.AfterAll(f.eng, futs)
	f.copyFuts = futs[:0]
	f.fmExitCmd()
	return delayedFuture(f.eng, all, delay)
}

// delayedFuture completes after both f completes and an extra fixed delay.
func delayedFuture(e *sim.Engine, f *sim.Future, delay sim.VTime) *sim.Future {
	if delay == 0 {
		return f
	}
	out := sim.NewFuture(e)
	f.OnComplete(func() { e.Schedule(delay, out.Complete) })
	return out
}

// ---------------------------------------------------------------------------
// garbage collection

func (f *FTL) maybeForegroundGC() {
	if f.gcDepth > 0 {
		return
	}
	low := f.cfg.GCLowWater
	if f.cfg.DeferGC {
		// Check-In defers reclamation to idle windows; keep a smaller
		// emergency reserve for the foreground path.
		low = max(2, low/2)
	}
	if f.freeCount >= low {
		return
	}
	f.gcDepth++
	for f.freeCount < f.cfg.GCHighWater {
		if !f.collectVictim() {
			break
		}
	}
	f.gcDepth--
	f.fmAfterGC()
}

// BackgroundGC reclaims up to maxVictims blocks if reclaimable space exists;
// the SSD's deallocator calls this from idle windows. Returns the number of
// blocks collected.
func (f *FTL) BackgroundGC(maxVictims int) int {
	// only collect cheap victims in the background: blocks that are
	// mostly invalid (journal blocks after a trim)
	return f.backgroundCollect(maxVictims, f.pagesPerBlk*f.slotsPerPage/4)
}

// BackgroundGCForce reclaims up to maxVictims blocks taking the best victim
// available regardless of its valid count — the deallocator's pressure
// path, paced in small batches so host I/O interleaves between victims.
func (f *FTL) BackgroundGCForce(maxVictims int) int {
	return f.backgroundCollect(maxVictims, 1<<30)
}

func (f *FTL) backgroundCollect(maxVictims, maxValid int) int {
	f.gcDepth++
	defer func() { f.gcDepth--; f.fmAfterGC() }()
	collected := 0
	for collected < maxVictims {
		v := f.pickVictim(maxValid)
		if v < 0 {
			break
		}
		f.collectBlock(v)
		collected++
	}
	return collected
}

// LowSpace reports whether free blocks dropped below the comfort threshold
// where background reclamation should run even without an idle window. The
// cushion is deliberately modest: demanding a large free pool would force
// collection of mostly-valid victims and thrash.
func (f *FTL) LowSpace() bool {
	cushion := f.totalBlocks / 16
	if min := 2 * f.cfg.GCHighWater; cushion < min {
		cushion = min
	}
	return f.freeCount < cushion
}

// collectVictim selects and collects the best victim; reports success.
func (f *FTL) collectVictim() bool {
	v := f.pickVictim(1 << 30)
	if v < 0 {
		return false
	}
	f.collectBlock(v)
	return true
}

// pickVictim returns the best closed victim under the configured policy,
// or -1 if no closed block has fewer than maxValid valid slots. Fully
// invalid blocks always win regardless of policy (free space at zero
// migration cost). Selection runs on the incrementally maintained victim
// index (victim.go); pickVictimScan is the O(totalBlocks) reference the
// index provably matches, retained as the differential-test oracle.
func (f *FTL) pickVictim(maxValid int) int {
	v := f.pick(maxValid)
	if f.victimOracle {
		if s := f.pickVictimScan(maxValid); s != v {
			panic(fmt.Sprintf("ftl: victim index diverged from scan: policy %s maxValid %d index %d scan %d",
				f.cfg.GCPolicy, maxValid, v, s))
		}
	}
	return v
}

// pickVictimScan is the linear-scan reference implementation of victim
// selection: ascending block index, first-encountered block wins ties.
func (f *FTL) pickVictimScan(maxValid int) int {
	best := -1
	bestValid := int32(maxValid)
	var bestWear uint32
	var bestScore float64
	var bestSeq int64
	slotsPerBlock := int32(f.pagesPerBlk * f.slotsPerPage)
	for b := 0; b < f.totalBlocks; b++ {
		if f.state[b] != blockClosed {
			continue
		}
		v := f.validCount[b]
		if v >= int32(maxValid) {
			continue
		}
		switch f.cfg.GCPolicy {
		case GCCostBenefit:
			if v == 0 { // free space at zero cost always wins
				return b
			}
			age := float64(f.closeClock - f.closedSeq[b] + 1)
			score := float64(slotsPerBlock-v) / float64(2*v) * age
			if best < 0 || score > bestScore {
				best, bestScore = b, score
			}
		case GCFIFO:
			if v == 0 {
				return b
			}
			if best < 0 || f.closedSeq[b] < bestSeq {
				best, bestSeq = b, f.closedSeq[b]
			}
		default: // GCGreedy
			w := f.array.EraseCount(b)
			if best < 0 || v < bestValid || (v == bestValid && w < bestWear) {
				best, bestValid, bestWear = b, v, w
			}
		}
	}
	return best
}

// collectBlock migrates the valid slots of block b and erases it.
func (f *FTL) collectBlock(b int) {
	if f.validCount[b] > 0 {
		f.stats.GCInvocations++
	} else {
		f.stats.DeadReclaims++
	}
	if f.cfg.Tracer != nil {
		f.cfg.Tracer.Emit(f.eng.Now(), trace.KindGCVictim, int64(b),
			fmt.Sprintf("valid=%d", f.validCount[b]))
	}
	// Detach the victim from the index for the duration of the collection:
	// migration mutates its valid count directly, and the invariant checker
	// tolerates exactly one detached closed block (gcVictim). Victims from
	// pickVictim are always closed and linked; the linked check keeps
	// direct collection of a still-open block (tests) legal.
	if f.vix.linked[b] {
		f.vixRemove(b)
	}
	prevVictim := f.gcVictim
	f.gcVictim = b
	f.migrateLive(b)
	if f.array.SampleEraseFail(b) {
		// The erase reported status FAIL: the block took the P/E stress but
		// never reached the erased state — retire it in place of freeing it.
		f.array.EraseFailedAttempt(b)
		if f.cfg.Tracer != nil {
			f.cfg.Tracer.Emit(f.eng.Now(), trace.KindEraseFail, int64(b), "")
		}
		f.retireBlock(b)
		f.cfg.Injector.Hit(inject.SiteEraseFail)
	} else {
		f.array.EraseBlockNoWait(b)
		f.releaseBlock(b)
	}
	f.gcVictim = prevVictim
	f.cfg.Injector.Hit(inject.SiteGCMigrate)
}

// migrateLive moves every live slot of block b onto the GC stream — a read
// pass (one flash read per page holding valid slots), a migrate pass that
// rebinds every logical reference (shared slots keep their sharing), and a
// GC-stream flush — then clears the block's recovery-log records. Callers
// hold gcDepth so the migration's own appends cannot recurse into GC.
func (f *FTL) migrateLive(b int) {
	slotsPerBlock := f.pagesPerBlk * f.slotsPerPage
	base := f.slotID(b, 0, 0)

	// translation pass: relocate live translation pages first (dftl mode) —
	// a victim may hold them alongside or instead of live data slots
	f.fmMigrateTrans(b)

	// read pass: one flash read per page holding any valid slot
	lastPage := -1
	for s := 0; s < slotsPerBlock; s++ {
		sid := base + int64(s)
		if f.refcnt[sid] == 0 {
			continue
		}
		if p := f.slotPage(sid); p != lastPage {
			lastPage = p
			f.stats.ReadsByTag[TagGC]++
			f.readFlash(b, p, f.array.Geometry().PageSize, false)
		}
	}
	// migrate pass: rewrite valid slots through the GC stream, moving
	// every logical reference (shared slots keep their sharing)
	for s := 0; s < slotsPerBlock; s++ {
		sid := base + int64(s)
		if f.refcnt[sid] == 0 {
			continue
		}
		luns := f.lunsOf(sid)
		// detach the old slot entirely before rebinding
		for _, lun := range luns {
			f.l2p[lun] = -1
			f.noteMapDirty(1)
		}
		if f.refcnt[sid] > 1 {
			if ov, ok := f.revOverflow[sid]; ok {
				f.recycleOv(ov)
				delete(f.revOverflow, sid)
			}
		}
		f.refcnt[sid] = 0
		f.rev[sid] = -1
		f.validCount[b]--

		newSid := f.appendSlot(StreamGC, luns[0], TagGC)
		f.stats.GCMigratedSlot++
		f.bindSlot(luns[0], newSid)
		for _, lun := range luns[1:] {
			f.shareSlot(lun, newSid)
		}
		f.rlog.preserveCopy(sid, newSid)
	}
	// flush the GC stream's partial pages so the block is safe to erase
	f.Sync(StreamGC, TagGC)
	f.validCount[b] = 0
	f.rlog.noteErase(base, int64(slotsPerBlock))
}

// HasCheapVictim reports whether background GC would find a cheap victim —
// a closed block with fewer than slotsPerBlock/4 valid slots, the same
// threshold BackgroundGC collects under. The deallocator probes this on
// every idle tick, which used to cost a full block scan; now it is O(1)
// plus the amortized cost of re-bucketing blocks invalidated since the
// last index read.
func (f *FTL) HasCheapVictim() bool {
	f.vixFlush()
	return f.vix.cheapCount > 0
}

// HasReclaimable reports whether background GC would find a cheap victim.
func (f *FTL) HasReclaimable() bool { return f.HasCheapVictim() }
