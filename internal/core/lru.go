package core

import "container/list"

// keyLRU is a bounded LRU set of record keys — the engine's host block
// cache (memtable) model. Only membership matters; values are not modeled.
type keyLRU struct {
	capacity int
	ll       *list.List
	index    map[int64]*list.Element
}

func newKeyLRU(capacity int) *keyLRU {
	return &keyLRU{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[int64]*list.Element, capacity),
	}
}

// touch reports whether key is cached, refreshing its recency.
func (c *keyLRU) touch(key int64) bool {
	el, ok := c.index[key]
	if ok {
		c.ll.MoveToFront(el)
	}
	return ok
}

// insert adds (or refreshes) key, evicting the coldest entry when full.
func (c *keyLRU) insert(key int64) {
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.index[key] = c.ll.PushFront(key)
	if c.ll.Len() > c.capacity {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.index, old.Value.(int64))
	}
}

// len returns the resident entry count.
func (c *keyLRU) len() int { return c.ll.Len() }
