package core

import "fmt"

// EngineState is a deep copy of the storage engine's mutable state at a
// quiescent instant: per-key version truth, journal placement and stats, a
// deep clone of the active JMT, checkpoint accounting and the host cache.
// Metrics are not captured — Run resets them — and neither is the RNG: it is
// never consulted before Run (Load is deterministic and client streams are
// Split from the seed at Run time), so a fork re-seeds from its own Config
// and may legitimately run a different seed than the template.
type EngineState struct {
	version []int64
	durable []int64
	ckpted  []int64
	deleted []bool

	ckptEpoch   uint64
	remapTotals remapStatsValue

	jrActive int
	jrHead   int64
	jrStats  JournalStats
	jmt      *JMT

	// hostCacheKeys lists resident keys oldest-first (front-insert replay
	// order), nil when the host cache is disabled.
	hostCacheKeys []int64
}

// remapStatsValue avoids importing ssd in the exported struct shape; it is
// the same value type as ssd.RemapStats.
type remapStatsValue = struct{ Remapped, RMWs, Skipped int }

// Snapshot captures the engine's mutable state. It must be called at a
// quiescent instant: no checkpoint running, no commit in flight, no buffered
// journal batch, no closed query gate. Anything else means live process
// stacks reference this state and the capture would be unsound.
func (en *Engine) Snapshot() (*EngineState, error) {
	switch {
	case en.ckptRunning || en.ckptSnapshot != nil:
		return nil, fmt.Errorf("core: snapshot during a checkpoint")
	case en.jr.commitInFlight || en.jr.cutting || len(en.jr.pending) > 0:
		return nil, fmt.Errorf("core: snapshot with journal activity in flight")
	case en.gateClosed:
		return nil, fmt.Errorf("core: snapshot with the query gate closed")
	}
	s := &EngineState{
		version: append([]int64(nil), en.version...),
		durable: append([]int64(nil), en.durable...),
		ckpted:  append([]int64(nil), en.ckpted...),
		deleted: append([]bool(nil), en.deleted...),

		ckptEpoch: en.ckptEpoch,
		remapTotals: remapStatsValue{
			Remapped: en.remapTotals.Remapped,
			RMWs:     en.remapTotals.RMWs,
			Skipped:  en.remapTotals.Skipped,
		},

		jrActive: en.jr.active,
		jrHead:   en.jr.head,
		jrStats:  en.jr.stats,
		jmt:      en.jr.jmt.clone(),
	}
	if en.hostCache != nil {
		s.hostCacheKeys = make([]int64, 0, en.hostCache.ll.Len())
		for el := en.hostCache.ll.Back(); el != nil; el = el.Prev() {
			s.hostCacheKeys = append(s.hostCacheKeys, el.Value.(int64))
		}
	}
	return s, nil
}

// Restore installs a previously captured state into en, which must be
// freshly constructed from the same Config shape (same Keys; layout is a
// pure function of configuration). The JMT is cloned again so the captured
// state stays pristine across any number of restores.
func (en *Engine) Restore(s *EngineState) error {
	if len(s.version) != len(en.version) {
		return fmt.Errorf("core: restore with %d keys into an engine with %d", len(s.version), len(en.version))
	}
	copy(en.version, s.version)
	copy(en.durable, s.durable)
	copy(en.ckpted, s.ckpted)
	copy(en.deleted, s.deleted)

	en.ckptEpoch = s.ckptEpoch
	en.remapTotals.Remapped = s.remapTotals.Remapped
	en.remapTotals.RMWs = s.remapTotals.RMWs
	en.remapTotals.Skipped = s.remapTotals.Skipped

	en.jr.active = s.jrActive
	en.jr.head = s.jrHead
	en.jr.stats = s.jrStats
	en.jr.jmt = s.jmt.clone()
	en.jr.pending = nil
	en.jr.nextBatch = nil
	en.jr.commitInFlight = false
	en.jr.inFlightDone = nil
	en.jr.cutting = false

	en.ckptRunning = false
	en.ckptDoneFut = nil
	en.ckptSnapshot = nil
	en.gateClosed = false
	en.gateOpen = nil

	if en.hostCache != nil {
		en.hostCache.ll.Init()
		clear(en.hostCache.index)
		for _, k := range s.hostCacheKeys {
			en.hostCache.index[k] = en.hostCache.ll.PushFront(k)
		}
	}
	en.metrics = newMetrics()
	return nil
}

// SnapshotState and RestoreState adapt Snapshot/Restore to the engine-
// agnostic host interface (checkin.HostEngine): each backend's state type
// travels as an opaque value and is checked back into shape on restore.

// SnapshotState captures the engine's mutable state as an opaque value.
func (en *Engine) SnapshotState() (any, error) { return en.Snapshot() }

// RestoreState installs a state previously captured by SnapshotState.
func (en *Engine) RestoreState(s any) error {
	st, ok := s.(*EngineState)
	if !ok {
		return fmt.Errorf("core: restore with a foreign engine state (%T)", s)
	}
	return en.Restore(st)
}
