package core

import (
	"fmt"
	"testing"

	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/stats"
	"github.com/checkin-kv/checkin/internal/workload"
)

// newTestEngine wires a small engine for a strategy.
func newTestEngine(t *testing.T, s Strategy, mut func(*Config)) (*sim.Engine, *Engine) {
	t.Helper()
	e, dev := newStack(t, s.DefaultMappingUnit())
	cfg := DefaultConfig()
	cfg.Strategy = s
	cfg.Keys = 2000
	cfg.Sizer = workload.FixedSizer{Size: 512}
	cfg.JournalHalfBytes = 4 << 20
	cfg.CheckpointInterval = 50 * sim.Millisecond
	if mut != nil {
		mut(&cfg)
	}
	en, err := NewEngine(e, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, en
}

func TestEngineRejectsBadConfig(t *testing.T) {
	e, dev := newStack(t, 512)
	cfg := DefaultConfig()
	cfg.Keys = 0
	if _, err := NewEngine(e, dev, cfg); err == nil {
		t.Error("bad config accepted")
	}
	// Layout too large for the device.
	cfg = DefaultConfig()
	cfg.Keys = 100_000_000
	if _, err := NewEngine(e, dev, cfg); err == nil {
		t.Error("oversized layout accepted")
	}
}

func TestUpdateThenGetUsesJournal(t *testing.T) {
	e, en := newTestEngine(t, StrategyCheckIn, nil)
	en.Load()
	runProc(e, func(p *sim.Proc) {
		en.Update(p, 7, 512)
		en.Get(p, 7)
	})
	if en.version[7] != 2 || en.durable[7] != 2 {
		t.Errorf("versions = %d/%d, want 2/2", en.version[7], en.durable[7])
	}
	if en.jr.JMT().Latest(7) == nil {
		t.Error("journal has no entry for the updated key")
	}
}

func TestCheckpointAppliesVersions(t *testing.T) {
	for _, s := range Strategies {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			e, en := newTestEngine(t, s, nil)
			en.Load()
			runProc(e, func(p *sim.Proc) {
				for i := int64(0); i < 50; i++ {
					en.Update(p, i, 512)
				}
				en.Update(p, 3, 512) // second version for key 3
				fut := en.TriggerCheckpoint()
				p.Wait(fut)
			})
			if en.ckptRunning {
				t.Fatal("checkpoint still running")
			}
			if en.ckpted[3] != 3 {
				t.Errorf("ckpted[3] = %d, want 3 (load 1 + 2 updates)", en.ckpted[3])
			}
			if en.ckpted[10] != 2 {
				t.Errorf("ckpted[10] = %d, want 2", en.ckpted[10])
			}
			if en.ckpted[1999] != 1 {
				t.Errorf("untouched key checkpointed to %d", en.ckpted[1999])
			}
			// JMT cleared into the new half.
			if en.jr.JMT().Len() != 0 {
				t.Error("active JMT not empty after checkpoint")
			}
			if en.Metrics().Checkpoints() != 0 {
				// metrics are reset by Run; TriggerCheckpoint records on
				// the current collector
				_ = en
			}
		})
	}
}

func TestCheckpointByStrategyFlashBehavior(t *testing.T) {
	// The defining asymmetry: copy-family strategies program checkpoint
	// pages; Check-In (aligned remap) barely does.
	programs := map[Strategy]uint64{}
	for _, s := range []Strategy{StrategyBaseline, StrategyISCB, StrategyCheckIn} {
		e, en := newTestEngine(t, s, nil)
		en.Load()
		pre := en.dev.FTL().Stats().ProgramsByTag[3-3] // placate linter; recomputed below
		_ = pre
		preCkpt := en.dev.FTL().Stats()
		runProc(e, func(p *sim.Proc) {
			for i := int64(0); i < 200; i++ {
				en.Update(p, i, 512)
			}
			p.Wait(en.TriggerCheckpoint())
		})
		post := en.dev.FTL().Stats()
		programs[s] = post.RedundantWrites() - preCkpt.RedundantWrites()
	}
	if programs[StrategyCheckIn] >= programs[StrategyBaseline]/4 {
		t.Errorf("Check-In redundant writes %d not ≪ baseline %d",
			programs[StrategyCheckIn], programs[StrategyBaseline])
	}
	if programs[StrategyISCB] == 0 {
		t.Error("ISC-B checkpoint did no device copies")
	}
}

func TestCheckInRemapSharing(t *testing.T) {
	e, en := newTestEngine(t, StrategyCheckIn, nil)
	en.Load()
	runProc(e, func(p *sim.Proc) {
		for i := int64(0); i < 100; i++ {
			en.Update(p, i, 512)
		}
		p.Wait(en.TriggerCheckpoint())
	})
	rt := en.RemapTotals()
	if rt.Remapped == 0 {
		t.Fatalf("no pure remaps recorded: %+v", rt)
	}
	if rt.RMWs > rt.Remapped/10 {
		t.Errorf("aligned 512B records should remap purely: %+v", rt)
	}
}

func TestISCCUnalignedRemapRMWs(t *testing.T) {
	e, en := newTestEngine(t, StrategyISCC, nil)
	en.Load()
	runProc(e, func(p *sim.Proc) {
		for i := int64(0); i < 100; i++ {
			en.Update(p, i, 512)
		}
		p.Wait(en.TriggerCheckpoint())
	})
	rt := en.RemapTotals()
	if rt.RMWs == 0 {
		t.Fatalf("ISC-C with header-offset logs should RMW: %+v", rt)
	}
}

func TestRunWorkloadBasics(t *testing.T) {
	e, en := newTestEngine(t, StrategyCheckIn, nil)
	_ = e
	en.Load()
	m, err := en.Run(RunSpec{Threads: 4, TotalQueries: 5000, Mix: workload.WorkloadA, Zipfian: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Queries != 5000 {
		t.Errorf("Queries = %d", m.Queries)
	}
	if m.ReadQueries == 0 || m.WriteQueries == 0 {
		t.Error("workload A must mix reads and writes")
	}
	rf := float64(m.ReadQueries) / float64(m.Queries)
	if rf < 0.45 || rf > 0.55 {
		t.Errorf("read fraction %.3f, want ~0.5", rf)
	}
	if m.Elapsed == 0 || m.ThroughputQPS() == 0 {
		t.Error("no elapsed time / throughput")
	}
	if m.Checkpoints() == 0 {
		t.Error("no checkpoints at 50ms interval")
	}
	if m.WriteQueryPayload == 0 {
		t.Error("write payload not accounted")
	}
	if m.AllLat.Count() != m.Queries {
		t.Errorf("latency samples %d != queries %d", m.AllLat.Count(), m.Queries)
	}
	if s := m.Summary(); len(s) < 100 {
		t.Errorf("Summary suspiciously short: %q", s)
	}
}

func TestRunRejectsBadSpec(t *testing.T) {
	_, en := newTestEngine(t, StrategyCheckIn, nil)
	en.Load()
	if _, err := en.Run(RunSpec{Threads: 0, TotalQueries: 10, Mix: workload.WorkloadA}); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestWorkloadFDoesRMW(t *testing.T) {
	_, en := newTestEngine(t, StrategyCheckIn, nil)
	en.Load()
	m, err := en.Run(RunSpec{Threads: 2, TotalQueries: 2000, Mix: workload.WorkloadF, Zipfian: false})
	if err != nil {
		t.Fatal(err)
	}
	// RMW counts as a write query; roughly half the total.
	wf := float64(m.WriteQueries) / float64(m.Queries)
	if wf < 0.42 || wf > 0.58 {
		t.Errorf("write (rmw) fraction %.3f, want ~0.5", wf)
	}
}

func TestDeterministicRuns(t *testing.T) {
	results := make([]string, 2)
	for i := range results {
		_, en := newTestEngine(t, StrategyCheckIn, nil)
		en.Load()
		m, err := en.Run(RunSpec{Threads: 4, TotalQueries: 3000, Mix: workload.WorkloadA, Zipfian: true})
		if err != nil {
			t.Fatal(err)
		}
		results[i] = fmt.Sprintf("%d %d %d %v %d %d",
			m.Queries, m.ReadQueries, m.WriteQueryPayload, m.Elapsed,
			m.FlashPrograms(), m.Checkpoints())
	}
	if results[0] != results[1] {
		t.Errorf("identical configs diverged:\n%s\n%s", results[0], results[1])
	}
}

func TestLockDuringCheckpointStallsQueries(t *testing.T) {
	_, en := newTestEngine(t, StrategyBaseline, func(c *Config) {
		c.LockDuringCheckpoint = true
	})
	en.Load()
	m, err := en.Run(RunSpec{Threads: 4, TotalQueries: 4000, Mix: workload.WorkloadWO, Zipfian: false})
	if err != nil {
		t.Fatal(err)
	}
	if m.Checkpoints() == 0 {
		t.Fatal("no checkpoints happened")
	}
	// With admission locked, the max write latency must cover at least
	// one checkpoint duration.
	maxCkpt := m.MaxCheckpointTime()
	if sim.VTime(m.WriteLat.Max()) < maxCkpt/2 {
		t.Errorf("max write latency %v does not reflect lock over checkpoint %v",
			sim.VTime(m.WriteLat.Max()), maxCkpt)
	}
}

func TestRecoveryMatchesDurableVersions(t *testing.T) {
	for _, s := range Strategies {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			_, en := newTestEngine(t, s, nil)
			en.Load()
			if _, err := en.Run(RunSpec{Threads: 4, TotalQueries: 4000, Mix: workload.WorkloadA, Zipfian: true}); err != nil {
				t.Fatal(err)
			}
			rep := en.SimulateRecovery()
			durable := en.DurableVersions()
			for k := range durable {
				if rep.Recovered[k] != durable[k] {
					t.Fatalf("key %d: recovered v%d, durable v%d",
						k, rep.Recovered[k], durable[k])
				}
			}
			if rep.FromCheckpoint == 0 {
				t.Error("recovery restored nothing from the checkpoint")
			}
		})
	}
}

func TestRecoveryMidCheckpoint(t *testing.T) {
	// Crash while a checkpoint is running: the snapshot half's logs are
	// still on flash, so recovery must see them.
	e, en := newTestEngine(t, StrategyBaseline, nil)
	en.Load()
	triggered := false
	runProc(e, func(p *sim.Proc) {
		for i := int64(0); i < 300; i++ {
			en.Update(p, i%50, 512)
		}
		en.TriggerCheckpoint()
		triggered = true
		// crash "now": do not wait for the checkpoint
	})
	if !triggered {
		t.Fatal("setup failed")
	}
	rep := en.SimulateRecovery()
	durable := en.DurableVersions()
	for k := 0; k < 50; k++ {
		if rep.Recovered[k] < durable[k] {
			t.Fatalf("key %d: recovered v%d < durable v%d", k, rep.Recovered[k], durable[k])
		}
	}
}

func TestUncommittedUpdatesNotRecovered(t *testing.T) {
	e, en := newTestEngine(t, StrategyCheckIn, nil)
	en.Load()
	// Append without driving the engine: logs buffered, not committed.
	done := false
	e.Go("writer", func(p *sim.Proc) {
		en.version[9]++
		en.jr.Append(9, en.version[9], 512)
		done = true
	})
	for !done {
		e.RunUntil(e.Now() + sim.Microsecond)
	}
	rep := en.SimulateRecovery()
	if rep.Recovered[9] != 1 {
		t.Errorf("uncommitted update recovered: v%d", rep.Recovered[9])
	}
	if en.InMemoryVersions()[9] != 2 {
		t.Errorf("in-memory version = %d, want 2", en.InMemoryVersions()[9])
	}
}

func TestJournalBackpressureTriggersCheckpoint(t *testing.T) {
	_, en := newTestEngine(t, StrategyCheckIn, func(c *Config) {
		c.JournalHalfBytes = 1 << 16 // 64 KB: fills fast
		c.CheckpointInterval = 10 * sim.Second
	})
	en.Load()
	m, err := en.Run(RunSpec{Threads: 4, TotalQueries: 3000, Mix: workload.WorkloadWO, Zipfian: false, DisableCheckpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	// 3000 × ~512B ≫ 64 KB half: the soft/full triggers must have fired.
	if m.Checkpoints() == 0 {
		t.Error("journal pressure never triggered a checkpoint")
	}
}

func TestDisableCheckpoints(t *testing.T) {
	_, en := newTestEngine(t, StrategyCheckIn, func(c *Config) {
		c.CheckpointInterval = 5 * sim.Millisecond
	})
	en.Load()
	m, err := en.Run(RunSpec{Threads: 2, TotalQueries: 500, Mix: workload.WorkloadA, Zipfian: false, DisableCheckpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Checkpoints() != 0 {
		t.Errorf("checkpoints ran despite DisableCheckpoints: %d", m.Checkpoints())
	}
}

func TestMeanHelpers(t *testing.T) {
	m := newMetrics()
	if m.MeanCheckpointTime() != 0 || m.MeanLiveRatio() != 0 {
		t.Error("empty metrics means should be 0")
	}
	m.noteCheckpoint(10 * sim.Millisecond)
	m.noteCheckpoint(30 * sim.Millisecond)
	if m.MeanCheckpointTime() != 20*sim.Millisecond {
		t.Errorf("MeanCheckpointTime = %v", m.MeanCheckpointTime())
	}
	m.noteLiveRatio(0.4)
	m.noteLiveRatio(0.6)
	if r := m.MeanLiveRatio(); r < 0.499 || r > 0.501 {
		t.Errorf("MeanLiveRatio = %v", r)
	}
	if m.MaxCheckpointTime() != 30*sim.Millisecond {
		t.Errorf("MaxCheckpointTime = %v", m.MaxCheckpointTime())
	}
}

func TestMetricsStreamingNoAllocs(t *testing.T) {
	// Checkpoint and live-ratio accounting is O(1): arbitrarily long runs
	// must not grow the metrics. (These used to append to unbounded slices.)
	m := newMetrics()
	if a := testing.AllocsPerRun(200, func() {
		m.noteCheckpoint(3 * sim.Millisecond)
		m.noteLiveRatio(0.25)
	}); a != 0 {
		t.Errorf("noteCheckpoint/noteLiveRatio allocate %v per call, want 0", a)
	}
}

func TestTimelineBoundedOnLongRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("long sampled run in -short mode")
	}
	// A sampling interval far below the run length overflows the timeline
	// cap many times over; retained rows must stay bounded while still
	// spanning the whole run.
	_, en := newTestEngine(t, StrategyCheckIn, nil)
	en.Load()
	m, err := en.Run(RunSpec{
		Threads: 4, TotalQueries: 10_000, Mix: workload.WorkloadA, Zipfian: true,
		SampleInterval: 2 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := m.Timeline.Len()
	if n > stats.DefaultTimelineCap {
		t.Errorf("timeline rows = %d exceed cap %d", n, stats.DefaultTimelineCap)
	}
	if n < stats.DefaultTimelineCap/2 {
		t.Errorf("timeline rows = %d, want saturation (>= %d) at this sampling rate",
			n, stats.DefaultTimelineCap/2)
	}
	last, _ := m.Timeline.At(n - 1)
	if sim.VTime(last) < m.Elapsed/2 {
		t.Errorf("timeline ends at %v, run elapsed %v", sim.VTime(last), m.Elapsed)
	}
}

func TestAdaptiveLiveBudgetBoundsCheckpointWork(t *testing.T) {
	run := func(budget int) *Metrics {
		_, en := newTestEngine(t, StrategyCheckIn, func(c *Config) {
			c.CheckpointInterval = 10 * sim.Second // periodic trigger ~never fires
			c.AdaptiveLiveBudget = budget
		})
		en.Load()
		m, err := en.Run(RunSpec{Threads: 8, TotalQueries: 8000, Mix: workload.WorkloadWO, Zipfian: true})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	fixed := run(0)
	adaptive := run(500)
	if adaptive.Checkpoints() <= fixed.Checkpoints() {
		t.Errorf("adaptive policy did not add checkpoints: %d vs %d",
			adaptive.Checkpoints(), fixed.Checkpoints())
	}
	// Bounded work: even the longest adaptive checkpoint stays small.
	if d := adaptive.MaxCheckpointTime(); d > 100*sim.Millisecond {
		t.Errorf("adaptive checkpoint took %v, budget not bounding work", d)
	}
}

func TestTimelineSampling(t *testing.T) {
	_, en := newTestEngine(t, StrategyCheckIn, nil)
	en.Load()
	m, err := en.Run(RunSpec{
		Threads: 4, TotalQueries: 4000, Mix: workload.WorkloadA, Zipfian: true,
		SampleInterval: 5 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Timeline == nil || m.Timeline.Len() == 0 {
		t.Fatal("timeline not sampled")
	}
	s, err := m.Timeline.Series("kqps")
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, y := range s.Y {
		sum += y
	}
	if sum <= 0 {
		t.Error("timeline recorded no throughput")
	}
}

func TestTraceReplayIdenticalAcrossStrategies(t *testing.T) {
	// Record one op stream, replay it against two configurations: both
	// must execute exactly the same queries.
	gen, err := workload.NewGenerator(workload.Uniform{Keys: 2000},
		workload.FixedSizer{Size: 512}, workload.WorkloadA, sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.RecordTrace(gen, 3000)

	var payloads [2]uint64
	for i, s := range []Strategy{StrategyBaseline, StrategyCheckIn} {
		_, en := newTestEngine(t, s, nil)
		en.Load()
		m, err := en.Run(RunSpec{Threads: 4, TotalQueries: 99999, Trace: trace})
		if err != nil {
			t.Fatal(err)
		}
		if m.Queries != 3000 {
			t.Fatalf("%v replayed %d queries, want 3000", s, m.Queries)
		}
		payloads[i] = m.WriteQueryPayload
	}
	if payloads[0] != payloads[1] {
		t.Errorf("replayed write payloads differ: %d vs %d", payloads[0], payloads[1])
	}
}

func TestHostCacheServesHotReads(t *testing.T) {
	run := func(entries int) (*Metrics, sim.VTime) {
		_, en := newTestEngine(t, StrategyCheckIn, func(c *Config) {
			c.HostCacheEntries = entries
		})
		en.Load()
		m, err := en.Run(RunSpec{Threads: 4, TotalQueries: 6000, Mix: workload.WorkloadA, Zipfian: true})
		if err != nil {
			t.Fatal(err)
		}
		return m, sim.VTime(m.ReadLat.Mean())
	}
	cold, coldLat := run(0)
	if cold.HostCacheHits != 0 {
		t.Error("hits recorded with cache disabled")
	}
	warm, warmLat := run(1000) // half the key space: zipfian hot set fits
	if warm.HostCacheHits == 0 {
		t.Fatal("no host cache hits under zipfian traffic")
	}
	if warmLat >= coldLat {
		t.Errorf("host cache did not reduce read latency: %v vs %v", warmLat, coldLat)
	}
}

func TestKeyLRUSemantics(t *testing.T) {
	c := newKeyLRU(2)
	c.insert(1)
	c.insert(2)
	if !c.touch(1) {
		t.Fatal("1 missing")
	}
	c.insert(3) // evicts 2 (1 was refreshed)
	if c.touch(2) {
		t.Error("2 should have been evicted")
	}
	if !c.touch(1) || !c.touch(3) {
		t.Error("1 and 3 should be resident")
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}
	c.insert(3) // refresh, no growth
	if c.len() != 2 {
		t.Errorf("len after refresh = %d", c.len())
	}
}

func TestScanWorkloadE(t *testing.T) {
	_, en := newTestEngine(t, StrategyCheckIn, nil)
	en.Load()
	preReads := en.dev.FTL().Array().Stats().Reads
	m, err := en.Run(RunSpec{Threads: 4, TotalQueries: 1500, Mix: workload.WorkloadE, Zipfian: false})
	if err != nil {
		t.Fatal(err)
	}
	// Scans count as read queries (~95%).
	rf := float64(m.ReadQueries) / float64(m.Queries)
	if rf < 0.9 {
		t.Errorf("scan fraction %.2f, want ~0.95", rf)
	}
	if en.dev.FTL().Array().Stats().Reads == preReads {
		t.Error("scans issued no flash reads")
	}
	// A 50-record scan moves ~25 KB over the link even when fully cached:
	// its latency must comfortably exceed the host-issue overhead alone.
	if m.ReadLat.Mean() < 20_000 { // > 20µs
		t.Errorf("scan mean latency %.0fns implausibly low", m.ReadLat.Mean())
	}
}

func TestScanClampsAtKeySpaceEnd(t *testing.T) {
	e, en := newTestEngine(t, StrategyCheckIn, nil)
	en.Load()
	runProc(e, func(p *sim.Proc) {
		en.Scan(p, en.cfg.Keys-3, 50)  // clamped to 3 records
		en.Scan(p, en.cfg.Keys+10, 10) // start clamped to last key
		en.Scan(p, 0, 0)               // n clamped to 1
	})
}

func TestDeleteJournalsTombstone(t *testing.T) {
	e, en := newTestEngine(t, StrategyCheckIn, nil)
	en.Load()
	runProc(e, func(p *sim.Proc) {
		en.Delete(p, 42)
	})
	if !en.deleted[42] {
		t.Error("deleted flag not set")
	}
	if en.version[42] != 2 || en.durable[42] != 2 {
		t.Errorf("tombstone version = %d/%d, want 2/2", en.version[42], en.durable[42])
	}
	e2 := en.jr.JMT().Latest(42)
	if e2 == nil || e2.payload != tombstoneBytes {
		t.Fatalf("tombstone journal entry wrong: %+v", e2)
	}
	// Tombstones checkpoint and recover like any update.
	runProc(e, func(p *sim.Proc) {
		p.Wait(en.TriggerCheckpoint())
	})
	rep := en.SimulateRecovery()
	if rep.Recovered[42] != 2 {
		t.Errorf("tombstone not recovered: v%d", rep.Recovered[42])
	}
}

func TestDeleteMixInWorkload(t *testing.T) {
	_, en := newTestEngine(t, StrategyCheckIn, nil)
	en.Load()
	mix := workload.Mix{ReadPct: 50, UpdatePct: 40, DeletePct: 10}
	m, err := en.Run(RunSpec{Threads: 4, TotalQueries: 2000, Mix: mix, Zipfian: false})
	if err != nil {
		t.Fatal(err)
	}
	wf := float64(m.WriteQueries) / float64(m.Queries)
	if wf < 0.45 || wf > 0.55 {
		t.Errorf("write (update+delete) fraction %.2f, want ~0.5", wf)
	}
}

func TestLatestDistributionWorkloadD(t *testing.T) {
	_, en := newTestEngine(t, StrategyCheckIn, nil)
	en.Load()
	m, err := en.Run(RunSpec{Threads: 4, TotalQueries: 4000, Mix: workload.WorkloadD, Latest: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Queries != 4000 {
		t.Errorf("Queries = %d", m.Queries)
	}
	// 95% reads of recently updated keys: the journal read path dominates.
	rf := float64(m.ReadQueries) / float64(m.Queries)
	if rf < 0.9 {
		t.Errorf("read fraction %.2f, want ~0.95", rf)
	}
}
