package core

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/workload"
)

// layoutInvariants checks the journal-placement invariants over every
// committed entry of a table:
//  1. entries never overlap,
//  2. every entry lies inside its half,
//  3. aligned mode: FULL entries are unit-aligned with unit-multiple
//     stored sizes; merged entries never straddle a unit boundary,
//  4. stored size covers the payload (minus inline header bookkeeping in
//     conventional mode, where stored includes the header).
func layoutInvariants(t *testing.T, j *journal, entries []*jmtEntry, half int) {
	t.Helper()
	start := j.layout.JournalStart(half)
	end := start + j.layout.JournalHalfBytes
	type span struct{ lo, hi int64 }
	var spans []span
	for _, e := range entries {
		if !e.committed {
			continue
		}
		lo := e.off
		var hi int64
		if j.aligned {
			hi = e.off + int64(e.stored)
			if e.typ == LogFull {
				if e.off%j.unit != 0 {
					t.Fatalf("FULL entry at unaligned offset %d", e.off)
				}
				if int64(e.stored)%j.unit != 0 {
					t.Fatalf("FULL entry stored %d not a unit multiple", e.stored)
				}
			} else {
				if e.off/j.unit != (e.off+int64(e.stored)-1)/j.unit {
					t.Fatalf("merged entry [%d,%d) straddles a unit boundary", e.off, hi)
				}
			}
			if int64(e.stored) < int64(e.payload) {
				// compression may shrink large payloads
				if int64(e.payload) <= j.unit {
					t.Fatalf("stored %d < payload %d without compression", e.stored, e.payload)
				}
			}
		} else {
			// conventional: off points at the payload, after the header
			lo = e.off - j.header
			hi = lo + int64(e.stored)
			if int64(e.stored) != j.header+int64(e.payload) {
				t.Fatalf("conventional stored %d != header %d + payload %d", e.stored, j.header, e.payload)
			}
		}
		if lo < start || hi > end {
			t.Fatalf("entry [%d,%d) outside half [%d,%d)", lo, hi, start, end)
		}
		spans = append(spans, span{lo, hi})
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].lo < spans[b].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			t.Fatalf("entries overlap: [%d,%d) and [%d,%d)",
				spans[i-1].lo, spans[i-1].hi, spans[i].lo, spans[i].hi)
		}
	}
}

func TestJournalLayoutPropertyConventional(t *testing.T) {
	journalLayoutProperty(t, false)
}

func TestJournalLayoutPropertyAligned(t *testing.T) {
	journalLayoutProperty(t, true)
}

func journalLayoutProperty(t *testing.T, aligned bool) {
	err := quick.Check(func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 200 {
			sizes = sizes[:200]
		}
		e, dev := newStack(t, 512)
		l, err := NewLayout(dev.LogicalBytes(), 4096, workload.FixedSizer{Size: 4096}, 4<<20, 512)
		if err != nil {
			t.Fatal(err)
		}
		j := newJournal(e, dev, l, aligned, 16, 0.85)
		if aligned {
			j.header = 0
		}
		for i, s := range sizes {
			payload := int(s)%4096 + 1
			j.Append(int64(i%4096), int64(i), payload)
			if i%17 == 0 {
				e.Run() // let some batches commit mid-stream
			}
		}
		e.Run()
		layoutInvariants(t, j, j.JMT().Entries(), j.active)
		return !t.Failed()
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestRandomCrashRecoveryProperty(t *testing.T) {
	// Property: crash at an arbitrary point in a run — mid-commit,
	// mid-checkpoint, right after a trim — and the recovery protocol
	// reconstructs exactly the durable versions.
	err := quick.Check(func(seed int64, stopAfter uint16) bool {
		_, en := newTestEngine(t, StrategyCheckIn, func(c *Config) {
			c.Seed = seed&0x7fffffff + 1
			c.CheckpointInterval = 20 * sim.Millisecond
		})
		en.Load()
		// run a truncated workload: crash after stopAfter queries
		queries := int64(stopAfter)%4000 + 100
		if _, err := en.Run(RunSpec{Threads: 4, TotalQueries: queries,
			Mix: workload.WorkloadWO, Zipfian: true}); err != nil {
			t.Fatal(err)
		}
		rep := en.SimulateRecovery()
		for k, v := range en.DurableVersions() {
			if rep.Recovered[k] != v {
				t.Logf("seed %d, queries %d: key %d recovered v%d durable v%d",
					seed, queries, k, rep.Recovered[k], v)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Error(err)
	}
}
