package core

import (
	"testing"

	"github.com/checkin-kv/checkin/internal/ftl"
	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
	"github.com/checkin-kv/checkin/internal/workload"
)

// newStack wires a small simulated device for white-box engine tests.
func newStack(t *testing.T, unit int) (*sim.Engine, *ssd.Device) {
	t.Helper()
	e := sim.NewEngine()
	geo := nand.Geometry{
		Channels: 2, PackagesPerChannel: 1, DiesPerPackage: 2, PlanesPerDie: 2,
		BlocksPerPlane: 64, PagesPerBlock: 32, PageSize: 4096,
	}
	tim := nand.Timing{
		ReadPage: 50 * sim.Microsecond, ProgramPage: 500 * sim.Microsecond,
		EraseBlock: 3 * sim.Millisecond, CmdOverhead: sim.Microsecond, ChannelMBps: 400,
	}
	arr, err := nand.New(e, geo, tim)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := ftl.DefaultConfig()
	fcfg.UnitSize = unit
	fcfg.OverProvision = 0.15
	fcfg.Parallelism = 4
	f, err := ftl.New(e, arr, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := ssd.DefaultConfig()
	dcfg.DeallocatorPeriod = 0
	dcfg.CacheBytes = 1 << 20
	d, err := ssd.New(e, f, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

func testLayout(t *testing.T, dev *ssd.Device, keys int64, recSize int, slotAlign int64) *Layout {
	t.Helper()
	l, err := NewLayout(dev.LogicalBytes(), keys, workload.FixedSizer{Size: recSize}, 1<<20, slotAlign)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// runProc executes fn as a simulated process and drives the engine until it
// finishes.
func runProc(e *sim.Engine, fn func(p *sim.Proc)) {
	done := false
	e.Go("test", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	for !done {
		e.RunUntil(e.Now() + 50*sim.Millisecond)
	}
}

func TestJournalConventionalLayout(t *testing.T) {
	e, dev := newStack(t, 512)
	l := testLayout(t, dev, 100, 512, 512)
	j := newJournal(e, dev, l, false, 16, 0.85)

	e1, f1 := j.Append(0, 2, 500)
	e2, f2 := j.Append(1, 2, 300)
	e.Run()
	if !f1.Done() || !f2.Done() {
		t.Fatal("commits never completed")
	}
	if !e1.committed || !e2.committed {
		t.Error("entries not marked committed")
	}
	// contiguous: header(16)+500 then header+300
	if e1.off != 16 {
		t.Errorf("e1.off = %d, want 16", e1.off)
	}
	if e1.stored != 516 || e2.stored != 316 {
		t.Errorf("stored = %d,%d", e1.stored, e2.stored)
	}
	if e2.off != 516+16 {
		t.Errorf("e2.off = %d, want 532", e2.off)
	}
	if j.UsedBytes() != 832 {
		t.Errorf("UsedBytes = %d", j.UsedBytes())
	}
	st := j.Stats()
	if st.Logs != 2 || st.PayloadBytes != 800 || st.StoredBytes != 832 {
		t.Errorf("stats = %+v", st)
	}
}

func TestJournalAlignedLayoutClasses(t *testing.T) {
	e, dev := newStack(t, 512)
	l := testLayout(t, dev, 100, 4096, 512)
	j := newJournal(e, dev, l, true, 0, 0.85)

	// Algorithm 2 size classes at unit 512: 128/256/384/512.
	cases := []struct {
		payload    int
		wantStored int
		wantType   LogType
	}{
		{100, 128, LogMerged},
		{128, 128, LogMerged},
		{200, 256, LogMerged},
		{400, 512, LogFull},
		{512, 512, LogFull},
	}
	var entries []*jmtEntry
	for i, c := range cases {
		en, _ := j.Append(int64(i), 2, c.payload)
		entries = append(entries, en)
		_ = c
	}
	e.Run()
	for i, c := range cases {
		if entries[i].stored != c.wantStored {
			t.Errorf("payload %d: stored = %d, want %d", c.payload, entries[i].stored, c.wantStored)
		}
		if entries[i].typ != c.wantType {
			t.Errorf("payload %d: type = %v, want %v", c.payload, entries[i].typ, c.wantType)
		}
	}
	// Every FULL entry must be unit-aligned.
	for _, en := range entries {
		if en.typ == LogFull && en.off%512 != 0 {
			t.Errorf("FULL log at unaligned offset %d", en.off)
		}
	}
	// Merged partials pack into shared sectors. The first append commits
	// alone (group commit starts immediately when idle); the remaining
	// logs form one batch, whose partials (128 and 256 bytes stored)
	// share a sector.
	if entries[1].off/512 != entries[2].off/512 {
		t.Error("partial logs not packed into one sector")
	}
	if entries[2].off != entries[1].off+128 {
		t.Errorf("second partial at %d, want %d", entries[2].off, entries[1].off+128)
	}
	if j.Stats().MergedUnits == 0 {
		t.Error("no merged units counted")
	}
}

func TestJournalAlignedCompression(t *testing.T) {
	e, dev := newStack(t, 512)
	l := testLayout(t, dev, 100, 4096, 512)
	j := newJournal(e, dev, l, true, 0, 0.5)
	en, _ := j.Append(0, 2, 2000) // 2000×0.5 = 1000 → 1024 stored
	e.Run()
	if en.stored != 1024 {
		t.Errorf("compressed stored = %d, want 1024", en.stored)
	}
	if en.typ != LogFull {
		t.Errorf("compressed log type = %v", en.typ)
	}
	if j.Stats().Compressed != 1 {
		t.Error("compression not counted")
	}
}

func TestJournalSpaceOverheadAlignedVsConventional(t *testing.T) {
	// Aligned journaling pays padding; conventional pays headers. For
	// 100-byte values padding dominates.
	e1, dev1 := newStack(t, 512)
	l1 := testLayout(t, dev1, 100, 4096, 512)
	ja := newJournal(e1, dev1, l1, true, 0, 0.85)
	e2, dev2 := newStack(t, 512)
	l2 := testLayout(t, dev2, 100, 4096, 512)
	jc := newJournal(e2, dev2, l2, false, 16, 0.85)
	for i := 0; i < 50; i++ {
		ja.Append(int64(i), 2, 100)
		jc.Append(int64(i), 2, 100)
	}
	e1.Run()
	e2.Run()
	if ja.Stats().SpaceOverhead() <= jc.Stats().SpaceOverhead() {
		t.Errorf("aligned overhead %.3f should exceed conventional %.3f for tiny values",
			ja.Stats().SpaceOverhead(), jc.Stats().SpaceOverhead())
	}
	// But both overheads stay bounded (< 2x for 100-byte logs: 128-class).
	if ja.Stats().SpaceOverhead() > 1.5 {
		t.Errorf("aligned overhead %.3f implausibly high", ja.Stats().SpaceOverhead())
	}
}

func TestJournalGroupCommitBatches(t *testing.T) {
	e, dev := newStack(t, 512)
	l := testLayout(t, dev, 100, 512, 512)
	j := newJournal(e, dev, l, false, 16, 0.85)
	// Appending many logs without running the engine: the first starts a
	// commit; the rest buffer into one subsequent batch.
	var futs []*sim.Future
	for i := 0; i < 20; i++ {
		_, f := j.Append(int64(i%10), int64(i), 200)
		futs = append(futs, f)
	}
	e.Run()
	for i, f := range futs {
		if !f.Done() {
			t.Fatalf("log %d never committed", i)
		}
	}
	st := j.Stats()
	if st.Commits > 3 {
		t.Errorf("Commits = %d, want <= 3 (group commit)", st.Commits)
	}
	// JMT: 10 keys, 20 entries, 10 live.
	if j.JMT().Len() != 20 || j.JMT().Live() != 10 {
		t.Errorf("JMT len/live = %d/%d", j.JMT().Len(), j.JMT().Live())
	}
}

func TestJournalCutForCheckpoint(t *testing.T) {
	e, dev := newStack(t, 512)
	l := testLayout(t, dev, 100, 512, 512)
	j := newJournal(e, dev, l, false, 16, 0.85)

	for i := 0; i < 10; i++ {
		j.Append(int64(i), 2, 300)
	}
	// Cut while commits are still in flight.
	var snap ckptSnapshot
	runProc(e, func(p *sim.Proc) {
		snap = j.CutForCheckpoint(p)
	})
	if snap.jmt.Len() != 10 {
		t.Errorf("snapshot has %d entries, want 10", snap.jmt.Len())
	}
	for _, en := range snap.jmt.Entries() {
		if !en.committed {
			t.Error("snapshot contains uncommitted entry after cut")
		}
		if en.off < snap.used+l.JournalStart(snap.half) == false && en.off >= l.JournalStart(snap.half)+snap.used {
			t.Errorf("entry offset %d outside old half usage %d", en.off, snap.used)
		}
	}
	if snap.half != 0 || j.active != 1 {
		t.Errorf("halves not rotated: snap.half=%d active=%d", snap.half, j.active)
	}
	if j.head != 0 {
		t.Errorf("new half head = %d, want 0", j.head)
	}
	if j.JMT().Len() != 0 {
		t.Error("new JMT not empty")
	}
	// Appends after the cut land in the new half.
	en, f := j.Append(50, 2, 300)
	e.Run()
	if !f.Done() {
		t.Fatal("post-cut commit never completed")
	}
	if en.off < l.JournalStart(1) {
		t.Errorf("post-cut entry at %d, not in half 1", en.off)
	}
	if j.Stats().HalfSwitches != 1 {
		t.Errorf("HalfSwitches = %d", j.Stats().HalfSwitches)
	}
}

func TestJournalCutUnderLoad(t *testing.T) {
	// The cut must complete even while writers keep appending — the
	// livelock this design exists to prevent.
	e, dev := newStack(t, 512)
	l := testLayout(t, dev, 1000, 512, 512)
	j := newJournal(e, dev, l, false, 16, 0.85)

	stop := false
	for w := 0; w < 4; w++ {
		w := w
		e.Go("writer", func(p *sim.Proc) {
			for i := 0; !stop && i < 10000; i++ {
				_, f := j.Append(int64((w*250+i)%1000), int64(i), 300)
				p.Wait(f)
			}
		})
	}
	cutDone := false
	e.Go("cutter", func(p *sim.Proc) {
		p.Sleep(5 * sim.Millisecond)
		j.CutForCheckpoint(p)
		cutDone = true
		stop = true
	})
	for !cutDone {
		e.RunUntil(e.Now() + 10*sim.Millisecond)
		if e.Now() > 10*sim.Second {
			t.Fatal("cut did not complete under load (livelock)")
		}
	}
}

func TestWouldOverflow(t *testing.T) {
	e, dev := newStack(t, 512)
	l, err := NewLayout(dev.LogicalBytes(), 10, workload.FixedSizer{Size: 512}, 1<<16, 512)
	if err != nil {
		t.Fatal(err)
	}
	j := newJournal(e, dev, l, false, 16, 0.85)
	if j.WouldOverflow(512) {
		t.Error("empty journal reports overflow")
	}
	// Fill close to the 64 KB half.
	for i := 0; i < 100; i++ {
		j.Append(int64(i%10), int64(i), 512)
		e.Run()
	}
	if !j.WouldOverflow(16384) {
		t.Errorf("nearly full half (used %d of %d) does not report overflow",
			j.UsedBytes(), l.JournalHalfBytes)
	}
}
