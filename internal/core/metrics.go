package core

import (
	"fmt"
	"strings"

	"github.com/checkin-kv/checkin/internal/ftl"
	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
	"github.com/checkin-kv/checkin/internal/stats"
	"github.com/checkin-kv/checkin/internal/workload"
)

// Metrics collects everything one measured run produces: per-query latency
// histograms split by kind and by checkpoint overlap, checkpoint durations,
// and before/after snapshots of device, FTL and flash counters so that all
// amplification numbers cover exactly the measured window.
type Metrics struct {
	Elapsed sim.VTime

	Queries      uint64
	ReadQueries  uint64
	WriteQueries uint64
	// WriteQueryPayload is the raw bytes write queries asked to store —
	// the denominator of the paper's amplification figures.
	WriteQueryPayload uint64

	ReadLat      stats.Histogram
	WriteLat     stats.Histogram
	ReadLatCkpt  stats.Histogram // reads overlapping a checkpoint
	WriteLatCkpt stats.Histogram
	AllLat       stats.Histogram

	// CkptDur is a streaming histogram of checkpoint durations (ns). Its
	// exact count/sum/max replace the unbounded per-checkpoint slice the
	// metrics used to keep: a multi-hour trace with tight checkpoint
	// intervals now costs O(1) memory. MeanCheckpointTime stays
	// bit-identical — the same integer sum over the same count.
	CkptDur stats.Histogram

	// Live-ratio samples stream into an exact running sum/count (the mean
	// folds additions in the same order the old slice-walk did, so the
	// reported value is bit-identical).
	LiveRatioSum   float64
	LiveRatioCount uint64

	// HostCacheHits counts reads served from the host block cache.
	HostCacheHits uint64

	// RejectedWrites counts write queries refused because the device
	// degraded to read-only mode (NAND spare pool exhausted).
	RejectedWrites uint64

	// Timeline holds periodic samples when RunSpec.SampleInterval is set.
	Timeline *stats.Timeline

	startDev  ssd.Stats
	startFtl  ftl.Stats
	startNand nand.Stats
	startTime sim.VTime

	EndDev  ssd.Stats
	EndFtl  ftl.Stats
	EndNand nand.Stats

	JournalStart JournalStats
	JournalEnd   JournalStats
}

func newMetrics() *Metrics { return &Metrics{} }

// NewMetrics returns an empty collector. Alternate host engines
// (internal/lsm) construct their own and fill it through the exported
// window/note methods so every backend reports through one format.
func NewMetrics() *Metrics { return &Metrics{} }

// BeginWindow snapshots device, FTL and flash counters at the start of a
// measured run. jr carries the journaling-layer counters at the same
// instant (an LSM backend reports its WAL counters through the same shape).
func (m *Metrics) BeginWindow(dev *ssd.Device, jr JournalStats, now sim.VTime) {
	m.startDev = dev.Stats()
	m.startFtl = dev.FTL().Stats()
	m.startNand = dev.FTL().Array().Stats()
	m.JournalStart = jr
	m.startTime = now
}

// EndWindow closes the measured window opened by BeginWindow.
func (m *Metrics) EndWindow(dev *ssd.Device, jr JournalStats, endTime sim.VTime) {
	m.EndDev = dev.Stats()
	m.EndFtl = dev.FTL().Stats()
	m.EndNand = dev.FTL().Array().Stats()
	m.JournalEnd = jr
	if endTime > m.startTime {
		m.Elapsed = endTime - m.startTime
	}
}

// NoteQuery records one finished query (exported for alternate engines).
func (m *Metrics) NoteQuery(op workload.Op, lat sim.VTime, duringCkpt bool) {
	m.noteQuery(op, lat, duringCkpt)
}

// NoteCheckpoint records one finished checkpoint's duration.
func (m *Metrics) NoteCheckpoint(d sim.VTime) { m.noteCheckpoint(d) }

// NoteLiveRatio records a live-entry ratio sample at a checkpoint.
func (m *Metrics) NoteLiveRatio(r float64) { m.noteLiveRatio(r) }

func (m *Metrics) start(en *Engine) {
	m.BeginWindow(en.dev, en.jr.Stats(), en.eng.Now())
}

func (m *Metrics) finish(en *Engine, endTime sim.VTime) {
	m.EndWindow(en.dev, en.jr.Stats(), endTime)
}

func (m *Metrics) noteQuery(op workload.Op, lat sim.VTime, duringCkpt bool) {
	m.Queries++
	m.AllLat.Record(uint64(lat))
	isWrite := op.Kind != workload.OpRead && op.Kind != workload.OpScan
	if isWrite {
		m.WriteQueries++
		m.WriteQueryPayload += uint64(op.Size)
		m.WriteLat.Record(uint64(lat))
		if duringCkpt {
			m.WriteLatCkpt.Record(uint64(lat))
		}
	} else {
		m.ReadQueries++
		m.ReadLat.Record(uint64(lat))
		if duringCkpt {
			m.ReadLatCkpt.Record(uint64(lat))
		}
	}
}

func (m *Metrics) noteCheckpoint(d sim.VTime) {
	m.CkptDur.Record(uint64(d))
}

func (m *Metrics) noteLiveRatio(r float64) {
	m.LiveRatioSum += r
	m.LiveRatioCount++
}

// Checkpoints returns the number of completed checkpoints.
func (m *Metrics) Checkpoints() int { return int(m.CkptDur.Count()) }

// MeanCheckpointTime returns the average checkpoint duration.
func (m *Metrics) MeanCheckpointTime() sim.VTime {
	if m.CkptDur.Count() == 0 {
		return 0
	}
	return sim.VTime(m.CkptDur.Sum() / m.CkptDur.Count())
}

// MaxCheckpointTime returns the longest checkpoint duration.
func (m *Metrics) MaxCheckpointTime() sim.VTime { return sim.VTime(m.CkptDur.Max()) }

// MeanLiveRatio returns the average latest/total JMT ratio at checkpoints.
func (m *Metrics) MeanLiveRatio() float64 {
	if m.LiveRatioCount == 0 {
		return 0
	}
	return m.LiveRatioSum / float64(m.LiveRatioCount)
}

// ThroughputQPS returns queries per simulated second.
func (m *Metrics) ThroughputQPS() float64 {
	if m.Elapsed == 0 {
		return 0
	}
	return float64(m.Queries) / m.Elapsed.Seconds()
}

// MeanLatency returns the mean query latency.
func (m *Metrics) MeanLatency() sim.VTime { return sim.VTime(m.AllLat.Mean()) }

// Device/FTL/flash deltas over the measured window.

// HostWriteBytes returns host-link write traffic during the run.
func (m *Metrics) HostWriteBytes() uint64 { return m.EndDev.HostWriteBytes - m.startDev.HostWriteBytes }

// HostReadBytes returns host-link read traffic during the run.
func (m *Metrics) HostReadBytes() uint64 { return m.EndDev.HostReadBytes - m.startDev.HostReadBytes }

// FlashPrograms returns flash program operations during the run.
func (m *Metrics) FlashPrograms() uint64 { return m.EndNand.Programs - m.startNand.Programs }

// FlashReads returns flash read operations during the run.
func (m *Metrics) FlashReads() uint64 { return m.EndNand.Reads - m.startNand.Reads }

// FlashErases returns block erases during the run.
func (m *Metrics) FlashErases() uint64 { return m.EndNand.Erases - m.startNand.Erases }

// FlashProgramBytes returns bytes programmed during the run.
func (m *Metrics) FlashProgramBytes() uint64 {
	return m.EndNand.BytesProgrammed - m.startNand.BytesProgrammed
}

// FlashReadBytes returns bytes read from flash during the run.
func (m *Metrics) FlashReadBytes() uint64 { return m.EndNand.BytesRead - m.startNand.BytesRead }

// GCCount returns migrating GC invocations during the run.
func (m *Metrics) GCCount() uint64 { return m.EndFtl.GCInvocations - m.startFtl.GCInvocations }

// Reclaims returns all block reclamations during the run (migrating GCs
// plus trivially erased fully-invalid blocks). In steady state this tracks
// blocks consumed by programs and is robust to when the collector happened
// to run within the measured window.
func (m *Metrics) Reclaims() uint64 {
	return m.EndFtl.GCInvocations + m.EndFtl.DeadReclaims -
		m.startFtl.GCInvocations - m.startFtl.DeadReclaims
}

// RedundantWrites returns checkpoint- and GC-induced duplicate programs,
// the paper's Figure 8(a) metric.
func (m *Metrics) RedundantWrites() uint64 {
	return m.EndFtl.RedundantWrites() - m.startFtl.RedundantWrites()
}

// CheckpointPrograms returns programs caused directly by checkpointing.
func (m *Metrics) CheckpointPrograms() uint64 {
	return m.EndFtl.ProgramsByTag[ftl.TagCheckpoint] - m.startFtl.ProgramsByTag[ftl.TagCheckpoint]
}

// IOAmplification returns total host I/O bytes over write-query payload
// bytes (Figure 3(a) "I/O requests").
func (m *Metrics) IOAmplification() float64 {
	if m.WriteQueryPayload == 0 {
		return 0
	}
	return float64(m.HostWriteBytes()+m.HostReadBytes()) / float64(m.WriteQueryPayload)
}

// FlashAmplification returns flash traffic bytes over write-query payload
// bytes (Figure 3(a) "flash operations").
func (m *Metrics) FlashAmplification() float64 {
	if m.WriteQueryPayload == 0 {
		return 0
	}
	return float64(m.FlashProgramBytes()+m.FlashReadBytes()) / float64(m.WriteQueryPayload)
}

// JournalSpaceOverhead returns stored/payload for the run's journal window.
func (m *Metrics) JournalSpaceOverhead() float64 {
	d := JournalStats{
		PayloadBytes: m.JournalEnd.PayloadBytes - m.JournalStart.PayloadBytes,
		StoredBytes:  m.JournalEnd.StoredBytes - m.JournalStart.StoredBytes,
	}
	return d.SpaceOverhead()
}

// Summary renders a human-readable digest.
func (m *Metrics) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "elapsed            %v\n", m.Elapsed)
	fmt.Fprintf(&b, "queries            %d (%.0f qps)\n", m.Queries, m.ThroughputQPS())
	fmt.Fprintf(&b, "mean latency       %v\n", m.MeanLatency())
	fmt.Fprintf(&b, "read p99.9         %v\n", sim.VTime(m.ReadLat.Percentile(99.9)))
	fmt.Fprintf(&b, "write p99.9        %v\n", sim.VTime(m.WriteLat.Percentile(99.9)))
	fmt.Fprintf(&b, "checkpoints        %d (mean %v)\n", m.Checkpoints(), m.MeanCheckpointTime())
	fmt.Fprintf(&b, "io amplification   %.2fx\n", m.IOAmplification())
	fmt.Fprintf(&b, "flash amplification %.2fx\n", m.FlashAmplification())
	fmt.Fprintf(&b, "redundant writes   %d\n", m.RedundantWrites())
	fmt.Fprintf(&b, "gc invocations     %d\n", m.GCCount())
	if m.RejectedWrites > 0 {
		fmt.Fprintf(&b, "rejected writes    %d (device read-only)\n", m.RejectedWrites)
	}
	// dftl-mode translation traffic (all counters zero in dram mode, so the
	// dram summary stays byte-identical).
	if flushes := m.EndFtl.TransFlushes - m.startFtl.TransFlushes; flushes > 0 {
		hits := m.EndFtl.CMTHits - m.startFtl.CMTHits
		misses := m.EndFtl.CMTMisses - m.startFtl.CMTMisses
		ratio := 0.0
		if hits+misses > 0 {
			ratio = float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(&b, "cmt hit ratio      %.4f (%d misses, %d evictions)\n",
			ratio, misses, m.EndFtl.CMTEvictions-m.startFtl.CMTEvictions)
		fmt.Fprintf(&b, "translation pages  %d flushed, %d read, %d gc-migrated\n",
			flushes, m.EndFtl.TransReads-m.startFtl.TransReads,
			m.EndFtl.TransMigrated-m.startFtl.TransMigrated)
		// Origin attribution: translation reads split into host demand
		// fetches, flush read-modify-writes and GC relocation reads; the
		// trailing counters are device-internal CMT updates (GC rebinding,
		// writeback-triggered dirtying) — the hit ratio above counts only
		// the host lookup path.
		fmt.Fprintf(&b, "trans read origin  %d host, %d flush-rmw, %d gc; internal cmt %d hits, %d misses\n",
			m.EndFtl.TransReadsHost-m.startFtl.TransReadsHost,
			m.EndFtl.TransReadsRMW-m.startFtl.TransReadsRMW,
			m.EndFtl.TransReadsGC-m.startFtl.TransReadsGC,
			m.EndFtl.CMTHitsGC-m.startFtl.CMTHitsGC,
			m.EndFtl.CMTMissesGC-m.startFtl.CMTMissesGC)
	}
	return b.String()
}
