package core

import (
	"testing"

	"github.com/checkin-kv/checkin/internal/sim"
)

// TestCheckpointCutSnapshotVisibility is the minimized regression for a
// recovery bug surfaced by the crash injector: a crash at the
// journal-commit site while a checkpoint cut was in flight (the ckpt-cut
// window) recovered stale versions. CutForCheckpoint rotates the active
// JMT synchronously, then yields waiting for the old half's tail flush;
// the engine used to publish ckptSnapshot only after the cut returned, so
// during those waits the old half's committed logs were invisible to both
// Get() and recovery — a window in which a real crash would lose acked
// writes. The snapshot must be published before the cut begins.
func TestCheckpointCutSnapshotVisibility(t *testing.T) {
	e, en := newTestEngine(t, StrategyCheckIn, nil)
	en.Load()

	committed := make([]int64, en.cfg.Keys)
	for k := range committed {
		committed[k] = 1 // Load leaves every key durable at version 1
	}
	en.SetCommitHook(func(key, version int64) {
		if version > committed[key] {
			committed[key] = version
		}
	})

	// Writers keep group commits in flight so the cut has a batch to wait
	// on — that wait is the vulnerable window.
	for w := 0; w < 8; w++ {
		w := w
		e.Go("writer", func(p *sim.Proc) {
			for i := int64(0); i < 200; i++ {
				en.Update(p, (int64(w)*200+i)%en.cfg.Keys, 512)
			}
		})
	}
	observedWindow := false
	validate := func() {
		recovered := en.RecoveredVersions()
		for k := range committed {
			if recovered[k] != committed[k] {
				t.Fatalf("during checkpoint cut: key %d recovered v%d, committed v%d (site ckpt-cut window)",
					k, recovered[k], committed[k])
			}
		}
	}
	for step := 0; step < 20_000 && e.LiveProcs() > 0; step++ {
		e.RunUntil(e.Now() + 20*sim.Microsecond)
		if en.jr.cutting {
			observedWindow = true
			validate()
		}
		if step%500 == 100 && !en.ckptRunning {
			en.TriggerCheckpoint()
		}
	}
	if !observedWindow {
		t.Fatal("test never observed the checkpoint-cut window; tune the workload")
	}
	// After the run drains, recovery still matches the committed prefix.
	for guard := 0; (en.ckptRunning || e.LiveProcs() > 0) && guard < 100_000; guard++ {
		e.RunUntil(e.Now() + sim.Millisecond)
	}
	validate()
}
