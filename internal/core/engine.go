package core

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
	"github.com/checkin-kv/checkin/internal/stats"
	"github.com/checkin-kv/checkin/internal/trace"
	"github.com/checkin-kv/checkin/internal/workload"
)

// Config parameterizes the storage engine.
type Config struct {
	Strategy Strategy

	// Keys and Sizer define the record population.
	Keys  int64
	Sizer workload.Sizer

	// JournalHalfBytes is the capacity of each journal half (the paper's
	// journal-file cap: checkpointing triggers before a half fills).
	JournalHalfBytes int64

	// CheckpointInterval triggers periodic checkpoints (60 s in the
	// paper; experiments scale it to the simulated run length).
	CheckpointInterval sim.VTime

	// JournalSoftFrac triggers an early checkpoint when the active half
	// passes this fill fraction.
	JournalSoftFrac float64

	// LockDuringCheckpoint stalls query admission while a checkpoint
	// runs — the paper's method for measuring pure checkpointing time.
	LockDuringCheckpoint bool

	// InlineHeaderBytes is the per-log header of the conventional journal
	// format.
	InlineHeaderBytes int64

	// CompressRatio models Algorithm 2's compression of logs larger than
	// the mapping unit.
	CompressRatio float64

	// Strategy tuning knobs.
	CkptReadWindow int // baseline: in-flight reads/writes
	CkptCoWWindow  int // ISC-A: in-flight CoW commands
	MultiCoWBatch  int // ISC-B: pairs per command
	CkptCmdBatch   int // ISC-C / Check-In: JMT entries per command

	// HostIOOverhead is the host-side software cost of issuing one block
	// I/O (syscall + block layer + driver). It is what makes per-log host
	// round trips expensive and function offloading attractive (Fig. 4).
	HostIOOverhead sim.VTime

	// HostCacheEntries bounds an LRU of record values resident in host
	// memory (the memtable / block cache of a real engine): reads of
	// cached keys skip the device entirely. 0 disables the cache, which
	// keeps the paper's device-centric read model; enable it to study how
	// host caching shifts the bottleneck.
	HostCacheEntries int

	// Tracer, when non-nil, receives checkpoint and journal events.
	Tracer *trace.Tracer

	// Injector, when set, receives crash-injection hits at the engine-level
	// sites (journal append/commit, checkpoint cut/apply). Nil in
	// production.
	Injector *inject.Injector

	// AdaptiveLiveBudget, when positive, adds a bounded-work checkpoint
	// policy on top of the periodic interval: a checkpoint triggers as
	// soon as the JMT accumulates this many live (latest-version)
	// entries, capping per-checkpoint work regardless of skew. This is an
	// extension beyond the paper's fixed-interval scheduler, motivated by
	// its observation that the live-entry count — not the journal size —
	// determines checkpoint cost.
	AdaptiveLiveBudget int

	Seed int64
}

// DefaultConfig returns engine defaults mirroring Table I's DBMS settings,
// scaled to simulator-friendly sizes.
func DefaultConfig() Config {
	return Config{
		Strategy:           StrategyCheckIn,
		Keys:               50_000,
		Sizer:              workload.NewMixSizer("default-small", []int{128, 256, 384, 512, 1024, 2048}, []int{2, 2, 1, 3, 1, 1}),
		JournalHalfBytes:   32 << 20,
		CheckpointInterval: sim.Second,
		JournalSoftFrac:    0.7,
		InlineHeaderBytes:  16,
		CompressRatio:      0.85,
		CkptReadWindow:     1024,
		CkptCoWWindow:      128,
		MultiCoWBatch:      64,
		CkptCmdBatch:       128,
		HostIOOverhead:     10 * sim.Microsecond,
		Seed:               1,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.Strategy >= numStrategies {
		return fmt.Errorf("core: unknown strategy %d", c.Strategy)
	}
	if c.Keys < 1 {
		return fmt.Errorf("core: Keys %d must be >= 1", c.Keys)
	}
	if c.Sizer == nil {
		return fmt.Errorf("core: Sizer is required")
	}
	if c.JournalHalfBytes < 1<<16 {
		return fmt.Errorf("core: JournalHalfBytes %d too small", c.JournalHalfBytes)
	}
	if c.JournalSoftFrac <= 0 || c.JournalSoftFrac >= 1 {
		return fmt.Errorf("core: JournalSoftFrac %v out of (0,1)", c.JournalSoftFrac)
	}
	if c.CompressRatio <= 0 || c.CompressRatio > 1 {
		return fmt.Errorf("core: CompressRatio %v out of (0,1]", c.CompressRatio)
	}
	if c.CheckpointInterval == 0 {
		return fmt.Errorf("core: CheckpointInterval must be positive")
	}
	return nil
}

// Engine is the Check-In storage engine bound to one simulated device.
type Engine struct {
	eng *sim.Engine
	dev *ssd.Device
	cfg Config

	layout *Layout
	jr     *journal
	ckpt   checkpointer

	// version truth: in-memory, durable (journaled+committed), and
	// checkpointed (data area) — the recovery model.
	version []int64
	durable []int64
	ckpted  []int64
	deleted []bool

	// checkpoint state
	ckptRunning  bool
	ckptEpoch    uint64
	ckptDoneFut  *sim.Future
	ckptSnapshot *JMT // old-half JMT readable while its checkpoint runs
	remapTotals  ssd.RemapStats

	// query gate for LockDuringCheckpoint
	gateClosed bool
	gateOpen   *sim.Future

	hostCache *keyLRU

	metrics *Metrics
	rng     *sim.RNG
}

// NewEngine builds an engine over dev. The device's FTL mapping unit must
// already reflect the strategy (see Strategy.DefaultMappingUnit).
func NewEngine(eng *sim.Engine, dev *ssd.Device, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	unit := int64(dev.FTL().UnitSize())
	slotAlign := int64(hostSector)
	if cfg.Strategy.UsesRemap() && unit > slotAlign {
		// remapping requires unit-aligned record slots
		slotAlign = unit
	}
	layout, err := NewLayout(dev.LogicalBytes(), cfg.Keys, cfg.Sizer, cfg.JournalHalfBytes, slotAlign)
	if err != nil {
		return nil, err
	}
	en := &Engine{
		eng:     eng,
		dev:     dev,
		cfg:     cfg,
		layout:  layout,
		version: make([]int64, cfg.Keys),
		durable: make([]int64, cfg.Keys),
		ckpted:  make([]int64, cfg.Keys),
		deleted: make([]bool, cfg.Keys),
		metrics: newMetrics(),
		rng:     sim.NewRNG(cfg.Seed),
	}
	header := cfg.InlineHeaderBytes
	if cfg.Strategy.SectorAligned() {
		header = 0 // Check-In keeps log descriptors in the JMT, not inline
	}
	en.jr = newJournal(eng, dev, layout, cfg.Strategy.SectorAligned(), header, cfg.CompressRatio)
	en.jr.tracer = cfg.Tracer
	en.jr.injector = cfg.Injector
	if cfg.HostCacheEntries > 0 {
		en.hostCache = newKeyLRU(cfg.HostCacheEntries)
	}
	en.ckpt = newCheckpointer(cfg.Strategy, cfg)
	return en, nil
}

// Layout exposes the space layout (reporting, tests).
func (en *Engine) Layout() *Layout { return en.layout }

// Device exposes the underlying device (reporting).
func (en *Engine) Device() *ssd.Device { return en.dev }

// Sim exposes the simulation engine.
func (en *Engine) Sim() *sim.Engine { return en.eng }

// Metrics exposes the live metrics collector.
func (en *Engine) Metrics() *Metrics { return en.metrics }

// JournalStats returns journaling counters.
func (en *Engine) JournalStats() JournalStats { return en.jr.Stats() }

// RemapTotals returns accumulated remap results across checkpoints.
func (en *Engine) RemapTotals() ssd.RemapStats { return en.remapTotals }

// SetCommitHook installs fn to observe every journal log the instant its
// group commit becomes durable (before the waiting client wakes). The
// crash-consistency reference model (internal/check) uses it to track the
// committed prefix.
func (en *Engine) SetCommitHook(fn func(key, version int64)) { en.jr.onCommit = fn }

// ---------------------------------------------------------------------------
// load phase

// Load bulk-populates the data area with every record at version 1 using
// large sequential writes, the standard YCSB load phase. It must run before
// queries; it is excluded from metrics (snapshots are taken at run start).
func (en *Engine) Load() {
	const chunk = 1 << 20
	done := false
	en.eng.Go("load", func(p *sim.Proc) {
		// Back-pressure via periodic flushes: a write's future only
		// completes once its page programs, which for sub-page mapping
		// units may require the flush that closes the partial tail page.
		issued := 0
		for off := en.layout.DataStart; off < en.layout.DataEnd; off += chunk {
			n := int64(chunk)
			if off+n > en.layout.DataEnd {
				n = en.layout.DataEnd - off
			}
			en.dev.Write(off, n, ssd.AreaData)
			if issued++; issued%16 == 0 {
				p.Wait(en.dev.Flush(ssd.AreaData))
			}
		}
		p.Wait(en.dev.Flush(ssd.AreaData))
		done = true
	})
	for !done {
		en.eng.RunUntil(en.eng.Now() + 100*sim.Millisecond)
	}
	for k := range en.version {
		en.version[k] = 1
		en.durable[k] = 1
		en.ckpted[k] = 1
	}
}

// ---------------------------------------------------------------------------
// query paths (called from client processes)

// gate blocks the process while query admission is locked (checkpoint
// locking mode).
func (en *Engine) gate(p *sim.Proc) {
	for en.gateClosed {
		p.Wait(en.gateOpen)
	}
}

// Get executes a read query: the newest version lives either in the active
// journal, in the journal half being checkpointed, or in the data area.
func (en *Engine) Get(p *sim.Proc, key int64) {
	en.gate(p)
	if en.hostCache != nil && en.hostCache.touch(key) {
		en.metrics.HostCacheHits++
		return // value resident in host memory
	}
	defer func() {
		if en.hostCache != nil {
			en.hostCache.insert(key)
		}
	}()
	if e := en.jr.JMT().Latest(key); e != nil {
		if !e.committed {
			// still in the engine's memory buffer: no device access
			return
		}
		p.Sleep(en.cfg.HostIOOverhead)
		p.Wait(en.dev.Read(e.off, int64(e.payload)))
		return
	}
	if en.ckptSnapshot != nil {
		if e := en.ckptSnapshot.Latest(key); e != nil {
			p.Sleep(en.cfg.HostIOOverhead)
			p.Wait(en.dev.Read(e.off, int64(e.payload)))
			return
		}
	}
	off, size := en.layout.Record(key)
	p.Sleep(en.cfg.HostIOOverhead)
	p.Wait(en.dev.Read(off, int64(size)))
}

// Update executes a write query: journal the new version (write-ahead) and
// wait for its group commit.
func (en *Engine) Update(p *sim.Proc, key int64, size int) {
	en.gate(p)
	if en.dev.ReadOnly() {
		// The device degraded to read-only (spare blocks exhausted): refuse
		// the write instead of journaling an update that cannot persist.
		// Reads keep being served — graceful degradation.
		en.metrics.RejectedWrites++
		return
	}
	// If the active half cannot absorb the log, stall until the running
	// checkpoint frees the alternate half (back-pressure).
	for en.jr.WouldOverflow(size) {
		fut := en.TriggerCheckpoint()
		p.Wait(fut)
	}
	en.version[key]++
	v := en.version[key]
	if en.hostCache != nil {
		en.hostCache.insert(key) // freshly written value stays in memory
	}
	_, commit := en.jr.Append(key, v, size)
	if en.jr.UsedFrac() > en.cfg.JournalSoftFrac && !en.ckptRunning {
		en.TriggerCheckpoint()
	}
	p.Wait(commit)
	if v > en.durable[key] {
		en.durable[key] = v
	}
}

// Put is Update under the engine-agnostic host interface's name.
func (en *Engine) Put(p *sim.Proc, key int64, size int) { en.Update(p, key, size) }

// Sync blocks p until every journal log appended so far is durable — the
// write-ahead group commits drain. Update already waits for its own commit,
// so Sync matters only to callers pacing explicit durability epochs (the
// cross-engine equivalence oracle).
func (en *Engine) Sync(p *sim.Proc) {
	for en.jr.commitInFlight || len(en.jr.pending) > 0 {
		if en.jr.inFlightDone != nil {
			p.Wait(en.jr.inFlightDone)
		} else {
			p.Sleep(sim.Microsecond) // batch buffered behind a checkpoint cut
		}
	}
}

// ReadModifyWrite executes YCSB-F's read-modify-write.
func (en *Engine) ReadModifyWrite(p *sim.Proc, key int64, size int) {
	en.Get(p, key)
	en.Update(p, key, size)
}

// Scan executes a range read of n consecutive records starting at key
// (YCSB-E). The data-area portion is one sequential device read; records
// whose newest version still lives in the journal are read individually.
func (en *Engine) Scan(p *sim.Proc, key int64, n int) {
	en.gate(p)
	if n < 1 {
		n = 1
	}
	if key >= en.cfg.Keys {
		key = en.cfg.Keys - 1
	}
	if key+int64(n) > en.cfg.Keys {
		n = int(en.cfg.Keys - key)
	}
	startOff, _ := en.layout.Record(key)
	lastOff, lastSize := en.layout.Record(key + int64(n) - 1)
	p.Sleep(en.cfg.HostIOOverhead)
	futs := []*sim.Future{en.dev.Read(startOff, lastOff+int64(lastSize)-startOff)}
	for k := key; k < key+int64(n); k++ {
		if e := en.jr.JMT().Latest(k); e != nil && e.committed {
			futs = append(futs, en.dev.Read(e.off, int64(e.payload)))
		}
	}
	p.WaitAll(futs)
}

// tombstoneBytes is the journaled size of a deletion marker.
const tombstoneBytes = 16

// Delete journals a tombstone for key: deletions ride the same write-ahead
// and checkpoint paths as updates, with a minimal payload.
func (en *Engine) Delete(p *sim.Proc, key int64) {
	en.Update(p, key, tombstoneBytes)
	en.deleted[key] = true
}

// ---------------------------------------------------------------------------
// checkpointing

// CheckpointRunning reports whether a checkpoint is in progress.
func (en *Engine) CheckpointRunning() bool { return en.ckptRunning }

// TriggerCheckpoint starts a checkpoint unless one is already running, and
// returns a future completing when the (possibly already running) checkpoint
// finishes.
func (en *Engine) TriggerCheckpoint() *sim.Future {
	if en.ckptRunning {
		return en.ckptDoneFut
	}
	en.ckptRunning = true
	en.ckptEpoch++
	en.ckptDoneFut = sim.NewFuture(en.eng)
	done := en.ckptDoneFut
	if en.cfg.LockDuringCheckpoint {
		en.gateClosed = true
		en.gateOpen = sim.NewFuture(en.eng)
	}
	en.eng.Go("checkpoint", func(p *sim.Proc) {
		start := p.Now()
		// Publish the snapshot BEFORE the cut: CutForCheckpoint rotates the
		// active JMT synchronously but then yields waiting for the old
		// half's tail flush, and during those waits the old half's
		// committed logs must stay visible to Get() and to recovery — they
		// are the newest durable versions until the checkpoint applies.
		// (Assigning the snapshot only after the cut returned left a window
		// where they were invisible to both; the ckpt-cut injection site
		// caught it.)
		en.ckptSnapshot = en.jr.JMT()
		snap := en.jr.CutForCheckpoint(p)
		en.cfg.Tracer.Emit(start, trace.KindCheckpointBegin, int64(snap.jmt.Live()),
			fmt.Sprintf("entries=%d used=%dKB", snap.jmt.Len(), snap.used>>10))
		en.metrics.noteLiveRatio(snap.jmt.LiveRatio())
		if snap.jmt.Live() > 0 {
			en.ckpt.Run(p, en, snap)
			// apply: the data area now holds the checkpointed versions
			for _, e := range snap.jmt.Entries() {
				if !e.old && e.version > en.ckpted[e.key] {
					en.ckpted[e.key] = e.version
				}
			}
			en.cfg.Injector.Hit(inject.SiteCheckpointApply)
			// the journal half is no longer needed: deallocate it
			if snap.used > 0 {
				trimLen := roundUp(snap.used, int64(en.dev.FTL().UnitSize()))
				p.Wait(en.dev.Deallocate(en.layout.JournalStart(snap.half), trimLen))
			}
		}
		en.ckptSnapshot = nil
		en.metrics.noteCheckpoint(p.Now() - start)
		en.cfg.Tracer.Emit(p.Now(), trace.KindCheckpointEnd, int64(p.Now()-start), "")
		en.ckptRunning = false
		en.ckptEpoch++
		if en.cfg.LockDuringCheckpoint {
			en.gateClosed = false
			en.gateOpen.Complete()
		}
		done.Complete()
	})
	return done
}

// ---------------------------------------------------------------------------
// workload runner

// RunSpec describes one measured workload phase.
type RunSpec struct {
	Threads      int
	TotalQueries int64
	Mix          workload.Mix
	// Zipfian selects the key distribution (θ = 0.99) vs uniform.
	Zipfian bool
	// Latest selects YCSB's latest distribution (requests skew toward
	// recently updated keys; pair with WorkloadD). Overrides Zipfian.
	Latest bool
	// DisableCheckpoints turns the periodic scheduler off (for baselines
	// of the motivation study).
	DisableCheckpoints bool

	// SampleInterval enables timeline sampling at the given period
	// (windowed throughput, checkpoint activity, die backlog, free
	// blocks). Zero disables sampling.
	SampleInterval sim.VTime

	// Trace, when non-nil, replays a recorded operation stream instead of
	// generating operations: every run sees byte-identical inputs, the
	// strictest way to compare configurations. TotalQueries caps at the
	// trace length; Mix and Zipfian are ignored.
	Trace *workload.Trace
}

// Validate reports a descriptive error for unusable specs.
func (rs RunSpec) Validate() error {
	if rs.Threads < 1 {
		return fmt.Errorf("core: Threads %d must be >= 1", rs.Threads)
	}
	if rs.TotalQueries < 1 {
		return fmt.Errorf("core: TotalQueries %d must be >= 1", rs.TotalQueries)
	}
	if rs.Trace != nil {
		return nil // mix is ignored under replay
	}
	return rs.Mix.Validate()
}

// Run executes the workload to completion and returns the metrics. The
// engine may be Run multiple times; metrics cover only the last run.
func (en *Engine) Run(spec RunSpec) (*Metrics, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	en.metrics = newMetrics()
	m := en.metrics
	m.start(en)

	var dist workload.Distribution
	var latest *workload.Latest
	switch {
	case spec.Latest:
		latest = workload.NewLatest(en.cfg.Keys, 1024)
		dist = latest
	case spec.Zipfian:
		dist = workload.NewZipfian(en.cfg.Keys, workload.DefaultTheta)
	default:
		dist = workload.Uniform{Keys: en.cfg.Keys}
	}

	// Under trace replay all clients pull from one shared replayer — the
	// single-worker simulation makes this race-free and deterministic.
	var replay *workload.Replayer
	if spec.Trace != nil {
		replay = workload.NewReplayer(spec.Trace)
		if n := int64(len(spec.Trace.Ops)); spec.TotalQueries > n {
			spec.TotalQueries = n
		}
	}

	remaining := spec.TotalQueries
	clientsLeft := spec.Threads
	runDone := false
	var endTime sim.VTime

	for t := 0; t < spec.Threads; t++ {
		mix := spec.Mix
		if replay != nil {
			mix = workload.WorkloadA // unused under replay, must validate
		}
		gen, err := workload.NewGenerator(dist, en.cfg.Sizer, mix,
			en.rng.Split(fmt.Sprintf("client-%d", t)))
		if err != nil {
			return nil, err
		}
		en.eng.Go(fmt.Sprintf("client-%d", t), func(p *sim.Proc) {
			for remaining > 0 {
				remaining--
				var op workload.Op
				if replay != nil {
					op = replay.Next()
				} else {
					op = gen.Next()
				}
				start := p.Now()
				epoch0 := en.ckptEpoch
				switch op.Kind {
				case workload.OpRead:
					en.Get(p, op.Key)
				case workload.OpUpdate:
					en.Update(p, op.Key, op.Size)
					if latest != nil {
						latest.Note(op.Key)
					}
				case workload.OpReadModifyWrite:
					en.ReadModifyWrite(p, op.Key, op.Size)
				case workload.OpScan:
					en.Scan(p, op.Key, op.ScanLen)
				case workload.OpDelete:
					en.Delete(p, op.Key)
				}
				during := en.ckptRunning || en.ckptEpoch != epoch0
				m.noteQuery(op, p.Now()-start, during)
			}
			clientsLeft--
			if clientsLeft == 0 {
				endTime = p.Now()
				runDone = true
			}
		})
	}

	// timeline sampler
	if spec.SampleInterval > 0 {
		m.Timeline = stats.NewTimeline("kqps", "ckpt_active", "die_backlog_us", "free_blocks")
		lastQueries := uint64(0)
		start := en.eng.Now()
		var sample func()
		sample = func() {
			if runDone {
				return
			}
			now := en.eng.Now()
			window := spec.SampleInterval.Seconds()
			qps := float64(m.Queries-lastQueries) / window
			lastQueries = m.Queries
			active := 0.0
			if en.ckptRunning {
				active = 1
			}
			backlog := en.dev.FTL().Array().MaxBacklog(now).Micros()
			m.Timeline.Sample(uint64(now-start), qps/1e3, active, backlog,
				float64(en.dev.FTL().FreeBlocks()))
			en.eng.Schedule(spec.SampleInterval, sample)
		}
		en.eng.Schedule(spec.SampleInterval, sample)
	}

	// periodic checkpoint scheduler (event-based: no leaked process)
	if !spec.DisableCheckpoints {
		var tick func()
		tick = func() {
			if runDone {
				return
			}
			if !en.ckptRunning {
				en.TriggerCheckpoint()
			}
			en.eng.Schedule(en.cfg.CheckpointInterval, tick)
		}
		en.eng.Schedule(en.cfg.CheckpointInterval, tick)

		// bounded-work policy: poll the live-entry count at a fine grain
		// and checkpoint early whenever the budget is reached
		if en.cfg.AdaptiveLiveBudget > 0 {
			period := en.cfg.CheckpointInterval / 16
			if period == 0 || period > 10*sim.Millisecond {
				period = 10 * sim.Millisecond
			}
			var poll func()
			poll = func() {
				if runDone {
					return
				}
				if !en.ckptRunning && en.jr.JMT().Live() >= en.cfg.AdaptiveLiveBudget {
					en.TriggerCheckpoint()
				}
				en.eng.Schedule(period, poll)
			}
			en.eng.Schedule(period, poll)
		}
	}

	for !runDone {
		en.eng.RunUntil(en.eng.Now() + 50*sim.Millisecond)
	}
	// drain the in-flight checkpoint and any straggling processes
	for guard := 0; (en.ckptRunning || en.eng.LiveProcs() > 0) && guard < 1_000_000; guard++ {
		en.eng.RunUntil(en.eng.Now() + 10*sim.Millisecond)
	}
	m.finish(en, endTime)
	return m, nil
}

// ---------------------------------------------------------------------------
// crash recovery

// RecoveryReport describes a simulated crash-recovery pass.
type RecoveryReport struct {
	Recovered        []int64 // per-key recovered version
	ReplayedLogs     int
	FromCheckpoint   int64 // keys restored purely from the last checkpoint
	RecoveryTime     sim.VTime
	JournalBytesRead int64
}

// recoverReport is the pure core of SimulateRecovery: what a restarted
// instance would reconstruct from the last checkpoint plus committed journal
// logs, with no simulated time charged. Safe to call from inside an engine
// event (the crash-injection harness does).
func (en *Engine) recoverReport() *RecoveryReport {
	rep := &RecoveryReport{Recovered: make([]int64, en.cfg.Keys)}
	copy(rep.Recovered, en.ckpted)
	for k := range rep.Recovered {
		if rep.Recovered[k] > 0 {
			rep.FromCheckpoint++
		}
	}
	replay := func(t *JMT) {
		if t == nil {
			return
		}
		for _, e := range t.Entries() {
			if !e.committed {
				continue // lost with the crash
			}
			rep.ReplayedLogs++
			rep.JournalBytesRead += int64(e.stored)
			if e.version > rep.Recovered[e.key] {
				rep.Recovered[e.key] = e.version
			}
		}
	}
	// A half being checkpointed still has its logs on flash until the
	// deallocate lands, so both tables replay.
	replay(en.ckptSnapshot)
	replay(en.jr.JMT())
	return rep
}

// RecoveredVersions returns the per-key versions a crash at the current
// instant would recover to (host replay), without modeling recovery time.
func (en *Engine) RecoveredVersions() []int64 {
	return en.recoverReport().Recovered
}

// SimulateRecovery models a crash at the current instant: all volatile
// state (memtable, uncommitted logs) is lost; the data structure is rebuilt
// from the last checkpoint plus committed journal logs (Section III-G).
// The engine itself is left untouched — the report is what a restarted
// instance would reconstruct.
func (en *Engine) SimulateRecovery() *RecoveryReport {
	rep := en.recoverReport()

	// Model the recovery read time: the journal is scanned sequentially.
	start := en.eng.Now()
	done := false
	var finished sim.VTime
	en.eng.Go("recovery", func(p *sim.Proc) {
		const chunk = 256 << 10
		for off := int64(0); off < rep.JournalBytesRead; off += chunk {
			n := int64(chunk)
			if off+n > rep.JournalBytesRead {
				n = rep.JournalBytesRead - off
			}
			half := en.layout.JournalStart(en.jr.active)
			end := half + off + n
			if end > half+en.layout.JournalHalfBytes {
				break
			}
			p.Wait(en.dev.Read(half+off, n))
		}
		finished = p.Now()
		done = true
	})
	for !done {
		en.eng.RunUntil(en.eng.Now() + 10*sim.Millisecond)
	}
	rep.RecoveryTime = finished - start
	return rep
}

// DurableVersions returns a copy of the per-key durable versions — what a
// correct recovery must reproduce.
func (en *Engine) DurableVersions() []int64 {
	out := make([]int64, len(en.durable))
	copy(out, en.durable)
	return out
}

// InMemoryVersions returns the per-key in-memory (volatile) versions.
func (en *Engine) InMemoryVersions() []int64 {
	out := make([]int64, len(en.version))
	copy(out, en.version)
	return out
}
