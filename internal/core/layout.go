// Package core implements the paper's contribution: the Check-In storage
// engine. It contains the key-value mapping layer (key → data-area LBA),
// the journaling layer with both conventional and sector-aligned log
// formats (Algorithm 2), the journal mapping table (JMT), the five
// checkpointing strategies the evaluation compares (Baseline, ISC-A, ISC-B,
// ISC-C, Check-In), the checkpoint scheduler, the query execution paths,
// and crash recovery.
package core

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/workload"
)

// Strategy selects the checkpointing mechanism, following the paper's
// configuration breakdown (Section IV-A).
type Strategy uint8

// The five evaluated configurations.
const (
	// StrategyBaseline checkpoints in the storage engine: journal logs are
	// read to host memory and written back to the data area.
	StrategyBaseline Strategy = iota
	// StrategyISCA offloads checkpointing with one CoW command per log.
	StrategyISCA
	// StrategyISCB offloads with batched multi-CoW commands.
	StrategyISCB
	// StrategyISCC offloads with FTL remapping (sub-page mapping), but
	// journal logs keep the conventional (unaligned) format.
	StrategyISCC
	// StrategyCheckIn is the full proposal: remapping plus sector-aligned
	// journaling.
	StrategyCheckIn
	numStrategies
)

// Strategies lists all configurations in evaluation order.
var Strategies = []Strategy{StrategyBaseline, StrategyISCA, StrategyISCB, StrategyISCC, StrategyCheckIn}

// String names the strategy as the paper does.
func (s Strategy) String() string {
	switch s {
	case StrategyBaseline:
		return "Baseline"
	case StrategyISCA:
		return "ISC-A"
	case StrategyISCB:
		return "ISC-B"
	case StrategyISCC:
		return "ISC-C"
	case StrategyCheckIn:
		return "Check-In"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// Offloaded reports whether checkpointing executes in the device.
func (s Strategy) Offloaded() bool { return s != StrategyBaseline }

// UsesRemap reports whether checkpointing updates mapping state instead of
// copying data.
func (s Strategy) UsesRemap() bool { return s == StrategyISCC || s == StrategyCheckIn }

// SectorAligned reports whether the journal uses Algorithm 2's aligned
// format.
func (s Strategy) SectorAligned() bool { return s == StrategyCheckIn }

// DefaultMappingUnit returns the FTL mapping unit the configuration runs
// with when not overridden: conventional SSDs map 4 KB pages; the remapping
// designs use sub-page (host-sector) mapping.
func (s Strategy) DefaultMappingUnit() int {
	if s.UsesRemap() {
		return 512
	}
	return 4096
}

// ParseStrategy resolves a strategy from its display name.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range Strategies {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown strategy %q (want one of Baseline, ISC-A, ISC-B, ISC-C, Check-In)", name)
}

// hostSector is the block-interface sector size records align to.
const hostSector = 512

// Layout carves the device's logical space into the double-buffered journal
// area, a small checkpoint-metadata region, and the data area holding one
// slot per record.
type Layout struct {
	JournalHalfBytes int64
	MetaStart        int64
	MetaBytes        int64
	DataStart        int64
	DataEnd          int64

	SlotAlign int64 // record slots align to max(hostSector, mapping unit)

	recOff  []int64
	recSize []int32
}

// NewLayout places keys records (sizes from sizer) on a device of devBytes
// logical capacity. slotAlign is the data-slot alignment.
func NewLayout(devBytes int64, keys int64, sizer workload.Sizer, journalHalfBytes int64, slotAlign int64) (*Layout, error) {
	if keys < 1 {
		return nil, fmt.Errorf("core: need at least one key")
	}
	if journalHalfBytes <= 0 || journalHalfBytes%hostSector != 0 {
		return nil, fmt.Errorf("core: journal half %d must be a positive multiple of %d", journalHalfBytes, hostSector)
	}
	if slotAlign < hostSector {
		slotAlign = hostSector
	}
	l := &Layout{
		JournalHalfBytes: journalHalfBytes,
		SlotAlign:        slotAlign,
		recOff:           make([]int64, keys),
		recSize:          make([]int32, keys),
	}
	l.MetaStart = 2 * journalHalfBytes
	l.MetaBytes = roundUp(keys*32, 4096)
	l.DataStart = l.MetaStart + l.MetaBytes
	off := l.DataStart
	for k := int64(0); k < keys; k++ {
		size := sizer.SizeOf(k)
		if size <= 0 {
			return nil, fmt.Errorf("core: sizer returned %d for key %d", size, k)
		}
		if off > devBytes { // bail early: no point placing the rest
			return nil, fmt.Errorf("core: layout needs more than %d bytes by key %d (reduce keys or journal)", devBytes, k)
		}
		l.recOff[k] = off
		l.recSize[k] = int32(size)
		off += roundUp(int64(size), slotAlign)
	}
	l.DataEnd = off
	if off > devBytes {
		return nil, fmt.Errorf("core: layout needs %d bytes but device exports %d (reduce keys or journal)", off, devBytes)
	}
	return l, nil
}

// JournalStart returns the absolute offset of journal half h (0 or 1).
func (l *Layout) JournalStart(h int) int64 {
	return int64(h) * l.JournalHalfBytes
}

// Record returns the data-area offset and size of key's record.
func (l *Layout) Record(key int64) (off int64, size int) {
	return l.recOff[key], int(l.recSize[key])
}

// SlotBytes returns the aligned slot size of key's record.
func (l *Layout) SlotBytes(key int64) int64 {
	return roundUp(int64(l.recSize[key]), l.SlotAlign)
}

// Keys returns the number of records.
func (l *Layout) Keys() int64 { return int64(len(l.recOff)) }

// DataBytes returns total data-area bytes including slot padding.
func (l *Layout) DataBytes() int64 { return l.DataEnd - l.DataStart }

// PayloadBytes returns the sum of raw record sizes (no slot padding).
func (l *Layout) PayloadBytes() int64 {
	var sum int64
	for _, s := range l.recSize {
		sum += int64(s)
	}
	return sum
}

func roundUp(v, to int64) int64 {
	if to <= 0 {
		return v
	}
	return (v + to - 1) / to * to
}
