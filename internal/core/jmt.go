package core

// LogType classifies a journal log's stored format (Algorithm 2).
type LogType uint8

// Log format types.
const (
	// LogFull occupies whole mapping units and can be checkpointed by a
	// pure remap.
	LogFull LogType = iota
	// LogPartial is smaller than a mapping unit after size-class padding;
	// it is packed with other partial logs into a shared unit.
	LogPartial
	// LogMerged is a partial log that has been packed into a shared unit.
	LogMerged
)

// String names the log type.
func (t LogType) String() string {
	switch t {
	case LogFull:
		return "FULL"
	case LogPartial:
		return "PARTIAL"
	case LogMerged:
		return "MERGED"
	default:
		return "?"
	}
}

// jmtEntry is one record of the journal mapping table: the mapping between
// a target (data-area) location and the journal location of its newest
// uncheckpointed version. Entries are append-only (write-ahead-log method);
// a newer update for the same key flips the previous entry's Old flag
// rather than modifying it (Figure 2(b), Algorithm 1's NEW/OLD flags).
type jmtEntry struct {
	key     int64
	version int64

	// journal placement, assigned when the log is laid out at commit
	off     int64 // absolute journal offset of the stored payload
	stored  int   // bytes occupied in the journal (after padding/merging)
	payload int   // raw value bytes
	typ     LogType

	// target placement in the data area
	targetOff int64
	targetLen int

	old       bool // superseded by a newer entry for the same key
	committed bool // the log has been durably written
}

// JMT is the journal mapping table for one journal half: an append-only
// entry log plus a latest-version index.
type JMT struct {
	entries []*jmtEntry
	latest  map[int64]*jmtEntry
	live    int // entries with old == false
}

// NewJMT returns an empty table.
func NewJMT() *JMT {
	return &JMT{latest: make(map[int64]*jmtEntry)}
}

// Add appends a new entry, marking any previous entry for the same key OLD.
func (t *JMT) Add(e *jmtEntry) {
	if prev, ok := t.latest[e.key]; ok {
		prev.old = true
		t.live--
	}
	t.entries = append(t.entries, e)
	t.latest[e.key] = e
	t.live++
}

// clone returns a deep copy of the table. The latest index points at the
// same entry objects as the append log, so cloning goes through an identity
// map: each source entry is copied exactly once and the copy is shared by
// both structures, preserving the aliasing Add relies on when it flips a
// previous entry's OLD flag.
func (t *JMT) clone() *JMT {
	out := &JMT{
		entries: make([]*jmtEntry, len(t.entries)),
		latest:  make(map[int64]*jmtEntry, len(t.latest)),
		live:    t.live,
	}
	remap := make(map[*jmtEntry]*jmtEntry, len(t.entries))
	for i, e := range t.entries {
		ce := *e
		out.entries[i] = &ce
		remap[e] = &ce
	}
	for k, e := range t.latest {
		out.latest[k] = remap[e]
	}
	return out
}

// Latest returns the newest entry for key, or nil.
func (t *JMT) Latest(key int64) *jmtEntry { return t.latest[key] }

// Entries returns the full append log (including OLD entries).
func (t *JMT) Entries() []*jmtEntry { return t.entries }

// Len returns the total number of entries (including OLD).
func (t *JMT) Len() int { return len(t.entries) }

// Live returns the number of latest-version entries.
func (t *JMT) Live() int { return t.live }

// LiveRatio returns live/total — the fraction the paper relates to the
// uniform-vs-Zipfian checkpointing cost difference.
func (t *JMT) LiveRatio() float64 {
	if len(t.entries) == 0 {
		return 0
	}
	return float64(t.live) / float64(len(t.entries))
}
