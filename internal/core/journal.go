package core

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
	"github.com/checkin-kv/checkin/internal/trace"
)

// JournalStats accumulates journaling-layer counters.
type JournalStats struct {
	PayloadBytes uint64 // raw value bytes the host asked to journal
	StoredBytes  uint64 // bytes actually occupied in the journal area
	Commits      uint64 // group commits (device write + flush pairs)
	Logs         uint64
	FullLogs     uint64
	PartialLogs  uint64 // partial logs packed into merged sectors
	Compressed   uint64 // logs larger than the mapping unit, compressed
	MergedUnits  uint64 // shared units produced by partial packing
	PadWaste     uint64 // bytes lost to size-class padding and sector tails
	HalfSwitches uint64
}

// SpaceOverhead returns stored/payload — the journal space-utilization
// metric behind Figure 13(b).
func (s JournalStats) SpaceOverhead() float64 {
	if s.PayloadBytes == 0 {
		return 1
	}
	return float64(s.StoredBytes) / float64(s.PayloadBytes)
}

// journal is the journaling layer: an in-memory log buffer with group
// commit, the JMT, a double-buffered on-device journal area, and the log
// formatter — either the conventional contiguous format (a small inline
// header per log) or Check-In's sector-aligned format (Algorithm 2).
type journal struct {
	eng    *sim.Engine
	dev    *ssd.Device
	layout *Layout

	aligned  bool
	unit     int64 // FTL mapping unit (Algorithm 2's MAPPING_SIZE)
	header   int64 // inline header bytes in conventional mode
	compress float64
	tracer   *trace.Tracer

	active int   // journal half in use
	head   int64 // bytes used in the active half

	jmt *JMT

	pending        []*jmtEntry
	nextBatch      *sim.Future
	commitInFlight bool
	inFlightDone   *sim.Future
	// cutting suspends commit auto-chaining while a checkpoint rotates
	// the halves, so the old half's final batch can be flushed without
	// new arrivals extending it forever.
	cutting bool

	// onCommit, when set, observes every log the moment its group commit
	// becomes durable (before client wakeup). The crash-consistency
	// harness's reference model hangs off this hook.
	onCommit func(key, version int64)
	injector *inject.Injector

	stats JournalStats
}

func newJournal(eng *sim.Engine, dev *ssd.Device, layout *Layout, aligned bool, header int64, compress float64) *journal {
	return &journal{
		eng:      eng,
		dev:      dev,
		layout:   layout,
		aligned:  aligned,
		unit:     int64(dev.FTL().UnitSize()),
		header:   header,
		compress: compress,
		jmt:      NewJMT(),
	}
}

// UsedBytes returns bytes consumed in the active half (committed plus
// pending estimate is tracked separately; head covers laid-out logs only).
func (j *journal) UsedBytes() int64 { return j.head }

// UsedFrac returns the active half's fill fraction.
func (j *journal) UsedFrac() float64 {
	return float64(j.head+j.pendingEstimate()) / float64(j.layout.JournalHalfBytes)
}

// pendingEstimate upper-bounds the journal bytes the buffered logs will
// need once laid out.
func (j *journal) pendingEstimate() int64 {
	var sum int64
	for _, e := range j.pending {
		sum += roundUp(int64(e.payload)+j.header, j.unit) + j.unit
	}
	return sum
}

// WouldOverflow reports whether appending a log of payload bytes risks
// exceeding the active half.
func (j *journal) WouldOverflow(payload int) bool {
	need := roundUp(int64(payload)+j.header, j.unit) + j.unit
	return j.head+j.pendingEstimate()+need > j.layout.JournalHalfBytes
}

// Append buffers a journal log for key at the given version and returns its
// JMT entry plus a future that completes when the log's group commit is
// durable.
func (j *journal) Append(key, version int64, payload int) (*jmtEntry, *sim.Future) {
	targetOff, targetLen := j.layout.Record(key)
	if payload > targetLen {
		payload = targetLen
	}
	e := &jmtEntry{
		key:       key,
		version:   version,
		payload:   payload,
		targetOff: targetOff,
		targetLen: targetLen,
	}
	j.jmt.Add(e)
	j.pending = append(j.pending, e)
	j.stats.Logs++
	j.stats.PayloadBytes += uint64(payload)
	if j.nextBatch == nil {
		j.nextBatch = sim.NewFuture(j.eng)
	}
	fut := j.nextBatch
	j.injector.Hit(inject.SiteJournalAppend)
	if !j.commitInFlight && !j.cutting {
		j.startCommit()
	}
	return e, fut
}

// startCommit lays out the buffered logs in the active half, writes them
// with one device write, and flushes. Logs arriving during the in-flight
// commit form the next batch (group commit).
func (j *journal) startCommit() {
	if len(j.pending) == 0 || j.commitInFlight {
		return
	}
	batch := j.pending
	fut := j.nextBatch
	j.pending = nil
	j.nextBatch = nil

	base := j.layout.JournalStart(j.active) + j.head
	j.head += j.commitBatch(batch, fut, base)
	if j.head > j.layout.JournalHalfBytes {
		panic(fmt.Sprintf("core: journal half overflow (%d > %d); soft trigger misconfigured",
			j.head, j.layout.JournalHalfBytes))
	}
}

// commitBatch lays batch out at the absolute journal offset base, issues
// the device write + flush, and returns the laid-out length. On flush
// completion the batch's logs are durable and the next buffered batch is
// chained (unless a checkpoint cut is in progress).
func (j *journal) commitBatch(batch []*jmtEntry, fut *sim.Future, base int64) int64 {
	j.commitInFlight = true
	j.inFlightDone = fut

	var length int64
	if j.aligned {
		length = j.layoutAligned(batch, base)
	} else {
		length = j.layoutConventional(batch, base)
	}
	j.stats.Commits++
	j.stats.StoredBytes += uint64(length)

	// The flush's completion covers the write's durability: commands are
	// serviced FIFO on the link and the flush forces the written pages out.
	j.dev.Write(base, length, ssd.AreaJournal)
	ff := j.dev.Flush(ssd.AreaJournal)
	ff.OnComplete(func() {
		j.tracer.Emit(j.eng.Now(), trace.KindJournalCommit, length, "")
		for _, e := range batch {
			e.committed = true
			if j.onCommit != nil {
				j.onCommit(e.key, e.version)
			}
		}
		j.injector.Hit(inject.SiteJournalCommit)
		j.commitInFlight = false
		j.inFlightDone = nil
		fut.Complete()
		if !j.cutting && len(j.pending) > 0 {
			j.startCommit()
		}
	})
	return length
}

// layoutConventional assigns contiguous offsets: each log is an inline
// header followed by the raw payload. Nothing is aligned — the format the
// Baseline and ISC configurations journal with.
func (j *journal) layoutConventional(batch []*jmtEntry, base int64) int64 {
	var off int64
	for _, e := range batch {
		e.off = base + off + j.header // payload begins after the header
		e.stored = int(j.header) + e.payload
		e.typ = LogFull
		off += int64(e.stored)
		j.stats.FullLogs++
	}
	return off
}

// layoutAligned implements Algorithm 2: payloads larger than the mapping
// unit are compressed and padded to unit multiples (FULL); smaller payloads
// are padded to quarter-unit size classes; sub-unit logs (PARTIAL) are
// packed together into shared units (MERGED).
func (j *journal) layoutAligned(batch []*jmtEntry, base int64) int64 {
	// Size classes step by a quarter unit (Algorithm 2's MAPPING_SIZE/4),
	// but never coarser than the 128-byte minimum value granularity the
	// paper adopts from key-value SSDs — at a 4 KB unit, partial logs
	// still pack at 128-byte resolution inside shared units.
	classStep := j.unit / 4
	if classStep > 128 {
		classStep = 128
	}
	var off int64

	// open shared sector for partial logs, local to the batch
	sectorBase := int64(-1)
	var sectorUsed int64
	closeSector := func() {
		if sectorBase < 0 {
			return
		}
		j.stats.PadWaste += uint64(j.unit - sectorUsed)
		j.stats.MergedUnits++
		sectorBase = -1
		sectorUsed = 0
	}

	for _, e := range batch {
		payload := int64(e.payload)
		if payload > j.unit {
			// Compress(request): size ← (size/MAPPING_SIZE + 1) × MAPPING_SIZE
			comp := int64(float64(payload)*j.compress) + 1
			if comp > payload {
				comp = payload
			}
			stored := roundUp(comp, j.unit)
			e.stored = int(stored)
			e.typ = LogFull
			e.off = base + off
			off += stored
			j.stats.FullLogs++
			j.stats.Compressed++
			j.stats.PadWaste += uint64(stored - comp)
			continue
		}
		// pad up to the next quarter-unit size class
		stored := roundUp(payload, classStep)
		if stored == 0 {
			stored = classStep
		}
		j.stats.PadWaste += uint64(stored - payload)
		if stored == j.unit {
			e.stored = int(stored)
			e.typ = LogFull
			e.off = base + off
			off += stored
			j.stats.FullLogs++
			continue
		}
		// PARTIAL: pack into the open shared unit
		e.typ = LogMerged
		e.stored = int(stored)
		j.stats.PartialLogs++
		if sectorBase < 0 || sectorUsed+stored > j.unit {
			closeSector()
			sectorBase = base + off
			off += j.unit
		}
		e.off = sectorBase + sectorUsed
		sectorUsed += stored
		if sectorUsed == j.unit {
			closeSector()
		}
	}
	closeSector()
	return off
}

// snapshot captures the state a checkpoint consumes.
type ckptSnapshot struct {
	jmt  *JMT
	half int
	used int64
}

// CutForCheckpoint atomically rotates journaling onto the alternate half —
// new appends immediately target the fresh JMT and half — then flushes the
// old half's tail: the in-flight batch plus any logs that were still
// buffered. It returns once the old half is fully durable. This is the
// paper's "new journal area and JMT are already built as an alternative, so
// journaling for other requests can be done without blocking".
func (j *journal) CutForCheckpoint(p *sim.Proc) ckptSnapshot {
	j.cutting = true
	oldJmt, oldHalf, oldHead := j.jmt, j.active, j.head
	oldPending, oldFut := j.pending, j.nextBatch

	j.jmt = NewJMT()
	j.active ^= 1
	j.head = 0
	j.pending = nil
	j.nextBatch = nil

	// wait for the batch already being written to the old half
	for j.commitInFlight {
		p.Wait(j.inFlightDone)
	}
	// flush the logs that were buffered but not yet laid out
	if len(oldPending) > 0 {
		base := j.layout.JournalStart(oldHalf) + oldHead
		oldHead += j.commitBatch(oldPending, oldFut, base)
		if oldHead > j.layout.JournalHalfBytes {
			panic("core: journal half overflow during checkpoint cut")
		}
		for j.commitInFlight {
			p.Wait(j.inFlightDone)
		}
	}
	j.cutting = false
	j.stats.HalfSwitches++
	j.tracer.Emit(j.eng.Now(), trace.KindJournalSwitch, int64(oldHalf), "")
	j.injector.Hit(inject.SiteCheckpointCut)
	// resume group commit on the new half
	if len(j.pending) > 0 {
		j.startCommit()
	}
	return ckptSnapshot{jmt: oldJmt, half: oldHalf, used: oldHead}
}

// Stats returns a snapshot of journaling counters.
func (j *journal) Stats() JournalStats { return j.stats }

// JMT exposes the active table (query read path, tests).
func (j *journal) JMT() *JMT { return j.jmt }
