package core

import (
	"testing"

	"github.com/checkin-kv/checkin/internal/workload"
)

func TestStrategyProperties(t *testing.T) {
	cases := []struct {
		s          Strategy
		name       string
		offloaded  bool
		remap      bool
		aligned    bool
		defaultMap int
	}{
		{StrategyBaseline, "Baseline", false, false, false, 4096},
		{StrategyISCA, "ISC-A", true, false, false, 4096},
		{StrategyISCB, "ISC-B", true, false, false, 4096},
		{StrategyISCC, "ISC-C", true, true, false, 512},
		{StrategyCheckIn, "Check-In", true, true, true, 512},
	}
	for _, c := range cases {
		if c.s.String() != c.name {
			t.Errorf("String() = %q, want %q", c.s.String(), c.name)
		}
		if c.s.Offloaded() != c.offloaded || c.s.UsesRemap() != c.remap ||
			c.s.SectorAligned() != c.aligned || c.s.DefaultMappingUnit() != c.defaultMap {
			t.Errorf("%v properties wrong", c.s)
		}
		got, err := ParseStrategy(c.name)
		if err != nil || got != c.s {
			t.Errorf("ParseStrategy(%q) = %v, %v", c.name, got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("unknown strategy name accepted")
	}
	if len(Strategies) != 5 {
		t.Errorf("Strategies has %d entries", len(Strategies))
	}
}

func TestLayoutPlacement(t *testing.T) {
	l, err := NewLayout(1<<30, 100, workload.FixedSizer{Size: 1000}, 1<<20, 512)
	if err != nil {
		t.Fatal(err)
	}
	if l.JournalStart(0) != 0 || l.JournalStart(1) != 1<<20 {
		t.Error("journal halves misplaced")
	}
	if l.MetaStart != 2<<20 {
		t.Errorf("MetaStart = %d", l.MetaStart)
	}
	if l.DataStart <= l.MetaStart {
		t.Error("data area overlaps metadata")
	}
	// 1000-byte records in 512-aligned slots: 1024 bytes apart.
	off0, sz0 := l.Record(0)
	off1, _ := l.Record(1)
	if sz0 != 1000 || off1-off0 != 1024 {
		t.Errorf("record placement: off0=%d sz=%d off1=%d", off0, sz0, off1)
	}
	if l.SlotBytes(0) != 1024 {
		t.Errorf("SlotBytes = %d", l.SlotBytes(0))
	}
	if l.Keys() != 100 {
		t.Errorf("Keys = %d", l.Keys())
	}
	if l.DataBytes() != 100*1024 {
		t.Errorf("DataBytes = %d", l.DataBytes())
	}
	if l.PayloadBytes() != 100*1000 {
		t.Errorf("PayloadBytes = %d", l.PayloadBytes())
	}
}

func TestLayoutUnitAlignedSlots(t *testing.T) {
	l, err := NewLayout(1<<30, 10, workload.FixedSizer{Size: 300}, 1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 10; k++ {
		off, _ := l.Record(k)
		if off%4096 != 0 {
			t.Fatalf("record %d at %d not 4096-aligned", k, off)
		}
	}
	if l.SlotBytes(0) != 4096 {
		t.Errorf("SlotBytes = %d, want 4096", l.SlotBytes(0))
	}
}

func TestLayoutRejectsBadInputs(t *testing.T) {
	sz := workload.FixedSizer{Size: 512}
	if _, err := NewLayout(1<<30, 0, sz, 1<<20, 512); err == nil {
		t.Error("zero keys accepted")
	}
	if _, err := NewLayout(1<<30, 10, sz, 0, 512); err == nil {
		t.Error("zero journal accepted")
	}
	if _, err := NewLayout(1<<30, 10, sz, 1000, 512); err == nil {
		t.Error("unaligned journal half accepted")
	}
	// Device too small for the layout.
	if _, err := NewLayout(1<<21, 10000, workload.FixedSizer{Size: 4096}, 1<<20, 512); err == nil {
		t.Error("oversized layout accepted")
	}
	if _, err := NewLayout(1<<30, 10, badSizer{}, 1<<20, 512); err == nil {
		t.Error("non-positive record size accepted")
	}
}

type badSizer struct{}

func (badSizer) SizeOf(int64) int { return 0 }
func (badSizer) Name() string     { return "bad" }

func TestJMTFlagTransitions(t *testing.T) {
	jmt := NewJMT()
	e1 := &jmtEntry{key: 7, version: 1}
	e2 := &jmtEntry{key: 7, version: 2}
	e3 := &jmtEntry{key: 9, version: 1}
	jmt.Add(e1)
	if jmt.Latest(7) != e1 || jmt.Live() != 1 {
		t.Fatal("first add wrong")
	}
	jmt.Add(e2)
	if !e1.old {
		t.Error("superseded entry not flagged OLD")
	}
	if e2.old {
		t.Error("new entry flagged OLD")
	}
	if jmt.Latest(7) != e2 {
		t.Error("latest not updated")
	}
	jmt.Add(e3)
	if jmt.Len() != 3 || jmt.Live() != 2 {
		t.Errorf("Len=%d Live=%d, want 3/2", jmt.Len(), jmt.Live())
	}
	if r := jmt.LiveRatio(); r < 0.66 || r > 0.67 {
		t.Errorf("LiveRatio = %v, want 2/3", r)
	}
	if jmt.Latest(12345) != nil {
		t.Error("missing key returned an entry")
	}
	if NewJMT().LiveRatio() != 0 {
		t.Error("empty table LiveRatio should be 0")
	}
}

func TestLogTypeString(t *testing.T) {
	if LogFull.String() != "FULL" || LogPartial.String() != "PARTIAL" || LogMerged.String() != "MERGED" {
		t.Error("log type names wrong")
	}
	if LogType(99).String() != "?" {
		t.Error("unknown log type should render ?")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Strategy = numStrategies },
		func(c *Config) { c.Keys = 0 },
		func(c *Config) { c.Sizer = nil },
		func(c *Config) { c.JournalHalfBytes = 100 },
		func(c *Config) { c.JournalSoftFrac = 0 },
		func(c *Config) { c.JournalSoftFrac = 1.5 },
		func(c *Config) { c.CompressRatio = 0 },
		func(c *Config) { c.CheckpointInterval = 0 },
	}
	for i, mut := range muts {
		c := DefaultConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunSpecValidate(t *testing.T) {
	good := RunSpec{Threads: 4, TotalQueries: 100, Mix: workload.WorkloadA}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := []RunSpec{
		{Threads: 0, TotalQueries: 100, Mix: workload.WorkloadA},
		{Threads: 1, TotalQueries: 0, Mix: workload.WorkloadA},
		{Threads: 1, TotalQueries: 10, Mix: workload.Mix{ReadPct: 10}},
	}
	for i, rs := range bad {
		if err := rs.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}
