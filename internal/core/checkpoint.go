package core

import (
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
)

// checkpointer executes one checkpoint over a journal snapshot. The five
// implementations mirror the paper's configuration breakdown; all run in a
// simulated process so they can overlap with query traffic.
type checkpointer interface {
	Run(p *sim.Proc, en *Engine, snap ckptSnapshot)
}

func newCheckpointer(s Strategy, cfg Config) checkpointer {
	switch s {
	case StrategyBaseline:
		return &baselineCkpt{window: cfg.CkptReadWindow}
	case StrategyISCA:
		return &singleCoWCkpt{window: cfg.CkptCoWWindow}
	case StrategyISCB:
		return &multiCoWCkpt{batch: cfg.MultiCoWBatch}
	case StrategyISCC, StrategyCheckIn:
		return &remapCkpt{batch: cfg.CkptCmdBatch, aligned: s.SectorAligned()}
	default:
		panic("core: unknown strategy")
	}
}

// latestEntries filters a snapshot down to the entries Algorithm 1 would
// act on (flag != OLD), in journal order.
func latestEntries(snap ckptSnapshot) []*jmtEntry {
	out := make([]*jmtEntry, 0, snap.jmt.Live())
	for _, e := range snap.jmt.Entries() {
		if !e.old {
			out = append(out, e)
		}
	}
	return out
}

// baselineCkpt is conventional engine-side checkpointing: journal logs are
// read into host memory through the block interface and the latest versions
// are written back to their data-area targets, followed by a metadata
// update (Figure 2(c) / Figure 4(a)).
type baselineCkpt struct {
	window int // in-flight I/O window while draining the journal
}

func (c *baselineCkpt) Run(p *sim.Proc, en *Engine, snap ckptSnapshot) {
	entries := latestEntries(snap)
	w := c.window
	if w < 1 {
		w = 32
	}
	for i := 0; i < len(entries); i += w {
		chunk := entries[i:min(i+w, len(entries))]
		// read the journal logs into a host buffer; each block request
		// costs the host software path before it reaches the device
		reads := make([]*sim.Future, len(chunk))
		for k, e := range chunk {
			p.Sleep(en.cfg.HostIOOverhead)
			reads[k] = en.dev.Read(e.off, int64(e.payload))
		}
		p.WaitAll(reads)
		// ... then write the latest data back to the data area. Waiting
		// on the flush (not the write futures) avoids stalling on
		// partially filled pages under sub-page mapping units.
		for _, e := range chunk {
			p.Sleep(en.cfg.HostIOOverhead)
			en.dev.Write(e.targetOff, int64(e.payload), ssd.AreaCheckpoint)
		}
		p.Wait(en.dev.Flush(ssd.AreaCheckpoint))
	}
	// metadata describing the new checkpoint, then make it all durable
	metaLen := roundUp(int64(len(entries))*32, hostSector)
	if metaLen > en.layout.MetaBytes {
		metaLen = en.layout.MetaBytes
	}
	if metaLen > 0 {
		en.dev.Write(en.layout.MetaStart, metaLen, ssd.AreaData)
	}
	p.Wait(en.dev.Flush(ssd.AreaData))
}

// singleCoWCkpt is ISC-A: one vendor-specific CoW command per journal log.
// No data crosses the host link, but the command count equals the log count
// and the queue depth becomes the bottleneck.
type singleCoWCkpt struct {
	window int
}

func (c *singleCoWCkpt) Run(p *sim.Proc, en *Engine, snap ckptSnapshot) {
	entries := latestEntries(snap)
	w := c.window
	if w < 1 {
		w = 128
	}
	for i := 0; i < len(entries); i += w {
		chunk := entries[i:min(i+w, len(entries))]
		futs := make([]*sim.Future, len(chunk))
		for k, e := range chunk {
			p.Sleep(en.cfg.HostIOOverhead)
			futs[k] = en.dev.CoW(e.off, e.targetOff, int64(e.payload))
		}
		p.WaitAll(futs)
	}
	p.Wait(en.dev.Flush(ssd.AreaData))
}

// multiCoWCkpt is ISC-B: CoW pairs are batched into multi-CoW commands,
// reducing command overhead to a negligible level and letting the device
// schedule consecutive reads and consecutive writes.
type multiCoWCkpt struct {
	batch int
}

func (c *multiCoWCkpt) Run(p *sim.Proc, en *Engine, snap ckptSnapshot) {
	entries := latestEntries(snap)
	b := c.batch
	if b < 1 {
		b = 128
	}
	// At most two commands in flight: the device works on one batch while
	// the next is queued, and host queries get service in between — a
	// device that let one checkpoint command book every die for hundreds
	// of milliseconds would starve the host.
	var prev *sim.Future
	for i := 0; i < len(entries); i += b {
		chunk := entries[i:min(i+b, len(entries))]
		pairs := make([]ssd.CoWPair, len(chunk))
		for k, e := range chunk {
			pairs[k] = ssd.CoWPair{Src: e.off, Dst: e.targetOff, Len: int64(e.payload)}
		}
		p.Sleep(en.cfg.HostIOOverhead)
		cur := en.dev.MultiCoW(pairs)
		if prev != nil {
			p.Wait(prev)
		}
		prev = cur
	}
	if prev != nil {
		p.Wait(prev)
	}
	p.Wait(en.dev.Flush(ssd.AreaData))
}

// remapCkpt serves both ISC-C and Check-In: the whole JMT (including OLD
// entries, which the device skips per Algorithm 1) ships to the device in
// checkpoint-request commands and the FTL checkpoints by remapping. Whether
// entries remap purely or degrade to read-merge-writes depends on how the
// journal laid the logs out — Check-In's sector-aligned format is what
// makes the remap path effective.
type remapCkpt struct {
	batch   int
	aligned bool
}

func (c *remapCkpt) Run(p *sim.Proc, en *Engine, snap ckptSnapshot) {
	all := snap.jmt.Entries()
	b := c.batch
	if b < 1 {
		b = 512
	}
	unit := int64(en.dev.FTL().UnitSize())
	// The cut brackets tell the FTL's translation-metadata layer to defer
	// dirty writeback across the remap burst and settle it once, densest
	// page first, when the burst has drained (dftl mode; no-op otherwise).
	en.dev.BeginCheckpointCut()
	var prev *sim.Future
	for i := 0; i < len(all); i += b {
		chunk := all[i:min(i+b, len(all))]
		reqs := make([]ssd.RemapEntry, len(chunk))
		for k, e := range chunk {
			// Sector-aligned FULL logs remap their whole stored units
			// onto the record's slot. Everything else (conventional
			// logs, merged partials) lands on the FTL's read-merge-
			// write path; the length is still rounded to whole units
			// because a record owns its entire unit-aligned slot — the
			// old destination content never needs preserving.
			var n int64
			if c.aligned && e.typ == LogFull {
				n = int64(e.stored)
			} else {
				n = roundUp(int64(e.payload), unit)
			}
			reqs[k] = ssd.RemapEntry{Src: e.off, Dst: e.targetOff, Len: n, Old: e.old}
		}
		p.Sleep(en.cfg.HostIOOverhead)
		res, fut := en.dev.CheckpointRequest(reqs)
		fut.OnComplete(func() {
			en.remapTotals.Remapped += res.Remapped
			en.remapTotals.RMWs += res.RMWs
			en.remapTotals.Skipped += res.Skipped
		})
		// keep at most two checkpoint commands in flight (see multiCoW)
		if prev != nil {
			p.Wait(prev)
		}
		prev = fut
	}
	if prev != nil {
		p.Wait(prev)
	}
	// Every remap command has been serviced: settle the deferred translation
	// writeback before the durability barrier below, so the flush covers the
	// translation pages too.
	en.dev.EndCheckpointCut()
	// durability barrier: any read-merge-write residue must hit flash
	p.Wait(en.dev.Flush(ssd.AreaCheckpoint))
}
