package inject

import "testing"

func TestSiteNamesRoundTrip(t *testing.T) {
	for _, s := range Sites() {
		got, err := ParseSite(s.String())
		if err != nil {
			t.Fatalf("ParseSite(%q): %v", s, err)
		}
		if got != s {
			t.Fatalf("ParseSite(%q) = %v, want %v", s.String(), got, s)
		}
	}
	if _, err := ParseSite("no-such-site"); err == nil {
		t.Fatal("ParseSite accepted an unknown name")
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var inj *Injector
	inj.Hit(SiteJournalCommit) // must not panic
	if _, _, fired := inj.Fired(); fired {
		t.Fatal("nil injector reports a fired crash")
	}
}

func TestCountingAndArming(t *testing.T) {
	inj := New()
	inj.Hit(SiteJournalAppend)
	inj.Hit(SiteJournalAppend)
	inj.Hit(SiteDeallocate)
	if c := inj.Counts(); c[SiteJournalAppend] != 2 || c[SiteDeallocate] != 1 {
		t.Fatalf("counts = %v", c)
	}

	// Arm at the 2nd post-arm hit of journal-commit; inline fire (no defer).
	var crashSite Site
	crashHit := -1
	inj.Arm(SiteJournalCommit, 1, nil, func(s Site, n int) {
		crashSite, crashHit = s, n
	})
	inj.Hit(SiteJournalCommit)
	if _, _, fired := inj.Fired(); fired {
		t.Fatal("fired one hit early")
	}
	inj.Hit(SiteJournalCommit)
	site, hit, fired := inj.Fired()
	if !fired || site != SiteJournalCommit {
		t.Fatalf("Fired() = %v %v %v", site, hit, fired)
	}
	if crashSite != SiteJournalCommit || crashHit != hit {
		t.Fatalf("callback saw (%v, %d), Fired() reports (%v, %d)", crashSite, crashHit, site, hit)
	}
	// Further hits after the crash must not re-fire.
	inj.Hit(SiteJournalCommit)
	if _, n, _ := inj.Fired(); n != hit {
		t.Fatal("injector fired twice")
	}
}

func TestDeferredFire(t *testing.T) {
	inj := New()
	var deferred func()
	fired := false
	inj.Arm(SiteMetaFlush, 0, func(fire func()) { deferred = fire }, func(Site, int) { fired = true })
	inj.Hit(SiteMetaFlush)
	if fired {
		t.Fatal("crash callback ran before the deferred fire")
	}
	if deferred == nil {
		t.Fatal("defer hook never received the fire closure")
	}
	deferred()
	if !fired {
		t.Fatal("deferred fire did not run the crash callback")
	}
}
