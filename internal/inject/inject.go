// Package inject provides named crash-injection sites for the
// crash-consistency verification subsystem (internal/check).
//
// The storage stack instruments the moments where a power failure has
// interesting consequences — journal appends and group commits, the
// checkpoint cut/remap/apply/trim sequence, mapping-metadata flushes, GC
// victim collection, wear-leveling moves — by calling Injector.Hit with the
// site's name. An Injector is either counting (a census of how often each
// site fires on a given workload) or armed (crash on the Nth hit of one
// site). Both modes count hits identically, so a schedule derived from a
// census run replays exactly on an armed run of the same configuration:
// any failure reproduces from (seed, site-index).
//
// The package is a dependency leaf: core, ftl and ssd all import it, and a
// nil *Injector is a valid no-op so production paths pay one nil check.
package inject

import "fmt"

// Site names one instrumented crash point.
type Site uint8

// The injection-site catalog. Adding a site here automatically enrolls it
// in the differential crash matrix (internal/check walks Sites()).
const (
	// SiteJournalAppend fires after a journal log is buffered in the JMT
	// but before its group commit: the log is volatile and must NOT be
	// recovered.
	SiteJournalAppend Site = iota
	// SiteJournalCommit fires when a group commit's flush completes: every
	// log of the batch is durable and MUST be recovered.
	SiteJournalCommit
	// SiteCheckpointCut fires after the journal rotates onto the alternate
	// half and the old half's tail is durable (core/journal.go
	// CutForCheckpoint).
	SiteCheckpointCut
	// SiteCheckpointCopy fires in the device after a CoW / multi-CoW
	// checkpoint command's copies are issued (ISC-A / ISC-B service).
	SiteCheckpointCopy
	// SiteCheckpointRemap fires in the device after a checkpoint-request
	// command's Algorithm 1 remap loop (ISC-C / Check-In service).
	SiteCheckpointRemap
	// SiteCheckpointApply fires after the engine applies a finished
	// checkpoint (ckpted versions advanced) but before the journal half is
	// deallocated.
	SiteCheckpointApply
	// SiteDeallocate fires after the device trims a logical range (journal
	// deletion after checkpointing).
	SiteDeallocate
	// SiteMetaFlush fires when the FTL programs a mapping-metadata page.
	SiteMetaFlush
	// SiteGCMigrate fires after a GC victim's valid slots have migrated
	// and the victim block has been erased.
	SiteGCMigrate
	// SiteWearLevel fires after a static wear-leveling migration.
	SiteWearLevel

	// The NAND-fault sites below fire only when the reliability model is
	// enabled (nonzero error rates); census runs without it show zero hits
	// and the matrix skips them.

	// SiteReadRetry fires after a read-retry ladder completes (correctable
	// or soft-decision recovered) — a crash here lands mid-read-recovery.
	SiteReadRetry
	// SiteProgramFail fires after a failed page program's buffer has been
	// restaged on a fresh frontier block and the mapping rebound.
	SiteProgramFail
	// SiteEraseFail fires after a GC erase reports FAIL and the victim is
	// retired in place of being freed.
	SiteEraseFail
	// SiteBadBlockRetire fires after a bad block's live data has migrated
	// and a spare (if any) replaced it — a crash here lands mid-way through
	// draining the retirement queue.
	SiteBadBlockRetire

	// The translation-page sites below fire only under -ftlmap=dftl (the
	// flash-resident mapping table); dram-mode census runs show zero hits
	// and the matrix skips them.

	// SiteTransFlush fires after a dirty-threshold translation-page
	// writeback: a batch of dirty CMT entries is durable on a fresh
	// translation page and the directory points at it.
	SiteTransFlush
	// SiteTransEvict fires after a CMT capacity eviction wrote back the
	// victim's dirty translation page.
	SiteTransEvict
	// SiteTransGC fires after GC migrated a live translation page out of a
	// victim block (data and translation blocks share the victim index).
	SiteTransGC

	// The LSM-engine sites below fire only under -engine=lsm (the
	// write-ahead-log → memtable → sorted-run backend in internal/lsm);
	// journal-engine census runs show zero hits and the matrix skips them.

	// SiteWALAppend fires after a write is buffered in the memtable and its
	// WAL record queued, before the group commit: the write is volatile and
	// must NOT be recovered.
	SiteWALAppend
	// SiteWALCommit fires when a WAL group commit's flush completes: every
	// record of the batch is durable and MUST be recovered.
	SiteWALCommit
	// SiteMemFlush fires after a flushed memtable's sorted run is durable on
	// flash but before the manifest publishes it: the run is an orphan, and
	// recovery must reconstruct its entries from the WAL instead.
	SiteMemFlush
	// SiteCompactInstall fires after a compaction's merged output run is
	// durable but before the manifest swap removes its inputs: both old and
	// new runs coexist and recovery must still see exactly the old manifest.
	SiteCompactInstall
	// SiteManifestPublish fires after a manifest slot write+flush is durable:
	// the new run set is authoritative and the superseded WAL prefix is
	// logically truncated.
	SiteManifestPublish

	// NumSites is the catalog size.
	NumSites
)

// String returns the site's stable name (used in reports and repro lines).
func (s Site) String() string {
	switch s {
	case SiteJournalAppend:
		return "journal-append"
	case SiteJournalCommit:
		return "journal-commit"
	case SiteCheckpointCut:
		return "ckpt-cut"
	case SiteCheckpointCopy:
		return "ckpt-copy"
	case SiteCheckpointRemap:
		return "ckpt-remap"
	case SiteCheckpointApply:
		return "ckpt-apply"
	case SiteDeallocate:
		return "dealloc"
	case SiteMetaFlush:
		return "meta-flush"
	case SiteGCMigrate:
		return "gc-migrate"
	case SiteWearLevel:
		return "wear-level"
	case SiteReadRetry:
		return "read-retry"
	case SiteProgramFail:
		return "program-fail"
	case SiteEraseFail:
		return "erase-fail"
	case SiteBadBlockRetire:
		return "bad-block-retire"
	case SiteTransFlush:
		return "trans-flush"
	case SiteTransEvict:
		return "trans-evict"
	case SiteTransGC:
		return "trans-gc"
	case SiteWALAppend:
		return "wal-append"
	case SiteWALCommit:
		return "wal-commit"
	case SiteMemFlush:
		return "mem-flush"
	case SiteCompactInstall:
		return "compact-install"
	case SiteManifestPublish:
		return "manifest-publish"
	default:
		return fmt.Sprintf("site(%d)", uint8(s))
	}
}

// Sites returns the full catalog in site-index order.
func Sites() []Site {
	out := make([]Site, NumSites)
	for i := range out {
		out[i] = Site(i)
	}
	return out
}

// ParseSite resolves a site from its name.
func ParseSite(name string) (Site, error) {
	for _, s := range Sites() {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("inject: unknown site %q", name)
}

// Injector counts site hits and, when armed, fires a crash callback on a
// chosen hit of a chosen site. All methods are nil-receiver safe.
type Injector struct {
	counts [NumSites]int

	armed    bool
	target   Site
	skip     int // hits of target to let pass before firing
	fired    bool
	firedHit int

	// deferFire, when set, receives the crash callback instead of it
	// running inline: the harness passes sim.Engine.Schedule(0, ·) so the
	// crash evaluates at the same virtual instant but after the current
	// event callback returns, when deep call chains (a metadata flush
	// inside a GC migration inside a host write) have restored their
	// invariants. Hit counting is unaffected.
	deferFire func(func())
	onCrash   func(site Site, hit int)
}

// New returns a counting-only injector (a census run).
func New() *Injector { return &Injector{} }

// Arm configures the injector to fire onCrash on the (skip+1)-th future hit
// of target. deferFire, when non-nil, defers the callback to a scheduler
// slot at the same virtual time (see the field comment). Arm must be called
// before the run starts; hits recorded so far are not counted against skip.
func (in *Injector) Arm(target Site, skip int, deferFire func(func()), onCrash func(Site, int)) {
	if onCrash == nil {
		panic("inject: Arm with nil onCrash")
	}
	in.armed = true
	in.target = target
	in.skip = skip
	in.deferFire = deferFire
	in.onCrash = onCrash
}

// Hit records that execution passed site s, firing the armed crash callback
// if this is the scheduled hit. Nil-safe: a nil injector is a no-op.
func (in *Injector) Hit(s Site) {
	if in == nil {
		return
	}
	in.counts[s]++
	if !in.armed || in.fired || s != in.target {
		return
	}
	if in.skip > 0 {
		in.skip--
		return
	}
	in.fired = true
	in.firedHit = in.counts[s]
	hit := in.firedHit
	fire := func() { in.onCrash(s, hit) }
	if in.deferFire != nil {
		in.deferFire(fire)
		return
	}
	fire()
}

// Hits returns how many times site s fired so far.
func (in *Injector) Hits(s Site) int {
	if in == nil {
		return 0
	}
	return in.counts[s]
}

// Counts returns the per-site hit counts in site-index order.
func (in *Injector) Counts() []int {
	out := make([]int, NumSites)
	if in != nil {
		copy(out, in.counts[:])
	}
	return out
}

// Fired reports whether the armed crash fired, and at which hit.
func (in *Injector) Fired() (site Site, hit int, ok bool) {
	if in == nil || !in.fired {
		return 0, 0, false
	}
	return in.target, in.firedHit, true
}
