package nand

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/sim"
)

// ArrayState is a deep copy of the array's mutable state: per-block
// lifecycle (erase counts, programmed pages), die/channel busy horizons and
// the operation counters. Geometry, timing and MaxPE are configuration, not
// state — Restore requires the target array to have been built with the
// same geometry.
type ArrayState struct {
	blocks   []blockState
	dies     []sim.FIFOResource
	channels []sim.FIFOResource
	stats    Stats
	relRNG   uint64 // reliability PRNG position (0 when the model is off)
}

// Snapshot captures the array's mutable state. The array has no in-flight
// continuations of its own (operation completions are plain events on the
// kernel queue), so a snapshot is valid whenever the kernel is quiescent.
// Pending domain commands are applied first — the busy horizons they update
// are part of the state — so a snapshot never has to serialize sub-queues;
// the state is the same flat resource copy the sequential path produces,
// and a snapshot taken with domains on restores cleanly with domains off
// (and vice versa).
func (a *Array) Snapshot() *ArrayState {
	a.syncDomains()
	s := &ArrayState{
		blocks:   make([]blockState, len(a.blocks)),
		dies:     make([]sim.FIFOResource, len(a.dies)),
		channels: make([]sim.FIFOResource, len(a.channels)),
		stats:    a.stats,
	}
	copy(s.blocks, a.blocks)
	copy(s.dies, a.dies)
	copy(s.channels, a.channels)
	if a.rel != nil {
		s.relRNG = a.rel.rng
	}
	return s
}

// Restore installs a previously captured state into a, which must share the
// captured array's geometry. Commands still queued on the domains belong to
// the timeline being abandoned, so they are discarded un-applied rather than
// flushed — the kernel's own Restore (which the caller runs first) has
// already reset the safe horizon that guarded them, and the captured busy
// horizons being installed here already include everything the snapshot saw.
func (a *Array) Restore(s *ArrayState) error {
	if len(s.blocks) != len(a.blocks) || len(s.dies) != len(a.dies) || len(s.channels) != len(a.channels) {
		return fmt.Errorf("nand: restore geometry mismatch (%d/%d/%d blocks/dies/channels vs %d/%d/%d)",
			len(s.blocks), len(s.dies), len(s.channels), len(a.blocks), len(a.dies), len(a.channels))
	}
	a.discardDomains()
	copy(a.blocks, s.blocks)
	copy(a.dies, s.dies)
	copy(a.channels, s.channels)
	a.stats = s.stats
	if a.rel != nil {
		a.rel.rng = s.relRNG
	}
	return nil
}
