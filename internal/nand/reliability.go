// NAND reliability model: per-page bit-error sampling for reads, programs
// and erases, with wear-dependent rate scaling. The model is deliberately
// split from the mechanics in nand.go — when every rate is zero the model is
// nil and no code path here runs, so a reliability-disabled array behaves
// (and costs) byte-for-byte like one built before the model existed.
//
// Error *injection* lives here; error *recovery* (read-retry ladders,
// frontier relocation, bad-block retirement) lives in the FTL, which owns
// the mapping the recovery must preserve.
package nand

import "fmt"

// ReliabilityConfig sets the per-operation fault rates. All probabilities
// are per operation on a pristine (erase count 0) block; the effective rate
// of each fault on block b is rate × (1 + WearFactor × EraseCount(b)), so
// worn blocks fail more, which is what drives retirement traffic toward the
// blocks GC and wear-leveling churn hardest.
type ReliabilityConfig struct {
	// ReadRetryRate is the probability a page read needs at least one
	// voltage-shift retry before ECC converges (correctable — latency only).
	ReadRetryRate float64
	// RetryEscalation is the geometric continuation probability that a
	// correctable read needs one more retry step after the previous one.
	RetryEscalation float64
	// UncorrectableRate is the probability a page read exhausts the
	// hard-decision retry ladder and needs a soft-decision decode.
	UncorrectableRate float64
	// ProgramFailRate is the probability a page program reports status FAIL.
	ProgramFailRate float64
	// EraseFailRate is the probability a block erase reports status FAIL.
	EraseFailRate float64
	// WearFactor scales every rate linearly with the block's erase count.
	WearFactor float64
}

// Enabled reports whether any fault can ever fire. A config with all rates
// zero is equivalent to no model at all, and callers normalize it to nil.
func (c ReliabilityConfig) Enabled() bool {
	return c.ReadRetryRate > 0 || c.UncorrectableRate > 0 ||
		c.ProgramFailRate > 0 || c.EraseFailRate > 0
}

// Validate reports a descriptive error for out-of-range rates.
func (c ReliabilityConfig) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"ReadRetryRate", c.ReadRetryRate}, {"RetryEscalation", c.RetryEscalation},
		{"UncorrectableRate", c.UncorrectableRate},
		{"ProgramFailRate", c.ProgramFailRate}, {"EraseFailRate", c.EraseFailRate},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("nand: reliability %s = %v, must be in [0,1]", p.name, p.v)
		}
	}
	if c.WearFactor < 0 {
		return fmt.Errorf("nand: reliability WearFactor = %v, must be >= 0", c.WearFactor)
	}
	return nil
}

// maxRetrySteps bounds a single correctable read's voltage-shift ladder at
// the model level; the FTL additionally clamps to its configured budget.
const maxRetrySteps = 8

// relModel is the sampling state. It carries its own splitmix64 PRNG rather
// than *sim.RNG so the stream position is a single uint64 that Snapshot and
// Restore copy exactly — forked runs replay the identical fault schedule.
type relModel struct {
	cfg ReliabilityConfig
	rng uint64
}

// splitmix64 is the standard 64-bit mixer; one step advances the state.
func (m *relModel) next() uint64 {
	m.rng += 0x9e3779b97f4a7c15
	z := m.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0,1).
func (m *relModel) float() float64 {
	return float64(m.next()>>11) / (1 << 53)
}

// wear returns the rate multiplier for block b.
func (m *relModel) wear(ec uint32) float64 {
	return 1 + m.cfg.WearFactor*float64(ec)
}

// EnableReliability installs the fault model. A config with all rates zero
// installs nothing, preserving the exact behavior of an unmodeled array.
// seed positions the model's private PRNG stream; callers derive it from the
// simulation seed so runs stay reproducible.
func (a *Array) EnableReliability(cfg ReliabilityConfig, seed uint64) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if !cfg.Enabled() {
		a.rel = nil
		return nil
	}
	a.rel = &relModel{cfg: cfg, rng: seed}
	return nil
}

// ReliabilityEnabled reports whether a fault model is installed.
func (a *Array) ReliabilityEnabled() bool { return a.rel != nil }

// SampleRead draws the fault outcome for one page read of block: steps is
// the number of voltage-shift retry reads needed after the initial read
// (0 = clean first read), and uncorrectable means the hard-decision ladder
// is exhausted and a soft-decision decode is required. Data is always
// recoverable — the model adds latency and wear, never loses bits — which
// is what lets the FTL keep its mapping contract under read faults.
func (a *Array) SampleRead(block int) (steps int, uncorrectable bool) {
	m := a.rel
	if m == nil {
		return 0, false
	}
	w := m.wear(a.blocks[block].eraseCount)
	r := m.float()
	pu := m.cfg.UncorrectableRate * w
	if r < pu {
		a.stats.UncorrectableReads++
		return 0, true
	}
	if r < pu+m.cfg.ReadRetryRate*w {
		steps = 1
		for steps < maxRetrySteps && m.float() < m.cfg.RetryEscalation {
			steps++
		}
		a.stats.ReadRetries += uint64(steps)
		return steps, false
	}
	return 0, false
}

// SampleProgramFail draws whether the next page program of block reports
// status FAIL. The FTL calls it before each program attempt and, on true,
// charges the failed attempt and relocates the page buffer.
func (a *Array) SampleProgramFail(block int) bool {
	m := a.rel
	if m == nil {
		return false
	}
	return m.float() < m.cfg.ProgramFailRate*m.wear(a.blocks[block].eraseCount)
}

// SampleEraseFail draws whether an erase of block reports status FAIL.
func (a *Array) SampleEraseFail(block int) bool {
	m := a.rel
	if m == nil {
		return false
	}
	return m.float() < m.cfg.EraseFailRate*m.wear(a.blocks[block].eraseCount)
}

// ProgramFailedAttempt charges the cost of a page program that reported
// status FAIL: the data crossed the bus and the die spent tPROG before the
// status read, and the ruined page is consumed — flash cannot retry a
// program in place, so the block's program frontier advances past it.
func (a *Array) ProgramFailedAttempt(block, nbytes int) {
	a.checkAddr(block, 0)
	bs := &a.blocks[block]
	if bs.nextPage >= a.geo.PagesPerBlock {
		panic(fmt.Sprintf("nand: failed program past end of block %d", block))
	}
	if nbytes <= 0 || nbytes > a.geo.PageSize {
		nbytes = a.geo.PageSize
	}
	bs.nextPage++
	bs.erased = false
	a.stats.ProgramFails++

	die := a.geo.DieOfBlock(block)
	ch := a.geo.ChannelOfDie(die)
	if a.dom != nil {
		a.dom.submit(ch, domCmd{kind: domProgram, die: int32(die),
			op: a.tim.CmdOverhead + a.tim.ProgramPage, xfer: a.tim.TransferTime(nbytes)}, false)
		return
	}
	now := a.eng.Now()
	_, xferDone := a.channels[ch].Reserve(now, a.tim.TransferTime(nbytes))
	a.dies[die].Reserve(xferDone, a.tim.CmdOverhead+a.tim.ProgramPage)
}

// EraseFailedAttempt charges the cost of a block erase that reported status
// FAIL: the die spent tBERS (and the block took the P/E stress) but the
// block did not reach the erased state, so it cannot be programmed again.
func (a *Array) EraseFailedAttempt(block int) {
	a.checkAddr(block, 0)
	bs := &a.blocks[block]
	bs.eraseCount++
	bs.everErased = true
	a.stats.EraseFails++

	die := a.geo.DieOfBlock(block)
	if a.dom != nil {
		a.dom.submit(a.geo.ChannelOfDie(die), domCmd{kind: domErase, die: int32(die),
			op: a.tim.CmdOverhead + a.tim.EraseBlock}, false)
		return
	}
	a.dies[die].Reserve(a.eng.Now(), a.tim.CmdOverhead+a.tim.EraseBlock)
}
