// Package nand models a NAND flash array: geometry (channels, packages,
// dies, planes, blocks, pages), operation timing (tR / tPROG / tBERS and
// channel transfer), per-die and per-channel contention, erase-count (P/E
// cycle) tracking, and the physical-ordering rules of flash (erase before
// program, program pages in order, no in-place overwrite).
//
// The array is deliberately policy-free: page validity, mapping, and garbage
// collection live in the FTL (package ftl). The array's job is to make every
// flash operation cost the right amount of virtual time and to count
// operations for the paper's amplification and lifetime analyses.
package nand

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/sim"
)

// Geometry describes the physical organization of the flash array.
type Geometry struct {
	Channels           int // independent buses
	PackagesPerChannel int
	DiesPerPackage     int
	PlanesPerDie       int
	BlocksPerPlane     int
	PagesPerBlock      int
	PageSize           int // bytes per physical page
}

// Validate reports a descriptive error for nonsensical geometries.
func (g Geometry) Validate() error {
	fields := []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels}, {"PackagesPerChannel", g.PackagesPerChannel},
		{"DiesPerPackage", g.DiesPerPackage}, {"PlanesPerDie", g.PlanesPerDie},
		{"BlocksPerPlane", g.BlocksPerPlane}, {"PagesPerBlock", g.PagesPerBlock},
		{"PageSize", g.PageSize},
	}
	for _, f := range fields {
		if f.v <= 0 {
			return fmt.Errorf("nand: geometry field %s = %d, must be positive", f.name, f.v)
		}
	}
	return nil
}

// TotalDies returns the number of independently operating dies.
func (g Geometry) TotalDies() int {
	return g.Channels * g.PackagesPerChannel * g.DiesPerPackage
}

// BlocksPerDie returns blocks across all planes of one die.
func (g Geometry) BlocksPerDie() int { return g.PlanesPerDie * g.BlocksPerPlane }

// TotalBlocks returns the total block count of the array.
func (g Geometry) TotalBlocks() int { return g.TotalDies() * g.BlocksPerDie() }

// TotalPages returns the total physical page count.
func (g Geometry) TotalPages() int { return g.TotalBlocks() * g.PagesPerBlock }

// TotalBytes returns raw capacity in bytes.
func (g Geometry) TotalBytes() int64 {
	return int64(g.TotalPages()) * int64(g.PageSize)
}

// DieOfBlock maps a global block index to its die.
func (g Geometry) DieOfBlock(block int) int { return block / g.BlocksPerDie() }

// ChannelOfDie maps a die to the channel its package hangs off.
// Dies are numbered so that consecutive dies stripe across channels.
func (g Geometry) ChannelOfDie(die int) int { return die % g.Channels }

// ChannelOfBlock maps a global block index to its channel.
func (g Geometry) ChannelOfBlock(block int) int {
	return g.ChannelOfDie(g.DieOfBlock(block))
}

// PlaneOfBlock maps a global block index to its plane within the die.
func (g Geometry) PlaneOfBlock(block int) int {
	return (block % g.BlocksPerDie()) / g.BlocksPerPlane
}

// Timing holds the latency parameters of the flash parts.
type Timing struct {
	ReadPage    sim.VTime // tR: cell array → page register
	ProgramPage sim.VTime // tPROG: page register → cell array
	EraseBlock  sim.VTime // tBERS
	CmdOverhead sim.VTime // command/address cycles per operation

	// ChannelMBps is the bus transfer rate in MB/s used to move a page
	// between the controller and the die's page register.
	ChannelMBps int

	// Per-operation energy in nanojoules (typical MLC parts: a read costs
	// tens of µJ, a program a few hundred µJ, a block erase ~1.5 mJ).
	// Zero values disable energy reporting.
	ReadEnergyNJ    uint64
	ProgramEnergyNJ uint64
	EraseEnergyNJ   uint64
}

// DefaultEnergy fills typical MLC per-operation energies (nJ).
func (t Timing) WithDefaultEnergy() Timing {
	t.ReadEnergyNJ = 25_000
	t.ProgramEnergyNJ = 220_000
	t.EraseEnergyNJ = 1_500_000
	return t
}

// Validate reports a descriptive error for nonsensical timings.
func (t Timing) Validate() error {
	if t.ReadPage == 0 || t.ProgramPage == 0 || t.EraseBlock == 0 {
		return fmt.Errorf("nand: timing has zero core latency: %+v", t)
	}
	if t.ChannelMBps <= 0 {
		return fmt.Errorf("nand: ChannelMBps = %d, must be positive", t.ChannelMBps)
	}
	return nil
}

// TransferTime returns the bus time to move n bytes.
func (t Timing) TransferTime(n int) sim.VTime {
	if n <= 0 {
		return 0
	}
	// bytes / (MB/s) = microseconds per (MB → bytes): ns = n * 1000 / MBps.
	return sim.VTime(uint64(n) * 1000 / uint64(t.ChannelMBps))
}

// blockState tracks per-block physical lifecycle for ordering checks and
// lifetime accounting.
type blockState struct {
	eraseCount uint32
	erased     bool // true after erase, false once any page is programmed? (see nextPage)
	nextPage   int  // next programmable page index (sequential-program rule)
	everErased bool
}

// Stats aggregates operation counts for the whole array.
type Stats struct {
	Reads    uint64
	Programs uint64
	Erases   uint64
	// BytesRead / BytesProgrammed count payload moved over the buses.
	BytesRead       uint64
	BytesProgrammed uint64

	// Reliability-model counters (all zero when the model is disabled).
	// ReadRetries counts voltage-shift retry reads beyond the first read;
	// UncorrectableReads counts reads that needed a soft-decision decode;
	// ProgramFails / EraseFails count operations that reported status FAIL.
	ReadRetries        uint64
	UncorrectableReads uint64
	ProgramFails       uint64
	EraseFails         uint64
}

// Array is the simulated flash device.
type Array struct {
	geo Geometry
	tim Timing
	eng *sim.Engine

	dies     []sim.FIFOResource // die-level busy (array operations)
	channels []sim.FIFOResource // bus-level busy (transfers)
	blocks   []blockState

	stats Stats
	rel   *relModel // nil unless EnableReliability installed nonzero rates

	// dom is the per-channel parallel timing path (see domain.go); nil runs
	// every reservation inline on the main loop. Either way the observable
	// simulation output is byte-identical.
	dom *domainSet

	// MaxPE is the endurance rating used by the lifetime equation; 0 means
	// "unspecified" and lifetime reports are skipped.
	MaxPE uint32
}

// New constructs an Array. Blocks start in the pristine (erased) state so
// the FTL can program them immediately, but their erase count starts at 0.
func New(eng *sim.Engine, geo Geometry, tim Timing) (*Array, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if err := tim.Validate(); err != nil {
		return nil, err
	}
	a := &Array{
		geo:      geo,
		tim:      tim,
		eng:      eng,
		dies:     make([]sim.FIFOResource, geo.TotalDies()),
		channels: make([]sim.FIFOResource, geo.Channels),
		blocks:   make([]blockState, geo.TotalBlocks()),
	}
	for i := range a.blocks {
		a.blocks[i].erased = true
	}
	return a, nil
}

// Geometry returns the array's geometry.
func (a *Array) Geometry() Geometry { return a.geo }

// Timing returns the array's timing parameters.
func (a *Array) Timing() Timing { return a.tim }

// Stats returns a snapshot of operation counters.
func (a *Array) Stats() Stats { return a.stats }

// EraseCount returns the erase count of a block.
func (a *Array) EraseCount(block int) uint32 { return a.blocks[block].eraseCount }

// TotalErases returns the sum of erase counts (== Stats().Erases).
func (a *Array) TotalErases() uint64 { return a.stats.Erases }

// MaxEraseCount returns the highest per-block erase count (wear skew).
func (a *Array) MaxEraseCount() uint32 {
	var max uint32
	for i := range a.blocks {
		if a.blocks[i].eraseCount > max {
			max = a.blocks[i].eraseCount
		}
	}
	return max
}

// readPageAccount runs the submission half of a page read — the address and
// ordering checks and the operation counters the FTL observes synchronously
// — and resolves the die, channel and clamped byte count. It is common to
// the inline and domain paths, which keeps their observable state identical.
func (a *Array) readPageAccount(block, page, nbytes int) (die, ch, nb int) {
	a.checkAddr(block, page)
	bs := &a.blocks[block]
	if page >= bs.nextPage {
		panic(fmt.Sprintf("nand: read of unprogrammed page %d of block %d (programmed up to %d)",
			page, block, bs.nextPage))
	}
	if nbytes <= 0 || nbytes > a.geo.PageSize {
		nbytes = a.geo.PageSize
	}
	a.stats.Reads++
	a.stats.BytesRead += uint64(nbytes)

	die = a.geo.DieOfBlock(block)
	return die, a.geo.ChannelOfDie(die), nbytes
}

// readPageReserve books the die and channel time of one page read inline and
// returns when the data lands in the controller.
func (a *Array) readPageReserve(block, page, nbytes int) sim.VTime {
	die, ch, nb := a.readPageAccount(block, page, nbytes)
	now := a.eng.Now()
	_, dieDone := a.dies[die].Reserve(now, a.tim.CmdOverhead+a.tim.ReadPage)
	_, xferDone := a.channels[ch].Reserve(dieDone, a.tim.TransferTime(nb))
	return xferDone
}

// ReadPage reads nbytes of a page: the die is busy for tR, then the channel
// carries the data to the controller. The returned future completes when the
// data is in the controller.
func (a *Array) ReadPage(block, page, nbytes int) *sim.Future {
	if a.dom != nil {
		die, ch, nb := a.readPageAccount(block, page, nbytes)
		return a.dom.submit(ch, domCmd{kind: domRead, die: int32(die),
			op: a.tim.CmdOverhead + a.tim.ReadPage, xfer: a.tim.TransferTime(nb)}, true)
	}
	xferDone := a.readPageReserve(block, page, nbytes)
	f := sim.NewFuture(a.eng)
	a.eng.AtComplete(xferDone, f)
	return f
}

// ReadPageNoWait is ReadPage for fire-and-forget callers (GC page reads):
// identical reservations, counters and timing effects — later operations on
// the same die and channel queue behind it just the same — but no future is
// created and no kernel event scheduled. A discarded future's completion
// event has no observable effect (nothing waits, and the clock it would
// advance is per-event), so dropping it changes nothing but dispatch cost.
func (a *Array) ReadPageNoWait(block, page, nbytes int) {
	if a.dom != nil {
		die, ch, nb := a.readPageAccount(block, page, nbytes)
		a.dom.submit(ch, domCmd{kind: domRead, die: int32(die),
			op: a.tim.CmdOverhead + a.tim.ReadPage, xfer: a.tim.TransferTime(nb)}, false)
		return
	}
	a.readPageReserve(block, page, nbytes)
}

// ProgramPage programs the next page of a block (flash programs pages in
// order). It returns the page index programmed and a future that completes
// when the program finishes. Programming a full block panics — the FTL must
// rotate to a fresh block.
func (a *Array) ProgramPage(block, nbytes int) (page int, f *sim.Future) {
	if a.dom != nil {
		page, die, ch, nb := a.programPageAccount(block, nbytes)
		return page, a.dom.submit(ch, domCmd{kind: domProgram, die: int32(die),
			op: a.tim.CmdOverhead + a.tim.ProgramPage, xfer: a.tim.TransferTime(nb)}, true)
	}
	page, progDone := a.programPageReserve(block, nbytes)
	f = sim.NewFuture(a.eng)
	a.eng.AtComplete(progDone, f)
	return page, f
}

// programPageAccount runs the submission half of a page program: it advances
// the block's program frontier — the FTL reads the returned page index
// synchronously, which is why frontier movement can never defer to a domain
// — and bumps the counters.
func (a *Array) programPageAccount(block, nbytes int) (page, die, ch, nb int) {
	a.checkAddr(block, 0)
	bs := &a.blocks[block]
	if bs.nextPage >= a.geo.PagesPerBlock {
		panic(fmt.Sprintf("nand: program past end of block %d", block))
	}
	if nbytes <= 0 || nbytes > a.geo.PageSize {
		nbytes = a.geo.PageSize
	}
	page = bs.nextPage
	bs.nextPage++
	bs.erased = false
	a.stats.Programs++
	a.stats.BytesProgrammed += uint64(nbytes)

	die = a.geo.DieOfBlock(block)
	return page, die, a.geo.ChannelOfDie(die), nbytes
}

// programPageReserve advances the block's program frontier and books the
// channel and die time inline; it returns the programmed page and the
// finish time.
func (a *Array) programPageReserve(block, nbytes int) (page int, progDone sim.VTime) {
	page, die, ch, nb := a.programPageAccount(block, nbytes)
	now := a.eng.Now()
	// Data moves over the channel into the die's page register, then the
	// die programs the cell array.
	_, xferDone := a.channels[ch].Reserve(now, a.tim.TransferTime(nb))
	_, progDone = a.dies[die].Reserve(xferDone, a.tim.CmdOverhead+a.tim.ProgramPage)
	return page, progDone
}

// ProgramPageNoWait is ProgramPage for fire-and-forget callers (metadata
// page programs, whose durability the in-DRAM table makes moot): identical
// reservations and counters, no future, no kernel event.
func (a *Array) ProgramPageNoWait(block, nbytes int) (page int) {
	if a.dom != nil {
		page, die, ch, nb := a.programPageAccount(block, nbytes)
		a.dom.submit(ch, domCmd{kind: domProgram, die: int32(die),
			op: a.tim.CmdOverhead + a.tim.ProgramPage, xfer: a.tim.TransferTime(nb)}, false)
		return page
	}
	page, _ = a.programPageReserve(block, nbytes)
	return page
}

// EraseBlock erases a block, incrementing its P/E count. The future
// completes when the erase finishes.
func (a *Array) EraseBlock(block int) *sim.Future {
	if a.dom != nil {
		die, ch := a.eraseBlockAccount(block)
		return a.dom.submit(ch, domCmd{kind: domErase, die: int32(die),
			op: a.tim.CmdOverhead + a.tim.EraseBlock}, true)
	}
	done := a.eraseBlockReserve(block)
	f := sim.NewFuture(a.eng)
	a.eng.AtComplete(done, f)
	return f
}

// eraseBlockAccount runs the submission half of a block erase: lifecycle
// flip (the FTL re-reads IsErased and the frontier synchronously) and
// counters.
func (a *Array) eraseBlockAccount(block int) (die, ch int) {
	a.checkAddr(block, 0)
	bs := &a.blocks[block]
	bs.eraseCount++
	bs.erased = true
	bs.everErased = true
	bs.nextPage = 0
	a.stats.Erases++

	die = a.geo.DieOfBlock(block)
	return die, a.geo.ChannelOfDie(die)
}

func (a *Array) eraseBlockReserve(block int) sim.VTime {
	die, _ := a.eraseBlockAccount(block)
	now := a.eng.Now()
	_, done := a.dies[die].Reserve(now, a.tim.CmdOverhead+a.tim.EraseBlock)
	return done
}

// EraseBlockNoWait is EraseBlock for fire-and-forget callers (GC erases):
// identical reservations and counters, no future, no kernel event.
func (a *Array) EraseBlockNoWait(block int) {
	if a.dom != nil {
		die, ch := a.eraseBlockAccount(block)
		a.dom.submit(ch, domCmd{kind: domErase, die: int32(die),
			op: a.tim.CmdOverhead + a.tim.EraseBlock}, false)
		return
	}
	a.eraseBlockReserve(block)
}

// ProgrammedPages returns how many pages of the block are programmed.
func (a *Array) ProgrammedPages(block int) int { return a.blocks[block].nextPage }

// IsErased reports whether the block is erased and unprogrammed.
func (a *Array) IsErased(block int) bool {
	return a.blocks[block].erased && a.blocks[block].nextPage == 0
}

// DieIdleAt reports whether the die holding block is idle at time t — the
// deallocator uses this to schedule background GC in idle windows.
func (a *Array) DieIdleAt(block int, t sim.VTime) bool {
	a.syncDomains()
	return a.dies[a.geo.DieOfBlock(block)].IdleAt(t)
}

// AllDiesIdleAt reports whether the whole array is idle at time t.
func (a *Array) AllDiesIdleAt(t sim.VTime) bool {
	a.syncDomains()
	for i := range a.dies {
		if !a.dies[i].IdleAt(t) {
			return false
		}
	}
	return true
}

// DieBusyTotal returns the cumulative busy time of die d (utilization).
func (a *Array) DieBusyTotal(d int) sim.VTime {
	a.syncDomains()
	return a.dies[d].BusyTotal()
}

// ReserveDie books dur of busy time on the die holding block — used by
// recovery scans that sweep OOB areas without going through the normal
// page-read path. It returns the reservation's end time, which is why it
// must sync the domains first: the end is observed synchronously, so the
// die's horizon has to reflect every command submitted before this one.
func (a *Array) ReserveDie(block int, dur sim.VTime) sim.VTime {
	a.checkAddr(block, 0)
	a.syncDomains()
	_, end := a.dies[a.geo.DieOfBlock(block)].Reserve(a.eng.Now(), dur)
	return end
}

// MaxBacklog returns the largest per-die backlog (busy-until minus now) at
// time t — a probe for burstiness diagnostics.
func (a *Array) MaxBacklog(t sim.VTime) sim.VTime {
	a.syncDomains()
	var max sim.VTime
	for i := range a.dies {
		if bu := a.dies[i].BusyUntil(); bu > t && bu-t > max {
			max = bu - t
		}
	}
	return max
}

// ChannelBusyTotal returns the cumulative busy time of channel c.
func (a *Array) ChannelBusyTotal(c int) sim.VTime {
	a.syncDomains()
	return a.channels[c].BusyTotal()
}

func (a *Array) checkAddr(block, page int) {
	if block < 0 || block >= len(a.blocks) {
		panic(fmt.Sprintf("nand: block %d out of range [0,%d)", block, len(a.blocks)))
	}
	if page < 0 || page >= a.geo.PagesPerBlock {
		panic(fmt.Sprintf("nand: page %d out of range [0,%d)", page, a.geo.PagesPerBlock))
	}
}

// EnergyNJ returns the cumulative flash energy consumed so far in
// nanojoules (reads + programs + erases at the configured per-op costs).
func (a *Array) EnergyNJ() uint64 {
	return a.stats.Reads*a.tim.ReadEnergyNJ +
		a.stats.Programs*a.tim.ProgramEnergyNJ +
		a.stats.Erases*a.tim.EraseEnergyNJ
}

// Lifetime computes the paper's Equation (1): the projected block lifetime
// PECmax × Top / BEC, using the array-wide total erase count as BEC and the
// total elapsed operation time Top. Returns 0 when no erases have occurred
// or MaxPE is unset; callers compare ratios between configurations.
func (a *Array) Lifetime(top sim.VTime) float64 {
	if a.stats.Erases == 0 || a.MaxPE == 0 {
		return 0
	}
	return float64(a.MaxPE) * top.Seconds() / float64(a.stats.Erases)
}
