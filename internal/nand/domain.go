// Per-channel event domains: the parallel half of the DES kernel.
//
// A flash operation's cost is closed-form arithmetic over two FIFO busy
// horizons (its die and its channel bus), and dies map many-to-one onto
// channels — so the resource graph partitions cleanly by channel. When
// domains are enabled, command *submission* stays on the main sequential
// loop (address checks, block lifecycle, fault sampling and counters are all
// observed synchronously by the FTL), while the timing arithmetic — the
// Reserve calls that walk the die/channel horizons forward and fix each
// command's completion instant — is deferred onto the command's channel
// domain. Domains replay their queues independently, in submission order,
// and the results merge back into the kernel under sequence numbers that
// were reserved at submission, which makes the dispatch order — and hence
// every simulation output — byte-identical to the sequential kernel at any
// GOMAXPROCS.
//
// Synchronization is conservative (lookahead-based): every queued command
// with an observable completion lowers the kernel's safe horizon to a sound
// lower bound on its finish time (submission instant + bus transfer + array
// operation, ignoring queueing — queueing only pushes completions later).
// The kernel never advances the clock to the horizon without first asking
// the array to flush, so injected completions are never in the past.
package nand

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/checkin-kv/checkin/internal/sim"
)

// Command kinds. The kind fixes the resource walk the domain replays:
// reads hold the die first and then the bus, programs cross the bus into
// the page register first and then hold the die, erases hold only the die.
const (
	domRead uint8 = iota
	domProgram
	domErase
)

// domCmd is one deferred timing reservation. at/op/xfer are fixed at
// submission; end is filled in by the domain replay; seq/fut are set only
// for commands with an observable completion (fire-and-forget NoWait and
// failed-attempt charges carry neither).
type domCmd struct {
	kind uint8
	die  int32
	at   sim.VTime // submission instant
	op   sim.VTime // die-busy duration (command overhead included)
	xfer sim.VTime // bus transfer duration (0 when no data moves)
	end  sim.VTime // computed completion instant (replay output)
	seq  uint64    // reserved kernel sequence number (0 when fut is nil)
	fut  *sim.Future
}

// domQueue is one channel's pending command queue. Queues get their own
// backing arrays, so parallel replays write end fields into disjoint
// allocations (no false sharing beyond the read-only headers).
type domQueue struct {
	cmds []domCmd
}

// domainSet hangs off an Array when parallel domains are enabled.
type domainSet struct {
	arr     *Array
	queues  []domQueue // one per channel
	pending int        // total queued commands across all queues

	// workers caps the flush fan-out; threshold is the minimum total
	// pending count that justifies spawning goroutines at all — below it a
	// flush replays inline, which keeps the domain path's overhead near
	// zero in the steady state where commands complete one at a time.
	workers   int
	threshold int
}

// domainFanoutThreshold is the default inline/parallel cut-over. A replayed
// command is two horizon walks (~tens of ns); goroutine spawn plus WaitGroup
// handshake costs on the order of a microsecond per worker, so fan-out only
// pays in NAND storm phases (checkpoint MultiCoW bursts, GC write storms)
// where hundreds of commands queue between syncs.
const domainFanoutThreshold = 128

// EnableDomains partitions the array's timing model into per-channel event
// domains and registers the flush with the kernel's conservative-sync hook.
// workers bounds the flush fan-out; workers <= 0 means GOMAXPROCS. Output
// is byte-identical to the sequential path by construction, so this is
// purely a wall-clock optimization. Must not be called with operations in
// flight (enable at construction, or at a quiescent point).
func (a *Array) EnableDomains(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	a.dom = &domainSet{
		arr:       a,
		queues:    make([]domQueue, a.geo.Channels),
		workers:   workers,
		threshold: domainFanoutThreshold,
	}
	a.eng.SetExternalSync(a.dom.flush)
}

// DisableDomains flushes any pending commands and returns the array to the
// purely sequential path.
func (a *Array) DisableDomains() {
	if a.dom == nil {
		return
	}
	a.eng.SyncExternal()
	a.eng.SetExternalSync(nil)
	a.dom = nil
}

// DomainsEnabled reports whether the parallel timing path is active.
func (a *Array) DomainsEnabled() bool { return a.dom != nil }

// syncDomains forces every queued command's timing to be applied. Callers
// that read resource state the domains own — busy horizons, backlogs,
// utilization totals — must sync first. Cheap no-op when nothing is queued.
func (a *Array) syncDomains() {
	if a.dom != nil && a.dom.pending > 0 {
		a.eng.SyncExternal()
	}
}

// discardDomains drops queued commands without applying them — restore-path
// only: the commands belong to an abandoned timeline, and the kernel's
// Restore has already reset the safe horizon that guarded them.
func (a *Array) discardDomains() {
	if a.dom == nil {
		return
	}
	for i := range a.dom.queues {
		q := &a.dom.queues[i]
		for j := range q.cmds {
			q.cmds[j] = domCmd{} // release future references
		}
		q.cmds = q.cmds[:0]
	}
	a.dom.pending = 0
}

// submit queues a command on channel ch. When the command has an observable
// completion (wantFut), it draws its kernel sequence number now — the same
// draw the sequential AtComplete would make at this exact point in the
// submission order — and lowers the safe horizon to a sound lower bound on
// its completion time.
func (d *domainSet) submit(ch int, c domCmd, wantFut bool) *sim.Future {
	eng := d.arr.eng
	c.at = eng.Now()
	if wantFut {
		c.fut = sim.NewFuture(eng)
		c.seq = eng.ReserveSeq()
		// Queueing behind earlier commands only pushes the completion
		// later, so submission + transfer + operation is a sound bound.
		eng.LowerHorizon(c.at + c.xfer + c.op)
	}
	q := &d.queues[ch]
	q.cmds = append(q.cmds, c)
	d.pending++
	return c.fut
}

// flush replays every queued command and merges the completions back into
// the kernel. Called by the kernel's conservative-sync hook (and by
// syncDomains) on the main goroutine; workers never outlive the call.
func (d *domainSet) flush() {
	if d.pending == 0 {
		return
	}
	d.pending = 0
	if d.workers > 1 && runtime.GOMAXPROCS(0) > 1 {
		d.replayParallel()
	} else {
		for i := range d.queues {
			if len(d.queues[i].cmds) > 0 {
				d.arr.replayQueue(i)
			}
		}
	}
	// Merge on the main goroutine, channels in index order. Any injection
	// order yields the same dispatch: the reserved (at, seq) pairs form the
	// same strict total order the sequential kernel would have produced.
	for i := range d.queues {
		q := &d.queues[i]
		for j := range q.cmds {
			c := &q.cmds[j]
			if c.fut != nil {
				d.arr.eng.InjectCompletion(c.end, c.seq, c.fut)
			}
			*c = domCmd{}
		}
		q.cmds = q.cmds[:0]
	}
}

// replayParallel fans the non-empty queues out across worker goroutines.
// Work is split by channel — each queue touches only its own channel bus
// and the dies striped onto it, so workers share no mutable state.
func (d *domainSet) replayParallel() {
	work := make([]int, 0, len(d.queues))
	total := 0
	for i := range d.queues {
		if n := len(d.queues[i].cmds); n > 0 {
			work = append(work, i)
			total += n
		}
	}
	if total < d.threshold || len(work) < 2 {
		for _, i := range work {
			d.arr.replayQueue(i)
		}
		return
	}
	workers := d.workers
	if workers > len(work) {
		workers = len(work)
	}
	var next int32 // next index into work, claimed atomically
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt32(&next, 1)) - 1
				if i >= len(work) {
					return
				}
				d.arr.replayQueue(work[i])
			}
		}()
	}
	wg.Wait()
}

// replayQueue applies one channel's queued commands in submission order:
// exactly the Reserve calls — same arguments, same order per resource —
// the sequential path would have made inline.
func (a *Array) replayQueue(ch int) {
	bus := &a.channels[ch]
	q := &a.dom.queues[ch]
	for j := range q.cmds {
		c := &q.cmds[j]
		die := &a.dies[c.die]
		switch c.kind {
		case domRead:
			_, dieDone := die.Reserve(c.at, c.op)
			_, c.end = bus.Reserve(dieDone, c.xfer)
		case domProgram:
			_, xferDone := bus.Reserve(c.at, c.xfer)
			_, c.end = die.Reserve(xferDone, c.op)
		case domErase:
			_, c.end = die.Reserve(c.at, c.op)
		}
	}
}
