package nand

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/checkin-kv/checkin/internal/sim"
)

// domainScript drives a mixed flash workload — waited and fire-and-forget
// reads/programs/erases, failed-attempt charges, mid-run state queries and
// a recovery-style die reservation — against an array, and returns a full
// trace of everything observable: completion times, page indices, query
// answers, final busy horizons and counters. The trace must be identical
// with domains on and off.
func domainScript(t *testing.T, enableDomains bool, workers int) string {
	t.Helper()
	e := sim.NewEngine()
	a := newTestArray(t, e)
	if err := a.EnableReliability(ReliabilityConfig{
		ReadRetryRate:     0.2,
		RetryEscalation:   0.5,
		UncorrectableRate: 0.05,
		ProgramFailRate:   0.1,
		EraseFailRate:     0.05,
		WearFactor:        0.1,
	}, 42); err != nil {
		t.Fatal(err)
	}
	if enableDomains {
		a.EnableDomains(workers)
	}

	var trace []string
	note := func(format string, args ...any) {
		trace = append(trace, fmt.Sprintf(format, args...))
	}
	blocks := a.geo.TotalBlocks()

	// Seed every block with a couple of programmed pages.
	for b := 0; b < blocks; b++ {
		b := b
		page, f := a.ProgramPage(b, 0)
		f.OnComplete(func() { note("seed prog b%d p%d done @%v", b, page, e.Now()) })
		a.ProgramPageNoWait(b, 2048)
	}
	e.Run()

	// Burst phase: interleave every op kind across all channels at one
	// instant, with queries and failure charges mixed in.
	e.At(e.Now()+10*sim.Microsecond, func() {
		for b := 0; b < blocks; b++ {
			b := b
			f := a.ReadPage(b, 0, 4096)
			f.OnComplete(func() { note("read b%d done @%v", b, e.Now()) })
			if b%3 == 0 {
				a.ReadPageNoWait(b, 1, 512)
			}
			if b%4 == 0 {
				a.ProgramFailedAttempt(b, 4096)
			}
			if b%5 == 0 {
				steps, unc := a.SampleRead(b)
				note("sample b%d steps=%d unc=%v", b, steps, unc)
			}
			page, pf := a.ProgramPage(b, 4096)
			pf.OnComplete(func() { note("prog b%d p%d done @%v", b, page, e.Now()) })
		}
		// Mid-burst state queries force a sync and must see every prior
		// submission's timing applied.
		note("backlog @%v = %v", e.Now(), a.MaxBacklog(e.Now()))
		note("die0 idle = %v", a.DieIdleAt(0, e.Now()))
		note("reserve die end = %v", a.ReserveDie(1, 7*sim.Microsecond))
		for b := 0; b < blocks; b += 2 {
			b := b
			if b%6 == 0 {
				a.EraseFailedAttempt(b)
			}
			ef := a.EraseBlock(b)
			ef.OnComplete(func() { note("erase b%d done @%v", b, e.Now()) })
		}
		if b := blocks - 1; true {
			a.EraseBlockNoWait(1)
			note("erase nowait issued b1, last=%d", b)
		}
	})
	e.Run()

	note("allidle = %v @%v", a.AllDiesIdleAt(e.Now()), e.Now())
	for d := 0; d < a.geo.TotalDies(); d++ {
		note("die%d busy=%v", d, a.DieBusyTotal(d))
	}
	for c := 0; c < a.geo.Channels; c++ {
		note("ch%d busy=%v", c, a.ChannelBusyTotal(c))
	}
	note("stats=%+v energy=%d now=%v executed=%d", a.Stats(), a.EnergyNJ(), e.Now(), e.Executed())

	out := ""
	for _, l := range trace {
		out += l + "\n"
	}
	return out
}

// TestDomainEquivalence is the package-level byte-identity check: the full
// observable trace of a mixed workload must not change when the per-channel
// domains are enabled, at any worker count.
func TestDomainEquivalence(t *testing.T) {
	want := domainScript(t, false, 0)
	for _, workers := range []int{1, 2, 4} {
		got := domainScript(t, true, workers)
		if got != want {
			t.Fatalf("domains on (workers=%d) diverges from sequential:\n--- sequential ---\n%s--- domains ---\n%s",
				workers, want, got)
		}
	}
}

// TestDomainEquivalenceAcrossGOMAXPROCS re-checks byte-identity with the
// runtime actually allowed to run workers in parallel.
func TestDomainEquivalenceAcrossGOMAXPROCS(t *testing.T) {
	want := domainScript(t, false, 0)
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	if got := domainScript(t, true, 4); got != want {
		t.Fatalf("domains on under GOMAXPROCS=4 diverges from sequential:\n--- sequential ---\n%s--- domains ---\n%s",
			want, got)
	}
}

// TestDomainForcedFanout drops the fan-out threshold to zero and checks the
// parallel replay itself (not just the inline fallback) against sequential.
func TestDomainForcedFanout(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	run := func(enable bool) (sim.VTime, sim.VTime, Stats, uint64) {
		e := sim.NewEngine()
		a := newTestArray(t, e)
		if enable {
			a.EnableDomains(4)
			a.dom.threshold = 0
		}
		for b := 0; b < a.geo.TotalBlocks(); b++ {
			a.ProgramPageNoWait(b, 0)
			a.ProgramPageNoWait(b, 0)
		}
		var last *sim.Future
		for round := 0; round < 4; round++ {
			for b := 0; b < a.geo.TotalBlocks(); b++ {
				a.ReadPageNoWait(b, 0, 4096)
				last = a.ReadPage(b, 1, 4096)
				_, pf := a.ProgramPage(b, 4096)
				last = pf
			}
			e.Run()
		}
		_ = last
		return a.MaxBacklog(e.Now()), e.Now(), a.Stats(), e.Executed()
	}

	b0, n0, s0, x0 := run(false)
	b1, n1, s1, x1 := run(true)
	if b0 != b1 || n0 != n1 || s0 != s1 || x0 != x1 {
		t.Fatalf("forced fan-out diverges: backlog %v/%v now %v/%v stats %+v/%+v executed %d/%d",
			b0, b1, n0, n1, s0, s1, x0, x1)
	}
}

// TestDomainSnapshotRestore checks that a snapshot taken with domains on
// (pending commands queued) equals the sequential snapshot, and that
// restore discards queued commands instead of applying them.
func TestDomainSnapshotRestore(t *testing.T) {
	build := func(enable bool) (*sim.Engine, *Array) {
		e := sim.NewEngine()
		a := newTestArray(t, e)
		if enable {
			a.EnableDomains(2)
		}
		for b := 0; b < 4; b++ {
			a.ProgramPageNoWait(b, 0)
		}
		e.Run()
		return e, a
	}

	eSeq, aSeq := build(false)
	eDom, aDom := build(true)
	if eSeq.Now() != eDom.Now() {
		t.Fatalf("clocks diverge before snapshot: %v vs %v", eSeq.Now(), eDom.Now())
	}
	// Queue un-flushed work, then snapshot: the snapshot must include it.
	aSeq.ReadPageNoWait(0, 0, 4096)
	aDom.ReadPageNoWait(0, 0, 4096)
	sSeq := aSeq.Snapshot()
	sDom := aDom.Snapshot()
	if fmt.Sprintf("%+v", sSeq) != fmt.Sprintf("%+v", sDom) {
		t.Fatalf("snapshots diverge:\nseq %+v\ndom %+v", sSeq, sDom)
	}

	// Restore with commands pending: they must be discarded, leaving the
	// restored horizons exactly as captured.
	st := eDom.State()
	aDom.ReadPageNoWait(1, 0, 4096) // pending on the domain, never flushed
	eDom.Restore(st)
	if err := aDom.Restore(sDom); err != nil {
		t.Fatal(err)
	}
	if err := aSeq.Restore(sSeq); err != nil {
		t.Fatal(err)
	}
	if got, want := aDom.MaxBacklog(eDom.Now()), aSeq.MaxBacklog(eSeq.Now()); got != want {
		t.Fatalf("post-restore backlog %v, want %v", got, want)
	}
	if aDom.Stats() != aSeq.Stats() {
		t.Fatalf("post-restore stats %+v, want %+v", aDom.Stats(), aSeq.Stats())
	}
}

// TestDisableDomains checks DisableDomains flushes pending work and the
// array keeps functioning sequentially.
func TestDisableDomains(t *testing.T) {
	e := sim.NewEngine()
	a := newTestArray(t, e)
	a.EnableDomains(2)
	a.ProgramPageNoWait(0, 0)
	f := a.ReadPage(0, 0, 4096) // the read queues behind the program
	a.DisableDomains()
	if a.DomainsEnabled() {
		t.Fatalf("domains still enabled after DisableDomains")
	}
	e.Run()
	if !f.Done() {
		t.Fatalf("future queued before DisableDomains never completed")
	}
	if bu := a.MaxBacklog(0); bu == 0 {
		t.Fatalf("flush did not apply the queued reservations")
	}
}
