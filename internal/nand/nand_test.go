package nand

import (
	"testing"
	"testing/quick"

	"github.com/checkin-kv/checkin/internal/sim"
)

func testGeo() Geometry {
	return Geometry{
		Channels:           2,
		PackagesPerChannel: 1,
		DiesPerPackage:     2,
		PlanesPerDie:       2,
		BlocksPerPlane:     8,
		PagesPerBlock:      16,
		PageSize:           4096,
	}
}

func testTim() Timing {
	return Timing{
		ReadPage:    50 * sim.Microsecond,
		ProgramPage: 500 * sim.Microsecond,
		EraseBlock:  3 * sim.Millisecond,
		CmdOverhead: 1 * sim.Microsecond,
		ChannelMBps: 400,
	}
}

func newTestArray(t *testing.T, e *sim.Engine) *Array {
	t.Helper()
	a, err := New(e, testGeo(), testTim())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGeometryMath(t *testing.T) {
	g := testGeo()
	if g.TotalDies() != 4 {
		t.Errorf("TotalDies = %d, want 4", g.TotalDies())
	}
	if g.BlocksPerDie() != 16 {
		t.Errorf("BlocksPerDie = %d, want 16", g.BlocksPerDie())
	}
	if g.TotalBlocks() != 64 {
		t.Errorf("TotalBlocks = %d, want 64", g.TotalBlocks())
	}
	if g.TotalPages() != 1024 {
		t.Errorf("TotalPages = %d, want 1024", g.TotalPages())
	}
	if g.TotalBytes() != 1024*4096 {
		t.Errorf("TotalBytes = %d", g.TotalBytes())
	}
}

func TestGeometryAddressMapping(t *testing.T) {
	g := testGeo()
	// Block 0 is die 0 plane 0; block 8 is die 0 plane 1; block 16 is die 1.
	if g.DieOfBlock(0) != 0 || g.DieOfBlock(15) != 0 || g.DieOfBlock(16) != 1 {
		t.Error("DieOfBlock wrong")
	}
	if g.PlaneOfBlock(0) != 0 || g.PlaneOfBlock(8) != 1 || g.PlaneOfBlock(17) != 0 {
		t.Error("PlaneOfBlock wrong")
	}
	// Dies stripe across channels.
	if g.ChannelOfDie(0) != 0 || g.ChannelOfDie(1) != 1 || g.ChannelOfDie(2) != 0 {
		t.Error("ChannelOfDie wrong")
	}
	if g.ChannelOfBlock(16) != 1 {
		t.Error("ChannelOfBlock wrong")
	}
}

func TestGeometryValidate(t *testing.T) {
	g := testGeo()
	if err := g.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := g
	bad.PagesPerBlock = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero PagesPerBlock accepted")
	}
	badTim := testTim()
	badTim.ChannelMBps = 0
	if err := badTim.Validate(); err == nil {
		t.Error("zero ChannelMBps accepted")
	}
	if _, err := New(sim.NewEngine(), bad, testTim()); err == nil {
		t.Error("New accepted invalid geometry")
	}
	if _, err := New(sim.NewEngine(), g, badTim); err == nil {
		t.Error("New accepted invalid timing")
	}
}

func TestTransferTime(t *testing.T) {
	tim := testTim() // 400 MB/s → 4096 B = 10.24 µs
	got := tim.TransferTime(4096)
	if got != sim.VTime(4096*1000/400) {
		t.Errorf("TransferTime(4096) = %v", got)
	}
	if tim.TransferTime(0) != 0 || tim.TransferTime(-5) != 0 {
		t.Error("TransferTime of non-positive size should be 0")
	}
}

func TestProgramThenReadTiming(t *testing.T) {
	e := sim.NewEngine()
	a := newTestArray(t, e)

	page, pf := a.ProgramPage(0, 4096)
	if page != 0 {
		t.Fatalf("first program page = %d, want 0", page)
	}
	var progDone, readDone sim.VTime
	pf.OnComplete(func() { progDone = e.Now() })
	e.Run()
	// transfer 10.24µs + cmd 1µs + prog 500µs
	wantProg := testTim().TransferTime(4096) + 1*sim.Microsecond + 500*sim.Microsecond
	if progDone != wantProg {
		t.Errorf("program done at %v, want %v", progDone, wantProg)
	}

	rf := a.ReadPage(0, 0, 4096)
	rf.OnComplete(func() { readDone = e.Now() })
	e.Run()
	wantRead := progDone + 1*sim.Microsecond + 50*sim.Microsecond + testTim().TransferTime(4096)
	if readDone != wantRead {
		t.Errorf("read done at %v, want %v", readDone, wantRead)
	}

	st := a.Stats()
	if st.Programs != 1 || st.Reads != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesProgrammed != 4096 || st.BytesRead != 4096 {
		t.Errorf("byte stats = %+v", st)
	}
}

func TestSequentialProgramRule(t *testing.T) {
	e := sim.NewEngine()
	a := newTestArray(t, e)
	for i := 0; i < testGeo().PagesPerBlock; i++ {
		page, _ := a.ProgramPage(3, 4096)
		if page != i {
			t.Fatalf("program %d landed on page %d", i, page)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("programming past end of block did not panic")
		}
	}()
	a.ProgramPage(3, 4096)
}

func TestReadUnprogrammedPanics(t *testing.T) {
	e := sim.NewEngine()
	a := newTestArray(t, e)
	defer func() {
		if recover() == nil {
			t.Error("reading unprogrammed page did not panic")
		}
	}()
	a.ReadPage(0, 0, 512)
}

func TestEraseResetsBlock(t *testing.T) {
	e := sim.NewEngine()
	a := newTestArray(t, e)
	a.ProgramPage(5, 4096)
	a.ProgramPage(5, 4096)
	if a.ProgrammedPages(5) != 2 || a.IsErased(5) {
		t.Fatal("block state wrong after programs")
	}
	f := a.EraseBlock(5)
	done := false
	f.OnComplete(func() { done = true })
	e.Run()
	if !done {
		t.Fatal("erase future never completed")
	}
	if !a.IsErased(5) || a.ProgrammedPages(5) != 0 {
		t.Error("erase did not reset block")
	}
	if a.EraseCount(5) != 1 {
		t.Errorf("EraseCount = %d, want 1", a.EraseCount(5))
	}
	// Can program again from page 0.
	page, _ := a.ProgramPage(5, 4096)
	if page != 0 {
		t.Errorf("post-erase program page = %d, want 0", page)
	}
}

func TestDieContentionSerializes(t *testing.T) {
	e := sim.NewEngine()
	a := newTestArray(t, e)
	// Blocks 0 and 1 share die 0: two programs must serialize on the die.
	_, f1 := a.ProgramPage(0, 4096)
	_, f2 := a.ProgramPage(1, 4096)
	var t1, t2 sim.VTime
	f1.OnComplete(func() { t1 = e.Now() })
	f2.OnComplete(func() { t2 = e.Now() })
	e.Run()
	if t2 < t1+500*sim.Microsecond {
		t.Errorf("programs on same die overlapped: %v then %v", t1, t2)
	}
	// Blocks on different dies overlap (die 0 and die 1 on different channels).
	e2 := sim.NewEngine()
	b := newTestArray(t, e2)
	_, g1 := b.ProgramPage(0, 4096)  // die 0, channel 0
	_, g2 := b.ProgramPage(16, 4096) // die 1, channel 1
	var u1, u2 sim.VTime
	g1.OnComplete(func() { u1 = e2.Now() })
	g2.OnComplete(func() { u2 = e2.Now() })
	e2.Run()
	if u1 != u2 {
		t.Errorf("programs on independent dies did not overlap: %v vs %v", u1, u2)
	}
}

func TestChannelContention(t *testing.T) {
	e := sim.NewEngine()
	a := newTestArray(t, e)
	// Dies 0 and 2 share channel 0. Program transfers contend on the bus.
	_, f1 := a.ProgramPage(0, 4096)  // die 0
	_, f2 := a.ProgramPage(32, 4096) // die 2
	var t1, t2 sim.VTime
	f1.OnComplete(func() { t1 = e.Now() })
	f2.OnComplete(func() { t2 = e.Now() })
	e.Run()
	xfer := testTim().TransferTime(4096)
	// Second transfer starts after the first finishes on the bus, then
	// both program concurrently on their own dies.
	want2 := 2*xfer + 1*sim.Microsecond + 500*sim.Microsecond
	if t2 != want2 {
		t.Errorf("second program done at %v, want %v", t2, want2)
	}
	if t1 >= t2 {
		t.Errorf("ordering wrong: %v vs %v", t1, t2)
	}
}

func TestIdleDetection(t *testing.T) {
	e := sim.NewEngine()
	a := newTestArray(t, e)
	if !a.AllDiesIdleAt(0) {
		t.Error("fresh array not idle")
	}
	a.ProgramPage(0, 4096)
	if a.DieIdleAt(0, 0) {
		t.Error("die 0 should be busy during program")
	}
	if a.DieIdleAt(16, 0) != true {
		t.Error("die 1 should be idle")
	}
	e.Run()
	if !a.AllDiesIdleAt(e.Now()) {
		t.Error("array should be idle after run")
	}
}

func TestEraseCountsAndLifetime(t *testing.T) {
	e := sim.NewEngine()
	a := newTestArray(t, e)
	a.MaxPE = 3000
	for i := 0; i < 10; i++ {
		a.EraseBlock(0)
	}
	a.EraseBlock(1)
	e.Run()
	if a.TotalErases() != 11 {
		t.Errorf("TotalErases = %d, want 11", a.TotalErases())
	}
	if a.MaxEraseCount() != 10 {
		t.Errorf("MaxEraseCount = %d, want 10", a.MaxEraseCount())
	}
	lt := a.Lifetime(100 * sim.Second)
	want := 3000.0 * 100 / 11
	if lt < want*0.999 || lt > want*1.001 {
		t.Errorf("Lifetime = %v, want %v", lt, want)
	}
	b := newTestArray(t, sim.NewEngine())
	if b.Lifetime(time100()) != 0 {
		t.Error("lifetime with no erases should be 0")
	}
}

func time100() sim.VTime { return 100 * sim.Second }

func TestAddrRangeChecks(t *testing.T) {
	e := sim.NewEngine()
	a := newTestArray(t, e)
	for _, fn := range []func(){
		func() { a.ProgramPage(-1, 512) },
		func() { a.ProgramPage(64, 512) },
		func() { a.ReadPage(0, -1, 512) },
		func() { a.ReadPage(0, 16, 512) },
		func() { a.EraseBlock(9999) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range address did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPartialPageSizesClamp(t *testing.T) {
	e := sim.NewEngine()
	a := newTestArray(t, e)
	a.ProgramPage(0, 512) // small program counts 512 bytes
	if a.Stats().BytesProgrammed != 512 {
		t.Errorf("BytesProgrammed = %d, want 512", a.Stats().BytesProgrammed)
	}
	a.ProgramPage(0, 1<<20) // oversized clamps to page size
	if a.Stats().BytesProgrammed != 512+4096 {
		t.Errorf("BytesProgrammed = %d, want %d", a.Stats().BytesProgrammed, 512+4096)
	}
	e.Run()
}

func TestBusyTotals(t *testing.T) {
	e := sim.NewEngine()
	a := newTestArray(t, e)
	a.ProgramPage(0, 4096)
	e.Run()
	if a.DieBusyTotal(0) == 0 {
		t.Error("die 0 busy total should be positive")
	}
	if a.ChannelBusyTotal(0) == 0 {
		t.Error("channel 0 busy total should be positive")
	}
	if a.DieBusyTotal(1) != 0 {
		t.Error("die 1 busy total should be zero")
	}
}

func TestGeometryPropertyBlockMappingInRange(t *testing.T) {
	g := testGeo()
	err := quick.Check(func(b uint16) bool {
		block := int(b) % g.TotalBlocks()
		die := g.DieOfBlock(block)
		ch := g.ChannelOfBlock(block)
		plane := g.PlaneOfBlock(block)
		return die >= 0 && die < g.TotalDies() &&
			ch >= 0 && ch < g.Channels &&
			plane >= 0 && plane < g.PlanesPerDie
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestEnergyAccounting(t *testing.T) {
	e := sim.NewEngine()
	tim := testTim().WithDefaultEnergy()
	a, err := New(e, testGeo(), tim)
	if err != nil {
		t.Fatal(err)
	}
	if a.EnergyNJ() != 0 {
		t.Error("fresh array consumed energy")
	}
	a.ProgramPage(0, 4096)
	a.ReadPage(0, 0, 4096)
	a.EraseBlock(0)
	e.Run()
	want := tim.ProgramEnergyNJ + tim.ReadEnergyNJ + tim.EraseEnergyNJ
	if got := a.EnergyNJ(); got != want {
		t.Errorf("EnergyNJ = %d, want %d", got, want)
	}
	// With zero per-op energies reporting is disabled (0).
	b, _ := New(sim.NewEngine(), testGeo(), testTim())
	b.ProgramPage(0, 4096)
	if b.EnergyNJ() != 0 {
		t.Error("energy reported with unset per-op costs")
	}
}

func TestReserveDie(t *testing.T) {
	e := sim.NewEngine()
	a := newTestArray(t, e)
	end1 := a.ReserveDie(0, 100*sim.Microsecond)
	end2 := a.ReserveDie(0, 100*sim.Microsecond) // same die: serializes
	if end2 != end1+100*sim.Microsecond {
		t.Errorf("same-die reservations did not serialize: %v then %v", end1, end2)
	}
	end3 := a.ReserveDie(16, 100*sim.Microsecond) // die 1: independent
	if end3 != 100*sim.Microsecond {
		t.Errorf("independent die reservation = %v", end3)
	}
	defer func() {
		if recover() == nil {
			t.Error("ReserveDie out of range did not panic")
		}
	}()
	a.ReserveDie(-1, sim.Microsecond)
}
