// Package lsm implements an LSM-tree host engine over the simulated
// Check-In SSD: a write-ahead log with group commit, an in-memory memtable,
// sorted runs flushed to flash, and a Director/Executor compaction layer
// with leveled and tiered policies. It is the second registered backend of
// the checkin.HostEngine interface — the journal+JMT engine (internal/core)
// being the first — and exists so in-storage checkpointing can be evaluated
// against the flash-friendly sequential writes of compaction.
//
// The facade follows the kevo engine design (storage, transaction and
// compaction concerns behind one coordinating type); the compaction split
// follows the amethystdb Director (policy: pick what to merge) / Executor
// (mechanism: k-way merge, install, delete inputs) separation.
//
// Check-In's five checkpoint strategies apply to the memtable flush — the
// LSM's checkpoint analogue. The flushed run's layout is identical across
// strategies; only the transfer differs:
//
//   - Baseline writes the run from host memory with large sequential writes
//     (the memtable already holds the values);
//   - ISC-A / ISC-B copy each record device-side from its WAL location with
//     CoW / multi-CoW commands;
//   - ISC-C / Check-In remap the WAL records onto the run's slots with
//     checkpoint-request commands — no second flash program at all. Whether
//     a record remaps cleanly or degrades to a read-merge-write depends on
//     the WAL record format (sector-aligned under Check-In, dense
//     conventional otherwise), exactly as in the journal engine.
//
// Compaction, by contrast, is always host-side sequential I/O: runs are
// streamed to the host, merged, and written back — the traffic shape the
// compaction experiment compares the strategies under.
//
// Durability truth: a version is durable iff its WAL group commit completed
// (tracked per record), and recovery folds the last durably-published
// manifest's runs with the committed WAL records above the manifest floor.
// The crash sites (wal-append, wal-commit, mem-flush, compact-install,
// manifest-publish) pin each transition.
package lsm

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/core"
	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
	"github.com/checkin-kv/checkin/internal/stats"
	"github.com/checkin-kv/checkin/internal/trace"
	"github.com/checkin-kv/checkin/internal/workload"
)

// Policy names a compaction policy.
const (
	PolicyLeveled = "leveled"
	PolicyTiered  = "tiered"
)

// maxLevels bounds the level/tier hierarchy; the bottom level holds the
// load-phase base run and major-compaction outputs.
const maxLevels = 8

// baseLevel is the bottom of the hierarchy.
const baseLevel = maxLevels - 1

// Config parameterizes the LSM engine.
type Config struct {
	Strategy core.Strategy

	Keys  int64
	Sizer workload.Sizer

	// WALHalfBytes is the capacity of each WAL half; a memtable flush seals
	// the active half and the alternate takes over, so a flush triggers at
	// the latest when the active half passes WALSoftFrac.
	WALHalfBytes int64
	WALSoftFrac  float64

	// MemtableEntries triggers a flush when the memtable holds this many
	// distinct keys (0 → 4096).
	MemtableEntries int

	// Policy selects the compaction policy: "leveled" (default) or "tiered".
	Policy string

	// CheckpointInterval paces periodic flush+publish epochs, mirroring the
	// journal engine's checkpoint scheduler.
	CheckpointInterval sim.VTime

	// LockDuringCheckpoint stalls query admission while a flush epoch runs.
	LockDuringCheckpoint bool

	// InlineHeaderBytes is the per-record header of the conventional WAL
	// format (sector-aligned mode keeps descriptors host-side).
	InlineHeaderBytes int64

	// Strategy tuning knobs, same semantics as the journal engine's.
	CkptCoWWindow int // ISC-A: in-flight CoW commands
	MultiCoWBatch int // ISC-B: pairs per command
	CkptCmdBatch  int // ISC-C / Check-In: remap entries per command

	// HostIOOverhead is the host software cost of issuing one block I/O.
	HostIOOverhead sim.VTime

	// AdaptiveLiveBudget, when positive, flushes as soon as the memtable
	// accumulates this many distinct dirty keys.
	AdaptiveLiveBudget int

	Tracer   *trace.Tracer
	Injector *inject.Injector
	Seed     int64
}

// DefaultConfig returns LSM defaults aligned with core.DefaultConfig.
func DefaultConfig() Config {
	return Config{
		Strategy:           core.StrategyCheckIn,
		Keys:               50_000,
		Sizer:              workload.NewMixSizer("default-small", []int{128, 256, 384, 512, 1024, 2048}, []int{2, 2, 1, 3, 1, 1}),
		WALHalfBytes:       32 << 20,
		WALSoftFrac:        0.7,
		MemtableEntries:    4096,
		Policy:             PolicyLeveled,
		CheckpointInterval: sim.Second,
		InlineHeaderBytes:  16,
		CkptCoWWindow:      128,
		MultiCoWBatch:      64,
		CkptCmdBatch:       128,
		HostIOOverhead:     10 * sim.Microsecond,
		Seed:               1,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.Keys < 1 {
		return fmt.Errorf("lsm: need at least one key")
	}
	if c.Sizer == nil {
		return fmt.Errorf("lsm: Sizer is required")
	}
	if c.WALHalfBytes < 1<<16 || c.WALHalfBytes%sector != 0 {
		return fmt.Errorf("lsm: WALHalfBytes %d must be a sector multiple >= 64KiB", c.WALHalfBytes)
	}
	if c.WALSoftFrac <= 0 || c.WALSoftFrac >= 1 {
		return fmt.Errorf("lsm: WALSoftFrac %v out of (0,1)", c.WALSoftFrac)
	}
	if c.CheckpointInterval == 0 {
		return fmt.Errorf("lsm: CheckpointInterval must be positive")
	}
	switch c.Policy {
	case "", PolicyLeveled, PolicyTiered:
	default:
		return fmt.Errorf("lsm: unknown compaction policy %q (want leveled or tiered)", c.Policy)
	}
	return nil
}

// Stats accumulates LSM-specific counters.
type Stats struct {
	Flushes          uint64
	FlushedEntries   uint64
	FlushedBytes     uint64 // payload bytes installed by flushes
	Compactions      uint64
	MajorCompactions uint64
	CompactionRead   uint64 // host-link bytes compaction read
	CompactionWrite  uint64 // host-link bytes compaction wrote
	RunsCreated      uint64
	RunsDeleted      uint64
	ManifestWrites   uint64
}

// memEntry is the memtable's value cell: the newest version of a key plus
// the WAL record that made it durable (the flush strategies that copy or
// remap device-side need the record's WAL location).
type memEntry struct {
	version int64
	size    int
	rec     *walRec
}

// Engine is the LSM host engine bound to one simulated device.
type Engine struct {
	eng *sim.Engine
	dev *ssd.Device
	cfg Config

	unit          int64 // FTL mapping unit
	manifestStart int64
	manifestSlot  int64
	runArea       extent
	alloc         *allocator

	w        *wal
	mem      map[int64]*memEntry
	imm      map[int64]*memEntry // sealed memtable while its flush runs
	memLimit int

	levels    [maxLevels][]*run
	nextRunID uint64

	// durable manifest: the run set and WAL floor recovery starts from.
	durableRuns  []*run
	durableFloor int64
	manifestSeq  uint64

	// walLive holds records above the durable floor (committed or not);
	// recovery replays the committed ones over the manifest's runs.
	walLive []*walRec

	// version truth, mirroring the journal engine's recovery model.
	version []int64
	durable []int64
	deleted []bool

	flushRunning bool
	ckptEpoch    uint64
	flushDone    *sim.Future

	compacting  bool
	compactDone *sim.Future
	director    *director

	gateClosed bool
	gateOpen   *sim.Future

	onCommit func(key, version int64)

	remapTotals ssd.RemapStats
	metrics     *core.Metrics
	st          Stats
	rng         *sim.RNG
}

// New builds an LSM engine over dev. The device's FTL mapping unit must
// already reflect the strategy (see core.Strategy.DefaultMappingUnit).
func New(eng *sim.Engine, dev *ssd.Device, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyLeveled
	}
	if cfg.MemtableEntries <= 0 {
		cfg.MemtableEntries = 4096
	}
	en := &Engine{
		eng:      eng,
		dev:      dev,
		cfg:      cfg,
		unit:     int64(dev.FTL().UnitSize()),
		memLimit: cfg.MemtableEntries,
		mem:      make(map[int64]*memEntry),
		version:  make([]int64, cfg.Keys),
		durable:  make([]int64, cfg.Keys),
		deleted:  make([]bool, cfg.Keys),
		metrics:  core.NewMetrics(),
		rng:      sim.NewRNG(cfg.Seed),
	}
	// Space layout: two WAL halves, two manifest slots, then the run area.
	en.manifestStart = 2 * cfg.WALHalfBytes
	en.manifestSlot = 256 << 10
	runStart := en.manifestStart + 2*en.manifestSlot
	runEnd := dev.LogicalBytes()
	if runEnd <= runStart {
		return nil, fmt.Errorf("lsm: device exports %d bytes, smaller than WAL+manifest (%d)", runEnd, runStart)
	}
	en.runArea = extent{off: runStart, len: runEnd - runStart}
	en.alloc = newAllocator(en.runArea)

	// The base run (every key at version 1) must fit with room for flush
	// runs and a compaction's transient output.
	var basePayload int64
	for k := int64(0); k < cfg.Keys; k++ {
		basePayload += roundUp(int64(cfg.Sizer.SizeOf(k)), sector)
	}
	if 3*basePayload > en.runArea.len {
		return nil, fmt.Errorf("lsm: run area %d too small for %d key bytes (need 3x headroom)", en.runArea.len, basePayload)
	}

	header := cfg.InlineHeaderBytes
	if cfg.Strategy.SectorAligned() {
		header = 0
	}
	en.w = newWAL(eng, dev, cfg.WALHalfBytes, cfg.Strategy.SectorAligned(), header)
	en.w.tracer = cfg.Tracer
	en.w.injector = cfg.Injector
	en.w.onCommit = func(r *walRec) {
		if r.version > en.durable[r.key] {
			en.durable[r.key] = r.version
		}
		if en.onCommit != nil {
			en.onCommit(r.key, r.version)
		}
	}
	en.director = newDirector(cfg.Policy, cfg.WALHalfBytes)
	return en, nil
}

// extAlign returns the run-extent alignment: whole mapping units so
// deallocating a run trims cleanly.
func (en *Engine) extAlign() int64 {
	if en.unit > sector {
		return en.unit
	}
	return sector
}

// Device exposes the underlying device.
func (en *Engine) Device() *ssd.Device { return en.dev }

// Sim exposes the simulation engine.
func (en *Engine) Sim() *sim.Engine { return en.eng }

// Metrics exposes the live metrics collector.
func (en *Engine) Metrics() *core.Metrics { return en.metrics }

// JournalStats returns the WAL's counters in the shared journaling shape.
func (en *Engine) JournalStats() core.JournalStats { return en.w.Stats() }

// RemapTotals returns accumulated remap results across flush epochs.
func (en *Engine) RemapTotals() ssd.RemapStats { return en.remapTotals }

// Stats returns LSM-specific counters.
func (en *Engine) Stats() Stats { return en.st }

// Levels reports the current run count per level (tests, reporting).
func (en *Engine) Levels() []int {
	out := make([]int, maxLevels)
	for i, l := range en.levels {
		out[i] = len(l)
	}
	return out
}

// SetCommitHook installs fn to observe every WAL record the instant its
// group commit becomes durable (the check oracle's model hook).
func (en *Engine) SetCommitHook(fn func(key, version int64)) { en.onCommit = fn }

// ---------------------------------------------------------------------------
// load phase

// Load bulk-populates the store: every key at version 1, written as one
// sorted base run with large sequential writes, then a manifest publish.
// Mirrors the journal engine's load discipline (back-pressure via periodic
// flushes; excluded from metrics).
func (en *Engine) Load() {
	entries := make([]runEntry, en.cfg.Keys)
	for k := int64(0); k < en.cfg.Keys; k++ {
		entries[k] = runEntry{key: k, version: 1, size: en.cfg.Sizer.SizeOf(k)}
	}
	done := false
	en.eng.Go("load", func(p *sim.Proc) {
		r := en.newRun(baseLevel, entries, false)
		en.writeRunSequential(p, r, ssd.AreaData)
		en.levels[baseLevel] = append(en.levels[baseLevel], r)
		en.st.RunsCreated++
		en.publishManifest(p, 0)
		done = true
	})
	for !done {
		en.eng.RunUntil(en.eng.Now() + 100*sim.Millisecond)
	}
	for k := range en.version {
		en.version[k] = 1
		en.durable[k] = 1
	}
}

// newRun allocates an extent and plans a run's layout. inCompaction guards
// the back-pressure path (a compaction cannot wait on itself).
func (en *Engine) newRun(level int, entries []runEntry, inCompaction bool) *run {
	var need int64
	for _, e := range entries {
		need += roundUp(int64(e.size), sector)
	}
	need = roundUp(need, en.extAlign())
	off, ok := en.alloc.take(need)
	if !ok {
		if inCompaction {
			panic(fmt.Sprintf("lsm: run area exhausted during compaction (%s, need %d)", en.alloc, need))
		}
		panic(fmt.Sprintf("lsm: run area exhausted (%s, need %d)", en.alloc, need))
	}
	en.nextRunID++
	r, _ := planRun(en.nextRunID, level, entries, off)
	r.ext = extent{off: off, len: need}
	return r
}

// allocatable reports whether an extent of n laid-out bytes could be taken.
func (en *Engine) allocatable(n int64) bool {
	probe := en.alloc.clone()
	_, ok := probe.take(roundUp(n, en.extAlign()))
	return ok
}

// writeRunSequential streams a run's extent to the device in large
// sequential chunks from host memory — the flash-friendly write shape LSM
// engines are built around.
func (en *Engine) writeRunSequential(p *sim.Proc, r *run, area ssd.Area) {
	const chunk = 256 << 10
	total := r.ext.len
	issued := 0
	for off := int64(0); off < total; off += chunk {
		n := int64(chunk)
		if off+n > total {
			n = total - off
		}
		p.Sleep(en.cfg.HostIOOverhead)
		en.dev.Write(r.ext.off+off, n, area)
		if issued++; issued%16 == 0 {
			p.Wait(en.dev.Flush(area))
		}
	}
	p.Wait(en.dev.Flush(area))
}

// ---------------------------------------------------------------------------
// query paths (called from client processes)

func (en *Engine) gate(p *sim.Proc) {
	for en.gateClosed {
		p.Wait(en.gateOpen)
	}
}

// Get executes a read: active memtable, then the sealed (flushing)
// memtable — both host memory — then runs newest-first. The host-resident
// run index knows which run holds the key, so exactly one device read is
// charged for an on-flash hit.
func (en *Engine) Get(p *sim.Proc, key int64) {
	en.gate(p)
	if _, ok := en.mem[key]; ok {
		return
	}
	if en.imm != nil {
		if _, ok := en.imm[key]; ok {
			return
		}
	}
	if r, i := en.findNewest(key); r != nil {
		p.Sleep(en.cfg.HostIOOverhead)
		p.Wait(en.dev.Read(r.offs[i], int64(r.sizes[i])))
	}
}

// findNewest locates the newest on-flash version of key: level 0 runs in
// reverse creation order, then down the hierarchy — upper levels shadow
// lower ones, the standard LSM read invariant.
func (en *Engine) findNewest(key int64) (*run, int) {
	for level := 0; level < maxLevels; level++ {
		rs := en.levels[level]
		for i := len(rs) - 1; i >= 0; i-- {
			if j, ok := rs[i].find(key); ok {
				return rs[i], j
			}
		}
	}
	return nil, 0
}

// Update executes a write: log to the WAL (write-ahead), install in the
// memtable, and wait for the group commit.
func (en *Engine) Update(p *sim.Proc, key int64, size int) {
	en.gate(p)
	if en.dev.ReadOnly() {
		en.metrics.RejectedWrites++
		return
	}
	// If the active WAL half cannot absorb the record, stall until the
	// running flush epoch frees the alternate half (back-pressure).
	for en.w.WouldOverflow(size) {
		p.Wait(en.TriggerCheckpoint())
	}
	en.version[key]++
	v := en.version[key]
	rec, commit := en.w.Append(key, v, size)
	en.walLive = append(en.walLive, rec)
	en.mem[key] = &memEntry{version: v, size: size, rec: rec}
	en.cfg.Injector.Hit(inject.SiteWALAppend)
	if !en.flushRunning &&
		(len(en.mem) >= en.memLimit || en.w.UsedFrac() > en.cfg.WALSoftFrac) {
		en.TriggerCheckpoint()
	}
	p.Wait(commit)
}

// Put is Update under the host interface's name.
func (en *Engine) Put(p *sim.Proc, key int64, size int) { en.Update(p, key, size) }

// ReadModifyWrite executes YCSB-F's read-modify-write.
func (en *Engine) ReadModifyWrite(p *sim.Proc, key int64, size int) {
	en.Get(p, key)
	en.Update(p, key, size)
}

// Scan executes a range read of n consecutive records starting at key: one
// sequential read over the range in the bottom run, plus individual reads
// for keys whose newest version lives in an upper run (memtable hits are
// host memory).
func (en *Engine) Scan(p *sim.Proc, key int64, n int) {
	en.gate(p)
	if n < 1 {
		n = 1
	}
	if key >= en.cfg.Keys {
		key = en.cfg.Keys - 1
	}
	if key+int64(n) > en.cfg.Keys {
		n = int(en.cfg.Keys - key)
	}
	var futs []*sim.Future
	p.Sleep(en.cfg.HostIOOverhead)
	if rs := en.levels[baseLevel]; len(rs) > 0 {
		base := rs[len(rs)-1]
		if i, ok := base.find(key); ok {
			j, ok2 := base.find(key + int64(n) - 1)
			if !ok2 {
				j = len(base.keys) - 1
			}
			futs = append(futs, en.dev.Read(base.offs[i],
				base.offs[j]+int64(base.sizes[j])-base.offs[i]))
		}
	}
	for k := key; k < key+int64(n); k++ {
		if _, ok := en.mem[k]; ok {
			continue
		}
		if en.imm != nil {
			if _, ok := en.imm[k]; ok {
				continue
			}
		}
		if r, i := en.findNewest(k); r != nil && r.level < baseLevel {
			futs = append(futs, en.dev.Read(r.offs[i], int64(r.sizes[i])))
		}
	}
	p.WaitAll(futs)
}

// tombstoneBytes is the logged size of a deletion marker.
const tombstoneBytes = 16

// Delete logs a tombstone: deletions ride the same write-ahead, flush and
// compaction paths as updates (tombstones survive merges so recovered
// version truth never regresses).
func (en *Engine) Delete(p *sim.Proc, key int64) {
	en.Update(p, key, tombstoneBytes)
	en.deleted[key] = true
}

// Sync blocks p until every WAL record appended so far is durable.
func (en *Engine) Sync(p *sim.Proc) {
	for en.w.commitInFlight || len(en.w.pending) > 0 {
		if en.w.inFlightDone != nil {
			p.Wait(en.w.inFlightDone)
		} else {
			p.Sleep(sim.Microsecond) // batch buffered behind a seal
		}
	}
}

// ---------------------------------------------------------------------------
// flush epochs (the LSM's checkpoint)

// CheckpointRunning reports whether a flush epoch is in progress.
func (en *Engine) CheckpointRunning() bool { return en.flushRunning }

// TriggerCheckpoint starts a flush epoch unless one is already running:
// seal the memtable, drain the sealed WAL half, install the sorted run via
// the configured strategy, publish the manifest, and deallocate the half.
func (en *Engine) TriggerCheckpoint() *sim.Future {
	if en.flushRunning {
		return en.flushDone
	}
	en.flushRunning = true
	en.ckptEpoch++
	en.flushDone = sim.NewFuture(en.eng)
	done := en.flushDone
	if en.cfg.LockDuringCheckpoint {
		en.gateClosed = true
		en.gateOpen = sim.NewFuture(en.eng)
	}
	en.eng.Go("flush", func(p *sim.Proc) {
		start := p.Now()
		// Seal: the active memtable becomes immutable (still readable), new
		// writes go to a fresh memtable and the rotated WAL half. When Seal
		// returns every sealed record is durable, so the flushed run holds
		// only committed versions — recovery equivalence depends on this.
		en.imm = en.mem
		en.mem = make(map[int64]*memEntry)
		half, used, maxSeq := en.w.Seal(p)

		sealedLogs := 0
		for _, rec := range en.walLive {
			if rec.seq <= maxSeq && rec.seq > en.durableFloor {
				sealedLogs++
			}
		}
		en.cfg.Tracer.Emit(start, trace.KindCheckpointBegin, int64(len(en.imm)),
			fmt.Sprintf("entries=%d used=%dKB", sealedLogs, used>>10))
		if sealedLogs > 0 {
			en.metrics.NoteLiveRatio(float64(len(en.imm)) / float64(sealedLogs))
		}

		if len(en.imm) > 0 {
			r := en.flushRun(p)
			en.levels[0] = append(en.levels[0], r)
			en.st.Flushes++
			en.st.FlushedEntries += uint64(len(r.keys))
			en.st.FlushedBytes += uint64(r.payload)
			en.st.RunsCreated++
			en.publishManifest(p, maxSeq)
			// the sealed WAL half is fully superseded: deallocate it
			if used > 0 {
				p.Wait(en.dev.Deallocate(en.w.halfStart(half), roundUp(used, en.unit)))
			}
		}
		en.imm = nil
		en.metrics.NoteCheckpoint(p.Now() - start)
		en.cfg.Tracer.Emit(p.Now(), trace.KindCheckpointEnd, int64(p.Now()-start), "")
		en.flushRunning = false
		en.ckptEpoch++
		if en.cfg.LockDuringCheckpoint {
			en.gateClosed = false
			en.gateOpen.Complete()
		}
		done.Complete()
		en.maybeCompact()
	})
	return done
}

// flushRun materializes the sealed memtable as a level-0 run using the
// configured checkpoint strategy for the data transfer.
func (en *Engine) flushRun(p *sim.Proc) *run {
	entries := make([]runEntry, 0, len(en.imm))
	for k, e := range en.imm {
		entries = append(entries, runEntry{key: k, version: e.version, size: e.size})
	}
	sortEntries(entries)

	// Back-pressure: wait for a running compaction (or force one) when the
	// run area cannot take the new extent.
	var need int64
	for _, e := range entries {
		need += roundUp(int64(e.size), sector)
	}
	for !en.allocatable(need) {
		if en.compacting {
			p.Wait(en.compactDone)
			continue
		}
		if !en.startCompaction(true) {
			break // let newRun panic with the allocator's state
		}
		p.Wait(en.compactDone)
	}
	r := en.newRun(0, entries, false)

	switch {
	case en.cfg.Strategy == core.StrategyBaseline:
		// host-side flush: the values sit in the memtable, stream them out
		en.writeRunSequential(p, r, ssd.AreaCheckpoint)
	case en.cfg.Strategy.UsesRemap():
		en.flushByRemap(p, r, entries)
	case en.cfg.Strategy == core.StrategyISCA:
		en.flushByCoW(p, r, entries)
	default: // ISC-B
		en.flushByMultiCoW(p, r, entries)
	}
	en.cfg.Injector.Hit(inject.SiteMemFlush)
	return r
}

// flushByCoW installs the run with one device CoW command per record,
// copying from each record's WAL location (ISC-A).
func (en *Engine) flushByCoW(p *sim.Proc, r *run, entries []runEntry) {
	w := en.cfg.CkptCoWWindow
	if w < 1 {
		w = 128
	}
	for i := 0; i < len(entries); i += w {
		hi := min(i+w, len(entries))
		futs := make([]*sim.Future, 0, hi-i)
		for j := i; j < hi; j++ {
			rec := en.imm[entries[j].key].rec
			p.Sleep(en.cfg.HostIOOverhead)
			futs = append(futs, en.dev.CoW(rec.off, r.offs[j], int64(rec.payload)))
		}
		p.WaitAll(futs)
	}
	p.Wait(en.dev.Flush(ssd.AreaData))
}

// flushByMultiCoW batches the CoW pairs into multi-CoW commands (ISC-B).
func (en *Engine) flushByMultiCoW(p *sim.Proc, r *run, entries []runEntry) {
	b := en.cfg.MultiCoWBatch
	if b < 1 {
		b = 128
	}
	var prev *sim.Future
	for i := 0; i < len(entries); i += b {
		hi := min(i+b, len(entries))
		pairs := make([]ssd.CoWPair, 0, hi-i)
		for j := i; j < hi; j++ {
			rec := en.imm[entries[j].key].rec
			pairs = append(pairs, ssd.CoWPair{Src: rec.off, Dst: r.offs[j], Len: int64(rec.payload)})
		}
		p.Sleep(en.cfg.HostIOOverhead)
		cur := en.dev.MultiCoW(pairs)
		if prev != nil {
			p.Wait(prev)
		}
		prev = cur
	}
	if prev != nil {
		p.Wait(prev)
	}
	p.Wait(en.dev.Flush(ssd.AreaData))
}

// flushByRemap installs the run by remapping each record's WAL extent onto
// its run slot with checkpoint-request commands (ISC-C / Check-In). Under
// the sector-aligned WAL format the source extents remap cleanly; the dense
// conventional format degrades to read-merge-writes in the FTL, exactly the
// ISC-C/Check-In distinction of the journal engine.
func (en *Engine) flushByRemap(p *sim.Proc, r *run, entries []runEntry) {
	b := en.cfg.CkptCmdBatch
	if b < 1 {
		b = 512
	}
	en.dev.BeginCheckpointCut()
	var prev *sim.Future
	for i := 0; i < len(entries); i += b {
		hi := min(i+b, len(entries))
		reqs := make([]ssd.RemapEntry, 0, hi-i)
		for j := i; j < hi; j++ {
			rec := en.imm[entries[j].key].rec
			slot := roundUp(int64(entries[j].size), sector)
			reqs = append(reqs, ssd.RemapEntry{Src: rec.off, Dst: r.offs[j], Len: slot})
		}
		p.Sleep(en.cfg.HostIOOverhead)
		res, fut := en.dev.CheckpointRequest(reqs)
		fut.OnComplete(func() {
			en.remapTotals.Remapped += res.Remapped
			en.remapTotals.RMWs += res.RMWs
			en.remapTotals.Skipped += res.Skipped
		})
		if prev != nil {
			p.Wait(prev)
		}
		prev = fut
	}
	if prev != nil {
		p.Wait(prev)
	}
	en.dev.EndCheckpointCut()
	p.Wait(en.dev.Flush(ssd.AreaCheckpoint))
}

// publishManifest writes and flushes the alternate manifest slot, then
// atomically advances the durable run set and WAL floor. floor < 0 keeps
// the current floor (compaction publishes do not move it).
func (en *Engine) publishManifest(p *sim.Proc, floor int64) {
	en.manifestSeq++
	slot := int64(en.manifestSeq % 2)
	runs := 0
	for _, l := range en.levels {
		runs += len(l)
	}
	n := roundUp(64+32*int64(runs), sector)
	if n > en.manifestSlot {
		n = en.manifestSlot
	}
	p.Sleep(en.cfg.HostIOOverhead)
	en.dev.Write(en.manifestStart+slot*en.manifestSlot, n, ssd.AreaData)
	p.Wait(en.dev.Flush(ssd.AreaData))
	// Durable from this instant: snapshot the run set and advance the floor.
	dr := make([]*run, 0, runs)
	for _, l := range en.levels {
		dr = append(dr, l...)
	}
	en.durableRuns = dr
	if floor >= 0 && floor > en.durableFloor {
		en.durableFloor = floor
	}
	keep := make([]*walRec, 0, len(en.walLive))
	for _, rec := range en.walLive {
		if rec.seq > en.durableFloor {
			keep = append(keep, rec)
		}
	}
	en.walLive = keep
	en.st.ManifestWrites++
	en.cfg.Injector.Hit(inject.SiteManifestPublish)
}

// ---------------------------------------------------------------------------
// workload runner

// Run executes the workload to completion and returns the metrics. Mirrors
// the journal engine's runner loop (clients, timeline sampler, periodic
// checkpoint scheduler, drain) so both backends measure identically.
func (en *Engine) Run(spec core.RunSpec) (*core.Metrics, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	en.metrics = core.NewMetrics()
	m := en.metrics
	m.BeginWindow(en.dev, en.w.Stats(), en.eng.Now())

	var dist workload.Distribution
	var latest *workload.Latest
	switch {
	case spec.Latest:
		latest = workload.NewLatest(en.cfg.Keys, 1024)
		dist = latest
	case spec.Zipfian:
		dist = workload.NewZipfian(en.cfg.Keys, workload.DefaultTheta)
	default:
		dist = workload.Uniform{Keys: en.cfg.Keys}
	}

	var replay *workload.Replayer
	if spec.Trace != nil {
		replay = workload.NewReplayer(spec.Trace)
		if n := int64(len(spec.Trace.Ops)); spec.TotalQueries > n {
			spec.TotalQueries = n
		}
	}

	remaining := spec.TotalQueries
	clientsLeft := spec.Threads
	runDone := false
	var endTime sim.VTime

	for t := 0; t < spec.Threads; t++ {
		mix := spec.Mix
		if replay != nil {
			mix = workload.WorkloadA // unused under replay, must validate
		}
		gen, err := workload.NewGenerator(dist, en.cfg.Sizer, mix,
			en.rng.Split(fmt.Sprintf("client-%d", t)))
		if err != nil {
			return nil, err
		}
		en.eng.Go(fmt.Sprintf("client-%d", t), func(p *sim.Proc) {
			for remaining > 0 {
				remaining--
				var op workload.Op
				if replay != nil {
					op = replay.Next()
				} else {
					op = gen.Next()
				}
				start := p.Now()
				epoch0 := en.ckptEpoch
				switch op.Kind {
				case workload.OpRead:
					en.Get(p, op.Key)
				case workload.OpUpdate:
					en.Update(p, op.Key, op.Size)
					if latest != nil {
						latest.Note(op.Key)
					}
				case workload.OpReadModifyWrite:
					en.ReadModifyWrite(p, op.Key, op.Size)
				case workload.OpScan:
					en.Scan(p, op.Key, op.ScanLen)
				case workload.OpDelete:
					en.Delete(p, op.Key)
				}
				during := en.flushRunning || en.ckptEpoch != epoch0
				m.NoteQuery(op, p.Now()-start, during)
			}
			clientsLeft--
			if clientsLeft == 0 {
				endTime = p.Now()
				runDone = true
			}
		})
	}

	if spec.SampleInterval > 0 {
		m.Timeline = stats.NewTimeline("kqps", "ckpt_active", "die_backlog_us", "free_blocks")
		lastQueries := uint64(0)
		start := en.eng.Now()
		var sample func()
		sample = func() {
			if runDone {
				return
			}
			now := en.eng.Now()
			window := spec.SampleInterval.Seconds()
			qps := float64(m.Queries-lastQueries) / window
			lastQueries = m.Queries
			active := 0.0
			if en.flushRunning {
				active = 1
			}
			backlog := en.dev.FTL().Array().MaxBacklog(now).Micros()
			m.Timeline.Sample(uint64(now-start), qps/1e3, active, backlog,
				float64(en.dev.FTL().FreeBlocks()))
			en.eng.Schedule(spec.SampleInterval, sample)
		}
		en.eng.Schedule(spec.SampleInterval, sample)
	}

	if !spec.DisableCheckpoints {
		var tick func()
		tick = func() {
			if runDone {
				return
			}
			if !en.flushRunning {
				en.TriggerCheckpoint()
			}
			en.eng.Schedule(en.cfg.CheckpointInterval, tick)
		}
		en.eng.Schedule(en.cfg.CheckpointInterval, tick)

		if en.cfg.AdaptiveLiveBudget > 0 {
			period := en.cfg.CheckpointInterval / 16
			if period == 0 || period > 10*sim.Millisecond {
				period = 10 * sim.Millisecond
			}
			var poll func()
			poll = func() {
				if runDone {
					return
				}
				if !en.flushRunning && len(en.mem) >= en.cfg.AdaptiveLiveBudget {
					en.TriggerCheckpoint()
				}
				en.eng.Schedule(period, poll)
			}
			en.eng.Schedule(period, poll)
		}
	}

	for !runDone {
		en.eng.RunUntil(en.eng.Now() + 50*sim.Millisecond)
	}
	for guard := 0; (en.flushRunning || en.compacting || en.eng.LiveProcs() > 0) && guard < 1_000_000; guard++ {
		en.eng.RunUntil(en.eng.Now() + 10*sim.Millisecond)
	}
	m.EndWindow(en.dev, en.w.Stats(), endTime)
	return m, nil
}

// ---------------------------------------------------------------------------
// crash recovery

// recoverReport reconstructs what a restarted instance recovers: the last
// durably-published manifest's runs, overlaid with committed WAL records
// above the manifest floor. Pure — safe to call from inside an engine event.
func (en *Engine) recoverReport() *core.RecoveryReport {
	rep := &core.RecoveryReport{Recovered: make([]int64, en.cfg.Keys)}
	for _, r := range en.durableRuns {
		for i, k := range r.keys {
			if r.vers[i] > rep.Recovered[k] {
				rep.Recovered[k] = r.vers[i]
			}
		}
	}
	for _, v := range rep.Recovered {
		if v > 0 {
			rep.FromCheckpoint++
		}
	}
	for _, rec := range en.walLive {
		if !rec.committed || rec.seq <= en.durableFloor {
			continue
		}
		rep.ReplayedLogs++
		rep.JournalBytesRead += int64(rec.stored)
		if rec.version > rep.Recovered[rec.key] {
			rep.Recovered[rec.key] = rec.version
		}
	}
	return rep
}

// RecoveredVersions returns the per-key versions a crash at the current
// instant would recover to.
func (en *Engine) RecoveredVersions() []int64 {
	return en.recoverReport().Recovered
}

// SimulateRecovery models a crash at the current instant: the manifest is
// read, runs are opened from their footers (metadata-only), and the WAL
// tail above the floor is scanned sequentially.
func (en *Engine) SimulateRecovery() *core.RecoveryReport {
	rep := en.recoverReport()

	start := en.eng.Now()
	done := false
	var finished sim.VTime
	en.eng.Go("recovery", func(p *sim.Proc) {
		// manifest slot read, then the WAL tail scan
		p.Wait(en.dev.Read(en.manifestStart+int64(en.manifestSeq%2)*en.manifestSlot, sector))
		const chunk = 256 << 10
		half := en.w.halfStart(en.w.active)
		for off := int64(0); off < rep.JournalBytesRead; off += chunk {
			n := int64(chunk)
			if off+n > rep.JournalBytesRead {
				n = rep.JournalBytesRead - off
			}
			if off+n > en.w.halfBytes {
				break
			}
			p.Wait(en.dev.Read(half+off, n))
		}
		finished = p.Now()
		done = true
	})
	for !done {
		en.eng.RunUntil(en.eng.Now() + 10*sim.Millisecond)
	}
	rep.RecoveryTime = finished - start
	return rep
}

// DurableVersions returns a copy of the per-key durable versions.
func (en *Engine) DurableVersions() []int64 {
	out := make([]int64, len(en.durable))
	copy(out, en.durable)
	return out
}

// InMemoryVersions returns the per-key in-memory (volatile) versions.
func (en *Engine) InMemoryVersions() []int64 {
	out := make([]int64, len(en.version))
	copy(out, en.version)
	return out
}
