package lsm

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
)

// The compaction layer separates policy from mechanism, the amethystdb
// Director/Executor design: the director inspects the level/tier shapes and
// decides *what* to merge, the executor performs the k-way merge — read the
// inputs sequentially, fold to the newest version per key, write the output
// run sequentially, publish, delete the inputs. One compaction runs at a
// time; the director re-evaluates after each install so pressure cascades
// down the hierarchy deterministically.

// compactionJob is the director's verdict: merge inputs into outLevel.
type compactionJob struct {
	inputs   []*run
	levels   []int // levels the inputs come from (for removal)
	outLevel int
	major    bool
}

// director picks compactions under one of two policies.
//
//   - leveled: level 0 collects flush runs; when it holds fanIn runs they
//     merge with the whole next level into one run. A level overflowing its
//     byte budget merges into the level below. Read-optimized: each level
//     is at most one run, so a point read probes at most one run per level.
//   - tiered: each tier collects runs of similar age; when a tier holds
//     fanIn runs they merge into a single run one tier down. Write-optimized:
//     runs are never rewritten within a tier, at the cost of more runs to
//     probe on reads.
//
// Both fall back to a major compaction (everything into the base level)
// when the run area runs hot — the space back-pressure valve.
type director struct {
	policy string
	fanIn  int
	// baseBudget is level 1's byte budget under leveled; each deeper level
	// gets 4x the previous (the classic exponential ladder).
	baseBudget int64
}

func newDirector(policy string, walHalf int64) *director {
	if policy == "" {
		policy = PolicyLeveled
	}
	return &director{policy: policy, fanIn: 4, baseBudget: 2 * walHalf}
}

// budget returns level's byte budget under the leveled policy.
func (d *director) budget(level int) int64 {
	b := d.baseBudget
	for i := 1; i < level; i++ {
		b *= 4
	}
	return b
}

func levelBytes(runs []*run) int64 {
	var sum int64
	for _, r := range runs {
		sum += r.dataBytes()
	}
	return sum
}

// pick returns the next compaction to run, or nil. Evaluation order is
// fixed (top of the hierarchy first), so the decision is a pure function of
// the level shapes — determinism the differential oracle relies on.
func (d *director) pick(en *Engine, force bool) *compactionJob {
	if force || en.alloc.utilization() > 0.65 {
		return d.pickMajor(en)
	}
	switch d.policy {
	case PolicyTiered:
		return d.pickTiered(en)
	default:
		return d.pickLeveled(en)
	}
}

// pickLeveled merges level 0 into level 1 once enough flush runs pile up,
// then cascades any level that overflows its budget.
func (d *director) pickLeveled(en *Engine) *compactionJob {
	if len(en.levels[0]) >= d.fanIn {
		job := &compactionJob{outLevel: 1}
		for _, r := range en.levels[0] {
			job.inputs = append(job.inputs, r)
			job.levels = append(job.levels, 0)
		}
		for _, r := range en.levels[1] {
			job.inputs = append(job.inputs, r)
			job.levels = append(job.levels, 1)
		}
		return job
	}
	for level := 1; level < baseLevel-1; level++ {
		if len(en.levels[level]) == 0 || levelBytes(en.levels[level]) <= d.budget(level) {
			continue
		}
		job := &compactionJob{outLevel: level + 1}
		for _, r := range en.levels[level] {
			job.inputs = append(job.inputs, r)
			job.levels = append(job.levels, level)
		}
		for _, r := range en.levels[level+1] {
			job.inputs = append(job.inputs, r)
			job.levels = append(job.levels, level + 1)
		}
		return job
	}
	return nil
}

// pickTiered merges any tier that accumulated fanIn runs into one run in
// the next tier, leaving the destination tier's runs untouched.
func (d *director) pickTiered(en *Engine) *compactionJob {
	for tier := 0; tier < baseLevel-1; tier++ {
		if len(en.levels[tier]) < d.fanIn {
			continue
		}
		job := &compactionJob{outLevel: tier + 1}
		for _, r := range en.levels[tier] {
			job.inputs = append(job.inputs, r)
			job.levels = append(job.levels, tier)
		}
		return job
	}
	return nil
}

// pickMajor folds every run into one base-level run (reclaims all
// superseded slots — maximum space recovery).
func (d *director) pickMajor(en *Engine) *compactionJob {
	job := &compactionJob{outLevel: baseLevel, major: true}
	for level := 0; level < maxLevels; level++ {
		for _, r := range en.levels[level] {
			job.inputs = append(job.inputs, r)
			job.levels = append(job.levels, level)
		}
	}
	if len(job.inputs) < 2 {
		return nil
	}
	return job
}

// maybeCompact asks the director for work and starts it; called after each
// flush install and after each compaction completes (the cascade).
func (en *Engine) maybeCompact() {
	en.startCompaction(false)
}

// startCompaction launches the executor for the director's next job.
// Returns false when there is nothing to do or one is already running.
func (en *Engine) startCompaction(force bool) bool {
	if en.compacting {
		return false
	}
	job := en.director.pick(en, force)
	if job == nil {
		return false
	}
	en.compacting = true
	en.compactDone = sim.NewFuture(en.eng)
	done := en.compactDone
	en.eng.Go("compaction", func(p *sim.Proc) {
		en.executeCompaction(p, job)
		en.compacting = false
		done.Complete()
		en.maybeCompact() // cascade
	})
	return true
}

// mergeRuns folds the inputs to the newest version per key. Input order
// must be oldest-first within overlapping levels; version numbers carry the
// truth, so the fold is order-insensitive — max version wins.
func mergeRuns(inputs []*run) []runEntry {
	newest := make(map[int64]runEntry, len(inputs)*64)
	for _, r := range inputs {
		for i, k := range r.keys {
			if cur, ok := newest[k]; !ok || r.vers[i] > cur.version {
				newest[k] = runEntry{key: k, version: r.vers[i], size: int(r.sizes[i])}
			}
		}
	}
	out := make([]runEntry, 0, len(newest))
	for _, e := range newest {
		out = append(out, e)
	}
	sortEntries(out)
	return out
}

// executeCompaction is the executor: stream the inputs up to the host,
// merge, stream the output run back down, publish the new run set, then
// delete the inputs. All I/O is large sequential host-side traffic — the
// shape the compaction experiment measures the checkpoint strategies under.
func (en *Engine) executeCompaction(p *sim.Proc, job *compactionJob) {
	const chunk = 256 << 10
	const window = 8

	// read every input run sequentially (windowed to model queue depth)
	var futs []*sim.Future
	var readBytes int64
	for _, r := range job.inputs {
		total := r.dataBytes()
		readBytes += total
		for off := int64(0); off < total; off += chunk {
			n := min(int64(chunk), total-off)
			p.Sleep(en.cfg.HostIOOverhead)
			futs = append(futs, en.dev.Read(r.offs[0]+off, n))
			if len(futs) >= window {
				p.WaitAll(futs)
				futs = futs[:0]
			}
		}
	}
	p.WaitAll(futs)

	entries := mergeRuns(job.inputs)
	out := en.newRun(job.outLevel, entries, true)
	en.writeRunSequential(p, out, ssd.AreaData)

	en.st.Compactions++
	if job.major {
		en.st.MajorCompactions++
	}
	en.st.CompactionRead += uint64(readBytes)
	en.st.CompactionWrite += uint64(out.ext.len)
	en.st.RunsCreated++

	en.cfg.Injector.Hit(inject.SiteCompactInstall)

	// install: swap the inputs out and the merged run in, then make the new
	// run set durable before the inputs' space is reclaimed.
	en.removeRuns(job)
	en.levels[job.outLevel] = append(en.levels[job.outLevel], out)
	en.publishManifest(p, -1)

	for _, r := range job.inputs {
		p.Wait(en.dev.Deallocate(r.ext.off, r.ext.len))
		en.alloc.release(r.ext)
		en.st.RunsDeleted++
	}
}

// removeRuns drops the job's inputs from their levels, preserving the
// creation order of survivors.
func (en *Engine) removeRuns(job *compactionJob) {
	dead := make(map[uint64]bool, len(job.inputs))
	for _, r := range job.inputs {
		dead[r.id] = true
	}
	for level := range en.levels {
		keep := en.levels[level][:0]
		for _, r := range en.levels[level] {
			if !dead[r.id] {
				keep = append(keep, r)
			}
		}
		en.levels[level] = keep
	}
}

// String renders a job for panics and traces.
func (j *compactionJob) String() string {
	return fmt.Sprintf("compact(%d runs -> L%d, major=%v)", len(j.inputs), j.outLevel, j.major)
}
