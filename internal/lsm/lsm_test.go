package lsm

import (
	"testing"

	"github.com/checkin-kv/checkin/internal/core"
	"github.com/checkin-kv/checkin/internal/ftl"
	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
	"github.com/checkin-kv/checkin/internal/workload"
)

func newStack(t *testing.T, unit int) (*sim.Engine, *ssd.Device) {
	t.Helper()
	e := sim.NewEngine()
	geo := nand.Geometry{
		Channels: 2, PackagesPerChannel: 1, DiesPerPackage: 2, PlanesPerDie: 2,
		BlocksPerPlane: 64, PagesPerBlock: 32, PageSize: 4096,
	}
	tim := nand.Timing{
		ReadPage: 50 * sim.Microsecond, ProgramPage: 500 * sim.Microsecond,
		EraseBlock: 3 * sim.Millisecond, CmdOverhead: sim.Microsecond, ChannelMBps: 400,
	}
	arr, err := nand.New(e, geo, tim)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := ftl.DefaultConfig()
	fcfg.UnitSize = unit
	fcfg.OverProvision = 0.15
	fcfg.Parallelism = 4
	f, err := ftl.New(e, arr, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := ssd.DefaultConfig()
	dcfg.DeallocatorPeriod = 0
	dcfg.CacheBytes = 1 << 20
	d, err := ssd.New(e, f, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

func runProc(e *sim.Engine, fn func(p *sim.Proc)) {
	done := false
	e.Go("test", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	for !done {
		e.RunUntil(e.Now() + 50*sim.Millisecond)
	}
}

// newTestEngine wires a small LSM engine for a strategy.
func newTestEngine(t *testing.T, s core.Strategy, mut func(*Config)) (*sim.Engine, *Engine) {
	t.Helper()
	e, dev := newStack(t, s.DefaultMappingUnit())
	cfg := DefaultConfig()
	cfg.Strategy = s
	cfg.Keys = 2000
	cfg.Sizer = workload.FixedSizer{Size: 512}
	cfg.WALHalfBytes = 2 << 20
	cfg.MemtableEntries = 256
	cfg.CheckpointInterval = 50 * sim.Millisecond
	if mut != nil {
		mut(&cfg)
	}
	en, err := New(e, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, en
}

func TestRejectsBadConfig(t *testing.T) {
	e, dev := newStack(t, 512)
	cfg := DefaultConfig()
	cfg.Keys = 0
	if _, err := New(e, dev, cfg); err == nil {
		t.Error("bad config accepted")
	}
	cfg = DefaultConfig()
	cfg.Policy = "sizetiered-typo"
	if _, err := New(e, dev, cfg); err == nil {
		t.Error("unknown policy accepted")
	}
	cfg = DefaultConfig()
	cfg.Keys = 100_000_000
	if _, err := New(e, dev, cfg); err == nil {
		t.Error("oversized key space accepted")
	}
}

func TestLoadBuildsBaseRun(t *testing.T) {
	_, en := newTestEngine(t, core.StrategyCheckIn, nil)
	en.Load()
	if got := len(en.levels[baseLevel]); got != 1 {
		t.Fatalf("base level holds %d runs, want 1", got)
	}
	if en.st.ManifestWrites != 1 {
		t.Errorf("manifest writes = %d, want 1", en.st.ManifestWrites)
	}
	rec := en.recoverReport()
	for k, v := range rec.Recovered {
		if v != 1 {
			t.Fatalf("recovered[%d] = %d after load, want 1", k, v)
		}
	}
}

func TestFlushAppliesVersionsAllStrategies(t *testing.T) {
	for _, s := range core.Strategies {
		t.Run(s.String(), func(t *testing.T) {
			e, en := newTestEngine(t, s, nil)
			en.Load()
			runProc(e, func(p *sim.Proc) {
				for i := int64(0); i < 50; i++ {
					en.Update(p, i, 512)
				}
				en.Update(p, 3, 512) // second post-load version for key 3
				p.Wait(en.TriggerCheckpoint())
			})
			if en.flushRunning {
				t.Fatal("flush still running")
			}
			if en.st.Flushes != 1 {
				t.Fatalf("flushes = %d, want 1", en.st.Flushes)
			}
			if got := len(en.levels[0]); got != 1 {
				t.Fatalf("level 0 holds %d runs, want 1", got)
			}
			// with the WAL floor advanced, recovery must come from the run
			rec := en.recoverReport()
			if rec.Recovered[3] != 3 {
				t.Errorf("recovered[3] = %d, want 3 (load 1 + 2 updates)", rec.Recovered[3])
			}
			if rec.ReplayedLogs != 0 {
				t.Errorf("replayed %d logs after a clean flush, want 0", rec.ReplayedLogs)
			}
			if s.UsesRemap() && en.RemapTotals().Remapped == 0 && en.RemapTotals().RMWs == 0 {
				t.Error("remap strategy moved no entries through CheckpointRequest")
			}
		})
	}
}

func TestUncommittedTailIsNotRecovered(t *testing.T) {
	e, en := newTestEngine(t, core.StrategyCheckIn, nil)
	en.Load()
	runProc(e, func(p *sim.Proc) {
		en.Update(p, 7, 512)
		en.Sync(p)
	})
	// committed but unflushed: replayed from the WAL
	rec := en.recoverReport()
	if rec.Recovered[7] != 2 {
		t.Fatalf("recovered[7] = %d, want 2", rec.Recovered[7])
	}
	if rec.ReplayedLogs != 1 {
		t.Errorf("replayed %d logs, want 1", rec.ReplayedLogs)
	}
	// an appended-but-uncommitted record must not be recovered
	en.walLive = append(en.walLive, &walRec{seq: en.w.seq + 1, key: 8, version: 99})
	if got := en.recoverReport().Recovered[8]; got != 1 {
		t.Errorf("recovered[8] = %d, want 1 (uncommitted tail lost)", got)
	}
}

func TestCompactionFoldsLevelZero(t *testing.T) {
	for _, policy := range []string{PolicyLeveled, PolicyTiered} {
		t.Run(policy, func(t *testing.T) {
			e, en := newTestEngine(t, core.StrategyCheckIn, func(c *Config) {
				c.Policy = policy
				c.MemtableEntries = 64
			})
			en.Load()
			runProc(e, func(p *sim.Proc) {
				// five flush epochs -> level 0 crosses the fan-in of 4
				for epoch := int64(0); epoch < 5; epoch++ {
					for i := int64(0); i < 100; i++ {
						en.Update(p, (epoch*37+i)%500, 512)
					}
					p.Wait(en.TriggerCheckpoint())
				}
			})
			// drain the cascade
			for guard := 0; (en.compacting || e.LiveProcs() > 0) && guard < 10_000; guard++ {
				e.RunUntil(e.Now() + 10*sim.Millisecond)
			}
			if en.st.Compactions == 0 {
				t.Fatalf("no compaction ran under %s after 5 flushes (levels %v)", policy, en.Levels())
			}
			if len(en.levels[0]) >= 4 {
				t.Errorf("level 0 still holds %d runs after compaction", len(en.levels[0]))
			}
			// version truth must survive the merges
			rec := en.recoverReport()
			versions := en.DurableVersions()
			for k, v := range versions {
				if rec.Recovered[k] != v {
					t.Fatalf("recovered[%d] = %d, durable = %d", k, rec.Recovered[k], v)
				}
			}
		})
	}
}

func TestWALBackpressureTriggersFlush(t *testing.T) {
	e, en := newTestEngine(t, core.StrategyCheckIn, func(c *Config) {
		c.WALHalfBytes = 1 << 18 // 256KB: ~500 sector records
		c.MemtableEntries = 1 << 20
		c.WALSoftFrac = 0.99 // only hard back-pressure
	})
	en.Load()
	runProc(e, func(p *sim.Proc) {
		for i := int64(0); i < 1200; i++ {
			en.Update(p, i%300, 512)
		}
	})
	if en.st.Flushes == 0 {
		t.Error("no flush despite WAL exhaustion")
	}
	if en.JournalStats().HalfSwitches == 0 {
		t.Error("WAL never rotated halves")
	}
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	e, en := newTestEngine(t, core.StrategyCheckIn, nil)
	en.Load()
	runProc(e, func(p *sim.Proc) {
		for i := int64(0); i < 80; i++ {
			en.Update(p, i, 512)
		}
		p.Wait(en.TriggerCheckpoint())
		for i := int64(40); i < 60; i++ {
			en.Update(p, i, 512)
		}
		en.Sync(p)
	})
	before := en.recoverReport().Recovered
	s, err := en.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// mutate, then restore and compare
	runProc(e, func(p *sim.Proc) {
		for i := int64(0); i < 30; i++ {
			en.Update(p, i+100, 512)
		}
		p.Wait(en.TriggerCheckpoint())
	})
	if err := en.Restore(s); err != nil {
		t.Fatal(err)
	}
	after := en.recoverReport().Recovered
	for k := range before {
		if before[k] != after[k] {
			t.Fatalf("recovered[%d] = %d after restore, want %d", k, after[k], before[k])
		}
	}
	if got := en.InMemoryVersions()[50]; got != 3 {
		t.Errorf("version[50] = %d after restore, want 3", got)
	}
}

func TestSnapshotRefusesMidFlush(t *testing.T) {
	e, en := newTestEngine(t, core.StrategyCheckIn, nil)
	en.Load()
	snapErr := error(nil)
	runProc(e, func(p *sim.Proc) {
		for i := int64(0); i < 50; i++ {
			en.Update(p, i, 512)
		}
		fut := en.TriggerCheckpoint()
		_, snapErr = en.Snapshot()
		p.Wait(fut)
	})
	if snapErr == nil {
		t.Error("snapshot during a flush epoch accepted")
	}
}

func TestAllocatorCoalesces(t *testing.T) {
	a := newAllocator(extent{off: 0, len: 4096})
	o1, ok1 := a.take(1024)
	o2, ok2 := a.take(1024)
	o3, ok3 := a.take(2048)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("allocation failed")
	}
	if _, ok := a.take(1); ok {
		t.Fatal("overcommitted")
	}
	a.release(extent{off: o1, len: 1024})
	a.release(extent{off: o3, len: 2048})
	a.release(extent{off: o2, len: 1024})
	if len(a.free) != 1 || a.freeBytes() != 4096 {
		t.Fatalf("free list %v (%d bytes), want one extent of 4096", a.free, a.freeBytes())
	}
	if u := a.utilization(); u != 0 {
		t.Errorf("utilization = %v, want 0", u)
	}
}

func TestRunFindAndPlan(t *testing.T) {
	entries := []runEntry{{key: 5, version: 2, size: 100}, {key: 1, version: 3, size: 700}, {key: 9, version: 1, size: 512}}
	sortEntries(entries)
	r, used := planRun(1, 0, entries, 10240)
	if used != 512+1024+512 {
		t.Fatalf("planned %d bytes, want %d", used, 512+1024+512)
	}
	if i, ok := r.find(5); !ok || r.vers[i] != 2 {
		t.Error("find(5) failed")
	}
	if _, ok := r.find(4); ok {
		t.Error("find(4) found a missing key")
	}
	if r.offs[0] != 10240 || r.offs[1] != 10240+1024 {
		t.Errorf("offsets %v misplanned", r.offs)
	}
}

func TestRunEngineSmoke(t *testing.T) {
	_, en := newTestEngine(t, core.StrategyCheckIn, nil)
	en.Load()
	m, err := en.Run(core.RunSpec{
		Threads: 2, TotalQueries: 2000, Mix: workload.WorkloadA, Zipfian: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Queries != 2000 {
		t.Errorf("queries = %d, want 2000", m.Queries)
	}
	if m.Checkpoints() == 0 && en.st.Flushes == 0 {
		t.Error("run finished without any flush epoch")
	}
	rep := en.SimulateRecovery()
	if rep.RecoveryTime <= 0 {
		t.Error("recovery charged no simulated time")
	}
}
