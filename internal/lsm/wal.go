package lsm

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/core"
	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
	"github.com/checkin-kv/checkin/internal/trace"
)

// walRec is one write-ahead-log record: a key's new version logged before
// the memtable acknowledges the write. The record's seq orders it against
// the manifest floor — records at or below the floor are fully covered by
// published runs and no longer participate in recovery.
type walRec struct {
	seq     int64
	key     int64
	version int64
	payload int   // raw value bytes
	stored  int   // bytes occupied in the WAL once laid out
	off     int64 // absolute device offset once laid out
	deleted bool  // tombstone record

	committed bool
}

// wal is the double-buffered write-ahead log: an in-memory record buffer
// with group commit over two on-device halves. The halves rotate at
// memtable seal — exactly the journal engine's half discipline
// (core/journal.go) — so one flush epoch's records occupy one extent that
// deallocates wholesale once the manifest publishes the flushed run.
//
// Record format follows the strategy the engine runs under: Check-In's
// sector-aligned format rounds every record up to host sectors (remappable
// in place); the conventional format packs an inline header plus the raw
// payload densely (remap degrades to read-merge-write, the ISC-C shape).
type wal struct {
	eng *sim.Engine
	dev *ssd.Device

	halfBytes int64
	aligned   bool
	header    int64

	active int
	head   int64
	seq    int64

	pending        []*walRec
	nextBatch      *sim.Future
	commitInFlight bool
	inFlightDone   *sim.Future
	sealing        bool

	// onCommit observes every record the moment its group commit becomes
	// durable (before client wakeup); the engine hangs durable-version
	// accounting and the check oracle's commit hook off it.
	onCommit func(r *walRec)
	injector *inject.Injector
	tracer   *trace.Tracer

	stats core.JournalStats
}

func newWAL(eng *sim.Engine, dev *ssd.Device, halfBytes int64, aligned bool, header int64) *wal {
	return &wal{eng: eng, dev: dev, halfBytes: halfBytes, aligned: aligned, header: header}
}

// halfStart returns the absolute offset of WAL half h (0 or 1).
func (w *wal) halfStart(h int) int64 { return int64(h) * w.halfBytes }

// UsedFrac returns the active half's fill fraction including buffered
// records.
func (w *wal) UsedFrac() float64 {
	return float64(w.head+w.pendingEstimate()) / float64(w.halfBytes)
}

func (w *wal) recStored(payload int) int64 {
	if w.aligned {
		return roundUp(int64(payload), sector)
	}
	return w.header + int64(payload)
}

func (w *wal) pendingEstimate() int64 {
	var sum int64
	for _, r := range w.pending {
		sum += roundUp(w.recStored(r.payload), sector)
	}
	return sum
}

// WouldOverflow reports whether logging a payload of the given size risks
// exceeding the active half.
func (w *wal) WouldOverflow(payload int) bool {
	need := roundUp(w.recStored(payload), sector) + sector
	return w.head+w.pendingEstimate()+need > w.halfBytes
}

// Append buffers a WAL record and returns it plus a future completing when
// its group commit is durable.
func (w *wal) Append(key, version int64, payload int) (*walRec, *sim.Future) {
	w.seq++
	r := &walRec{seq: w.seq, key: key, version: version, payload: payload}
	w.pending = append(w.pending, r)
	w.stats.Logs++
	w.stats.PayloadBytes += uint64(payload)
	if w.nextBatch == nil {
		w.nextBatch = sim.NewFuture(w.eng)
	}
	fut := w.nextBatch
	if !w.commitInFlight && !w.sealing {
		w.startCommit()
	}
	return r, fut
}

// startCommit lays the buffered records out in the active half, writes them
// with one device write, and flushes — group commit, chained exactly like
// the journal engine's.
func (w *wal) startCommit() {
	if len(w.pending) == 0 || w.commitInFlight {
		return
	}
	batch := w.pending
	fut := w.nextBatch
	w.pending = nil
	w.nextBatch = nil

	base := w.halfStart(w.active) + w.head
	w.head += w.commitBatch(batch, fut, base)
	if w.head > w.halfBytes {
		panic(fmt.Sprintf("lsm: wal half overflow (%d > %d); soft trigger misconfigured",
			w.head, w.halfBytes))
	}
}

// commitBatch lays batch out at the absolute offset base, issues the device
// write + flush, and returns the laid-out length.
func (w *wal) commitBatch(batch []*walRec, fut *sim.Future, base int64) int64 {
	w.commitInFlight = true
	w.inFlightDone = fut

	var off int64
	for _, r := range batch {
		if w.aligned {
			stored := roundUp(int64(r.payload), sector)
			if stored == 0 {
				stored = sector
			}
			r.off = base + off
			r.stored = int(stored)
			w.stats.PadWaste += uint64(stored - int64(r.payload))
			w.stats.FullLogs++
			off += stored
		} else {
			r.off = base + off + w.header // payload begins after the header
			r.stored = int(w.header) + r.payload
			w.stats.FullLogs++
			off += int64(r.stored)
		}
	}
	length := off
	w.stats.Commits++
	w.stats.StoredBytes += uint64(length)

	w.dev.Write(base, length, ssd.AreaJournal)
	ff := w.dev.Flush(ssd.AreaJournal)
	ff.OnComplete(func() {
		w.tracer.Emit(w.eng.Now(), trace.KindJournalCommit, length, "")
		for _, r := range batch {
			r.committed = true
			if w.onCommit != nil {
				w.onCommit(r)
			}
		}
		w.injector.Hit(inject.SiteWALCommit)
		w.commitInFlight = false
		w.inFlightDone = nil
		fut.Complete()
		if !w.sealing && len(w.pending) > 0 {
			w.startCommit()
		}
	})
	return length
}

// Seal atomically rotates logging onto the alternate half — new appends
// immediately target the fresh half — then drains the sealed half: the
// in-flight batch plus any records still buffered. When Seal returns, every
// record at or below the returned seq is durable on the sealed half, which
// is what lets the flush write only committed entries into the sorted run.
func (w *wal) Seal(p *sim.Proc) (half int, used int64, maxSeq int64) {
	w.sealing = true
	oldHalf, oldHead := w.active, w.head
	oldPending, oldFut := w.pending, w.nextBatch
	maxSeq = w.seq

	w.active ^= 1
	w.head = 0
	w.pending = nil
	w.nextBatch = nil

	for w.commitInFlight {
		p.Wait(w.inFlightDone)
	}
	if len(oldPending) > 0 {
		base := w.halfStart(oldHalf) + oldHead
		oldHead += w.commitBatch(oldPending, oldFut, base)
		if oldHead > w.halfBytes {
			panic("lsm: wal half overflow during seal")
		}
		for w.commitInFlight {
			p.Wait(w.inFlightDone)
		}
	}
	w.sealing = false
	w.stats.HalfSwitches++
	w.tracer.Emit(w.eng.Now(), trace.KindJournalSwitch, int64(oldHalf), "")
	if len(w.pending) > 0 {
		w.startCommit()
	}
	return oldHalf, oldHead, maxSeq
}

// Stats returns a snapshot of WAL counters in the journaling-stats shape
// shared with the journal engine.
func (w *wal) Stats() core.JournalStats { return w.stats }
