package lsm

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/core"
)

// EngineState is a deep copy of the LSM engine's mutable state at a
// quiescent instant. Runs are immutable after construction, so the level
// hierarchy and durable run set are copied as pointer slices sharing the
// run objects — a fork can never observe a mutation because none happen.
// WAL records are snapshotted by value and relinked on restore so a fork's
// memtable never aliases the template's records.
type EngineState struct {
	version []int64
	durable []int64
	deleted []bool

	levels      [maxLevels][]*run
	durableRuns []*run
	nextRunID   uint64

	durableFloor int64
	manifestSeq  uint64

	walActive int
	walHead   int64
	walSeq    int64
	walStats  core.JournalStats
	walLive   []walRec

	// mem maps key -> index into walLive (the memtable cell's record);
	// -1 when the record fell below the floor snapshot (cannot happen for
	// live memtable cells, but kept defensive).
	memIdx map[int64]int

	ckptEpoch   uint64
	remapTotals struct{ Remapped, RMWs, Skipped int }
	st          Stats
	allocFree   []extent
}

// Snapshot captures the engine's mutable state. Must be called at a
// quiescent instant: no flush epoch, no sealed memtable, no WAL activity in
// flight, no compaction, no closed gate.
func (en *Engine) Snapshot() (*EngineState, error) {
	switch {
	case en.flushRunning || en.imm != nil:
		return nil, fmt.Errorf("lsm: snapshot during a flush epoch")
	case en.w.commitInFlight || en.w.sealing || len(en.w.pending) > 0:
		return nil, fmt.Errorf("lsm: snapshot with WAL activity in flight")
	case en.compacting:
		return nil, fmt.Errorf("lsm: snapshot during a compaction")
	case en.gateClosed:
		return nil, fmt.Errorf("lsm: snapshot with the query gate closed")
	}
	s := &EngineState{
		version: append([]int64(nil), en.version...),
		durable: append([]int64(nil), en.durable...),
		deleted: append([]bool(nil), en.deleted...),

		durableRuns: append([]*run(nil), en.durableRuns...),
		nextRunID:   en.nextRunID,

		durableFloor: en.durableFloor,
		manifestSeq:  en.manifestSeq,

		walActive: en.w.active,
		walHead:   en.w.head,
		walSeq:    en.w.seq,
		walStats:  en.w.stats,

		ckptEpoch: en.ckptEpoch,
		st:        en.st,
		allocFree: append([]extent(nil), en.alloc.free...),
	}
	s.remapTotals.Remapped = en.remapTotals.Remapped
	s.remapTotals.RMWs = en.remapTotals.RMWs
	s.remapTotals.Skipped = en.remapTotals.Skipped
	for i := range en.levels {
		s.levels[i] = append([]*run(nil), en.levels[i]...)
	}
	// value-snapshot the live WAL records, remembering which one each
	// memtable cell points at
	idxBySeq := make(map[int64]int, len(en.walLive))
	s.walLive = make([]walRec, len(en.walLive))
	for i, rec := range en.walLive {
		s.walLive[i] = *rec
		idxBySeq[rec.seq] = i
	}
	s.memIdx = make(map[int64]int, len(en.mem))
	for k, e := range en.mem {
		if i, ok := idxBySeq[e.rec.seq]; ok {
			s.memIdx[k] = i
		} else {
			s.memIdx[k] = -1
		}
	}
	return s, nil
}

// Restore installs a previously captured state into en, which must be
// freshly constructed from the same Config shape. Records are re-linked
// into fresh walRec objects so the captured state stays pristine across
// any number of restores.
func (en *Engine) Restore(s *EngineState) error {
	if len(s.version) != len(en.version) {
		return fmt.Errorf("lsm: restore with %d keys into an engine with %d", len(s.version), len(en.version))
	}
	copy(en.version, s.version)
	copy(en.durable, s.durable)
	copy(en.deleted, s.deleted)

	en.durableRuns = append([]*run(nil), s.durableRuns...)
	en.nextRunID = s.nextRunID
	for i := range en.levels {
		en.levels[i] = append([]*run(nil), s.levels[i]...)
	}

	en.durableFloor = s.durableFloor
	en.manifestSeq = s.manifestSeq

	en.w.active = s.walActive
	en.w.head = s.walHead
	en.w.seq = s.walSeq
	en.w.stats = s.walStats
	en.w.pending = nil
	en.w.nextBatch = nil
	en.w.commitInFlight = false
	en.w.inFlightDone = nil
	en.w.sealing = false

	en.walLive = make([]*walRec, len(s.walLive))
	for i := range s.walLive {
		rec := s.walLive[i] // copy
		en.walLive[i] = &rec
	}
	en.mem = make(map[int64]*memEntry, len(s.memIdx))
	for k, i := range s.memIdx {
		if i < 0 {
			continue
		}
		rec := en.walLive[i]
		en.mem[k] = &memEntry{version: rec.version, size: rec.payload, rec: rec}
	}
	en.imm = nil

	en.ckptEpoch = s.ckptEpoch
	en.remapTotals.Remapped = s.remapTotals.Remapped
	en.remapTotals.RMWs = s.remapTotals.RMWs
	en.remapTotals.Skipped = s.remapTotals.Skipped
	en.st = s.st
	en.alloc.free = append([]extent(nil), s.allocFree...)

	en.flushRunning = false
	en.flushDone = nil
	en.compacting = false
	en.compactDone = nil
	en.gateClosed = false
	en.gateOpen = nil
	en.metrics = core.NewMetrics()
	return nil
}

// SnapshotState captures the engine's mutable state as an opaque value
// (the checkin.HostEngine shape).
func (en *Engine) SnapshotState() (any, error) { return en.Snapshot() }

// RestoreState installs a state previously captured by SnapshotState.
func (en *Engine) RestoreState(s any) error {
	st, ok := s.(*EngineState)
	if !ok {
		return fmt.Errorf("lsm: restore with a foreign engine state (%T)", s)
	}
	return en.Restore(st)
}
