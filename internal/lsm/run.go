package lsm

import (
	"fmt"
	"sort"
)

// sector is the block-interface granularity run entries align to.
const sector = 512

func roundUp(v, to int64) int64 {
	if to <= 0 {
		return v
	}
	return (v + to - 1) / to * to
}

// extent is a contiguous device range.
type extent struct {
	off, len int64
}

// run is one immutable sorted run on flash: entries in key order, each in a
// sector-aligned slot inside the run's extent. The metadata (keys, versions,
// sizes, per-entry offsets) stays host-resident — the in-memory index a real
// engine would rebuild from the run's footer — so reads know exactly which
// run holds a key without probing the device. Runs never mutate after
// construction, which lets snapshots and forks share them by reference.
type run struct {
	id    uint64
	level int
	ext   extent

	keys  []int64
	vers  []int64
	sizes []int32
	offs  []int64 // absolute device offset per entry

	payload int64 // raw value bytes (stats)
}

// runEntry is the builder's input: one key's newest version.
type runEntry struct {
	key     int64
	version int64
	size    int
}

// sortEntries orders entries by key. Keys are distinct (one memtable cell
// per key; merges fold duplicates first), so the order is total and the
// layout deterministic.
func sortEntries(entries []runEntry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
}

// planRun lays entries (must be sorted by key) out from base and returns
// the run's metadata plus the extent length consumed (unaligned).
func planRun(id uint64, level int, entries []runEntry, base int64) (*run, int64) {
	r := &run{
		id:    id,
		level: level,
		keys:  make([]int64, len(entries)),
		vers:  make([]int64, len(entries)),
		sizes: make([]int32, len(entries)),
		offs:  make([]int64, len(entries)),
	}
	var off int64
	for i, e := range entries {
		r.keys[i] = e.key
		r.vers[i] = e.version
		r.sizes[i] = int32(e.size)
		r.offs[i] = base + off
		r.payload += int64(e.size)
		off += roundUp(int64(e.size), sector)
	}
	return r, off
}

// find returns the index of key in the run, or ok=false.
func (r *run) find(key int64) (int, bool) {
	i := sort.Search(len(r.keys), func(i int) bool { return r.keys[i] >= key })
	if i < len(r.keys) && r.keys[i] == key {
		return i, true
	}
	return 0, false
}

// dataBytes returns the laid-out (slot-padded) size of the run.
func (r *run) dataBytes() int64 {
	if len(r.keys) == 0 {
		return 0
	}
	last := len(r.keys) - 1
	return r.offs[last] + roundUp(int64(r.sizes[last]), sector) - r.offs[0]
}

// allocator hands out extents from the run area with a first-fit free list
// (sorted by offset, coalescing on release). Deterministic by construction.
type allocator struct {
	area extent
	free []extent
}

func newAllocator(area extent) *allocator {
	return &allocator{area: area, free: []extent{area}}
}

// take allocates n bytes (caller aligns n), first fit.
func (a *allocator) take(n int64) (int64, bool) {
	for i := range a.free {
		if a.free[i].len >= n {
			off := a.free[i].off
			a.free[i].off += n
			a.free[i].len -= n
			if a.free[i].len == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			return off, true
		}
	}
	return 0, false
}

// release returns an extent to the free list, merging neighbours.
func (a *allocator) release(e extent) {
	if e.len == 0 {
		return
	}
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off >= e.off })
	a.free = append(a.free, extent{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = e
	// coalesce with the successor, then the predecessor
	if i+1 < len(a.free) && a.free[i].off+a.free[i].len == a.free[i+1].off {
		a.free[i].len += a.free[i+1].len
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].len == a.free[i].off {
		a.free[i-1].len += a.free[i].len
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// freeBytes sums the free list.
func (a *allocator) freeBytes() int64 {
	var sum int64
	for _, e := range a.free {
		sum += e.len
	}
	return sum
}

// utilization returns the allocated fraction of the run area.
func (a *allocator) utilization() float64 {
	if a.area.len == 0 {
		return 1
	}
	return 1 - float64(a.freeBytes())/float64(a.area.len)
}

// clone deep-copies the allocator (snapshot support).
func (a *allocator) clone() *allocator {
	return &allocator{area: a.area, free: append([]extent(nil), a.free...)}
}

func (a *allocator) String() string {
	return fmt.Sprintf("alloc[%d free in %d extents of %d]", a.freeBytes(), len(a.free), a.area.len)
}
