// Package trace provides a lightweight structured event tracer for the
// simulation: components append typed events (checkpoint begin/end, GC
// victim collected, journal commit, device command) into a bounded ring,
// and tools dump or filter them for debugging and for explaining a run's
// behaviour ("what exactly happened around the latency spike at t=1.2s?").
//
// Tracing is optional and zero-cost when disabled: a nil *Tracer is a valid
// receiver for Emit.
package trace

import (
	"fmt"
	"io"
	"strings"

	"github.com/checkin-kv/checkin/internal/sim"
)

// Kind classifies an event.
type Kind uint8

// Event kinds emitted by the stack.
const (
	KindCheckpointBegin Kind = iota
	KindCheckpointEnd
	KindJournalCommit
	KindJournalSwitch
	KindGCVictim
	KindWearLevel
	KindDeviceCommand
	KindQueryStall
	// NAND-fault events (reliability model): a read-retry ladder, a page
	// program reporting FAIL, an erase reporting FAIL, a block retirement,
	// and the device dropping to read-only after the spare pool drained.
	KindReadRetry
	KindProgramFail
	KindEraseFail
	KindBlockRetire
	KindReadOnly
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCheckpointBegin:
		return "ckpt-begin"
	case KindCheckpointEnd:
		return "ckpt-end"
	case KindJournalCommit:
		return "journal-commit"
	case KindJournalSwitch:
		return "journal-switch"
	case KindGCVictim:
		return "gc-victim"
	case KindWearLevel:
		return "wear-level"
	case KindDeviceCommand:
		return "device-cmd"
	case KindQueryStall:
		return "query-stall"
	case KindReadRetry:
		return "read-retry"
	case KindProgramFail:
		return "program-fail"
	case KindEraseFail:
		return "erase-fail"
	case KindBlockRetire:
		return "block-retire"
	case KindReadOnly:
		return "read-only"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one trace record.
type Event struct {
	At   sim.VTime
	Kind Kind
	// Arg carries the kind-specific quantity (entries checkpointed, block
	// id collected, bytes committed, ...).
	Arg int64
	// Detail is an optional human-readable fragment.
	Detail string
}

// String renders the event.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%12v %-14s %d", e.At, e.Kind, e.Arg)
	}
	return fmt.Sprintf("%12v %-14s %d %s", e.At, e.Kind, e.Arg, e.Detail)
}

// Tracer is a bounded ring of events. The zero value is unusable; create
// with New. A nil Tracer discards events.
type Tracer struct {
	ring    []Event
	next    int
	wrapped bool
	dropped uint64
	counts  [numKinds]uint64
}

// New creates a tracer holding up to capacity events (older events are
// overwritten once full).
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Emit appends an event. Safe on a nil receiver (no-op).
func (t *Tracer) Emit(at sim.VTime, kind Kind, arg int64, detail string) {
	if t == nil {
		return
	}
	if int(kind) < len(t.counts) {
		t.counts[kind]++
	}
	ev := Event{At: at, Kind: kind, Arg: arg, Detail: detail}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
		return
	}
	t.ring[t.next] = ev
	t.next = (t.next + 1) % cap(t.ring)
	t.wrapped = true
	t.dropped++
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.ring)
}

// Dropped returns how many events were overwritten by newer ones.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Count returns how many events of the kind were emitted (including
// overwritten ones).
func (t *Tracer) Count(kind Kind) uint64 {
	if t == nil || int(kind) >= len(t.counts) {
		return 0
	}
	return t.counts[kind]
}

// Events returns retained events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		out := make([]Event, len(t.ring))
		copy(out, t.ring)
		return out
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Filter returns retained events of the given kinds in order.
func (t *Tracer) Filter(kinds ...Kind) []Event {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range t.Events() {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// Between returns retained events with from <= At < to.
func (t *Tracer) Between(from, to sim.VTime) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.At >= from && e.At < to {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes every retained event, one per line.
func (t *Tracer) Dump(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(%d older events overwritten)\n", d); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders per-kind counts.
func (t *Tracer) Summary() string {
	if t == nil {
		return "tracing disabled"
	}
	var b strings.Builder
	for k := Kind(0); k < numKinds; k++ {
		if t.counts[k] > 0 {
			fmt.Fprintf(&b, "%-14s %d\n", k, t.counts[k])
		}
	}
	return b.String()
}
