package trace

import (
	"strings"
	"testing"

	"github.com/checkin-kv/checkin/internal/sim"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, KindGCVictim, 1, "") // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Count(KindGCVictim) != 0 {
		t.Error("nil tracer not inert")
	}
	if tr.Events() != nil {
		t.Error("nil tracer returned events")
	}
	if tr.Summary() != "tracing disabled" {
		t.Errorf("nil summary = %q", tr.Summary())
	}
}

func TestEmitAndOrder(t *testing.T) {
	tr := New(8)
	for i := 0; i < 5; i++ {
		tr.Emit(sim.VTime(i*100), KindJournalCommit, int64(i), "")
	}
	evs := tr.Events()
	if len(evs) != 5 {
		t.Fatalf("Len = %d", len(evs))
	}
	for i, e := range evs {
		if e.Arg != int64(i) {
			t.Fatalf("order broken: %v", evs)
		}
	}
	if tr.Count(KindJournalCommit) != 5 {
		t.Errorf("Count = %d", tr.Count(KindJournalCommit))
	}
}

func TestRingWraps(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(sim.VTime(i), KindGCVictim, int64(i), "")
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	// Oldest retained is 6, newest 9, in order.
	for i, e := range evs {
		if e.Arg != int64(6+i) {
			t.Fatalf("wrapped order wrong: %v", evs)
		}
	}
	if tr.Count(KindGCVictim) != 10 {
		t.Errorf("Count includes dropped: %d", tr.Count(KindGCVictim))
	}
}

func TestFilterAndBetween(t *testing.T) {
	tr := New(16)
	tr.Emit(10, KindCheckpointBegin, 0, "")
	tr.Emit(20, KindGCVictim, 7, "")
	tr.Emit(30, KindCheckpointEnd, 0, "")
	tr.Emit(40, KindGCVictim, 8, "")

	gcs := tr.Filter(KindGCVictim)
	if len(gcs) != 2 || gcs[0].Arg != 7 || gcs[1].Arg != 8 {
		t.Errorf("Filter = %v", gcs)
	}
	both := tr.Filter(KindCheckpointBegin, KindCheckpointEnd)
	if len(both) != 2 {
		t.Errorf("multi-kind filter = %v", both)
	}
	mid := tr.Between(15, 35)
	if len(mid) != 2 || mid[0].At != 20 || mid[1].At != 30 {
		t.Errorf("Between = %v", mid)
	}
}

func TestDumpAndSummary(t *testing.T) {
	tr := New(2)
	tr.Emit(1000, KindWearLevel, 3, "block 3")
	tr.Emit(2000, KindDeviceCommand, 1, "")
	tr.Emit(3000, KindDeviceCommand, 2, "")
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "device-cmd") || !strings.Contains(out, "overwritten") {
		t.Errorf("dump = %q", out)
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "wear-level") || !strings.Contains(sum, "device-cmd     2") {
		t.Errorf("summary = %q", sum)
	}
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		KindCheckpointBegin: "ckpt-begin", KindCheckpointEnd: "ckpt-end",
		KindJournalCommit: "journal-commit", KindJournalSwitch: "journal-switch",
		KindGCVictim: "gc-victim", KindWearLevel: "wear-level",
		KindDeviceCommand: "device-cmd", KindQueryStall: "query-stall",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind renders empty")
	}
	ev := Event{At: 1500, Kind: KindGCVictim, Arg: 5, Detail: "x"}
	if !strings.Contains(ev.String(), "gc-victim") || !strings.Contains(ev.String(), "x") {
		t.Errorf("event string = %q", ev.String())
	}
}

func TestTinyCapacityClamped(t *testing.T) {
	tr := New(0)
	tr.Emit(0, KindGCVictim, 1, "")
	tr.Emit(1, KindGCVictim, 2, "")
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}
