package runner

import (
	"sync/atomic"
	"testing"

	checkin "github.com/checkin-kv/checkin"
)

// TestRunWithSnapshotsMatchesDirect runs the same jobs with and without the
// template cache and requires identical metrics — the forked load phase
// must be indistinguishable from a direct one.
func TestRunWithSnapshotsMatchesDirect(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)
	jobs := []Job{tinyJob("a", 1), tinyJob("b", 2), tinyJob("c", 3)}
	direct := Run(jobs, 2)
	snap := RunWith(jobs, Options{Parallelism: 2, Snapshots: true})
	for i := range jobs {
		if direct[i].Err != nil || snap[i].Err != nil {
			t.Fatalf("job %d errors: direct=%v snap=%v", i, direct[i].Err, snap[i].Err)
		}
		if d, s := direct[i].Metrics.Summary(), snap[i].Metrics.Summary(); d != s {
			t.Errorf("job %d diverges with snapshots on:\n--- direct\n%s\n--- snapshots\n%s", i, d, s)
		}
		if snap[i].DB == nil {
			t.Errorf("job %d: snapshot run dropped the DB", i)
		}
	}
}

// TestRunWithSnapshotsSharesLoad verifies the template actually short-
// circuits load work: with three jobs differing only in run-phase fields,
// exactly one load phase executes (observable as exactly one execute-var
// bypass: the direct executor runs only for the template build, which goes
// through checkin directly, so the stub below must never fire).
func TestRunWithSnapshotsSharesLoad(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)
	var directRuns atomic.Int64
	orig := execute
	execute = func(j Job) (*checkin.DB, *checkin.Metrics, Timing, error) {
		directRuns.Add(1)
		return orig(j)
	}
	defer func() { execute = orig }()

	jobs := []Job{tinyJob("s1", 1), tinyJob("s2", 2), tinyJob("s3", 3)}
	rs := RunWith(jobs, Options{Parallelism: 1, Snapshots: true})
	for i := range rs {
		if rs[i].Err != nil {
			t.Fatalf("job %d: %v", i, rs[i].Err)
		}
	}
	if n := directRuns.Load(); n != 0 {
		t.Errorf("%d jobs fell back to the direct (non-forking) path; want 0", n)
	}
}

// TestRunWithMemoDedupes submits the same (config, spec) pair several times
// and checks duplicates share one simulation: identical metrics pointers,
// nil DB on the cached copies.
func TestRunWithMemoDedupes(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)
	j := tinyJob("dup", 7)
	jobs := []Job{j, j, j}
	rs := RunWith(jobs, Options{Parallelism: 1, Snapshots: true, Memo: true})
	withDB := 0
	for i := range rs {
		if rs[i].Err != nil {
			t.Fatalf("job %d: %v", i, rs[i].Err)
		}
		if rs[i].Metrics != rs[0].Metrics {
			t.Errorf("job %d did not share the memoized metrics", i)
		}
		if rs[i].DB != nil {
			withDB++
		}
	}
	if withDB != 1 {
		t.Errorf("%d results carry a DB; want exactly 1 (the run that executed)", withDB)
	}
}

// TestRunWithMemoKeyedByRunPhase checks that run-phase config changes miss
// the memo (different results) while the load template is still shared.
func TestRunWithMemoKeyedByRunPhase(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)
	a := tinyJob("seed1", 1)
	b := tinyJob("seed2", 2)
	rs := RunWith([]Job{a, b}, Options{Parallelism: 1, Snapshots: true, Memo: true})
	if rs[0].Err != nil || rs[1].Err != nil {
		t.Fatalf("errors: %v / %v", rs[0].Err, rs[1].Err)
	}
	if rs[0].Metrics.Summary() == rs[1].Metrics.Summary() {
		t.Error("different seeds produced identical summaries; memo key is too coarse")
	}
}

// TestMemoSkipsTraceReplay ensures trace-replay jobs bypass the memo: the
// trace is identified by pointer, which is not a stable key.
func TestMemoSkipsTraceReplay(t *testing.T) {
	j := tinyJob("traced", 1)
	tr, err := checkin.RecordWorkload(j.Config.Keys, j.Config.Records,
		checkin.WorkloadA, true, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	j.Spec.Trace = tr
	if _, ok := memoKeyFor(j, Options{Memo: true}); ok {
		t.Error("trace-replay job produced a memo key")
	}
}
