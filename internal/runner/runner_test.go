package runner

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	checkin "github.com/checkin-kv/checkin"
)

// tinyJob returns a fast, deterministic run configuration.
func tinyJob(name string, seed int64) Job {
	cfg := checkin.DefaultConfig()
	cfg.Strategy = checkin.StrategyCheckIn
	cfg.Keys = 2_000
	cfg.BlocksPerPlane = 32
	cfg.JournalHalfMB = 4
	cfg.Seed = seed
	return Job{
		Name:   name,
		Config: cfg,
		Spec: checkin.RunSpec{
			Threads:      4,
			TotalQueries: 1_500,
			Mix:          checkin.WorkloadA,
			Zipfian:      true,
		},
	}
}

func TestRunOrderingAndDeterminism(t *testing.T) {
	jobs := make([]Job, 6)
	for i := range jobs {
		// distinct seeds so every result is distinguishable: an ordering
		// bug cannot hide behind identical outputs
		jobs[i] = tinyJob(fmt.Sprintf("job-%d", i), int64(i+1))
	}

	seq := Run(jobs, 1)
	par := Run(jobs, 4)
	if len(seq) != len(jobs) || len(par) != len(jobs) {
		t.Fatalf("result lengths %d/%d, want %d", len(seq), len(par), len(jobs))
	}
	for i := range jobs {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("job %d errors: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		if seq[i].Name != jobs[i].Name || par[i].Name != jobs[i].Name {
			t.Errorf("job %d name: seq=%q par=%q want %q", i, seq[i].Name, par[i].Name, jobs[i].Name)
		}
		// byte-identical summaries prove both ordering and per-run
		// determinism under concurrency
		s, p := seq[i].Metrics.Summary(), par[i].Metrics.Summary()
		if s != p {
			t.Errorf("job %d metrics diverge between parallelism 1 and 4:\n--- seq\n%s\n--- par\n%s", i, s, p)
		}
	}
	// distinct seeds must actually differ, or the checks above are vacuous
	if seq[0].Metrics.Summary() == seq[1].Metrics.Summary() {
		t.Error("different seeds produced identical summaries; determinism check is vacuous")
	}
}

func TestRunErrorPropagation(t *testing.T) {
	jobs := []Job{tinyJob("good", 1), tinyJob("bad", 2), tinyJob("also-good", 3)}
	jobs[1].Config.GCPolicy = "bogus-policy" // rejected by checkin.Open

	results, err := RunAll(jobs, 2)
	if err == nil {
		t.Fatal("RunAll did not surface the job error")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error %q does not name the failing job", err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Errorf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || results[1].DB != nil || results[1].Metrics != nil {
		t.Errorf("failed job result not sanitized: %+v", results[1])
	}
}

func TestRunPanicContainment(t *testing.T) {
	orig := execute
	defer func() { execute = orig }()
	execute = func(j Job) (*checkin.DB, *checkin.Metrics, Timing, error) {
		if j.Name == "boom" {
			panic("simulated invariant violation")
		}
		return orig(j)
	}

	jobs := []Job{tinyJob("ok", 1), tinyJob("boom", 2), tinyJob("ok2", 3)}
	results := Run(jobs, 3)
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "panicked") {
		t.Fatalf("panic not converted to error: %v", results[1].Err)
	}
	if !strings.Contains(results[1].Err.Error(), "boom") {
		t.Errorf("panic error %q does not name the job", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("job %d infected by sibling panic: %v", i, results[i].Err)
		}
	}
}

func TestRunParallelismClamping(t *testing.T) {
	// more workers than jobs, zero and negative parallelism must all work
	for _, par := range []int{0, -3, 64} {
		results := Run([]Job{tinyJob("solo", 1)}, par)
		if len(results) != 1 || results[0].Err != nil {
			t.Fatalf("parallelism %d: %+v", par, results)
		}
	}
	if out := Run(nil, 8); len(out) != 0 {
		t.Fatalf("Run(nil) returned %d results", len(out))
	}
}

func TestRunAllNilError(t *testing.T) {
	results, err := RunAll([]Job{tinyJob("a", 1)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	var target error = results[0].Err
	if !errors.Is(target, nil) {
		t.Fatalf("unexpected error: %v", target)
	}
}
