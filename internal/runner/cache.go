package runner

import (
	"fmt"
	"sync"
	"time"

	checkin "github.com/checkin-kv/checkin"
)

// Options selects the acceleration layers for a sweep. The zero value is
// the legacy behaviour: every job opens, loads and runs privately.
type Options struct {
	// Parallelism bounds the worker pool (<= 0 selects runtime.NumCPU(),
	// 1 runs sequentially on the calling goroutine).
	Parallelism int
	// Snapshots enables the process-wide load-template cache: the first
	// job with a given load fingerprint runs the load phase and captures a
	// snapshot; every later job with the same fingerprint forks a private
	// copy instead of re-simulating the load. Unsnapshottable configs
	// (fault injection, tracing) fall back to a direct load transparently.
	Snapshots bool
	// Memo enables whole-run memoization: jobs with identical resolved
	// (Config, Spec) pairs execute once and share the Metrics. Memoized
	// duplicates carry a nil Result.DB — leave Memo off for sweeps that
	// inspect the post-run DB.
	Memo bool
}

const (
	maxTemplates = 16
	maxMemo      = 512
)

// templateEntry materializes one load snapshot exactly once, no matter how
// many workers ask for it concurrently.
type templateEntry struct {
	once sync.Once
	snap *checkin.Snapshot
	err  error
}

var templates = struct {
	mu sync.Mutex
	m  map[uint64]*templateEntry
}{m: make(map[uint64]*templateEntry)}

// template returns the load snapshot for cfg, building it on first use.
// A nil snapshot (with nil error) means cfg is not snapshottable or the
// cache is full — the caller must load directly.
func template(cfg checkin.Config) (*checkin.Snapshot, error) {
	fp, ok := checkin.LoadFingerprint(cfg)
	if !ok {
		return nil, nil
	}
	templates.mu.Lock()
	e := templates.m[fp]
	if e == nil {
		if len(templates.m) >= maxTemplates {
			templates.mu.Unlock()
			return nil, nil
		}
		e = &templateEntry{}
		templates.m[fp] = e
	}
	templates.mu.Unlock()
	e.once.Do(func() {
		db, err := checkin.Open(cfg)
		if err != nil {
			e.err = err
			return
		}
		db.Load()
		e.snap, e.err = db.Snapshot()
	})
	return e.snap, e.err
}

// executeSnap runs one job, forking the load template when enabled and
// available; any template problem falls back to the direct path, where the
// same failure (if real) reproduces with full context.
func executeSnap(j Job, o Options) (*checkin.DB, *checkin.Metrics, Timing, error) {
	if !o.Snapshots {
		return execute(j)
	}
	// The load phase on this path is template lookup plus fork; the first
	// job with a given fingerprint also pays the template build inside
	// template(), which is the honest place to charge it.
	t0 := time.Now()
	snap, err := template(j.Config)
	if err != nil || snap == nil {
		return execute(j)
	}
	db, err := snap.Fork(j.Config)
	if err != nil {
		return execute(j)
	}
	tm := Timing{Load: time.Since(t0)}
	t0 = time.Now()
	m, err := db.Run(j.Spec)
	tm.Run = time.Since(t0)
	if err != nil {
		return nil, nil, tm, err
	}
	return db, m, tm, nil
}

type memoKey struct {
	cfgFP       uint64
	spec        string
	snapshots   bool
	parallelism int
}

// memoKeyFor derives the memo key. ok is false when the job must not be
// memoized: unfingerprintable config, or a trace replay (traces are
// identified by pointer, which is not a stable key).
func memoKeyFor(j Job, o Options) (memoKey, bool) {
	if j.Spec.Trace != nil {
		return memoKey{}, false
	}
	fp, ok := checkin.Fingerprint(j.Config)
	if !ok {
		return memoKey{}, false
	}
	s := j.Spec
	return memoKey{
		cfgFP: fp,
		spec: fmt.Sprintf("%d/%d/%+v/%v/%v/%v/%d", s.Threads, s.TotalQueries,
			s.Mix, s.Zipfian, s.Latest, s.DisableCheckpoints, s.SampleInterval),
		// The snapshot mode and parallelism are part of the key so that
		// determinism tests comparing those settings — snapshots on vs
		// off, sequential vs parallel — always compute both sides for
		// real; the values themselves never affect a run's result.
		snapshots:   o.Snapshots,
		parallelism: o.Parallelism,
	}, true
}

type memoEntry struct {
	once sync.Once
	m    *checkin.Metrics
	tm   Timing
	err  error
}

var runMemo = struct {
	mu sync.Mutex
	m  map[memoKey]*memoEntry
}{m: make(map[memoKey]*memoEntry)}

// executeJob is the full acceleration stack for one job: memo lookup over
// the snapshot-forking executor. Only the goroutine that actually performs
// a memoized run receives the DB; sharers get the Metrics with a nil DB.
func executeJob(j Job, o Options) (*checkin.DB, *checkin.Metrics, Timing, error) {
	if !o.Memo {
		return executeSnap(j, o)
	}
	key, ok := memoKeyFor(j, o)
	if !ok {
		return executeSnap(j, o)
	}
	runMemo.mu.Lock()
	e := runMemo.m[key]
	if e == nil {
		if len(runMemo.m) >= maxMemo {
			runMemo.mu.Unlock()
			return executeSnap(j, o)
		}
		e = &memoEntry{}
		runMemo.m[key] = e
	}
	runMemo.mu.Unlock()
	var db *checkin.DB
	ran := false
	e.once.Do(func() {
		ran = true
		defer func() {
			if r := recover(); r != nil {
				db, e.m = nil, nil
				e.err = fmt.Errorf("runner: job %q panicked: %v", j.Name, r)
			}
		}()
		db, e.m, e.tm, e.err = executeSnap(j, o)
	})
	if !ran {
		// Sharers did no simulation: mark the timing so breakdowns can
		// distinguish a free cell from a genuinely fast one.
		return db, e.m, Timing{Memoized: true}, e.err
	}
	return db, e.m, e.tm, e.err
}

// ResetCaches drops the process-wide template and memo caches. Tests use it
// to measure cold-vs-warm behaviour; production sweeps never need it.
func ResetCaches() {
	templates.mu.Lock()
	templates.m = make(map[uint64]*templateEntry)
	templates.mu.Unlock()
	runMemo.mu.Lock()
	runMemo.m = make(map[memoKey]*memoEntry)
	runMemo.mu.Unlock()
}
