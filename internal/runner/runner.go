// Package runner executes independent simulation runs on a worker pool.
//
// Every experiment run in this repository is a pure function of its
// (Config, RunSpec) pair: Open builds a private sim.Engine, Load and Run
// consult nothing but that engine's virtual clock and the config's seeded
// RNG, and all package-level state reachable from a run (workload mixes,
// sizers, recorded traces) is read-only. Runs are therefore embarrassingly
// parallel — the scheduler below fans them out across worker goroutines and
// hands the results back in submission order, so callers that format
// results sequentially produce byte-identical output at any parallelism.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	checkin "github.com/checkin-kv/checkin"
)

// Job is one independent simulation run: open Config, bulk-load, run Spec.
type Job struct {
	// Name labels the job in results and error messages.
	Name string
	// Config is the full machine configuration for this run.
	Config checkin.Config
	// Spec is the measured workload phase to execute.
	Spec checkin.RunSpec
}

// Result is the outcome of one Job, in the same order jobs were submitted.
type Result struct {
	// Name echoes Job.Name.
	Name string
	// DB is the simulated system after the run, for post-run inspection
	// (recovery simulation, energy accounting). Nil when Err is set.
	DB *checkin.DB
	// Metrics holds the run's measurements. Nil when Err is set.
	Metrics *checkin.Metrics
	// Timing is the wall-clock breakdown of this job's phases.
	Timing Timing
	// Err reports an Open/Run failure, or a contained worker panic.
	Err error
}

// Timing is the wall-clock phase breakdown of one executed job. Wall-clock
// only — the simulated system keeps its own virtual clock, which timing
// collection never touches, so results stay byte-identical with or without
// observers.
type Timing struct {
	// Load is the time spent producing the post-load state: a full load
	// simulation on the direct path, or the template lookup + fork on the
	// snapshot path (the job that builds a template is charged its build).
	Load time.Duration
	// Run is the time spent executing the measured workload phase.
	Run time.Duration
	// Memoized marks a job that shared another job's memoized run; its
	// Load/Run are (near-)zero because no simulation happened.
	Memoized bool
}

// execute runs one job start to finish. It is a variable so tests can
// substitute failure modes that the public config surface cannot reach.
var execute = func(j Job) (*checkin.DB, *checkin.Metrics, Timing, error) {
	var tm Timing
	db, err := checkin.Open(j.Config)
	if err != nil {
		return nil, nil, tm, err
	}
	t0 := time.Now()
	db.Load()
	tm.Load = time.Since(t0)
	t0 = time.Now()
	m, err := db.Run(j.Spec)
	tm.Run = time.Since(t0)
	if err != nil {
		return nil, nil, tm, err
	}
	return db, m, tm, nil
}

// runJob executes one job with panic containment: a panicking simulation
// (e.g. an FTL invariant violation) fails its own result instead of tearing
// down the whole sweep.
func runJob(j Job, o Options) (res Result) {
	res.Name = j.Name
	defer func() {
		if r := recover(); r != nil {
			res.DB, res.Metrics = nil, nil
			res.Err = fmt.Errorf("runner: job %q panicked: %v", j.Name, r)
		}
	}()
	res.DB, res.Metrics, res.Timing, res.Err = executeJob(j, o)
	return res
}

// Run executes jobs on a pool of parallelism worker goroutines and returns
// one Result per job, in submission order. parallelism <= 0 selects
// runtime.NumCPU(); parallelism 1 runs strictly sequentially on the calling
// goroutine. Individual failures are reported per Result, never as a
// partial slice: len(results) == len(jobs) always.
//
// Run uses no acceleration (every job loads privately) — see RunWith for
// the snapshot-forking and memoizing variant.
func Run(jobs []Job, parallelism int) []Result {
	return RunWith(jobs, Options{Parallelism: parallelism})
}

// RunWith is Run with the acceleration layers described by o.
func RunWith(jobs []Job, o Options) []Result {
	parallelism := o.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	if parallelism > len(jobs) {
		parallelism = len(jobs)
	}
	results := make([]Result, len(jobs))
	if parallelism <= 1 {
		for i := range jobs {
			results[i] = runJob(jobs[i], o)
		}
		return results
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				results[i] = runJob(jobs[i], o)
			}
		}()
	}
	wg.Wait()
	return results
}

// RunAll is Run plus fail-fast error collection: it returns the results
// alongside the first (by submission order) job error, if any.
func RunAll(jobs []Job, parallelism int) ([]Result, error) {
	return RunAllWith(jobs, Options{Parallelism: parallelism})
}

// RunAllWith is RunWith plus fail-fast error collection.
func RunAllWith(jobs []Job, o Options) ([]Result, error) {
	results := RunWith(jobs, o)
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("runner: job %d (%s): %w", i, results[i].Name, results[i].Err)
		}
	}
	return results, nil
}
