package sim

import (
	"testing"
)

// TestSchedulingAllocs guards the kernel's steady-state allocation budget:
// once the event heap has grown to workload capacity, scheduling and
// dispatching events — both the closure form (At/Schedule) and the
// future-completion form (AtComplete) — must not allocate. The nand layer
// completes every flash operation through AtComplete, so a regression here
// taxes every simulated I/O.
func TestSchedulingAllocs(t *testing.T) {
	e := NewEngine()
	noop := func() {}
	for i := 0; i < 256; i++ {
		e.Schedule(VTime(i), noop)
	}
	e.Run()

	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			e.Schedule(VTime(i+1), noop)
		}
		e.Run()
	}); n != 0 {
		t.Fatalf("steady-state Schedule/dispatch allocates %.2f/op, want 0", n)
	}

	fut := NewFuture(e)
	_ = fut
	if n := testing.AllocsPerRun(100, func() {
		f := CompletedFuture(e)
		if !f.Done() {
			t.Fatal("shared completed future not done")
		}
	}); n != 0 {
		t.Fatalf("CompletedFuture allocates %.2f/op, want 0", n)
	}
}

// TestAtCompleteOrder locks in that AtComplete is observably identical to
// At(t, f.Complete): the future flips to done in strict (time, issue-order)
// sequence, and its waiters are deferred behind already-queued same-time
// events (Complete schedules them as fresh events) — the determinism
// contract every FTL latency measurement rests on.
func TestAtCompleteOrder(t *testing.T) {
	e := NewEngine()
	var log []int
	f1 := NewFuture(e)
	f1.OnComplete(func() { log = append(log, 2) })
	f2 := NewFuture(e)
	f2.OnComplete(func() { log = append(log, 3) })
	e.At(5, func() { log = append(log, 0) })
	e.AtComplete(5, f1)
	e.At(5, func() {
		if !f1.Done() {
			t.Error("f1 not done by the same-time event queued after it")
		}
		log = append(log, 1)
	})
	e.AtComplete(7, f2)
	e.Run()
	want := []int{0, 1, 2, 3}
	if len(log) != len(want) {
		t.Fatalf("got %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("got %v, want %v", log, want)
		}
	}
	if !f1.Done() || !f2.Done() {
		t.Fatal("AtComplete did not complete its futures")
	}
}
