// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives every timed component of the Check-In reproduction: the
// NAND flash array, the SSD controller, and the simulated storage-engine
// client threads. Simulated time is virtual (VTime, nanoseconds); nothing in
// the simulation path consults the wall clock, so a run is a pure function of
// its configuration and seed.
//
// Two styles of simulated activity are supported:
//
//   - Callback events: Engine.Schedule(delay, fn) runs fn at a future virtual
//     time. Cheap; used for I/O completions and timers.
//   - Processes: Engine.Go starts a cooperative process (Proc) that may Sleep
//     and Wait on Futures. Processes express closed-loop clients (a YCSB
//     thread issuing queries back-to-back) as straight-line code.
//
// Only one goroutine executes at a time: the engine and each process hand
// control to each other through a strict channel handshake, so execution
// order — and therefore every simulation result — is deterministic.
package sim

import (
	"fmt"
)

// VTime is a point in (or duration of) virtual time, in nanoseconds.
type VTime uint64

// Convenient virtual-time units.
const (
	Nanosecond  VTime = 1
	Microsecond VTime = 1000 * Nanosecond
	Millisecond VTime = 1000 * Microsecond
	Second      VTime = 1000 * Millisecond
)

// String renders a VTime using the most natural unit.
func (t VTime) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", uint64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t VTime) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t VTime) Micros() float64 { return float64(t) / float64(Microsecond) }

type event struct {
	at  VTime
	seq uint64 // tie-breaker: FIFO among same-time events
	fn  func()
	// fut, when non-nil, is completed instead of calling fn. Completing a
	// future is the single most common event in the simulator (every flash
	// operation ends in one), and carrying the future directly avoids
	// allocating a fut.Complete method-value closure per operation.
	fut *Future
}

// eventHeap is a 4-ary min-heap ordered by (at, seq). The heap is hand
// rolled rather than built on container/heap: the interface-based API boxes
// every event into an `any` on Push/Pop, which made the two calls the
// largest allocation sites in the whole simulator (~40% of objects on the
// paper's experiment suite). The fan-out of four halves the sift-down depth
// versus a binary heap — pop is the hottest kernel operation once event
// dispatch stops allocating — and since (at, seq) is a strict total order
// (seq is unique), the dispatch sequence is identical to any other heap
// arity: determinism does not depend on the internal shape.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	s := append(*h, e)
	*h = s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the fn reference for GC
	s = s[:n]
	*h = s
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		least := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if s.less(j, least) {
				least = j
			}
		}
		if !s.less(least, i) {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

func (h eventHeap) nextAt() (VTime, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// Engine is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; create one with NewEngine.
type Engine struct {
	now     VTime
	events  eventHeap
	seq     uint64
	stopped bool

	// nowq is the fast path for events scheduled at the current instant
	// (Schedule(0, ...): future-waiter wake-ups, semaphore grants — the
	// majority of all events). They bypass the heap entirely: entries are
	// appended in seq order and the clock cannot advance while any are
	// pending (the dispatcher always prefers the (at, seq)-least event,
	// and a pending now-event's at equals the clock), so a plain FIFO ring
	// preserves the exact (at, seq) total order the heap would produce.
	// nowq[nowqHead:] are the pending entries, oldest first; the backing
	// array rewinds when the queue drains, so steady state re-uses it.
	nowq     []event
	nowqHead int

	liveProcs int
	executed  uint64

	// extSync, when non-nil, is the registered external completion source: a
	// set of event domains (per-channel NAND timing queues) that compute
	// completion times outside the main loop and merge them back via
	// InjectCompletion. extHorizon is the conservative safe horizon — a lower
	// bound on the earliest instant any un-merged external completion can
	// land. The dispatcher never advances the clock to or past the horizon
	// without first syncing, so injected events are never in the past and the
	// dispatch order stays exactly the (at, seq) total order the sequential
	// kernel produces. ^VTime(0) means "nothing pending".
	extSync    func()
	extHorizon VTime

	// completed is the engine's shared already-done future. A completed
	// future is immutable (OnComplete on a done future only schedules, and
	// Complete on one always panics), so every fast path that finishes
	// synchronously can hand out the same instance instead of allocating.
	completed *Future
}

// maxVTime is the end of virtual time, used as the "no deadline" sentinel
// and as the idle external-sync horizon.
const maxVTime = ^VTime(0)

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{extHorizon: maxVTime}
}

// Now returns the current virtual time.
func (e *Engine) Now() VTime { return e.now }

// Executed returns the number of events processed so far (diagnostics).
func (e *Engine) Executed() uint64 { return e.executed }

// LiveProcs returns the number of processes that have started but not
// finished. After a run completes it should normally be zero; a non-zero
// value indicates a process blocked forever (e.g. on a Future that was never
// completed).
func (e *Engine) LiveProcs() int { return e.liveProcs }

// Schedule runs fn after delay units of virtual time.
func (e *Engine) Schedule(delay VTime, fn func()) {
	e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t. Scheduling in the past panics: it
// would silently reorder causality.
func (e *Engine) At(t VTime, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v, before now %v", t, e.now))
	}
	e.seq++
	if t == e.now {
		e.nowPush(event{at: t, seq: e.seq, fn: fn})
		return
	}
	e.events.push(event{at: t, seq: e.seq, fn: fn})
}

func (e *Engine) nowPush(ev event) {
	if e.nowqHead == len(e.nowq) {
		// queue is empty: rewind so the backing array is reused
		e.nowq = e.nowq[:0]
		e.nowqHead = 0
	}
	e.nowq = append(e.nowq, ev)
}

// AtComplete completes f at absolute virtual time t — At(t, f.Complete)
// without the per-call method-value allocation. It shares At's sequence
// numbering, so ordering against fn events at the same instant is exactly
// the submission order.
func (e *Engine) AtComplete(t VTime, f *Future) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling completion at %v, before now %v", t, e.now))
	}
	e.seq++
	if t == e.now {
		e.nowPush(event{at: t, seq: e.seq, fut: f})
		return
	}
	e.events.push(event{at: t, seq: e.seq, fut: f})
}

// ReserveSeq draws the next event sequence number without scheduling
// anything. An external event domain calls it at command submission so that
// the completion it later injects carries exactly the tie-break number the
// sequential kernel's AtComplete would have drawn at the same point in the
// submission order — the linchpin of byte-identical parallel output.
func (e *Engine) ReserveSeq() uint64 {
	e.seq++
	return e.seq
}

// InjectCompletion merges an externally computed completion into the event
// queue under a sequence number previously reserved with ReserveSeq. The
// event always goes through the heap, never the now-queue: its seq predates
// anything queued at the current instant, and the dispatcher's (at, seq)
// merge of heap head versus now-queue head already orders it correctly.
// Injecting into the past panics — it means the external source violated
// the safe-horizon contract (see LowerHorizon).
func (e *Engine) InjectCompletion(at VTime, seq uint64, f *Future) {
	if at < e.now {
		panic(fmt.Sprintf("sim: injecting completion at %v, before now %v", at, e.now))
	}
	e.events.push(event{at: at, seq: seq, fut: f})
}

// SetExternalSync registers fn as the external completion source's merge
// callback. When the dispatcher is about to advance the clock to or past the
// current safe horizon it invokes fn, which must compute and inject
// (InjectCompletion) every completion for commands submitted so far. Passing
// nil unregisters the source.
func (e *Engine) SetExternalSync(fn func()) {
	e.extSync = fn
	e.extHorizon = maxVTime
}

// LowerHorizon records that the external source may later inject a
// completion at time t or later. The source must call it at every command
// submission with a sound lower bound on that command's completion time
// (submission time plus the minimum service latency); the kernel guarantees
// the clock never reaches t before the source has been synced.
func (e *Engine) LowerHorizon(t VTime) {
	if t < e.extHorizon {
		e.extHorizon = t
	}
}

// SyncExternal forces the external source to merge every pending completion
// immediately and resets the safe horizon. Callers that read state the
// external source owns (busy horizons, backlog depths) must sync first; it
// is cheap when nothing is pending.
func (e *Engine) SyncExternal() {
	if e.extSync == nil {
		return
	}
	// Reset before the callback: injected completions need no new horizon
	// (they are real events now), and submissions cannot happen during sync.
	e.extHorizon = maxVTime
	e.extSync()
}

// Stop makes Run return after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.RunUntil(^VTime(0))
}

// RunUntil executes events with timestamps <= deadline, advancing the clock
// to the deadline if it runs out of events earlier. Events beyond the
// deadline stay queued.
func (e *Engine) RunUntil(deadline VTime) {
	e.stopped = false
	for !e.stopped {
		// Conservative sync: before advancing to (or past) the external
		// safe horizon, merge the external domains' completions into the
		// queue. The horizon is a lower bound on every un-merged
		// completion's timestamp, so any candidate event at or beyond it —
		// or an empty queue — might be preceded (or tied-and-preceded by
		// seq) by an external completion. extHorizon is ^VTime(0) when
		// nothing external is pending, which skips all of this.
		if e.extHorizon != maxVTime && e.extHorizon <= deadline {
			at := maxVTime
			if e.nowqHead < len(e.nowq) {
				// A pending now-event sits at the clock, which never
				// passes the horizon un-synced, so this candidate always
				// precedes the heap head's time.
				at = e.nowq[e.nowqHead].at
			} else if hat, ok := e.events.nextAt(); ok {
				at = hat
			}
			if at >= e.extHorizon {
				e.SyncExternal()
				continue
			}
		}
		// Select the (at, seq)-least pending event across the now-queue
		// and the heap — exactly the order a single heap would dispatch.
		// A pending now-event sits at the current clock, so a heap event
		// only precedes it via a smaller seq at the same instant (it was
		// scheduled earlier, from further in the past).
		var ev event
		if e.nowqHead < len(e.nowq) {
			nf := &e.nowq[e.nowqHead]
			if at, ok := e.events.nextAt(); ok && (at < nf.at || (at == nf.at && e.events[0].seq < nf.seq)) {
				if at > deadline {
					break
				}
				ev = e.events.pop()
			} else {
				if nf.at > deadline {
					break
				}
				ev = *nf
				*nf = event{} // release the fn reference for GC
				e.nowqHead++
			}
		} else {
			at, ok := e.events.nextAt()
			if !ok || at > deadline {
				break
			}
			ev = e.events.pop()
		}
		e.now = ev.at
		e.executed++
		if ev.fut != nil {
			ev.fut.Complete()
		} else {
			ev.fn()
		}
	}
	if deadline != maxVTime && e.now < deadline {
		// Never advance past the external safe horizon: a completion could
		// land exactly on it. Normal exits guarantee extHorizon > deadline
		// (the loop syncs first); this clamp only matters after Stop.
		adv := deadline
		if e.extHorizon < adv {
			adv = e.extHorizon
		}
		if e.now < adv {
			e.now = adv
		}
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) + len(e.nowq) - e.nowqHead }

// NextEventAt returns the timestamp of the earliest queued event, and
// whether one exists. Coordinators driving several engines in lockstep use
// it to fast-forward idle drain windows instead of stepping through empty
// quanta one deadline at a time.
func (e *Engine) NextEventAt() (VTime, bool) {
	if e.nowqHead < len(e.nowq) {
		return e.nowq[e.nowqHead].at, true
	}
	return e.events.nextAt()
}

// EngineState is the restorable kernel state: the virtual clock, the event
// sequence counter (same-time tie-break order) and the executed-event count.
// Queued events are deliberately NOT part of the state — closures cannot be
// copied — so State is only meaningful at a quiescent point where the queue
// holds nothing the caller cannot deterministically re-create (see
// Engine.Restore).
type EngineState struct {
	Now      VTime
	Seq      uint64
	Executed uint64
}

// State captures the kernel counters for a later Restore.
func (e *Engine) State() EngineState {
	return EngineState{Now: e.now, Seq: e.seq, Executed: e.executed}
}

// Restore rewinds (or fast-forwards) the engine to a previously captured
// state, discarding every queued event. The caller owns re-creating whatever
// periodic events belong at the restored instant; because the sequence
// counter is restored too, re-created events draw the same tie-break numbers
// they had on the original timeline, keeping same-time ordering identical.
// Restoring with live processes panics: their goroutine stacks reference the
// discarded timeline and cannot be rewound.
func (e *Engine) Restore(s EngineState) {
	if e.liveProcs != 0 {
		panic(fmt.Sprintf("sim: Restore with %d live processes", e.liveProcs))
	}
	for i := range e.events {
		e.events[i] = event{} // release fn closures for GC
	}
	e.events = e.events[:0]
	for i := range e.nowq {
		e.nowq[i] = event{}
	}
	e.nowq = e.nowq[:0]
	e.nowqHead = 0
	e.now = s.Now
	e.seq = s.Seq
	e.executed = s.Executed
	e.stopped = false
	// The external source discards its own un-merged commands on restore
	// (they belong to the abandoned timeline), so the horizon resets to idle.
	e.extHorizon = maxVTime
}

// A Proc is a cooperative simulated process. All its methods must be called
// from the process's own goroutine (inside the function passed to Engine.Go).
type Proc struct {
	eng  *Engine
	name string

	// hand is the single handshake channel both directions share. Strict
	// alternation (exactly one of {engine, process} runs at a time) keeps
	// the pairing unambiguous: whoever is handing control away sends, the
	// other side is always parked in a receive.
	hand chan struct{}

	// switchFn caches the switchTo method value so scheduling a wake-up
	// (Sleep, Wait, Semaphore.Acquire) does not allocate a new closure per
	// call — these are the hottest scheduling sites in the simulator.
	switchFn func()
}

// Name returns the name given at Go time (diagnostics).
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns current virtual time.
func (p *Proc) Now() VTime { return p.eng.now }

// Go starts a new process at the current virtual time. The process body runs
// when the engine reaches the scheduling event; it may call Sleep and Wait.
func (e *Engine) Go(name string, fn func(p *Proc)) {
	p := &Proc{eng: e, name: name, hand: make(chan struct{})}
	p.switchFn = p.switchTo
	e.liveProcs++
	e.Schedule(0, func() {
		go func() {
			<-p.hand
			fn(p)
			e.liveProcs--
			p.hand <- struct{}{}
		}()
		p.switchTo()
	})
}

// switchTo transfers control into the process and blocks the caller (which
// is executing an engine event) until the process blocks or terminates.
func (p *Proc) switchTo() {
	p.hand <- struct{}{}
	<-p.hand
}

// block parks the process until something calls switchTo on it. The wake-up
// must already be scheduled before calling block.
func (p *Proc) block() {
	p.hand <- struct{}{}
	<-p.hand
}

// Sleep suspends the process for d units of virtual time.
func (p *Proc) Sleep(d VTime) {
	p.eng.Schedule(d, p.switchFn)
	p.block()
}

// Wait suspends the process until f completes. Returns immediately if f is
// already complete.
func (p *Proc) Wait(f *Future) {
	if f.done {
		return
	}
	f.addWaiter(p.switchFn)
	p.block()
}

// WaitAll waits for every future in fs.
func (p *Proc) WaitAll(fs []*Future) {
	for _, f := range fs {
		p.Wait(f)
	}
}

// A Future is a one-shot completion signal carrying no value. It is
// completed at most once, from engine context (an event or a process).
type Future struct {
	eng  *Engine
	done bool
	// w0 holds the first waiter inline: the overwhelming majority of
	// futures have exactly one waiter, and keeping it out of the slice
	// avoids a heap allocation per wait.
	w0      func()
	waiters []func()
}

// addWaiter registers fn preserving FIFO wake-up order.
func (f *Future) addWaiter(fn func()) {
	if f.w0 == nil {
		f.w0 = fn
		return
	}
	f.waiters = append(f.waiters, fn)
}

// NewFuture returns an incomplete future bound to e.
func NewFuture(e *Engine) *Future { return &Future{eng: e} }

// CompletedFuture returns an already-complete future (for fast paths that
// finish synchronously). The instance is shared per engine: done futures
// never mutate, so callers may wait on it, poll it, and register callbacks
// freely — but must not call Complete on it (as on any done future).
func CompletedFuture(e *Engine) *Future {
	if e.completed == nil {
		e.completed = &Future{eng: e, done: true}
	}
	return e.completed
}

// Done reports whether the future has completed.
func (f *Future) Done() bool { return f.done }

// Complete marks the future done and schedules all waiters at the current
// virtual time. Completing twice panics.
func (f *Future) Complete() {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	if f.w0 != nil {
		f.eng.Schedule(0, f.w0)
		f.w0 = nil
	}
	for _, w := range f.waiters {
		f.eng.Schedule(0, w)
	}
	f.waiters = nil
}

// OnComplete registers fn to run when the future completes (immediately, at
// the current time, if it already has).
func (f *Future) OnComplete(fn func()) {
	if f.done {
		f.eng.Schedule(0, fn)
		return
	}
	f.addWaiter(fn)
}

// AfterAll returns a future that completes once all fs have completed.
// With no inputs the result is already complete; with exactly one it is
// returned directly (no wrapper future or callback needed).
func AfterAll(e *Engine, fs []*Future) *Future {
	n := len(fs)
	if n == 0 {
		return CompletedFuture(e)
	}
	if n == 1 {
		return fs[0]
	}
	out := NewFuture(e)
	remaining := n
	dec := func() {
		remaining--
		if remaining == 0 {
			out.Complete()
		}
	}
	for _, f := range fs {
		f.OnComplete(dec)
	}
	return out
}

// A Semaphore is a counting semaphore for simulated processes, used to model
// bounded resources such as command-queue depth.
type Semaphore struct {
	eng   *Engine
	avail int
	// waiters[head:] are the queued acquirers, oldest first. Dequeuing
	// advances head instead of re-slicing from the front, so the backing
	// array is reused once the queue drains rather than reallocated on
	// every wait/wake cycle.
	waiters []func()
	head    int
}

// NewSemaphore returns a semaphore with n initially available permits.
func NewSemaphore(e *Engine, n int) *Semaphore {
	if n < 0 {
		panic("sim: negative semaphore capacity")
	}
	return &Semaphore{eng: e, avail: n}
}

// Available reports the number of free permits.
func (s *Semaphore) Available() int { return s.avail }

// Waiting reports the number of blocked acquirers.
func (s *Semaphore) Waiting() int { return len(s.waiters) - s.head }

// Acquire takes a permit, blocking the process until one is free. FIFO.
func (s *Semaphore) Acquire(p *Proc) {
	if s.avail > 0 && s.Waiting() == 0 {
		s.avail--
		return
	}
	s.enqueue(p.switchFn)
	p.block()
}

// TryAcquire takes a permit without blocking; reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.avail > 0 && s.Waiting() == 0 {
		s.avail--
		return true
	}
	return false
}

// AcquireAsync invokes fn (from engine context) once a permit is granted.
func (s *Semaphore) AcquireAsync(fn func()) {
	if s.avail > 0 && s.Waiting() == 0 {
		s.avail--
		s.eng.Schedule(0, fn)
		return
	}
	s.enqueue(fn)
}

func (s *Semaphore) enqueue(fn func()) {
	if s.head == len(s.waiters) {
		// queue is empty: rewind so the backing array is reused
		s.waiters = s.waiters[:0]
		s.head = 0
	}
	s.waiters = append(s.waiters, fn)
}

// Release returns a permit, waking the oldest waiter if any.
func (s *Semaphore) Release() {
	if s.head < len(s.waiters) {
		w := s.waiters[s.head]
		s.waiters[s.head] = nil // release the closure for GC
		s.head++
		s.eng.Schedule(0, w)
		return
	}
	s.avail++
}

// A Mutex is a binary semaphore with process-friendly Lock/Unlock naming.
// It models long-held simulated locks (e.g. the checkpoint lock that stalls
// query admission while a checkpoint runs in locked mode).
type Mutex struct{ s *Semaphore }

// NewMutex returns an unlocked simulated mutex.
func NewMutex(e *Engine) *Mutex { return &Mutex{s: NewSemaphore(e, 1)} }

// Lock blocks the process until the mutex is held.
func (m *Mutex) Lock(p *Proc) { m.s.Acquire(p) }

// TryLock acquires without blocking; reports success.
func (m *Mutex) TryLock() bool { return m.s.TryAcquire() }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.s.Release() }

// A FIFOResource models a serially reusable resource (a flash channel bus, a
// die, a DMA engine) with first-come-first-served queueing. Reservations are
// pure arithmetic over a busy-until horizon: a request arriving at time t is
// serviced in [max(t, busyUntil), max(t, busyUntil)+dur].
type FIFOResource struct {
	busyUntil VTime
	busyTotal VTime // accumulated busy time, for utilization reporting
}

// Reserve books dur time on the resource starting no earlier than now.
// It returns the service start and end times; the caller schedules its own
// completion event at end.
func (r *FIFOResource) Reserve(now VTime, dur VTime) (start, end VTime) {
	start = now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end = start + dur
	r.busyUntil = end
	r.busyTotal += dur
	return start, end
}

// BusyUntil returns the time the resource frees up.
func (r *FIFOResource) BusyUntil() VTime { return r.busyUntil }

// BusyTotal returns the cumulative busy time booked on the resource.
func (r *FIFOResource) BusyTotal() VTime { return r.busyTotal }

// IdleAt reports whether the resource is idle at time t.
func (r *FIFOResource) IdleAt(t VTime) bool { return r.busyUntil <= t }
