package sim

import (
	"testing"
	"testing/quick"
)

func TestVTimeString(t *testing.T) {
	cases := []struct {
		in   VTime
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("VTime(%d).String() = %q, want %q", uint64(c.in), got, c.want)
		}
	}
}

func TestVTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (5 * Microsecond).Micros(); got != 5.0 {
		t.Errorf("Micros() = %v, want 5", got)
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %v, want 30", e.Now())
	}
	if e.Executed() != 3 {
		t.Errorf("Executed() = %d, want 3", e.Executed())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := make(map[VTime]bool)
	for _, at := range []VTime{10, 20, 30, 40} {
		at := at
		e.At(at, func() { ran[at] = true })
	}
	e.RunUntil(25)
	if !ran[10] || !ran[20] || ran[30] || ran[40] {
		t.Fatalf("RunUntil(25) ran wrong set: %v", ran)
	}
	if e.Now() != 25 {
		t.Errorf("Now() = %v, want 25 (clock advanced to deadline)", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if !ran[30] || !ran[40] {
		t.Error("resumed Run did not execute remaining events")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(VTime(i+1), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("Stop did not halt the run: executed %d events", count)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []VTime
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("nested scheduling produced %v, want [10 15]", times)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	var marks []VTime
	e.Go("sleeper", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Sleep(100)
		marks = append(marks, p.Now())
		p.Sleep(50)
		marks = append(marks, p.Now())
	})
	e.Run()
	want := []VTime{0, 100, 150}
	if len(marks) != len(want) {
		t.Fatalf("marks = %v, want %v", marks, want)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
	if e.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d after run, want 0", e.LiveProcs())
	}
}

func TestProcsInterleave(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10)
		trace = append(trace, "a10")
		p.Sleep(20)
		trace = append(trace, "a30")
	})
	e.Go("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15)
		trace = append(trace, "b15")
	})
	e.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestFutureWait(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e)
	var wokeAt VTime
	e.Go("waiter", func(p *Proc) {
		p.Wait(f)
		wokeAt = p.Now()
	})
	e.Schedule(500, f.Complete)
	e.Run()
	if wokeAt != 500 {
		t.Errorf("waiter woke at %v, want 500", wokeAt)
	}
	if !f.Done() {
		t.Error("future not done after Complete")
	}
}

func TestFutureAlreadyDone(t *testing.T) {
	e := NewEngine()
	f := CompletedFuture(e)
	woke := false
	e.Go("waiter", func(p *Proc) {
		p.Wait(f) // must not block
		woke = true
	})
	e.Run()
	if !woke {
		t.Error("Wait on completed future blocked forever")
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e)
	f.Complete()
	defer func() {
		if recover() == nil {
			t.Error("double Complete did not panic")
		}
	}()
	f.Complete()
}

func TestFutureOnComplete(t *testing.T) {
	e := NewEngine()
	f := NewFuture(e)
	var at VTime = ^VTime(0)
	f.OnComplete(func() { at = e.Now() })
	e.Schedule(77, f.Complete)
	e.Run()
	if at != 77 {
		t.Errorf("OnComplete ran at %v, want 77", at)
	}
	// Registering after completion fires at current time.
	fired := false
	f.OnComplete(func() { fired = true })
	e.Run()
	if !fired {
		t.Error("OnComplete after completion never fired")
	}
}

func TestAfterAll(t *testing.T) {
	e := NewEngine()
	fs := []*Future{NewFuture(e), NewFuture(e), NewFuture(e)}
	all := AfterAll(e, fs)
	var doneAt VTime
	all.OnComplete(func() { doneAt = e.Now() })
	e.Schedule(10, fs[0].Complete)
	e.Schedule(30, fs[2].Complete)
	e.Schedule(20, fs[1].Complete)
	e.Run()
	if doneAt != 30 {
		t.Errorf("AfterAll completed at %v, want 30 (latest input)", doneAt)
	}
	if empty := AfterAll(e, nil); !empty.Done() {
		t.Error("AfterAll of zero futures should be immediately done")
	}
}

func TestWaitAll(t *testing.T) {
	e := NewEngine()
	fs := []*Future{NewFuture(e), NewFuture(e)}
	var wokeAt VTime
	e.Go("w", func(p *Proc) {
		p.WaitAll(fs)
		wokeAt = p.Now()
	})
	e.Schedule(40, fs[1].Complete)
	e.Schedule(25, fs[0].Complete)
	e.Run()
	if wokeAt != 40 {
		t.Errorf("WaitAll woke at %v, want 40", wokeAt)
	}
}

func TestSemaphoreBlocking(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, 2)
	var trace []string
	worker := func(name string, hold VTime) func(p *Proc) {
		return func(p *Proc) {
			s.Acquire(p)
			trace = append(trace, name+"+")
			p.Sleep(hold)
			trace = append(trace, name+"-")
			s.Release()
		}
	}
	e.Go("a", worker("a", 100))
	e.Go("b", worker("b", 150))
	e.Go("c", worker("c", 10)) // must wait for a or b
	e.Run()
	// c cannot start before the first release at t=100.
	want := []string{"a+", "b+", "a-", "c+", "c-", "b-"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, 1)
	if !s.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if s.TryAcquire() {
		t.Fatal("second TryAcquire succeeded on empty semaphore")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
	if s.Available() != 0 {
		t.Errorf("Available = %d, want 0", s.Available())
	}
}

func TestSemaphoreAcquireAsync(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(e, 1)
	s.TryAcquire()
	granted := VTime(0)
	s.AcquireAsync(func() { granted = e.Now() })
	if s.Waiting() != 1 {
		t.Fatalf("Waiting = %d, want 1", s.Waiting())
	}
	e.Schedule(60, s.Release)
	e.Run()
	if granted != 60 {
		t.Errorf("async grant at %v, want 60", granted)
	}
}

func TestNegativeSemaphorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSemaphore(-1) did not panic")
		}
	}()
	NewSemaphore(NewEngine(), -1)
}

func TestMutex(t *testing.T) {
	e := NewEngine()
	m := NewMutex(e)
	var held []VTime
	e.Go("x", func(p *Proc) {
		m.Lock(p)
		held = append(held, p.Now())
		p.Sleep(100)
		m.Unlock()
	})
	e.Go("y", func(p *Proc) {
		m.Lock(p)
		held = append(held, p.Now())
		m.Unlock()
	})
	e.Run()
	if len(held) != 2 || held[0] != 0 || held[1] != 100 {
		t.Fatalf("lock hand-off times = %v, want [0 100]", held)
	}
	if !m.TryLock() {
		t.Error("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Error("TryLock on held mutex succeeded")
	}
}

func TestFIFOResource(t *testing.T) {
	var r FIFOResource
	s1, e1 := r.Reserve(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first Reserve = [%v,%v], want [0,100]", s1, e1)
	}
	// Arrives while busy: queued behind.
	s2, e2 := r.Reserve(50, 30)
	if s2 != 100 || e2 != 130 {
		t.Fatalf("queued Reserve = [%v,%v], want [100,130]", s2, e2)
	}
	// Arrives after idle: starts immediately.
	s3, e3 := r.Reserve(500, 10)
	if s3 != 500 || e3 != 510 {
		t.Fatalf("idle Reserve = [%v,%v], want [500,510]", s3, e3)
	}
	if r.BusyTotal() != 140 {
		t.Errorf("BusyTotal = %v, want 140", r.BusyTotal())
	}
	if !r.IdleAt(600) || r.IdleAt(505) {
		t.Error("IdleAt wrong")
	}
}

func TestFIFOResourceNeverOverlaps(t *testing.T) {
	// Property: service intervals from a FIFOResource never overlap and
	// are ordered by reservation order.
	check := func(arrivals []uint32, durs []uint16) bool {
		var r FIFOResource
		now := VTime(0)
		prevEnd := VTime(0)
		for i := range arrivals {
			now += VTime(arrivals[i] % 1000)
			d := VTime(durs[i%len(durs)]%500) + 1
			s, e := r.Reserve(now, d)
			if s < now || s < prevEnd || e != s+d {
				return false
			}
			prevEnd = e
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(a []uint32, d []uint16) bool {
		if len(a) == 0 || len(d) == 0 {
			return true
		}
		return check(a, d)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []VTime {
		e := NewEngine()
		rng := NewRNG(42)
		var out []VTime
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 3 {
				return
			}
			e.Schedule(VTime(rng.Intn(1000)), func() {
				out = append(out, e.Now())
				spawn(depth + 1)
			})
		}
		for i := 0; i < 5; i++ {
			spawn(0)
		}
		e.Go("p", func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Sleep(VTime(rng.Intn(100) + 1))
				out = append(out, p.Now())
			}
		})
		e.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic run lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(7)
	a := g.Split("nand")
	b := g.Split("workload")
	c := g.Split("nand") // same name → same stream
	av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
	if av == bv {
		t.Error("differently named splits produced identical first draws")
	}
	if av != cv {
		t.Error("same-named splits diverged")
	}
}

func TestRNGSplitSelfCollision(t *testing.T) {
	// Even if the name hash XORs to the parent seed, the child must differ.
	g := NewRNG(0)
	child := g.Split("") // fnv of empty is a constant; just exercise the path
	if child.Seed() == g.Seed() {
		t.Error("child seed equals parent seed")
	}
}

func TestRNGBasicRanges(t *testing.T) {
	g := NewRNG(123)
	for i := 0; i < 1000; i++ {
		if v := g.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := g.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		if v := g.Int63n(5); v < 0 || v >= 5 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
	p := g.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if seen[v] {
			t.Fatal("Perm repeated a value")
		}
		seen[v] = true
	}
}

func TestProcWaitCompletedFutureKeepsTime(t *testing.T) {
	e := NewEngine()
	var at VTime
	f := NewFuture(e)
	e.Schedule(10, f.Complete)
	e.Go("p", func(p *Proc) {
		p.Sleep(50) // future completes at 10, before we wait
		p.Wait(f)   // must not block or move time
		at = p.Now()
	})
	e.Run()
	if at != 50 {
		t.Errorf("Wait on done future moved time to %v, want 50", at)
	}
}

func TestEngineStateRestore(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.Schedule(10, func() { fired = append(fired, 1) })
	e.Schedule(20, func() { fired = append(fired, 2) })
	e.Run()
	st := e.State()
	if st.Now != 20 || st.Executed != 2 {
		t.Fatalf("State() = %+v, want Now=20 Executed=2", st)
	}

	// Move the engine forward, then restore: the queued event must be
	// dropped and clock/seq/executed must rewind exactly.
	e.Schedule(5, func() { fired = append(fired, 3) })
	e.Run()
	e.Schedule(100, func() { t.Error("queued event survived Restore") })
	e.Restore(st)
	if e.Now() != 20 || e.Executed() != 2 || e.Pending() != 0 {
		t.Fatalf("after Restore: now=%v executed=%d pending=%d", e.Now(), e.Executed(), e.Pending())
	}

	// The restored engine must schedule and run normally from the restored
	// clock.
	e.Schedule(10, func() { fired = append(fired, 4) })
	e.Run()
	if e.Now() != 30 {
		t.Errorf("post-restore Now() = %v, want 30", e.Now())
	}
	if len(fired) != 4 || fired[3] != 4 {
		t.Errorf("fired = %v, want [1 2 3 4]", fired)
	}
}

func TestEngineRestoreSeqContinuity(t *testing.T) {
	// Two engines: one runs straight through, the other detours and is
	// restored. Same-time events scheduled after the restore must interleave
	// identically — i.e. Restore rewinds the sequence counter too.
	run := func(detour bool) []int {
		e := NewEngine()
		e.Schedule(10, func() {})
		e.Run()
		st := e.State()
		if detour {
			e.Schedule(1, func() {})
			e.Schedule(2, func() {})
			e.Run()
			e.Restore(st)
		}
		var order []int
		for i := 0; i < 4; i++ {
			i := i
			e.Schedule(5, func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a, b := run(false), run(true)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("orders %v / %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-time ordering diverged after Restore: %v vs %v", a, b)
		}
	}
}

func TestEngineRestoreLiveProcPanics(t *testing.T) {
	e := NewEngine()
	st := e.State()
	e.Go("stuck", func(p *Proc) {
		p.Sleep(1000)
	})
	e.RunUntil(10)
	defer func() {
		if recover() == nil {
			t.Error("Restore with a live process did not panic")
		}
	}()
	e.Restore(st)
}
