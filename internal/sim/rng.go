package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a deterministic random source with named splitting: each component
// of the simulation derives its own independent stream from the run seed and
// a stable name, so adding a consumer never perturbs the draws seen by
// existing ones.
type RNG struct {
	seed int64
	r    *rand.Rand
}

// NewRNG returns a stream seeded from seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream named name.
func (g *RNG) Split(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	child := g.seed ^ int64(h.Sum64())
	// Avoid the degenerate all-zero state and keep children distinct from
	// the parent even when the name hash collides with zero.
	if child == g.seed {
		child = g.seed + 0x7f4a7c15_9e3779b9
	}
	return NewRNG(child)
}

// Seed returns the stream's seed (diagnostics / reproduction reports).
func (g *RNG) Seed() int64 { return g.seed }

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform integer in [0, n).
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
