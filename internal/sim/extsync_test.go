package sim

import (
	"testing"
)

// fakeDomain models an external completion source: commands are queued at
// submission with a reserved seq and a precomputed completion time, and
// merged back only when the kernel asks for a sync.
type fakeDomain struct {
	eng   *Engine
	cmds  []fakeCmd
	syncs int
}

type fakeCmd struct {
	at  VTime
	seq uint64
	fut *Future
}

func newFakeDomain(e *Engine) *fakeDomain {
	d := &fakeDomain{eng: e}
	e.SetExternalSync(d.sync)
	return d
}

// submit queues a completion at absolute time at and lowers the horizon to
// the (sound) bound lo.
func (d *fakeDomain) submit(at, lo VTime) *Future {
	f := NewFuture(d.eng)
	d.cmds = append(d.cmds, fakeCmd{at: at, seq: d.eng.ReserveSeq(), fut: f})
	d.eng.LowerHorizon(lo)
	return f
}

func (d *fakeDomain) sync() {
	d.syncs++
	for _, c := range d.cmds {
		d.eng.InjectCompletion(c.at, c.seq, c.fut)
	}
	d.cmds = d.cmds[:0]
}

// TestExternalSyncMergeOrder checks that an injected completion dispatches
// in exactly the (at, seq) slot the sequential AtComplete would have used:
// submitted before a same-time callback event, the two paths must observe
// the identical interleaving (the waiter hop through Schedule(0) included).
func TestExternalSyncMergeOrder(t *testing.T) {
	run := func(external bool) ([]string, VTime) {
		e := NewEngine()
		var d *fakeDomain
		if external {
			d = newFakeDomain(e)
		}
		var order []string
		var f *Future
		if external {
			f = d.submit(100, 50) // seq drawn now, before the At below
		} else {
			f = NewFuture(e)
			e.AtComplete(100, f)
		}
		f.OnComplete(func() { order = append(order, "external") })
		e.At(100, func() { order = append(order, "internal") })
		e.Run()
		if external && d.syncs == 0 {
			t.Fatalf("external source was never synced")
		}
		return order, e.Now()
	}
	seq, seqNow := run(false)
	ext, extNow := run(true)
	if len(seq) != 2 || len(ext) != 2 || seq[0] != ext[0] || seq[1] != ext[1] {
		t.Fatalf("dispatch order diverges: sequential %v, external %v", seq, ext)
	}
	if seqNow != extNow || extNow != 100 {
		t.Fatalf("clocks diverge: sequential %v, external %v, want 100", seqNow, extNow)
	}
}

// TestExternalSyncHorizonGate checks events strictly before the horizon run
// without forcing a sync, and the sync fires before the clock reaches it.
func TestExternalSyncHorizonGate(t *testing.T) {
	e := NewEngine()
	d := newFakeDomain(e)

	f := d.submit(1000, 500)
	var doneAt VTime
	f.OnComplete(func() { doneAt = e.Now() })

	syncsAt100 := -1
	e.At(100, func() { syncsAt100 = d.syncs })

	e.Run()
	if syncsAt100 != 0 {
		t.Fatalf("sync ran before an event below the horizon (syncs=%d)", syncsAt100)
	}
	if doneAt != 1000 {
		t.Fatalf("external completion at %v, want 1000", doneAt)
	}
}

// TestExternalSyncRunUntilDeadline checks the deadline interplay: a horizon
// beyond the deadline leaves the source un-synced and the clock parks at the
// deadline; a later RunUntil past the horizon merges and dispatches.
func TestExternalSyncRunUntilDeadline(t *testing.T) {
	e := NewEngine()
	d := newFakeDomain(e)

	f := d.submit(1000, 800)
	var doneAt VTime
	f.OnComplete(func() { doneAt = e.Now() })

	e.RunUntil(700)
	if e.Now() != 700 {
		t.Fatalf("clock = %v, want 700", e.Now())
	}
	if d.syncs != 0 {
		t.Fatalf("source synced %d times before its horizon", d.syncs)
	}
	if f.Done() {
		t.Fatalf("future completed before its time")
	}

	e.RunUntil(2000)
	if !f.Done() || doneAt != 1000 {
		t.Fatalf("future done=%v at %v, want done at 1000", f.Done(), doneAt)
	}
	if e.Now() != 2000 {
		t.Fatalf("clock = %v, want 2000", e.Now())
	}
}

// TestExternalSyncSameInstantInjection exercises injecting a completion at
// the current clock: a zero-lookahead submission at the current instant must
// dispatch in exactly the slot the sequential AtComplete would use relative
// to now-queue events scheduled right after it.
func TestExternalSyncSameInstantInjection(t *testing.T) {
	run := func(external bool) []string {
		e := NewEngine()
		var d *fakeDomain
		if external {
			d = newFakeDomain(e)
		}
		var order []string
		e.At(200, func() {
			var f *Future
			if external {
				f = d.submit(200, 200)
			} else {
				f = NewFuture(e)
				e.AtComplete(200, f)
			}
			f.OnComplete(func() { order = append(order, "external") })
			e.Schedule(0, func() { order = append(order, "nowq") })
		})
		e.Run()
		return order
	}
	seq, ext := run(false), run(true)
	if len(seq) != 2 || len(ext) != 2 || seq[0] != ext[0] || seq[1] != ext[1] {
		t.Fatalf("dispatch order diverges: sequential %v, external %v", seq, ext)
	}
}

// TestExternalSyncIdenticalToSequential replays a mixed workload through
// (a) plain AtComplete and (b) the reserve/inject path, and requires the
// dispatch order be identical event for event.
func TestExternalSyncIdenticalToSequential(t *testing.T) {
	type step struct {
		at   VTime // submission time
		dur  VTime // completion delay
		name string
	}
	steps := []step{
		{0, 300, "a"}, {0, 100, "b"}, {50, 50, "c"}, {50, 250, "d"},
		{100, 0, "e"}, {100, 200, "f"}, {120, 180, "g"},
	}

	run := func(external bool) []string {
		e := NewEngine()
		var d *fakeDomain
		if external {
			d = newFakeDomain(e)
		}
		var order []string
		for _, s := range steps {
			s := s
			e.At(s.at, func() {
				var f *Future
				if external {
					f = d.submit(e.Now()+s.dur, e.Now()+s.dur)
				} else {
					f = NewFuture(e)
					e.AtComplete(e.Now()+s.dur, f)
				}
				f.OnComplete(func() {
					order = append(order, s.name)
				})
			})
		}
		e.Run()
		return order
	}

	seq := run(false)
	ext := run(true)
	if len(seq) != len(steps) {
		t.Fatalf("sequential run completed %d of %d", len(seq), len(steps))
	}
	for i := range seq {
		if seq[i] != ext[i] {
			t.Fatalf("dispatch order diverges at %d: sequential %v, external %v", i, seq, ext)
		}
	}
}

// TestExternalSyncRestoreResetsHorizon checks that Restore drops the
// horizon back to idle so an abandoned timeline's pending commands cannot
// force syncs on the restored one.
func TestExternalSyncRestoreResetsHorizon(t *testing.T) {
	e := NewEngine()
	d := newFakeDomain(e)

	st := e.State()
	d.submit(1000, 500)
	// Simulate the source discarding on restore, as the contract requires.
	d.cmds = d.cmds[:0]
	e.Restore(st)

	ran := false
	e.At(600, func() { ran = true }) // beyond the stale horizon
	e.Run()
	if !ran {
		t.Fatalf("event beyond a stale horizon did not run")
	}
	if d.syncs != 0 {
		t.Fatalf("restored engine synced a discarded source %d times", d.syncs)
	}
}

// TestInjectCompletionPastPanics locks in the safe-horizon invariant check.
func TestInjectCompletionPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatalf("InjectCompletion in the past did not panic")
		}
	}()
	e.InjectCompletion(50, 1, NewFuture(e))
}
