package workload

import (
	"strings"
	"testing"

	"github.com/checkin-kv/checkin/internal/sim"
)

func TestExtendedMixesValid(t *testing.T) {
	for _, m := range []Mix{WorkloadB, WorkloadC, WorkloadD} {
		if err := m.Validate(); err != nil {
			t.Errorf("mix %+v invalid: %v", m, err)
		}
	}
	if WorkloadC.ReadPct != 100 {
		t.Error("workload C must be read-only")
	}
}

func TestLatestSkewsTowardRecent(t *testing.T) {
	rng := sim.NewRNG(5)
	l := NewLatest(10_000, 100)
	// Make keys 0..9 the most recent writes (9 written last).
	for k := int64(0); k < 10; k++ {
		l.Note(k)
	}
	hits := 0
	const draws = 20_000
	for i := 0; i < draws; i++ {
		k := l.Next(rng)
		if k < 0 || k >= 10_000 {
			t.Fatalf("key %d out of range", k)
		}
		if k < 10 {
			hits++
		}
	}
	// The 10 most recent keys should absorb a large share of draws.
	if frac := float64(hits) / draws; frac < 0.4 {
		t.Errorf("recent-10 share = %.3f, latest distribution not skewed", frac)
	}
	if l.Name() != "latest" {
		t.Error("name wrong")
	}
}

func TestLatestWindowClamping(t *testing.T) {
	l := NewLatest(5, 100) // window larger than key space
	rng := sim.NewRNG(1)
	for i := 0; i < 1000; i++ {
		if k := l.Next(rng); k < 0 || k >= 5 {
			t.Fatalf("key %d out of range", k)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewLatest(0, ...) did not panic")
		}
	}()
	NewLatest(0, 10)
}

func TestLatestNoteEvicts(t *testing.T) {
	l := NewLatest(1000, 4)
	for k := int64(0); k < 8; k++ {
		l.Note(k)
	}
	// Window of 4: only keys 4..7 remain.
	for _, k := range l.recent {
		if k < 4 || k > 7 {
			t.Fatalf("stale key %d in recency window %v", k, l.recent)
		}
	}
	if l.recent[0] != 7 {
		t.Errorf("newest key = %d, want 7", l.recent[0])
	}
}

func TestTraceRecordReplay(t *testing.T) {
	rng := sim.NewRNG(9)
	g, err := NewGenerator(Uniform{Keys: 50}, FixedSizer{Size: 256}, WorkloadA, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr := RecordTrace(g, 500)
	if len(tr.Ops) != 500 {
		t.Fatalf("trace has %d ops", len(tr.Ops))
	}
	// Two replays produce identical streams.
	a, b := NewReplayer(tr), NewReplayer(tr)
	for i := 0; i < 500; i++ {
		if a.Next() != b.Next() {
			t.Fatal("replays diverged")
		}
	}
	if a.Remaining() != 0 {
		t.Errorf("Remaining = %d after full replay", a.Remaining())
	}
	// Exhausted non-looping replayer repeats the last op.
	last := tr.Ops[len(tr.Ops)-1]
	if a.Next() != last {
		t.Error("exhausted replayer did not pin to last op")
	}
	// Looping replayer wraps to the first op.
	c := NewReplayer(tr)
	c.Loop = true
	for i := 0; i < 500; i++ {
		c.Next()
	}
	if c.Next() != tr.Ops[0] {
		t.Error("looping replayer did not wrap")
	}
}

func TestTraceStats(t *testing.T) {
	tr := &Trace{Ops: []Op{
		{Kind: OpRead, Key: 1, Size: 100},
		{Kind: OpUpdate, Key: 2, Size: 200},
		{Kind: OpReadModifyWrite, Key: 3, Size: 300},
		{Kind: OpInsert, Key: 4, Size: 400},
	}}
	s := tr.Stats()
	for _, want := range []string{"4 ops", "1 reads", "1 updates", "1 rmws", "1 inserts", "900 write bytes"} {
		if !strings.Contains(s, want) {
			t.Errorf("stats %q missing %q", s, want)
		}
	}
}

func TestEmptyTracePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewReplayer on empty trace did not panic")
		}
	}()
	NewReplayer(&Trace{})
}
