package workload

import (
	"fmt"
	"math"

	"github.com/checkin-kv/checkin/internal/sim"
)

// Additional YCSB mixes beyond the paper's three. The paper evaluates on
// the write-heavy A/F/WO set; these complete the standard suite so
// downstream users can study read-heavy regimes too.
var (
	// WorkloadB is YCSB-B: 95 % reads, 5 % updates.
	WorkloadB = Mix{ReadPct: 95, UpdatePct: 5}
	// WorkloadC is YCSB-C: read-only.
	WorkloadC = Mix{ReadPct: 100}
	// WorkloadD is YCSB-D's mix: 95 % reads, 5 % inserts modeled as
	// updates of recently touched keys (pair with NewLatest).
	WorkloadD = Mix{ReadPct: 95, UpdatePct: 5}
	// WorkloadE is YCSB-E: 95 % short range scans, 5 % updates.
	WorkloadE = Mix{ScanPct: 95, UpdatePct: 5, ScanLen: 50}
)

// Latest is YCSB's "latest" distribution: requests skew toward the most
// recently updated keys. It wraps a Zipfian over recency ranks — rank 0 is
// the newest key. Callers feed updates back via Note so the recency order
// tracks the workload.
type Latest struct {
	zipf   *Zipfian
	recent []int64 // ring of recently written keys, newest first
	size   int
	keys   int64
}

// NewLatest builds a latest distribution over n keys remembering the last
// window updates (window <= 0 selects a default of 1024).
func NewLatest(n int64, window int) *Latest {
	if n < 1 {
		panic("workload: latest distribution over empty key space")
	}
	if window <= 0 {
		window = 1024
	}
	if int64(window) > n {
		window = int(n)
	}
	l := &Latest{
		zipf: NewZipfian(int64(window), DefaultTheta),
		size: window,
		keys: n,
	}
	// Seed recency with the tail of the key space so early draws are valid.
	for i := 0; i < window; i++ {
		l.recent = append(l.recent, n-1-int64(i))
	}
	return l
}

// Note records that key was just written (it becomes the most recent).
func (l *Latest) Note(key int64) {
	l.recent = append([]int64{key}, l.recent[:l.size-1]...)
}

// Next draws a key skewed toward recent writes.
func (l *Latest) Next(rng *sim.RNG) int64 {
	rank := l.zipf.rank(rng)
	if rank >= int64(len(l.recent)) {
		rank = int64(len(l.recent)) - 1
	}
	return l.recent[rank]
}

// Name returns "latest".
func (l *Latest) Name() string { return "latest" }

// rank exposes the un-scrambled Zipfian rank (0 = hottest) for recency use.
func (z *Zipfian) rank(rng *sim.RNG) int64 {
	u := rng.Float64()
	uz := u * z.zetaN
	var r int64
	switch {
	case uz < 1:
		r = 0
	case uz < 1+math.Pow(0.5, z.theta):
		r = 1
	default:
		r = int64(float64(z.keys) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if r >= z.keys {
		r = z.keys - 1
	}
	return r
}

// Trace is a recorded operation stream: generate once, replay against any
// configuration for strictly identical inputs across systems under test.
type Trace struct {
	Ops []Op
}

// RecordTrace captures n operations from a generator.
func RecordTrace(g *Generator, n int) *Trace {
	t := &Trace{Ops: make([]Op, n)}
	for i := range t.Ops {
		t.Ops[i] = g.Next()
	}
	return t
}

// Replayer walks a trace, optionally looping.
type Replayer struct {
	trace *Trace
	pos   int
	Loop  bool
}

// NewReplayer starts a replay at the beginning of the trace.
func NewReplayer(t *Trace) *Replayer {
	if len(t.Ops) == 0 {
		panic("workload: empty trace")
	}
	return &Replayer{trace: t}
}

// Next returns the next recorded operation. When the trace is exhausted it
// either wraps (Loop) or keeps returning the final operation.
func (r *Replayer) Next() Op {
	if r.pos >= len(r.trace.Ops) {
		if r.Loop {
			r.pos = 0
		} else {
			return r.trace.Ops[len(r.trace.Ops)-1]
		}
	}
	op := r.trace.Ops[r.pos]
	r.pos++
	return op
}

// Remaining reports how many unread operations remain (0 when exhausted
// and not looping).
func (r *Replayer) Remaining() int {
	if r.pos >= len(r.trace.Ops) {
		return 0
	}
	return len(r.trace.Ops) - r.pos
}

// Stats summarizes a trace's composition.
func (t *Trace) Stats() string {
	var reads, updates, rmws, inserts int
	var bytes int64
	for _, op := range t.Ops {
		switch op.Kind {
		case OpRead:
			reads++
		case OpUpdate:
			updates++
		case OpReadModifyWrite:
			rmws++
		case OpInsert:
			inserts++
		}
		if op.Kind != OpRead {
			bytes += int64(op.Size)
		}
	}
	return fmt.Sprintf("%d ops (%d reads, %d updates, %d rmws, %d inserts), %d write bytes",
		len(t.Ops), reads, updates, rmws, inserts, bytes)
}
