package workload

import (
	"testing"

	"github.com/checkin-kv/checkin/internal/sim"
)

// FuzzZipfian drives the scrambled-Zipfian generator over fuzzer-chosen
// key-space sizes, skews and seeds, asserting the distribution invariants:
// every drawn key lies in [0, n) and the stream is a pure function of the
// seed (two generators over the same inputs agree draw for draw).
func FuzzZipfian(f *testing.F) {
	f.Add(int64(1), 0.99, int64(1))
	f.Add(int64(50_000), 0.99, int64(7))
	f.Add(int64(3), 0.5, int64(-12345))
	f.Fuzz(func(t *testing.T, n int64, theta float64, seed int64) {
		if n < 1 {
			n = 1 - n%1_000_000 // fold negatives into a valid key space
		}
		if n > 1_000_000 {
			n = n % 1_000_000
			if n < 1 {
				n = 1
			}
		}
		if !(theta > 0 && theta < 1) {
			t.Skip("theta outside the generator's domain")
		}
		z := NewZipfian(n, theta)
		z2 := NewZipfian(n, theta)
		rng, rng2 := sim.NewRNG(seed), sim.NewRNG(seed)
		for i := 0; i < 200; i++ {
			k := z.Next(rng)
			if k < 0 || k >= n {
				t.Fatalf("draw %d: key %d out of [0, %d)", i, k, n)
			}
			if k2 := z2.Next(rng2); k2 != k {
				t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, k, k2)
			}
		}
	})
}

// FuzzLatest drives the latest distribution: arbitrary interleavings of
// Note (recording writes of fuzzer-chosen keys) and Next must only ever
// return in-range keys, from the freshly noted set or the seeded tail.
func FuzzLatest(f *testing.F) {
	f.Add(int64(10), 4, int64(1), []byte{0, 1, 2, 3})
	f.Add(int64(50_000), 1024, int64(9), []byte{255, 0, 128})
	f.Add(int64(1), 0, int64(3), []byte{})
	f.Fuzz(func(t *testing.T, n int64, window int, seed int64, script []byte) {
		if n < 1 {
			n = 1 - n%1_000_000
		}
		if n > 1_000_000 {
			n = n%1_000_000 + 1
		}
		if window < 0 || int64(window) > 1<<20 {
			window = 0 // constructor default
		}
		l := NewLatest(n, window)
		rng := sim.NewRNG(seed)
		// script bytes alternate between noting a write (odd) and drawing
		// (even), so recency churn and draws interleave arbitrarily.
		for i, b := range script {
			if b%2 == 1 {
				l.Note(int64(b) % n)
				continue
			}
			k := l.Next(rng)
			if k < 0 || k >= n {
				t.Fatalf("step %d: key %d out of [0, %d)", i, k, n)
			}
		}
		for i := 0; i < 100; i++ {
			if k := l.Next(rng); k < 0 || k >= n {
				t.Fatalf("draw %d: key %d out of [0, %d)", i, k, n)
			}
		}
	})
}

// FuzzArrival drives the open-loop arrival generator over fuzzer-chosen
// rates, diurnal shapes, tenant splits and flash crowds, asserting the
// stream invariants: strictly increasing arrival times, tenants in range,
// keys inside the owning tenant's namespace, positive sizes, clients inside
// the modeled population, and seed-determinism (two generators over the
// same inputs agree arrival for arrival).
func FuzzArrival(f *testing.F) {
	f.Add(int64(1), 100_000.0, 0.0, int64(0), 10, 1, int64(1000), false)
	f.Add(int64(7), 250_000.0, 0.6, int64(2_000_000), 3, 2, int64(500), true)
	f.Add(int64(-9), 1_000.0, 0.9, int64(500_000_000), 1, 5, int64(64), true)
	f.Fuzz(func(t *testing.T, seed int64, rate, amp float64, periodNS int64,
		w1, w2 int, keys int64, crowd bool) {
		if !(rate >= 1 && rate <= 1e7) {
			t.Skip("rate outside the sane envelope")
		}
		if !(amp >= 0 && amp < 1) {
			t.Skip("amplitude outside [0, 1)")
		}
		if w1 < 1 {
			w1 = 1 - w1%1000
		}
		if w2 < 1 {
			w2 = 1 - w2%1000
		}
		if keys < 1 {
			keys = 1 - keys%100_000
		}
		if keys > 100_000 {
			keys = keys%100_000 + 1
		}
		cfg := ArrivalConfig{
			Process:    "poisson",
			RatePerSec: rate,
			Clients:    1 << 20,
			Tenants: []TenantSpec{
				{Name: "a", Weight: w1, Keys: keys, Mix: WorkloadA, Zipfian: true},
				{Name: "b", Weight: w2, Keys: keys * 2, Mix: WorkloadWO},
			},
		}
		if periodNS > 0 {
			cfg.Process = "diurnal"
			cfg.DiurnalAmp = amp
			cfg.DiurnalPeriod = sim.VTime(periodNS)
		}
		if crowd {
			cfg.Flash = &FlashCrowd{At: sim.Millisecond, Duration: 10 * sim.Millisecond,
				RateMult: 5, Tenant: 1, HotKeys: (keys + 1) / 2, HotFrac: 0.75}
		}
		g, err := NewOpenLoop(cfg, seed)
		if err != nil {
			t.Fatalf("NewOpenLoop rejected a valid config: %v", err)
		}
		g2, err := NewOpenLoop(cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		var last sim.VTime
		for i := 0; i < 300; i++ {
			a := g.Next()
			if b := g2.Next(); a != b {
				t.Fatalf("arrival %d: same seed diverged (%+v vs %+v)", i, a, b)
			}
			if a.At <= last {
				t.Fatalf("arrival %d: time %v not after %v", i, a.At, last)
			}
			last = a.At
			if a.Tenant < 0 || int(a.Tenant) >= len(cfg.Tenants) {
				t.Fatalf("arrival %d: tenant %d out of range", i, a.Tenant)
			}
			base := g.bases[a.Tenant]
			if a.Op.Key < base || a.Op.Key >= base+cfg.Tenants[a.Tenant].Keys {
				t.Fatalf("arrival %d: key %d outside tenant %d namespace", i, a.Op.Key, a.Tenant)
			}
			if a.Op.Size <= 0 {
				t.Fatalf("arrival %d: size %d not positive", i, a.Op.Size)
			}
			if a.Client < 0 || a.Client >= 1<<20 {
				t.Fatalf("arrival %d: client %d outside population", i, a.Client)
			}
		}
	})
}

// FuzzMixValidate checks the mix validator and the generator built on top
// of it agree: a mix Validate accepts must be non-negative and sum to
// exactly 100, and every operation generated under it must carry a valid
// kind for its percentages and a positive scan length on scans.
func FuzzMixValidate(f *testing.F) {
	f.Add(50, 50, 0, 0, 0, 0, int64(1))
	f.Add(25, 60, 10, 0, 5, 0, int64(2))
	f.Add(95, 0, 0, 5, 0, -3, int64(3))
	f.Add(0, 0, 0, 100, 0, 7, int64(4))
	f.Fuzz(func(t *testing.T, read, update, rmw, scan, del, scanLen int, seed int64) {
		m := Mix{ReadPct: read, UpdatePct: update, RMWPct: rmw, ScanPct: scan,
			DeletePct: del, ScanLen: scanLen}
		err := m.Validate()
		sum := read + update + rmw + scan + del
		valid := read >= 0 && update >= 0 && rmw >= 0 && scan >= 0 && del >= 0 && sum == 100
		if (err == nil) != valid {
			t.Fatalf("Validate() = %v for mix %+v (non-negative=%v sum=%d)", err, m, valid, sum)
		}
		if err != nil {
			return
		}
		const keys = 100
		gen, err := NewGenerator(Uniform{Keys: keys}, FixedSizer{Size: 128}, m, sim.NewRNG(seed))
		if err != nil {
			t.Fatalf("NewGenerator rejected a valid mix: %v", err)
		}
		for i := 0; i < 300; i++ {
			op := gen.Next()
			if op.Key < 0 || op.Key >= keys {
				t.Fatalf("op %d: key %d out of range", i, op.Key)
			}
			switch op.Kind {
			case OpRead:
				if read == 0 {
					t.Fatalf("op %d: read generated with ReadPct 0", i)
				}
			case OpUpdate:
				if update == 0 {
					t.Fatalf("op %d: update generated with UpdatePct 0", i)
				}
			case OpReadModifyWrite:
				if rmw == 0 {
					t.Fatalf("op %d: RMW generated with RMWPct 0", i)
				}
			case OpScan:
				if scan == 0 {
					t.Fatalf("op %d: scan generated with ScanPct 0", i)
				}
				if op.ScanLen <= 0 {
					t.Fatalf("op %d: scan length %d not positive", i, op.ScanLen)
				}
			case OpDelete:
				if del == 0 {
					t.Fatalf("op %d: delete generated with DeletePct 0", i)
				}
			default:
				t.Fatalf("op %d: unknown kind %v", i, op.Kind)
			}
		}
	})
}
