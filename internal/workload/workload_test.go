package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/checkin-kv/checkin/internal/sim"
)

func TestOpKindString(t *testing.T) {
	want := map[OpKind]string{
		OpRead: "read", OpUpdate: "update", OpInsert: "insert", OpReadModifyWrite: "rmw",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("OpKind(%d) = %q, want %q", k, k.String(), s)
		}
	}
	if OpKind(42).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestUniformCoversKeySpace(t *testing.T) {
	rng := sim.NewRNG(1)
	u := Uniform{Keys: 100}
	seen := make(map[int64]int)
	for i := 0; i < 100000; i++ {
		k := u.Next(rng)
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k]++
	}
	if len(seen) != 100 {
		t.Errorf("uniform hit %d/100 keys", len(seen))
	}
	// Roughly flat: every key within 3x of expectation.
	for k, n := range seen {
		if n < 1000/3 || n > 3000 {
			t.Errorf("key %d drawn %d times (expected ~1000)", k, n)
		}
	}
	if u.Name() != "uniform" {
		t.Error("name wrong")
	}
}

func TestZipfianSkew(t *testing.T) {
	rng := sim.NewRNG(2)
	z := NewZipfian(10000, DefaultTheta)
	counts := make(map[int64]int)
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Next(rng)
		if k < 0 || k >= 10000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Sort key frequencies descending; the hot tail must dominate.
	freqs := make([]int, 0, len(counts))
	for _, n := range counts {
		freqs = append(freqs, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top10 := 0
	for i := 0; i < 10 && i < len(freqs); i++ {
		top10 += freqs[i]
	}
	share := float64(top10) / draws
	// With θ=0.99 over 10k keys the top 10 keys carry roughly 25-45 %.
	if share < 0.15 {
		t.Errorf("top-10 key share = %.3f, distribution not skewed", share)
	}
	// But the tail must still be reachable.
	if len(counts) < 2000 {
		t.Errorf("only %d distinct keys drawn; scrambling broken?", len(counts))
	}
	if z.Name() != "zipfian" {
		t.Error("name wrong")
	}
}

func TestZipfianDeterminism(t *testing.T) {
	z := NewZipfian(1000, DefaultTheta)
	a := sim.NewRNG(7)
	b := sim.NewRNG(7)
	for i := 0; i < 1000; i++ {
		if z.Next(a) != z.Next(b) {
			t.Fatal("zipfian not deterministic for equal seeds")
		}
	}
}

func TestZipfianPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipfian(0, DefaultTheta) },
		func() { NewZipfian(10, 0) },
		func() { NewZipfian(10, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid zipfian accepted")
				}
			}()
			fn()
		}()
	}
}

func TestZetaMatchesDirectSum(t *testing.T) {
	got := zeta(4, 1.0-1e-12) // θ→1: harmonic-ish
	want := 1 + 0.5 + 1.0/3 + 0.25
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("zeta(4) = %v, want %v", got, want)
	}
}

func TestFixedSizer(t *testing.T) {
	s := FixedSizer{Size: 512}
	if s.SizeOf(0) != 512 || s.SizeOf(99999) != 512 {
		t.Error("fixed sizer varies")
	}
	if s.Name() != "fixed-512B" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestMixSizerStableAndWeighted(t *testing.T) {
	m := NewMixSizer("test", []int{128, 4096}, []int{3, 1})
	counts := map[int]int{}
	for k := int64(0); k < 40000; k++ {
		sz := m.SizeOf(k)
		if sz != m.SizeOf(k) {
			t.Fatal("size not stable for a key")
		}
		counts[sz]++
	}
	frac128 := float64(counts[128]) / 40000
	if frac128 < 0.70 || frac128 > 0.80 {
		t.Errorf("128B fraction = %.3f, want ~0.75", frac128)
	}
	if m.Name() != "test" {
		t.Error("name wrong")
	}
}

func TestMixSizerPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewMixSizer("x", nil, nil) },
		func() { NewMixSizer("x", []int{128}, []int{1, 2}) },
		func() { NewMixSizer("x", []int{128}, []int{0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad mix accepted")
				}
			}()
			fn()
		}()
	}
}

func TestPatterns(t *testing.T) {
	for _, p := range []*MixSizer{PatternP1, PatternP2, PatternP3, PatternP4} {
		for k := int64(0); k < 1000; k++ {
			sz := p.SizeOf(k)
			if sz < 128 || sz > 4096 {
				t.Errorf("%s produced size %d outside [128,4096]", p.Name(), sz)
			}
		}
	}
	// P2 skews small, P3 skews large.
	var sum2, sum3 int
	for k := int64(0); k < 10000; k++ {
		sum2 += PatternP2.SizeOf(k)
		sum3 += PatternP3.SizeOf(k)
	}
	if sum2 >= sum3 {
		t.Error("P2 (small mix) mean size not below P3 (large mix)")
	}
}

func TestMixValidate(t *testing.T) {
	for _, m := range []Mix{WorkloadA, WorkloadF, WorkloadWO} {
		if err := m.Validate(); err != nil {
			t.Errorf("paper mix %+v rejected: %v", m, err)
		}
	}
	bad := []Mix{
		{ReadPct: 50, UpdatePct: 40},
		{ReadPct: -10, UpdatePct: 110},
		{ReadPct: 120, UpdatePct: -20},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("mix %+v accepted", m)
		}
	}
}

func TestMixName(t *testing.T) {
	if MixName(WorkloadA) != "A" || MixName(WorkloadF) != "F" || MixName(WorkloadWO) != "WO" {
		t.Error("paper mix names wrong")
	}
	if MixName(Mix{ReadPct: 10, UpdatePct: 90}) != "r10/u90/rmw0" {
		t.Errorf("custom mix name = %q", MixName(Mix{ReadPct: 10, UpdatePct: 90}))
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	rng := sim.NewRNG(3)
	g, err := NewGenerator(Uniform{Keys: 1000}, FixedSizer{Size: 512}, WorkloadA, rng)
	if err != nil {
		t.Fatal(err)
	}
	var reads, updates int
	for i := 0; i < 100000; i++ {
		op := g.Next()
		switch op.Kind {
		case OpRead:
			reads++
		case OpUpdate:
			updates++
		default:
			t.Fatalf("workload A produced %v", op.Kind)
		}
		if op.Size != 512 {
			t.Fatal("size not applied")
		}
	}
	rf := float64(reads) / 100000
	if rf < 0.48 || rf > 0.52 {
		t.Errorf("read fraction = %.3f, want ~0.5", rf)
	}
}

func TestGeneratorWorkloadF(t *testing.T) {
	rng := sim.NewRNG(4)
	g, _ := NewGenerator(Uniform{Keys: 100}, FixedSizer{Size: 256}, WorkloadF, rng)
	var rmw int
	for i := 0; i < 10000; i++ {
		if op := g.Next(); op.Kind == OpReadModifyWrite {
			rmw++
		} else if op.Kind != OpRead {
			t.Fatalf("workload F produced %v", op.Kind)
		}
	}
	if rmw < 4700 || rmw > 5300 {
		t.Errorf("rmw count = %d, want ~5000", rmw)
	}
}

func TestGeneratorRejectsBadMix(t *testing.T) {
	if _, err := NewGenerator(Uniform{Keys: 10}, FixedSizer{Size: 1}, Mix{ReadPct: 10}, sim.NewRNG(0)); err == nil {
		t.Error("bad mix accepted by NewGenerator")
	}
}

func TestLoadOps(t *testing.T) {
	ops := LoadOps(10, FixedSizer{Size: 777})
	if len(ops) != 10 {
		t.Fatalf("LoadOps returned %d ops", len(ops))
	}
	for i, op := range ops {
		if op.Kind != OpInsert || op.Key != int64(i) || op.Size != 777 {
			t.Fatalf("LoadOps[%d] = %+v", i, op)
		}
	}
}

func TestScrambleNonNegativeProperty(t *testing.T) {
	err := quick.Check(func(v int64) bool {
		s := scramble(v)
		return s >= 0
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Error(err)
	}
}
