package workload

import (
	"testing"

	"github.com/checkin-kv/checkin/internal/sim"
)

func poissonCfg(rate float64, tenants ...TenantSpec) ArrivalConfig {
	if len(tenants) == 0 {
		tenants = []TenantSpec{{Name: "t0", Weight: 1, Keys: 10_000, Mix: WorkloadA, Zipfian: true}}
	}
	return ArrivalConfig{Process: "poisson", RatePerSec: rate, Tenants: tenants}
}

// TestOpenLoopDeterminism: equal (config, seed) pairs generate identical
// streams; different seeds diverge.
func TestOpenLoopDeterminism(t *testing.T) {
	cfg := poissonCfg(200_000,
		TenantSpec{Name: "a", Weight: 3, Keys: 5_000, Mix: WorkloadA, Zipfian: true},
		TenantSpec{Name: "b", Weight: 1, Keys: 2_000, Mix: WorkloadWO},
	)
	cfg.Flash = &FlashCrowd{At: 5 * sim.Millisecond, Duration: 5 * sim.Millisecond,
		RateMult: 3, Tenant: 1, HotKeys: 16, HotFrac: 0.8}
	g1, err := NewOpenLoop(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewOpenLoop(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := NewOpenLoop(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for i := 0; i < 10_000; i++ {
		a, b, c := g1.Next(), g2.Next(), g3.Next()
		if a != b {
			t.Fatalf("arrival %d: same seed diverged: %+v vs %+v", i, a, b)
		}
		if a != c {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 produced identical 10k-arrival streams")
	}
}

// TestOpenLoopPoissonRate: the empirical arrival rate of the constant-rate
// process lands within 5 % of the configured rate.
func TestOpenLoopPoissonRate(t *testing.T) {
	const rate = 100_000.0
	g, err := NewOpenLoop(poissonCfg(rate), 1)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 2 * sim.Second
	n := 0
	var last sim.VTime
	for {
		a := g.Next()
		if a.At <= last {
			t.Fatalf("arrival times not strictly increasing: %v after %v", a.At, last)
		}
		last = a.At
		if a.At >= horizon {
			break
		}
		n++
	}
	want := rate * horizon.Seconds()
	if f := float64(n) / want; f < 0.95 || f > 1.05 {
		t.Fatalf("empirical rate %.0f/s vs configured %.0f/s (ratio %.3f)", float64(n)/horizon.Seconds(), rate, f)
	}
}

// TestOpenLoopDiurnalShape: the sinusoidal half-period above the mean must
// carry visibly more arrivals than the half-period below it.
func TestOpenLoopDiurnalShape(t *testing.T) {
	cfg := poissonCfg(100_000)
	cfg.Process = "diurnal"
	cfg.DiurnalAmp = 0.8
	cfg.DiurnalPeriod = sim.Second
	g, err := NewOpenLoop(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	var peak, trough int
	for {
		a := g.Next()
		if a.At >= sim.Second {
			break
		}
		if a.At < sim.Second/2 {
			peak++ // sin positive: above-mean rate
		} else {
			trough++
		}
	}
	if ratio := float64(peak) / float64(trough); ratio < 1.5 {
		t.Fatalf("diurnal modulation too weak: peak/trough = %d/%d = %.2f", peak, trough, ratio)
	}
}

// TestOpenLoopFlashCrowd: during the crowd window the arrival rate
// multiplies and the configured fraction of traffic concentrates on the hot
// set; outside the window traffic looks like the base process.
func TestOpenLoopFlashCrowd(t *testing.T) {
	cfg := poissonCfg(100_000,
		TenantSpec{Name: "a", Weight: 1, Keys: 10_000, Mix: WorkloadA, Zipfian: true},
		TenantSpec{Name: "b", Weight: 1, Keys: 10_000, Mix: WorkloadA},
	)
	f := &FlashCrowd{At: 200 * sim.Millisecond, Duration: 200 * sim.Millisecond,
		RateMult: 4, Tenant: 1, HotKeys: 32, HotFrac: 0.9}
	cfg.Flash = f
	g, err := NewOpenLoop(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	base := g.bases[f.Tenant]
	var before, in, inHot int
	for {
		a := g.Next()
		if a.At >= f.At+f.Duration {
			break
		}
		if a.At < f.At {
			before++
			continue
		}
		in++
		if a.Tenant == int32(f.Tenant) && a.Op.Key >= base && a.Op.Key < base+f.HotKeys {
			inHot++
		}
	}
	// Same-length windows: the crowd window must offer ~RateMult times the
	// arrivals of the quiet window.
	if mult := float64(in) / float64(before); mult < 3.2 || mult > 4.8 {
		t.Fatalf("flash-crowd rate multiplier %.2f, want ~4 (before=%d in=%d)", mult, before, in)
	}
	if frac := float64(inHot) / float64(in); frac < 0.85 || frac > 0.95 {
		t.Fatalf("hot-set share %.3f during the crowd, want ~0.9", frac)
	}
}

// TestOpenLoopNamespaces: every arrival's key falls inside its tenant's
// namespace, every tenant gets traffic proportional to its weight, and
// client ids stay within the modeled population.
func TestOpenLoopNamespaces(t *testing.T) {
	cfg := poissonCfg(100_000,
		TenantSpec{Name: "a", Weight: 6, Keys: 1_000, Mix: WorkloadA, Zipfian: true},
		TenantSpec{Name: "b", Weight: 3, Keys: 2_000, Mix: WorkloadF},
		TenantSpec{Name: "c", Weight: 1, Keys: 500, Mix: WorkloadWO},
	)
	cfg.Clients = 1000
	g, err := NewOpenLoop(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	const n = 30_000
	for i := 0; i < n; i++ {
		a := g.Next()
		if a.Tenant < 0 || int(a.Tenant) >= 3 {
			t.Fatalf("tenant %d out of range", a.Tenant)
		}
		base := g.bases[a.Tenant]
		if a.Op.Key < base || a.Op.Key >= base+cfg.Tenants[a.Tenant].Keys {
			t.Fatalf("key %d outside tenant %d namespace [%d, %d)", a.Op.Key, a.Tenant,
				base, base+cfg.Tenants[a.Tenant].Keys)
		}
		if a.Client < 0 || a.Client >= cfg.Clients {
			t.Fatalf("client %d outside population %d", a.Client, cfg.Clients)
		}
		counts[a.Tenant]++
	}
	for i, want := range []float64{0.6, 0.3, 0.1} {
		if got := float64(counts[i]) / n; got < want-0.03 || got > want+0.03 {
			t.Fatalf("tenant %d share %.3f, want ~%.1f", i, got, want)
		}
	}
}

// TestArrivalConfigValidate exercises the rejection paths.
func TestArrivalConfigValidate(t *testing.T) {
	bad := []ArrivalConfig{
		{Process: "bursty", RatePerSec: 1, Tenants: poissonCfg(1).Tenants},
		{Process: "poisson", RatePerSec: 0, Tenants: poissonCfg(1).Tenants},
		{Process: "poisson", RatePerSec: 1},
		{Process: "diurnal", RatePerSec: 1, DiurnalAmp: 0.5, Tenants: poissonCfg(1).Tenants},
		{Process: "poisson", RatePerSec: 1, DiurnalAmp: 1.5, Tenants: poissonCfg(1).Tenants},
		{Process: "poisson", RatePerSec: 1, Tenants: []TenantSpec{{Weight: 0, Keys: 1, Mix: WorkloadA}}},
		{Process: "poisson", RatePerSec: 1, Tenants: []TenantSpec{{Weight: 1, Keys: 0, Mix: WorkloadA}}},
		{Process: "poisson", RatePerSec: 1, Tenants: []TenantSpec{{Weight: 1, Keys: 1, Mix: Mix{ReadPct: 7}}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d validated but should not have: %+v", i, c)
		}
	}
	c := poissonCfg(1000)
	c.Flash = &FlashCrowd{At: 0, Duration: sim.Second, RateMult: 0.5, HotKeys: 1, HotFrac: 0.5}
	if err := c.Validate(); err == nil {
		t.Error("sub-unity flash-crowd multiplier validated")
	}
	c.Flash.RateMult = 2
	c.Flash.HotKeys = 1 << 40
	if err := c.Validate(); err == nil {
		t.Error("hot set larger than the tenant namespace validated")
	}
}
