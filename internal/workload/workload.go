// Package workload generates YCSB-compatible key-value workloads: uniform
// and Zipfian request distributions, the paper's workload mixes (A, F and
// write-only), and the record-size patterns used by the sector-aligned-
// journaling sensitivity study (random mixes of 128–4096-byte records).
//
// Generation is fully deterministic given a seed; the same configuration
// always produces the same operation stream.
package workload

import (
	"fmt"
	"hash/fnv"
	"math"

	"github.com/checkin-kv/checkin/internal/sim"
)

// OpKind is the type of a key-value operation.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpReadModifyWrite
	OpScan
	OpDelete
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpReadModifyWrite:
		return "rmw"
	case OpScan:
		return "scan"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  int64
	Size int // value size in bytes (reads carry the record's size too)
	// ScanLen is the record count of a scan (OpScan only).
	ScanLen int
}

// Distribution selects keys.
type Distribution interface {
	// Next returns a key in [0, Keys).
	Next(rng *sim.RNG) int64
	// Name returns the distribution's display name.
	Name() string
}

// Uniform chooses keys uniformly.
type Uniform struct{ Keys int64 }

// Next returns a uniformly distributed key.
func (u Uniform) Next(rng *sim.RNG) int64 { return rng.Int63n(u.Keys) }

// Name returns "uniform".
func (u Uniform) Name() string { return "uniform" }

// Zipfian chooses keys with the YCSB scrambled-Zipfian distribution
// (Gray et al. generator, default θ = 0.99), so a small set of keys absorbs
// most of the traffic — the access pattern that makes checkpoints cheap to
// deduplicate but journals full of stale versions.
type Zipfian struct {
	keys  int64
	theta float64

	zetaN, zeta2 float64
	alpha, eta   float64
}

// DefaultTheta is YCSB's default skew parameter.
const DefaultTheta = 0.99

// NewZipfian precomputes the generator constants for n keys.
func NewZipfian(n int64, theta float64) *Zipfian {
	if n < 1 {
		panic("workload: zipfian over empty key space")
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: zipfian theta %v out of (0,1)", theta))
	}
	z := &Zipfian{keys: n, theta: theta}
	z.zetaN = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetaN)
	return z
}

func zeta(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns a scrambled Zipfian key.
func (z *Zipfian) Next(rng *sim.RNG) int64 {
	u := rng.Float64()
	uz := u * z.zetaN
	var rank int64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = int64(float64(z.keys) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.keys {
		rank = z.keys - 1
	}
	return scramble(rank) % z.keys
}

// Name returns "zipfian".
func (z *Zipfian) Name() string { return "zipfian" }

// scramble spreads the hottest ranks across the key space, as YCSB does, so
// hot keys are not physically adjacent.
func scramble(v int64) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	return int64(h.Sum64() & (1<<62 - 1))
}

// Sizer assigns a value size to each key. A key's size is stable across
// updates (records do not change shape in the paper's workloads).
type Sizer interface {
	SizeOf(key int64) int
	Name() string
}

// FixedSizer gives every record the same size.
type FixedSizer struct{ Size int }

// SizeOf returns the fixed size.
func (s FixedSizer) SizeOf(int64) int { return s.Size }

// Name describes the sizer.
func (s FixedSizer) Name() string { return fmt.Sprintf("fixed-%dB", s.Size) }

// MixSizer draws each key's size from a weighted set of sizes, keyed by a
// hash of the key so the assignment is stable.
type MixSizer struct {
	label   string
	sizes   []int
	weights []int
	total   int
}

// NewMixSizer builds a sizer from parallel size/weight slices.
func NewMixSizer(label string, sizes, weights []int) *MixSizer {
	if len(sizes) == 0 || len(sizes) != len(weights) {
		panic("workload: bad size mix")
	}
	m := &MixSizer{label: label, sizes: sizes, weights: weights}
	for _, w := range weights {
		if w <= 0 {
			panic("workload: non-positive weight")
		}
		m.total += w
	}
	return m
}

// SizeOf returns the stable size for key.
func (m *MixSizer) SizeOf(key int64) int {
	r := int(uint64(scramble(key^0x5ca1ab1e)) % uint64(m.total))
	for i, w := range m.weights {
		if r < w {
			return m.sizes[i]
		}
		r -= w
	}
	return m.sizes[len(m.sizes)-1]
}

// Name returns the mix label.
func (m *MixSizer) Name() string { return m.label }

// The four record-size patterns of the paper's Figure 13(b): random mixes
// of record sizes from 128 to 4096 bytes with different emphases.
var (
	PatternP1 = NewMixSizer("P1-even", []int{128, 256, 512, 1024, 2048, 4096}, []int{1, 1, 1, 1, 1, 1})
	PatternP2 = NewMixSizer("P2-small", []int{128, 256, 384, 512, 1024}, []int{4, 4, 3, 2, 1})
	PatternP3 = NewMixSizer("P3-large", []int{512, 1024, 2048, 4096}, []int{1, 2, 3, 4})
	PatternP4 = NewMixSizer("P4-bimodal", []int{128, 4096}, []int{3, 2})
)

// Mix gives the proportion of each operation kind, in percent.
type Mix struct {
	ReadPct   int
	UpdatePct int
	RMWPct    int
	ScanPct   int
	DeletePct int
	// ScanLen is the record count per scan (default 50 when ScanPct > 0,
	// YCSB-E's average).
	ScanLen int
}

// Validate checks the mix sums to 100.
func (m Mix) Validate() error {
	if m.ReadPct < 0 || m.UpdatePct < 0 || m.RMWPct < 0 || m.ScanPct < 0 || m.DeletePct < 0 ||
		m.ReadPct+m.UpdatePct+m.RMWPct+m.ScanPct+m.DeletePct != 100 {
		return fmt.Errorf("workload: mix %+v must be non-negative and sum to 100", m)
	}
	return nil
}

// The paper's workload mixes.
var (
	// WorkloadA is YCSB-A: 50 % reads, 50 % updates.
	WorkloadA = Mix{ReadPct: 50, UpdatePct: 50}
	// WorkloadF is YCSB-F: 50 % reads, 50 % read-modify-writes.
	WorkloadF = Mix{ReadPct: 50, RMWPct: 50}
	// WorkloadWO is the paper's write-only workload: 100 % updates.
	WorkloadWO = Mix{UpdatePct: 100}
)

// MixName returns the paper's name for a known mix, or a literal rendering.
func MixName(m Mix) string {
	switch m {
	case WorkloadA:
		return "A"
	case WorkloadF:
		return "F"
	case WorkloadWO:
		return "WO"
	default:
		s := fmt.Sprintf("r%d/u%d/rmw%d", m.ReadPct, m.UpdatePct, m.RMWPct)
		if m.ScanPct > 0 {
			s += fmt.Sprintf("/scan%d", m.ScanPct)
		}
		if m.DeletePct > 0 {
			s += fmt.Sprintf("/del%d", m.DeletePct)
		}
		return s
	}
}

// Generator produces a deterministic operation stream.
type Generator struct {
	dist  Distribution
	sizer Sizer
	mix   Mix
	rng   *sim.RNG
}

// NewGenerator wires a distribution, sizer and mix to a seeded RNG stream.
func NewGenerator(dist Distribution, sizer Sizer, mix Mix, rng *sim.RNG) (*Generator, error) {
	if err := mix.Validate(); err != nil {
		return nil, err
	}
	return &Generator{dist: dist, sizer: sizer, mix: mix, rng: rng}, nil
}

// Next returns the next operation.
func (g *Generator) Next() Op {
	key := g.dist.Next(g.rng)
	op := Op{Key: key, Size: g.sizer.SizeOf(key)}
	op.Kind, op.ScanLen = g.mix.Pick(g.rng)
	return op
}

// Pick draws an operation kind (and scan length, for scans) from the mix
// with one uniform draw — the kind-selection step shared by Generator and
// the open-loop arrival layer. Draw order matters for reproducibility:
// exactly one rng consumption per call.
func (m Mix) Pick(rng *sim.RNG) (OpKind, int) {
	r := rng.Intn(100)
	switch {
	case r < m.ReadPct:
		return OpRead, 0
	case r < m.ReadPct+m.UpdatePct:
		return OpUpdate, 0
	case r < m.ReadPct+m.UpdatePct+m.RMWPct:
		return OpReadModifyWrite, 0
	case r < m.ReadPct+m.UpdatePct+m.RMWPct+m.ScanPct:
		n := m.ScanLen
		if n <= 0 {
			n = 50 // YCSB-E's average scan length
		}
		return OpScan, n
	default:
		return OpDelete, 0
	}
}

// LoadOps returns the insert sequence that populates every key once, in key
// order — the load phase that precedes a YCSB run.
func LoadOps(keys int64, sizer Sizer) []Op {
	ops := make([]Op, keys)
	for k := int64(0); k < keys; k++ {
		ops[k] = Op{Kind: OpInsert, Key: k, Size: sizer.SizeOf(k)}
	}
	return ops
}
