package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/runner"
)

// TestSnapshotBenchSmoke measures the end-to-end wall time of a multi-cell
// experiment with the load-snapshot template cache off and on, and writes
// the comparison to the file named by BENCH_SNAPSHOT_OUT (skipped when the
// variable is unset, so ordinary test runs stay fast). CI runs it as a
// benchmark smoke step; the committed BENCH_snapshot.json is a snapshot of
// one such run.
func TestSnapshotBenchSmoke(t *testing.T) {
	out := os.Getenv("BENCH_SNAPSHOT_OUT")
	if out == "" {
		t.Skip("set BENCH_SNAPSHOT_OUT=<path> to run the snapshot benchmark smoke")
	}
	// The fig11 pair is the paper's widest sweep and the worst pre-existing
	// duplication: fig11a and fig11b render the same strategy x mix x
	// thread grid, so before this acceleration stack every cell simulated
	// twice. Measure both tables end to end, exactly as `checkin-bench
	// -experiment fig11a,fig11b` runs them.
	ids := []string{"fig11a", "fig11b"}
	opts := Opts{Scale: 0.1, Threads: []int{4, 16}, Seed: 1}
	cells := len(checkin.Strategies) * len(fig11Mixes) * len(opts.Threads) * len(ids)

	measure := func(mode string) float64 {
		runner.ResetCaches()
		o := opts
		o.Snapshots = mode
		start := time.Now()
		for _, id := range ids {
			exp, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := exp.Run(o); err != nil {
				t.Fatalf("%s, snapshots %s: %v", id, mode, err)
			}
		}
		return time.Since(start).Seconds()
	}
	// Warm-up run to take JIT-free Go runtime effects (page faults, heap
	// growth) out of the off/on comparison, then one timed run per mode.
	measure("off")
	offSecs := measure("off")
	onSecs := measure("on")
	speedup := offSecs / onSecs

	report := map[string]any{
		"description": fmt.Sprintf(
			"End-to-end wall time of the fig11a+fig11b experiment pair (%d table cells: 5 strategies x 3 workload mixes x %v threads x 2 tables, Scale %v, seed %d) with the snapshot acceleration stack off vs on. With it on, runs sharing a load fingerprint fork one preconditioned simulator state instead of each re-simulating the bulk load, and identical (config, spec) cells shared between the two tables simulate once; rendered tables are byte-identical either way (TestSnapshotDeterminism).",
			cells, opts.Threads, opts.Scale, opts.Seed),
		"machine": map[string]any{
			"cpu":    cpuModel(),
			"cores":  runtime.NumCPU(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
		},
		"experiments": ids,
		"cells":       cells,
		"snapshot_off": map[string]any{
			"wall_seconds": round3(offSecs),
			"ns_per_run":   int64(offSecs * 1e9 / float64(cells)),
			"runs_per_sec": round3(float64(cells) / offSecs),
		},
		"snapshot_on": map[string]any{
			"wall_seconds": round3(onSecs),
			"ns_per_run":   int64(onSecs * 1e9 / float64(cells)),
			"runs_per_sec": round3(float64(cells) / onSecs),
		},
		"speedup": fmt.Sprintf("%.2fx", speedup),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("snapshots off %.2fs, on %.2fs -> %.2fx (%d cells), wrote %s",
		offSecs, onSecs, speedup, cells, out)
	if speedup < 1.5 {
		// Timing on shared CI machines is noisy; surface a miss loudly but
		// don't fail the build on scheduler jitter.
		t.Logf("WARNING: speedup %.2fx below the 1.5x target", speedup)
	}
}

func round3(v float64) float64 { return float64(int64(v*1000)) / 1000 }

// cpuModel extracts the CPU model name (Linux) for the machine stanza.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return "unknown"
}
