package harness

import (
	"strconv"
	"strings"
	"testing"
)

// TestAblationVariants pins the ablation table's shape and content: one row
// per design lever, in the documented order, with live measurements in every
// numeric column. The generic experiment sweep only checks non-emptiness;
// this keeps the variant list itself honest (dropping a lever or reordering
// rows is a silent reporting regression).
func TestAblationVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run in -short mode")
	}
	tab, err := Ablation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := []string{
		"Baseline (host copy)",
		"ISC-B (device copy)",
		"ISC-C (remap, unaligned)",
		"Check-In (remap, aligned)",
		"Check-In, DeferGC off",
		"Check-In, no data cache",
		"Baseline, no data cache",
		"Check-In, GC cost-benefit",
		"Check-In, GC fifo",
	}
	if len(tab.Rows) != len(wantRows) {
		t.Fatalf("ablation produced %d rows, want %d", len(tab.Rows), len(wantRows))
	}
	wantCols := []string{"variant", "kqps", "p99.9 (ms)", "redundant", "ckpt (ms)"}
	if len(tab.Columns) != len(wantCols) {
		t.Fatalf("ablation has %d columns, want %d", len(tab.Columns), len(wantCols))
	}
	for i, c := range wantCols {
		if tab.Columns[i] != c {
			t.Errorf("column %d = %q, want %q", i, tab.Columns[i], c)
		}
	}
	for i, row := range tab.Rows {
		if row[0] != wantRows[i] {
			t.Errorf("row %d variant = %q, want %q", i, row[0], wantRows[i])
		}
		kqps, err := strconv.ParseFloat(row[1], 64)
		if err != nil || kqps <= 0 {
			t.Errorf("%s: kqps cell %q is not a positive number", row[0], row[1])
		}
		if _, err := strconv.ParseFloat(row[2], 64); err != nil {
			t.Errorf("%s: p99.9 cell %q does not parse", row[0], row[2])
		}
		if _, err := strconv.ParseUint(row[3], 10, 64); err != nil {
			t.Errorf("%s: redundant cell %q does not parse", row[0], row[3])
		}
	}
	// Every variant is an independent configuration; identical throughput on
	// all nine rows would mean the levers are not actually being applied.
	distinct := map[string]bool{}
	for _, row := range tab.Rows {
		distinct[strings.Join(row[1:], "|")] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all %d ablation variants produced identical measurements — levers not applied", len(tab.Rows))
	}
}
