package harness

import (
	"fmt"
	"strings"
	"testing"
)

func tinyOpts() Opts {
	return Opts{Scale: 0.05, Threads: []int{4, 8}, Seed: 1}
}

func TestExperimentsRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be present.
	want := []string{"table1", "fig3a", "fig3b", "fig3c", "fig8a", "fig8b",
		"lifetime", "fig9", "fig10", "fig11a", "fig11b", "fig12", "fig13a", "fig13b",
		"shardsched", "compaction", "ablation", "compare", "recovery"}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
		if exps[i].Title == "" || exps[i].Run == nil {
			t.Errorf("experiment %s missing title or runner", id)
		}
	}
}

func TestLookup(t *testing.T) {
	e, err := Lookup("fig9")
	if err != nil || e.ID != "fig9" {
		t.Fatalf("Lookup(fig9) = %v, %v", e.ID, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestOptsDefaults(t *testing.T) {
	o := Opts{}.withDefaults()
	if o.Scale != 1 || len(o.Threads) == 0 || o.Seed == 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
	if o.maxThreads() != 128 {
		t.Errorf("maxThreads = %d", o.maxThreads())
	}
	if q := o.queries(10); q != 500 {
		t.Errorf("queries floor = %d, want 500", q)
	}
	if q := o.queries(100_000); q != 100_000 {
		t.Errorf("queries = %d", q)
	}
	half := Opts{Scale: 0.5}.withDefaults()
	if q := half.queries(100_000); q != 50_000 {
		t.Errorf("scaled queries = %d", q)
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "note text")
	var sb strings.Builder
	tab.RenderMarkdown(&sb)
	out := sb.String()
	for _, want := range []string{"### x: demo", "| a | b |", "| --- | --- |", "| 1 | 2 |", "> note text"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "long-column"}}
	tab.AddRow("1", "2")
	tab.AddRow("wide-cell", "3")
	tab.Notes = append(tab.Notes, "a note")
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== x: demo ==", "long-column", "wide-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// TestEveryExperimentRuns regenerates each artifact at a tiny scale and
// checks structural sanity (non-empty, rectangular rows).
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tab, err := exp.Run(tinyOpts())
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", exp.ID)
			}
			for _, r := range tab.Rows {
				if len(r) != len(tab.Columns) {
					t.Fatalf("%s row width %d != %d columns", exp.ID, len(r), len(tab.Columns))
				}
				for _, cell := range r {
					if cell == "" {
						t.Fatalf("%s has an empty cell", exp.ID)
					}
				}
			}
		})
	}
}

// TestParallelDeterminism renders the same experiments at parallelism 1 and
// 8 and requires byte-identical output. compare covers trace replay (five
// runs sharing one recorded trace); fig11a covers the widest sweep
// (strategies x mixes x threads). The runner's memo key includes
// Parallelism precisely so this test exercises real parallel runs.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism sweep in -short mode")
	}
	for _, id := range []string{"compare", "fig11a"} {
		id := id
		t.Run(id, func(t *testing.T) {
			exp, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			render := func(par int) string {
				o := tinyOpts()
				o.Parallelism = par
				tab, err := exp.Run(o)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				var sb strings.Builder
				tab.Render(&sb)
				return sb.String()
			}
			seq, par := render(1), render(8)
			if seq != par {
				t.Errorf("%s output differs between parallelism 1 and 8:\n--- sequential\n%s\n--- parallel\n%s", id, seq, par)
			}
			if !strings.Contains(seq, "==") || len(seq) < 100 {
				t.Errorf("%s rendered output suspiciously small (vacuous comparison?):\n%s", id, seq)
			}
		})
	}
}

func TestFig9OrderingAtModestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive ordering check in -short mode")
	}
	o := Opts{Scale: 0.3, Threads: []int{4, 32}, Seed: 1}
	tab, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	// Find zipfian rows for Baseline and Check-In, compare p99.9 (column 3).
	var base, ci string
	for _, r := range tab.Rows {
		if r[1] != "zipfian" {
			continue
		}
		switch r[0] {
		case "Baseline":
			base = r[3]
		case "Check-In":
			ci = r[3]
		}
	}
	if base == "" || ci == "" {
		t.Fatalf("missing rows in fig9 table: %+v", tab.Rows)
	}
	var bv, cv float64
	if _, err := fmt.Sscan(base, &bv); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscan(ci, &cv); err != nil {
		t.Fatal(err)
	}
	if cv >= bv {
		t.Errorf("Check-In p99.9 (%v) not below baseline (%v)", cv, bv)
	}
}
