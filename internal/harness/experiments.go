package harness

import (
	"fmt"
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/runner"
)

// Experiments declare every run point as a runner.Job up front, execute the
// batch on the worker pool (Opts.Parallelism), and assemble rows from the
// completed results. Jobs are pure (config, seed) functions and results
// come back in submission order, so tables are byte-identical at any
// parallelism.

// Table1 prints the simulated machine configuration (the reproduction of
// the paper's Table I).
func Table1(o Opts) (*Table, error) {
	o = o.withDefaults()
	cfg := baseConfig(o, checkin.StrategyCheckIn)
	t := &Table{ID: "table1", Title: "Simulated machine configuration",
		Columns: []string{"parameter", "value"}}
	raw := int64(cfg.Channels*cfg.DiesPerChannel*cfg.PlanesPerDie*cfg.BlocksPerPlane*cfg.PagesPerBlock) * int64(cfg.PageSizeBytes)
	rows := [][2]string{
		{"record size", cfg.Records.Name()},
		{"keys", d(uint64(cfg.Keys))},
		{"checkpoint interval", cfg.CheckpointInterval.String()},
		{"journal half", fmt.Sprintf("%d MB", cfg.JournalHalfMB)},
		{"flash topology", fmt.Sprintf("%d ch x %d die x %d plane x %d blk x %d pg",
			cfg.Channels, cfg.DiesPerChannel, cfg.PlanesPerDie, cfg.BlocksPerPlane, cfg.PagesPerBlock)},
		{"page size", fmt.Sprintf("%d B", cfg.PageSizeBytes)},
		{"raw capacity", fmt.Sprintf("%d MB", raw>>20)},
		{"flash timing (tR/tPROG/tBERS)", fmt.Sprintf("%v / %v / %v", cfg.ReadLatency, cfg.ProgramLatency, cfg.EraseLatency)},
		{"channel rate", fmt.Sprintf("%d MB/s", cfg.ChannelMBps)},
		{"PCIe rate", fmt.Sprintf("%d MB/s", cfg.PCIeMBps)},
		{"queue depth", d(uint64(cfg.QueueDepth))},
		{"device data cache", fmt.Sprintf("%d MB", cfg.DataCacheMB)},
		{"map cache", fmt.Sprintf("%d MB", cfg.MapCacheMB)},
		{"mapping unit", "strategy default (4096 B conventional, 512 B sub-page)"},
		{"over-provisioning", f2(cfg.OverProvision)},
		{"max P/E cycles", d(uint64(cfg.MaxPECycles))},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	return t, nil
}

// distName names a distribution selector.
func distName(zipf bool) string {
	if zipf {
		return "zipfian"
	}
	return "uniform"
}

// Fig3a measures the I/O- and flash-operation amplification checkpointing
// adds on the baseline system, for uniform and Zipfian access (paper:
// ~2.98x/~1.91x host I/O, ~7.9x/~4.7x flash operations).
func Fig3a(o Opts) (*Table, error) {
	o = o.withDefaults()
	dists := []bool{false, true}
	jobs := make([]runner.Job, 0, len(dists))
	for _, zipf := range dists {
		jobs = append(jobs, runner.Job{
			Name:   "fig3a/" + distName(zipf),
			Config: baseConfig(o, checkin.StrategyBaseline),
			Spec: checkin.RunSpec{
				Threads:      o.maxThreads(),
				TotalQueries: o.queries(80_000),
				Mix:          checkin.WorkloadWO,
				Zipfian:      zipf,
			},
		})
	}
	rs, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig3a", Title: "Amplification due to checkpointing (baseline)",
		Columns: []string{"distribution", "host I/O amp", "flash amp", "ckpts"}}
	for i, zipf := range dists {
		m := rs[i].Metrics
		t.AddRow(distName(zipf), ratio(m.IOAmplification()), ratio(m.FlashAmplification()),
			d(uint64(m.Checkpoints())))
	}
	t.Notes = append(t.Notes,
		"paper reports ~2.98x/1.91x host I/O and ~7.9x/4.7x flash ops (uniform/zipfian)")
	return t, nil
}

// Fig3b measures baseline checkpointing time growth with thread count,
// normalized to the smallest thread count, for both distributions.
func Fig3b(o Opts) (*Table, error) {
	o = o.withDefaults()
	dists := []bool{false, true}
	jobs := make([]runner.Job, 0, len(dists)*len(o.Threads))
	for _, zipf := range dists {
		for _, th := range o.Threads {
			mult := int64(th / o.Threads[0])
			if mult > 8 {
				mult = 8
			}
			jobs = append(jobs, runner.Job{
				Name:   fmt.Sprintf("fig3b/%s/%dT", distName(zipf), th),
				Config: baseConfig(o, checkin.StrategyBaseline),
				Spec: checkin.RunSpec{
					Threads:      th,
					TotalQueries: o.queries(8_000) * mult,
					Mix:          checkin.WorkloadWO,
					Zipfian:      zipf,
				},
			})
		}
	}
	rs, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig3b", Title: "Normalized checkpointing time vs threads (baseline)",
		Columns: []string{"threads", "uniform", "zipfian", "uniform ms", "zipfian ms"}}
	type point struct{ uni, zipf float64 }
	pts := make([]point, len(o.Threads))
	for zi := range dists {
		for i := range o.Threads {
			m := rs[zi*len(o.Threads)+i].Metrics
			v := float64(m.MeanCheckpointTime()) / 1e6 // ms
			if zi == 0 {
				pts[i].uni = v
			} else {
				pts[i].zipf = v
			}
		}
	}
	base := pts[0]
	for i, th := range o.Threads {
		nu, nz := 0.0, 0.0
		if base.uni > 0 {
			nu = pts[i].uni / base.uni
		}
		if base.zipf > 0 {
			nz = pts[i].zipf / base.zipf
		}
		t.AddRow(d(uint64(th)), f2(nu), f2(nz), f1(pts[i].uni), f1(pts[i].zipf))
	}
	t.Notes = append(t.Notes,
		"paper: checkpointing time grows with threads; the uniform slope exceeds zipfian at high thread counts (latest-version ratio ~5x higher)")
	return t, nil
}

// Fig3c measures how much slower queries run while a baseline checkpoint is
// in flight (paper: reads ~4x, writes ~21x the average latency).
func Fig3c(o Opts) (*Table, error) {
	o = o.withDefaults()
	rs, err := runJobs(o, []runner.Job{{
		Name:   "fig3c/baseline",
		Config: baseConfig(o, checkin.StrategyBaseline),
		Spec: checkin.RunSpec{
			Threads:      o.maxThreads(),
			TotalQueries: o.queries(80_000),
			Mix:          checkin.WorkloadA,
			Zipfian:      true,
		},
	}})
	if err != nil {
		return nil, err
	}
	m := rs[0].Metrics
	t := &Table{ID: "fig3c", Title: "Latency during checkpointing vs average (baseline)",
		Columns: []string{"query", "avg (µs)", "during ckpt (µs)", "slowdown"}}
	rd, rdC := m.ReadLat.Mean()/1e3, m.ReadLatCkpt.Mean()/1e3
	wr, wrC := m.WriteLat.Mean()/1e3, m.WriteLatCkpt.Mean()/1e3
	slow := func(a, b float64) string {
		if a == 0 {
			return "-"
		}
		return ratio(b / a)
	}
	t.AddRow("read", f1(rd), f1(rdC), slow(rd, rdC))
	t.AddRow("write", f1(wr), f1(wrC), slow(wr, wrC))
	t.Notes = append(t.Notes, "paper: reads ~4x and writes ~21x slower during checkpointing")
	return t, nil
}

// fig8Strategies are the configurations Figure 8 compares.
var fig8Strategies = []checkin.Strategy{
	checkin.StrategyBaseline, checkin.StrategyISCC, checkin.StrategyCheckIn,
}

// Fig8a measures redundant (duplicate) writes per checkpoint-interval
// setting (paper: Check-In reduces them ~94.3% vs baseline, ~45.6% vs
// ISC-C).
func Fig8a(o Opts) (*Table, error) {
	o = o.withDefaults()
	intervals := []time.Duration{150 * time.Millisecond, 300 * time.Millisecond,
		600 * time.Millisecond, 1200 * time.Millisecond}
	jobs := make([]runner.Job, 0, len(intervals)*len(fig8Strategies))
	for _, iv := range intervals {
		for _, s := range fig8Strategies {
			cfg := baseConfig(o, s)
			cfg.CheckpointInterval = iv
			jobs = append(jobs, runner.Job{
				Name:   fmt.Sprintf("fig8a/%v/%v", iv, s),
				Config: cfg,
				Spec: checkin.RunSpec{
					Threads:      o.maxThreads(),
					TotalQueries: o.queries(80_000),
					Mix:          checkin.WorkloadWO,
					Zipfian:      true,
				},
			})
		}
	}
	rs, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig8a", Title: "Redundant writes vs checkpoint interval",
		Columns: []string{"interval", "Baseline", "ISC-C", "Check-In", "CI/Base", "CI/ISC-C"}}
	var sumBase, sumISCC, sumCI float64
	for ii, iv := range intervals {
		row := make(map[checkin.Strategy]uint64)
		for si, s := range fig8Strategies {
			row[s] = rs[ii*len(fig8Strategies)+si].Metrics.RedundantWrites()
		}
		b, c, ci := row[checkin.StrategyBaseline], row[checkin.StrategyISCC], row[checkin.StrategyCheckIn]
		rb, rc := "-", "-"
		if b > 0 && c > 0 {
			// only aggregate intervals where every configuration actually
			// checkpointed (a too-long interval may fit zero checkpoints
			// in a scaled-down run)
			sumBase += float64(b)
			sumISCC += float64(c)
			sumCI += float64(ci)
			rb = f2(float64(ci) / float64(b))
			rc = f2(float64(ci) / float64(c))
		}
		t.AddRow(iv.String(), d(b), d(c), d(ci), rb, rc)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured mean reduction: %.1f%% vs baseline, %.1f%% vs ISC-C (paper: 94.3%% / 45.6%%)",
			100*(1-sumCI/nonzero(sumBase)), 100*(1-sumCI/nonzero(sumISCC))))
	return t, nil
}

// smallDevice shrinks the flash device so sustained write streams wrap the
// free-block pool several times within a run — the regime where GC and
// lifetime differences show (the paper ran hours of traffic against real
// device capacities; we scale both down together).
func smallDevice(cfg checkin.Config) checkin.Config {
	cfg.BlocksPerPlane = 16 // 64 MB raw
	cfg.Keys = 10_000
	cfg.JournalHalfMB = 4
	return cfg
}

// Fig8b measures GC invocations (collections that migrate live data) as the
// write-query count grows (paper: Check-In cuts GC ~74.1% vs baseline,
// ~44.8% vs ISC-C).
func Fig8b(o Opts) (*Table, error) {
	o = o.withDefaults()
	counts := []int64{o.queries(30_000), o.queries(60_000), o.queries(120_000)}
	jobs := make([]runner.Job, 0, len(counts)*len(fig8Strategies))
	for _, q := range counts {
		for _, s := range fig8Strategies {
			jobs = append(jobs, runner.Job{
				Name:   fmt.Sprintf("fig8b/%d/%v", q, s),
				Config: smallDevice(baseConfig(o, s)),
				Spec: checkin.RunSpec{
					Threads:      o.maxThreads(),
					TotalQueries: q,
					Mix:          checkin.WorkloadWO,
					Zipfian:      true,
				},
			})
		}
	}
	rs, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig8b", Title: "GC invocations vs write-query count",
		Columns: []string{"write queries", "Baseline", "ISC-C", "Check-In"}}
	var lastBase, lastISCC, lastCI uint64
	for qi, q := range counts {
		row := make(map[checkin.Strategy]uint64)
		for si, s := range fig8Strategies {
			row[s] = rs[qi*len(fig8Strategies)+si].Metrics.Reclaims()
		}
		lastBase, lastISCC, lastCI = row[checkin.StrategyBaseline], row[checkin.StrategyISCC], row[checkin.StrategyCheckIn]
		t.AddRow(d(uint64(q)), d(lastBase), d(lastISCC), d(lastCI))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("at max count: Check-In GC = %.1f%% of baseline, %.1f%% of ISC-C (paper reductions: 74.1%% / 44.8%%)",
			100*float64(lastCI)/nonzero(float64(lastBase)), 100*float64(lastCI)/nonzero(float64(lastISCC))))
	return t, nil
}

// Lifetime evaluates Equation (1): block lifetime = PECmax x Top / BEC
// (paper: Check-In extends lifetime ~3.86x over baseline, ~1.81x over
// ISC-C). Top is the measured window and BEC the erases within it.
func Lifetime(o Opts) (*Table, error) {
	o = o.withDefaults()
	jobs := make([]runner.Job, 0, len(fig8Strategies))
	for _, s := range fig8Strategies {
		jobs = append(jobs, runner.Job{
			Name:   fmt.Sprintf("lifetime/%v", s),
			Config: smallDevice(baseConfig(o, s)),
			Spec: checkin.RunSpec{
				Threads:      o.maxThreads(),
				TotalQueries: o.queries(120_000),
				Mix:          checkin.WorkloadWO,
				Zipfian:      true,
			},
		})
	}
	rs, err := runJobsKeepDB(o, jobs)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "lifetime", Title: "Flash lifetime projection (Equation 1)",
		Columns: []string{"strategy", "programs", "energy (mJ)", "lifetime (PEC*Top/BEC)", "vs baseline"}}
	var baseLife float64
	for i, s := range fig8Strategies {
		db, m := rs[i].DB, rs[i].Metrics
		cfg := db.Config()
		// In steady state every programmed page eventually costs an
		// erase, so programs/pagesPerBlock is the effective block erase
		// count for the (identical) workload — robust to whether the
		// collector ran inside the window. Top is the same nominal
		// service period for every configuration, so lifetime compares
		// as PECmax/BEC.
		life := 0.0
		if bec := float64(m.FlashPrograms()) / float64(cfg.PagesPerBlock); bec > 0 {
			life = float64(cfg.MaxPECycles) / bec
		}
		if s == checkin.StrategyBaseline {
			baseLife = life
		}
		t.AddRow(s.String(), d(m.FlashPrograms()), f1(db.FlashEnergyMJ()), f0(life), ratio(life/nonzero(baseLife)))
	}
	t.Notes = append(t.Notes, "paper: Check-In ~3.86x baseline, ~1.81x ISC-C")
	return t, nil
}

func nonzero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// Fig9 measures tail latency for all five configurations under YCSB-A
// (paper: Check-In cuts p99.9 by ~92% vs baseline).
func Fig9(o Opts) (*Table, error) {
	o = o.withDefaults()
	dists := []bool{false, true}
	jobs := make([]runner.Job, 0, len(dists)*len(checkin.Strategies))
	for _, zipf := range dists {
		for _, s := range checkin.Strategies {
			jobs = append(jobs, runner.Job{
				Name:   fmt.Sprintf("fig9/%s/%v", distName(zipf), s),
				Config: baseConfig(o, s),
				Spec: checkin.RunSpec{
					Threads:      o.maxThreads(),
					TotalQueries: o.queries(80_000),
					Mix:          checkin.WorkloadA,
					Zipfian:      zipf,
				},
			})
		}
	}
	rs, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig9", Title: "Tail latency, workload A",
		Columns: []string{"strategy", "dist", "p99 (µs)", "p99.9 (µs)", "p99.99 (µs)"}}
	type key struct {
		s    checkin.Strategy
		zipf bool
	}
	p999 := map[key]float64{}
	for zi, zipf := range dists {
		for si, s := range checkin.Strategies {
			m := rs[zi*len(checkin.Strategies)+si].Metrics
			p999[key{s, zipf}] = float64(m.AllLat.Percentile(99.9))
			t.AddRow(s.String(), distName(zipf),
				f1(float64(m.AllLat.Percentile(99))/1e3),
				f1(float64(m.AllLat.Percentile(99.9))/1e3),
				f1(float64(m.AllLat.Percentile(99.99))/1e3))
		}
	}
	for _, zipf := range dists {
		red := 100 * (1 - p999[key{checkin.StrategyCheckIn, zipf}]/
			nonzero(p999[key{checkin.StrategyBaseline, zipf}]))
		t.Notes = append(t.Notes,
			fmt.Sprintf("%s: Check-In reduces p99.9 by %.1f%% vs baseline (paper ~92%%)", distName(zipf), red))
	}
	return t, nil
}

// Fig10 measures pure checkpointing time (query admission locked) for all
// five configurations across thread counts.
func Fig10(o Opts) (*Table, error) {
	o = o.withDefaults()
	jobs := make([]runner.Job, 0, len(checkin.Strategies)*len(o.Threads))
	for _, s := range checkin.Strategies {
		for _, th := range o.Threads {
			cfg := baseConfig(o, s)
			cfg.LockDuringCheckpoint = true
			mult := int64(th / o.Threads[0])
			if mult > 8 {
				mult = 8
			}
			jobs = append(jobs, runner.Job{
				Name:   fmt.Sprintf("fig10/%v/%dT", s, th),
				Config: cfg,
				Spec: checkin.RunSpec{
					Threads:      th,
					TotalQueries: o.queries(8_000) * mult,
					Mix:          checkin.WorkloadWO,
					Zipfian:      true,
				},
			})
		}
	}
	rs, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	cols := []string{"strategy"}
	for _, th := range o.Threads {
		cols = append(cols, fmt.Sprintf("%dT (ms)", th))
	}
	t := &Table{ID: "fig10", Title: "Checkpointing time vs threads (locked)", Columns: cols}
	for si, s := range checkin.Strategies {
		row := []string{s.String()}
		for ti := range o.Threads {
			m := rs[si*len(o.Threads)+ti].Metrics
			row = append(row, f1(float64(m.MeanCheckpointTime())/1e6))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: in-storage checkpointing keeps checkpoint time nearly flat as threads grow; baseline grows steeply")
	return t, nil
}

// fig11 runs are shared between Fig11a and Fig11b.
type fig11Key struct {
	s   checkin.Strategy
	mix string
	th  int
}

type fig11Val struct {
	qps    float64
	meanUS float64
}

var fig11Mixes = []struct {
	name string
	mix  checkin.Mix
}{{"A", checkin.WorkloadA}, {"F", checkin.WorkloadF}, {"WO", checkin.WorkloadWO}}

// fig11Runs builds the shared sweep. Deduplication between Fig11a and
// Fig11b happens in the runner's memo layer — the second invocation's jobs
// all hit the (config, spec) cache and no simulation re-runs.
func fig11Runs(o Opts) (map[fig11Key]fig11Val, error) {
	var jobs []runner.Job
	var keys []fig11Key
	for _, s := range checkin.Strategies {
		for _, mx := range fig11Mixes {
			for _, th := range o.Threads {
				cfg := baseConfig(o, s)
				// The paper's 60 s interval keeps checkpointing duty low
				// (checkpoint time ≪ interval); mirror that proportion.
				cfg.CheckpointInterval = time.Second
				// scale the query count with the thread count so runs
				// span a comparable simulated time — and therefore meet
				// a comparable number of checkpoints — at every point
				mult := int64(th / o.Threads[0])
				if mult > 16 {
					mult = 16
				}
				if mult < 1 {
					mult = 1
				}
				jobs = append(jobs, runner.Job{
					Name:   fmt.Sprintf("fig11/%v/%s/%dT", s, mx.name, th),
					Config: cfg,
					Spec: checkin.RunSpec{
						Threads:      th,
						TotalQueries: o.queries(15_000) * mult,
						Mix:          mx.mix,
						Zipfian:      true,
					},
				})
				keys = append(keys, fig11Key{s, mx.name, th})
			}
		}
	}
	rs, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	out := map[fig11Key]fig11Val{}
	for i, k := range keys {
		m := rs[i].Metrics
		out[k] = fig11Val{
			qps:    m.ThroughputQPS(),
			meanUS: float64(m.MeanLatency()) / 1e3,
		}
	}
	return out, nil
}

// Fig11a reports average throughput per strategy/workload/threads.
func Fig11a(o Opts) (*Table, error) {
	o = o.withDefaults()
	runs, err := fig11Runs(o)
	if err != nil {
		return nil, err
	}
	cols := []string{"workload", "strategy"}
	for _, th := range o.Threads {
		cols = append(cols, fmt.Sprintf("%dT (kqps)", th))
	}
	t := &Table{ID: "fig11a", Title: "Average query throughput", Columns: cols}
	for _, mix := range []string{"A", "F", "WO"} {
		for _, s := range checkin.Strategies {
			row := []string{mix, s.String()}
			for _, th := range o.Threads {
				row = append(row, f1(runs[fig11Key{s, mix, th}].qps/1e3))
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes, "paper: Check-In improves average throughput ~8.1% over baseline at high thread counts")
	return t, nil
}

// Fig11b reports average latency per strategy/workload/threads.
func Fig11b(o Opts) (*Table, error) {
	o = o.withDefaults()
	runs, err := fig11Runs(o)
	if err != nil {
		return nil, err
	}
	cols := []string{"workload", "strategy"}
	for _, th := range o.Threads {
		cols = append(cols, fmt.Sprintf("%dT (µs)", th))
	}
	t := &Table{ID: "fig11b", Title: "Average query latency", Columns: cols}
	for _, mix := range []string{"A", "F", "WO"} {
		for _, s := range checkin.Strategies {
			row := []string{mix, s.String()}
			for _, th := range o.Threads {
				row = append(row, f1(runs[fig11Key{s, mix, th}].meanUS))
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes, "paper: Check-In improves average latency ~10.2% at 128 threads")
	return t, nil
}

// fig12Strategies are the two configurations Figure 12 sweeps.
var fig12Strategies = []checkin.Strategy{checkin.StrategyBaseline, checkin.StrategyCheckIn}

// Fig12 sweeps the checkpoint interval for baseline and Check-In (paper:
// baseline improves with longer intervals; Check-In is flat).
func Fig12(o Opts) (*Table, error) {
	o = o.withDefaults()
	intervals := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond}
	jobs := make([]runner.Job, 0, len(intervals)*len(fig12Strategies))
	for _, iv := range intervals {
		for _, s := range fig12Strategies {
			cfg := baseConfig(o, s)
			cfg.CheckpointInterval = iv
			jobs = append(jobs, runner.Job{
				Name:   fmt.Sprintf("fig12/%v/%v", iv, s),
				Config: cfg,
				Spec: checkin.RunSpec{
					Threads:      o.maxThreads(),
					TotalQueries: o.queries(150_000),
					Mix:          checkin.WorkloadA,
					Zipfian:      true,
				},
			})
		}
	}
	rs, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig12", Title: "Checkpoint-interval sensitivity (workload A, zipfian)",
		Columns: []string{"interval", "Base kqps", "CI kqps", "Base µs", "CI µs"}}
	for ii, iv := range intervals {
		var vals [2]fig11Val
		for si := range fig12Strategies {
			m := rs[ii*len(fig12Strategies)+si].Metrics
			vals[si] = fig11Val{qps: m.ThroughputQPS(), meanUS: float64(m.MeanLatency()) / 1e3}
		}
		t.AddRow(iv.String(), f1(vals[0].qps/1e3), f1(vals[1].qps/1e3),
			f1(vals[0].meanUS), f1(vals[1].meanUS))
	}
	t.Notes = append(t.Notes,
		"paper: baseline throughput rises / latency falls with longer intervals; Check-In stays steady throughout")
	return t, nil
}

// fig13Strategies are the two remapping designs Figure 13 compares.
var fig13Strategies = []checkin.Strategy{checkin.StrategyISCC, checkin.StrategyCheckIn}

// Fig13a sweeps the FTL mapping unit for the remapping designs under mixed
// record sizes (paper: throughput grows with unit size; Check-In gains
// more because of higher data reusability).
func Fig13a(o Opts) (*Table, error) {
	o = o.withDefaults()
	units := []int{512, 1024, 2048, 4096}
	jobs := make([]runner.Job, 0, len(units)*len(fig13Strategies))
	for _, u := range units {
		for _, s := range fig13Strategies {
			cfg := baseConfig(o, s)
			cfg.MappingUnit = u
			cfg.Keys = 8_000
			cfg.Records = checkin.PatternP1
			// the paper's trade-off needs real map-metadata pressure:
			// at 512 B units the table exceeds the cache ~4x; at 4 KB
			// it fits entirely
			cfg.MapCacheMB = 2
			jobs = append(jobs, runner.Job{
				Name:   fmt.Sprintf("fig13a/%dB/%v", u, s),
				Config: cfg,
				Spec: checkin.RunSpec{
					Threads:      o.maxThreads(),
					TotalQueries: o.queries(25_000),
					Mix:          checkin.WorkloadA,
					Zipfian:      true,
				},
			})
		}
	}
	rs, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig13a", Title: "Throughput vs mapping unit (mixed record sizes)",
		Columns: []string{"unit (B)", "ISC-C kqps", "Check-In kqps"}}
	for ui, u := range units {
		var vals [2]float64
		for si := range fig13Strategies {
			vals[si] = rs[ui*len(fig13Strategies)+si].Metrics.ThroughputQPS()
		}
		t.AddRow(d(uint64(u)), f1(vals[0]/1e3), f1(vals[1]/1e3))
	}
	t.Notes = append(t.Notes,
		"paper: throughput generally rises with mapping unit (less map metadata); Check-In benefits most at 4096 B")
	return t, nil
}

// Fig13b compares the space overhead of Check-In's sector-aligned
// journaling against ISC-C's raw format for the four record-size mixes, at
// the 4 KB mapping unit where the paper quotes "almost 3%" extra space.
// The device-level column amortizes the journal padding over all device
// writes, which is what capacity provisioning feels.
func Fig13b(o Opts) (*Table, error) {
	o = o.withDefaults()
	patterns := []checkin.Sizer{checkin.PatternP1, checkin.PatternP2, checkin.PatternP3, checkin.PatternP4}
	jobs := make([]runner.Job, 0, len(patterns)*len(fig13Strategies))
	for _, pat := range patterns {
		for _, s := range fig13Strategies {
			cfg := baseConfig(o, s)
			cfg.Keys = 8_000
			cfg.Records = pat
			cfg.MappingUnit = 4096
			// compare pure alignment overhead (no compression shrink)
			cfg.CompressRatio = 1.0
			jobs = append(jobs, runner.Job{
				Name:   fmt.Sprintf("fig13b/%s/%v", pat.Name(), s),
				Config: cfg,
				Spec: checkin.RunSpec{
					Threads:      o.maxThreads(),
					TotalQueries: o.queries(12_000),
					Mix:          checkin.WorkloadWO,
					Zipfian:      true,
				},
			})
		}
	}
	rs, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	t := &Table{ID: "fig13b", Title: "Space overhead: Check-In vs ISC-C (4 KB mapping unit)",
		Columns: []string{"pattern", "ISC-C journal ovh", "Check-In journal ovh", "device-level delta %"}}
	for pi, pat := range patterns {
		var journalOvh [2]float64
		var deviceOvh [2]float64
		for si := range fig13Strategies {
			m := rs[pi*len(fig13Strategies)+si].Metrics
			journalOvh[si] = m.JournalSpaceOverhead()
			extra := float64(m.JournalEnd.StoredBytes-m.JournalStart.StoredBytes) -
				float64(m.JournalEnd.PayloadBytes-m.JournalStart.PayloadBytes)
			deviceOvh[si] = extra / nonzero(float64(m.HostWriteBytes()))
		}
		t.AddRow(pat.Name(), f2(journalOvh[0]), f2(journalOvh[1]),
			f1(100*(deviceOvh[1]-deviceOvh[0])))
	}
	t.Notes = append(t.Notes,
		"paper: Check-In's alignment costs up to ~3% extra device space at the 4 KB unit, repaid by remap efficiency")
	return t, nil
}
