package harness

import (
	"strings"
	"testing"
)

// TestSnapshotDeterminism renders experiments with the load-snapshot
// template cache enabled and disabled and requires byte-identical output —
// the central correctness claim of snapshot-and-fork. The set covers the
// main sweep shapes: fig8a (small-device config with GC pressure), lifetime
// (post-run DB inspection through runJobsKeepDB), fig11a (the widest
// strategy x mix x thread sweep), recovery (crash recovery plus SPOR
// validation against forked state) and compaction (mixed journal and LSM
// cells sharing one trace). The engine axis rides along: fig8a runs once
// per backend, so LSM snapshots restore as exactly as journal ones.
func TestSnapshotDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot determinism sweep in -short mode")
	}
	cases := []struct {
		name, id, engine string
	}{
		{"fig8a", "fig8a", ""},
		{"lifetime", "lifetime", ""},
		{"fig11a", "fig11a", ""},
		{"recovery", "recovery", ""},
		{"compaction", "compaction", ""},
		{"fig8a-lsm", "fig8a", "lsm"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			exp, err := Lookup(tc.id)
			if err != nil {
				t.Fatal(err)
			}
			render := func(mode string) string {
				o := tinyOpts()
				o.Snapshots = mode
				o.Engine = tc.engine
				tab, err := exp.Run(o)
				if err != nil {
					t.Fatalf("snapshots %s: %v", mode, err)
				}
				var sb strings.Builder
				tab.Render(&sb)
				return sb.String()
			}
			on, off := render("on"), render("off")
			if on != off {
				t.Errorf("%s output differs between snapshots on and off:\n--- on\n%s\n--- off\n%s", tc.name, on, off)
			}
			if !strings.Contains(on, "==") || len(on) < 100 {
				t.Errorf("%s rendered output suspiciously small (vacuous comparison?):\n%s", tc.name, on)
			}
		})
	}
}
