package harness

import (
	"strings"
	"testing"
)

// TestSnapshotDeterminism renders experiments with the load-snapshot
// template cache enabled and disabled and requires byte-identical output —
// the central correctness claim of snapshot-and-fork. The set covers the
// main sweep shapes: fig8a (small-device config with GC pressure), lifetime
// (post-run DB inspection through runJobsKeepDB), fig11a (the widest
// strategy x mix x thread sweep) and recovery (crash recovery plus SPOR
// validation against forked state).
func TestSnapshotDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("snapshot determinism sweep in -short mode")
	}
	for _, id := range []string{"fig8a", "lifetime", "fig11a", "recovery"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			exp, err := Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			render := func(mode string) string {
				o := tinyOpts()
				o.Snapshots = mode
				tab, err := exp.Run(o)
				if err != nil {
					t.Fatalf("snapshots %s: %v", mode, err)
				}
				var sb strings.Builder
				tab.Render(&sb)
				return sb.String()
			}
			on, off := render("on"), render("off")
			if on != off {
				t.Errorf("%s output differs between snapshots on and off:\n--- on\n%s\n--- off\n%s", id, on, off)
			}
			if !strings.Contains(on, "==") || len(on) < 100 {
				t.Errorf("%s rendered output suspiciously small (vacuous comparison?):\n%s", id, on)
			}
		})
	}
}
