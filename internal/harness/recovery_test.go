package harness

import (
	"strconv"
	"strings"
	"testing"

	checkin "github.com/checkin-kv/checkin"
)

// checkRecoveryTable asserts the invariant parts of a Recovery run: one row
// per strategy in evaluation order, a zero-mismatch SPOR rebuild everywhere,
// journal replay actually happening under the write-only workload, and no
// RECOVERY MISMATCH note (the in-table signal that replay diverged from the
// durable state).
func checkRecoveryTable(t *testing.T, tab *Table) {
	t.Helper()
	if len(tab.Rows) != len(checkin.Strategies) {
		t.Fatalf("recovery produced %d rows, want %d", len(tab.Rows), len(checkin.Strategies))
	}
	for i, s := range checkin.Strategies {
		row := tab.Rows[i]
		if row[0] != s.String() {
			t.Errorf("row %d strategy = %q, want %q", i, row[0], s)
		}
		logs, err := strconv.ParseUint(row[1], 10, 64)
		if err != nil {
			t.Errorf("%s: logs-replayed cell %q does not parse", s, row[1])
		}
		kb, err := strconv.ParseUint(row[2], 10, 64)
		if err != nil {
			t.Errorf("%s: journal-KB cell %q does not parse", s, row[2])
		}
		if logs == 0 || kb == 0 {
			t.Errorf("%s: write-only workload left nothing to replay (logs=%d, KB=%d) — crash window vacuous", s, logs, kb)
		}
		if row[5] != "0" {
			t.Errorf("%s: SPOR mismatches = %s, want 0", s, row[5])
		}
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "RECOVERY MISMATCH") {
			t.Errorf("recovery table flagged a replay divergence: %s", n)
		}
	}
}

func TestRecoveryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery run in -short mode")
	}
	tab, err := Recovery(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	checkRecoveryTable(t, tab)
}

// TestRecoveryTableWithErrors re-runs the recovery experiment on faulty
// flash (the light error profile, threaded through Opts.Errors): read
// retries and occasional block retirements must not cost the engine a
// single recovered version or the device a single SPOR mapping.
func TestRecoveryTableWithErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery run in -short mode")
	}
	o := tinyOpts()
	o.Errors = "light"
	tab, err := Recovery(o)
	if err != nil {
		t.Fatal(err)
	}
	checkRecoveryTable(t, tab)
}
