package harness

import (
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/runner"
)

// Ablation exercises the design decisions DESIGN.md calls out, one variant
// per row, against the same write-heavy workload:
//
//   - remap vs copy vs host copy (the strategy ladder),
//   - sector alignment on/off at fixed remapping (Check-In vs ISC-C),
//   - the deallocator's deferred GC on/off for Check-In,
//   - device data cache on/off (checkpoint reads from DRAM vs flash),
//   - multi-CoW batch size for ISC-B.
func Ablation(o Opts) (*Table, error) {
	o = o.withDefaults()
	t := &Table{ID: "ablation", Title: "Design-decision ablations (workload A, zipfian)",
		Columns: []string{"variant", "kqps", "p99.9 (ms)", "redundant", "ckpt (ms)"}}

	type variant struct {
		name string
		mut  func(*checkin.Config)
	}
	yes, no := true, false
	_ = yes
	variants := []variant{
		{"Baseline (host copy)", func(c *checkin.Config) { c.Strategy = checkin.StrategyBaseline }},
		{"ISC-B (device copy)", func(c *checkin.Config) { c.Strategy = checkin.StrategyISCB }},
		{"ISC-C (remap, unaligned)", func(c *checkin.Config) { c.Strategy = checkin.StrategyISCC }},
		{"Check-In (remap, aligned)", func(c *checkin.Config) { c.Strategy = checkin.StrategyCheckIn }},
		{"Check-In, DeferGC off", func(c *checkin.Config) {
			c.Strategy = checkin.StrategyCheckIn
			c.DeferGC = &no
		}},
		{"Check-In, no data cache", func(c *checkin.Config) {
			c.Strategy = checkin.StrategyCheckIn
			c.DataCacheMB = -1 // sentinel resolved below
		}},
		{"Baseline, no data cache", func(c *checkin.Config) {
			c.Strategy = checkin.StrategyBaseline
			c.DataCacheMB = -1
		}},
		{"Check-In, GC cost-benefit", func(c *checkin.Config) {
			c.Strategy = checkin.StrategyCheckIn
			c.GCPolicy = "cost-benefit"
		}},
		{"Check-In, GC fifo", func(c *checkin.Config) {
			c.Strategy = checkin.StrategyCheckIn
			c.GCPolicy = "fifo"
		}},
	}

	jobs := make([]runner.Job, 0, len(variants))
	for _, v := range variants {
		// run on the small device so GC-sensitive levers (DeferGC) bite
		cfg := smallDevice(baseConfig(o, checkin.StrategyCheckIn))
		cfg.CheckpointInterval = 300 * time.Millisecond
		v.mut(&cfg)
		if cfg.DataCacheMB == -1 {
			// smallest non-zero cache the facade accepts ≈ "off"
			cfg.DataCacheMB = 1
		}
		jobs = append(jobs, runner.Job{
			Name:   "ablation/" + v.name,
			Config: cfg,
			Spec: checkin.RunSpec{
				Threads:      o.maxThreads(),
				TotalQueries: o.queries(60_000),
				Mix:          checkin.WorkloadA,
				Zipfian:      true,
			},
		})
	}
	rs, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		m := rs[i].Metrics
		t.AddRow(v.name,
			f1(m.ThroughputQPS()/1e3),
			f1(float64(m.AllLat.Percentile(99.9))/1e6),
			d(m.RedundantWrites()),
			f1(float64(m.MeanCheckpointTime())/1e6))
	}
	t.Notes = append(t.Notes,
		"each row isolates one design lever; the aligned-remap row should dominate every column it targets")
	return t, nil
}
