package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	checkin "github.com/checkin-kv/checkin"
)

// TestCompactionTableShape pins the compaction experiment's structure: one
// journal reference row plus every (policy, strategy) LSM cell, with the
// LSM-only columns populated exactly on the LSM rows.
func TestCompactionTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	tab, err := Compaction(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 1 + len(lsmPolicies)*len(checkin.Strategies)
	if len(tab.Rows) != wantRows {
		t.Fatalf("compaction rendered %d rows, want %d", len(tab.Rows), wantRows)
	}
	if tab.Rows[0][0] != "journal" {
		t.Fatalf("first row engine = %q, want journal reference", tab.Rows[0][0])
	}
	for i, row := range tab.Rows {
		isLSM := i > 0
		for _, col := range []int{7, 8, 9} { // flushes, compactions, merge MB
			if got := row[col] != "-"; got != isLSM {
				t.Errorf("row %d (%s/%s) column %d = %q; LSM-only columns must be set exactly on LSM rows",
					i, row[0], row[1], col, row[col])
			}
		}
		if isLSM {
			if n, err := strconv.Atoi(row[7]); err != nil || n < 1 {
				t.Errorf("row %d (%s/%s): flushes = %q, want >= 1", i, row[0], row[1], row[7])
			}
		}
	}
}

// TestLSMBenchSmoke runs the compaction experiment at evidence scale and
// writes the BENCH_lsm.json report (skipped unless BENCH_LSM_OUT names the
// output, so ordinary test runs stay fast). The headline compares Check-In
// against the Baseline host-side flush on the leveled LSM tree: redundant
// writes and checkpoint (flush-epoch) time under identical recorded inputs.
func TestLSMBenchSmoke(t *testing.T) {
	out := os.Getenv("BENCH_LSM_OUT")
	if out == "" {
		t.Skip("set BENCH_LSM_OUT=<path> to run the LSM benchmark smoke")
	}
	o := Opts{Scale: 0.5, Threads: []int{64}, Seed: 1}
	start := time.Now()
	tab, err := Compaction(o)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)

	rows := make([]map[string]string, 0, len(tab.Rows))
	byCell := map[string]map[string]string{}
	for _, r := range tab.Rows {
		m := map[string]string{}
		for i, col := range tab.Columns {
			m[col] = r[i]
		}
		rows = append(rows, m)
		byCell[r[0]+"/"+r[1]] = m
	}
	num := func(cell, col string) float64 {
		v, err := strconv.ParseFloat(byCell[cell][col], 64)
		if err != nil {
			t.Fatalf("cell %s column %q = %q: %v", cell, col, byCell[cell][col], err)
		}
		return v
	}
	baseRed := num("lsm/leveled/Baseline", "redundant")
	ckinRed := num("lsm/leveled/Check-In", "redundant")
	baseCkpt := num("lsm/leveled/Baseline", "ckpt ms")
	ckinCkpt := num("lsm/leveled/Check-In", "ckpt ms")

	report := map[string]any{
		"description": fmt.Sprintf(
			"The compaction experiment at Scale %v, seed %d: one recorded write-only zipfian trace served by the journal engine (reference) and by the LSM engine under both compaction policies and all five checkpoint strategies. LSM rows flush each memtable epoch through the named strategy (Baseline: host sequential writes; ISC-A/B: device-side copies; ISC-C/Check-In: WAL-extent remapping) while compaction merges runs host-side. Rendered rows are deterministic; only wall_seconds varies between machines.",
			o.Scale, o.Seed),
		"machine": map[string]any{
			"cpu":    cpuModel(),
			"cores":  runtime.NumCPU(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
		},
		"columns":      tab.Columns,
		"rows":         rows,
		"wall_seconds": round3(wall.Seconds()),
		"headline": map[string]any{
			"leveled_baseline_redundant": baseRed,
			"leveled_checkin_redundant":  ckinRed,
			"leveled_baseline_ckpt_ms":   baseCkpt,
			"leveled_checkin_ckpt_ms":    ckinCkpt,
			"redundant_reduction":        fmt.Sprintf("%.0fx", baseRed/max(ckinRed, 1)),
			"ckpt_time_ratio":            fmt.Sprintf("%.2fx", baseCkpt/max(ckinCkpt, 0.001)),
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("lsm compaction bench: baseline %0.fms/%0.f redundant vs Check-In %0.fms/%0.f redundant, wrote %s",
		baseCkpt, baseRed, ckinCkpt, ckinRed, out)
}
