// Package harness regenerates every table and figure of the paper's
// evaluation (Section IV). Each experiment builds the simulated system
// through the public checkin API, runs the paper's workload for each
// configuration, and reports the same rows/series the paper plots.
//
// Absolute numbers differ from the paper (its substrate was gem5 +
// SimpleSSD on the authors' parameters); the quantities to compare are the
// shapes: which configuration wins, by roughly what factor, and where
// trends cross.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/runner"
)

// Opts controls experiment scale. The zero value is replaced by defaults.
type Opts struct {
	// Scale multiplies per-point query counts. 1.0 is the full-size run
	// used by cmd/checkin-bench; benchmarks use smaller scales.
	Scale float64
	// Threads overrides the default thread sweep (experiments that sweep
	// threads use this list; others use its maximum).
	Threads []int
	// Seed makes runs reproducible.
	Seed int64
	// Parallelism is the number of worker goroutines executing an
	// experiment's independent runs. 0 selects runtime.NumCPU(); 1 forces
	// strictly sequential execution. Every run owns a private sim.Engine
	// and results assemble in submission order, so rendered tables are
	// byte-identical at any setting.
	Parallelism int
	// Snapshots controls the run-acceleration stack: the load-phase
	// template cache (runs whose configurations share a load fingerprint
	// fork one preconditioned snapshot instead of each re-simulating the
	// load phase) and whole-run memoization (identical config/spec cells
	// shared between experiments simulate once). "" and "on" enable it;
	// "off" forces every run to load and execute privately. Rendered
	// tables are byte-identical either way — the snapshot restores the
	// exact post-load state and runs are pure functions of their inputs.
	Snapshots string
	// Timing collects a per-cell wall-clock breakdown (load/run phases of
	// every executed job), retrievable with DrainTimings after an
	// experiment completes. Purely observational: experiment output is
	// byte-identical with it on or off.
	Timing bool
	// Errors names a checkin.ErrorProfile applied to every run's
	// configuration ("" or "off" = perfect flash, the default). Nonzero
	// profiles run every experiment on degrading hardware — read-retry
	// latency, failed programs, retired blocks — and shift the reported
	// numbers accordingly.
	Errors string
	// Domains controls the parallel DES kernel inside each run ("on",
	// "off", or ""/"auto" = on when GOMAXPROCS > 1). Forwarded verbatim to
	// checkin.Config.Domains; rendered tables are byte-identical at any
	// setting — the domains change only wall-clock time.
	Domains string
	// FTLMap selects the mapping-table model for every run ("" or "dram" =
	// full table in DRAM, "dftl" = flash-resident translation pages).
	// Forwarded verbatim to checkin.Config.FTLMap; dftl shifts the reported
	// numbers because mapping misses and writebacks cost flash operations.
	FTLMap string
	// Engine selects the host storage-engine backend for every run (""
	// or "journal" = the paper's journal+JMT engine, "lsm" = the LSM-tree
	// engine). Forwarded verbatim to checkin.Config.Engine. Experiments
	// that compare backends explicitly (compaction) override it per cell.
	Engine string
	// CMTFill, CMTCleanWindow and RemapBatch forward the dftl CMT
	// optimization knobs verbatim to checkin.Config (""/zero = defaults on;
	// "off"/1 restore the pre-optimization paths for ablation). Ignored in
	// dram mode.
	CMTFill        string
	CMTCleanWindow int
	RemapBatch     string
	// Shards and Tenants size the sharded scale-out experiment (0 = defaults
	// of 4 shards, 3 tenants). Only shardsched consults them.
	Shards  int
	Tenants int
	// Arrival is the open-loop arrival spec for shardsched (see
	// shard.ParseArrival; "" = "poisson:150000").
	Arrival string
	// CkSched restricts shardsched to one cross-shard checkpoint scheduling
	// policy ("sync", "staggered" or "global"; "" = all three).
	CkSched string
}

// snapshotsOn reports whether the template cache is enabled (the default).
func (o Opts) snapshotsOn() bool { return o.Snapshots != "off" }

func (o Opts) withDefaults() Opts {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{4, 16, 64, 128}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Opts) queries(base int64) int64 {
	q := int64(float64(base) * o.Scale)
	if q < 500 {
		q = 500
	}
	return q
}

func (o Opts) maxThreads() int {
	m := o.Threads[0]
	for _, t := range o.Threads {
		if t > m {
			m = t
		}
	}
	return m
}

// Table is one regenerated paper artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table.
func (t *Table) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "\n### %s: %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
}

// pad right-pads s to w display columns. Width is counted in runes, not
// bytes: multi-byte headers such as "µs" previously over-counted and skewed
// every column to their right.
func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Experiment is a registered paper artifact generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Opts) (*Table, error)
}

// Experiments lists every regenerable artifact in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Simulated machine configuration", Table1},
		{"fig3a", "I/O and flash-operation amplification due to checkpointing", Fig3a},
		{"fig3b", "Normalized checkpointing time vs thread count (baseline)", Fig3b},
		{"fig3c", "Query latency during checkpointing vs average (baseline)", Fig3c},
		{"fig8a", "Redundant writes vs checkpoint interval", Fig8a},
		{"fig8b", "GC invocations vs write-query count", Fig8b},
		{"lifetime", "Flash lifetime projection (Equation 1)", Lifetime},
		{"fig9", "Tail latency (99.9th / 99.99th percentile)", Fig9},
		{"fig10", "Checkpointing time vs thread count (locked)", Fig10},
		{"fig11a", "Average query throughput vs threads (workloads A/F/WO)", Fig11a},
		{"fig11b", "Average query latency vs threads (workloads A/F/WO)", Fig11b},
		{"fig12", "Sensitivity to checkpoint interval (baseline vs Check-In)", Fig12},
		{"fig13a", "Query throughput vs mapping unit size", Fig13a},
		{"fig13b", "Space overhead of Check-In vs ISC-C (record-size patterns)", Fig13b},
		{"shardsched", "Cross-shard checkpoint scheduling under multi-tenant open-loop traffic", ShardSched},
		{"compaction", "Check-In vs host-side checkpointing under LSM compaction traffic", Compaction},
		{"ablation", "Design-decision ablations beyond the paper's figures", Ablation},
		{"compare", "Strict trace-replay comparison across all five configurations", Compare},
		{"recovery", "Crash recovery and sudden-power-off recovery per configuration", Recovery},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0)
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// baseConfig is the shared starting configuration for experiment runs.
func baseConfig(o Opts, s checkin.Strategy) checkin.Config {
	cfg := checkin.DefaultConfig()
	cfg.Strategy = s
	cfg.Seed = o.Seed
	cfg.Keys = 50_000
	cfg.CheckpointInterval = 300 * time.Millisecond
	cfg.Domains = o.Domains
	cfg.Engine = o.Engine
	cfg.FTLMap = o.FTLMap
	cfg.CMTFill = o.CMTFill
	cfg.CMTCleanWindow = o.CMTCleanWindow
	cfg.RemapBatch = o.RemapBatch
	if o.Errors != "" && o.Errors != "off" {
		p, err := checkin.ParseErrorProfile(o.Errors)
		if err != nil {
			// Callers (cmd/checkin-bench, tests) validate the name up front;
			// reaching here is a programming error, not a run-time condition.
			panic(err)
		}
		cfg = p.Apply(cfg)
	}
	return cfg
}

// runJobs executes an experiment's independent run points on the worker
// pool. Results come back in submission order, so assembly loops can index
// them positionally; any failed run aborts the whole experiment.
//
// Runs go through the full acceleration stack unless Opts.Snapshots ==
// "off": load-phase snapshot forking plus whole-run memoization, so
// identical (config, spec) points shared between experiments — e.g. fig11a
// and fig11b render the same underlying sweep — simulate once per process.
// Memoized results carry a nil DB; experiments that inspect the post-run DB
// must use runJobsKeepDB.
func runJobs(o Opts, jobs []runner.Job) ([]runner.Result, error) {
	rs, err := runner.RunAllWith(jobs, runner.Options{
		Parallelism: o.Parallelism,
		Snapshots:   o.snapshotsOn(),
		Memo:        o.snapshotsOn(),
	})
	if o.Timing {
		recordTimings(rs)
	}
	return rs, err
}

// runJobsKeepDB is runJobs without memoization: every result keeps its DB
// for post-run inspection (recovery simulation, energy and lifetime
// accounting). Snapshot forking still applies.
func runJobsKeepDB(o Opts, jobs []runner.Job) ([]runner.Result, error) {
	rs, err := runner.RunAllWith(jobs, runner.Options{
		Parallelism: o.Parallelism,
		Snapshots:   o.snapshotsOn(),
	})
	if o.Timing {
		recordTimings(rs)
	}
	return rs, err
}

// CellTiming is the wall-clock breakdown of one experiment cell (one
// simulation run), in the order cells were submitted to the worker pool.
type CellTiming struct {
	Cell     string
	Load     time.Duration
	Run      time.Duration
	Memoized bool
}

// cellTimings buffers breakdowns across runJobs calls; an experiment may
// issue several sweeps, and sweeps may run on concurrent workers — results
// are appended per completed sweep in submission order, so drains are
// deterministic.
var cellTimings struct {
	mu   sync.Mutex
	rows []CellTiming
}

func recordTimings(rs []runner.Result) {
	cellTimings.mu.Lock()
	defer cellTimings.mu.Unlock()
	for i := range rs {
		cellTimings.rows = append(cellTimings.rows, CellTiming{
			Cell:     rs[i].Name,
			Load:     rs[i].Timing.Load,
			Run:      rs[i].Timing.Run,
			Memoized: rs[i].Timing.Memoized,
		})
	}
}

// DrainTimings returns the cell timings collected since the previous drain
// (under Opts.Timing) and clears the buffer. Callers drain once per
// experiment to attribute cells to the experiment that ran them.
func DrainTimings() []CellTiming {
	cellTimings.mu.Lock()
	defer cellTimings.mu.Unlock()
	rows := cellTimings.rows
	cellTimings.rows = nil
	return rows
}

func f2(v float64) string    { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string    { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string    { return fmt.Sprintf("%.0f", v) }
func d(v uint64) string      { return fmt.Sprintf("%d", v) }
func ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }
