package harness

import (
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/runner"
)

// Recovery measures crash-recovery behaviour per configuration (Section
// III-G): how much journal a crash leaves to replay, how long the engine
// recovery scan takes, and the device's own sudden-power-off recovery
// (OOB mapping-table rebuild) time — which must reconstruct the mapping
// with zero mismatches.
func Recovery(o Opts) (*Table, error) {
	o = o.withDefaults()
	t := &Table{ID: "recovery", Title: "Crash recovery and device SPOR",
		Columns: []string{"strategy", "logs replayed", "journal KB read", "engine recovery", "SPOR scan", "SPOR mismatches"}}
	jobs := make([]runner.Job, 0, len(checkin.Strategies))
	for _, s := range checkin.Strategies {
		cfg := baseConfig(o, s)
		cfg.CheckpointInterval = 300 * time.Millisecond
		jobs = append(jobs, runner.Job{
			Name:   "recovery/" + s.String(),
			Config: cfg,
			Spec: checkin.RunSpec{
				Threads:      o.maxThreads(),
				TotalQueries: o.queries(40_000),
				Mix:          checkin.WorkloadWO,
				Zipfian:      true,
			},
		})
	}
	rs, err := runJobsKeepDB(o, jobs)
	if err != nil {
		return nil, err
	}
	// recovery/SPOR simulation mutates each run's private DB, so it stays in
	// the sequential assembly phase — the note ordering is part of the
	// byte-identical output contract
	for i, s := range checkin.Strategies {
		db := rs[i].DB
		rep := db.SimulateRecovery()
		// validate before reporting: recovery must equal the durable state
		for k, v := range db.DurableVersions() {
			if rep.Recovered[k] != v {
				t.Notes = append(t.Notes, s.String()+": RECOVERY MISMATCH (bug)")
				break
			}
		}
		spor := db.SimulateSPOR()
		t.AddRow(s.String(),
			d(uint64(rep.ReplayedLogs)),
			d(uint64(rep.JournalBytesRead/1024)),
			rep.RecoveryTime.String(),
			spor.Duration.String(),
			d(uint64(spor.Mismatches)))
	}
	t.Notes = append(t.Notes,
		"engine recovery replays only the journal tail after the last checkpoint; SPOR rebuilds the FTL map from OOB records")
	return t, nil
}
