package harness

import (
	"sync"

	checkin "github.com/checkin-kv/checkin"
)

// traceKey identifies one recorded operation stream. Sizer dynamic types
// used by the harness are comparable (value structs or pointers), so the
// interface value itself participates in the key: the same sizer object —
// or an equal value — yields the same trace.
type traceKey struct {
	keys    int64
	sizer   checkin.Sizer
	mix     checkin.Mix
	zipfian bool
	n       int
	seed    int64
}

var traceMemo = struct {
	mu sync.Mutex
	m  map[traceKey]*checkin.Trace
}{m: map[traceKey]*checkin.Trace{}}

// recordWorkload is checkin.RecordWorkload memoized per process: experiment
// invocations that regenerate the same stream (identical keys, sizer, mix,
// distribution, length and seed) share one trace. Replay only reads traces,
// so the share is race-free under parallel workers; the mutex covers map
// access only — generation happens outside it and a losing racer's trace is
// simply discarded (generation is deterministic, so both are identical).
func recordWorkload(keys int64, sizer checkin.Sizer, mix checkin.Mix, zipfian bool, n int, seed int64) (*checkin.Trace, error) {
	k := traceKey{keys: keys, sizer: sizer, mix: mix, zipfian: zipfian, n: n, seed: seed}
	traceMemo.mu.Lock()
	tr := traceMemo.m[k]
	traceMemo.mu.Unlock()
	if tr != nil {
		return tr, nil
	}
	tr, err := checkin.RecordWorkload(keys, sizer, mix, zipfian, n, seed)
	if err != nil {
		return nil, err
	}
	traceMemo.mu.Lock()
	if prev := traceMemo.m[k]; prev != nil {
		tr = prev
	} else {
		traceMemo.m[k] = tr
	}
	traceMemo.mu.Unlock()
	return tr, nil
}
