package harness

import (
	"runtime"
	"strings"
	"testing"
)

// renderSample renders the golden five-experiment sample (machine config,
// amplification, redundant writes, record-size patterns, recovery/SPOR)
// under o and returns the bytes checkin-bench would print.
func renderSample(t *testing.T, o Opts) string {
	t.Helper()
	var sb strings.Builder
	for _, id := range goldenExperiments {
		exp, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := exp.Run(o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		tab.Render(&sb)
	}
	return sb.String()
}

// TestDomainsDeterminismMatrix is the kernel-parallelism safety net: the
// rendered output of the five-experiment golden sample must be byte-equal
// with the per-channel event domains on and off, across seeds and with the
// NAND error model loaded. CI runs this test at -cpu 1,4 (GOMAXPROCS is the
// axis the parallel kernel must be invariant to) and under -race.
//
// Snapshots are forced off: whole-run memoization keys on a fingerprint
// that deliberately excludes Domains (the setting cannot change results),
// so with the cache live the domains-on pass would just replay domains-off
// results and the comparison would be vacuous.
func TestDomainsDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism matrix in -short mode")
	}
	t.Logf("matrix at GOMAXPROCS=%d", runtime.GOMAXPROCS(0))
	for _, seed := range []int64{1, 2} {
		base := Opts{Scale: 0.02, Threads: []int{4, 8}, Seed: seed, Snapshots: "off", Domains: "off"}
		want := renderSample(t, base)
		on := base
		on.Domains = "on"
		if got := renderSample(t, on); got != want {
			t.Fatalf("seed %d: domains on diverges from off\n--- off ---\n%s--- on ---\n%s", seed, want, got)
		}
	}

	heavy := Opts{Scale: 0.02, Threads: []int{4, 8}, Seed: 1, Snapshots: "off", Domains: "off", Errors: "heavy"}
	want := renderSample(t, heavy)
	heavyOn := heavy
	heavyOn.Domains = "on"
	if got := renderSample(t, heavyOn); got != want {
		t.Fatalf("errors=heavy: domains on diverges from off\n--- off ---\n%s--- on ---\n%s", want, got)
	}
}
