package harness

import (
	"fmt"
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/shard"
	"github.com/checkin-kv/checkin/internal/sim"
)

// shardStrategies is the full five-configuration sweep of the paper.
var shardStrategies = []checkin.Strategy{
	checkin.StrategyBaseline,
	checkin.StrategyISCA,
	checkin.StrategyISCB,
	checkin.StrategyISCC,
	checkin.StrategyCheckIn,
}

// ShardSched is the multi-device scale-out experiment: every checkpointing
// strategy under every cross-shard checkpoint scheduling policy, driven by
// heavily-skewed multi-tenant open-loop traffic with per-tenant admission
// control. Rows are per (strategy, policy, tenant); the quantities to
// compare are the write tails (p99/p99.9) and SLO misses across policies —
// synchronized cuts stack every device's checkpoint traffic, staggering
// spreads it, and the globally consistent cut buys its frontier with a
// dequeue stall the tails pay for.
func ShardSched(o Opts) (*Table, error) {
	o = o.withDefaults()
	shards := o.Shards
	if shards == 0 {
		shards = 4
	}
	tenants := o.Tenants
	if tenants == 0 {
		tenants = 3
	}
	spec := o.Arrival
	if spec == "" {
		spec = "poisson:150000"
	}
	arrival, err := shard.ParseArrival(spec)
	if err != nil {
		return nil, err
	}
	arrival.Tenants = shard.DefaultTenants(tenants, 2000)
	scheds := shard.Scheds()
	if o.CkSched != "" {
		scheds = []string{o.CkSched}
	}
	ops := o.queries(40_000)

	t := &Table{
		ID:    "shardsched",
		Title: "Cross-shard checkpoint scheduling under multi-tenant open-loop traffic",
		Columns: []string{"strategy", "cksched", "tenant", "offered", "shed", "done",
			"p50 µs", "p99 µs", "p99.9 µs", "slo ms", "miss %"},
	}
	us := func(v sim.VTime) string { return fmt.Sprintf("%.0f", float64(v)/1000) }
	for _, strat := range shardStrategies {
		for _, sched := range scheds {
			cfg := baseConfig(o, strat)
			// Open-loop traffic spans ops/rate of virtual time (~267ms at
			// full scale); a 20ms cadence lands a dozen cuts inside it.
			cfg.CheckpointInterval = 20 * time.Millisecond
			sc := shard.Config{
				Shards:   shards,
				Base:     cfg,
				Arrival:  arrival,
				TotalOps: ops,
				Sched:    sched,
				// Admit 95% of the offered rate with a shallow burst so the
				// shed column is live under the same pressure in every cell.
				AdmitRatePerSec: arrival.RatePerSec * 0.95,
				AdmitBurst:      50,
				Seed:            o.Seed,
			}
			if o.Parallelism == 1 {
				sc.Parallel = "off"
			}
			s, err := shard.Open(sc)
			if err != nil {
				return nil, err
			}
			rep, err := s.Run()
			if err != nil {
				return nil, fmt.Errorf("%v/%s: %w", strat, sched, err)
			}
			if o.Timing {
				recordShardTimings(fmt.Sprintf("%v/%s", strat, sched), rep)
			}
			for _, tr := range rep.Tenants {
				t.AddRow(strat.String(), sched, tr.Name,
					d(tr.Offered), d(tr.Shed), d(tr.Done),
					us(tr.P50), us(tr.P99), us(tr.P999),
					fmt.Sprintf("%.0f", float64(tr.SLO)/float64(sim.Millisecond)),
					fmt.Sprintf("%.2f", tr.SLOMissPct))
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d shards x %d tenants, arrival %s, %d offered ops/cell, admission at 95%% of offered rate", shards, tenants, spec, ops),
		"open-loop latency includes queueing delay; compare write tails and miss% across cksched policies per strategy")
	return t, nil
}

// recordShardTimings feeds the -timing breakdown: one row for the shared
// template load and one per shard (fork wall vs in-window run wall — the
// imbalance view).
func recordShardTimings(cell string, rep *shard.Report) {
	cellTimings.mu.Lock()
	defer cellTimings.mu.Unlock()
	cellTimings.rows = append(cellTimings.rows, CellTiming{
		Cell: cell + "/tmpl", Load: rep.LoadWall,
	})
	for _, sr := range rep.ShardRows {
		cellTimings.rows = append(cellTimings.rows, CellTiming{
			Cell: fmt.Sprintf("%s/s%d", cell, sr.ID),
			Load: sr.LoadWall,
			Run:  sr.RunWall,
		})
	}
}
