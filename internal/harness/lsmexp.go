package harness

import (
	"fmt"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/lsm"
	"github.com/checkin-kv/checkin/internal/runner"
)

// lsmMemtableEntries bounds the memtable for the compaction experiment,
// scaled with the trace so a run crosses many flush epochs and the
// compaction ladder actually fires at every Opts.Scale — the point of the
// experiment is checkpoint cost under background merge traffic, not a
// memtable that swallows the whole workload.
func lsmMemtableEntries(traceOps int) int {
	n := traceOps / 16
	switch {
	case n < 128:
		return 128
	case n > 2048:
		return 2048
	}
	return n
}

// lsmPolicies are the compaction policies the experiment sweeps.
var lsmPolicies = []string{"leveled", "tiered"}

// Compaction compares Check-In against the host-side checkpoint strategies
// when the storage engine is an LSM tree: every memtable flush is a
// checkpoint epoch (Baseline writes the run from the host; ISC-A/B copy WAL
// records device-side; ISC-C/Check-In remap WAL extents onto the run), and
// background compaction competes with queries for the same flash. One
// recorded write-only trace drives every cell — the journal engine rides
// along as the reference row — so the table isolates what the engine
// architecture and the checkpoint mechanism each cost under identical
// inputs.
func Compaction(o Opts) (*Table, error) {
	o = o.withDefaults()
	t := &Table{ID: "compaction",
		Title: "Check-In vs host-side checkpointing under LSM compaction traffic (write-only, zipfian)",
		Columns: []string{"engine", "strategy", "kqps", "mean µs", "ckpt ms",
			"redundant", "programs", "flushes", "compactions", "merge MB"}}

	cfg0 := baseConfig(o, checkin.StrategyCheckIn)
	trace, err := recordWorkload(cfg0.Keys, cfg0.Records, checkin.WorkloadWO,
		true, int(o.queries(40_000)), o.Seed)
	if err != nil {
		return nil, err
	}

	type cell struct {
		engine string // "journal" or "lsm/<policy>"
		policy string
		s      checkin.Strategy
	}
	cells := []cell{{engine: "journal", s: checkin.StrategyCheckIn}}
	for _, policy := range lsmPolicies {
		for _, s := range checkin.Strategies {
			cells = append(cells, cell{engine: "lsm/" + policy, policy: policy, s: s})
		}
	}

	jobs := make([]runner.Job, 0, len(cells))
	for _, c := range cells {
		cfg := baseConfig(o, c.s)
		if c.policy != "" {
			cfg.Engine = "lsm"
			cfg.Compaction = c.policy
			cfg.MemtableEntries = lsmMemtableEntries(len(trace.Ops))
		}
		jobs = append(jobs, runner.Job{
			Name:   fmt.Sprintf("compaction/%s/%s", c.engine, c.s),
			Config: cfg,
			Spec: checkin.RunSpec{
				Threads:      o.maxThreads(),
				TotalQueries: int64(len(trace.Ops)),
				Trace:        trace,
			},
		})
	}
	rs, err := runJobsKeepDB(o, jobs)
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		db, m := rs[i].DB, rs[i].Metrics
		flushes, compactions, mergeMB := "-", "-", "-"
		if le, ok := db.Host().(*lsm.Engine); ok {
			st := le.Stats()
			flushes = d(st.Flushes)
			compactions = d(st.Compactions)
			mergeMB = f1(float64(st.CompactionRead+st.CompactionWrite) / (1 << 20))
		}
		t.AddRow(c.engine, c.s.String(),
			f1(m.ThroughputQPS()/1e3),
			f1(float64(m.MeanLatency())/1e3),
			f1(float64(m.MeanCheckpointTime())/1e6),
			d(m.RedundantWrites()),
			d(m.FlashPrograms()),
			flushes, compactions, mergeMB)
	}
	t.Notes = append(t.Notes,
		"every cell served the exact same recorded operation stream; LSM rows flush each memtable epoch through the named strategy while compaction merges runs host-side",
		"'merge MB' counts host-link bytes moved by compaction (read + write); the journal row has no flush/merge machinery")
	return t, nil
}
