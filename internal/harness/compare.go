package harness

import (
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/runner"
)

// Compare replays one recorded operation stream — byte-identical inputs —
// against all five configurations, the strictest apples-to-apples
// comparison the system supports. It summarizes the full cost picture per
// configuration: throughput, mean and tail latency, duplicate writes,
// flash programs, checkpoint time and flash energy.
func Compare(o Opts) (*Table, error) {
	o = o.withDefaults()
	t := &Table{ID: "compare", Title: "Trace-replay comparison (identical inputs, workload A, zipfian)",
		Columns: []string{"strategy", "kqps", "mean µs", "p99.9 ms", "redundant", "programs", "ckpt ms", "energy mJ"}}

	cfg0 := baseConfig(o, checkin.StrategyCheckIn)
	trace, err := recordWorkload(cfg0.Keys, cfg0.Records, checkin.WorkloadA,
		true, int(o.queries(60_000)), o.Seed)
	if err != nil {
		return nil, err
	}

	// all five jobs share the recorded trace; replay only reads it, so the
	// share is race-free under parallel execution
	jobs := make([]runner.Job, 0, len(checkin.Strategies))
	for _, s := range checkin.Strategies {
		cfg := baseConfig(o, s)
		cfg.CheckpointInterval = 300 * time.Millisecond
		jobs = append(jobs, runner.Job{
			Name:   "compare/" + s.String(),
			Config: cfg,
			Spec: checkin.RunSpec{
				Threads:      o.maxThreads(),
				TotalQueries: int64(len(trace.Ops)),
				Trace:        trace,
			},
		})
	}
	rs, err := runJobsKeepDB(o, jobs)
	if err != nil {
		return nil, err
	}
	for i, s := range checkin.Strategies {
		db, m := rs[i].DB, rs[i].Metrics
		t.AddRow(s.String(),
			f1(m.ThroughputQPS()/1e3),
			f1(float64(m.MeanLatency())/1e3),
			f1(float64(m.AllLat.Percentile(99.9))/1e6),
			d(m.RedundantWrites()),
			d(m.FlashPrograms()),
			f1(float64(m.MeanCheckpointTime())/1e6),
			f1(db.FlashEnergyMJ()))
	}
	t.Notes = append(t.Notes,
		"every configuration served the exact same operation stream (recorded trace replay)")
	return t, nil
}
