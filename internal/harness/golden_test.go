package harness

import (
	"os"
	"strings"
	"testing"
)

// goldenExperiments is the five-experiment sample the golden file pins: a
// spread over the table kinds (machine config, amplification, redundant
// writes, record-size patterns, recovery/SPOR).
var goldenExperiments = []string{"table1", "fig3a", "fig8b", "fig13b", "recovery"}

const goldenPath = "testdata/bench_golden.txt"

// TestGoldenBenchOutput pins the rendered checkin-bench output for a small
// sample byte-for-byte. The simulator is deterministic, so ANY diff here
// means observable behaviour changed — timing model, FTL policy, metrics
// arithmetic or table formatting. An intentional change regenerates the
// file with:
//
//	CHECKIN_UPDATE_GOLDEN=1 go test ./internal/harness -run TestGoldenBenchOutput
//
// and the new golden diff rides along in the same commit, making the
// behaviour change visible in review.
func TestGoldenBenchOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep in -short mode")
	}
	var sb strings.Builder
	for _, id := range goldenExperiments {
		exp, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := exp.Run(tinyOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		tab.Render(&sb)
	}
	got := sb.String()

	if os.Getenv("CHECKIN_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file regenerated (%d bytes)", len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file unreadable (%v) — regenerate with CHECKIN_UPDATE_GOLDEN=1", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("bench output diverged from golden at line %d:\n  got:  %q\n  want: %q\n"+
				"intentional change? regenerate with CHECKIN_UPDATE_GOLDEN=1 go test ./internal/harness -run TestGoldenBenchOutput",
				i+1, g, w)
		}
	}
	t.Fatal("bench output diverged from golden (line endings?)")
}
