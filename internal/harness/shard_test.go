package harness

import (
	"strings"
	"testing"
)

// TestShardSchedTable: the experiment renders one row per strategy x policy
// x tenant, honors the CkSched restriction, and reproduces byte-identically.
func TestShardSchedTable(t *testing.T) {
	o := Opts{Scale: 0.02, Seed: 1, Shards: 2, Tenants: 2, CkSched: "sync"}
	tbl, err := ShardSched(o)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(shardStrategies) * 1 * o.Tenants; len(tbl.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(tbl.Rows), want)
	}
	for _, row := range tbl.Rows {
		if row[1] != "sync" {
			t.Fatalf("CkSched restriction leaked: row policy %q", row[1])
		}
	}
	var a, b strings.Builder
	tbl.Render(&a)
	tbl2, err := ShardSched(o)
	if err != nil {
		t.Fatal(err)
	}
	tbl2.Render(&b)
	if a.String() != b.String() {
		t.Fatal("shardsched table not reproducible across identical runs")
	}
}

// TestShardSchedBadSpecs: invalid arrival and policy specs surface as
// errors, not panics.
func TestShardSchedBadSpecs(t *testing.T) {
	if _, err := ShardSched(Opts{Scale: 0.02, Arrival: "bursty:1000"}); err == nil {
		t.Error("bad arrival spec accepted")
	}
	if _, err := ShardSched(Opts{Scale: 0.02, CkSched: "roundrobin"}); err == nil {
		t.Error("bad cksched accepted")
	}
}
