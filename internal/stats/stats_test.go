package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram returned non-zero stats")
	}
	if h.Percentile(99) != 0 {
		t.Error("empty histogram percentile should be 0")
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below 64 are recorded exactly (bucket width 1).
	var h Histogram
	for v := uint64(0); v < 64; v++ {
		h.Record(v)
	}
	if h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("min/max = %d/%d, want 0/63", h.Min(), h.Max())
	}
	if got := h.Percentile(50); got != 31 && got != 32 {
		t.Errorf("p50 = %d, want ~32", got)
	}
	if got := h.Percentile(100); got != 63 {
		t.Errorf("p100 = %d, want 63", got)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.RecordN(5000, 1000)
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	for _, p := range []float64{1, 50, 99, 99.99, 100} {
		got := h.Percentile(p)
		if got < 5000 || got > 5000+5000/32 {
			t.Errorf("p%v = %d, want within 3%% above 5000", p, got)
		}
	}
	if h.Mean() != 5000 {
		t.Errorf("Mean = %v, want 5000", h.Mean())
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	// Compare against exact percentiles of a stored sample set.
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	vals := make([]uint64, 100000)
	for i := range vals {
		// Log-uniform over ~6 decades, like latencies.
		v := uint64(math.Exp(rng.Float64()*13)) + 1
		vals[i] = v
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{50, 90, 99, 99.9, 99.99} {
		rank := int(math.Ceil(p/100*float64(len(vals)))) - 1
		exact := vals[rank]
		got := h.Percentile(p)
		// Upper-bound estimate within one bucket (~3.2 % relative).
		if got < exact || float64(got) > float64(exact)*1.04+1 {
			t.Errorf("p%v = %d, exact %d (ratio %.4f)", p, got, exact, float64(got)/float64(exact))
		}
	}
}

func TestHistogramMinMaxSumMean(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{10, 20, 30, 40} {
		h.Record(v)
	}
	if h.Min() != 10 || h.Max() != 40 || h.Sum() != 100 || h.Mean() != 25 {
		t.Errorf("min/max/sum/mean = %d/%d/%d/%v", h.Min(), h.Max(), h.Sum(), h.Mean())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(100)
	a.Record(200)
	b.Record(50)
	b.Record(400)
	a.Merge(&b)
	if a.Count() != 4 || a.Min() != 50 || a.Max() != 400 || a.Sum() != 750 {
		t.Errorf("after merge: count=%d min=%d max=%d sum=%d", a.Count(), a.Min(), a.Max(), a.Sum())
	}
	var empty Histogram
	a.Merge(&empty) // must be a no-op
	if a.Count() != 4 {
		t.Error("merging an empty histogram changed the count")
	}
	empty.Merge(&a)
	if empty.Count() != 4 || empty.Min() != 50 {
		t.Error("merging into empty histogram lost state")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(123456)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset did not clear the histogram")
	}
}

func TestHistogramPercentileEdges(t *testing.T) {
	var h Histogram
	h.Record(1000)
	h.Record(2000)
	if got := h.Percentile(0); got != 1000 {
		t.Errorf("p0 = %d, want min", got)
	}
	if got := h.Percentile(200); got < 2000 {
		t.Errorf("p>100 = %d, want >= max bucket", got)
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	// Property: percentile is monotone non-decreasing in p, and every
	// recorded value is within [Min, Max].
	err := quick.Check(func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Record(uint64(v))
		}
		prev := uint64(0)
		for p := 1.0; p <= 100; p += 7.3 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Percentile(100) >= h.Max() || h.Percentile(100) <= h.Max()
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestHistogramNeverUnderestimatesUpperBound(t *testing.T) {
	// Property: Percentile(100) is >= every recorded value's bucket low,
	// and capped at the true max.
	err := quick.Check(func(raw []uint64) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		var max uint64
		for _, v := range raw {
			v %= 1 << 40
			h.Record(v)
			if v > max {
				max = v
			}
		}
		return h.Percentile(100) == max
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 10000; i++ {
		h.Record(i)
	}
	s := h.Summarize()
	if s.Count != 10000 {
		t.Errorf("Count = %d", s.Count)
	}
	checks := []struct {
		name  string
		got   uint64
		exact float64
	}{
		{"P50", s.P50, 5000}, {"P90", s.P90, 9000}, {"P99", s.P99, 9900},
		{"P999", s.P999, 9990}, {"P9999", s.P9999, 9999},
	}
	for _, c := range checks {
		if float64(c.got) < c.exact || float64(c.got) > c.exact*1.04 {
			t.Errorf("%s = %d, want ~%.0f", c.name, c.got, c.exact)
		}
	}
	if s.Min != 1 || s.Max != 10000 {
		t.Errorf("Min/Max = %d/%d", s.Min, s.Max)
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.Inc("flash.reads")
	c.Add("flash.reads", 9)
	c.Add("flash.programs", 4)
	if c.Get("flash.reads") != 10 || c.Get("flash.programs") != 4 {
		t.Errorf("counters wrong: %v %v", c.Get("flash.reads"), c.Get("flash.programs"))
	}
	if c.Get("missing") != 0 {
		t.Error("missing counter not zero")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "flash.programs" || names[1] != "flash.reads" {
		t.Errorf("Names = %v", names)
	}
	var d Counters
	d.Add("flash.reads", 5)
	d.Add("gc.count", 2)
	c.Merge(&d)
	if c.Get("flash.reads") != 15 || c.Get("gc.count") != 2 {
		t.Error("merge failed")
	}
	if s := c.String(); s == "" {
		t.Error("String empty")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "baseline"
	s.Append(4, 100)
	s.Append(8, 220)
	s.Append(16, 460)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if y, ok := s.YAt(8); !ok || y != 220 {
		t.Errorf("YAt(8) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Error("YAt(99) should be missing")
	}
	s.Normalize(4)
	if s.Y[0] != 1 || s.Y[1] != 2.2 || s.Y[2] != 4.6 {
		t.Errorf("normalized Y = %v", s.Y)
	}
	// Normalizing by a missing or zero point is a no-op.
	before := append([]float64(nil), s.Y...)
	s.Normalize(1234)
	for i := range before {
		if s.Y[i] != before[i] {
			t.Error("Normalize by missing x mutated series")
		}
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Property: every value falls inside [bucketLow, bucketHigh] of its
	// own bucket.
	err := quick.Check(func(v uint64) bool {
		v %= 1 << 50
		major, minor := bucketOf(v)
		return bucketLow(major, minor) <= v && v <= bucketHigh(major, minor)
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Error(err)
	}
}
