package stats

import (
	"strings"
	"testing"
)

func TestTimelineSampleAndSeries(t *testing.T) {
	tl := NewTimeline("qps", "ckpt")
	tl.Sample(0, 100, 0)
	tl.Sample(1e9, 120, 1)
	tl.Sample(2e9, 90, 0)
	if tl.Len() != 3 {
		t.Fatalf("Len = %d", tl.Len())
	}
	at, vals := tl.At(1)
	if at != 1e9 || vals[0] != 120 || vals[1] != 1 {
		t.Errorf("At(1) = %d %v", at, vals)
	}
	s, err := tl.Series("qps")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.X[1] != 1.0 || s.Y[2] != 90 {
		t.Errorf("series = %+v", s)
	}
	if _, err := tl.Series("missing"); err == nil {
		t.Error("missing series accepted")
	}
	if names := tl.Names(); len(names) != 2 || names[0] != "qps" {
		t.Errorf("Names = %v", names)
	}
}

func TestTimelineSampleArityPanics(t *testing.T) {
	tl := NewTimeline("a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong arity did not panic")
		}
	}()
	tl.Sample(0, 1)
}

func TestTimelineCSV(t *testing.T) {
	tl := NewTimeline("x")
	tl.Sample(5e8, 42)
	var sb strings.Builder
	if err := tl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "time_s,x\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
	if !strings.Contains(out, "0.500000,42") {
		t.Errorf("CSV row wrong: %q", out)
	}
}

func TestSparkline(t *testing.T) {
	tl := NewTimeline("v")
	for i := 0; i < 64; i++ {
		tl.Sample(uint64(i)*1e6, float64(i%8))
	}
	sp, err := tl.Sparkline("v", 16)
	if err != nil {
		t.Fatal(err)
	}
	if len([]rune(sp)) != 16 {
		t.Errorf("sparkline width = %d, want 16", len([]rune(sp)))
	}
	// Flat series renders the lowest level everywhere.
	flat := NewTimeline("v")
	flat.Sample(0, 5)
	flat.Sample(1, 5)
	sp2, err := flat.Sparkline("v", 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp2 != "▁▁" {
		t.Errorf("flat sparkline = %q", sp2)
	}
	// Empty series renders empty.
	empty := NewTimeline("v")
	if sp3, _ := empty.Sparkline("v", 8); sp3 != "" {
		t.Errorf("empty sparkline = %q", sp3)
	}
	if _, err := tl.Sparkline("nope", 8); err == nil {
		t.Error("unknown series accepted")
	}
}
