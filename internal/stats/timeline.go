package stats

import (
	"fmt"
	"io"
	"strings"
)

// DefaultTimelineCap bounds the rows a Timeline retains. Far above what any
// rendered figure resolves, yet small enough that a multi-hour trace run
// sampling every few milliseconds stays at a fixed memory footprint.
const DefaultTimelineCap = 4096

// Timeline collects fixed-interval samples of named values over a run —
// windowed throughput, in-flight checkpoint flags, backlog depths — for
// rendering how a metric evolves (e.g. the throughput dip a baseline
// checkpoint causes). Samples are appended by the simulation at virtual
// times; rendering is offline.
//
// Memory is bounded: when the retained rows reach the cap, adjacent pairs
// merge (value mean, window-end timestamp) and the timeline halves its
// resolution, folding every subsequent pair of input samples into one row.
// Runs shorter than the cap keep every sample exactly.
type Timeline struct {
	names []string
	index map[string]int
	rows  []timelineRow
	cap   int // retained-row bound (even); reaching it halves resolution
	// stride is how many input samples fold into one retained row; it
	// doubles at every downsample. acc/accAt/accN hold the bucket being
	// filled: running value sums, the latest sample time, samples so far.
	stride int
	acc    []float64
	accAt  uint64
	accN   int
}

type timelineRow struct {
	atNS uint64
	vals []float64
}

// NewTimeline creates a timeline for the named series, retaining at most
// DefaultTimelineCap rows.
func NewTimeline(names ...string) *Timeline {
	t := &Timeline{
		names:  names,
		index:  make(map[string]int, len(names)),
		cap:    DefaultTimelineCap,
		stride: 1,
		acc:    make([]float64, len(names)),
	}
	for i, n := range names {
		t.index[n] = i
	}
	return t
}

// Bound sets the retained-row cap (rounded up to an even minimum of 2).
// Call before sampling; lowering the cap mid-run only takes effect at the
// next completed row.
func (t *Timeline) Bound(cap int) {
	if cap < 2 {
		cap = 2
	}
	if cap%2 == 1 {
		cap++
	}
	t.cap = cap
}

// Names returns the series names.
func (t *Timeline) Names() []string { return t.names }

// Sample folds one row of values at virtual time atNS into the timeline.
// Values must be in series order (length-checked).
func (t *Timeline) Sample(atNS uint64, vals ...float64) {
	if len(vals) != len(t.names) {
		panic(fmt.Sprintf("stats: timeline sample has %d values, want %d", len(vals), len(t.names)))
	}
	for i, v := range vals {
		t.acc[i] += v
	}
	t.accAt = atNS
	t.accN++
	if t.accN >= t.stride {
		t.flushAcc()
	}
}

// flushAcc completes the current bucket as one retained row and downsamples
// if the cap was reached.
func (t *Timeline) flushAcc() {
	row := timelineRow{atNS: t.accAt, vals: make([]float64, len(t.acc))}
	n := float64(t.accN)
	for i, sum := range t.acc {
		row.vals[i] = sum / n
		t.acc[i] = 0
	}
	t.accN = 0
	t.rows = append(t.rows, row)
	for len(t.rows) >= t.cap {
		t.downsample()
	}
}

// downsample merges adjacent row pairs in place — values average, the
// window-end timestamp survives — and doubles the input stride.
func (t *Timeline) downsample() {
	half := len(t.rows) / 2
	for i := 0; i < half; i++ {
		a, b := t.rows[2*i], t.rows[2*i+1]
		for j := range a.vals {
			a.vals[j] = (a.vals[j] + b.vals[j]) / 2
		}
		a.atNS = b.atNS
		t.rows[i] = a
	}
	if len(t.rows)%2 == 1 { // odd trailing row (cap lowered mid-run) carries over
		t.rows[half] = t.rows[len(t.rows)-1]
		half++
	}
	t.rows = t.rows[:half]
	t.stride *= 2
}

// Len returns the number of observable rows, including the partially filled
// bucket if any samples are pending in it.
func (t *Timeline) Len() int {
	n := len(t.rows)
	if t.accN > 0 {
		n++
	}
	return n
}

// At returns the i-th row (window-end time in ns, values in series order).
// The last row may be a partially filled bucket, reported at its running
// mean.
func (t *Timeline) At(i int) (uint64, []float64) {
	if i < len(t.rows) {
		return t.rows[i].atNS, t.rows[i].vals
	}
	vals := make([]float64, len(t.acc))
	n := float64(t.accN)
	for j, sum := range t.acc {
		vals[j] = sum / n
	}
	return t.accAt, vals
}

// Series extracts one named series as (x=seconds, y=value) points.
func (t *Timeline) Series(name string) (*Series, error) {
	idx, ok := t.index[name]
	if !ok {
		return nil, fmt.Errorf("stats: timeline has no series %q", name)
	}
	s := &Series{Name: name}
	for i, n := 0, t.Len(); i < n; i++ {
		atNS, vals := t.At(i)
		s.Append(float64(atNS)/1e9, vals[idx])
	}
	return s, nil
}

// WriteCSV emits the timeline as CSV with a time_s column first.
func (t *Timeline) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time_s,%s\n", strings.Join(t.names, ",")); err != nil {
		return err
	}
	for i, n := 0, t.Len(); i < n; i++ {
		atNS, vals := t.At(i)
		cells := make([]string, 0, len(vals)+1)
		cells = append(cells, fmt.Sprintf("%.6f", float64(atNS)/1e9))
		for _, v := range vals {
			cells = append(cells, fmt.Sprintf("%g", v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders one series as a compact unicode sparkline (reporting
// aid for terminal output).
func (t *Timeline) Sparkline(name string, width int) (string, error) {
	s, err := t.Series(name)
	if err != nil {
		return "", err
	}
	if s.Len() == 0 {
		return "", nil
	}
	if width <= 0 || width > s.Len() {
		width = s.Len()
	}
	// bucket-average down to width points
	buckets := make([]float64, width)
	counts := make([]int, width)
	for i := 0; i < s.Len(); i++ {
		b := i * width / s.Len()
		buckets[b] += s.Y[i]
		counts[b]++
	}
	min, max := 0.0, 0.0
	first := true
	for i := range buckets {
		if counts[i] > 0 {
			buckets[i] /= float64(counts[i])
			if first || buckets[i] < min {
				min = buckets[i]
			}
			if first || buckets[i] > max {
				max = buckets[i]
			}
			first = false
		}
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for i := range buckets {
		if counts[i] == 0 {
			b.WriteRune(' ')
			continue
		}
		lvl := 0
		if max > min {
			lvl = int((buckets[i] - min) / (max - min) * float64(len(levels)-1))
		}
		b.WriteRune(levels[lvl])
	}
	return b.String(), nil
}
