package stats

import (
	"fmt"
	"io"
	"strings"
)

// Timeline collects fixed-interval samples of named values over a run —
// windowed throughput, in-flight checkpoint flags, backlog depths — for
// rendering how a metric evolves (e.g. the throughput dip a baseline
// checkpoint causes). Samples are appended by the simulation at virtual
// times; rendering is offline.
type Timeline struct {
	names []string
	index map[string]int
	rows  []timelineRow
}

type timelineRow struct {
	atNS uint64
	vals []float64
}

// NewTimeline creates a timeline for the named series.
func NewTimeline(names ...string) *Timeline {
	t := &Timeline{names: names, index: make(map[string]int, len(names))}
	for i, n := range names {
		t.index[n] = i
	}
	return t
}

// Names returns the series names.
func (t *Timeline) Names() []string { return t.names }

// Sample appends one row of values at virtual time atNS. Values must be in
// series order (length-checked).
func (t *Timeline) Sample(atNS uint64, vals ...float64) {
	if len(vals) != len(t.names) {
		panic(fmt.Sprintf("stats: timeline sample has %d values, want %d", len(vals), len(t.names)))
	}
	row := timelineRow{atNS: atNS, vals: make([]float64, len(vals))}
	copy(row.vals, vals)
	t.rows = append(t.rows, row)
}

// Len returns the number of samples.
func (t *Timeline) Len() int { return len(t.rows) }

// At returns the i-th sample (time in ns, values in series order).
func (t *Timeline) At(i int) (uint64, []float64) {
	return t.rows[i].atNS, t.rows[i].vals
}

// Series extracts one named series as (x=seconds, y=value) points.
func (t *Timeline) Series(name string) (*Series, error) {
	idx, ok := t.index[name]
	if !ok {
		return nil, fmt.Errorf("stats: timeline has no series %q", name)
	}
	s := &Series{Name: name}
	for _, r := range t.rows {
		s.Append(float64(r.atNS)/1e9, r.vals[idx])
	}
	return s, nil
}

// WriteCSV emits the timeline as CSV with a time_s column first.
func (t *Timeline) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "time_s,%s\n", strings.Join(t.names, ",")); err != nil {
		return err
	}
	for _, r := range t.rows {
		cells := make([]string, 0, len(r.vals)+1)
		cells = append(cells, fmt.Sprintf("%.6f", float64(r.atNS)/1e9))
		for _, v := range r.vals {
			cells = append(cells, fmt.Sprintf("%g", v))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders one series as a compact unicode sparkline (reporting
// aid for terminal output).
func (t *Timeline) Sparkline(name string, width int) (string, error) {
	s, err := t.Series(name)
	if err != nil {
		return "", err
	}
	if s.Len() == 0 {
		return "", nil
	}
	if width <= 0 || width > s.Len() {
		width = s.Len()
	}
	// bucket-average down to width points
	buckets := make([]float64, width)
	counts := make([]int, width)
	for i := 0; i < s.Len(); i++ {
		b := i * width / s.Len()
		buckets[b] += s.Y[i]
		counts[b]++
	}
	min, max := 0.0, 0.0
	first := true
	for i := range buckets {
		if counts[i] > 0 {
			buckets[i] /= float64(counts[i])
			if first || buckets[i] < min {
				min = buckets[i]
			}
			if first || buckets[i] > max {
				max = buckets[i]
			}
			first = false
		}
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for i := range buckets {
		if counts[i] == 0 {
			b.WriteRune(' ')
			continue
		}
		lvl := 0
		if max > min {
			lvl = int((buckets[i] - min) / (max - min) * float64(len(levels)-1))
		}
		b.WriteRune(levels[lvl])
	}
	return b.String(), nil
}
