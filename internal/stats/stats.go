// Package stats provides the measurement primitives used across the
// Check-In reproduction: log-bucketed latency histograms with accurate tail
// percentiles (p99.9 / p99.99 are headline numbers in the paper), plain
// counters with named registries, and time series for figure output.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Histogram is a log-bucketed histogram of non-negative integer samples
// (typically latencies in nanoseconds). Relative error per bucket is bounded
// by 1/subBuckets (~1.6 %), which is far finer than the effects the paper
// reports. The zero value is ready to use.
type Histogram struct {
	counts [64][subBuckets]uint64
	// rowTotal[major] is the sample count of the whole major row — an
	// occupancy index letting percentile scans skip empty rows (and rows
	// entirely below the target rank) without touching their 64 buckets.
	rowTotal [64]uint64
	total    uint64
	sum      uint64
	min      uint64
	max      uint64
}

const subBuckets = 64

// Record adds one sample.
func (h *Histogram) Record(v uint64) { h.RecordN(v, 1) }

// RecordN adds n identical samples.
func (h *Histogram) RecordN(v uint64, n uint64) {
	if n == 0 {
		return
	}
	major, minor := bucketOf(v)
	h.counts[major][minor] += n
	h.rowTotal[major] += n
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total += n
	h.sum += v * n
}

func bucketOf(v uint64) (major, minor int) {
	if v < subBuckets {
		return 0, int(v)
	}
	major = bits.Len64(v) - 6 // so that values < 64 land in major 0
	minor = int(v >> uint(major) & (subBuckets - 1))
	return major, minor
}

// bucketLow returns the lowest value that maps into bucket (major, minor).
// For major >= 1 the minor index already contains the implied top bit
// (minor is always in [32, 64) there), so the low edge is minor << major.
func bucketLow(major, minor int) uint64 {
	return uint64(minor) << uint(major)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest recorded sample (0 if empty).
func (h *Histogram) Min() uint64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 if empty).
func (h *Histogram) Max() uint64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Percentile returns an upper-bound estimate of the p-th percentile,
// p in (0, 100]. Empty histograms return 0.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for major := 0; major < 64; major++ {
		rt := h.rowTotal[major]
		if rt == 0 || seen+rt < rank {
			seen += rt // whole row empty or below the rank: skip its buckets
			continue
		}
		for minor := 0; minor < subBuckets; minor++ {
			c := h.counts[major][minor]
			if c == 0 {
				continue
			}
			seen += c
			if seen >= rank {
				hi := bucketHigh(major, minor)
				if hi > h.max {
					hi = h.max
				}
				return hi
			}
		}
	}
	return h.max
}

// CountAbove returns the number of recorded samples whose bucket lies
// entirely above threshold — the streaming SLO-violation counter (samples
// over a per-tenant latency target). Buckets straddling the threshold count
// as compliant, so the result is a lower bound with the histogram's ~1.6 %
// bucket resolution; SLO targets are orders of magnitude coarser.
func (h *Histogram) CountAbove(threshold uint64) uint64 {
	if h.total == 0 || threshold >= h.max {
		return 0
	}
	var above uint64
	tMajor, _ := bucketOf(threshold)
	for major := tMajor; major < 64; major++ {
		if h.rowTotal[major] == 0 {
			continue
		}
		for minor := 0; minor < subBuckets; minor++ {
			if c := h.counts[major][minor]; c != 0 && bucketLow(major, minor) > threshold {
				above += c
			}
		}
	}
	// Rows above tMajor were all counted; rows below it are all compliant.
	return above
}

// Percentiles returns Percentile(p) for every p in ps in a single pass over
// the buckets; ps must be non-decreasing. Each element is exactly what the
// corresponding individual Percentile call would return — Summarize uses
// this to extract its five tail points with one scan instead of five.
func (h *Histogram) Percentiles(ps ...float64) []uint64 {
	out := make([]uint64, len(ps))
	if h.total == 0 {
		return out
	}
	ranks := make([]uint64, len(ps))
	for i, p := range ps {
		if i > 0 && p < ps[i-1] {
			panic("stats: Percentiles arguments must be non-decreasing")
		}
		if p <= 0 {
			out[i] = h.Min() // rank 0 marks an already-answered slot
			continue
		}
		if p > 100 {
			p = 100
		}
		r := uint64(math.Ceil(p / 100 * float64(h.total)))
		if r == 0 {
			r = 1
		}
		ranks[i] = r
	}
	i := 0
	for i < len(ps) && ranks[i] == 0 {
		i++
	}
	var seen uint64
	for major := 0; major < 64 && i < len(ps); major++ {
		rt := h.rowTotal[major]
		if rt == 0 || seen+rt < ranks[i] {
			seen += rt
			continue
		}
		for minor := 0; minor < subBuckets && i < len(ps); minor++ {
			c := h.counts[major][minor]
			if c == 0 {
				continue
			}
			seen += c
			for i < len(ps) && seen >= ranks[i] {
				hi := bucketHigh(major, minor)
				if hi > h.max {
					hi = h.max
				}
				out[i] = hi
				i++
			}
		}
	}
	for ; i < len(ps); i++ {
		out[i] = h.max
	}
	return out
}

// bucketHigh returns the highest value that maps into bucket (major, minor).
func bucketHigh(major, minor int) uint64 {
	if major == 0 {
		return uint64(minor)
	}
	return bucketLow(major, minor) + (uint64(1) << uint(major)) - 1
}

// Merge adds all samples from o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.total == 0 {
		return
	}
	for major := range o.counts {
		if o.rowTotal[major] == 0 {
			continue
		}
		for minor, c := range o.counts[major] {
			h.counts[major][minor] += c
		}
		h.rowTotal[major] += o.rowTotal[major]
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Reset discards all samples.
func (h *Histogram) Reset() { *h = Histogram{} }

// Summary is a compact snapshot of a histogram's headline statistics.
type Summary struct {
	Count uint64
	Mean  float64
	Min   uint64
	P50   uint64
	P90   uint64
	P99   uint64
	P999  uint64
	P9999 uint64
	Max   uint64
}

// Summarize extracts a Summary with one bucket scan.
func (h *Histogram) Summarize() Summary {
	pct := h.Percentiles(50, 90, 99, 99.9, 99.99)
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		P50:   pct[0],
		P90:   pct[1],
		P99:   pct[2],
		P999:  pct[3],
		P9999: pct[4],
		Max:   h.Max(),
	}
}

// Counters is a registry of named monotonic counters. The zero value is
// ready to use.
type Counters struct {
	m map[string]uint64
}

// Add increments counter name by delta.
func (c *Counters) Add(name string, delta uint64) {
	if c.m == nil {
		c.m = make(map[string]uint64)
	}
	c.m[name] += delta
}

// Inc increments counter name by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the value of counter name (0 if never touched).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Names returns all counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge adds all counters from o into c.
func (c *Counters) Merge(o *Counters) {
	for n, v := range o.m {
		c.Add(n, v)
	}
}

// String renders the counters one per line, sorted by name.
func (c *Counters) String() string {
	var b strings.Builder
	for _, n := range c.Names() {
		fmt.Fprintf(&b, "%-32s %d\n", n, c.m[n])
	}
	return b.String()
}

// Series is an ordered sequence of (x, y) points forming one line of a
// figure (e.g. checkpointing time vs thread count for one configuration).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YAt returns the y value for the given x, and whether it exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Normalize divides every y by the y at the given x (useful for the paper's
// "normalized" figures). It is a no-op if that point is missing or zero.
func (s *Series) Normalize(atX float64) {
	base, ok := s.YAt(atX)
	if !ok || base == 0 {
		return
	}
	for i := range s.Y {
		s.Y[i] /= base
	}
}
