package stats

import (
	"testing"
)

// lcg is a tiny deterministic generator for test sample streams.
func lcg(state *uint64) uint64 {
	*state = *state*6364136223846793005 + 1442695040888963407
	return *state
}

func TestPercentilesMatchPercentile(t *testing.T) {
	var h Histogram
	state := uint64(7)
	for i := 0; i < 50_000; i++ {
		// mixed magnitudes: exercise many major rows, leave others empty
		v := lcg(&state)
		switch i % 3 {
		case 0:
			v %= 100
		case 1:
			v %= 1_000_000
		default:
			v %= 10_000_000_000
		}
		h.Record(v)
	}
	ps := []float64{0, 0.001, 1, 25, 50, 50, 90, 99, 99.9, 99.99, 100, 200}
	got := h.Percentiles(ps...)
	for i, p := range ps {
		if want := h.Percentile(p); got[i] != want {
			t.Errorf("Percentiles[%d] (p=%v) = %d, want Percentile(p) = %d", i, p, got[i], want)
		}
	}
}

func TestPercentilesEmptyAndUnsorted(t *testing.T) {
	var h Histogram
	got := h.Percentiles(50, 99)
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("empty histogram percentiles = %v", got)
	}
	h.Record(10)
	defer func() {
		if recover() == nil {
			t.Error("descending percentile arguments did not panic")
		}
	}()
	h.Percentiles(99, 50)
}

func TestOccupancySurvivesMerge(t *testing.T) {
	var a, b, all Histogram
	state := uint64(42)
	for i := 0; i < 10_000; i++ {
		v := lcg(&state) % 5_000_000
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(&b)
	for _, p := range []float64{50, 90, 99, 99.9, 100} {
		if got, want := a.Percentile(p), all.Percentile(p); got != want {
			t.Errorf("merged Percentile(%v) = %d, want %d", p, got, want)
		}
	}
	a.Reset()
	if a.Percentile(50) != 0 {
		t.Error("reset histogram percentile not 0")
	}
}

func TestTimelineDownsampleMerges(t *testing.T) {
	tl := NewTimeline("v")
	tl.Bound(4)
	for i := 1; i <= 8; i++ {
		tl.Sample(uint64(i)*10, float64(i))
	}
	// Cap 4: rows halve at 4 (stride 2) and again at 4 (stride 4), so the
	// eight inputs collapse to two rows of four samples each, stamped with
	// their window-end times.
	if tl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tl.Len())
	}
	at0, v0 := tl.At(0)
	at1, v1 := tl.At(1)
	if at0 != 40 || v0[0] != 2.5 {
		t.Errorf("row 0 = (%d, %v), want (40, [2.5])", at0, v0)
	}
	if at1 != 80 || v1[0] != 6.5 {
		t.Errorf("row 1 = (%d, %v), want (80, [6.5])", at1, v1)
	}
}

func TestTimelinePartialBucketVisible(t *testing.T) {
	tl := NewTimeline("v")
	tl.Bound(4)
	for i := 1; i <= 10; i++ { // stride is 4 after 8 samples; 9,10 are pending
		tl.Sample(uint64(i)*10, float64(i))
	}
	if tl.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (2 complete + 1 partial)", tl.Len())
	}
	at, v := tl.At(2)
	if at != 100 || v[0] != 9.5 {
		t.Errorf("partial row = (%d, %v), want (100, [9.5])", at, v)
	}
	s, err := tl.Series("v")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Y[2] != 9.5 {
		t.Errorf("series sees %d rows, tail %v", s.Len(), s.Y)
	}
}

func TestTimelineFootprintBounded(t *testing.T) {
	tl := NewTimeline("a", "b", "c", "d")
	const samples = 2_000_000 // a multi-hour trace at millisecond sampling
	for i := 0; i < samples; i++ {
		tl.Sample(uint64(i), float64(i%100), 1, 2, 3)
	}
	if tl.Len() > DefaultTimelineCap {
		t.Errorf("Len = %d exceeds cap %d", tl.Len(), DefaultTimelineCap)
	}
	if len(tl.rows) > tl.cap {
		t.Errorf("retained rows %d exceed cap %d", len(tl.rows), tl.cap)
	}
	// Downsampling must actually have engaged, not silently dropped data:
	// the surviving rows still span the whole run.
	if tl.Len() < DefaultTimelineCap/2 {
		t.Errorf("Len = %d, want >= %d after saturation", tl.Len(), DefaultTimelineCap/2)
	}
	last, _ := tl.At(tl.Len() - 1)
	if last != samples-1 {
		t.Errorf("last window ends at %d, want %d", last, samples-1)
	}
	// Constant series stay exact through arbitrary pairwise merges.
	_, v := tl.At(tl.Len() / 2)
	if v[1] != 1 || v[2] != 2 || v[3] != 3 {
		t.Errorf("constant series drifted: %v", v)
	}
}

func TestTimelineUncappedBehaviorUnchanged(t *testing.T) {
	// Below the cap every sample is retained verbatim (stride 1).
	tl := NewTimeline("v")
	for i := 0; i < 100; i++ {
		tl.Sample(uint64(i)*7, float64(i)*1.25)
	}
	if tl.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tl.Len())
	}
	for i := 0; i < 100; i++ {
		at, v := tl.At(i)
		if at != uint64(i)*7 || v[0] != float64(i)*1.25 {
			t.Fatalf("row %d = (%d, %v)", i, at, v)
		}
	}
}
