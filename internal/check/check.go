// Package check is the crash-consistency verification subsystem: a
// model-based oracle, a crash-point fault injector, and a differential
// harness that together assert the five checkpointing strategies are
// *correct* — equal recovered state after a crash at any instrumented
// point — and only differ in cost.
//
// The pieces:
//
//   - Model: a plain in-memory map of per-key committed versions, updated
//     from the journal's commit hook the instant a group commit becomes
//     durable. At any moment it is the ground truth for what recovery must
//     reproduce (the "committed prefix" of the operation stream).
//
//   - Census: a run with a counting-only injector records how many times
//     each inject.Site fires on a given (strategy, seed, trace). The
//     simulation is deterministic, so the census is a complete schedule of
//     crashable instants.
//
//   - CrashMatrix: for every site the census saw, re-run the same trace
//     with the injector armed to crash at chosen hits. At the crash instant
//     (deferred to an immediate scheduler slot so mid-event call chains
//     have restored their invariants) the harness validates:
//
//     1. host recovery — Engine.RecoveredVersions() (checkpoint + committed
//     journal replay) equals the model's committed versions, exactly;
//     2. device SPOR — ftl.VerifySPOR() rebuilds the mapping table from
//     OOB records with zero mismatches (volatile write-buffer loss is
//     reported separately and is legal);
//     3. FTL invariants — ftl.CheckInvariants() (refcount consistency,
//     LSN→slot bijection, valid-page and free-pool accounting).
//
// Every failure carries (strategy, seed, site, hit): re-arming the same
// injector on the same seed reproduces it exactly.
package check

import (
	"fmt"
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/workload"
)

// Model is the reference oracle: per-key committed versions, maintained
// from the journal commit hook. After Load every key is at version 1; each
// committed update/delete advances its key.
type Model struct {
	committed []int64
}

// NewModel returns a model for a population of keys, all at version 0
// (not yet loaded).
func NewModel(keys int64) *Model {
	return &Model{committed: make([]int64, keys)}
}

// Loaded marks the whole population at version 1 (the bulk-load phase).
func (m *Model) Loaded() {
	for k := range m.committed {
		m.committed[k] = 1
	}
}

// Commit records that (key, version) became durable. Versions are
// monotonic per key, but group commits of different keys may interleave.
func (m *Model) Commit(key, version int64) {
	if version > m.committed[key] {
		m.committed[key] = version
	}
}

// Committed returns the per-key committed versions (the live slice — do
// not mutate).
func (m *Model) Committed() []int64 { return m.committed }

// Options scales the verification workload. The zero value is unusable;
// start from DefaultOptions.
type Options struct {
	Keys    int64
	Ops     int
	Threads int
	// CrashesPerSite bounds how many distinct hits of each site are
	// crash-tested per (strategy, seed).
	CrashesPerSite int
	// Errors names a checkin.ErrorProfile applied to every build ("" or
	// "off" = perfect flash). With a profile on, the NAND fault model runs
	// under the same deterministic schedule in the census and every armed
	// run, so crash points and flash faults compose: a crash can land in
	// the middle of a read-retry ladder or a bad-block migration.
	Errors string
	// FTLMap selects the mapping-table model for every build ("" = dram).
	// Under "dftl" the translation-page sites fire and the differential
	// mapping oracle arms, so a crash can land mid-writeback or mid-
	// translation-GC with the CMT coherence sweep validating the instant.
	FTLMap string
	// CMTEntries bounds the dftl CMT (0 = derive from MapCacheMB). The
	// matrix pins it small so capacity evictions actually happen at
	// verification scale.
	CMTEntries int
	// CMTFill, CMTCleanWindow and RemapBatch forward the dftl CMT
	// optimization knobs (""/zero = defaults on; "off"/1 restore the
	// pre-optimization paths), so matrices can also crash-test the legacy
	// code paths.
	CMTFill        string
	CMTCleanWindow int
	RemapBatch     string
	// Engine selects the host backend for every build ("" = journal).
	// Under "lsm" the WAL/memtable/compaction sites fire and recovery is
	// manifest + WAL-tail replay instead of checkpoint + journal replay —
	// the same oracle validates both.
	Engine string
	// Compaction and MemtableEntries forward the LSM shape (ignored by the
	// journal engine). The LSM matrix pins the memtable small so flush and
	// compaction happen many times within one verification trace.
	Compaction      string
	MemtableEntries int
}

// DefaultOptions is sized so one (strategy, seed) matrix — census plus all
// armed runs — completes in well under a second of wall clock while still
// driving group commits, checkpoints on both the periodic and soft
// triggers, journal deallocation, foreground/background GC, metadata
// flushes and wear leveling.
func DefaultOptions() Options {
	return Options{Keys: 1500, Ops: 3000, Threads: 4, CrashesPerSite: 2}
}

// DFTLCMTEntries pins the dftl verification builds' CMT bound at two
// translation pages' worth of entries (the minimum at the 4 KB page size):
// small enough that the workload forces capacity evictions — including
// dirty-tail evictions that write the victim's translation page back — so
// the trans-evict site fires. The checkin-sim -crashpoints CLI uses the
// same value, keeping repro lines faithful.
const DFTLCMTEntries = 1024

// DFTLOptions is the dftl crash-matrix schedule: DefaultOptions with the
// flash-resident mapping table on, the CMT/writeback knobs pinned, and a
// longer trace so translation-block churn builds enough GC pressure that
// the trans-gc site fires. Tests and the checkin-sim -crashpoints CLI must
// both use it so (seed, site, hit) repro lines replay identically.
func DFTLOptions() Options {
	o := DefaultOptions()
	o.Ops = 9000
	o.FTLMap = "dftl"
	o.CMTEntries = DFTLCMTEntries
	return o
}

// LSMOptions is the LSM-backend crash-matrix schedule: DefaultOptions with
// the lsm engine selected, a longer trace, and a small memtable bound so
// the run crosses many flush epochs and several compactions — enough that
// every LSM site (wal-append, wal-commit, mem-flush, compact-install,
// manifest-publish) fires. Tests and the checkin-sim -crashpoints CLI must
// both use it so (seed, site, hit, -engine=lsm) repro lines replay
// identically. policy selects the compaction policy under test.
func LSMOptions(policy string) Options {
	o := DefaultOptions()
	o.Ops = 6000
	o.Engine = "lsm"
	o.Compaction = policy
	o.MemtableEntries = 256
	return o
}

// Mix is the verification workload: write-heavy so the journal and
// checkpoint paths dominate, with deletes so tombstones ride along.
var Mix = workload.Mix{ReadPct: 25, UpdatePct: 60, RMWPct: 10, DeletePct: 5}

// sizer spans the interesting log classes at the 512-byte remap unit:
// sub-unit logs (padded / merged partials), exactly-unit logs, and
// larger-than-unit logs (compressed FULL).
func sizer() checkin.Sizer {
	return checkin.MixedRecords("check-mix",
		[]int{96, 180, 256, 480, 512, 1100, 1900},
		[]int{2, 2, 2, 2, 1, 1, 1})
}

// NewTrace records the operation stream for one seed. All strategies and
// all crash runs of that seed replay this byte-identical trace.
func NewTrace(opts Options, seed int64) (*checkin.Trace, error) {
	return checkin.RecordWorkload(opts.Keys, sizer(), Mix, true, opts.Ops, seed)
}

// Build opens a reduced-scale DB for strategy with the given injector
// threaded through every layer, and installs a fresh Model on the commit
// hook. The flash geometry is small enough (16 MB raw) that the trace
// forces garbage collection and metadata flushes.
func Build(strategy checkin.Strategy, seed int64, opts Options, inj *inject.Injector) (*checkin.DB, *Model, error) {
	cfg := checkin.DefaultConfig()
	cfg.Strategy = strategy
	cfg.Seed = seed
	cfg.Channels = 2
	cfg.DiesPerChannel = 2
	cfg.PlanesPerDie = 1
	cfg.BlocksPerPlane = 32
	cfg.PagesPerBlock = 32
	cfg.PageSizeBytes = 4096
	cfg.Keys = opts.Keys
	cfg.Records = sizer()
	cfg.JournalHalfMB = 1
	cfg.CheckpointInterval = 25 * time.Millisecond
	cfg.DataCacheMB = 1
	cfg.WearDeltaThreshold = 3
	cfg.Injector = inj
	cfg.FTLMap = opts.FTLMap
	cfg.CMTEntries = opts.CMTEntries
	cfg.CMTFill = opts.CMTFill
	cfg.CMTCleanWindow = opts.CMTCleanWindow
	cfg.RemapBatch = opts.RemapBatch
	cfg.Engine = opts.Engine
	cfg.Compaction = opts.Compaction
	cfg.MemtableEntries = opts.MemtableEntries
	if opts.FTLMap == "dftl" {
		// Tighter free-space margin so GC pressure stays high with the
		// translation stream competing for blocks.
		cfg.BlocksPerPlane = 24
		// Conventional 4KB-unit strategies touch only a few hundred
		// distinct luns at verification scale — less than one default
		// writeback batch — so scale the dirty-entry threshold to the
		// mapping footprint. Sub-page strategies keep the default: their
		// working set is large enough to exercise both the threshold
		// flush and the LRU dirty-tail eviction.
		if strategy.DefaultMappingUnit() == cfg.PageSizeBytes {
			cfg.MetaFlushEntries = 64
		}
	}
	if opts.Errors != "" {
		profile, err := checkin.ParseErrorProfile(opts.Errors)
		if err != nil {
			return nil, nil, err
		}
		cfg = profile.Apply(cfg)
	}
	db, err := checkin.Open(cfg)
	if err != nil {
		return nil, nil, err
	}
	if opts.FTLMap == "dftl" {
		// Every verification build runs with the differential mapping
		// oracle armed: a coherence divergence panics at the faulting
		// access instead of surfacing as a downstream validation diff.
		db.Device().FTL().EnableMapOracle()
	}
	model := NewModel(opts.Keys)
	db.Host().SetCommitHook(model.Commit)
	return db, model, nil
}

// Validate performs the three crash-point checks against db's current
// state. It is pure — callable from inside a simulation event.
func Validate(db *checkin.DB, model *Model) error {
	recovered := db.Host().RecoveredVersions()
	want := model.Committed()
	diffs := 0
	var first string
	for k := range want {
		if recovered[k] != want[k] {
			if diffs == 0 {
				first = fmt.Sprintf("key %d: recovered version %d, model committed %d", k, recovered[k], want[k])
			}
			diffs++
		}
	}
	if diffs > 0 {
		return fmt.Errorf("host recovery diverges from reference model at %d keys (first: %s)", diffs, first)
	}
	if rep := db.Device().FTL().VerifySPOR(); rep.Mismatches != 0 {
		return fmt.Errorf("device SPOR rebuild lost durable state: %s", rep)
	}
	if err := db.Device().FTL().CheckInvariants(); err != nil {
		return err
	}
	return nil
}

// replay runs the recorded trace to completion.
func replay(db *checkin.DB, tr *checkin.Trace, opts Options) error {
	_, err := db.Run(checkin.RunSpec{
		Threads:      opts.Threads,
		TotalQueries: int64(len(tr.Ops)),
		Trace:        tr,
	})
	return err
}

// Census is the per-site hit schedule of one (strategy, seed, trace): how
// many times each site fired during the measured run (load-phase hits
// excluded — crashes are only armed after Load).
type Census struct {
	RunHits [inject.NumSites]int
}

// RunCensus replays the trace under a counting-only injector. The final
// state is also validated (a crash-free run must trivially pass) and the
// model returned for the equivalence check.
func RunCensus(strategy checkin.Strategy, seed int64, tr *checkin.Trace, opts Options) (*Census, *Model, *checkin.DB, error) {
	inj := inject.New()
	db, model, err := Build(strategy, seed, opts, inj)
	if err != nil {
		return nil, nil, nil, err
	}
	db.Load()
	model.Loaded()
	loadHits := inj.Counts()
	if err := replay(db, tr, opts); err != nil {
		return nil, nil, nil, err
	}
	c := &Census{}
	for i, n := range inj.Counts() {
		c.RunHits[i] = n - loadHits[i]
	}
	if err := Validate(db, model); err != nil {
		return nil, nil, nil, fmt.Errorf("crash-free run failed validation (strategy=%s seed=%d): %w", strategy, seed, err)
	}
	return c, model, db, nil
}

// CrashResult is the outcome of one armed run.
type CrashResult struct {
	Strategy checkin.Strategy
	Seed     int64
	Site     inject.Site
	Hit      int    // 1-based hit index within the measured run
	Errors   string // error profile the run was built with ("" = off)
	FTLMap   string // mapping-table model the run was built with ("" = dram)
	Engine   string // host backend the run was built with ("" = journal)
	Policy   string // LSM compaction policy ("" = n/a or leveled default)
	Fired    bool
	Err      error
}

// Repro renders the one-command reproduction line.
func (r CrashResult) Repro() string {
	line := fmt.Sprintf("checkin-sim -crashpoints -strategy=%s -seed=%d -site=%s -hit=%d",
		r.Strategy, r.Seed, r.Site, r.Hit)
	if r.Errors != "" {
		line += fmt.Sprintf(" -errors=%s", r.Errors)
	}
	if r.FTLMap != "" && r.FTLMap != "dram" {
		line += fmt.Sprintf(" -ftlmap=%s", r.FTLMap)
	}
	if r.Engine != "" && r.Engine != "journal" {
		line += fmt.Sprintf(" -engine=%s", r.Engine)
		if r.Policy != "" && r.Policy != "leveled" {
			line += fmt.Sprintf(" -compaction=%s", r.Policy)
		}
	}
	return line
}

func (r CrashResult) String() string {
	status := "ok"
	switch {
	case !r.Fired:
		status = "site did not fire"
	case r.Err != nil:
		status = "FAIL: " + r.Err.Error()
	}
	return fmt.Sprintf("(seed=%d, site=%s#%d, strategy=%s): %s", r.Seed, r.Site, r.Hit, r.Strategy, status)
}

// RunCrash replays the trace with a crash armed at the hit-th firing of
// site after Load (hit is 1-based). At the crash instant the full state
// validation runs; the simulation then continues to completion so the
// armed run's hit counting stays comparable to the census.
func RunCrash(strategy checkin.Strategy, seed int64, site inject.Site, hit int, tr *checkin.Trace, opts Options) CrashResult {
	res := CrashResult{Strategy: strategy, Seed: seed, Site: site, Hit: hit,
		Errors: opts.Errors, FTLMap: opts.FTLMap, Engine: opts.Engine,
		Policy: opts.Compaction}
	inj := inject.New()
	db, model, err := Build(strategy, seed, opts, inj)
	if err != nil {
		res.Err = err
		return res
	}
	db.Load()
	model.Loaded()
	eng := db.Sim()
	inj.Arm(site, hit-1,
		func(fire func()) { eng.Schedule(0, fire) },
		func(s inject.Site, n int) {
			if err := Validate(db, model); err != nil {
				res.Err = fmt.Errorf("%s: %w", res.Repro(), err)
			}
		})
	if err := replay(db, tr, opts); err != nil {
		res.Err = err
		return res
	}
	_, _, res.Fired = inj.Fired()
	return res
}

// CrashMatrix runs the full schedule for one (strategy, seed): a census,
// then up to CrashesPerSite armed runs per site that fired, sampling hits
// evenly across each site's schedule (first, middle, last...). The census
// is returned so callers can assert site coverage.
func CrashMatrix(strategy checkin.Strategy, seed int64, tr *checkin.Trace, opts Options) ([]CrashResult, *Census, error) {
	return CrashMatrixSites(strategy, seed, tr, opts, inject.Sites())
}

// CrashMatrixSites is CrashMatrix restricted to a subset of sites. The
// error matrix uses it to arm only the NAND fault sites (plus a couple of
// core sites, proving composition) without re-testing every crash point the
// zero-rate matrix already covers.
func CrashMatrixSites(strategy checkin.Strategy, seed int64, tr *checkin.Trace, opts Options, sites []inject.Site) ([]CrashResult, *Census, error) {
	census, _, _, err := RunCensus(strategy, seed, tr, opts)
	if err != nil {
		return nil, nil, err
	}
	var results []CrashResult
	for _, site := range sites {
		n := census.RunHits[site]
		if n == 0 {
			continue
		}
		for _, hit := range sampleHits(n, opts.CrashesPerSite) {
			results = append(results, RunCrash(strategy, seed, site, hit, tr, opts))
		}
	}
	return results, census, nil
}

// sampleHits picks up to k distinct 1-based hit indexes spread over [1, n]:
// always the first and last firing, with the rest evenly between.
func sampleHits(n, k int) []int {
	if k < 1 {
		k = 1
	}
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	if k == 1 {
		return []int{(n + 1) / 2}
	}
	out := make([]int, 0, k)
	seen := make(map[int]bool)
	for i := 0; i < k; i++ {
		h := 1 + i*(n-1)/(k-1)
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}

// FinalVersions replays the trace crash-free and returns the final
// in-memory per-key versions — the cross-strategy equivalence signature
// (every strategy must produce the identical vector for one trace).
func FinalVersions(strategy checkin.Strategy, seed int64, tr *checkin.Trace, opts Options) ([]int64, error) {
	_, _, db, err := RunCensus(strategy, seed, tr, opts)
	if err != nil {
		return nil, err
	}
	return db.Host().InMemoryVersions(), nil
}

// EpochSignatures is the cross-backend differential driver: one client
// applies the trace sequentially through the HostEngine interface, and
// every epochEvery operations it syncs, cuts a checkpoint epoch, and
// captures the recovered-version vector (what a crash at that instant
// reconstructs). Two backends fed the same trace must produce identical
// signature sequences — same committed prefix at every epoch — regardless
// of how differently they lay the data out. The final state is also fully
// validated against the reference model.
func EpochSignatures(strategy checkin.Strategy, seed int64, tr *checkin.Trace, opts Options, epochEvery int) ([][]int64, error) {
	db, model, err := Build(strategy, seed, opts, inject.New())
	if err != nil {
		return nil, err
	}
	db.Load()
	model.Loaded()
	host := db.Host()
	eng := db.Sim()

	var sigs [][]int64
	var fail error
	done := false
	eng.Go("equivalence-driver", func(p *sim.Proc) {
		for i, op := range tr.Ops {
			switch op.Kind {
			case workload.OpRead:
				host.Get(p, op.Key)
			case workload.OpUpdate:
				host.Update(p, op.Key, op.Size)
			case workload.OpReadModifyWrite:
				host.ReadModifyWrite(p, op.Key, op.Size)
			case workload.OpScan:
				host.Scan(p, op.Key, op.ScanLen)
			case workload.OpDelete:
				host.Delete(p, op.Key)
			}
			if (i+1)%epochEvery == 0 {
				host.Sync(p)
				p.Wait(host.TriggerCheckpoint())
				sig := host.RecoveredVersions()
				// Every epoch's recovered state must already equal the
				// model's committed prefix (after Sync they coincide).
				for k := range sig {
					if sig[k] != model.Committed()[k] {
						fail = fmt.Errorf("epoch %d: recovered[%d]=%d, model committed %d",
							len(sigs), k, sig[k], model.Committed()[k])
						return
					}
				}
				sigs = append(sigs, sig)
			}
		}
		done = true
	})
	for !done && fail == nil {
		eng.RunUntil(eng.Now() + 50*sim.Millisecond)
	}
	if fail != nil {
		return nil, fail
	}
	if err := Validate(db, model); err != nil {
		return nil, fmt.Errorf("final validation: %w", err)
	}
	return sigs, nil
}
