package check

import (
	"fmt"
	"strings"
	"testing"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/inject"
)

// dftlMatrixSites are the crash points the dftl matrix arms: the three
// translation-page sites themselves (a crash after a threshold writeback, a
// dirty-tail eviction writeback, a translation-page GC migration) plus
// three core sites proving the ordinary crash points still hold with the
// flash-resident mapping table underneath. The remaining sites are covered
// by the dram-mode TestCrashMatrix.
var dftlMatrixSites = []inject.Site{
	inject.SiteTransFlush,
	inject.SiteTransEvict,
	inject.SiteTransGC,
	inject.SiteJournalCommit,
	inject.SiteCheckpointApply,
	inject.SiteGCMigrate,
}

// TestDFTLCrashMatrix is the dftl analogue of TestCrashMatrix: every
// strategy × seed replays its trace with the flash-resident mapping table on
// (CMT pinned small, differential mapping oracle armed) and crashes at
// sampled hits of every dftl-matrix site that fired. Each crash instant
// validates host recovery, the device SPOR rebuild — which now includes the
// global translation directory — and the FTL invariants, whose dftl section
// sweeps the CMT, LRU, directory and flash-resident entry coherence.
// Failures print a (seed, site, hit, -ftlmap=dftl) line that reproduces in
// one command.
func TestDFTLCrashMatrix(t *testing.T) {
	opts := DFTLOptions()
	agg := make(map[checkin.Strategy]*Census)
	for _, seed := range matrixSeeds {
		tr, err := NewTrace(opts, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range checkin.Strategies {
			s, seed, tr := s, seed, tr
			if agg[s] == nil {
				agg[s] = &Census{}
			}
			t.Run(fmt.Sprintf("%s/seed%d", s, seed), func(t *testing.T) {
				results, census, err := CrashMatrixSites(s, seed, tr, opts, dftlMatrixSites)
				if err != nil {
					t.Fatal(err)
				}
				if len(results) == 0 {
					t.Fatal("dftl matrix produced no crash runs")
				}
				for site, n := range census.RunHits {
					agg[s].RunHits[site] += n
				}
				for _, r := range results {
					if !r.Fired {
						t.Errorf("%s — armed crash never fired (census drifted?)", r)
					}
					if r.Err != nil {
						t.Errorf("%s\n  reproduce: %s", r, r.Repro())
					}
				}
			})
		}
	}
	// Coverage: threshold writebacks must fire for every strategy; the
	// rarer dirty-tail eviction writeback is asserted globally. The
	// trans-gc migration needs GC to dig into a block still holding live
	// translation pages — the full-stack workload reclaims fully-dead
	// translation blocks first, so that site is covered at the FTL layer
	// (TestTransGCCrashConsistency in internal/ftl), mirroring how the
	// wear-level site is handled.
	evicts := 0
	for _, s := range checkin.Strategies {
		c := agg[s]
		t.Logf("%s: trans-flush=%d trans-evict=%d trans-gc=%d", s,
			c.RunHits[inject.SiteTransFlush], c.RunHits[inject.SiteTransEvict], c.RunHits[inject.SiteTransGC])
		if c.RunHits[inject.SiteTransFlush] == 0 {
			t.Errorf("strategy %s never hit %s across %v — dftl coverage lost", s, inject.SiteTransFlush, matrixSeeds)
		}
		evicts += c.RunHits[inject.SiteTransEvict]
	}
	if evicts == 0 {
		t.Errorf("no strategy hit %s across %v — dftl coverage lost", inject.SiteTransEvict, matrixSeeds)
	}
}

// TestDFTLStrategyEquivalence replays one byte-identical trace on all five
// strategies under dftl and asserts they converge to the identical final
// key/value state: the flash-resident mapping table changes costs, never
// outcomes.
func TestDFTLStrategyEquivalence(t *testing.T) {
	opts := DFTLOptions()
	tr, err := NewTrace(opts, 11)
	if err != nil {
		t.Fatal(err)
	}
	var ref []int64
	var refStrategy checkin.Strategy
	for _, s := range checkin.Strategies {
		got, err := FinalVersions(s, 11, tr, opts)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if ref == nil {
			ref, refStrategy = got, s
			continue
		}
		for k := range ref {
			if ref[k] != got[k] {
				t.Fatalf("%s diverges from %s at key %d: v%d vs v%d", s, refStrategy, k, got[k], ref[k])
			}
		}
	}
}

// TestDFTLReproLine pins the -ftlmap flag onto dftl repro lines (and keeps
// it off dram ones).
func TestDFTLReproLine(t *testing.T) {
	r := CrashResult{Strategy: checkin.StrategyCheckIn, Seed: 2, Site: inject.SiteTransEvict, Hit: 3, FTLMap: "dftl"}
	if repro := r.Repro(); !strings.Contains(repro, "-ftlmap=dftl") || !strings.Contains(repro, "-site=trans-evict") {
		t.Errorf("dftl repro line %q missing -ftlmap/-site", repro)
	}
	r.FTLMap = ""
	if repro := r.Repro(); strings.Contains(repro, "-ftlmap") {
		t.Errorf("dram repro line %q must not carry -ftlmap", repro)
	}
}
