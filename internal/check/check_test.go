package check

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/inject"
)

// matrixSeeds are the seeds the CI crash matrix covers (acceptance
// criterion: every fired site × all five strategies × ≥ 3 seeds).
var matrixSeeds = []int64{1, 2, 3}

// TestCrashMatrix is the differential crash-consistency net: for every
// strategy and seed, census the injection schedule, then crash at sampled
// hits of every site that fired and assert (1) host recovery equals the
// reference model's committed prefix, (2) the device SPOR rebuild loses no
// durable state, (3) the FTL invariants hold. Any failure prints a
// (seed, site, strategy) line that reproduces it in one command.
func TestCrashMatrix(t *testing.T) {
	opts := DefaultOptions()
	for _, seed := range matrixSeeds {
		tr, err := NewTrace(opts, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range checkin.Strategies {
			s, seed, tr := s, seed, tr
			t.Run(fmt.Sprintf("%s/seed%d", s, seed), func(t *testing.T) {
				results, census, err := CrashMatrix(s, seed, tr, opts)
				if err != nil {
					t.Fatal(err)
				}
				if len(results) == 0 {
					t.Fatal("matrix produced no crash runs")
				}
				for _, r := range results {
					if !r.Fired {
						t.Errorf("%s — armed crash never fired (census drifted?)", r)
					}
					if r.Err != nil {
						t.Errorf("%s\n  reproduce: %s", r, r.Repro())
					}
				}
				assertCoverage(t, s, census)
			})
		}
	}
}

// assertCoverage pins down which sites each strategy must exercise, so a
// refactor that silently stops hitting a crash point fails loudly. The
// wear-level site is covered at the FTL layer (TestWearLevelCrashConsistency
// in internal/ftl): the full-stack workload rarely reaches an idle window.
func assertCoverage(t *testing.T, s checkin.Strategy, c *Census) {
	t.Helper()
	want := []inject.Site{
		inject.SiteJournalAppend,
		inject.SiteJournalCommit,
		inject.SiteCheckpointCut,
		inject.SiteCheckpointApply,
		inject.SiteDeallocate,
		inject.SiteMetaFlush,
		inject.SiteGCMigrate,
	}
	switch s {
	case checkin.StrategyISCA, checkin.StrategyISCB:
		want = append(want, inject.SiteCheckpointCopy)
	case checkin.StrategyISCC, checkin.StrategyCheckIn:
		want = append(want, inject.SiteCheckpointRemap)
	}
	for _, site := range want {
		if c.RunHits[site] == 0 {
			t.Errorf("strategy %s never hit site %s — crash coverage lost", s, site)
		}
	}
}

// errorMatrixSites are the crash points the error matrix arms: the four
// NAND fault sites themselves (a crash in the middle of a retry ladder, a
// program-failure restage, an erase-failure retirement, a bad-block
// migration) plus two core sites proving the ordinary crash points still
// hold with the fault model running underneath. The remaining sites are
// covered by the zero-rate TestCrashMatrix.
var errorMatrixSites = []inject.Site{
	inject.SiteReadRetry,
	inject.SiteProgramFail,
	inject.SiteEraseFail,
	inject.SiteBadBlockRetire,
	inject.SiteJournalCommit,
	inject.SiteCheckpointApply,
}

// TestErrorMatrix is the differential error matrix (the NAND-fault analogue
// of TestCrashMatrix): every strategy × seed runs the trace under the
// "heavy" error profile — read retries, uncorrectable reads, program and
// erase failures, block retirements, read-only degradation — and (1) the
// crash-free census run must pass full validation, (2) a crash armed at
// sampled hits of every error-matrix site must leave host recovery, the
// SPOR rebuild and the FTL invariants intact. Failures print a
// (seed, site, hit, -errors) line that reproduces in one command.
func TestErrorMatrix(t *testing.T) {
	opts := DefaultOptions()
	opts.Errors = "heavy"
	agg := make(map[checkin.Strategy]*Census)
	for _, seed := range matrixSeeds {
		tr, err := NewTrace(opts, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range checkin.Strategies {
			s, seed, tr := s, seed, tr
			if agg[s] == nil {
				agg[s] = &Census{}
			}
			t.Run(fmt.Sprintf("%s/seed%d", s, seed), func(t *testing.T) {
				results, census, err := CrashMatrixSites(s, seed, tr, opts, errorMatrixSites)
				if err != nil {
					t.Fatal(err)
				}
				for site, n := range census.RunHits {
					agg[s].RunHits[site] += n
				}
				for _, r := range results {
					if !r.Fired {
						t.Errorf("%s — armed crash never fired (census drifted?)", r)
					}
					if r.Err != nil {
						t.Errorf("%s\n  reproduce: %s", r, r.Repro())
					}
				}
			})
		}
	}
	// Coverage: the read, program and retirement fault paths must fire for
	// every strategy (across its three seeds). Erase failures depend on how
	// often a strategy erases at all — ISC-C and Check-In legitimately erase
	// rarely at this scale — so they are asserted globally.
	eraseFails := 0
	for _, s := range checkin.Strategies {
		c := agg[s]
		for _, site := range []inject.Site{inject.SiteReadRetry, inject.SiteProgramFail, inject.SiteBadBlockRetire} {
			if c.RunHits[site] == 0 {
				t.Errorf("strategy %s never hit fault site %s across %v — error coverage lost", s, site, matrixSeeds)
			}
		}
		eraseFails += c.RunHits[inject.SiteEraseFail]
	}
	if eraseFails == 0 {
		t.Errorf("no strategy hit %s across %v — error coverage lost", inject.SiteEraseFail, matrixSeeds)
	}
}

// TestStrategyEquivalence replays one byte-identical YCSB-A trace on all
// five configurations and asserts they converge to the identical final
// key/value state — the cross-strategy differential check (semantic drift
// between strategies, not just crash bugs).
func TestStrategyEquivalence(t *testing.T) {
	opts := DefaultOptions()
	tr, err := checkin.RecordWorkload(opts.Keys, sizer(), checkin.WorkloadA, true, opts.Ops, 7)
	if err != nil {
		t.Fatal(err)
	}
	var ref []int64
	var refStrategy checkin.Strategy
	for _, s := range checkin.Strategies {
		got, err := FinalVersions(s, 7, tr, opts)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if ref == nil {
			ref, refStrategy = got, s
			continue
		}
		if !reflect.DeepEqual(ref, got) {
			diffs := 0
			first := ""
			for k := range ref {
				if ref[k] != got[k] {
					if diffs == 0 {
						first = fmt.Sprintf("key %d: %s=v%d, %s=v%d", k, refStrategy, ref[k], s, got[k])
					}
					diffs++
				}
			}
			t.Errorf("%s diverges from %s at %d keys (first: %s)", s, refStrategy, diffs, first)
		}
	}
}

// TestCrashFreeValidationAllStrategies: with no crash armed, the census
// run itself must pass the full validation (it does, inside RunCensus) and
// the model must agree with the engine's own durable-version accounting.
func TestCrashFreeValidationAllStrategies(t *testing.T) {
	opts := DefaultOptions()
	tr, err := NewTrace(opts, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range checkin.Strategies {
		_, model, db, err := RunCensus(s, 5, tr, opts)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		durable := db.DurableVersions()
		for k := range durable {
			if model.Committed()[k] != durable[k] {
				t.Fatalf("%s: model committed v%d != engine durable v%d at key %d",
					s, model.Committed()[k], durable[k], k)
			}
		}
	}
}

func TestModelBasics(t *testing.T) {
	m := NewModel(3)
	if got := m.Committed(); got[0] != 0 || got[2] != 0 {
		t.Fatal("fresh model not at version 0")
	}
	m.Loaded()
	m.Commit(1, 5)
	m.Commit(1, 4) // stale commit must not regress
	want := []int64{1, 5, 1}
	if !reflect.DeepEqual(m.Committed(), want) {
		t.Fatalf("model = %v, want %v", m.Committed(), want)
	}
}

func TestSampleHits(t *testing.T) {
	cases := []struct {
		n, k int
		want []int
	}{
		{0, 2, []int{}},
		{1, 2, []int{1}},
		{2, 2, []int{1, 2}},
		{5, 2, []int{1, 5}},
		{10, 3, []int{1, 5, 10}},
		{7, 1, []int{4}},
	}
	for _, c := range cases {
		got := sampleHits(c.n, c.k)
		if len(got) != len(c.want) {
			t.Errorf("sampleHits(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("sampleHits(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
				break
			}
		}
	}
}

func TestCrashResultRepro(t *testing.T) {
	r := CrashResult{Strategy: checkin.StrategyCheckIn, Seed: 3, Site: inject.SiteJournalCommit, Hit: 17}
	repro := r.Repro()
	for _, part := range []string{"-crashpoints", "-strategy=Check-In", "-seed=3", "-site=journal-commit", "-hit=17"} {
		if !strings.Contains(repro, part) {
			t.Errorf("repro line %q missing %q", repro, part)
		}
	}
}
