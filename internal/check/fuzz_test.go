package check

import (
	"sync"
	"testing"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/inject"
)

// fuzzOptions is smaller than DefaultOptions so each fuzz execution stays
// in the low tens of milliseconds; the workload still crosses group
// commits, checkpoints and journal deallocation.
func fuzzOptions() Options {
	return Options{Keys: 400, Ops: 700, Threads: 2, CrashesPerSite: 1}
}

// fuzzTraces memoizes the recorded trace per seed: the fuzzer revisits
// seeds constantly and trace recording is the expensive part.
var fuzzTraces sync.Map // int64 -> *checkin.Trace

func fuzzTrace(t *testing.T, seed int64) *checkin.Trace {
	if tr, ok := fuzzTraces.Load(seed); ok {
		return tr.(*checkin.Trace)
	}
	tr, err := NewTrace(fuzzOptions(), seed)
	if err != nil {
		t.Fatal(err)
	}
	fuzzTraces.Store(seed, tr)
	return tr
}

// FuzzJournalRecovery lets the fuzzer steer the crash schedule directly:
// it picks (seed, strategy, site, hit) and the harness crashes at that
// instant, then asserts host recovery equals the reference model, the
// device SPOR rebuild is lossless, and the FTL invariants hold. Unlike
// the deterministic matrix (which samples a few hits per site), the
// fuzzer walks arbitrary hit offsets and seed/strategy corners. A chosen
// hit past the site's schedule simply never fires — that is not a
// failure, the run still validates crash-free at the end via RunCrash's
// replay path.
func FuzzJournalRecovery(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(inject.SiteJournalCommit), uint8(3))
	f.Add(int64(2), uint8(0), uint8(inject.SiteJournalAppend), uint8(40))
	f.Add(int64(3), uint8(3), uint8(inject.SiteCheckpointRemap), uint8(1))
	f.Add(int64(5), uint8(1), uint8(inject.SiteCheckpointCopy), uint8(2))
	f.Add(int64(7), uint8(2), uint8(inject.SiteDeallocate), uint8(5))
	f.Add(int64(11), uint8(4), uint8(inject.SiteMetaFlush), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, strategyB, siteB, hitB uint8) {
		if seed < 0 {
			seed = -seed
		}
		seed = seed%64 + 1 // bound the trace cache
		strategy := checkin.Strategies[int(strategyB)%len(checkin.Strategies)]
		site := inject.Site(int(siteB) % int(inject.NumSites))
		hit := int(hitB)%200 + 1
		opts := fuzzOptions()
		tr := fuzzTrace(t, seed)
		res := RunCrash(strategy, seed, site, hit, tr, opts)
		if res.Err != nil {
			t.Fatalf("%s\n  reproduce: %s", res, res.Repro())
		}
	})
}
