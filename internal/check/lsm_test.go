package check

import (
	"fmt"
	"sync"
	"testing"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/inject"
)

// lsmPolicies are the compaction policies the LSM matrix covers.
var lsmPolicies = []string{"leveled", "tiered"}

// TestEngineEquivalence is the cross-backend differential oracle: one
// byte-identical operation stream drives the journal engine and the LSM
// engine (both compaction policies), with an explicit checkpoint epoch
// every 500 operations. At every epoch the recovered-version vector — the
// user-visible KV state a crash would reconstruct — must be identical
// across backends, and after the final epoch both must pass full
// validation (model equality, SPOR, FTL invariants). Any divergence names
// the epoch and key.
func TestEngineEquivalence(t *testing.T) {
	const epochEvery = 500
	for _, seed := range matrixSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			opts := DefaultOptions()
			tr, err := NewTrace(opts, seed)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := EpochSignatures(checkin.StrategyCheckIn, seed, tr, opts, epochEvery)
			if err != nil {
				t.Fatalf("journal: %v", err)
			}
			if len(ref) == 0 {
				t.Fatal("no checkpoint epochs recorded")
			}
			for _, policy := range lsmPolicies {
				lopts := LSMOptions(policy)
				lopts.Ops = opts.Ops // same trace for both backends
				got, err := EpochSignatures(checkin.StrategyCheckIn, seed, tr, lopts, epochEvery)
				if err != nil {
					t.Fatalf("lsm/%s: %v", policy, err)
				}
				if len(got) != len(ref) {
					t.Fatalf("lsm/%s recorded %d epochs, journal %d", policy, len(got), len(ref))
				}
				for e := range ref {
					for k := range ref[e] {
						if ref[e][k] != got[e][k] {
							t.Fatalf("lsm/%s diverges from journal at epoch %d, key %d: journal v%d, lsm v%d",
								policy, e, k, ref[e][k], got[e][k])
						}
					}
				}
			}
		})
	}
}

// TestLSMCrashMatrix is TestCrashMatrix for the LSM backend: for every
// strategy, seed and compaction policy, census the injection schedule,
// crash at sampled hits of every site that fired — including the five LSM
// sites — and assert recovery, SPOR and the FTL invariants. Failures print
// a (seed, site, hit, -engine=lsm) line that reproduces in one command.
func TestLSMCrashMatrix(t *testing.T) {
	for _, policy := range lsmPolicies {
		opts := LSMOptions(policy)
		for _, seed := range matrixSeeds {
			tr, err := NewTrace(opts, seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []checkin.Strategy{checkin.StrategyBaseline, checkin.StrategyCheckIn} {
				s, seed, tr, policy, opts := s, seed, tr, policy, opts
				t.Run(fmt.Sprintf("%s/%s/seed%d", policy, s, seed), func(t *testing.T) {
					t.Parallel()
					results, census, err := CrashMatrix(s, seed, tr, opts)
					if err != nil {
						t.Fatal(err)
					}
					if len(results) == 0 {
						t.Fatal("matrix produced no crash runs")
					}
					for _, r := range results {
						if !r.Fired {
							t.Errorf("%s — armed crash never fired (census drifted?)", r)
						}
						if r.Err != nil {
							t.Errorf("%s\n  reproduce: %s", r, r.Repro())
						}
					}
					assertLSMCoverage(t, s, census)
				})
			}
		}
	}
}

// assertLSMCoverage pins the sites the LSM backend must exercise.
func assertLSMCoverage(t *testing.T, s checkin.Strategy, c *Census) {
	t.Helper()
	want := []inject.Site{
		inject.SiteWALAppend,
		inject.SiteWALCommit,
		inject.SiteMemFlush,
		inject.SiteCompactInstall,
		inject.SiteManifestPublish,
		inject.SiteDeallocate,
	}
	if s.UsesRemap() {
		want = append(want, inject.SiteCheckpointRemap)
	}
	for _, site := range want {
		if c.RunHits[site] == 0 {
			t.Errorf("lsm %s never hit site %s — crash coverage lost", s, site)
		}
	}
	// The journal engine's sites must NOT fire under the LSM backend.
	for _, site := range []inject.Site{inject.SiteJournalAppend, inject.SiteJournalCommit, inject.SiteCheckpointCut} {
		if c.RunHits[site] != 0 {
			t.Errorf("lsm run hit journal-engine site %s %d times", site, c.RunHits[site])
		}
	}
}

// TestLSMStrategyEquivalence: all five checkpoint strategies applied to the
// memtable flush must converge to the identical final key/value state on
// one byte-identical trace — the strategies differ in transfer mechanism
// only, never in recovered content.
func TestLSMStrategyEquivalence(t *testing.T) {
	opts := LSMOptions("leveled")
	tr, err := checkin.RecordWorkload(opts.Keys, sizer(), checkin.WorkloadA, true, opts.Ops, 7)
	if err != nil {
		t.Fatal(err)
	}
	var ref []int64
	var refStrategy checkin.Strategy
	for _, s := range checkin.Strategies {
		got, err := FinalVersions(s, 7, tr, opts)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if ref == nil {
			ref, refStrategy = got, s
			continue
		}
		for k := range ref {
			if ref[k] != got[k] {
				t.Fatalf("%s diverges from %s at key %d: v%d vs v%d", s, refStrategy, k, got[k], ref[k])
			}
		}
	}
}

// lsmFuzzTraces memoizes per-seed traces for FuzzLSMRecovery (trace
// recording dominates the per-execution cost).
var lsmFuzzTraces sync.Map // int64 -> *checkin.Trace

func lsmFuzzTrace(t *testing.T, seed int64) *checkin.Trace {
	if tr, ok := lsmFuzzTraces.Load(seed); ok {
		return tr.(*checkin.Trace)
	}
	tr, err := NewTrace(lsmFuzzOptions("leveled"), seed)
	if err != nil {
		t.Fatal(err)
	}
	lsmFuzzTraces.Store(seed, tr)
	return tr
}

// lsmFuzzOptions shrinks LSMOptions so each fuzz execution stays fast while
// still crossing flushes and at least one compaction.
func lsmFuzzOptions(policy string) Options {
	o := LSMOptions(policy)
	o.Keys = 400
	o.Ops = 1200
	o.Threads = 2
	o.CrashesPerSite = 1
	o.MemtableEntries = 96
	return o
}

// FuzzLSMRecovery lets the fuzzer steer the LSM crash schedule: it picks
// (seed, strategy, policy, site, hit), the harness crashes there, and
// recovery must equal the reference model with the SPOR rebuild lossless
// and the FTL invariants intact. Hits past a site's schedule simply never
// fire and the run validates crash-free.
func FuzzLSMRecovery(f *testing.F) {
	f.Add(int64(1), uint8(4), false, uint8(inject.SiteWALCommit), uint8(3))
	f.Add(int64(2), uint8(0), false, uint8(inject.SiteMemFlush), uint8(2))
	f.Add(int64(3), uint8(4), true, uint8(inject.SiteCompactInstall), uint8(1))
	f.Add(int64(5), uint8(3), false, uint8(inject.SiteManifestPublish), uint8(4))
	f.Add(int64(7), uint8(1), true, uint8(inject.SiteWALAppend), uint8(60))
	f.Fuzz(func(t *testing.T, seed int64, strategyB uint8, tiered bool, siteB, hitB uint8) {
		if seed < 0 {
			seed = -seed
		}
		seed = seed%64 + 1 // bound the trace cache
		strategy := checkin.Strategies[int(strategyB)%len(checkin.Strategies)]
		site := inject.Site(int(siteB) % int(inject.NumSites))
		hit := int(hitB)%200 + 1
		policy := "leveled"
		if tiered {
			policy = "tiered"
		}
		opts := lsmFuzzOptions(policy)
		tr := lsmFuzzTrace(t, seed)
		res := RunCrash(strategy, seed, site, hit, tr, opts)
		if res.Err != nil {
			t.Fatalf("%s\n  reproduce: %s", res, res.Repro())
		}
	})
}
