// Package fsim is a second consumer of the Check-In device: a minimal
// journaling file layer in the style of a data-journaling filesystem
// (ext4 data=journal). It demonstrates the paper's generality claim — "our
// approach can be applied to other storage systems that use journaling and
// checkpointing (e.g., a file system)" — by running the same conventional
// vs in-storage checkpointing comparison over file-block traffic instead
// of key-value records.
//
// The layout is deliberately simple: a fixed population of files, each a
// run of fixed-size blocks at a home location. Block writes are first
// appended to a journal area (write-ahead); a periodic checkpoint moves
// the newest version of every dirty block to its home location — either by
// host read+write (conventional) or by a checkpoint-request command that
// the device serves with FTL remapping (Check-In). File blocks are
// naturally aligned to the mapping unit, which is exactly the regime where
// remapping shines (the paper: "relatively large data also can be
// processed effectively").
package fsim

import (
	"fmt"

	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
)

// Mode selects the checkpoint mechanism.
type Mode uint8

// Checkpointing modes.
const (
	// ModeConventional checkpoints through the host (read journal, write
	// home locations).
	ModeConventional Mode = iota
	// ModeInStorage checkpoints by device-side remapping.
	ModeInStorage
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeInStorage {
		return "in-storage"
	}
	return "conventional"
}

// Config parameterizes the file layer.
type Config struct {
	Files          int
	BlocksPerFile  int
	BlockSize      int // must be a multiple of the device mapping unit
	JournalBytes   int64
	CkptEveryBytes int64 // checkpoint when this much journal accumulates
	HostIOOverhead sim.VTime
}

// DefaultConfig returns a small-file population with 4 KB blocks.
func DefaultConfig() Config {
	return Config{
		Files:          64,
		BlocksPerFile:  64,
		BlockSize:      4096,
		JournalBytes:   8 << 20,
		CkptEveryBytes: 4 << 20,
		HostIOOverhead: 10 * sim.Microsecond,
	}
}

// Stats counts file-layer activity.
type Stats struct {
	BlockWrites  uint64
	Checkpoints  uint64
	CkptBlocks   uint64
	JournalBytes uint64
}

// FS is the journaling file layer bound to a simulated device.
type FS struct {
	eng  *sim.Engine
	dev  *ssd.Device
	cfg  Config
	mode Mode

	journalStart int64
	homeStart    int64
	head         int64 // bytes used in the journal area

	// dirty maps block id → journal offset of its newest version.
	dirty map[int64]int64
	// version truth for validation: in-memory vs home-area versions.
	version []int64
	homeVer []int64

	ckptTime sim.VTime // cumulative time spent checkpointing
	stats    Stats
}

// New lays the file system out on dev.
func New(eng *sim.Engine, dev *ssd.Device, cfg Config, mode Mode) (*FS, error) {
	if cfg.Files < 1 || cfg.BlocksPerFile < 1 {
		return nil, fmt.Errorf("fsim: need at least one file and block")
	}
	unit := dev.FTL().UnitSize()
	if cfg.BlockSize <= 0 || cfg.BlockSize%unit != 0 {
		return nil, fmt.Errorf("fsim: BlockSize %d must be a positive multiple of the mapping unit %d",
			cfg.BlockSize, unit)
	}
	if cfg.JournalBytes < 2*cfg.CkptEveryBytes {
		return nil, fmt.Errorf("fsim: JournalBytes %d must be at least twice CkptEveryBytes %d",
			cfg.JournalBytes, cfg.CkptEveryBytes)
	}
	total := int64(cfg.Files) * int64(cfg.BlocksPerFile)
	need := cfg.JournalBytes + total*int64(cfg.BlockSize)
	if need > dev.LogicalBytes() {
		return nil, fmt.Errorf("fsim: layout needs %d bytes, device exports %d", need, dev.LogicalBytes())
	}
	return &FS{
		eng:          eng,
		dev:          dev,
		cfg:          cfg,
		mode:         mode,
		journalStart: 0,
		homeStart:    cfg.JournalBytes,
		dirty:        make(map[int64]int64),
		version:      make([]int64, total),
		homeVer:      make([]int64, total),
	}, nil
}

// Blocks returns the total block count.
func (fs *FS) Blocks() int64 { return int64(len(fs.version)) }

// Stats returns a snapshot of file-layer counters.
func (fs *FS) Stats() Stats { return fs.stats }

// CheckpointTime returns the cumulative time spent in checkpoints.
func (fs *FS) CheckpointTime() sim.VTime { return fs.ckptTime }

// homeOff returns the home location of a block.
func (fs *FS) homeOff(block int64) int64 {
	return fs.homeStart + block*int64(fs.cfg.BlockSize)
}

// Format writes every block's initial version to its home location.
func (fs *FS) Format(p *sim.Proc) {
	const chunk = 1 << 20
	end := fs.homeOff(fs.Blocks())
	for off := fs.homeStart; off < end; off += chunk {
		n := int64(chunk)
		if off+n > end {
			n = end - off
		}
		fs.dev.Write(off, n, ssd.AreaData)
	}
	p.Wait(fs.dev.Flush(ssd.AreaData))
	for i := range fs.version {
		fs.version[i] = 1
		fs.homeVer[i] = 1
	}
}

// WriteBlock journals a full-block write (data journaling) and returns when
// the journal commit is durable. Checkpointing triggers inline when enough
// journal has accumulated, matching a filesystem's jbd-style behaviour.
func (fs *FS) WriteBlock(p *sim.Proc, block int64) {
	if block < 0 || block >= fs.Blocks() {
		panic(fmt.Sprintf("fsim: block %d out of range", block))
	}
	bs := int64(fs.cfg.BlockSize)
	if fs.head+bs > fs.cfg.JournalBytes {
		fs.Checkpoint(p) // journal full: force a checkpoint (resets head)
	}
	off := fs.journalStart + fs.head
	fs.head += bs
	fs.version[block]++
	fs.dirty[block] = off
	fs.stats.BlockWrites++
	fs.stats.JournalBytes += uint64(bs)

	p.Sleep(fs.cfg.HostIOOverhead)
	fs.dev.Write(off, bs, ssd.AreaJournal)
	p.Wait(fs.dev.Flush(ssd.AreaJournal))

	if fs.head >= fs.cfg.CkptEveryBytes {
		fs.Checkpoint(p)
	}
}

// ReadBlock reads a block (newest version: journal if dirty, else home).
func (fs *FS) ReadBlock(p *sim.Proc, block int64) {
	p.Sleep(fs.cfg.HostIOOverhead)
	if off, ok := fs.dirty[block]; ok {
		p.Wait(fs.dev.Read(off, int64(fs.cfg.BlockSize)))
		return
	}
	p.Wait(fs.dev.Read(fs.homeOff(block), int64(fs.cfg.BlockSize)))
}

// Checkpoint moves every dirty block's newest version to its home location
// using the configured mode, then discards the journal.
func (fs *FS) Checkpoint(p *sim.Proc) {
	if len(fs.dirty) == 0 {
		fs.head = 0
		return
	}
	start := p.Now()
	fs.stats.Checkpoints++
	bs := int64(fs.cfg.BlockSize)

	switch fs.mode {
	case ModeConventional:
		const window = 256
		pending := make([]*sim.Future, 0, window)
		for block, joff := range fs.dirty {
			p.Sleep(fs.cfg.HostIOOverhead)
			fs.dev.Read(joff, bs)
			p.Sleep(fs.cfg.HostIOOverhead)
			fs.dev.Write(fs.homeOff(block), bs, ssd.AreaCheckpoint)
			fs.stats.CkptBlocks++
			if len(pending) >= window {
				p.Wait(fs.dev.Flush(ssd.AreaCheckpoint))
				pending = pending[:0]
			}
		}
		p.Wait(fs.dev.Flush(ssd.AreaCheckpoint))
	case ModeInStorage:
		const batch = 128
		entries := make([]ssd.RemapEntry, 0, batch)
		flush := func() {
			if len(entries) == 0 {
				return
			}
			p.Sleep(fs.cfg.HostIOOverhead)
			_, fut := fs.dev.CheckpointRequest(entries)
			p.Wait(fut)
			entries = entries[:0]
		}
		for block, joff := range fs.dirty {
			entries = append(entries, ssd.RemapEntry{
				Src: joff, Dst: fs.homeOff(block), Len: bs,
			})
			fs.stats.CkptBlocks++
			if len(entries) == batch {
				flush()
			}
		}
		flush()
		p.Wait(fs.dev.Flush(ssd.AreaCheckpoint))
	}

	for block := range fs.dirty {
		fs.homeVer[block] = fs.version[block]
	}
	fs.dirty = make(map[int64]int64)
	p.Wait(fs.dev.Deallocate(fs.journalStart, fs.cfg.JournalBytes))
	fs.head = 0
	fs.ckptTime += p.Now() - start
}

// Validate checks that home versions match for every clean block and that
// dirty blocks are newer in memory — the file layer's consistency
// invariant.
func (fs *FS) Validate() error {
	for b := int64(0); b < fs.Blocks(); b++ {
		if _, dirty := fs.dirty[b]; dirty {
			if fs.version[b] <= fs.homeVer[b] {
				return fmt.Errorf("fsim: dirty block %d not newer than home (v%d vs v%d)",
					b, fs.version[b], fs.homeVer[b])
			}
			continue
		}
		if fs.version[b] != fs.homeVer[b] {
			return fmt.Errorf("fsim: clean block %d version skew (v%d vs home v%d)",
				b, fs.version[b], fs.homeVer[b])
		}
	}
	return nil
}
