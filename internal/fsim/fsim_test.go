package fsim

import (
	"testing"

	"github.com/checkin-kv/checkin/internal/ftl"
	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
)

func newStack(t *testing.T) (*sim.Engine, *ssd.Device) {
	t.Helper()
	e := sim.NewEngine()
	geo := nand.Geometry{
		Channels: 2, PackagesPerChannel: 1, DiesPerPackage: 2, PlanesPerDie: 2,
		BlocksPerPlane: 64, PagesPerBlock: 32, PageSize: 4096,
	}
	tim := nand.Timing{
		ReadPage: 50 * sim.Microsecond, ProgramPage: 500 * sim.Microsecond,
		EraseBlock: 3 * sim.Millisecond, CmdOverhead: sim.Microsecond, ChannelMBps: 400,
	}
	arr, err := nand.New(e, geo, tim)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := ftl.DefaultConfig()
	fcfg.UnitSize = 4096
	fcfg.OverProvision = 0.2
	fcfg.Parallelism = 4
	f, err := ftl.New(e, arr, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := ssd.DefaultConfig()
	dcfg.CacheBytes = 2 << 20
	dcfg.DeallocatorPeriod = 0
	d, err := ssd.New(e, f, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Files = 8
	cfg.BlocksPerFile = 16
	cfg.JournalBytes = 2 << 20
	cfg.CkptEveryBytes = 1 << 20
	return cfg
}

func runProc(e *sim.Engine, fn func(p *sim.Proc)) {
	done := false
	e.Go("test", func(p *sim.Proc) { fn(p); done = true })
	for !done {
		e.RunUntil(e.Now() + 50*sim.Millisecond)
	}
}

func TestNewValidation(t *testing.T) {
	e, d := newStack(t)
	_ = e
	bad := smallCfg()
	bad.Files = 0
	if _, err := New(e, d, bad, ModeConventional); err == nil {
		t.Error("zero files accepted")
	}
	bad = smallCfg()
	bad.BlockSize = 1000 // not a unit multiple
	if _, err := New(e, d, bad, ModeConventional); err == nil {
		t.Error("unaligned block size accepted")
	}
	bad = smallCfg()
	bad.JournalBytes = bad.CkptEveryBytes
	if _, err := New(e, d, bad, ModeConventional); err == nil {
		t.Error("journal smaller than 2x checkpoint threshold accepted")
	}
	bad = smallCfg()
	bad.Files = 100_000
	if _, err := New(e, d, bad, ModeConventional); err == nil {
		t.Error("oversized layout accepted")
	}
	if ModeConventional.String() != "conventional" || ModeInStorage.String() != "in-storage" {
		t.Error("mode names wrong")
	}
}

func TestWriteReadCheckpointCycle(t *testing.T) {
	for _, mode := range []Mode{ModeConventional, ModeInStorage} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			e, d := newStack(t)
			fs, err := New(e, d, smallCfg(), mode)
			if err != nil {
				t.Fatal(err)
			}
			runProc(e, func(p *sim.Proc) {
				fs.Format(p)
				for i := 0; i < 300; i++ {
					fs.WriteBlock(p, int64(i%40))
					if i%7 == 0 {
						fs.ReadBlock(p, int64(i%40))
					}
				}
				fs.Checkpoint(p)
			})
			if err := fs.Validate(); err != nil {
				t.Fatal(err)
			}
			st := fs.Stats()
			if st.BlockWrites != 300 {
				t.Errorf("BlockWrites = %d", st.BlockWrites)
			}
			if st.Checkpoints == 0 || st.CkptBlocks == 0 {
				t.Errorf("no checkpoints happened: %+v", st)
			}
			if fs.CheckpointTime() == 0 {
				t.Error("checkpoint time not accounted")
			}
		})
	}
}

func TestInStorageModeAvoidsCheckpointPrograms(t *testing.T) {
	// 4 KB blocks on a 4 KB mapping unit: in-storage checkpointing should
	// be pure remapping — near-zero checkpoint-tagged programs — while
	// conventional mode rewrites every dirty block.
	programs := map[Mode]uint64{}
	ckptTime := map[Mode]sim.VTime{}
	for _, mode := range []Mode{ModeConventional, ModeInStorage} {
		e, d := newStack(t)
		fs, err := New(e, d, smallCfg(), mode)
		if err != nil {
			t.Fatal(err)
		}
		runProc(e, func(p *sim.Proc) {
			fs.Format(p)
			for i := 0; i < 500; i++ {
				fs.WriteBlock(p, int64(i%64))
			}
			fs.Checkpoint(p)
		})
		if err := fs.Validate(); err != nil {
			t.Fatal(err)
		}
		programs[mode] = d.FTL().Stats().ProgramsByTag[ftl.TagCheckpoint]
		ckptTime[mode] = fs.CheckpointTime()
	}
	if programs[ModeInStorage] != 0 {
		t.Errorf("in-storage checkpoint programmed %d pages, want 0 (pure remap)", programs[ModeInStorage])
	}
	if programs[ModeConventional] == 0 {
		t.Error("conventional checkpoint did no rewrites")
	}
	if ckptTime[ModeInStorage]*2 > ckptTime[ModeConventional] {
		t.Errorf("in-storage checkpoint time %v not ≪ conventional %v",
			ckptTime[ModeInStorage], ckptTime[ModeConventional])
	}
}

func TestJournalFullForcesCheckpoint(t *testing.T) {
	e, d := newStack(t)
	cfg := smallCfg()
	cfg.CkptEveryBytes = 1 << 20
	cfg.JournalBytes = 2 << 20
	fs, err := New(e, d, cfg, ModeInStorage)
	if err != nil {
		t.Fatal(err)
	}
	runProc(e, func(p *sim.Proc) {
		fs.Format(p)
		// 1 MB / 4 KB = 256 writes per checkpoint threshold.
		for i := 0; i < 1000; i++ {
			fs.WriteBlock(p, int64(i%100))
		}
	})
	if fs.Stats().Checkpoints < 3 {
		t.Errorf("Checkpoints = %d, want several", fs.Stats().Checkpoints)
	}
	if err := fs.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBlockOutOfRangePanics(t *testing.T) {
	e, d := newStack(t)
	fs, err := New(e, d, smallCfg(), ModeConventional)
	if err != nil {
		t.Fatal(err)
	}
	runProc(e, func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range block write did not panic")
			}
		}()
		fs.WriteBlock(p, fs.Blocks())
	})
}

func TestFSSPORConsistency(t *testing.T) {
	// After file traffic and checkpoints, the device's own OOB recovery
	// must reconstruct the mapping table exactly.
	e, d := newStack(t)
	fs, err := New(e, d, smallCfg(), ModeInStorage)
	if err != nil {
		t.Fatal(err)
	}
	runProc(e, func(p *sim.Proc) {
		fs.Format(p)
		for i := 0; i < 400; i++ {
			fs.WriteBlock(p, int64(i%50))
		}
		fs.Checkpoint(p)
	})
	rep := d.SimulateSPOR()
	if rep.Mismatches != 0 {
		t.Fatalf("SPOR diverged under file traffic: %s", rep)
	}
}
