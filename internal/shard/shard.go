// Package shard is the multi-device scale-out front-end: a ShardedDB
// hash-shards a multi-tenant key space across N independent engine+SSD
// stacks and drives them with open-loop arrival traffic under cross-shard
// checkpoint scheduling policies.
//
// # Conservative synchronization
//
// Each shard's full stack (engine, journal, FTL, NAND array) lives on its
// own private sim.Engine — a coarse-grained event domain, generalizing the
// per-channel NAND domains of the parallel DES kernel to whole machines.
// The coordinator advances all domains in fixed windows of virtual time:
// it generates and admits the window's arrivals up front (arrivals and
// token-bucket admission are pure functions of arrival times, never of
// service progress), hands each shard its slice, and only then lets the
// domains execute the window — sequentially or on parallel goroutines.
// Cross-domain edges exist solely at those window boundaries: arrival
// dispatch going in, accounting collection coming out. Because shards share
// no mutable state and the inputs to every window are fixed before it runs,
// the merged output is byte-identical to the sequential interleaving at any
// GOMAXPROCS — the window barrier *is* the conservative-sync lookahead, with
// the window length as the horizon.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/workload"
)

// Scheduling policies for cross-shard checkpoint cuts.
const (
	// SchedSync triggers every shard's checkpoint at the same instant —
	// simple global cadence, but all devices absorb checkpoint write
	// traffic simultaneously.
	SchedSync = "sync"
	// SchedStaggered offsets shard i's cut by i/N of the interval — a
	// round-robin that keeps at most ~1/N of shards checkpointing at once.
	SchedStaggered = "staggered"
	// SchedGlobal is a globally consistent snapshot cut: synchronized
	// triggers plus a dequeue stall on each shard until its cut completes,
	// so the set of applied ops at the cut is a consistent frontier across
	// shards. Arrivals keep queueing during the stall; the backlog is the
	// policy's tail-latency price.
	SchedGlobal = "global"
)

// Scheds lists the scheduling policies in presentation order.
func Scheds() []string { return []string{SchedSync, SchedStaggered, SchedGlobal} }

// Config describes a sharded scale-out run.
type Config struct {
	// Shards is the number of independent engine+SSD stacks (default 4).
	Shards int
	// Base is the per-shard stack configuration. Keys is overridden with
	// the derived dense per-shard namespace; everything else (strategy,
	// geometry, checkpoint interval, error profile, domains) applies to
	// every shard identically — which is what lets one load snapshot fork
	// all N stacks.
	Base checkin.Config
	// Arrival is the open-loop traffic model. Tenants must be set (see
	// DefaultTenants).
	Arrival workload.ArrivalConfig
	// TotalOps is the offered arrival count (default 100_000). Shed ops
	// count against it; the run ends when the offered stream is exhausted
	// and every shard drains.
	TotalOps int64
	// Workers is the per-shard service concurrency (default 32): the max
	// in-flight ops a shard pushes toward its device.
	Workers int
	// Sched is the cross-shard checkpoint scheduling policy (default
	// SchedSync).
	Sched string
	// AdmitRatePerSec caps aggregate admitted throughput with per-tenant
	// token buckets sized by tenant weight share (0 = no admission
	// control). AdmitBurst is the bucket depth in ops (default: 1/10 of
	// the tenant's per-second rate).
	AdmitRatePerSec float64
	AdmitBurst      float64
	// Window is the conservative-sync quantum (default 50ms). Smaller
	// windows tighten the arrival lookahead; larger windows amortize the
	// cross-domain barrier. Output is byte-identical at any value — the
	// window only partitions time.
	Window sim.VTime
	// Parallel runs shard domains on parallel goroutines: "on", "off", or
	// ""/"auto" (on when GOMAXPROCS > 1). Output is byte-identical either
	// way.
	Parallel string
	// Seed seeds the arrival stream (default Base.Seed, then 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.TotalOps == 0 {
		c.TotalOps = 100_000
	}
	if c.Workers == 0 {
		c.Workers = 32
	}
	if c.Sched == "" {
		c.Sched = SchedSync
	}
	if c.Window == 0 {
		c.Window = 50 * sim.Millisecond
	}
	if c.Seed == 0 {
		if c.Base.Seed != 0 {
			c.Seed = c.Base.Seed
		} else {
			c.Seed = 1
		}
	}
	return c
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("shard: Shards %d must be >= 1", c.Shards)
	}
	switch c.Sched {
	case SchedSync, SchedStaggered, SchedGlobal:
	default:
		return fmt.Errorf("shard: unknown scheduling policy %q (want sync, staggered or global)", c.Sched)
	}
	switch c.Parallel {
	case "", "auto", "on", "off":
	default:
		return fmt.Errorf("shard: bad Parallel %q (want on, off or auto)", c.Parallel)
	}
	if c.TotalOps < 1 {
		return fmt.Errorf("shard: TotalOps %d must be >= 1", c.TotalOps)
	}
	if c.Workers < 1 {
		return fmt.Errorf("shard: Workers %d must be >= 1", c.Workers)
	}
	if c.AdmitRatePerSec < 0 {
		return fmt.Errorf("shard: AdmitRatePerSec %v must be >= 0", c.AdmitRatePerSec)
	}
	return c.Arrival.Validate()
}

// DefaultTenants builds n tenants with descending traffic shares, heavy
// zipfian skew, distinct workload mixes and tiered SLO targets — the
// multi-tenant population the scheduling experiment runs against.
func DefaultTenants(n int, keysPer int64) []workload.TenantSpec {
	mixes := []workload.Mix{
		workload.WorkloadA,
		{ReadPct: 95, UpdatePct: 5},
		workload.WorkloadF,
		workload.WorkloadWO,
	}
	slos := []sim.VTime{2 * sim.Millisecond, sim.Millisecond, 5 * sim.Millisecond, 10 * sim.Millisecond}
	ts := make([]workload.TenantSpec, n)
	for i := range ts {
		ts[i] = workload.TenantSpec{
			Name:    fmt.Sprintf("t%d", i),
			Weight:  1 << (n - 1 - i), // shares halve down the tenant list
			Keys:    keysPer,
			Mix:     mixes[i%len(mixes)],
			Zipfian: true,
			SLO:     slos[i%len(slos)],
		}
	}
	return ts
}

// ShardedDB is an open sharded system: N loaded stacks plus the arrival
// stream, admission state and routing.
type ShardedDB struct {
	cfg     Config
	perCfg  checkin.Config // resolved per-shard stack configuration
	router  router
	gen     *workload.OpenLoop
	buckets []*tokenBucket
	shards  []*shardRunner
	fp      uint64

	offered []uint64 // per-tenant arrivals generated
	shed    []uint64 // per-tenant arrivals rejected by admission

	tmplWall time.Duration // template load wall time
}

// Open validates cfg, builds the N stacks (loading one template and forking
// it per shard when the configuration is snapshottable) and prepares the
// arrival stream. The returned system is ready to Run.
func Open(cfg Config) (*ShardedDB, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &ShardedDB{
		cfg:     cfg,
		router:  newRouter(cfg.Arrival.TotalKeys(), cfg.Shards),
		offered: make([]uint64, len(cfg.Arrival.Tenants)),
		shed:    make([]uint64, len(cfg.Arrival.Tenants)),
	}
	var err error
	if s.gen, err = workload.NewOpenLoop(cfg.Arrival, cfg.Seed); err != nil {
		return nil, err
	}
	if cfg.AdmitRatePerSec > 0 {
		wsum := 0
		for _, t := range cfg.Arrival.Tenants {
			wsum += t.Weight
		}
		for _, t := range cfg.Arrival.Tenants {
			rate := cfg.AdmitRatePerSec * float64(t.Weight) / float64(wsum)
			burst := cfg.AdmitBurst
			if burst == 0 {
				burst = rate / 10
			}
			s.buckets = append(s.buckets, newTokenBucket(rate, burst))
		}
	}

	s.perCfg = cfg.Base
	s.perCfg.Keys = s.router.shardKeys
	if err := s.buildShards(); err != nil {
		return nil, err
	}
	s.fp = s.fingerprint()
	return s, nil
}

// buildShards loads one template stack and forks it per shard; when the
// configuration is not snapshottable, each shard loads directly.
func (s *ShardedDB) buildShards() error {
	nTenants := len(s.cfg.Arrival.Tenants)
	start := time.Now()
	tmpl, err := checkin.Open(s.perCfg)
	if err != nil {
		return err
	}
	tmpl.Load()
	s.tmplWall = time.Since(start)
	snap, snapErr := tmpl.Snapshot()
	for i := 0; i < s.cfg.Shards; i++ {
		forkStart := time.Now()
		var db *checkin.DB
		if snapErr == nil {
			if db, err = snap.Fork(s.perCfg); err != nil {
				return err
			}
		} else if i == 0 {
			db = tmpl // not snapshottable: the template serves as shard 0
		} else {
			if db, err = checkin.Open(s.perCfg); err != nil {
				return err
			}
			db.Load()
		}
		r := newShardRunner(i, db, nTenants, s.cfg.Workers)
		r.loadWall = time.Since(forkStart)
		s.shards = append(s.shards, r)
	}
	return nil
}

// fingerprint hashes the complete sharded configuration through the same
// collision-checked tag primitive the single-stack fingerprints use, with
// the per-shard stack fingerprint embedded and one tag per tenant.
func (s *ShardedDB) fingerprint() uint64 {
	h := checkin.NewTagHash("shard")
	baseFP, ok := checkin.Fingerprint(s.perCfg)
	h.Tag("stack", "%016x/%v", baseFP, ok)
	h.Tag("n", "%d", s.cfg.Shards)
	h.Tag("sched", "%s", s.cfg.Sched)
	h.Tag("ops", "%d", s.cfg.TotalOps)
	h.Tag("workers", "%d", s.cfg.Workers)
	h.Tag("win", "%d", s.cfg.Window)
	h.Tag("admit", "%v/%v", s.cfg.AdmitRatePerSec, s.cfg.AdmitBurst)
	h.Tag("seed", "%d", s.cfg.Seed)
	a := s.cfg.Arrival
	h.Tag("arrival", "%s/%v/%v/%d/%d", a.Process, a.RatePerSec, a.DiurnalAmp, a.DiurnalPeriod, a.Clients)
	h.TagIf(a.Flash != nil, "flash", "%+v", a.Flash)
	for i, t := range a.Tenants {
		h.Tag(fmt.Sprintf("tenant%d", i), "%s/%d/%d/%+v/%v/%v/%d",
			t.Name, t.Weight, t.Keys, t.Mix, t.Zipfian, t.Theta, t.SLO)
	}
	return h.Sum()
}

// Fingerprint identifies the full sharded configuration; equal fingerprints
// run identical simulations.
func (s *ShardedDB) Fingerprint() uint64 { return s.fp }

// parallelOn resolves the Parallel setting.
func (s *ShardedDB) parallelOn() bool {
	switch s.cfg.Parallel {
	case "on":
		return true
	case "off":
		return false
	default:
		return runtime.GOMAXPROCS(0) > 1 && s.cfg.Shards > 1
	}
}

// Run executes the offered stream to exhaustion plus drain and returns the
// report. One call per ShardedDB.
func (s *ShardedDB) Run() (*Report, error) {
	wallStart := time.Now()
	interval := sim.VTime(s.shards[0].db.Config().CheckpointInterval.Nanoseconds())
	nShards := len(s.shards)

	remaining := s.cfg.TotalOps
	var pending *workload.Arrival // lookahead arrival beyond the current window
	staged := make([][]workload.Arrival, nShards)
	winStart := sim.VTime(0)

	for {
		winEnd := winStart + s.cfg.Window

		// Phase 1 (coordinator, sequential): generate, admit and route the
		// window's arrivals. Everything here is a pure function of the
		// arrival stream — no shard state is consulted — so the slices are
		// identical however the previous window was executed.
		for i := range staged {
			staged[i] = staged[i][:0]
		}
		for remaining > 0 {
			if pending == nil {
				a := s.gen.Next()
				pending = &a
			}
			if pending.At >= winEnd {
				break
			}
			a := *pending
			pending = nil
			remaining--
			s.offered[a.Tenant]++
			if s.buckets != nil && !s.buckets[a.Tenant].admit(a.At) {
				s.shed[a.Tenant]++
				continue
			}
			sh, local := s.router.place(a.Op.Key)
			a.Op.Key = local
			staged[sh] = append(staged[sh], a)
		}

		// Phase 2: stage arrivals and the window's checkpoint cuts.
		trafficLive := remaining > 0 || pending != nil
		for i, r := range s.shards {
			r.stage(staged[i])
			if trafficLive {
				r.scheduleCuts(s.cutsFor(i, interval, winStart, winEnd))
			}
		}

		// Phase 3: run the window — the only parallel section. Shards
		// share no mutable state; the WaitGroup join is the barrier that
		// publishes their private progress back to the coordinator.
		if s.parallelOn() {
			var wg sync.WaitGroup
			for _, r := range s.shards {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					r.run(r.base + winEnd)
				}()
			}
			wg.Wait()
		} else {
			for _, r := range s.shards {
				r.run(r.base + winEnd)
			}
		}

		// Phase 4: termination and progress checks.
		if !trafficLive {
			idle := true
			for _, r := range s.shards {
				if !r.idle() {
					idle = false
					if _, ok := r.eng.NextEventAt(); !ok && r.sem.Waiting() == s.cfg.Workers {
						// A backlogged shard with an empty event queue and
						// every worker parked can never drain — a driver
						// bug; fail loudly instead of spinning windows.
						return nil, fmt.Errorf("shard %d stalled with %d ops outstanding",
							r.id, r.queued-r.done)
					}
				}
			}
			if idle {
				break
			}
		}
		winStart = winEnd
	}

	for _, r := range s.shards {
		r.close(s.cfg.Workers)
	}
	return s.report(time.Since(wallStart)), nil
}

// cutsFor returns shard i's checkpoint triggers inside [winStart, winEnd).
func (s *ShardedDB) cutsFor(i int, interval, winStart, winEnd sim.VTime) []cut {
	phase := sim.VTime(0)
	if s.cfg.Sched == SchedStaggered {
		phase = sim.VTime(int64(interval) * int64(i) / int64(s.cfg.Shards))
	}
	pause := s.cfg.Sched == SchedGlobal
	var cuts []cut
	// Cuts at k*interval+phase for k >= 1 (the cadence starts one interval
	// in, like the engine's own periodic scheduler), restricted to the
	// window. k0 jumps straight to the window so cost stays O(cuts), not
	// O(elapsed/interval).
	base := s.shards[i].base
	k0 := int64(1)
	if winStart > phase {
		if k := int64((winStart - phase) / interval); k > k0 {
			k0 = k
		}
	}
	for k := k0; ; k++ {
		at := sim.VTime(k)*interval + phase
		if at >= winEnd {
			break
		}
		if at >= winStart {
			cuts = append(cuts, cut{at: base + at, pause: pause})
		}
	}
	return cuts
}
