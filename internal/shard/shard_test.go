package shard

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/workload"
)

// TestRouterBijection: the Feistel permutation routes every global key to a
// unique (shard, local) coordinate, locals stay inside the dense per-shard
// namespace, and the per-shard key counts balance to within the pigeonhole
// bound.
func TestRouterBijection(t *testing.T) {
	for _, tc := range []struct {
		total  int64
		shards int
	}{{1000, 4}, {1, 1}, {7, 3}, {65536, 10}, {99_991, 7}} {
		r := newRouter(tc.total, tc.shards)
		seen := make(map[int64]bool, tc.total)
		perShard := make([]int64, tc.shards)
		for g := int64(0); g < tc.total; g++ {
			sh, local := r.place(g)
			if sh < 0 || sh >= tc.shards {
				t.Fatalf("total=%d shards=%d: key %d routed to shard %d", tc.total, tc.shards, g, sh)
			}
			if local < 0 || local >= r.shardKeys {
				t.Fatalf("total=%d shards=%d: key %d local %d outside [0, %d)", tc.total, tc.shards, g, local, r.shardKeys)
			}
			coord := int64(sh)*r.shardKeys + local
			if seen[coord] {
				t.Fatalf("total=%d shards=%d: collision at shard %d local %d", tc.total, tc.shards, sh, local)
			}
			seen[coord] = true
			perShard[sh]++
		}
		min, max := perShard[0], perShard[0]
		for _, n := range perShard {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Fatalf("total=%d shards=%d: unbalanced placement %v", tc.total, tc.shards, perShard)
		}
	}
}

// TestRouterSpreadsTenants: contiguous tenant key ranges must spread across
// every shard, not land on one — the point of hashing before sharding.
func TestRouterSpreadsTenants(t *testing.T) {
	r := newRouter(8000, 8)
	hit := make(map[int]bool)
	for g := int64(0); g < 1000; g++ { // one tenant's contiguous namespace
		sh, _ := r.place(g)
		hit[sh] = true
	}
	if len(hit) != 8 {
		t.Fatalf("tenant namespace touched only %d of 8 shards", len(hit))
	}
}

// TestTokenBucket: refill follows virtual time, bursts cap, dry buckets
// shed, and the decision stream is a pure function of arrival times.
func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(1000, 10) // 1k ops/s, burst 10
	admitted := 0
	for i := 0; i < 20; i++ { // simultaneous burst
		if b.admit(0) {
			admitted++
		}
	}
	if admitted != 10 {
		t.Fatalf("burst admitted %d, want 10", admitted)
	}
	if b.admit(500 * sim.Microsecond) {
		t.Fatal("admitted with only half a token refilled")
	}
	// The failed admission above consumed no token; 1.5ms refills past 1.
	if !b.admit(2 * sim.Millisecond) {
		t.Fatal("shed with a refilled token")
	}
}

func testConfig(shards int, sched string) Config {
	base := checkin.DefaultConfig()
	base.Strategy = checkin.StrategyCheckIn
	// Traffic spans ~40ms (TotalOps / RatePerSec); a 10ms cadence lands
	// several cuts inside it.
	base.CheckpointInterval = 10 * time.Millisecond
	return Config{
		Shards: shards,
		Base:   base,
		Arrival: workload.ArrivalConfig{
			Process:    "poisson",
			RatePerSec: 150_000,
			Tenants:    DefaultTenants(3, 2000),
		},
		TotalOps: 6_000,
		Workers:  8,
		Sched:    sched,
		Window:   20 * sim.Millisecond,
		Seed:     1,
	}
}

// TestShardedRunCompletes: a small run drains fully, conserves ops
// (offered = shed + done) and reports sane accounting.
func TestShardedRunCompletes(t *testing.T) {
	cfg := testConfig(3, SchedSync)
	cfg.AdmitRatePerSec = 120_000 // sheds some of the 150k offered
	cfg.AdmitBurst = 20           // default burst would absorb this short run
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered != uint64(cfg.TotalOps) {
		t.Fatalf("offered %d, want %d", rep.Offered, cfg.TotalOps)
	}
	if rep.Shed == 0 {
		t.Fatal("admission control shed nothing at 80% of offered rate")
	}
	if rep.Done+rep.Shed != rep.Offered {
		t.Fatalf("op conservation: done %d + shed %d != offered %d", rep.Done, rep.Shed, rep.Offered)
	}
	if rep.Elapsed == 0 {
		t.Fatal("zero makespan")
	}
	var shardDone uint64
	for _, sr := range rep.ShardRows {
		shardDone += sr.Done
	}
	if shardDone != rep.Done {
		t.Fatalf("per-shard done %d != total %d", shardDone, rep.Done)
	}
	for _, tr := range rep.Tenants {
		if tr.Done > 0 && tr.P99 == 0 {
			t.Fatalf("tenant %s: %d ops but zero p99", tr.Name, tr.Done)
		}
	}
}

// TestShardedSchedulingPolicies: each policy produces checkpoints on every
// shard; staggered cuts fire at distinct phases (observable as shards'
// checkpoint counts staying within one of each other while their first cuts
// differ); the global policy still completes and drains.
func TestShardedSchedulingPolicies(t *testing.T) {
	for _, sched := range Scheds() {
		s, err := Open(testConfig(3, sched))
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		for _, sr := range rep.ShardRows {
			if sr.Checkpoints == 0 {
				t.Fatalf("%s: shard %d ran no checkpoints", sched, sr.ID)
			}
		}
		if rep.Done == 0 || rep.Done != rep.Offered-rep.Shed {
			t.Fatalf("%s: bad accounting %+v", sched, rep)
		}
	}
}

// TestShardedDeterminismMatrix: rendered output is byte-identical across
// shard-parallelism on/off and across GOMAXPROCS settings — the PR 6 bar,
// generalized to whole engine stacks. CI additionally runs this under
// -race -cpu 1,4.
func TestShardedDeterminismMatrix(t *testing.T) {
	render := func(parallel string, sched string) string {
		cfg := testConfig(3, sched)
		cfg.Parallel = parallel
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	for _, sched := range Scheds() {
		off := render("off", sched)
		on := render("on", sched)
		if off != on {
			t.Fatalf("%s: parallel on/off outputs differ:\n--- off ---\n%s\n--- on ---\n%s", sched, off, on)
		}
		prev := runtime.GOMAXPROCS(1)
		one := render("on", sched)
		runtime.GOMAXPROCS(prev)
		if one != off {
			t.Fatalf("%s: GOMAXPROCS=1 output differs:\n--- gomaxprocs=1 ---\n%s\n--- baseline ---\n%s", sched, one, off)
		}
	}
}

// TestShardedGlobalCutPausesService: under the global policy the write tail
// must reflect the dequeue stall — p99.9 at least as high as the sync
// policy's on the same traffic (the backlog the consistent cut builds).
func TestShardedGlobalCutPausesService(t *testing.T) {
	run := func(sched string) *Report {
		s, err := Open(testConfig(2, sched))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	syncRep := run(SchedSync)
	globalRep := run(SchedGlobal)
	var syncMax, globalMax sim.VTime
	for i := range syncRep.Tenants {
		if v := syncRep.Tenants[i].P999; v > syncMax {
			syncMax = v
		}
		if v := globalRep.Tenants[i].P999; v > globalMax {
			globalMax = v
		}
	}
	if globalMax < syncMax {
		t.Fatalf("global-consistent cut tail %v below sync %v — the stall had no cost?", globalMax, syncMax)
	}
}

// TestShardedSeedSensitivity: different arrival seeds produce different
// reports (the stream actually feeds the system), equal seeds reproduce
// byte-identically.
func TestShardedSeedSensitivity(t *testing.T) {
	render := func(seed int64) string {
		cfg := testConfig(2, SchedSync)
		cfg.Seed = seed
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rep.String()
	}
	a1, a2, b := render(1), render(1), render(2)
	if a1 != a2 {
		t.Fatal("same seed did not reproduce")
	}
	if a1 == b {
		t.Fatal("seeds 1 and 2 produced identical reports")
	}
}

// TestShardedConfigValidation exercises the rejection paths.
func TestShardedConfigValidation(t *testing.T) {
	good := testConfig(2, SchedSync)
	bad := []func(*Config){
		func(c *Config) { c.Sched = "roundrobin" },
		func(c *Config) { c.Parallel = "maybe" },
		func(c *Config) { c.TotalOps = -1 },
		func(c *Config) { c.Workers = -2 },
		func(c *Config) { c.AdmitRatePerSec = -5 },
		func(c *Config) { c.Arrival.Tenants = nil },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if _, err := Open(cfg); err == nil {
			t.Errorf("mutation %d: Open accepted an invalid config", i)
		}
	}
}

// TestShardFingerprintSensitivity: the sharded config fingerprint moves with
// every knob that changes the simulation.
func TestShardFingerprintSensitivity(t *testing.T) {
	fp := func(mutate func(*Config)) uint64 {
		cfg := testConfig(2, SchedSync)
		mutate(&cfg)
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.Fingerprint()
	}
	base := fp(func(*Config) {})
	muts := map[string]func(*Config){
		"shards":  func(c *Config) { c.Shards = 3 },
		"sched":   func(c *Config) { c.Sched = SchedStaggered },
		"rate":    func(c *Config) { c.Arrival.RatePerSec *= 2 },
		"tenants": func(c *Config) { c.Arrival.Tenants = DefaultTenants(2, 2000) },
		"seed":    func(c *Config) { c.Seed = 9 },
		"admit":   func(c *Config) { c.AdmitRatePerSec = 50_000 },
		"strat":   func(c *Config) { c.Base.Strategy = checkin.StrategyBaseline },
	}
	for name, m := range muts {
		if fp(m) == base {
			t.Errorf("%s: fingerprint did not change", name)
		}
	}
	if fp(func(*Config) {}) != base {
		t.Error("fingerprint not stable across identical configs")
	}
}

// TestParseArrival covers the spec grammar both ways.
func TestParseArrival(t *testing.T) {
	good := map[string]func(workload.ArrivalConfig) bool{
		"poisson:200000": func(c workload.ArrivalConfig) bool {
			return c.Process == "poisson" && c.RatePerSec == 200000 && c.Flash == nil
		},
		"poisson:1000:flash": func(c workload.ArrivalConfig) bool {
			return c.Flash != nil && c.Flash.RateMult == 4
		},
		"diurnal:50000:0.6:200ms": func(c workload.ArrivalConfig) bool {
			return c.Process == "diurnal" && c.DiurnalAmp == 0.6 &&
				c.DiurnalPeriod == 200*sim.Millisecond
		},
		"diurnal:50000:0.3:2s:flash": func(c workload.ArrivalConfig) bool {
			return c.Flash != nil && c.DiurnalPeriod == 2*sim.Second
		},
	}
	for spec, check := range good {
		c, err := ParseArrival(spec)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
		} else if !check(c) {
			t.Errorf("%s: parsed to %+v", spec, c)
		}
	}
	bad := []string{"", "poisson", "poisson:0", "poisson:-5", "poisson:1000:extra",
		"bursty:1000", "diurnal:1000", "diurnal:1000:1.5:2s", "diurnal:1000:0.5:nope",
		"diurnal:1000:0.5:-2s", "flash"}
	for _, spec := range bad {
		if _, err := ParseArrival(spec); err == nil {
			t.Errorf("%q: accepted", spec)
		}
	}
}

func BenchmarkShardedRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig(4, SchedStaggered)
		cfg.TotalOps = 20_000
		s, err := Open(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleReport() {
	// Deterministic micro-run: 1 shard, tiny op count, admission off.
	cfg := testConfig(1, SchedSync)
	cfg.TotalOps = 100
	cfg.Workers = 4
	s, err := Open(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, err := s.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("offered=%d done=%d shards=%d\n", rep.Offered, rep.Done, rep.Shards)
	// Output: offered=100 done=100 shards=1
}
