package shard

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/stats"
)

// TenantReport is one tenant's end-to-end accounting, merged across shards.
type TenantReport struct {
	Name    string
	Offered uint64 // arrivals generated
	Shed    uint64 // rejected by admission control
	Done    uint64 // completed ops
	Mean    sim.VTime
	P50     sim.VTime
	P99     sim.VTime
	P999    sim.VTime
	ReadP99 sim.VTime
	WriteP99 sim.VTime
	// SLO accounting: target latency and the fraction of completed ops
	// that exceeded it (0 when no target is configured).
	SLO        sim.VTime
	SLOMissPct float64
}

// ShardReport is one shard's view — the imbalance row.
type ShardReport struct {
	ID          int
	Done        uint64
	PeakQueue   int
	Checkpoints int
	MeanCkpt    sim.VTime
	LastDone    sim.VTime // completion offset of the shard's final op
	// Wall-clock phases (observational; excluded from Render so rendered
	// reports stay byte-comparable across machines and parallelism).
	LoadWall time.Duration
	RunWall  time.Duration
}

// Report is the result of one sharded run.
type Report struct {
	Shards      int
	Workers     int
	Sched       string
	Parallel    bool
	Process     string
	RatePerSec  float64
	Fingerprint uint64

	Offered  uint64
	Admitted uint64
	Shed     uint64
	Done     uint64
	Elapsed  sim.VTime // virtual makespan: latest completion across shards

	Tenants   []TenantReport
	ShardRows []ShardReport

	// Wall is total run wall time; LoadWall the template load. Excluded
	// from Render.
	Wall     time.Duration
	LoadWall time.Duration
}

// report assembles the Report, merging per-tenant sketches across shards in
// shard order — the only cross-shard statistics operation, and a
// deterministic one.
func (s *ShardedDB) report(wall time.Duration) *Report {
	rep := &Report{
		Shards:      s.cfg.Shards,
		Workers:     s.cfg.Workers,
		Sched:       s.cfg.Sched,
		Parallel:    s.parallelOn(),
		Process:     s.cfg.Arrival.Process,
		RatePerSec:  s.cfg.Arrival.RatePerSec,
		Fingerprint: s.fp,
		Wall:        wall,
		LoadWall:    s.tmplWall,
	}
	for ti, t := range s.cfg.Arrival.Tenants {
		var all, rd, wr stats.Histogram
		var done uint64
		for _, r := range s.shards {
			ta := &r.tenants[ti]
			done += ta.done
			all.Merge(&ta.allLat)
			rd.Merge(&ta.readLat)
			wr.Merge(&ta.writeLat)
		}
		ps := all.Percentiles(50, 99, 99.9)
		tr := TenantReport{
			Name:     t.Name,
			Offered:  s.offered[ti],
			Shed:     s.shed[ti],
			Done:     done,
			Mean:     sim.VTime(all.Mean()),
			P50:      sim.VTime(ps[0]),
			P99:      sim.VTime(ps[1]),
			P999:     sim.VTime(ps[2]),
			ReadP99:  sim.VTime(rd.Percentile(99)),
			WriteP99: sim.VTime(wr.Percentile(99)),
			SLO:      t.SLO,
		}
		if t.SLO > 0 && done > 0 {
			tr.SLOMissPct = 100 * float64(all.CountAbove(uint64(t.SLO))) / float64(done)
		}
		rep.Tenants = append(rep.Tenants, tr)
		rep.Offered += tr.Offered
		rep.Shed += tr.Shed
		rep.Done += done
	}
	rep.Admitted = rep.Offered - rep.Shed
	for _, r := range s.shards {
		m := r.en.Metrics()
		sr := ShardReport{
			ID:          r.id,
			Done:        r.done,
			PeakQueue:   r.qPeak,
			Checkpoints: m.Checkpoints(),
			MeanCkpt:    m.MeanCheckpointTime(),
			LastDone:    r.lastDone,
			LoadWall:    r.loadWall,
			RunWall:     r.runWall,
		}
		if sr.LastDone > rep.Elapsed {
			rep.Elapsed = sr.LastDone
		}
		rep.ShardRows = append(rep.ShardRows, sr)
	}
	return rep
}

// Render writes the deterministic report: configuration identity, totals,
// the per-tenant SLO table and the per-shard balance table. Wall-clock
// fields are deliberately absent — rendered reports byte-compare across
// GOMAXPROCS, shard parallelism on/off and machines.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "sharded run: %d shards x %d workers, %s arrivals @ %.0f/s, cksched=%s, config %016x\n",
		r.Shards, r.Workers, r.Process, r.RatePerSec, r.Sched, r.Fingerprint)
	fmt.Fprintf(w, "  offered %d  admitted %d  shed %d  done %d  makespan %v\n",
		r.Offered, r.Admitted, r.Shed, r.Done, r.Elapsed)
	fmt.Fprintf(w, "  %-8s %10s %8s %8s %10s %10s %10s %10s %10s %8s\n",
		"tenant", "offered", "shed", "done", "mean", "p50", "p99", "p99.9", "slo", "miss%")
	for _, t := range r.Tenants {
		slo := "-"
		miss := "-"
		if t.SLO > 0 {
			slo = t.SLO.String()
			miss = fmt.Sprintf("%.2f", t.SLOMissPct)
		}
		fmt.Fprintf(w, "  %-8s %10d %8d %8d %10v %10v %10v %10v %10s %8s\n",
			t.Name, t.Offered, t.Shed, t.Done, t.Mean, t.P50, t.P99, t.P999, slo, miss)
	}
	fmt.Fprintf(w, "  %-8s %10s %10s %8s %12s %12s\n",
		"shard", "done", "peakq", "ckpts", "mean-ckpt", "last-done")
	for _, s := range r.ShardRows {
		fmt.Fprintf(w, "  %-8s %10d %10d %8d %12v %12v\n",
			fmt.Sprintf("s%d", s.ID), s.Done, s.PeakQueue, s.Checkpoints, s.MeanCkpt, s.LastDone)
	}
}

// String renders the deterministic report to a string.
func (r *Report) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}
