package shard

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/workload"
)

// ParseArrival resolves an arrival-process spec string into an
// ArrivalConfig (tenants are supplied separately — see DefaultTenants).
// Grammar:
//
//	poisson:RATE[:flash]
//	diurnal:RATE:AMP:PERIOD[:flash]
//
// RATE is offered ops/sec, AMP the diurnal modulation depth in [0, 1),
// PERIOD a duration ("2s", "500ms"). A trailing "flash" element adds the
// canonical flash crowd: a 4x rate spike 80ms in, lasting 60ms, with 90%
// of the spiking tenant's keys drawn from a 64-key hot set.
func ParseArrival(spec string) (workload.ArrivalConfig, error) {
	var cfg workload.ArrivalConfig
	parts := strings.Split(spec, ":")
	flash := false
	if n := len(parts); n > 1 && parts[n-1] == "flash" {
		flash = true
		parts = parts[:n-1]
	}
	bad := func(why string) (workload.ArrivalConfig, error) {
		return cfg, fmt.Errorf("shard: bad arrival spec %q: %s (want poisson:RATE[:flash] or diurnal:RATE:AMP:PERIOD[:flash])", spec, why)
	}
	if len(parts) < 2 {
		return bad("missing rate")
	}
	rate, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || rate <= 0 {
		return bad("rate must be a positive number")
	}
	cfg.Process = parts[0]
	cfg.RatePerSec = rate
	switch parts[0] {
	case "poisson":
		if len(parts) != 2 {
			return bad("poisson takes only a rate")
		}
	case "diurnal":
		if len(parts) != 4 {
			return bad("diurnal takes rate, amplitude and period")
		}
		amp, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || amp < 0 || amp >= 1 {
			return bad("amplitude must be in [0, 1)")
		}
		period, err := time.ParseDuration(parts[3])
		if err != nil || period <= 0 {
			return bad("period must be a positive duration")
		}
		cfg.DiurnalAmp = amp
		cfg.DiurnalPeriod = sim.VTime(period.Nanoseconds())
	default:
		return bad("unknown process")
	}
	if flash {
		cfg.Flash = &workload.FlashCrowd{
			At:       80 * sim.Millisecond,
			Duration: 60 * sim.Millisecond,
			RateMult: 4,
			Tenant:   0,
			HotKeys:  64,
			HotFrac:  0.9,
		}
	}
	return cfg, nil
}
