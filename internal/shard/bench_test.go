package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/workload"
)

// TestShardBenchSmoke runs the acceptance scenario — 10 shards, 10^7
// open-loop ops, multi-tenant SLO accounting — and writes wall-clock,
// memory-footprint and per-tenant SLO evidence to the file named by
// BENCH_SHARD_OUT (skipped when unset, so ordinary test runs stay fast).
// The committed BENCH_shard.json is a snapshot of one such run.
//
// Bounded memory is the point: arrivals are generated window by window, the
// per-shard queue recycles whenever it drains, latency lives in O(1)
// streaming sketches, and the modeled million-client population costs one
// RNG draw per op — so the heap high-water mark must stay far below
// anything proportional to the 10^7-op stream.
func TestShardBenchSmoke(t *testing.T) {
	out := os.Getenv("BENCH_SHARD_OUT")
	if out == "" {
		t.Skip("set BENCH_SHARD_OUT=<path> to run the sharded scale-out bench smoke")
	}
	base := checkin.DefaultConfig()
	base.Strategy = checkin.StrategyCheckIn
	base.CheckpointInterval = 100 * time.Millisecond
	cfg := Config{
		Shards: 10,
		Base:   base,
		Arrival: workload.ArrivalConfig{
			Process:    "poisson",
			RatePerSec: 500_000,
			Tenants:    DefaultTenants(4, 5000),
		},
		TotalOps:        10_000_000,
		Workers:         32,
		Sched:           SchedStaggered,
		AdmitRatePerSec: 475_000,
		Seed:            1,
	}
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	runtime.GC()
	var live runtime.MemStats
	runtime.ReadMemStats(&live)

	if rep.Offered != uint64(cfg.TotalOps) {
		t.Fatalf("offered %d, want %d", rep.Offered, cfg.TotalOps)
	}
	if rep.Done+rep.Shed != rep.Offered {
		t.Fatalf("conservation: done %d + shed %d != offered %d", rep.Done, rep.Shed, rep.Offered)
	}

	tenants := make([]map[string]any, 0, len(rep.Tenants))
	for _, tr := range rep.Tenants {
		tenants = append(tenants, map[string]any{
			"tenant":    tr.Name,
			"offered":   tr.Offered,
			"shed":      tr.Shed,
			"done":      tr.Done,
			"mean":      tr.Mean.String(),
			"p50":       tr.P50.String(),
			"p99":       tr.P99.String(),
			"p99_9":     tr.P999.String(),
			"slo":       tr.SLO.String(),
			"miss_pct":  round3(tr.SLOMissPct),
			"read_p99":  tr.ReadP99.String(),
			"write_p99": tr.WriteP99.String(),
		})
	}
	shardRows := make([]map[string]any, 0, len(rep.ShardRows))
	for _, sr := range rep.ShardRows {
		shardRows = append(shardRows, map[string]any{
			"shard":       sr.ID,
			"done":        sr.Done,
			"peak_queue":  sr.PeakQueue,
			"checkpoints": sr.Checkpoints,
			"mean_ckpt":   sr.MeanCkpt.String(),
			"last_done":   sr.LastDone.String(),
		})
	}
	report := map[string]any{
		"description": fmt.Sprintf(
			"Sharded scale-out acceptance scenario: %d shards x %d workers, %d open-loop ops at %.0f/s poisson over %d tenants (modeled 1M-client population), %s checkpoint scheduling, admission at %.0f/s. Heap growth is the run's high-water footprint over the pre-run baseline — bounded because arrivals stream window-by-window into recycled queues and O(1) latency sketches, never materializing the op stream.",
			cfg.Shards, cfg.Workers, cfg.TotalOps, cfg.Arrival.RatePerSec,
			len(cfg.Arrival.Tenants), cfg.Sched, cfg.AdmitRatePerSec),
		"machine": map[string]any{
			"cpu":    cpuModel(),
			"cores":  runtime.NumCPU(),
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
		},
		"config": map[string]any{
			"shards": cfg.Shards, "workers": cfg.Workers, "ops": cfg.TotalOps,
			"rate_per_sec": cfg.Arrival.RatePerSec, "cksched": cfg.Sched,
			"admit_rate_per_sec": cfg.AdmitRatePerSec, "seed": cfg.Seed,
			"fingerprint": fmt.Sprintf("%016x", rep.Fingerprint),
		},
		"results": map[string]any{
			"offered": rep.Offered, "admitted": rep.Admitted,
			"shed": rep.Shed, "done": rep.Done,
			"virtual_makespan":  rep.Elapsed.String(),
			"wall_seconds":      round3(rep.Wall.Seconds()),
			"load_wall_seconds": round3(rep.LoadWall.Seconds()),
			"ops_per_wall_sec":  int64(float64(rep.Done) / rep.Wall.Seconds()),
			"heap_sys_growth_mib": round3(float64(after.HeapSys-before.HeapSys) / (1 << 20)),
			"live_heap_mib":       round3(float64(live.HeapAlloc) / (1 << 20)),
			"total_alloc_mib":     round3(float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)),
		},
		"tenants":    tenants,
		"shards":     shardRows,
		"determinism": "Rendered reports are byte-identical across shard-parallelism on/off and GOMAXPROCS settings (TestShardedDeterminismMatrix, CI -race -cpu 1,4); multi-core speedup evidence is carried by those GOMAXPROCS-forcing tests since this container is single-core.",
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("10-shard %d-op run: %.1fs wall, %.1f MiB heap-sys growth, %.1f MiB live after GC, wrote %s",
		cfg.TotalOps, rep.Wall.Seconds(), float64(after.HeapSys-before.HeapSys)/(1<<20),
		float64(live.HeapAlloc)/(1<<20), out)
}

func round3(v float64) float64 { return float64(int64(v*1000)) / 1000 }

// cpuModel extracts the CPU model name (Linux) for the machine stanza.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return "unknown"
}
