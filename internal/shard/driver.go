package shard

import (
	"fmt"
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/core"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/stats"
	"github.com/checkin-kv/checkin/internal/workload"
)

// shardRunner drives one engine+SSD stack as an event domain. Everything it
// touches — its DB's private sim.Engine, its queue, its histograms — is
// owned by this shard alone; the coordinator writes the staged arrival
// slice and cut schedule strictly before a window runs and reads the
// accounting strictly after, so a window's execution shares no mutable
// state across shards and parallel windows are race-free by construction.
type shardRunner struct {
	id   int
	db   *checkin.DB
	en   *core.Engine
	eng  *sim.Engine
	base sim.VTime // domain clock at run start; arrivals are offsets from it

	// FIFO of admitted, not-yet-claimed ops. head indexes the next op; the
	// backing array recycles on a full drain and compacts whenever the
	// consumed prefix dominates, so memory is bounded by the peak backlog,
	// not the run length.
	queue []pendingOp
	head  int
	sem   *sim.Semaphore // one permit per queued op (plus close releases)

	paused  bool        // global-consistent cut: dequeue stalled
	resume  *sim.Future // completes when the pausing checkpoint finishes
	closing bool

	// arrival slice staged for the current window (keys already local)
	arr    []workload.Arrival
	arrIdx int

	tenants  []tenantAcct
	queued   uint64
	done     uint64
	qPeak    int
	lastDone sim.VTime // completion offset of the latest finished op

	loadWall time.Duration // snapshot-fork (or direct load) wall time
	runWall  time.Duration // cumulative wall time inside RunUntil windows
}

type pendingOp struct {
	at     sim.VTime // absolute arrival time on this shard's clock
	tenant int32
	op     workload.Op // Key is shard-local
}

// tenantAcct is one shard's streaming accounting for one tenant. Histograms
// are O(1) sketches; merging across shards in shard order at report time is
// the only cross-shard stats operation.
type tenantAcct struct {
	done     uint64
	readLat  stats.Histogram
	writeLat stats.Histogram
	allLat   stats.Histogram
}

func newShardRunner(id int, db *checkin.DB, tenants int, workers int) *shardRunner {
	s := &shardRunner{
		id:      id,
		db:      db,
		en:      db.Engine(),
		eng:     db.Engine().Sim(),
		tenants: make([]tenantAcct, tenants),
	}
	s.base = s.eng.Now()
	s.sem = sim.NewSemaphore(s.eng, 0)
	s.startWorkers(workers)
	return s
}

// startWorkers spawns the long-lived service processes. A fixed worker pool
// (rather than one process per op) bounds the shard's concurrency toward
// its device — the front-end's max in-flight requests — and keeps the
// goroutine count independent of the op count, which is what lets a 10^7-op
// open-loop run complete in bounded memory.
func (s *shardRunner) startWorkers(n int) {
	for w := 0; w < n; w++ {
		s.eng.Go(fmt.Sprintf("shard%d-worker-%d", s.id, w), func(p *sim.Proc) {
			for {
				s.sem.Acquire(p)
				for s.paused {
					p.Wait(s.resume)
				}
				if s.head >= len(s.queue) {
					if s.closing {
						return
					}
					continue // close-time release raced a real op; harmless
				}
				po := s.queue[s.head]
				s.queue[s.head] = pendingOp{}
				s.head++
				if s.head == len(s.queue) {
					s.queue = s.queue[:0]
					s.head = 0
				} else if s.head >= 4096 && s.head*2 >= len(s.queue) {
					// A persistently backlogged shard may never fully drain;
					// sliding the live suffix down whenever the consumed
					// prefix dominates keeps the array O(backlog) instead of
					// O(ops since the last full drain). Amortized O(1) per op.
					n := copy(s.queue, s.queue[s.head:])
					s.queue = s.queue[:n]
					s.head = 0
				}
				s.exec(p, po)
			}
		})
	}
}

func (s *shardRunner) exec(p *sim.Proc, po pendingOp) {
	switch po.op.Kind {
	case workload.OpRead:
		s.en.Get(p, po.op.Key)
	case workload.OpUpdate, workload.OpInsert:
		s.en.Update(p, po.op.Key, po.op.Size)
	case workload.OpReadModifyWrite:
		s.en.ReadModifyWrite(p, po.op.Key, po.op.Size)
	case workload.OpScan:
		s.en.Scan(p, po.op.Key, po.op.ScanLen)
	case workload.OpDelete:
		s.en.Delete(p, po.op.Key)
	}
	now := p.Now()
	// Open-loop latency: completion minus *arrival*, so queueing delay —
	// the thing overload and checkpoint stalls actually cost a client —
	// is part of every sample.
	lat := uint64(now - po.at)
	ta := &s.tenants[po.tenant]
	ta.done++
	ta.allLat.Record(lat)
	if po.op.Kind == workload.OpRead || po.op.Kind == workload.OpScan {
		ta.readLat.Record(lat)
	} else {
		ta.writeLat.Record(lat)
	}
	s.done++
	if off := now - s.base; off > s.lastDone {
		s.lastDone = off
	}
}

// stage installs the window's admitted arrivals (sorted by time, keys
// already local) and arms the pacer. Called by the coordinator between
// windows, never while the domain runs.
func (s *shardRunner) stage(arr []workload.Arrival) {
	s.arr = arr
	s.arrIdx = 0
	if len(arr) > 0 {
		s.eng.At(s.base+arr[0].At, s.pace)
	}
}

// pace is the single self-rescheduling arrival event: it enqueues every
// staged arrival whose time has come and re-arms itself at the next one.
// One event chain per window regardless of arrival count.
func (s *shardRunner) pace() {
	now := s.eng.Now()
	for s.arrIdx < len(s.arr) && s.base+s.arr[s.arrIdx].At <= now {
		a := s.arr[s.arrIdx]
		s.arrIdx++
		s.queue = append(s.queue, pendingOp{at: s.base + a.At, tenant: a.Tenant, op: a.Op})
		s.queued++
		if backlog := len(s.queue) - s.head; backlog > s.qPeak {
			s.qPeak = backlog
		}
		s.sem.Release()
	}
	if s.arrIdx < len(s.arr) {
		s.eng.At(s.base+s.arr[s.arrIdx].At, s.pace)
	}
}

// cut is one scheduled checkpoint trigger.
type cut struct {
	at    sim.VTime // absolute time on the shard's clock
	pause bool      // global-consistent cut: stall dequeue until it completes
}

// scheduleCuts registers the window's checkpoint triggers. A plain cut
// fires TriggerCheckpoint and lets service continue against the journal
// snapshot; a pausing cut additionally stalls op dequeue until the
// checkpoint completes, so the cut captures a globally consistent op
// frontier — arrivals keep queueing, and the backlog drains afterward,
// which is exactly the tail-latency cost the scheduling experiment
// measures.
func (s *shardRunner) scheduleCuts(cuts []cut) {
	for _, c := range cuts {
		c := c
		if !c.pause {
			s.eng.At(c.at, func() { s.en.TriggerCheckpoint() })
			continue
		}
		s.eng.At(c.at, func() {
			if !s.paused {
				s.paused = true
				s.resume = sim.NewFuture(s.eng)
			}
			res := s.resume
			// Overlapping cuts share one running checkpoint future, so this
			// callback can fire once per cut on the same completion; only the
			// first may complete the resume future (hence the paused check),
			// and a cut scheduled after a later re-pause must not complete
			// the newer future (hence the identity check).
			s.en.TriggerCheckpoint().OnComplete(func() {
				if s.paused && s.resume == res {
					s.paused = false
					res.Complete()
				}
			})
		})
	}
}

// run executes the domain up to deadline (absolute on the shard's clock),
// accumulating wall time for the imbalance report.
func (s *shardRunner) run(deadline sim.VTime) {
	start := time.Now()
	s.eng.RunUntil(deadline)
	s.runWall += time.Since(start)
}

// idle reports whether the shard has fully drained: no queued or in-flight
// ops and no checkpoint in progress.
func (s *shardRunner) idle() bool {
	return s.done == s.queued && !s.en.CheckpointRunning()
}

// close releases every worker so the pool exits once the queue is empty.
func (s *shardRunner) close(workers int) {
	s.closing = true
	for w := 0; w < workers; w++ {
		s.sem.Release()
	}
	s.run(s.eng.Now() + sim.Microsecond)
}
