package shard

import (
	"github.com/checkin-kv/checkin/internal/sim"
)

// tokenBucket is per-tenant admission control. It is deliberately a pure
// function of arrival times: tokens refill with virtual time and each
// admission spends one, with no feedback from service completions. That
// independence is what keeps the coordinator's admission decisions
// computable before any shard runs a window — the property the parallel
// shard domains rest on. (Closed-loop admission — shedding based on queue
// depth — would couple the decision to service progress and reintroduce a
// cross-domain edge mid-window.)
type tokenBucket struct {
	ratePerNS float64
	burst     float64
	tokens    float64
	last      sim.VTime
}

func newTokenBucket(ratePerSec, burst float64) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &tokenBucket{
		ratePerNS: ratePerSec / float64(sim.Second),
		burst:     burst,
		tokens:    burst,
	}
}

// admit spends a token at arrival time at (non-decreasing across calls) and
// reports whether the op is admitted; a dry bucket sheds it.
func (b *tokenBucket) admit(at sim.VTime) bool {
	b.tokens += float64(at-b.last) * b.ratePerNS
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = at
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
