package shard

// Key routing: the sharded front-end must spread every tenant's namespace
// across all shards (hash sharding), yet each shard's engine wants a dense
// local key space [0, shardKeys) so all shards share one identical
// configuration — and therefore one preconditioned load snapshot forked N
// ways. Both at once come from a bijective pseudo-random permutation p over
// the combined key space: shard = p(g) mod N, local = p(g) div N. The
// permutation is a fixed-key Feistel network with cycle-walking, so routing
// is structural (seed-independent), stateless and O(1) — no routing table
// to build or keep consistent.

type router struct {
	shards    int
	total     int64 // combined key-space size
	shardKeys int64 // dense per-shard namespace size, ceil(total/shards)
	halfBits  uint  // Feistel half width; domain is [0, 1<<(2*halfBits))
	halfMask  uint64
}

func newRouter(total int64, shards int) router {
	r := router{shards: shards, total: total, shardKeys: (total + int64(shards) - 1) / int64(shards)}
	r.halfBits = 1
	for int64(1)<<(2*r.halfBits) < total {
		r.halfBits++
	}
	r.halfMask = 1<<r.halfBits - 1
	return r
}

// place maps a global key to its (shard, local) coordinates.
func (r router) place(g int64) (int, int64) {
	p := r.permute(g)
	return int(p % int64(r.shards)), p / int64(r.shards)
}

// permute is a bijection on [0, total): a 4-round Feistel permutation over
// the enclosing power-of-four domain, cycle-walked back into range. Walking
// preserves bijectivity (the permutation's restriction to any closed subset
// of its orbits is a permutation of that subset) and terminates in O(1)
// expected steps — the domain is at most 4x the range.
func (r router) permute(g int64) int64 {
	v := uint64(g)
	for {
		v = r.feistel(v)
		if v < uint64(r.total) {
			return int64(v)
		}
	}
}

// Fixed round keys (arbitrary odd 64-bit constants). Routing deliberately
// does not take a seed: the shard layout is part of the system's structure,
// like the FTL's channel striping, not part of a run's randomness.
var feistelKeys = [4]uint64{
	0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0xd6e8feb86659fd93,
}

func (r router) feistel(v uint64) uint64 {
	l, rt := v>>r.halfBits, v&r.halfMask
	for round := 0; round < 4; round++ {
		l, rt = rt, l^(mix64(rt+feistelKeys[round])&r.halfMask)
	}
	return l<<r.halfBits | rt
}

// mix64 is the splitmix64 finalizer — a cheap, well-distributed 64-bit
// mixing function used as the Feistel round function.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
