package checkin

import (
	"fmt"
	"strings"
	"time"
)

// ErrorProfile is a named preset of NAND fault rates for the reliability
// model (Config's ReadRetryRate..WearErrorFactor fields). Profiles give the
// CLI tools and the differential error matrix a small, shared vocabulary:
// "off" is perfect flash (byte-identical to a build without the model),
// "light" is a healthy mid-life drive, "heavy" is an end-of-life drive with
// rates inflated so every fault path fires within short simulated runs.
type ErrorProfile struct {
	Name string

	ReadRetryRate     float64
	RetryEscalation   float64
	UncorrectableRate float64
	ProgramFailRate   float64
	EraseFailRate     float64
	WearErrorFactor   float64

	SpareBlocksPerDie int
	CommandTimeout    time.Duration
}

// ErrorProfiles lists the built-in presets.
func ErrorProfiles() []ErrorProfile {
	return []ErrorProfile{
		{Name: "off"},
		{
			Name:              "light",
			ReadRetryRate:     2e-3,
			RetryEscalation:   0.3,
			UncorrectableRate: 1e-5,
			ProgramFailRate:   1e-5,
			EraseFailRate:     1e-4,
			WearErrorFactor:   1e-4,
			SpareBlocksPerDie: 2,
		},
		{
			Name:              "heavy",
			ReadRetryRate:     0.05,
			RetryEscalation:   0.5,
			UncorrectableRate: 2e-3,
			ProgramFailRate:   2e-3,
			EraseFailRate:     0.05,
			WearErrorFactor:   1e-3,
			SpareBlocksPerDie: 4,
			CommandTimeout:    20 * time.Millisecond,
		},
	}
}

// ParseErrorProfile resolves a preset by name.
func ParseErrorProfile(name string) (ErrorProfile, error) {
	for _, p := range ErrorProfiles() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	names := make([]string, 0, 3)
	for _, p := range ErrorProfiles() {
		names = append(names, p.Name)
	}
	return ErrorProfile{}, fmt.Errorf("checkin: unknown error profile %q (want %s)",
		name, strings.Join(names, ", "))
}

// Apply returns cfg with the profile's fault rates installed.
func (p ErrorProfile) Apply(cfg Config) Config {
	cfg.ReadRetryRate = p.ReadRetryRate
	cfg.RetryEscalation = p.RetryEscalation
	cfg.UncorrectableRate = p.UncorrectableRate
	cfg.ProgramFailRate = p.ProgramFailRate
	cfg.EraseFailRate = p.EraseFailRate
	cfg.WearErrorFactor = p.WearErrorFactor
	cfg.SpareBlocksPerDie = p.SpareBlocksPerDie
	cfg.CommandTimeout = p.CommandTimeout
	return cfg
}
