package checkin

import (
	"testing"
	"time"
)

// TestTagHashUniqueness: duplicate tag names panic, including a name
// reserved by an excluded conditional tag — the collision class the
// table-driven helper exists to catch.
func TestTagHashUniqueness(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic on duplicate tag", name)
			}
		}()
		fn()
	}
	mustPanic("tag/tag", func() {
		h := NewTagHash("x")
		h.Tag("a", "%d", 1)
		h.Tag("a", "%d", 2)
	})
	mustPanic("tagif-excluded/tag", func() {
		h := NewTagHash("x")
		h.TagIf(false, "a", "%d", 1)
		h.Tag("a", "%d", 2)
	})
	mustPanic("tag/tagif-included", func() {
		h := NewTagHash("x")
		h.Tag("a", "%d", 1)
		h.TagIf(true, "a", "%d", 2)
	})
}

// TestTagHashSeparation: domains, tag names and values all separate — no
// two distinct constructions may collide by concatenation accidents.
func TestTagHashSeparation(t *testing.T) {
	sum := func(domain string, build func(*TagHash)) uint64 {
		h := NewTagHash(domain)
		build(h)
		return h.Sum()
	}
	a := sum("load", func(h *TagHash) { h.Tag("ab", "%d", 12) })
	b := sum("load", func(h *TagHash) { h.Tag("a", "%s", "b=12") })
	c := sum("run", func(h *TagHash) { h.Tag("ab", "%d", 12) })
	d := sum("load", func(h *TagHash) { h.Tag("ab", "%d", 13) })
	e := sum("load", func(h *TagHash) { h.TagIf(false, "ab", "%d", 12) })
	if a == b || a == c || a == d || a == e {
		t.Fatalf("fingerprint collision: a=%x b=%x c=%x d=%x e=%x", a, b, c, d, e)
	}
	if again := sum("load", func(h *TagHash) { h.Tag("ab", "%d", 12) }); again != a {
		t.Fatalf("fingerprint not stable: %x vs %x", again, a)
	}
}

// TestFingerprintFieldSensitivity: every load-phase field the fingerprint
// claims to cover must change the fingerprint when it changes, conditional
// tags stay absent at their defaults (dram fingerprints must not move when
// the dftl knobs exist but are off), and run-phase knobs must change only
// the run fingerprint.
func TestFingerprintFieldSensitivity(t *testing.T) {
	base := DefaultConfig()
	lfp0, ok := LoadFingerprint(base)
	if !ok {
		t.Fatal("default config not snapshottable")
	}
	mutations := map[string]func(*Config){
		"Keys":             func(c *Config) { c.Keys = c.Keys + 1 },
		"Channels":         func(c *Config) { c.Channels *= 2 },
		"PagesPerBlock":    func(c *Config) { c.PagesPerBlock *= 2 },
		"MappingUnit":      func(c *Config) { c.MappingUnit = 4096 },
		"JournalHalfMB":    func(c *Config) { c.JournalHalfMB += 8 },
		"QueueDepth":       func(c *Config) { c.QueueDepth *= 2 },
		"FTLMap":           func(c *Config) { c.FTLMap = "dftl" },
		"MetaFlushEntries": func(c *Config) { c.MetaFlushEntries = 128 },
		"ReadRetryRate":    func(c *Config) { c.ReadRetryRate = 0.01 },
		// Strategy shapes the load fingerprint through remap slot alignment.
		"Strategy": func(c *Config) { c.Strategy = StrategyBaseline },
		// The backend shapes post-Load state from the ground up: the
		// template cache must never serve a journal snapshot to an LSM run.
		"Engine": func(c *Config) { c.Engine = "lsm" },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		lfp, ok := LoadFingerprint(cfg)
		if !ok {
			t.Fatalf("%s: mutated config not snapshottable", name)
		}
		if lfp == lfp0 {
			t.Errorf("%s: load fingerprint did not change", name)
		}
	}
	// Run-phase knobs leave the load fingerprint alone but move the run one.
	rfp0, _ := Fingerprint(base)
	runKnobs := map[string]func(*Config){
		"Seed":               func(c *Config) { c.Seed = 99 },
		"CheckpointInterval": func(c *Config) { c.CheckpointInterval = 123 * time.Millisecond },
		"HostCacheEntries":   func(c *Config) { c.HostCacheEntries = 512 },
	}
	for name, mutate := range runKnobs {
		cfg := base
		mutate(&cfg)
		lfp, _ := LoadFingerprint(cfg)
		if lfp != lfp0 {
			t.Errorf("%s: run-phase knob moved the load fingerprint", name)
		}
		rfp, _ := Fingerprint(cfg)
		if rfp == rfp0 {
			t.Errorf("%s: run fingerprint did not change", name)
		}
	}
	// Zero-value and explicitly defaulted configs fingerprint identically.
	if lfpd, _ := LoadFingerprint(withDefaults(base)); lfpd != lfp0 {
		t.Error("withDefaults changed the load fingerprint")
	}

	// LSM run-phase shape: one LSM template serves both compaction policies
	// and any memtable bound (run-fingerprint tags only), while selecting
	// the backend itself moves the load fingerprint — and the explicit
	// "journal" spelling hashes identically to the zero-value default.
	lsmBase := base
	lsmBase.Engine = "lsm"
	llfp0, ok := LoadFingerprint(lsmBase)
	if !ok {
		t.Fatal("lsm config not snapshottable")
	}
	lrfp0, _ := Fingerprint(lsmBase)
	lsmRunKnobs := map[string]func(*Config){
		"Compaction":      func(c *Config) { c.Compaction = "tiered" },
		"MemtableEntries": func(c *Config) { c.MemtableEntries = 1024 },
	}
	for name, mutate := range lsmRunKnobs {
		cfg := lsmBase
		mutate(&cfg)
		lfp, _ := LoadFingerprint(cfg)
		if lfp != llfp0 {
			t.Errorf("%s: LSM run-phase knob moved the load fingerprint", name)
		}
		rfp, _ := Fingerprint(cfg)
		if rfp == lrfp0 {
			t.Errorf("%s: LSM run fingerprint did not change", name)
		}
	}
	explicit := base
	explicit.Engine = "journal"
	if lfp, _ := LoadFingerprint(explicit); lfp != lfp0 {
		t.Error(`Engine "journal" fingerprints differently from the zero-value default`)
	}
	if rfp, _ := Fingerprint(explicit); rfp != rfp0 {
		t.Error(`Engine "journal" moved the run fingerprint off the zero-value default`)
	}
}
