package checkin

import (
	"fmt"
	"sort"

	"github.com/checkin-kv/checkin/internal/core"
	"github.com/checkin-kv/checkin/internal/lsm"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
	"github.com/checkin-kv/checkin/internal/trace"
)

// HostEngine is the storage-engine contract every backend implements: the
// journal+JMT engine of the paper (internal/core, name "journal") and the
// LSM-tree engine (internal/lsm, name "lsm"). The device below, the
// workload above, the checkpoint strategies, the crash-injection
// instrument and the verification oracles all speak to the engine through
// this interface, so backends are interchangeable per Config.Engine and
// directly comparable on identical inputs.
type HostEngine interface {
	// Load bulk-populates every record (the YCSB load phase).
	Load()
	// Run executes a measured workload phase.
	Run(spec core.RunSpec) (*core.Metrics, error)

	// Query operations, called from simulation processes.
	Get(p *sim.Proc, key int64)
	Put(p *sim.Proc, key int64, size int)
	Update(p *sim.Proc, key int64, size int)
	ReadModifyWrite(p *sim.Proc, key int64, size int)
	Scan(p *sim.Proc, key int64, n int)
	Delete(p *sim.Proc, key int64)
	// Sync blocks until every write issued so far is durable.
	Sync(p *sim.Proc)

	// TriggerCheckpoint starts a checkpoint cut (journal) or flush epoch
	// (LSM) unless one is already running; the future completes when the
	// epoch does.
	TriggerCheckpoint() *sim.Future
	CheckpointRunning() bool

	// SetCommitHook observes every (key, version) the instant it becomes
	// durable — the crash-consistency oracle's model feed.
	SetCommitHook(fn func(key, version int64))

	// Recovery truth.
	RecoveredVersions() []int64
	SimulateRecovery() *core.RecoveryReport
	DurableVersions() []int64
	InMemoryVersions() []int64

	// Introspection.
	Device() *ssd.Device
	Sim() *sim.Engine
	Metrics() *core.Metrics
	JournalStats() core.JournalStats

	// Snapshot-and-fork: the backend's mutable state as an opaque value.
	// RestoreState must reject a value captured from a different backend.
	SnapshotState() (any, error)
	RestoreState(s any) error
}

// Interface checks: both backends implement the full contract.
var (
	_ HostEngine = (*core.Engine)(nil)
	_ HostEngine = (*lsm.Engine)(nil)
)

// engineBuilder assembles one backend over an already-built device stack.
type engineBuilder func(eng *sim.Engine, device *ssd.Device, cfg Config, tracer *trace.Tracer) (HostEngine, error)

// engineBuilders is the backend registry, keyed by Config.Engine.
var engineBuilders = map[string]engineBuilder{
	"journal": buildJournalEngine,
	"lsm":     buildLSMEngine,
}

// EngineNames lists the registered backends in stable order.
func EngineNames() []string {
	names := make([]string, 0, len(engineBuilders))
	for n := range engineBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func buildJournalEngine(eng *sim.Engine, device *ssd.Device, cfg Config, tracer *trace.Tracer) (HostEngine, error) {
	ecfg := core.DefaultConfig()
	ecfg.Strategy = cfg.Strategy
	ecfg.Keys = cfg.Keys
	ecfg.Sizer = cfg.Records
	ecfg.JournalHalfBytes = int64(cfg.JournalHalfMB) << 20
	ecfg.CheckpointInterval = sim.VTime(cfg.CheckpointInterval.Nanoseconds())
	ecfg.JournalSoftFrac = cfg.JournalSoftFrac
	ecfg.CompressRatio = cfg.CompressRatio
	ecfg.AdaptiveLiveBudget = cfg.AdaptiveLiveBudget
	ecfg.Tracer = tracer
	ecfg.HostCacheEntries = cfg.HostCacheEntries
	ecfg.LockDuringCheckpoint = cfg.LockDuringCheckpoint
	ecfg.Injector = cfg.Injector
	ecfg.Seed = cfg.Seed
	return core.NewEngine(eng, device, ecfg)
}

func buildLSMEngine(eng *sim.Engine, device *ssd.Device, cfg Config, tracer *trace.Tracer) (HostEngine, error) {
	lcfg := lsm.DefaultConfig()
	lcfg.Strategy = cfg.Strategy
	lcfg.Keys = cfg.Keys
	lcfg.Sizer = cfg.Records
	lcfg.WALHalfBytes = int64(cfg.JournalHalfMB) << 20
	lcfg.WALSoftFrac = cfg.JournalSoftFrac
	lcfg.MemtableEntries = cfg.MemtableEntries
	lcfg.Policy = cfg.Compaction
	lcfg.CheckpointInterval = sim.VTime(cfg.CheckpointInterval.Nanoseconds())
	lcfg.LockDuringCheckpoint = cfg.LockDuringCheckpoint
	lcfg.AdaptiveLiveBudget = cfg.AdaptiveLiveBudget
	lcfg.Tracer = tracer
	lcfg.Injector = cfg.Injector
	lcfg.Seed = cfg.Seed
	return lsm.New(eng, device, lcfg)
}

// newHostEngine resolves cfg.Engine against the registry.
func newHostEngine(eng *sim.Engine, device *ssd.Device, cfg Config, tracer *trace.Tracer) (HostEngine, error) {
	build, ok := engineBuilders[cfg.Engine]
	if !ok {
		return nil, fmt.Errorf("checkin: unknown Engine %q (registered: %v)", cfg.Engine, EngineNames())
	}
	return build(eng, device, cfg, tracer)
}
