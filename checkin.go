// Package checkin is a simulation-backed reproduction of "Check-In:
// In-Storage Checkpointing for Key-Value Store System Leveraging
// Flash-Based SSDs" (ISCA 2020).
//
// It assembles a full simulated stack — NAND flash array, flash translation
// layer with sub-page mapping and copy-on-write remapping, an NVMe-like SSD
// controller hosting the in-storage checkpointing engine (ISCE), and the
// Check-In storage engine with sector-aligned journaling — and runs YCSB
// workloads against it under five checkpointing configurations (Baseline,
// ISC-A, ISC-B, ISC-C, Check-In).
//
// Typical use:
//
//	cfg := checkin.DefaultConfig()
//	cfg.Strategy = checkin.StrategyCheckIn
//	db, err := checkin.Open(cfg)
//	if err != nil { ... }
//	db.Load()
//	m, err := db.Run(checkin.RunSpec{Threads: 32, TotalQueries: 100_000,
//		Mix: checkin.WorkloadA, Zipfian: true})
//	fmt.Print(m.Summary())
//
// All time inside the simulation is virtual; runs are deterministic for a
// given Config (including Seed).
package checkin

import (
	"fmt"
	"runtime"
	"time"

	"github.com/checkin-kv/checkin/internal/core"
	"github.com/checkin-kv/checkin/internal/ftl"
	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
	"github.com/checkin-kv/checkin/internal/trace"
	"github.com/checkin-kv/checkin/internal/workload"
)

// Strategy selects the checkpointing mechanism under test.
type Strategy = core.Strategy

// The five evaluated configurations (Section IV-A of the paper).
const (
	StrategyBaseline = core.StrategyBaseline
	StrategyISCA     = core.StrategyISCA
	StrategyISCB     = core.StrategyISCB
	StrategyISCC     = core.StrategyISCC
	StrategyCheckIn  = core.StrategyCheckIn
)

// Strategies lists every configuration in evaluation order.
var Strategies = core.Strategies

// ParseStrategy resolves a strategy from its display name (e.g. "ISC-C").
func ParseStrategy(name string) (Strategy, error) { return core.ParseStrategy(name) }

// Workload types re-exported for callers.
type (
	// Mix is an operation mix in percent (reads/updates/RMWs).
	Mix = workload.Mix
	// Sizer assigns stable record sizes to keys.
	Sizer = workload.Sizer
	// RunSpec describes one measured workload phase.
	RunSpec = core.RunSpec
	// Metrics is the result of a run.
	Metrics = core.Metrics
	// RecoveryReport describes a simulated crash-recovery pass.
	RecoveryReport = core.RecoveryReport
	// Trace is a recorded operation stream for strict replay comparisons
	// (set RunSpec.Trace).
	Trace = workload.Trace
)

// The paper's workload mixes, plus the rest of the standard YCSB suite.
var (
	WorkloadA  = workload.WorkloadA  // 50% read / 50% update (paper)
	WorkloadF  = workload.WorkloadF  // 50% read / 50% RMW (paper)
	WorkloadWO = workload.WorkloadWO // write-only (paper)
	WorkloadB  = workload.WorkloadB  // 95% read / 5% update
	WorkloadC  = workload.WorkloadC  // read-only
	WorkloadD  = workload.WorkloadD  // 95% read / 5% update (pair with latest dist)
	WorkloadE  = workload.WorkloadE  // 95% scans / 5% update
)

// Record-size helpers.
var (
	// PatternP1..P4 are the record-size mixes of Figure 13(b).
	PatternP1 = workload.PatternP1
	PatternP2 = workload.PatternP2
	PatternP3 = workload.PatternP3
	PatternP4 = workload.PatternP4
)

// FixedRecords returns a sizer giving every record the same size.
func FixedRecords(size int) Sizer { return workload.FixedSizer{Size: size} }

// MixedRecords returns a sizer drawing sizes from a weighted set.
func MixedRecords(label string, sizes, weights []int) Sizer {
	return workload.NewMixSizer(label, sizes, weights)
}

// RecordWorkload generates a reusable operation trace: replaying the same
// trace against different configurations (RunSpec.Trace) compares them on
// byte-identical inputs.
func RecordWorkload(keys int64, sizer Sizer, mix Mix, zipfian bool, n int, seed int64) (*Trace, error) {
	var dist workload.Distribution
	if zipfian {
		dist = workload.NewZipfian(keys, workload.DefaultTheta)
	} else {
		dist = workload.Uniform{Keys: keys}
	}
	gen, err := workload.NewGenerator(dist, sizer, mix, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	return workload.RecordTrace(gen, n), nil
}

// Config is the full machine configuration — the reproduction of Table I.
// Zero fields are replaced by defaults at Open; start from DefaultConfig
// and override what an experiment sweeps.
type Config struct {
	Strategy Strategy
	Seed     int64

	// Engine selects the host storage engine: "journal" (default — the
	// paper's journaling engine with the in-memory key table) or "lsm"
	// (write-ahead log + memtable + sorted runs with compaction). Both
	// run over the same simulated device and the same checkpoint
	// strategies; see HostEngine.
	Engine string

	// Compaction selects the LSM compaction policy: "leveled" (default)
	// or "tiered". Ignored by the journal engine.
	Compaction string

	// MemtableEntries caps the LSM memtable's distinct-key count before a
	// flush epoch triggers (0 → 4096). Ignored by the journal engine.
	MemtableEntries int

	// Flash geometry.
	Channels       int
	DiesPerChannel int
	PlanesPerDie   int
	BlocksPerPlane int
	PagesPerBlock  int
	PageSizeBytes  int

	// Flash timing.
	ReadLatency    time.Duration
	ProgramLatency time.Duration
	EraseLatency   time.Duration
	ChannelMBps    int
	MaxPECycles    int

	// FTL.
	MappingUnit   int // 0 → the strategy's default (4096 conventional, 512 sub-page)
	OverProvision float64
	MapCacheMB    int
	// GCPolicy selects the garbage-collection victim policy:
	// "greedy" (default), "cost-benefit", or "fifo".
	GCPolicy string
	// FTLMap selects the mapping-table model: "dram" (default — full table
	// in controller DRAM with the probabilistic map-cache cost model) or
	// "dftl" (DFTL-style flash-resident table: a bounded cached mapping
	// table backed by translation pages on flash, with mapping misses and
	// writebacks charged through the real NAND timing path; see
	// internal/ftl/dftl.go).
	FTLMap string
	// CMTEntries bounds the dftl cached mapping table (entries). 0 derives
	// the bound from MapCacheMB (8 bytes per entry).
	CMTEntries int
	// MetaFlushEntries overrides the dirty-mapping-entry count that triggers
	// a metadata (dram mode) or translation-page (dftl mode) writeback.
	// 0 keeps the FTL default of one translation page's worth of entries.
	MetaFlushEntries int
	// CMTFill toggles dftl page-fill on CMT miss: "" or "on" (default)
	// populates every entry the fetched translation page covers; "off"
	// inserts only the demanded entry (the pre-optimization behavior).
	CMTFill string
	// CMTCleanWindow bounds the dftl clean-first (CFLRU-style) eviction
	// search in entries. 0 picks the default (32); 1 or negative restores
	// strict LRU eviction.
	CMTCleanWindow int
	// RemapBatch toggles the dftl checkpoint-cut remap writeback batch:
	// "" or "on" (default) defers translation writeback across the cut and
	// settles it densest-page-first at the cut end; "off" interleaves
	// threshold writebacks with the cut (the pre-optimization behavior).
	RemapBatch string

	// Controller.
	QueueDepth  int
	PCIeMBps    int
	DataCacheMB int

	// Engine (DBMS) settings.
	Keys                 int64
	Records              Sizer
	JournalHalfMB        int
	CheckpointInterval   time.Duration
	JournalSoftFrac      float64
	LockDuringCheckpoint bool

	// CompressRatio models Algorithm 2's compression of journal logs
	// larger than the mapping unit (1.0 = alignment only, no shrink).
	CompressRatio float64

	// AdaptiveLiveBudget, when positive, triggers a checkpoint whenever
	// the journal mapping table reaches this many live entries — a
	// bounded-work scheduling extension beyond the paper's fixed
	// interval (0 = fixed interval only).
	AdaptiveLiveBudget int

	// DeferGC overrides the strategy default for the deallocator's
	// deferred-GC behaviour (ablation knob; nil = strategy default).
	DeferGC *bool

	// HostCacheEntries bounds a host-memory LRU of record values (the
	// engine's memtable/block cache): reads of cached keys skip the
	// device. 0 keeps the paper's device-centric read model.
	HostCacheEntries int

	// TraceCapacity enables structured event tracing (checkpoints, journal
	// commits, GC victims, wear-level moves) with a bounded ring of this
	// many events. 0 disables tracing.
	TraceCapacity int

	// WearDeltaThreshold enables static wear leveling: a leveling move
	// triggers when the erase-count spread across blocks exceeds this
	// value. 0 disables leveling (the default).
	WearDeltaThreshold uint32

	// Injector, when set, threads a crash-injection instrument through
	// every layer of the stack (engine, controller, FTL). Used by the
	// crash-consistency verification harness (internal/check); nil in
	// production.
	Injector *inject.Injector

	// NAND reliability model (all rates zero — perfect flash — by default;
	// zero rates leave every code path byte-identical to a build without
	// the model). See nand.ReliabilityConfig and ErrorProfiles for named
	// presets.
	ReadRetryRate     float64 // P(page read needs ≥1 voltage-shift retry)
	RetryEscalation   float64 // geometric continuation per extra retry step
	UncorrectableRate float64 // P(read uncorrectable by the retry ladder)
	ProgramFailRate   float64 // P(page program fails)
	EraseFailRate     float64 // P(block erase fails → retirement)
	WearErrorFactor   float64 // rate growth per erase cycle (wear-out)

	// MaxReadRetries bounds the retry ladder (0 → 6).
	MaxReadRetries int
	// SpareBlocksPerDie reserves replacement blocks for grown bad blocks.
	// 0 → 2 when the error model is enabled, none otherwise.
	SpareBlocksPerDie int

	// CommandTimeout, when nonzero, charges TimeoutBackoff extra on any
	// device command whose back-end service exceeds it (the host-visible
	// cost of a timeout/abort/retry exchange under error recovery).
	CommandTimeout time.Duration
	TimeoutBackoff time.Duration // 0 → 1ms when CommandTimeout is set

	// Domains controls the parallel DES kernel: per-channel NAND event
	// domains replay flash timing on worker goroutines and merge
	// completions back in (at, seq) order, so output is byte-identical to
	// the sequential kernel — this is purely a wall-clock optimization.
	// "on" enables, "off" disables, "" or "auto" enables when GOMAXPROCS
	// exceeds 1. Deliberately excluded from fingerprints: two runs that
	// differ only in Domains produce identical results.
	Domains string
}

// errorModelEnabled reports whether any NAND fault rate is nonzero.
func (c Config) errorModelEnabled() bool {
	return c.ReadRetryRate > 0 || c.UncorrectableRate > 0 ||
		c.ProgramFailRate > 0 || c.EraseFailRate > 0
}

// DefaultConfig returns the configuration used by the paper-reproduction
// experiments, scaled to simulator-friendly sizes: a 512 MB-raw flash
// device (4 channels × 2 dies × 2 planes × 128 blocks × 64 pages × 4 KB),
// 50 k records of small mixed sizes, 32 MB journal halves and a 1 s
// checkpoint interval (the paper's 60 s scaled to the shorter simulated
// runs).
func DefaultConfig() Config {
	return Config{
		Strategy:       StrategyCheckIn,
		Seed:           1,
		Channels:       4,
		DiesPerChannel: 2,
		PlanesPerDie:   2,
		BlocksPerPlane: 128,
		PagesPerBlock:  64,
		PageSizeBytes:  4096,
		ReadLatency:    50 * time.Microsecond,
		ProgramLatency: 500 * time.Microsecond,
		EraseLatency:   3 * time.Millisecond,
		ChannelMBps:    400,
		MaxPECycles:    3000,
		OverProvision:  0.12,
		MapCacheMB:     32,
		QueueDepth:     64,
		PCIeMBps:       3200,
		DataCacheMB:    8,
		Keys:           50_000,
		Records: workload.NewMixSizer("default-small",
			[]int{128, 256, 384, 512, 1024, 2048}, []int{2, 2, 1, 3, 1, 1}),
		JournalHalfMB:      32,
		CheckpointInterval: time.Second,
		JournalSoftFrac:    0.7,
	}
}

// DB is an open simulated key-value store system.
type DB struct {
	cfg    Config
	eng    *sim.Engine
	device *ssd.Device
	host   HostEngine
	// engine is the journal backend, nil when Config.Engine selects an
	// alternate one; Engine() keeps exposing it for journal-specific
	// inspection.
	engine *core.Engine
	tracer *trace.Tracer

	// restPoint is the kernel state at the post-Load quiescent instant —
	// the anchor Snapshot captures from. Nil before Load.
	restPoint *sim.EngineState
}

// withDefaults returns cfg with every zero field replaced by its default —
// the resolved configuration a DB actually runs with. Open applies it before
// assembly; fingerprints apply it so that a zero field and its explicit
// default hash identically.
func withDefaults(cfg Config) Config {
	def := DefaultConfig()
	fill := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	fill(&cfg.Channels, def.Channels)
	fill(&cfg.DiesPerChannel, def.DiesPerChannel)
	fill(&cfg.PlanesPerDie, def.PlanesPerDie)
	fill(&cfg.BlocksPerPlane, def.BlocksPerPlane)
	fill(&cfg.PagesPerBlock, def.PagesPerBlock)
	fill(&cfg.PageSizeBytes, def.PageSizeBytes)
	fill(&cfg.ChannelMBps, def.ChannelMBps)
	fill(&cfg.MaxPECycles, def.MaxPECycles)
	fill(&cfg.MapCacheMB, def.MapCacheMB)
	fill(&cfg.QueueDepth, def.QueueDepth)
	fill(&cfg.PCIeMBps, def.PCIeMBps)
	fill(&cfg.JournalHalfMB, def.JournalHalfMB)
	if cfg.ReadLatency == 0 {
		cfg.ReadLatency = def.ReadLatency
	}
	if cfg.ProgramLatency == 0 {
		cfg.ProgramLatency = def.ProgramLatency
	}
	if cfg.EraseLatency == 0 {
		cfg.EraseLatency = def.EraseLatency
	}
	if cfg.OverProvision == 0 {
		cfg.OverProvision = def.OverProvision
	}
	if cfg.DataCacheMB == 0 {
		cfg.DataCacheMB = def.DataCacheMB
	}
	if cfg.Keys == 0 {
		cfg.Keys = def.Keys
	}
	if cfg.Records == nil {
		cfg.Records = def.Records
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = def.CheckpointInterval
	}
	if cfg.JournalSoftFrac == 0 {
		cfg.JournalSoftFrac = def.JournalSoftFrac
	}
	if cfg.CompressRatio == 0 {
		cfg.CompressRatio = 0.85
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.MappingUnit == 0 {
		cfg.MappingUnit = cfg.Strategy.DefaultMappingUnit()
	}
	if cfg.errorModelEnabled() {
		if cfg.SpareBlocksPerDie == 0 {
			cfg.SpareBlocksPerDie = 2
		}
		if cfg.MaxReadRetries == 0 {
			cfg.MaxReadRetries = 6
		}
	}
	if cfg.CommandTimeout > 0 && cfg.TimeoutBackoff == 0 {
		cfg.TimeoutBackoff = time.Millisecond
	}
	if cfg.FTLMap == "" {
		cfg.FTLMap = "dram"
	}
	if cfg.Engine == "" {
		cfg.Engine = "journal"
	}
	if cfg.Engine == "lsm" && cfg.Compaction == "" {
		cfg.Compaction = "leveled"
	}
	return cfg
}

// Open assembles the simulated stack described by cfg.
func Open(cfg Config) (*DB, error) {
	cfg = withDefaults(cfg)

	eng := sim.NewEngine()

	geo := nand.Geometry{
		Channels:           cfg.Channels,
		PackagesPerChannel: 1,
		DiesPerPackage:     cfg.DiesPerChannel,
		PlanesPerDie:       cfg.PlanesPerDie,
		BlocksPerPlane:     cfg.BlocksPerPlane,
		PagesPerBlock:      cfg.PagesPerBlock,
		PageSize:           cfg.PageSizeBytes,
	}
	tim := nand.Timing{
		ReadPage:    sim.VTime(cfg.ReadLatency.Nanoseconds()),
		ProgramPage: sim.VTime(cfg.ProgramLatency.Nanoseconds()),
		EraseBlock:  sim.VTime(cfg.EraseLatency.Nanoseconds()),
		CmdOverhead: sim.Microsecond,
		ChannelMBps: cfg.ChannelMBps,
	}.WithDefaultEnergy()
	array, err := nand.New(eng, geo, tim)
	if err != nil {
		return nil, fmt.Errorf("checkin: %w", err)
	}
	array.MaxPE = uint32(cfg.MaxPECycles)
	switch cfg.Domains {
	case "", "auto":
		// The parallel path only buys wall-clock time when workers can
		// actually run in parallel; on one CPU the sequential loop is
		// strictly cheaper. Either way the output is byte-identical.
		if runtime.GOMAXPROCS(0) > 1 {
			array.EnableDomains(0)
		}
	case "on":
		array.EnableDomains(0)
	case "off":
	default:
		return nil, fmt.Errorf("checkin: unknown Domains %q (want on, off or auto)", cfg.Domains)
	}
	if cfg.errorModelEnabled() {
		rcfg := nand.ReliabilityConfig{
			ReadRetryRate:     cfg.ReadRetryRate,
			RetryEscalation:   cfg.RetryEscalation,
			UncorrectableRate: cfg.UncorrectableRate,
			ProgramFailRate:   cfg.ProgramFailRate,
			EraseFailRate:     cfg.EraseFailRate,
			WearFactor:        cfg.WearErrorFactor,
		}
		// A fixed odd mixing constant decorrelates the fault stream from
		// the workload RNGs derived from the same seed.
		relSeed := uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0x6e616e642d72656c
		if err := array.EnableReliability(rcfg, relSeed); err != nil {
			return nil, fmt.Errorf("checkin: %w", err)
		}
	}

	fcfg := ftl.DefaultConfig()
	fcfg.UnitSize = cfg.MappingUnit
	fcfg.OverProvision = cfg.OverProvision
	fcfg.MapCacheBytes = int64(cfg.MapCacheMB) << 20
	fcfg.Parallelism = geo.TotalDies()
	if fcfg.Parallelism > 8 {
		fcfg.Parallelism = 8
	}
	deferGC := cfg.Strategy == StrategyCheckIn
	if cfg.DeferGC != nil {
		deferGC = *cfg.DeferGC
	}
	fcfg.DeferGC = deferGC
	switch cfg.GCPolicy {
	case "", "greedy":
		fcfg.GCPolicy = ftl.GCGreedy
	case "cost-benefit":
		fcfg.GCPolicy = ftl.GCCostBenefit
	case "fifo":
		fcfg.GCPolicy = ftl.GCFIFO
	default:
		return nil, fmt.Errorf("checkin: unknown GCPolicy %q (want greedy, cost-benefit or fifo)", cfg.GCPolicy)
	}
	switch cfg.FTLMap {
	case "dram":
	case "dftl":
		fcfg.FlashMap = true
		fcfg.CMTEntries = cfg.CMTEntries
		fcfg.CMTCleanWindow = cfg.CMTCleanWindow
	default:
		return nil, fmt.Errorf("checkin: unknown FTLMap %q (want dram or dftl)", cfg.FTLMap)
	}
	switch cfg.CMTFill {
	case "", "on":
	case "off":
		fcfg.CMTNoFill = true
	default:
		return nil, fmt.Errorf("checkin: unknown CMTFill %q (want on or off)", cfg.CMTFill)
	}
	switch cfg.RemapBatch {
	case "", "on":
	case "off":
		fcfg.CMTNoBatch = true
	default:
		return nil, fmt.Errorf("checkin: unknown RemapBatch %q (want on or off)", cfg.RemapBatch)
	}
	fcfg.MetaFlushEntries = cfg.MetaFlushEntries
	var tracer *trace.Tracer
	if cfg.TraceCapacity > 0 {
		tracer = trace.New(cfg.TraceCapacity)
	}
	fcfg.Tracer = tracer
	fcfg.Injector = cfg.Injector
	fcfg.WearDeltaThreshold = cfg.WearDeltaThreshold
	fcfg.MaxReadRetries = cfg.MaxReadRetries
	if cfg.errorModelEnabled() {
		fcfg.SpareBlocksPerDie = cfg.SpareBlocksPerDie
	}
	translation, err := ftl.New(eng, array, fcfg)
	if err != nil {
		return nil, fmt.Errorf("checkin: %w", err)
	}

	dcfg := ssd.DefaultConfig()
	dcfg.QueueDepth = cfg.QueueDepth
	dcfg.PCIeMBps = cfg.PCIeMBps
	dcfg.CacheBytes = int64(cfg.DataCacheMB) << 20
	dcfg.Injector = cfg.Injector
	dcfg.CommandTimeout = sim.VTime(cfg.CommandTimeout.Nanoseconds())
	dcfg.TimeoutBackoff = sim.VTime(cfg.TimeoutBackoff.Nanoseconds())
	device, err := ssd.New(eng, translation, dcfg)
	if err != nil {
		return nil, fmt.Errorf("checkin: %w", err)
	}

	host, err := newHostEngine(eng, device, cfg, tracer)
	if err != nil {
		return nil, fmt.Errorf("checkin: %w", err)
	}

	db := &DB{cfg: cfg, eng: eng, device: device, host: host, tracer: tracer}
	db.engine, _ = host.(*core.Engine) // nil under alternate backends
	return db, nil
}

// Config returns the resolved configuration the DB runs with.
func (db *DB) Config() Config { return db.cfg }

// Load bulk-populates every record (the YCSB load phase). Call once before
// the first Run.
//
// After the bulk load, Load drains the simulation to a canonical rest point:
// the deallocator tick — the only perpetually self-rescheduling event — is
// paused so its queued firing disarms instead of re-arming, the event queue
// runs dry, and the kernel state is recorded before the tick is re-armed.
// Every path (direct run, snapshot capture, fork restore) passes through the
// same rest point, which is what makes snapshot-on and snapshot-off runs
// byte-identical: re-arming is always the next scheduled action taken from
// identical (clock, sequence) state.
func (db *DB) Load() {
	db.host.Load()
	db.device.PauseDeallocator()
	db.eng.Run()
	rp := db.eng.State()
	db.restPoint = &rp
	db.device.ResumeDeallocator()
}

// Run executes a workload phase and returns its metrics.
func (db *DB) Run(spec RunSpec) (*Metrics, error) { return db.host.Run(spec) }

// SimulateRecovery models a crash at the current instant and returns what a
// restarted instance would reconstruct from the checkpoint and journal.
func (db *DB) SimulateRecovery() *RecoveryReport { return db.host.SimulateRecovery() }

// DurableVersions returns per-key durable versions (ground truth for
// recovery validation).
func (db *DB) DurableVersions() []int64 { return db.host.DurableVersions() }

// Host exposes the storage engine behind the backend-agnostic interface.
func (db *DB) Host() HostEngine { return db.host }

// Engine exposes the journal storage engine for advanced inspection; nil
// when Config.Engine selects another backend (use Host instead).
func (db *DB) Engine() *core.Engine { return db.engine }

// Device exposes the simulated SSD.
func (db *DB) Device() *ssd.Device { return db.device }

// Sim exposes the simulation kernel.
func (db *DB) Sim() *sim.Engine { return db.eng }

// Lifetime returns the projected flash lifetime per the paper's Equation
// (1), using total simulated time as Top. Compare across configurations.
func (db *DB) Lifetime() float64 {
	return db.device.FTL().Array().Lifetime(db.eng.Now())
}

// FlashEnergyMJ returns cumulative flash energy in millijoules — the
// energy side of the paper's write-amplification motivation.
func (db *DB) FlashEnergyMJ() float64 {
	return float64(db.device.FTL().Array().EnergyNJ()) / 1e6
}

// Trace returns the structured event tracer, or nil when tracing is
// disabled (Config.TraceCapacity == 0).
func (db *DB) Trace() *trace.Tracer { return db.tracer }

// JournalStats returns journaling-layer counters (space overhead etc.);
// under the LSM backend these are the write-ahead log's counters.
func (db *DB) JournalStats() core.JournalStats { return db.host.JournalStats() }

// SimulateSPOR models a sudden power-off at the device level: the SSD
// rebuilds its mapping table purely from OOB records, remap aliases and
// trim extents (the paper's Section III-G), and the report compares the
// rebuilt table against the live one. Flush-backed state must match
// exactly; units still in the volatile write buffer are (correctly) lost.
func (db *DB) SimulateSPOR() *ftl.SPORReport {
	return db.device.SimulateSPOR()
}

// Health returns the device's reliability summary — grown bad blocks,
// spare blocks left, and whether it degraded to read-only mode. All zero
// unless the NAND error model is enabled.
func (db *DB) Health() ftl.Health { return db.device.Health() }
