package checkin

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"github.com/checkin-kv/checkin/internal/ftl"
	"github.com/checkin-kv/checkin/internal/nand"
	"github.com/checkin-kv/checkin/internal/sim"
	"github.com/checkin-kv/checkin/internal/ssd"
)

// Snapshot is a complete, immutable copy of a DB's simulated state at the
// post-Load rest point: NAND array, FTL, controller, storage engine and the
// kernel clock. Fork stamps it into freshly opened DBs, skipping the load
// phase entirely — the snapshot-and-fork analogue of the checkpoint-restore
// methodology the paper uses to sidestep gem5/SimpleSSD warm-up.
//
// A Snapshot never aliases live state (every layer deep-copies on capture
// and again on restore), so one Snapshot can be forked concurrently from
// any number of goroutines.
type Snapshot struct {
	cfg    Config // resolved template configuration (diagnostics)
	loadFP uint64
	sim    sim.EngineState
	nand   *nand.ArrayState
	ftl    *ftl.FTLState
	dev    *ssd.DeviceState
	// host is the storage engine's state as captured by its backend
	// (core.EngineState or lsm.EngineState); RestoreState type-checks it,
	// and the load fingerprint pins the backend, so a journal snapshot can
	// never be stamped into an LSM fork.
	host any
}

// Snapshot captures the DB's full simulated state. It must be called after
// Load and before the first Run — the capture anchors to Load's rest point,
// where the event queue is empty and no simulated process is live. Tracing
// and fault injection thread live references through every layer, so DBs
// opened with TraceCapacity > 0 or an Injector cannot be snapshotted.
func (db *DB) Snapshot() (*Snapshot, error) {
	switch {
	case db.cfg.Injector != nil:
		return nil, fmt.Errorf("checkin: snapshot with a fault injector attached")
	case db.tracer != nil:
		return nil, fmt.Errorf("checkin: snapshot with tracing enabled")
	case db.restPoint == nil:
		return nil, fmt.Errorf("checkin: snapshot before Load")
	}
	if db.eng.Now() != db.restPoint.Now || db.eng.Executed() != db.restPoint.Executed {
		return nil, fmt.Errorf("checkin: snapshot after the simulation moved past Load's rest point")
	}
	if n := db.eng.LiveProcs(); n != 0 {
		return nil, fmt.Errorf("checkin: snapshot with %d live simulated processes", n)
	}
	lfp, ok := LoadFingerprint(db.cfg)
	if !ok {
		return nil, fmt.Errorf("checkin: configuration is not snapshottable")
	}
	s := &Snapshot{cfg: db.cfg, loadFP: lfp, sim: *db.restPoint}
	s.nand = db.device.FTL().Array().Snapshot()
	var err error
	if s.ftl, err = db.device.FTL().Snapshot(); err != nil {
		return nil, err
	}
	if s.dev, err = db.device.Snapshot(); err != nil {
		return nil, err
	}
	if s.host, err = db.host.SnapshotState(); err != nil {
		return nil, err
	}
	return s, nil
}

// Config returns the resolved configuration the snapshot was captured from.
func (s *Snapshot) Config() Config { return s.cfg }

// LoadFingerprint returns the fingerprint identifying the load phases this
// snapshot can substitute for.
func (s *Snapshot) LoadFingerprint() uint64 { return s.loadFP }

// Fork opens a fresh DB under cfg and installs the snapshot's state in place
// of running the load phase. cfg must describe the same load phase as the
// snapshot's source (LoadFingerprint must match); run-phase fields — Seed,
// Strategy-independent checkpoint knobs, host cache size and so on — are
// free to differ, which is what lets one preconditioned template serve a
// whole sweep. The returned DB is indistinguishable from one that executed
// Load itself: clock, event order and all layer state match exactly.
func (s *Snapshot) Fork(cfg Config) (*DB, error) {
	lfp, ok := LoadFingerprint(cfg)
	if !ok {
		return nil, fmt.Errorf("checkin: configuration is not snapshottable (injector or tracing enabled)")
	}
	if lfp != s.loadFP {
		return nil, fmt.Errorf("checkin: fork config load fingerprint %016x does not match snapshot %016x", lfp, s.loadFP)
	}
	db, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	// Kernel first: clears the constructor's deallocator tick so layer
	// restores schedule onto the captured timeline. The device restore then
	// re-arms the tick, drawing the same sequence number the direct path's
	// re-arm drew after its post-Load drain.
	db.eng.Restore(s.sim)
	if err := db.device.FTL().Array().Restore(s.nand); err != nil {
		return nil, err
	}
	if err := db.device.FTL().Restore(s.ftl); err != nil {
		return nil, err
	}
	db.device.Restore(s.dev)
	if err := db.host.RestoreState(s.host); err != nil {
		return nil, err
	}
	rp := s.sim
	db.restPoint = &rp
	return db, nil
}

// LoadFingerprint hashes every configuration field that influences the load
// phase — geometry, flash timing, FTL shape and policy, controller sizing,
// key population and record sizes, and the strategy-derived slot alignment.
// Two configs with equal load fingerprints produce bit-identical post-Load
// state, so a snapshot captured under one can be forked under the other.
// Deliberately excluded: Seed (Load is deterministic and consults no RNG)
// and the run-phase knobs (checkpoint interval, journal soft fraction,
// compression, adaptive budget, host cache, checkpoint locking) — exclusion
// is what lets one template serve strategy sweeps that only vary those.
// ok is false when the config cannot be snapshotted at all (fault injection
// or tracing threads live references through the stack).
func LoadFingerprint(cfg Config) (uint64, bool) {
	if cfg.Injector != nil || cfg.TraceCapacity > 0 {
		return 0, false
	}
	cfg = withDefaults(cfg)
	if cfg.GCPolicy == "" {
		cfg.GCPolicy = "greedy"
	}
	deferGC := cfg.Strategy == StrategyCheckIn
	if cfg.DeferGC != nil {
		deferGC = *cfg.DeferGC
	}
	h := NewTagHash("load")
	h.Tag("geo", "%d/%d/%d/%d/%d/%d",
		cfg.Channels, cfg.DiesPerChannel, cfg.PlanesPerDie, cfg.BlocksPerPlane,
		cfg.PagesPerBlock, cfg.PageSizeBytes)
	h.Tag("tim", "%d/%d/%d/%d",
		cfg.ReadLatency.Nanoseconds(), cfg.ProgramLatency.Nanoseconds(),
		cfg.EraseLatency.Nanoseconds(), cfg.ChannelMBps)
	h.Tag("pe", "%d", cfg.MaxPECycles)
	h.Tag("ftl", "%d/%v/%d/%s/%v/%d", cfg.MappingUnit, cfg.OverProvision,
		cfg.MapCacheMB, cfg.GCPolicy, deferGC, cfg.WearDeltaThreshold)
	// Appended only off the default so dram fingerprints stay stable across
	// the dftl introduction.
	h.TagIf(cfg.FTLMap != "dram", "ftlmap", "%s/%d", cfg.FTLMap, cfg.CMTEntries)
	h.TagIf(cfg.MetaFlushEntries != 0, "mf", "%d", cfg.MetaFlushEntries)
	// CMT-optimization knobs (dftl only; appended only off their defaults so
	// existing fingerprints stay stable across the optimization layer's
	// introduction). RemapBatch is deliberately absent: Load never runs a
	// checkpoint, so the remap batch cannot shape post-Load state — it tags
	// the run fingerprint instead, letting one preconditioned template serve
	// batch-on/off ablation sweeps.
	h.TagIf(cfg.CMTFill == "off", "cmtfill", "off")
	h.TagIf(cfg.CMTCleanWindow != 0, "cmtcw", "%d", cfg.CMTCleanWindow)
	h.Tag("dev", "%d/%d/%d/%d/%d", cfg.QueueDepth, cfg.PCIeMBps, cfg.DataCacheMB,
		cfg.CommandTimeout.Nanoseconds(), cfg.TimeoutBackoff.Nanoseconds())
	h.Tag("rel", "%v/%v/%v/%v/%v/%v/%d/%d", cfg.ReadRetryRate, cfg.RetryEscalation,
		cfg.UncorrectableRate, cfg.ProgramFailRate, cfg.EraseFailRate,
		cfg.WearErrorFactor, cfg.MaxReadRetries, cfg.SpareBlocksPerDie)
	// The fault stream is seeded from Seed, and Load's writes draw from it —
	// with the model enabled, Seed shapes post-Load state (unlike the
	// perfect-flash case, where Load consults no RNG).
	h.TagIf(cfg.errorModelEnabled(), "relseed", "%d", cfg.Seed)
	h.Tag("db", "%d/%d", cfg.Keys, cfg.JournalHalfMB)
	// The backend shapes post-Load state from the ground up (journal halves
	// + key table vs WAL + base run + manifest). Appended only off the
	// default so journal fingerprints stay stable across the lsm
	// introduction — and so the template cache can never serve a journal
	// snapshot to an LSM run or vice versa.
	h.TagIf(cfg.Engine != "journal", "engine", "%s", cfg.Engine)
	h.Tag("remap", "%v", cfg.Strategy.UsesRemap())
	h.Tag("sizer", "%016x", sizerFingerprint(cfg.Records, cfg.Keys))
	return h.Sum(), true
}

// Fingerprint hashes the complete resolved configuration: the load
// fingerprint plus every run-phase field. Two configs with equal
// fingerprints run identical simulations end to end, making this the key
// for memoizing whole runs. ok is false under the same conditions as
// LoadFingerprint.
func Fingerprint(cfg Config) (uint64, bool) {
	lfp, ok := LoadFingerprint(cfg)
	if !ok {
		return 0, false
	}
	cfg = withDefaults(cfg)
	h := NewTagHash("run")
	h.Tag("load", "%016x", lfp)
	h.Tag("strat", "%v", cfg.Strategy)
	h.Tag("seed", "%d", cfg.Seed)
	h.Tag("ival", "%d", cfg.CheckpointInterval.Nanoseconds())
	h.Tag("soft", "%v", cfg.JournalSoftFrac)
	h.Tag("comp", "%v", cfg.CompressRatio)
	h.Tag("adapt", "%d", cfg.AdaptiveLiveBudget)
	h.Tag("hc", "%d", cfg.HostCacheEntries)
	h.Tag("lock", "%v", cfg.LockDuringCheckpoint)
	h.TagIf(cfg.RemapBatch == "off", "rbatch", "off")
	// LSM run-phase shape: the compaction policy and memtable bound steer
	// every flush and merge, but not the load phase (the base run's layout
	// is policy-independent), so they tag here rather than in
	// LoadFingerprint — one LSM template serves both policies.
	h.TagIf(cfg.Engine != "journal", "lsmrun", "%s/%d", cfg.Compaction, cfg.MemtableEntries)
	return h.Sum(), true
}

// sizerFingerprint identifies a record-size assignment by name plus a probe
// of every key's size — sizers are user-supplied, so the name alone is not
// trusted to pin the mapping.
func sizerFingerprint(s Sizer, keys int64) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s.Name())
	var buf [8]byte
	for k := int64(0); k < keys; k++ {
		binary.LittleEndian.PutUint64(buf[:], uint64(s.SizeOf(k)))
		h.Write(buf[:])
	}
	return h.Sum64()
}
