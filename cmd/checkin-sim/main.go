// Command checkin-sim runs one simulated key-value store configuration and
// prints its metrics — the single-run front end to the Check-In
// reproduction (checkin-bench drives full paper experiments).
//
// Usage:
//
//	checkin-sim -strategy Check-In -threads 64 -queries 100000 -workload A
//	checkin-sim -print-config
//	checkin-sim -strategy Baseline -recover
//	checkin-sim -crashpoints -strategy=Check-In -seed=3
//	checkin-sim -crashpoints -strategy=Check-In -seed=3 -site=journal-commit -hit=17
//	checkin-sim -strategy Check-In -errors heavy
//	checkin-sim -crashpoints -strategy=Check-In -seed=2 -site=read-retry -hit=5 -errors=heavy
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/check"
	"github.com/checkin-kv/checkin/internal/inject"
	"github.com/checkin-kv/checkin/internal/shard"
)

func main() {
	var (
		strategy    = flag.String("strategy", "Check-In", "Baseline | ISC-A | ISC-B | ISC-C | Check-In")
		threads     = flag.Int("threads", 64, "client threads")
		queries     = flag.Int64("queries", 50_000, "total queries")
		wl          = flag.String("workload", "A", "A | F | WO")
		dist        = flag.String("distribution", "zipfian", "zipfian | uniform")
		keys        = flag.Int64("keys", 20_000, "record count")
		interval    = flag.Duration("interval", 300*time.Millisecond, "checkpoint interval (simulated)")
		unit        = flag.Int("unit", 0, "FTL mapping unit bytes (0 = strategy default)")
		seed        = flag.Int64("seed", 1, "simulation seed")
		lock        = flag.Bool("lock", false, "lock query admission during checkpoints")
		doRecover   = flag.Bool("recover", false, "simulate a crash + recovery after the run")
		doSPOR      = flag.Bool("spor", false, "simulate a sudden power-off + device OOB recovery after the run")
		timeline    = flag.String("timeline", "", "write a CSV timeline of the run to this file (10ms samples)")
		dumpTrace   = flag.Bool("trace", false, "print the run's structured event trace summary and tail")
		printConfig = flag.Bool("print-config", false, "print the resolved configuration and exit")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		crashpoints = flag.Bool("crashpoints", false, "run the crash-point verification harness instead of a benchmark")
		site        = flag.String("site", "", "crashpoints: injection site name (empty = every site the census finds)")
		hit         = flag.Int("hit", 0, "crashpoints: 1-based hit index of -site to crash at")
		errProfile  = flag.String("errors", "off", "NAND error profile: off | light | heavy")
		engine      = flag.String("engine", "journal", "host storage-engine backend: journal (paper's journal+JMT) | lsm (WAL + memtable + sorted runs)")
		compaction  = flag.String("compaction", "leveled", "lsm: compaction policy, leveled | tiered")
		memtable    = flag.Int("memtable", 0, "lsm: memtable entry bound before a flush epoch (0 = default 4096)")
		domains     = flag.String("domains", "auto", "parallel DES kernel (per-channel NAND event domains): on | off | auto (output is byte-identical either way)")
		ftlmap      = flag.String("ftlmap", "dram", "FTL mapping-table model: dram | dftl (flash-resident translation pages)")
		cmtfill     = flag.String("cmtfill", "on", "dftl: on a CMT miss, fill every entry the fetched translation page covers: on | off (off = demanded entry only)")
		cmtcw       = flag.Int("cmtcw", 0, "dftl: clean-first eviction search window in entries (0 = default 32, 1 = strict LRU)")
		remapbatch  = flag.String("remapbatch", "on", "dftl: batch translation writeback across each checkpoint cut: on | off (off = interleave threshold writebacks with the cut)")
		shards      = flag.Int("shards", 0, "run a sharded scale-out simulation across this many engine+SSD stacks (0 = single-stack mode)")
		tenants     = flag.Int("tenants", 3, "sharded mode: tenant count")
		arrival     = flag.String("arrival", "poisson:150000", "sharded mode: open-loop arrival spec, poisson:RATE[:flash] | diurnal:RATE:AMP:PERIOD[:flash]")
		cksched     = flag.String("cksched", "sync", "sharded mode: cross-shard checkpoint scheduling policy, sync | staggered | global")
		shardPar    = flag.String("shard-parallel", "auto", "sharded mode: run shard event domains on parallel goroutines, on | off | auto (output is byte-identical either way)")
		admitRate   = flag.Float64("admit-rate", 0, "sharded mode: aggregate admitted ops/sec across per-tenant token buckets (0 = no admission control)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	s, err := checkin.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}
	profile, err := checkin.ParseErrorProfile(*errProfile)
	if err != nil {
		fatal(err)
	}
	if *ftlmap != "dram" && *ftlmap != "dftl" {
		fatal(fmt.Errorf("bad -ftlmap %q (want dram or dftl)", *ftlmap))
	}
	if !validEngine(*engine) {
		fatal(fmt.Errorf("bad -engine %q (registered: %s)", *engine, strings.Join(checkin.EngineNames(), ", ")))
	}
	if *compaction != "leveled" && *compaction != "tiered" {
		fatal(fmt.Errorf("bad -compaction %q (want leveled or tiered)", *compaction))
	}
	if *crashpoints {
		runCrashpoints(s, *seed, *site, *hit, profile.Name, *ftlmap, *engine, *compaction)
		return
	}
	if *shards > 0 {
		runSharded(s, profile, *shards, *tenants, *arrival, *cksched, *shardPar,
			*admitRate, *queries, *interval, *seed, *domains, *ftlmap)
		return
	}
	var mix checkin.Mix
	switch *wl {
	case "A":
		mix = checkin.WorkloadA
	case "F":
		mix = checkin.WorkloadF
	case "WO":
		mix = checkin.WorkloadWO
	default:
		fatal(fmt.Errorf("unknown workload %q (want A, F or WO)", *wl))
	}
	zipf := *dist == "zipfian"
	if !zipf && *dist != "uniform" {
		fatal(fmt.Errorf("unknown distribution %q", *dist))
	}

	cfg := checkin.DefaultConfig()
	cfg.Strategy = s
	cfg.Engine = *engine
	cfg.Compaction = *compaction
	cfg.MemtableEntries = *memtable
	cfg.Keys = *keys
	cfg.CheckpointInterval = *interval
	cfg.MappingUnit = *unit
	cfg.Seed = *seed
	cfg.LockDuringCheckpoint = *lock
	cfg.Domains = *domains
	cfg.FTLMap = *ftlmap
	cfg.CMTFill = *cmtfill
	cfg.CMTCleanWindow = *cmtcw
	cfg.RemapBatch = *remapbatch
	cfg = profile.Apply(cfg)
	if *dumpTrace {
		cfg.TraceCapacity = 10_000
	}

	if *printConfig {
		fmt.Printf("%+v\n", cfg)
		return
	}

	db, err := checkin.Open(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loading %d records (%s)...\n", cfg.Keys, cfg.Records.Name())
	db.Load()

	fmt.Printf("running %d queries, workload %s, %s, %d threads, strategy %v\n",
		*queries, *wl, *dist, *threads, s)
	start := time.Now()
	spec := checkin.RunSpec{
		Threads:      *threads,
		TotalQueries: *queries,
		Mix:          mix,
		Zipfian:      zipf,
	}
	if *timeline != "" {
		spec.SampleInterval = 10 * 1000 * 1000 // 10ms in simulated ns
	}
	m, err := db.Run(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%s", m.Summary())
	if profile.Name != "off" {
		ns := db.Device().FTL().Array().Stats()
		h := db.Health()
		fmt.Printf("nand faults        %d retries, %d uncorrectable, %d program fails, %d erase fails\n",
			ns.ReadRetries, ns.UncorrectableReads, ns.ProgramFails, ns.EraseFails)
		fmt.Printf("device health      %d retired blocks, %d spares left, read-only=%v\n",
			h.RetiredBlocks, h.SparesLeft, h.ReadOnly)
	}
	fmt.Printf("journal space overhead %.3f\n", m.JournalSpaceOverhead())
	fmt.Printf("lifetime projection    %.0f (PEC*Top/BEC)\n", db.Lifetime())
	fmt.Printf("wall time              %.2fs\n", time.Since(start).Seconds())

	if *timeline != "" && m.Timeline != nil {
		f, err := os.Create(*timeline)
		if err != nil {
			fatal(err)
		}
		if err := m.Timeline.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if spark, err := m.Timeline.Sparkline("kqps", 60); err == nil {
			fmt.Printf("throughput timeline    %s\n", spark)
		}
		fmt.Printf("timeline written to %s (%d samples)\n", *timeline, m.Timeline.Len())
	}

	if *dumpTrace && db.Trace() != nil {
		fmt.Printf("\nevent counts:\n%s", db.Trace().Summary())
		evs := db.Trace().Events()
		tail := evs
		if len(tail) > 20 {
			tail = tail[len(tail)-20:]
		}
		fmt.Println("last events:")
		for _, ev := range tail {
			fmt.Println(" ", ev)
		}
	}

	if *doSPOR {
		rep := db.SimulateSPOR()
		fmt.Printf("\n%s\n", rep)
		if rep.Mismatches != 0 {
			fatal(fmt.Errorf("SPOR mismatches: %d", rep.Mismatches))
		}
	}

	if *doRecover {
		rep := db.SimulateRecovery()
		ok := 0
		durable := db.DurableVersions()
		for k, v := range durable {
			if rep.Recovered[k] == v {
				ok++
			}
		}
		fmt.Printf("\nrecovery: %d/%d keys match durable state, %d logs replayed, %v recovery time\n",
			ok, len(durable), rep.ReplayedLogs, rep.RecoveryTime)
		if ok != len(durable) {
			fatal(fmt.Errorf("recovery mismatch: %d keys diverged", len(durable)-ok))
		}
	}
}

// runCrashpoints drives the internal/check differential harness from the
// CLI. With -site/-hit it reproduces exactly one armed crash — the mode a
// failing test's repro line invokes. Without them it runs the full matrix
// for the strategy and seed: a census of every injection site the workload
// reaches, then sampled armed crashes at each, validating host recovery,
// device SPOR, and FTL invariants at every crash instant.
func runCrashpoints(s checkin.Strategy, seed int64, siteName string, hit int, errProfile, ftlmap, engine, compaction string) {
	opts := check.DefaultOptions()
	switch {
	case engine == "lsm":
		// LSMOptions mirrors the LSM crash-matrix tests, so repro lines
		// carrying -engine=lsm [-compaction=tiered] replay identically.
		opts = check.LSMOptions(compaction)
		if ftlmap != "dram" {
			fatal(fmt.Errorf("-engine=lsm -crashpoints does not take -ftlmap=%s", ftlmap))
		}
	case ftlmap != "dram":
		opts = check.DFTLOptions()
	}
	if errProfile != "off" {
		opts.Errors = errProfile
	}
	tr, err := check.NewTrace(opts, seed)
	if err != nil {
		fatal(err)
	}
	if siteName != "" {
		site, err := inject.ParseSite(siteName)
		if err != nil {
			fatal(err)
		}
		if hit < 1 {
			hit = 1
		}
		res := check.RunCrash(s, seed, site, hit, tr, opts)
		fmt.Println(res)
		if res.Err != nil {
			os.Exit(1)
		}
		if !res.Fired {
			fatal(fmt.Errorf("site %s never reached hit %d on this trace", site, hit))
		}
		return
	}
	results, census, err := check.CrashMatrix(s, seed, tr, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("crash-point census (strategy=%s seed=%d):\n", s, seed)
	for _, st := range inject.Sites() {
		fmt.Printf("  %-15s %6d hits\n", st, census.RunHits[st])
	}
	failures := 0
	for _, r := range results {
		fmt.Println(" ", r)
		if r.Err != nil || !r.Fired {
			failures++
		}
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d of %d crash-point runs failed", failures, len(results)))
	}
	fmt.Printf("crashpoints: all %d armed runs validated\n", len(results))
}

// runSharded drives the multi-device scale-out front end: N independent
// engine+SSD stacks under open-loop multi-tenant traffic with a cross-shard
// checkpoint scheduling policy. The rendered report is deterministic; only
// the trailing wall-time line varies between machines.
func runSharded(s checkin.Strategy, profile checkin.ErrorProfile, shards, tenants int,
	arrival, cksched, parallel string, admitRate float64, ops int64,
	interval time.Duration, seed int64, domains, ftlmap string) {
	arr, err := shard.ParseArrival(arrival)
	if err != nil {
		fatal(err)
	}
	arr.Tenants = shard.DefaultTenants(tenants, 2000)
	base := checkin.DefaultConfig()
	base.Strategy = s
	base.CheckpointInterval = interval
	base.Seed = seed
	base.Domains = domains
	base.FTLMap = ftlmap
	base = profile.Apply(base)
	cfg := shard.Config{
		Shards:          shards,
		Base:            base,
		Arrival:         arr,
		TotalOps:        ops,
		Sched:           cksched,
		AdmitRatePerSec: admitRate,
		Parallel:        parallel,
		Seed:            seed,
	}
	db, err := shard.Open(cfg)
	if err != nil {
		fatal(err)
	}
	rep, err := db.Run()
	if err != nil {
		fatal(err)
	}
	rep.Render(os.Stdout)
	fmt.Printf("wall time %.2fs (load %.2fs)\n", rep.Wall.Seconds(), rep.LoadWall.Seconds())
}

func validEngine(name string) bool {
	for _, n := range checkin.EngineNames() {
		if n == name {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "checkin-sim:", err)
	os.Exit(1)
}
