// Command checkin-bench regenerates the paper's evaluation tables and
// figures from the simulated Check-In system.
//
// Usage:
//
//	checkin-bench -list
//	checkin-bench -experiment fig9
//	checkin-bench -experiment all -scale 0.5 -threads 4,16,64
//
// Output is an ASCII table per experiment with a note relating the measured
// shape to the paper's reported numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or comma-separated ids or 'all'")
		scale      = flag.Float64("scale", 1.0, "scales per-point query counts")
		threads    = flag.String("threads", "4,16,64,128", "comma-separated thread sweep")
		seed       = flag.Int64("seed", 1, "simulation seed")
		seeds      = flag.String("seeds", "", "comma-separated seeds: run each experiment once per seed (variance evidence); overrides -seed")
		parallel   = flag.Int("parallel", 0, "worker goroutines for an experiment's independent runs (0 = NumCPU, 1 = sequential; output is identical either way)")
		snapshot   = flag.String("snapshot", "on", "load-phase snapshot reuse: 'on' forks a cached post-load template for runs sharing a load configuration, 'off' re-simulates every load phase (output is byte-identical either way)")
		timing     = flag.Bool("timing", false, "print a per-phase (load / run / render) wall-clock breakdown per cell after each experiment")
		list       = flag.Bool("list", false, "list experiments and exit")
		markdown   = flag.String("markdown", "", "also append results as markdown tables to this file")
		errProfile = flag.String("errors", "off", "NAND error profile applied to every run: off | light | heavy")
		engine     = flag.String("engine", "journal", "host storage-engine backend for every run: journal (paper's journal+JMT) | lsm (WAL + memtable + sorted runs); experiments that compare backends override per cell")
		domains    = flag.String("domains", "auto", "parallel DES kernel (per-channel NAND event domains): on | off | auto (output is byte-identical either way)")
		ftlmap     = flag.String("ftlmap", "dram", "FTL mapping-table model: dram (full table in controller DRAM) | dftl (flash-resident translation pages; charges mapping misses and writebacks through NAND timing)")
		cmtfill    = flag.String("cmtfill", "on", "dftl: on a CMT miss, fill every entry the fetched translation page covers: on | off (off = demanded entry only)")
		cmtcw      = flag.Int("cmtcw", 0, "dftl: clean-first eviction search window in entries (0 = default 32, 1 = strict LRU)")
		remapbatch = flag.String("remapbatch", "on", "dftl: batch translation writeback across each checkpoint cut: on | off (off = interleave threshold writebacks with the cut)")
		shards     = flag.Int("shards", 0, "shard count for the shardsched experiment (0 = default 4)")
		tenants    = flag.Int("tenants", 0, "tenant count for the shardsched experiment (0 = default 3)")
		arrival    = flag.String("arrival", "", "open-loop arrival spec for shardsched: poisson:RATE[:flash] | diurnal:RATE:AMP:PERIOD[:flash] (empty = poisson:150000)")
		cksched    = flag.String("cksched", "", "restrict shardsched to one cross-shard checkpoint scheduling policy: sync | staggered | global (empty = all)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkin-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "checkin-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "checkin-bench:", err)
				os.Exit(1)
			}
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "checkin-bench:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "checkin-bench:", err)
				os.Exit(1)
			}
		}()
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	ths, err := parseThreads(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkin-bench:", err)
		os.Exit(2)
	}
	if *snapshot != "on" && *snapshot != "off" {
		fmt.Fprintf(os.Stderr, "checkin-bench: bad -snapshot %q (want on or off)\n", *snapshot)
		os.Exit(2)
	}
	profile, err := checkin.ParseErrorProfile(*errProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkin-bench:", err)
		os.Exit(2)
	}
	if *ftlmap != "dram" && *ftlmap != "dftl" {
		fmt.Fprintf(os.Stderr, "checkin-bench: bad -ftlmap %q (want dram or dftl)\n", *ftlmap)
		os.Exit(2)
	}
	if !validEngine(*engine) {
		fmt.Fprintf(os.Stderr, "checkin-bench: bad -engine %q (registered: %s)\n",
			*engine, strings.Join(checkin.EngineNames(), ", "))
		os.Exit(2)
	}
	seedList := []int64{*seed}
	if *seeds != "" {
		seedList = seedList[:0]
		for _, part := range strings.Split(*seeds, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil || v == 0 {
				fmt.Fprintf(os.Stderr, "checkin-bench: bad seed %q\n", part)
				os.Exit(2)
			}
			seedList = append(seedList, v)
		}
	}

	var ids []string
	if *experiment == "all" {
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*experiment, ",")
	}

	for _, id := range ids {
		exp, err := harness.Lookup(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkin-bench:", err)
			os.Exit(2)
		}
		for _, sd := range seedList {
			opts := harness.Opts{Scale: *scale, Threads: ths, Seed: sd, Parallelism: *parallel, Snapshots: *snapshot, Timing: *timing, Errors: profile.Name, Domains: *domains, Engine: *engine, FTLMap: *ftlmap, CMTFill: *cmtfill, CMTCleanWindow: *cmtcw, RemapBatch: *remapbatch, Shards: *shards, Tenants: *tenants, Arrival: *arrival, CkSched: *cksched}
			start := time.Now()
			table, err := exp.Run(opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "checkin-bench: %s failed: %v\n", exp.ID, err)
				os.Exit(1)
			}
			if len(seedList) > 1 {
				table.Title += fmt.Sprintf(" [seed %d]", sd)
			}
			renderStart := time.Now()
			table.Render(os.Stdout)
			render := time.Since(renderStart)
			if *timing {
				printTimings(exp.ID, harness.DrainTimings(), render)
			}
			fmt.Printf("  (%s in %.1fs wall)\n", exp.ID, time.Since(start).Seconds())
			if *markdown != "" {
				f, err := os.OpenFile(*markdown, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					fmt.Fprintln(os.Stderr, "checkin-bench:", err)
					os.Exit(1)
				}
				table.RenderMarkdown(f)
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "checkin-bench:", err)
					os.Exit(1)
				}
			}
		}
	}
}

// printTimings writes the -timing breakdown for one experiment: one line per
// executed cell (load and run phase wall-clock; memoized cells did no work),
// the table-render time, and per-phase totals.
func printTimings(id string, cells []harness.CellTiming, render time.Duration) {
	ms := func(d time.Duration) string { return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000) }
	w := 4 // minimum cell-name column width
	for _, c := range cells {
		if len(c.Cell) > w {
			w = len(c.Cell)
		}
	}
	fmt.Printf("  timing %s:\n", id)
	fmt.Printf("    %-*s  %10s  %10s\n", w, "cell", "load", "run")
	var load, run time.Duration
	for _, c := range cells {
		if c.Memoized {
			fmt.Printf("    %-*s  %10s  %10s  (memoized)\n", w, c.Cell, "-", "-")
			continue
		}
		load += c.Load
		run += c.Run
		fmt.Printf("    %-*s  %10s  %10s\n", w, c.Cell, ms(c.Load), ms(c.Run))
	}
	fmt.Printf("    %-*s  %10s  %10s  render %s\n", w, "total", ms(load), ms(run), ms(render))
}

func validEngine(name string) bool {
	for _, n := range checkin.EngineNames() {
		if n == name {
			return true
		}
	}
	return false
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty thread list")
	}
	return out, nil
}
