package checkin_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	checkin "github.com/checkin-kv/checkin"
	"github.com/checkin-kv/checkin/internal/sim"
)

// renderFullRun opens cfg, runs spec and dumps everything observable —
// metrics summary, journal stats, lifetime/energy, a crash-recovery report,
// a device SPOR report, device health and the sampled timeline — into one
// string. Byte-equality of two dumps means the simulations were identical.
func renderFullRun(t *testing.T, cfg checkin.Config, spec checkin.RunSpec) string {
	t.Helper()
	db, err := checkin.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.Load()
	return renderRunOn(t, db, spec)
}

func renderRunOn(t *testing.T, db *checkin.DB, spec checkin.RunSpec) string {
	t.Helper()
	m, err := db.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(m.Summary())
	fmt.Fprintf(&sb, "journal=%+v\n", db.JournalStats())
	fmt.Fprintf(&sb, "lifetime=%v energy=%v\n", db.Lifetime(), db.FlashEnergyMJ())
	fmt.Fprintf(&sb, "recovery=%+v\n", *db.SimulateRecovery())
	fmt.Fprintf(&sb, "spor=%+v\n", *db.SimulateSPOR())
	fmt.Fprintf(&sb, "health=%+v\n", db.Health())
	if m.Timeline != nil {
		if err := m.Timeline.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

// TestDomainsByteIdentity compares full-stack runs with the parallel kernel
// on and off, at GOMAXPROCS 1 and 4, across seeds — including timeline
// sampling (which probes domain-owned backlog state mid-run), a crash
// recovery, a device SPOR rebuild, and a heavy NAND error profile. Every
// variant must produce byte-identical output.
func TestDomainsByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("domain identity matrix in -short mode")
	}
	scenarios := []struct {
		name string
		cfg  func() checkin.Config
		spec checkin.RunSpec
	}{
		{
			name: "checkin-wlA-sampled",
			cfg: func() checkin.Config {
				cfg := checkin.DefaultConfig()
				cfg.Strategy = checkin.StrategyCheckIn
				cfg.Keys = 5_000
				cfg.CheckpointInterval = 100 * time.Millisecond
				cfg.Seed = 1
				return cfg
			},
			spec: checkin.RunSpec{Threads: 8, TotalQueries: 10_000, Mix: checkin.WorkloadA,
				Zipfian: true, SampleInterval: 5 * sim.Millisecond},
		},
		{
			name: "baseline-wlF-seed2",
			cfg: func() checkin.Config {
				cfg := checkin.DefaultConfig()
				cfg.Strategy = checkin.StrategyBaseline
				cfg.Keys = 5_000
				cfg.CheckpointInterval = 100 * time.Millisecond
				cfg.Seed = 2
				return cfg
			},
			spec: checkin.RunSpec{Threads: 4, TotalQueries: 8_000, Mix: checkin.WorkloadF, Zipfian: true},
		},
		{
			name: "errors-heavy-wo",
			cfg: func() checkin.Config {
				cfg := checkin.DefaultConfig()
				cfg.Strategy = checkin.StrategyCheckIn
				cfg.Keys = 5_000
				cfg.CheckpointInterval = 100 * time.Millisecond
				cfg.Seed = 1
				p, err := checkin.ParseErrorProfile("heavy")
				if err != nil {
					t.Fatal(err)
				}
				return p.Apply(cfg)
			},
			spec: checkin.RunSpec{Threads: 8, TotalQueries: 10_000, Mix: checkin.WorkloadWO, Zipfian: false},
		},
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			runtime.GOMAXPROCS(1)
			off := sc.cfg()
			off.Domains = "off"
			want := renderFullRun(t, off, sc.spec)
			for _, procs := range []int{1, 4} {
				runtime.GOMAXPROCS(procs)
				on := sc.cfg()
				on.Domains = "on"
				if got := renderFullRun(t, on, sc.spec); got != want {
					t.Fatalf("domains on (GOMAXPROCS=%d) diverges from off:\n%s",
						procs, firstDiff(want, got))
				}
			}
		})
	}
}

// TestDomainsForkedStateIdentity checks the snapshot/fork path: a template
// captured with domains off must fork into byte-identical runs with domains
// on (and vice versa) — the domain queues are not part of captured state.
func TestDomainsForkedStateIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("forked identity in -short mode")
	}
	base := checkin.DefaultConfig()
	base.Strategy = checkin.StrategyCheckIn
	base.Keys = 5_000
	base.CheckpointInterval = 100 * time.Millisecond
	base.Seed = 1
	spec := checkin.RunSpec{Threads: 8, TotalQueries: 8_000, Mix: checkin.WorkloadA, Zipfian: true}

	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	capture := func(domains string) *checkin.Snapshot {
		cfg := base
		cfg.Domains = domains
		db, err := checkin.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		db.Load()
		snap, err := db.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	fork := func(snap *checkin.Snapshot, domains string) string {
		cfg := base
		cfg.Domains = domains
		db, err := snap.Fork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return renderRunOn(t, db, spec)
	}

	offSnap, onSnap := capture("off"), capture("on")
	want := fork(offSnap, "off")
	for _, variant := range []struct {
		snap    *checkin.Snapshot
		domains string
	}{
		{offSnap, "on"}, {onSnap, "off"}, {onSnap, "on"},
	} {
		if got := fork(variant.snap, variant.domains); got != want {
			t.Fatalf("fork(domains=%s) diverges from sequential fork:\n%s",
				variant.domains, firstDiff(want, got))
		}
	}
}

// firstDiff renders the first differing line of two multi-line strings.
func firstDiff(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl, gl)
		}
	}
	return "(no line diff — lengths differ)"
}
