package checkin

import (
	"fmt"
	"hash"
	"hash/fnv"
	"io"
)

// TagHash builds configuration fingerprints from named tags. It exists
// because the fingerprint format kept growing one hand-rolled Fprintf at a
// time (`|ftlmap=`, `|mf=`, `|relseed=`, …) and nothing caught two fields
// hashing under the same tag — which would silently merge distinct
// configurations into one fingerprint, the worst possible failure for a
// cache key. TagHash checks tag-name uniqueness at write time (duplicates
// panic: a fingerprint construction bug, never a runtime condition) and
// keeps conditional tags honest: TagIf reserves the name even when the tag
// is excluded, so a later unconditional tag cannot collide with it.
//
// Layered front-ends (internal/shard) derive their own config fingerprints
// from the same primitive, appending shard/tenant tags over an embedded
// per-shard fingerprint.
type TagHash struct {
	h    hash.Hash64
	seen map[string]bool
}

// NewTagHash starts a fingerprint in the given domain ("load", "run", …).
// Distinct domains never collide even over identical tag sets.
func NewTagHash(domain string) *TagHash {
	t := &TagHash{h: fnv.New64a(), seen: make(map[string]bool)}
	io.WriteString(t.h, domain)
	return t
}

// Tag appends one named tag with a formatted value. The name must be unique
// within this hash.
func (t *TagHash) Tag(name, format string, args ...any) {
	if t.seen[name] {
		panic(fmt.Sprintf("checkin: duplicate fingerprint tag %q", name))
	}
	t.seen[name] = true
	fmt.Fprintf(t.h, "|%s=", name)
	fmt.Fprintf(t.h, format, args...)
}

// TagIf appends the tag only when include is true, but reserves the name
// either way. Conditional tags keep pre-existing fingerprints stable across
// a feature's introduction (the tag is absent at the feature's default), and
// reserving the name means a later writer cannot reuse it unconditionally.
func (t *TagHash) TagIf(include bool, name, format string, args ...any) {
	if !include {
		if t.seen[name] {
			panic(fmt.Sprintf("checkin: duplicate fingerprint tag %q", name))
		}
		t.seen[name] = true
		return
	}
	t.Tag(name, format, args...)
}

// Sum returns the 64-bit fingerprint of everything tagged so far.
func (t *TagHash) Sum() uint64 { return t.h.Sum64() }
